package vessel

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"vessel/internal/obs"
)

// launchWave places n park-loop uProcesses into domain d, named with the
// given prefix, on the domain's least-loaded online cores.
func launchWave(t *testing.T, s *ScheduledCluster, d, n int, prefix string) {
	t.Helper()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s-d%d-%03d", prefix, d, i)
		if _, err := s.Launch(d, name, buildParkLoop); err != nil {
			t.Fatalf("launch %s: %v", name, err)
		}
	}
}

// TestScheduledClusterCoreAuction is the tentpole demo at scale: eight
// domains auctioning over the 128-core pool (the SMAS task-map page caps
// a domain at 128 cores, so each of the eight machines spans the full
// pool — 1024 simulated cores in all) with over a thousand uProcesses.
// Heavy domains (0-3) carry ~4× the load of light domains (4-7); the
// fair-share policy must shift cores toward demand while every domain
// keeps its floor, and no core may ever be owned by two domains.
func TestScheduledClusterCoreAuction(t *testing.T) {
	s, err := NewScheduledCluster(SchedClusterConfig{
		Domains:      8,
		Cores:        128,
		CoresPerNode: 16,
		Policy:       "fairshare",
		Quantum:      1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals in waves, so placement spreads onto cores as they are
	// granted: 8 waves × (30 heavy + 2 light per domain) =
	// 8×(4×30+4×2) = 1024 uProcesses. Heavy demand saturates the
	// per-domain slot cap; light demand stays below it.
	total := 0
	for wave := 0; wave < 8; wave++ {
		for d := 0; d < 8; d++ {
			n := 2
			if d < 4 {
				n = 30
			}
			launchWave(t, s, d, n, fmt.Sprintf("w%d", wave))
			total += n
		}
		if err := s.Run(6); err != nil {
			t.Fatal(err)
		}
	}
	if total != 1024 {
		t.Fatalf("launched %d uProcesses, want 1024", total)
	}
	if err := s.Run(30); err != nil {
		t.Fatal(err)
	}

	// Conservation: every pool core is owned by at most one domain, and
	// the ledger's view matches each domain's online set.
	ownedTotal := 0
	for d := 0; d < s.Domains(); d++ {
		g := s.GrantedCount(d)
		if g < 1 {
			t.Fatalf("domain %d fell below its 1-core floor (granted=%d)", d, g)
		}
		ownedTotal += g
		for _, core := range s.Sched().Granted(d) {
			if !s.Manager(d).CoreOnline(core) {
				t.Fatalf("ledger grants core %d to domain %d but it is not online there", core, d)
			}
		}
	}
	if ownedTotal > 128 {
		t.Fatalf("ledger granted %d cores from a 128-core pool", ownedTotal)
	}
	// Demand shifted the auction: the heavy half of the cluster holds
	// strictly more cores than the light half.
	heavy, light := 0, 0
	for d := 0; d < 4; d++ {
		heavy += s.GrantedCount(d)
	}
	for d := 4; d < 8; d++ {
		light += s.GrantedCount(d)
	}
	if heavy <= light {
		t.Fatalf("fair share did not follow demand: heavy=%d light=%d", heavy, light)
	}
	// Every domain actually ran its work (voluntary parks observed), and
	// executors were bound for every online core.
	for d := 0; d < s.Domains(); d++ {
		m := s.Manager(d)
		var parks uint64
		for _, core := range m.inner.OnlineCores() {
			p, _ := m.Stats(core)
			parks += p
			if m.inner.ExecutorOn(core) == nil {
				t.Fatalf("domain %d core %d online without a bound executor", d, core)
			}
		}
		if parks == 0 {
			t.Fatalf("domain %d never parked: its cores did no work", d)
		}
	}
	// The grant/upcall machinery really was exercised at scale: with the
	// 12-core slot cap per domain, a saturated cluster holds 96 cores;
	// most of that must have flowed through the grant path.
	r := s.Report()
	if r.Grants < 64 {
		t.Fatalf("only %d grants recorded for the auction", r.Grants)
	}
	if r.Actuation.Count == 0 {
		t.Fatal("no actuation latencies recorded")
	}
}

// TestScheduledClusterHotSwap swaps the cluster policy mid-run and checks
// the swap is recorded, the new policy decides, and scheduling continues.
func TestScheduledClusterHotSwap(t *testing.T) {
	s, err := NewScheduledCluster(SchedClusterConfig{
		Domains: 3,
		Cores:   12,
		Policy:  "fairshare",
		Quantum: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		launchWave(t, s, d, 4, "pre")
	}
	if err := s.Run(12); err != nil {
		t.Fatal(err)
	}
	if got := s.PolicyName(); got != "failsafe(fairshare)" {
		t.Fatalf("policy before swap = %q", got)
	}
	opsBefore := len(s.Sched().Ops())
	if err := s.SwapPolicy("uslatency", "operator upgrade"); err != nil {
		t.Fatal(err)
	}
	if got := s.PolicyName(); got != "failsafe(uslatency)" {
		t.Fatalf("policy after swap = %q", got)
	}
	for d := 0; d < 3; d++ {
		launchWave(t, s, d, 4, "post")
	}
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	swaps := s.Sched().Swaps()
	if len(swaps) != 1 {
		t.Fatalf("swaps = %+v, want exactly one", swaps)
	}
	sw := swaps[0]
	if sw.From != "failsafe(fairshare)" || sw.To != "failsafe(uslatency)" || sw.Reason != "operator upgrade" {
		t.Fatalf("swap record = %+v", sw)
	}
	if len(s.Sched().Ops()) <= opsBefore {
		t.Fatal("no ledger operations committed after the hot swap")
	}
	if s.Events().CountByName("csched.swap") != 1 {
		t.Fatal("csched.swap missing from the event log")
	}
	// Unknown policies are refused without disturbing the active one.
	if err := s.SwapPolicy("nonsense", "x"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if got := s.PolicyName(); got != "failsafe(uslatency)" {
		t.Fatalf("failed swap changed the policy to %q", got)
	}
}

// TestScheduledClusterPolicyPanicFailsafe injects a cluster-policy panic
// mid-run: the failsafe must absorb it, swap one-way to static, keep the
// cluster scheduling, and the swap must be visible in the event log, the
// flight recorder, and the swap dumps.
func TestScheduledClusterPolicyPanicFailsafe(t *testing.T) {
	s, err := NewScheduledCluster(SchedClusterConfig{
		Domains:   3,
		Cores:     12,
		Policy:    "fairshare",
		Quantum:   1000,
		SLOTarget: 50 * Microsecond,
		Faults: &FaultPlan{
			Seed:   7,
			Faults: []InjectedFault{{Kind: FaultClusterPolicyPanic, At: Time(2 * Microsecond)}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		launchWave(t, s, d, 5, "app")
	}
	if err := s.Run(40); err != nil {
		t.Fatal(err)
	}
	if got := s.PolicyName(); got != "failsafe[static]" {
		t.Fatalf("policy after panic = %q, want failsafe[static]", got)
	}
	swaps := s.Sched().Swaps()
	if len(swaps) != 1 || !strings.HasPrefix(swaps[0].Reason, "failsafe:") {
		t.Fatalf("swaps = %+v, want one failsafe takeover", swaps)
	}
	if s.Events().CountByName("csched.failsafe") != 1 {
		t.Fatal("csched.failsafe missing from the event log")
	}
	if s.Events().CountByName("inject.clusterpolicypanic") != 1 {
		t.Fatal("injection not recorded")
	}
	// The takeover is in the flight recorder of every domain's tracer and
	// produced a post-incident dump.
	for d := 0; d < 3; d++ {
		found := false
		for _, ev := range s.Tracer(d).Flight().Events() {
			if ev.Name == "cluster.policy.swap" {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("domain %d flight recorder missing cluster.policy.swap", d)
		}
	}
	if len(s.SwapDumps) != 1 || !strings.Contains(s.SwapDumps[0].Text(), "cluster policy swap") {
		t.Fatalf("swap dumps = %d", len(s.SwapDumps))
	}
	// Static keeps granting: the cluster still works after the takeover.
	ops := len(s.Sched().Ops())
	for d := 0; d < 3; d++ {
		launchWave(t, s, d, 3, "after")
	}
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	if len(s.Sched().Ops()) <= ops {
		t.Fatal("no grants after failsafe takeover")
	}
}

// TestScheduledClusterDeterminism runs the same auction twice and
// byte-compares the canonical reports — the determinism witness.
func TestScheduledClusterDeterminism(t *testing.T) {
	run := func() []byte {
		s, err := NewScheduledCluster(SchedClusterConfig{
			Domains: 4,
			Cores:   32,
			Policy:  "fairshare",
			Quantum: 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		for wave := 0; wave < 3; wave++ {
			for d := 0; d < 4; d++ {
				n := 2 + 3*(d%2)
				launchWave(t, s, d, n, fmt.Sprintf("w%d", wave))
			}
			if err := s.Run(5); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Run(17); err != nil {
			t.Fatal(err)
		}
		return s.Report().Canonical()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical reports differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestScheduledClusterDetectorChurn pins the failure detector's tracked
// set to the ledger: granted cores are tracked, revoked ones forgotten.
func TestScheduledClusterDetectorChurn(t *testing.T) {
	s, err := NewScheduledCluster(SchedClusterConfig{
		Domains: 2,
		Cores:   8,
		Policy:  "fairshare",
		Quantum: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	launchWave(t, s, 0, 8, "busy")
	if err := s.Run(24); err != nil {
		t.Fatal(err)
	}
	tracked := make(map[string]bool)
	for _, id := range s.Detector().Tracked() {
		tracked[id] = true
	}
	n := 0
	for d := 0; d < 2; d++ {
		for _, core := range s.Sched().Granted(d) {
			id := fmt.Sprintf("d%d.c%d", d, core)
			if !tracked[id] {
				t.Fatalf("granted core %s not tracked by the detector", id)
			}
			n++
		}
	}
	if len(tracked) != n {
		t.Fatalf("detector tracks %d ids, ledger grants %d cores — revoked cores not forgotten", len(tracked), n)
	}
}

// TestScheduledClusterUpcallSpans checks the observability wiring: grant
// and revoke actuations emit CatUpcall spans (commit → delivery) and a
// domain-to-domain core transfer emits a CatGrant span.
func TestScheduledClusterUpcallSpans(t *testing.T) {
	o := NewObserver(0)
	s, err := NewScheduledCluster(SchedClusterConfig{
		Domains: 2,
		Cores:   6,
		Policy:  "fairshare",
		Quantum: 1000,
		Obs:     o,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Domain 1 runs finite work, then goes idle; its cores are yielded,
	// revoked, and re-granted to the still-busy domain 0 — the
	// domain-to-domain handoff the CatGrant span captures.
	finite := func(m *Manager) (*Program, error) {
		return m.NewProgram("finite").Repeat(10, func(b *ProgramBuilder) {
			b.Compute(500).Park()
		}).Exit().Build()
	}
	launchWave(t, s, 0, 10, "busy")
	for i := 0; i < 4; i++ {
		if _, err := s.Launch(1, fmt.Sprintf("finite-%d", i), finite); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(80); err != nil {
		t.Fatal(err)
	}
	var upcalls, transfers int
	for _, sp := range o.Spans() {
		switch sp.Cat {
		case obs.CatUpcall:
			upcalls++
		case obs.CatGrant:
			transfers++
			if !strings.Contains(sp.Name, "->d0") {
				t.Fatalf("transfer span %q does not land in domain 0", sp.Name)
			}
		}
	}
	if upcalls < 3 {
		t.Fatalf("only %d CatUpcall spans recorded", upcalls)
	}
	if transfers == 0 {
		t.Fatal("no CatGrant transfer spans recorded")
	}
}
