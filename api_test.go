package vessel

import (
	"fmt"
	"testing"
)

func TestNewScheduler(t *testing.T) {
	for _, name := range []string{"vessel", "VESSEL", "caladan", "caladan-dr-l", "dr-h", "linux", "cfs", "arachne"} {
		s, err := NewScheduler(name)
		if err != nil || s == nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := NewScheduler("windows"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if len(Schedulers()) != 6 {
		t.Fatalf("schedulers = %d", len(Schedulers()))
	}
	if Schedulers()[0].Name() != "VESSEL" {
		t.Fatal("VESSEL must lead")
	}
}

func TestEndToEndColocation(t *testing.T) {
	// The quickstart path: colocate memcached with Linpack under VESSEL
	// and under Caladan; VESSEL keeps more of the machine.
	run := func(s Scheduler) Result {
		cfg := Config{
			Seed:     7,
			Cores:    8,
			Duration: 20 * Millisecond,
			Warmup:   4 * Millisecond,
			Apps:     []*App{NewMemcached(0.5 * IdealCapacity(8, MemcachedDist())), NewLinpack()},
			Costs:    DefaultCosts(),
		}
		res, err := s.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	v := run(VESSEL())
	c := run(Caladan())
	if v.TotalNormTput() <= c.TotalNormTput() {
		t.Fatalf("VESSEL %.3f should beat Caladan %.3f", v.TotalNormTput(), c.TotalNormTput())
	}
	if v.LAppP999() <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestAppConstructors(t *testing.T) {
	if NewMemcached(1e6).Name != "memcached" || NewSilo(1e5).Name != "silo" {
		t.Fatal("names")
	}
	if NewLinpack().Kind == NewMemcached(1).Kind {
		t.Fatal("kinds")
	}
	custom := NewBApp("x", 3, 0.5)
	if custom.AvgBW() != 1.5 {
		t.Fatal("custom B-app")
	}
	l := NewLApp("y", SiloDist(), 100)
	if l.Dist == nil {
		t.Fatal("custom L-app")
	}
	if IdealCapacity(8, MemcachedDist()) != 8e6 {
		t.Fatal("capacity")
	}
	if DefaultCosts().CaladanReallocTotal() != 5300*Nanosecond {
		t.Fatal("cost model")
	}
}

func TestMachineAPIQuickstart(t *testing.T) {
	// The mechanism-level path: two uProcesses ping-pong on one core.
	mgr, err := NewManager(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) *Program {
		p, err := mgr.NewProgram(name).Forever(func(b *ProgramBuilder) {
			b.Compute(500).Park()
		}).Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := mgr.Launch("a", mk("a"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Launch("b", mk("b"), 0); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(0); err != nil {
		t.Fatal(err)
	}
	mgr.Step(0, 5000)
	parks, _ := mgr.Stats(0)
	if parks < 20 {
		t.Fatalf("parks = %d", parks)
	}
	if mgr.CyclesNs(0) <= 0 {
		t.Fatal("no cycles")
	}
	if err := mgr.Destroy("a"); err != nil {
		t.Fatal(err)
	}
	mgr.Step(0, 2000)
	ub, _ := mgr.inner.Lookup("b")
	if ub.State != 0 { // UProcRunning
		t.Fatal("b should survive a's destruction")
	}
}

func TestProgramBuilderRepeatAndValidation(t *testing.T) {
	mgr, err := NewManager(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := mgr.NewProgram("worker").Repeat(10, func(b *ProgramBuilder) {
		b.Compute(100).Park()
	}).Exit().Build()
	if err != nil {
		t.Fatal(err)
	}
	u, err := mgr.Launch("w", p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(0); err != nil {
		t.Fatal(err)
	}
	mgr.Step(0, 5000)
	if u.Threads()[0].State.String() != "dead" {
		t.Fatalf("worker state = %v after Repeat(10)+Exit", u.Threads()[0].State)
	}
	parks, _ := mgr.Stats(0)
	if parks < 10 {
		t.Fatalf("parks = %d, want ≥ 10", parks)
	}
	// Builder validation.
	if _, err := mgr.NewProgram("e").Build(); err == nil {
		t.Fatal("empty program accepted")
	}
	if _, err := mgr.NewProgram("z").Compute(0).Build(); err == nil {
		t.Fatal("zero compute accepted")
	}
	if _, err := mgr.NewProgram("r0").Repeat(0, func(*ProgramBuilder) {}).Build(); err == nil {
		t.Fatal("zero repeat accepted")
	}
	_, err = mgr.NewProgram("nest").Repeat(2, func(b *ProgramBuilder) {
		b.Repeat(2, func(*ProgramBuilder) {})
	}).Build()
	if err == nil {
		t.Fatal("nested repeat accepted")
	}
}

func TestPreemptAPI(t *testing.T) {
	mgr, err := NewManager(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	spin, err := mgr.NewProgram("spin").Forever(func(b *ProgramBuilder) {
		b.Compute(100)
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	other, err := mgr.NewProgram("other").Forever(func(b *ProgramBuilder) {
		b.Compute(100).Park()
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Launch("spin", spin, 0); err != nil {
		t.Fatal(err)
	}
	uo, err := mgr.Launch("other", other, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pull "other" off the queue so we can activate it explicitly.
	if err := mgr.Start(0); err != nil {
		t.Fatal(err)
	}
	mgr.Step(0, 100)
	if err := mgr.Preempt(0, nil); err != nil {
		t.Fatal(err)
	}
	mgr.Step(0, 500)
	_, preempts := mgr.Stats(0)
	if preempts == 0 {
		t.Fatal("no preemption delivered")
	}
	if uo.Threads()[0].Switches == 0 {
		t.Fatal("other never ran")
	}
}

// TestSelfHealFacade drives the re-exported self-healing surface end to
// end: a supervised cluster, a deterministic fault plan using the new
// kinds, and a clean recovery report.
func TestSelfHealFacade(t *testing.T) {
	c, err := NewSelfHealCluster(SelfHealConfig{Domains: 1, CoresPerDomain: 2})
	if err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 2; core++ {
		name := fmt.Sprintf("w%d", core)
		err := c.AddWorker(0, name, func(mg *DomainManager) *Program {
			p, err := wrapManagerProgram(mg, name)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}, core, RestartPolicy{})
		if err != nil {
			t.Fatal(err)
		}
	}
	c.InjectFaults(0, FaultPlan{Seed: 1, Faults: []InjectedFault{
		{Kind: FaultCoreStall, Core: 1, At: Time(10 * Microsecond)},
		{Kind: FaultPkeyLeak, At: Time(20 * Microsecond)},
	}})
	rep, err := c.Run(300_000, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Fences != 1 || rep.PkeysHealed == 0 {
		t.Fatalf("fences=%d healed=%d\n%s", rep.Fences, rep.PkeysHealed, rep.Canonical())
	}
	// The failsafe policy facade stands alone too.
	f := NewFailsafePolicy(FairSharePolicy{}, 1000)
	f.InjectPanic()
	f.Decide(PolicyView{Core: 0, RanFull: true})
	if swapped, reason := f.Swapped(); !swapped || reason != "panic" {
		t.Fatalf("failsafe swap: %v %q", swapped, reason)
	}
	// And the detector.
	det := NewFailureDetector(FailureDetectorConfig{})
	det.Track("c0", 0)
	det.Beat("c0", Time(10*Microsecond))
	if det.Suspect("c0", Time(11*Microsecond)) {
		t.Fatal("healthy entity suspected")
	}
	if !det.Suspect("c0", Time(10*Millisecond)) {
		t.Fatal("silent entity not suspected")
	}
}

// wrapManagerProgram builds a park-loop against a self-heal domain's
// manager via the raw program surface (the cluster rebuilds workers on
// restart, so the build function must be re-runnable).
func wrapManagerProgram(mg *DomainManager, name string) (*Program, error) {
	w := WrapManager(mg)
	return w.NewProgram(name).Forever(func(b *ProgramBuilder) {
		b.Compute(500).Park()
	}).Build()
}
