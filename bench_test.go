package vessel

// The benchmark harness: one testing.B per table and figure of the paper's
// evaluation (§6), each regenerating the result on the simulated substrate
// and reporting the headline numbers as custom metrics, plus ablation
// benches for the design choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// cmd/experiments prints the same results as full text tables.

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/experiments"
	"vessel/internal/mmubench"
	"vessel/internal/sched"
	"vessel/internal/sim"
	ivessel "vessel/internal/vessel"
	"vessel/internal/workload"
)

var benchOpts = experiments.Options{Seed: 42, Quick: true}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure1(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.MaxDecline*100, "max-decline-%")
		b.ReportMetric(f.MaxOverhead*100, "max-overhead-%")
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		last := f.Points[len(f.Points)-1]
		b.ReportMetric(last.KernelFrac*100, "kernel-%@10apps")
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure3()
		b.ReportMetric(float64(f.Total), "caladan-realloc-ns")
		b.ReportMetric(float64(f.VesselPreempt), "vessel-preempt-ns")
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure7(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.AppFrac["VESSEL"]*100, "vessel-appfrac-%")
		b.ReportMetric(f.AppFrac["Caladan"]*100, "caladan-appfrac-%")
	}
}

func BenchmarkFigure9Memcached(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure9(benchOpts, "memcached")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.AvgDecline["VESSEL"]*100, "vessel-decline-%")
		b.ReportMetric(f.AvgDecline["Caladan"]*100, "caladan-decline-%")
	}
}

func BenchmarkFigure9Silo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure9(benchOpts, "silo")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.AvgDecline["VESSEL"]*100, "vessel-decline-%")
		b.ReportMetric(f.AvgDecline["Caladan"]*100, "caladan-decline-%")
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure10(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if v10, ok := f.At("VESSEL", 10, 0.5); ok {
			b.ReportMetric(float64(v10.MaxP999Ns)/1000, "vessel-10app-p999-µs")
		}
		if c10, ok := f.At("Caladan-DR-L", 10, 0.5); ok {
			b.ReportMetric(float64(c10.MaxP999Ns)/1000, "caladan-10app-p999-µs")
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.RunTable1(benchOpts, 100_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tb.Rows[0].Summary.Avg, "vessel-avg-ns")
		b.ReportMetric(float64(tb.Rows[0].Summary.P999), "vessel-p999-ns")
		b.ReportMetric(tb.Rows[1].Summary.Avg, "caladan-avg-ns")
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure11(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Interleaved.MissRate*100, "caladan-miss-%")
		b.ReportMetric(f.Colored.MissRate*100, "vessel-miss-%")
		b.ReportMetric(f.TimeReduction*100, "time-reduction-%")
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure12(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range f.Points {
			if p.System == "VESSEL" && p.Cores == 42 {
				b.ReportMetric(p.GoodputMops, "vessel-42core-Mops")
			}
			if p.System == "Caladan-DR-L" && p.Cores == 42 {
				b.ReportMetric(p.GoodputMops, "caladan-42core-Mops")
			}
		}
	}
}

func BenchmarkFigure13a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure13a(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Advantage*100, "vessel-advantage-%")
	}
}

func BenchmarkFigure13b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure13b(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.AvgError["VESSEL"]*100, "vessel-err-%")
		b.ReportMetric(f.AvgError["Intel-MBA"]*100, "mba-err-%")
	}
}

// ---- simulated-MMU fast path --------------------------------------------------
//
// Bodies live in internal/mmubench so cmd/mmubench can run the identical
// code and emit BENCH_mmu.json; the Slow variants measure the same work
// with the fast path off, giving an in-process speedup ratio.

func BenchmarkCoreStep(b *testing.B)       { mmubench.BenchCoreStep(b) }
func BenchmarkCoreStepNoSB(b *testing.B)   { mmubench.BenchCoreStepNoSB(b) }
func BenchmarkCoreStepSlow(b *testing.B)   { mmubench.BenchCoreStepSlow(b) }
func BenchmarkASCheckHit(b *testing.B)     { mmubench.BenchASCheckHit(b) }
func BenchmarkASCheckHitSlow(b *testing.B) { mmubench.BenchASCheckHitSlow(b) }
func BenchmarkReadBytes4K(b *testing.B)    { mmubench.BenchReadBytes4K(b) }
func BenchmarkReadBytes4KSlow(b *testing.B) {
	mmubench.BenchReadBytes4KSlow(b)
}

// ---- ablations ---------------------------------------------------------------

// benchColo runs the standard colocation under a scheduler with a cost
// model and reports total normalized throughput and P999.
func benchColo(b *testing.B, s sched.Scheduler, costs *cpu.CostModel, label string) {
	b.Helper()
	cfg := sched.Config{
		Seed:     42,
		Cores:    8,
		Duration: 20 * sim.Millisecond,
		Warmup:   4 * sim.Millisecond,
		Apps: []*workload.App{
			workload.NewLApp("memcached", workload.Memcached(), 0.5*sched.IdealLCapacity(8, workload.Memcached())),
			workload.Linpack(),
		},
		Costs: costs,
	}
	res, err := s.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.TotalNormTput(), label+"-norm")
	b.ReportMetric(float64(res.LAppP999())/1000, label+"-p999-µs")
}

// BenchmarkAblationOneLevelVsTwoLevel contrasts the one-level policy
// (VESSEL) against the two-level conservative policy (Caladan) on identical
// hardware costs — the §4.5 design argument.
func BenchmarkAblationOneLevelVsTwoLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchColo(b, ivessel.Simulator{}, cpu.Default(), "one-level")
		benchColo(b, mustSched(b, "caladan"), cpu.Default(), "two-level")
	}
}

func mustSched(b *testing.B, name string) sched.Scheduler {
	b.Helper()
	s, err := NewScheduler(name)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkAblationUintrVsKernelIPI runs VESSEL with the Uintr preemption
// path replaced by the legacy kernel IPI+signal path — quantifying what the
// paper's central hardware bet buys.
func BenchmarkAblationUintrVsKernelIPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchColo(b, ivessel.Simulator{}, cpu.Default(), "uintr")
		slow := cpu.Default()
		slow.UintrDeliver = slow.KernelIPIPath
		slow.VesselPreemptSwitch = slow.CaladanParkPath
		benchColo(b, ivessel.Simulator{}, slow, "kernel-ipi")
	}
}

// BenchmarkAblationGateCost sweeps WRPKRU's cost across the 11–260 cycle
// range the paper cites (§2.3), showing the switch path's sensitivity.
func BenchmarkAblationGateCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cycles := range []int64{11, 28, 260} {
			cm := cpu.Default()
			cm.WrPkruCycles = cycles
			// Two WRPKRUs per gate crossing dominate the delta.
			delta := cm.CyclesToNs(2 * (cycles - 28))
			cm.VesselParkSwitch += delta
			cm.VesselPreemptSwitch += delta
			benchColo(b, ivessel.Simulator{}, cm, "wrpkru-"+itoa(cycles))
		}
	}
}

// BenchmarkAblationStealWindow sweeps Caladan's 2µs steal window,
// quantifying the conservative-policy cost the one-level design removes.
func BenchmarkAblationStealWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, win := range []sim.Duration{500, 2000, 8000} {
			cm := cpu.Default()
			cm.CaladanStealWin = win
			benchColo(b, mustSched(b, "caladan"), cm, "steal-"+itoa(int64(win)))
		}
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
