// Package vessel is a from-scratch Go reproduction of "Fast Core Scheduling
// with Userspace Process Abstraction" (SOSP 2024): the uProcess abstraction
// — applications sharing one MPK-protected address space, entering a
// userspace privileged mode through a hardened call gate, preempted by user
// interrupts — and VESSEL, the one-level userspace core scheduler built on
// it.
//
// Real UINTR/MPK hardware cannot be driven from a managed runtime, so the
// repository models the hardware and kernel deterministically (see
// DESIGN.md) at two fidelity levels, both exposed through this package:
//
//   - The mechanism level: NewManager boots a simulated machine with a
//     shared memory address space, call gates, and user-interrupt routing.
//     Programs built with ProgramBuilder execute instruction-by-instruction
//     with the architectural PKRU∧page-permission check on every access.
//
//   - The performance level: NewScheduler returns event-driven simulators
//     of VESSEL and the paper's baselines (Caladan with Delay Range
//     variants, Linux CFS, Arachne). Run a Config describing colocated
//     latency-critical and best-effort applications and compare normalized
//     throughput, tail latency, and the cycle breakdown.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; cmd/experiments prints them as text tables.
package vessel
