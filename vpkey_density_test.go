package vessel

import (
	"fmt"
	"testing"

	conformance "vessel/internal/conformance"
)

// TestDenseClusterHundredUProcessesOneDomain is the density acceptance
// demo: with virtualized protection keys a single scheduling domain
// hosts well over a hundred uProcesses — an order of magnitude past the
// architectural 13-key budget — with every isolation oracle holding.
func TestDenseClusterHundredUProcessesOneDomain(t *testing.T) {
	c, err := NewDenseCluster(1, 2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 110
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("dense-%03d", i)
		if _, err := c.Launch(name, buildParkLoop, i%2); err != nil {
			t.Fatalf("launch %s: %v", name, err)
		}
		if d, ok := c.DomainOf(name); !ok || d != 0 {
			t.Fatalf("%s placed in domain %d, want the single domain 0", name, d)
		}
	}
	for core := 0; core < 2; core++ {
		if err := c.Start(core); err != nil {
			t.Fatal(err)
		}
		c.Step(core, 120_000)
	}
	m := c.Manager(0)
	// Every uProcess made progress: parks only happen after a full
	// gate crossing through the uProcess's own (virtual) key.
	for core := 0; core < 2; core++ {
		parks, _ := m.Stats(core)
		if parks < n/2 {
			t.Fatalf("core %d parks = %d, want ≥ %d", core, parks, n/2)
		}
	}
	vt := m.VPkey()
	if vt == nil {
		t.Fatal("dense cluster did not virtualize keys")
	}
	if vt.Live() != n {
		t.Fatalf("live virtual keys = %d, want %d", vt.Live(), n)
	}
	if vt.Evictions == 0 || vt.Refills == 0 {
		t.Fatalf("density without eviction pressure: evictions=%d refills=%d",
			vt.Evictions, vt.Refills)
	}
	if vs := conformance.CheckVPkeyLifecycle("dense-cluster", m.SMAS()); len(vs) != 0 {
		t.Fatalf("lifecycle oracles flagged:\n%v", vs)
	}
	// Churn: destroy a third, relaunch, oracles still hold.
	for i := 0; i < n; i += 3 {
		if err := c.Destroy(fmt.Sprintf("dense-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Launch(fmt.Sprintf("refill-%02d", i), buildParkLoop, i%2); err != nil {
			t.Fatalf("relaunch %d: %v", i, err)
		}
	}
	for core := 0; core < 2; core++ {
		c.Step(core, 20_000)
	}
	if vs := conformance.CheckVPkeyLifecycle("dense-cluster", m.SMAS()); len(vs) != 0 {
		t.Fatalf("lifecycle oracles flagged after churn:\n%v", vs)
	}
}
