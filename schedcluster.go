package vessel

// Two-level cluster scheduling (DESIGN.md §16): the lower level is the
// mechanism — domains actuate CoreGranted/CoreRevoked upcalls at step
// boundaries, binding executors from per-NUMA caches and re-homing
// runqueues on revoke — and the upper level is a hot-swappable,
// fault-isolated cluster policy proposing grant/revoke transactions
// against the authoritative core ledger (internal/clustersched). This
// file is the driver that runs both levels on one shared virtual
// timeline.

import (
	"fmt"

	"vessel/internal/clustersched"
	"vessel/internal/faultinject"
	"vessel/internal/obs"
	"vessel/internal/obs/journey"
	"vessel/internal/selfheal"
	"vessel/internal/sim"
	"vessel/internal/smas"
	"vessel/internal/trace"
	ivessel "vessel/internal/vessel"
)

// SchedClusterConfig sizes a scheduled cluster.
type SchedClusterConfig struct {
	// Domains is the number of scheduling domains competing for cores.
	Domains int
	// Cores is the shared core pool every domain's machine spans; the
	// ledger keeps each pool core online in at most one domain.
	Cores int
	// CoresPerNode fixes the NUMA granularity of the executor caches
	// (≤ 0 treats the whole pool as one node).
	CoresPerNode int
	// Policy names the initial cluster policy (clustersched.Names();
	// empty selects "fairshare"). It always runs wrapped in the failsafe.
	Policy string
	// MinPerDomain / MaxPerDomain bound any domain's granted cores
	// (defaults: 1 / uncapped).
	MinPerDomain int
	MaxPerDomain int
	// PolicyBudgetCycles is the failsafe's per-decision budget (0 picks
	// the selfheal default).
	PolicyBudgetCycles int64
	// Quantum is instructions per online core per round (default 2000).
	Quantum int
	// ScheduleEvery is rounds between policy decisions (default 4).
	ScheduleEvery int
	// Costs is the machine cost model (nil uses defaults).
	Costs *CostModel
	// SLOTarget, when positive, attaches a request-journey tracer to
	// every domain with this per-request deadline; the tracers'
	// violation fractions feed the policy's per-domain SLO signal.
	SLOTarget Duration
	// JourneySampleEvery records one journey in N (≤ 1 records all).
	JourneySampleEvery int
	// Obs, when non-nil, receives grant/upcall spans (CatGrant/CatUpcall)
	// and failsafe markers.
	Obs *Observer
	// Faults, when non-nil, attaches a deterministic fault plan whose
	// cluster-policy faults target the failsafe wrapper.
	Faults *FaultPlan
}

// ScheduledCluster runs scheduling domains under the two-level cluster
// scheduler: a shared engine, one ledger, per-domain upcall actuation,
// and a policy deciding every few rounds.
type ScheduledCluster struct {
	cfg      SchedClusterConfig
	eng      *sim.Engine
	sched    *clustersched.Sched
	failsafe *clustersched.Failsafe
	managers []*Manager
	clients  []clustersched.Client
	tracers  []*journey.Tracer
	events   *trace.EventLog
	det      *selfheal.Detector
	injector *faultinject.Injector

	placement map[string]int
	rounds    int
	// idleRounds counts consecutive no-backlog rounds per domain; a
	// domain yields an idle core only after a full schedule interval of
	// idleness, so bursty arrivals don't thrash grants.
	idleRounds []int
	// transfer tracks cores mid-handoff: revoke actuated, grant pending.
	transfer map[int]coreTransfer
	// swapsSeen / opsSpanned cursor the swap and op streams for
	// flight-recorder and span emission.
	swapsSeen  int
	opsSpanned int
	// SwapDumps collects the flight-recorder dumps taken at each policy
	// swap (hot swaps and failsafe takeovers alike).
	SwapDumps []journey.Dump
}

type coreTransfer struct {
	at   Time
	from int
}

// NewScheduledCluster boots the domains (virtual-keyed, cluster-managed:
// all cores start released) on one shared engine, builds the ledger, and
// bootstraps every domain's first MinPerDomain cores through the normal
// commit/upcall path.
func NewScheduledCluster(cfg SchedClusterConfig) (*ScheduledCluster, error) {
	if cfg.Domains <= 0 {
		return nil, fmt.Errorf("vessel: scheduled cluster needs at least one domain")
	}
	if cfg.Cores < cfg.Domains {
		return nil, fmt.Errorf("vessel: %d cores cannot seed %d domains", cfg.Cores, cfg.Domains)
	}
	if cfg.Policy == "" {
		cfg.Policy = "fairshare"
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 2000
	}
	if cfg.ScheduleEvery <= 0 {
		cfg.ScheduleEvery = 4
	}
	if cfg.MaxPerDomain <= 0 {
		// The domains virtualize protection keys, and every online core
		// pins its active uProcess's key to a hardware slot: granting a
		// domain as many cores as app slots wedges the eviction path (all
		// 13 resident keys pinned, so a new region cannot be tagged). Cap
		// any one domain at the slot budget minus one slack slot by
		// default; callers may raise it if their concurrency stays low.
		cfg.MaxPerDomain = smas.MaxUProcs - 1
	}
	primary, err := clustersched.NewNamed(cfg.Policy)
	if err != nil {
		return nil, err
	}
	s := &ScheduledCluster{
		cfg:        cfg,
		eng:        sim.NewEngine(),
		events:     trace.NewEventLog(1 << 14),
		det:        selfheal.NewDetector(selfheal.DetectorConfig{}),
		placement:  make(map[string]int),
		idleRounds: make([]int, cfg.Domains),
		transfer:   make(map[int]coreTransfer),
	}
	s.failsafe = clustersched.NewFailsafe(primary, cfg.PolicyBudgetCycles)
	s.sched, err = clustersched.New(clustersched.Config{
		Topo:         clustersched.Topology{Cores: cfg.Cores, CoresPerNode: cfg.CoresPerNode},
		Domains:      cfg.Domains,
		MinPerDomain: cfg.MinPerDomain,
		MaxPerDomain: cfg.MaxPerDomain,
		Events:       s.events,
	}, s.failsafe)
	if err != nil {
		return nil, err
	}
	for d := 0; d < cfg.Domains; d++ {
		mg, err := ivessel.NewVirtualManagerOn(s.eng, cfg.Cores, cfg.Costs)
		if err != nil {
			return nil, err
		}
		mg.UseEvents(s.events)
		if err := mg.SetClusterManaged(cfg.CoresPerNode); err != nil {
			return nil, err
		}
		var tr *journey.Tracer
		if cfg.SLOTarget > 0 || cfg.JourneySampleEvery > 1 {
			tr = journey.NewTracer(journey.Config{
				SLOTarget:   cfg.SLOTarget,
				SampleEvery: cfg.JourneySampleEvery,
			})
			mg.AttachJourney(tr)
		}
		s.managers = append(s.managers, &Manager{inner: mg})
		s.tracers = append(s.tracers, tr)
		s.clients = append(s.clients, &domainClient{c: s, domain: d})
	}
	if cfg.Faults != nil {
		s.injector = faultinject.New(s.managers[0].inner.Domain, *cfg.Faults)
		s.injector.AttachClusterPolicy(s.failsafe)
	}
	if _, err := s.sched.Bootstrap(0, s.eng.Now()); err != nil {
		return nil, err
	}
	if err := s.deliverAll(); err != nil {
		return nil, err
	}
	return s, nil
}

// domainClient actuates one domain's upcalls: grants bind a cached
// executor and bring the core online; revokes re-home the runqueue and
// drain a running thread at its next gate. It also keeps the failure
// detector's tracked set congruent with the ledger (granted-core churn)
// and emits the domain-transfer spans.
type domainClient struct {
	c      *ScheduledCluster
	domain int
}

func coreID(domain, core int) string { return fmt.Sprintf("d%d.c%d", domain, core) }

func (dc *domainClient) CoreGranted(core int, at sim.Time) error {
	s := dc.c
	if err := s.managers[dc.domain].GrantCore(core); err != nil {
		return err
	}
	s.det.Track(coreID(dc.domain, core), at)
	if tf, ok := s.transfer[core]; ok {
		delete(s.transfer, core)
		s.cfg.Obs.Span(core, tf.at, at, obs.CatGrant,
			fmt.Sprintf("transfer d%d->d%d", tf.from, dc.domain))
	}
	return nil
}

func (dc *domainClient) CoreRevoked(core int, at sim.Time) (int, error) {
	s := dc.c
	moved, err := s.managers[dc.domain].RevokeCore(core)
	if err != nil {
		return moved, err
	}
	s.det.Forget(coreID(dc.domain, core))
	s.transfer[core] = coreTransfer{at: at, from: dc.domain}
	return moved, nil
}

// deliverAll drains every domain's pending upcalls at the current step
// boundary, then emits the CatUpcall actuation spans (commit→delivery)
// for ops that just landed.
func (s *ScheduledCluster) deliverAll() error {
	now := s.eng.Now()
	for d := range s.managers {
		if _, err := s.sched.Deliver(d, now, s.clients[d]); err != nil {
			return err
		}
	}
	if s.cfg.Obs != nil {
		ops := s.sched.Ops()
		// Ops commit in order but actuate per-domain FIFO; everything up
		// to the first undelivered op is final, so the cursor only has to
		// re-scan the (short) tail behind a held-back grant.
		for i := s.opsSpanned; i < len(ops); i++ {
			op := ops[i]
			if !op.Delivered {
				break
			}
			s.opsSpanned = i + 1
			s.cfg.Obs.Span(op.Core, op.At, op.DeliveredAt, obs.CatUpcall,
				fmt.Sprintf("%s d%d", op.Kind, op.Domain))
		}
	}
	return nil
}

// Launch places a uProcess in the given domain, queued on the online core
// with the shortest runqueue. The build function receives the domain's
// manager, because programs are assembled against its call gates.
func (s *ScheduledCluster) Launch(domain int, name string, build func(*Manager) (*Program, error)) (*UProc, error) {
	if domain < 0 || domain >= len(s.managers) {
		return nil, fmt.Errorf("vessel: domain %d out of range", domain)
	}
	if _, dup := s.placement[name]; dup {
		return nil, fmt.Errorf("vessel: uProcess %q already exists in the cluster", name)
	}
	m := s.managers[domain]
	core, best := -1, 0
	for _, c := range m.inner.OnlineCores() {
		if q := len(m.inner.Domain.Runqueue(c)); core < 0 || q < best {
			core, best = c, q
		}
	}
	if core < 0 {
		return nil, fmt.Errorf("vessel: domain %d holds no online cores", domain)
	}
	prog, err := build(m)
	if err != nil {
		return nil, err
	}
	u, err := m.Launch(name, prog, core)
	if err != nil {
		return nil, err
	}
	s.placement[name] = domain
	return u, nil
}

// Destroy removes a uProcess, drains its lazy termination to quiescence,
// and reclaims its region and key.
func (s *ScheduledCluster) Destroy(name string) error {
	d, ok := s.placement[name]
	if !ok {
		return fmt.Errorf("vessel: no uProcess %q in the cluster", name)
	}
	m := s.managers[d]
	if err := m.Destroy(name); err != nil {
		return err
	}
	delete(s.placement, name)
	if _, err := m.DrainZombies(0); err != nil {
		return err
	}
	_, err := m.Reap()
	return err
}

// Run drives the cluster for the given number of rounds. Each round:
// deliver pending upcalls at the step boundary, step every online core
// one quantum (waking idle cores so queued work dispatches), sync the
// shared clock, refresh the per-domain demand signals, fire due fault
// injections, and every ScheduleEvery rounds let the policy decide.
func (s *ScheduledCluster) Run(rounds int) error {
	for r := 0; r < rounds; r++ {
		if err := s.deliverAll(); err != nil {
			return err
		}
		for d, m := range s.managers {
			for _, core := range m.inner.OnlineCores() {
				c := m.inner.Machine().Core(core)
				if c.Fault != nil || c.Stalled {
					continue
				}
				if c.Halted {
					if _, err := m.inner.Domain.Wake(core); err != nil {
						return err
					}
				}
				if c.Run(s.cfg.Quantum) > 0 {
					s.det.Beat(coreID(d, core), s.eng.Now())
				}
			}
		}
		s.syncClock()
		now := s.eng.Now()
		for d, m := range s.managers {
			backlog := m.Backlog()
			viol := 0.0
			if s.tracers[d] != nil {
				viol = s.tracers[d].ViolationFrac()
			}
			s.sched.SetSignals(d, backlog, viol)
			s.autoRequest(d, backlog, now)
		}
		if s.injector != nil {
			s.injector.Step(now)
		}
		s.rounds++
		if s.rounds%s.cfg.ScheduleEvery == 0 {
			s.sched.Schedule(now)
			s.surfaceSwaps()
		}
	}
	return s.deliverAll()
}

// autoRequest converts a domain's backlog into RequestCores/YieldCore
// traffic: it asks for enough cores to keep roughly two queued threads
// per core, and yields one idle core after a full schedule interval with
// no backlog.
func (s *ScheduledCluster) autoRequest(d, backlog int, now sim.Time) {
	granted := s.sched.GrantedCount(d)
	if backlog > 0 {
		s.idleRounds[d] = 0
		want := (backlog + 1) / 2
		if deficit := want - granted - s.sched.Want(d); deficit > 0 {
			// Errors are impossible here (domain is in range by
			// construction); ignore deliberately.
			_ = s.sched.RequestCores(d, deficit, now)
		}
		return
	}
	s.idleRounds[d]++
	min := s.cfg.MinPerDomain
	if min <= 0 {
		min = 1
	}
	if s.idleRounds[d] < s.cfg.ScheduleEvery || granted <= min {
		return
	}
	g := s.sched.Granted(d)
	m := s.managers[d]
	for i := len(g) - 1; i >= 0; i-- {
		core := g[i]
		if m.inner.CoreOnline(core) && m.inner.Machine().Core(core).Halted {
			_ = s.sched.YieldCore(d, core, now)
			s.idleRounds[d] = 0
			break
		}
	}
}

// surfaceSwaps pushes newly recorded policy swaps into every domain's
// flight recorder and the span timeline, and snapshots a journey dump per
// swap — the post-incident record of what the cluster was doing when the
// policy changed under it.
func (s *ScheduledCluster) surfaceSwaps() {
	swaps := s.sched.Swaps()
	for ; s.swapsSeen < len(swaps); s.swapsSeen++ {
		sw := swaps[s.swapsSeen]
		detail := fmt.Sprintf("%s->%s: %s", sw.From, sw.To, sw.Reason)
		for _, tr := range s.tracers {
			if tr == nil {
				continue
			}
			tr.Event(sw.At, "cluster.policy.swap", detail)
		}
		for _, tr := range s.tracers {
			if tr != nil {
				// One dump per swap is the record; every tracer carries the
				// event itself.
				s.SwapDumps = append(s.SwapDumps, tr.Dump(sw.At, "cluster policy swap: "+detail))
				break
			}
		}
		s.cfg.Obs.Mark(0, sw.At, obs.CatFailsafe, "cluster "+detail)
	}
}

// syncClock advances the shared engine to the farthest core's local time
// (firing due events on the way); if nothing ran, it ticks the clock by
// one quantum's worth so virtual time still advances while idle.
func (s *ScheduledCluster) syncClock() {
	var maxNs float64
	for _, m := range s.managers {
		mach := m.inner.Machine()
		for i := 0; i < mach.NumCores(); i++ {
			if ns := mach.NsFor(mach.Core(i).Cycles); ns > maxNs {
				maxNs = ns
			}
		}
	}
	if t := sim.Time(maxNs); t > s.eng.Now() {
		s.eng.Run(t)
		return
	}
	s.eng.Run(s.eng.Now().Add(sim.Duration(s.cfg.Quantum) * sim.Nanosecond))
}

// SwapPolicy hot-swaps the cluster policy mid-run. The new policy runs
// wrapped in a fresh failsafe (budget and panic isolation persist across
// swaps), and cluster-policy fault injections retarget the new wrapper.
func (s *ScheduledCluster) SwapPolicy(name, reason string) error {
	p, err := clustersched.NewNamed(name)
	if err != nil {
		return err
	}
	s.failsafe = clustersched.NewFailsafe(p, s.cfg.PolicyBudgetCycles)
	s.sched.SetPolicy(s.failsafe, s.eng.Now(), reason)
	if s.injector != nil {
		s.injector.AttachClusterPolicy(s.failsafe)
	}
	s.surfaceSwaps()
	return nil
}

// Domains returns the number of domains.
func (s *ScheduledCluster) Domains() int { return len(s.managers) }

// Manager returns domain d's manager (to build programs against its
// gates, or inspect its executors).
func (s *ScheduledCluster) Manager(d int) *Manager { return s.managers[d] }

// Tracer returns domain d's journey tracer (nil unless SLOTarget or
// sampling was configured).
func (s *ScheduledCluster) Tracer(d int) *JourneyTracer { return s.tracers[d] }

// Now returns the shared virtual clock.
func (s *ScheduledCluster) Now() Time { return s.eng.Now() }

// Events returns the cluster-wide event log: grants, revokes, swaps,
// containment, and injections interleave on one timeline.
func (s *ScheduledCluster) Events() *EventLog { return s.events }

// Detector returns the phi-accrual failure detector tracking granted
// cores (ids "d<domain>.c<core>").
func (s *ScheduledCluster) Detector() *FailureDetector { return s.det }

// GrantedCount returns how many cores the ledger currently grants d.
func (s *ScheduledCluster) GrantedCount(d int) int { return s.sched.GrantedCount(d) }

// PolicyName returns the active policy's name (failsafe-wrapped).
func (s *ScheduledCluster) PolicyName() string { return s.sched.PolicyName() }

// Sched exposes the cluster scheduler's ledger — the surface the
// conformance oracle replays.
func (s *ScheduledCluster) Sched() *clustersched.Sched { return s.sched }

// Report summarizes the run: moves, actuation latency, transactions,
// swaps, and the final ownership map, with a byte-canonical rendering.
func (s *ScheduledCluster) Report() *ClusterSchedReport { return s.sched.Report() }
