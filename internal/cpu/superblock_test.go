package cpu

import (
	"testing"

	"vessel/internal/mem"
	"vessel/internal/mpk"
)

// TestSuperblocksInvisible runs the differential probe program (loads,
// stores, stack traffic, a WRPKRU, a loop) with superblock fusion enabled
// and disabled: registers and cycle counts must match exactly. Fusion is
// pure mechanism — DisableSuperblocks exists so this differential (and
// the conformance sweep's) can prove it.
func TestSuperblocksInvisible(t *testing.T) {
	if DisableSuperblocks {
		t.Fatal("superblocks must be the default")
	}
	fastRegs, fastCycles := runCollatz(t)
	DisableSuperblocks = true
	defer func() { DisableSuperblocks = false }()
	slowRegs, slowCycles := runCollatz(t)
	if fastRegs != slowRegs {
		t.Fatalf("registers diverged: fused %v, per-instruction %v", fastRegs, slowRegs)
	}
	if fastCycles != slowCycles {
		t.Fatalf("cycles diverged: fused %d, per-instruction %d", fastCycles, slowCycles)
	}
}

// sbLoopEnv installs the standard five-instruction straight-line loop
// (store, load, add, push, pop, jmp) and warms the superblock store.
func sbLoopEnv(t *testing.T) (*Machine, *Core, *mem.AddressSpace) {
	t.Helper()
	m, c, as := buildEnv(t)
	a := NewAssembler()
	a.Emit(MovImm{RCX, 0x10000})
	a.Emit(MovImm{RBX, 27})
	a.Label("loop")
	a.Emit(Store{RBX, RCX, 0})
	a.Emit(Load{RDX, RCX, 0})
	a.Emit(AddImm{RBX, 3})
	a.Emit(Push{RBX})
	a.Emit(Pop{RDX})
	a.JmpTo("loop")
	prog, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	install(t, m, as, 0x1000, prog)
	c.Run(32)
	if c.Fault != nil {
		t.Fatal(c.Fault)
	}
	if fills, hits, _ := c.SuperblockStats(); !DisableSuperblocks && (fills == 0 || hits == 0) {
		t.Fatalf("warmup built no superblocks: fills=%d hits=%d", fills, hits)
	}
	return m, c, as
}

// TestSuperblockQuantumSplitEquivalence runs the same program in quantum
// slices of every awkward size — including 1, sizes that split a block
// mid-prefix, and sizes landing exactly on a terminator — and requires
// the step-count contract to hold: k calls of Run(q) retire exactly the
// same instructions, registers, PC, and cycles as the per-instruction
// loop stepping the same total.
func TestSuperblockQuantumSplitEquivalence(t *testing.T) {
	const total = 210
	type state struct {
		regs   [NumRegs]Word
		pc     mem.Addr
		cycles int64
		steps  int
	}
	runSliced := func(q int) state {
		_, c, _ := sbLoopEnv(t) // identical warmup for every slicing
		steps := 0
		for steps < total {
			n := q
			if total-steps < n {
				n = total - steps
			}
			ran := c.Run(n)
			if ran != n {
				t.Fatalf("Run(%d) retired %d on a non-halting program", n, ran)
			}
			steps += ran
		}
		return state{c.Regs, c.PC, c.Cycles, steps}
	}
	want := runSliced(total)
	for _, q := range []int{1, 2, 3, 5, 6, 7, 11, 64} {
		if got := runSliced(q); got != want {
			t.Fatalf("quantum %d diverged: %+v, want %+v", q, got, want)
		}
	}
	// The per-instruction loop agrees with the fused one.
	DisableSuperblocks = true
	defer func() { DisableSuperblocks = false }()
	if got := runSliced(total); got != want {
		t.Fatalf("per-instruction loop diverged: %+v, want %+v", got, want)
	}
}

// TestSuperblockInvalidatedByInstallCode overwrites a hot fused loop and
// checks the very next Run decodes the new code — the InstallCode
// generation bump must clear warm superblocks, not just single decodes.
func TestSuperblockInvalidatedByInstallCode(t *testing.T) {
	m, c, as := sbLoopEnv(t)
	install(t, m, as, 0x1000, []Instr{AddImm{RCX, 5}, Halt{}})
	c.PC = 0x1000
	c.Regs[RCX] = 0
	c.Run(10)
	if c.Regs[RCX] != 5 || !c.Halted {
		t.Fatalf("stale superblock survived InstallCode: rcx=%d halted=%v", c.Regs[RCX], c.Halted)
	}
}

// TestSuperblockInvalidatedByProtect drops exec permission on the page a
// warm superblock lives on: the next Run must fault on fetch — the
// fill-time exec validation is only good while the generation tags hold.
func TestSuperblockInvalidatedByProtect(t *testing.T) {
	_, c, as := sbLoopEnv(t)
	if err := as.Protect(0x1000, mem.PageSize, mem.PermRead); err != nil {
		t.Fatal(err)
	}
	c.Run(10)
	if c.Fault == nil || c.Fault.Kind != mem.FaultPerm || c.Fault.Op != mpk.AccessExec {
		t.Fatalf("fault = %v, want exec perm fault on the invalidated text page", c.Fault)
	}
}

// TestSuperblockInvalidatedByMap unmaps the data page a warm superblock
// stores to (a translation-mutating Unmap bumps the generation exactly
// like Map), then remaps it: the first Run must bail out mid-block with a
// precise not-mapped fault, and the remapped page must be picked up on
// retry.
func TestSuperblockInvalidatedByMap(t *testing.T) {
	var seen []mem.Fault
	_, c, as := sbLoopEnv(t)
	c.Hooks.OnFault = func(c *Core, f *mem.Fault) bool {
		seen = append(seen, *f)
		return false // fail-stop so the test can inspect the boundary
	}
	as.Unmap(0x10000, mem.PageSize)
	c.Run(20)
	if len(seen) != 1 || seen[0].Kind != mem.FaultNotMapped || seen[0].Addr != 0x10000 {
		t.Fatalf("faults = %v, want one not-mapped fault at 0x10000", seen)
	}
	// PC must sit on the faulting store (loop head), not the block start
	// or the terminator — the mid-block bailout contract.
	if c.PC != 0x1000+2*InstrSize {
		t.Fatalf("PC = %#x after mid-block fault, want the faulting store at %#x",
			uint64(c.PC), uint64(0x1000+2*InstrSize))
	}
	if err := as.MapRange(0x10000, mem.PageSize, mem.PermRW, 0); err != nil {
		t.Fatal(err)
	}
	c.Halted, c.Fault = false, nil
	c.Run(20)
	if c.Fault != nil {
		t.Fatalf("remapped page still faults: %v", c.Fault)
	}
}

// TestSuperblockInvalidatedBySetPKey retags the data page under a warm
// superblock with a key the PKRU denies: the store µop must bail out with
// a precise PKU fault even though the block and TLB were hot.
func TestSuperblockInvalidatedBySetPKey(t *testing.T) {
	_, c, as := sbLoopEnv(t)
	if err := as.SetPKey(0x10000, mem.PageSize, 3); err != nil {
		t.Fatal(err)
	}
	c.PKRU = mpk.AllowAllValue.WithAccess(3, false, false)
	c.Run(20)
	if c.Fault == nil || c.Fault.Kind != mem.FaultPKU || c.Fault.Addr != 0x10000 {
		t.Fatalf("fault = %v, want PKU fault at the retagged page", c.Fault)
	}
}

// TestSuperblockMidBlockFaultPrecise compares the complete fault-time
// core state (PC, cycles, registers, fault value) the OnFault hook
// observes between fused and per-instruction execution of a program that
// faults in the middle of a straight-line run — the bailout must restore
// the precise-interrupt illusion before anyone looks.
func TestSuperblockMidBlockFaultPrecise(t *testing.T) {
	type at struct {
		f      mem.Fault
		pc     mem.Addr
		cycles int64
		regs   [NumRegs]Word
	}
	probe := func() at {
		m, c, as := buildEnv(t)
		// Straight line: two good stores, then a store into an unmapped
		// page, then more straight-line code the bailout must not run.
		install(t, m, as, 0x1000, []Instr{
			MovImm{RCX, 0x10000},
			MovImm{RDX, 0x30000}, // unmapped
			MovImm{RBX, 7},
			Store{RBX, RCX, 0},
			Store{RBX, RCX, 8},
			Store{RBX, RDX, 0}, // faults
			AddImm{RBX, 100},
			Halt{},
		})
		var got at
		c.Hooks.OnFault = func(c *Core, f *mem.Fault) bool {
			got = at{*f, c.PC, c.Cycles, c.Regs}
			return false
		}
		c.Run(100)
		return got
	}
	fused := probe()
	DisableSuperblocks = true
	defer func() { DisableSuperblocks = false }()
	precise := probe()
	if fused != precise {
		t.Fatalf("fault-time state diverged:\nfused:   %+v\nprecise: %+v", fused, precise)
	}
	if fused.f.Addr != 0x30000 || fused.pc != 0x1000+5*InstrSize {
		t.Fatalf("fault at %+v pc=%#x, want addr 0x30000 pc %#x",
			fused.f, uint64(fused.pc), uint64(0x1000+5*InstrSize))
	}
	if fused.regs[RBX] != 7 {
		t.Fatalf("rbx = %d at fault, want 7 (the post-fault AddImm must not run)", fused.regs[RBX])
	}
}

// TestSuperblockUintrBoundary posts a user interrupt between quanta of a
// fused loop and checks delivery state matches the per-instruction loop:
// deliverability is checked at block entry, and every instruction that
// could change it terminates a block.
func TestSuperblockUintrBoundary(t *testing.T) {
	run := func() ([NumRegs]Word, int64, mem.Addr) {
		m, c, as := buildEnv(t)
		a := NewAssembler()
		a.Label("main")
		a.Emit(AddImm{RBX, 1})
		a.Emit(AddImm{RSI, 2})
		a.Emit(AddImm{RDI, 3})
		a.JmpTo("main")
		a.Label("handler")
		a.Emit(Pop{R9})
		a.Emit(Add{RDX, R9})
		a.Emit(UiRet{})
		prog, err := a.Assemble(0x1000)
		if err != nil {
			t.Fatal(err)
		}
		install(t, m, as, 0x1000, prog)
		c.HandlerAddr = a.AddrOf("handler", 0x1000)
		c.Run(10)
		c.PostUserInterrupt(5)
		c.Run(50)
		if c.Fault != nil {
			t.Fatal(c.Fault)
		}
		return c.Regs, c.Cycles, c.PC
	}
	fRegs, fCycles, fPC := run()
	DisableSuperblocks = true
	defer func() { DisableSuperblocks = false }()
	sRegs, sCycles, sPC := run()
	if fRegs != sRegs || fCycles != sCycles || fPC != sPC {
		t.Fatalf("uintr delivery diverged: fused (%v, %d, %#x), per-instruction (%v, %d, %#x)",
			fRegs, fCycles, uint64(fPC), sRegs, sCycles, uint64(sPC))
	}
	if sRegs[RDX] != 5 {
		t.Fatalf("handler tally = %d, want 5", sRegs[RDX])
	}
}
