package cpu

import (
	"fmt"

	"vessel/internal/mem"
	"vessel/internal/mpk"
)

// Word is a simulated machine word.
type Word = uint64

// Reg names a general-purpose register of the simulated core.
type Reg uint8

// The register file. RSP is the stack pointer; the call gate swaps it when
// entering the runtime (§4.2, Listing 1 lines 5–6).
const (
	RAX Reg = iota
	RBX
	RCX
	RDX
	RSI
	RDI
	RBP
	RSP
	R8
	R9
	NumRegs
)

func (r Reg) String() string {
	names := [...]string{"rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp", "r8", "r9"}
	if int(r) < len(names) {
		return names[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// InstrSize is the (uniform, simplified) encoded size of every instruction.
const InstrSize = 4

// Instr is one simulated instruction. Exec may read and write core state,
// perform checked memory accesses, and redirect control flow via
// Core.setPC. A non-nil return fault halts the core (unless a fault hook
// intervenes, as the simulated kernel's signal path does).
type Instr interface {
	Exec(c *Core) *mem.Fault
	Cycles(m *CostModel) int64
	String() string
}

// ---- data movement ----

// MovImm loads an immediate into a register.
type MovImm struct {
	Dst Reg
	Imm Word
}

func (i MovImm) Exec(c *Core) *mem.Fault   { c.Regs[i.Dst] = i.Imm; return nil }
func (i MovImm) Cycles(m *CostModel) int64 { return m.ALUCycles }
func (i MovImm) String() string            { return fmt.Sprintf("mov %s, %#x", i.Dst, i.Imm) }

// MovReg copies Src into Dst.
type MovReg struct{ Dst, Src Reg }

func (i MovReg) Exec(c *Core) *mem.Fault   { c.Regs[i.Dst] = c.Regs[i.Src]; return nil }
func (i MovReg) Cycles(m *CostModel) int64 { return m.ALUCycles }
func (i MovReg) String() string            { return fmt.Sprintf("mov %s, %s", i.Dst, i.Src) }

// Load reads a 64-bit word at [Base+Off] into Dst, with the full PTE∧PKRU
// check.
type Load struct {
	Dst  Reg
	Base Reg
	Off  int64
}

func (i Load) Exec(c *Core) *mem.Fault {
	addr := mem.Addr(int64(c.Regs[i.Base]) + i.Off)
	v, fault := c.read(addr, 8)
	if fault != nil {
		return fault
	}
	c.Regs[i.Dst] = v
	return nil
}
func (i Load) Cycles(m *CostModel) int64 { return m.MemCycles }
func (i Load) String() string            { return fmt.Sprintf("mov %s, [%s%+d]", i.Dst, i.Base, i.Off) }

// Store writes Src to [Base+Off].
type Store struct {
	Src  Reg
	Base Reg
	Off  int64
}

func (i Store) Exec(c *Core) *mem.Fault {
	addr := mem.Addr(int64(c.Regs[i.Base]) + i.Off)
	return c.write(addr, 8, c.Regs[i.Src])
}
func (i Store) Cycles(m *CostModel) int64 { return m.MemCycles }
func (i Store) String() string            { return fmt.Sprintf("mov [%s%+d], %s", i.Base, i.Off, i.Src) }

// LoadAbs reads a 64-bit word at a fixed address into Dst.
type LoadAbs struct {
	Dst  Reg
	Addr mem.Addr
}

func (i LoadAbs) Exec(c *Core) *mem.Fault {
	v, fault := c.read(i.Addr, 8)
	if fault != nil {
		return fault
	}
	c.Regs[i.Dst] = v
	return nil
}
func (i LoadAbs) Cycles(m *CostModel) int64 { return m.MemCycles }
func (i LoadAbs) String() string            { return fmt.Sprintf("mov %s, [%#x]", i.Dst, uint64(i.Addr)) }

// StoreAbs writes Src to a fixed address.
type StoreAbs struct {
	Src  Reg
	Addr mem.Addr
}

func (i StoreAbs) Exec(c *Core) *mem.Fault {
	return c.write(i.Addr, 8, c.Regs[i.Src])
}
func (i StoreAbs) Cycles(m *CostModel) int64 { return m.MemCycles }
func (i StoreAbs) String() string            { return fmt.Sprintf("mov [%#x], %s", uint64(i.Addr), i.Src) }

// ---- arithmetic ----

// Add computes Dst += Src.
type Add struct{ Dst, Src Reg }

func (i Add) Exec(c *Core) *mem.Fault   { c.Regs[i.Dst] += c.Regs[i.Src]; return nil }
func (i Add) Cycles(m *CostModel) int64 { return m.ALUCycles }
func (i Add) String() string            { return fmt.Sprintf("add %s, %s", i.Dst, i.Src) }

// AddImm computes Dst += Imm (Imm may be negative).
type AddImm struct {
	Dst Reg
	Imm int64
}

func (i AddImm) Exec(c *Core) *mem.Fault {
	c.Regs[i.Dst] = Word(int64(c.Regs[i.Dst]) + i.Imm)
	return nil
}
func (i AddImm) Cycles(m *CostModel) int64 { return m.ALUCycles }
func (i AddImm) String() string            { return fmt.Sprintf("add %s, %d", i.Dst, i.Imm) }

// MulImm computes Dst *= Imm.
type MulImm struct {
	Dst Reg
	Imm int64
}

func (i MulImm) Exec(c *Core) *mem.Fault {
	c.Regs[i.Dst] = Word(int64(c.Regs[i.Dst]) * i.Imm)
	return nil
}
func (i MulImm) Cycles(m *CostModel) int64 { return 3 * m.ALUCycles }
func (i MulImm) String() string            { return fmt.Sprintf("imul %s, %d", i.Dst, i.Imm) }

// ---- control flow ----

// Jmp is an unconditional direct jump.
type Jmp struct{ Target mem.Addr }

func (i Jmp) Exec(c *Core) *mem.Fault   { c.setPC(i.Target); return nil }
func (i Jmp) Cycles(m *CostModel) int64 { return m.JmpCycles }
func (i Jmp) String() string            { return fmt.Sprintf("jmp %#x", uint64(i.Target)) }

// JmpReg is an indirect jump through a register — the control-flow-hijack
// primitive the call gate must survive (§4.2).
type JmpReg struct{ Reg Reg }

func (i JmpReg) Exec(c *Core) *mem.Fault   { c.setPC(mem.Addr(c.Regs[i.Reg])); return nil }
func (i JmpReg) Cycles(m *CostModel) int64 { return m.JmpCycles }
func (i JmpReg) String() string            { return fmt.Sprintf("jmp %s", i.Reg) }

// Jne jumps to Target when A != B.
type Jne struct {
	A, B   Reg
	Target mem.Addr
}

func (i Jne) Exec(c *Core) *mem.Fault {
	if c.Regs[i.A] != c.Regs[i.B] {
		c.setPC(i.Target)
	}
	return nil
}
func (i Jne) Cycles(m *CostModel) int64 { return m.JmpCycles }
func (i Jne) String() string            { return fmt.Sprintf("jne %s, %s, %#x", i.A, i.B, uint64(i.Target)) }

// Jeq jumps to Target when A == B.
type Jeq struct {
	A, B   Reg
	Target mem.Addr
}

func (i Jeq) Exec(c *Core) *mem.Fault {
	if c.Regs[i.A] == c.Regs[i.B] {
		c.setPC(i.Target)
	}
	return nil
}
func (i Jeq) Cycles(m *CostModel) int64 { return m.JmpCycles }
func (i Jeq) String() string            { return fmt.Sprintf("jeq %s, %s, %#x", i.A, i.B, uint64(i.Target)) }

// JnzDec decrements Dst and jumps while it remains non-zero (loop
// primitive).
type JnzDec struct {
	Dst    Reg
	Target mem.Addr
}

func (i JnzDec) Exec(c *Core) *mem.Fault {
	c.Regs[i.Dst]--
	if c.Regs[i.Dst] != 0 {
		c.setPC(i.Target)
	}
	return nil
}
func (i JnzDec) Cycles(m *CostModel) int64 { return m.ALUCycles + m.JmpCycles }
func (i JnzDec) String() string            { return fmt.Sprintf("dec-jnz %s, %#x", i.Dst, uint64(i.Target)) }

// Call pushes the return address and jumps to Target.
type Call struct{ Target mem.Addr }

func (i Call) Exec(c *Core) *mem.Fault {
	if fault := c.push(Word(c.nextPC)); fault != nil {
		return fault
	}
	c.setPC(i.Target)
	return nil
}
func (i Call) Cycles(m *CostModel) int64 { return m.CallCycles }
func (i Call) String() string            { return fmt.Sprintf("call %#x", uint64(i.Target)) }

// CallReg is an indirect call through a register.
type CallReg struct{ Reg Reg }

func (i CallReg) Exec(c *Core) *mem.Fault {
	if fault := c.push(Word(c.nextPC)); fault != nil {
		return fault
	}
	c.setPC(mem.Addr(c.Regs[i.Reg]))
	return nil
}
func (i CallReg) Cycles(m *CostModel) int64 { return m.CallCycles }
func (i CallReg) String() string            { return fmt.Sprintf("call %s", i.Reg) }

// CallMem loads a function pointer from memory and calls through it — the
// PLT-style indirection (§4.2's second attack) and, when the pointer lives
// in the read-only message-pipe vector, the safe direct transfer VESSEL
// uses instead.
type CallMem struct{ Addr mem.Addr }

func (i CallMem) Exec(c *Core) *mem.Fault {
	target, fault := c.read(i.Addr, 8)
	if fault != nil {
		return fault
	}
	if fault := c.push(Word(c.nextPC)); fault != nil {
		return fault
	}
	c.setPC(mem.Addr(target))
	return nil
}
func (i CallMem) Cycles(m *CostModel) int64 { return m.CallCycles + m.MemCycles }
func (i CallMem) String() string            { return fmt.Sprintf("call [%#x]", uint64(i.Addr)) }

// Ret pops the return address and jumps to it.
type Ret struct{}

func (i Ret) Exec(c *Core) *mem.Fault {
	v, fault := c.pop()
	if fault != nil {
		return fault
	}
	c.setPC(mem.Addr(v))
	return nil
}
func (i Ret) Cycles(m *CostModel) int64 { return m.CallCycles }
func (i Ret) String() string            { return "ret" }

// Push stores a register on the stack.
type Push struct{ Src Reg }

func (i Push) Exec(c *Core) *mem.Fault   { return c.push(c.Regs[i.Src]) }
func (i Push) Cycles(m *CostModel) int64 { return m.MemCycles }
func (i Push) String() string            { return fmt.Sprintf("push %s", i.Src) }

// Pop loads a register from the stack.
type Pop struct{ Dst Reg }

func (i Pop) Exec(c *Core) *mem.Fault {
	v, fault := c.pop()
	if fault != nil {
		return fault
	}
	c.Regs[i.Dst] = v
	return nil
}
func (i Pop) Cycles(m *CostModel) int64 { return m.MemCycles }
func (i Pop) String() string            { return fmt.Sprintf("pop %s", i.Dst) }

// ---- privileged-state instructions ----

// WrPkru writes RAX's low 32 bits into PKRU. It is unprivileged — exactly
// why the loader must reject it outside the call gate (§5.2.1).
type WrPkru struct{}

func (i WrPkru) Exec(c *Core) *mem.Fault {
	prev := c.PKRU
	c.PKRU = mpk.PKRU(uint32(c.Regs[RAX]))
	if c.Hooks.OnWrPkru != nil {
		c.Hooks.OnWrPkru(c, prev)
	}
	return nil
}
func (i WrPkru) Cycles(m *CostModel) int64 { return m.WrPkruCycles }
func (i WrPkru) String() string            { return "wrpkru" }

// RdPkru reads PKRU into RAX.
type RdPkru struct{}

func (i RdPkru) Exec(c *Core) *mem.Fault {
	c.Regs[RAX] = Word(uint32(c.PKRU))
	return nil
}
func (i RdPkru) Cycles(m *CostModel) int64 { return m.RdPkruCycles }
func (i RdPkru) String() string            { return "rdpkru" }

// CpuID loads the core's ID into Dst (stand-in for reading the CPU number,
// which the gate uses to index CPUID_TO_TASK_MAP).
type CpuID struct{ Dst Reg }

func (i CpuID) Exec(c *Core) *mem.Fault   { c.Regs[i.Dst] = Word(c.ID); return nil }
func (i CpuID) Cycles(m *CostModel) int64 { return 2 * m.ALUCycles }
func (i CpuID) String() string            { return fmt.Sprintf("cpuid %s", i.Dst) }

// SendUIPI posts a user interrupt through the core's UITT at the index in
// IdxReg (§2.2).
type SendUIPI struct{ IdxReg Reg }

func (i SendUIPI) Exec(c *Core) *mem.Fault {
	if c.Hooks.OnSendUIPI != nil {
		c.Hooks.OnSendUIPI(c, c.Regs[i.IdxReg])
	}
	return nil
}
func (i SendUIPI) Cycles(m *CostModel) int64 {
	return int64(float64(m.UintrSend) * m.ClockGHz)
}
func (i SendUIPI) String() string { return fmt.Sprintf("senduipi %s", i.IdxReg) }

// UiRet returns from a user-interrupt handler: pops the saved PC pushed by
// delivery and re-enables user interrupts.
type UiRet struct{}

func (i UiRet) Exec(c *Core) *mem.Fault {
	v, fault := c.pop()
	if fault != nil {
		return fault
	}
	c.setPC(mem.Addr(v))
	c.UIF = true
	return nil
}
func (i UiRet) Cycles(m *CostModel) int64 {
	return int64(float64(m.UintrUiret) * m.ClockGHz)
}
func (i UiRet) String() string { return "uiret" }

// Stui sets the user-interrupt flag, enabling delivery (the UINTR ISA's
// STUI).
type Stui struct{}

func (i Stui) Exec(c *Core) *mem.Fault   { c.UIF = true; return nil }
func (i Stui) Cycles(m *CostModel) int64 { return m.ALUCycles }
func (i Stui) String() string            { return "stui" }

// Clui clears the user-interrupt flag, masking delivery (the UINTR ISA's
// CLUI). The runtime uses this discipline around privileged sections; in
// the model the gate's PKRU transition provides the equivalent masking
// (see Core.PrivilegedPKRU), but the instructions exist for programs that
// manage UIF explicitly.
type Clui struct{}

func (i Clui) Exec(c *Core) *mem.Fault   { c.UIF = false; return nil }
func (i Clui) Cycles(m *CostModel) int64 { return m.ALUCycles }
func (i Clui) String() string            { return "clui" }

// Halt stops the core.
type Halt struct{}

func (i Halt) Exec(c *Core) *mem.Fault {
	c.Halted = true
	if c.Hooks.OnHalt != nil {
		c.Hooks.OnHalt(c)
	}
	return nil
}
func (i Halt) Cycles(m *CostModel) int64 { return m.ALUCycles }
func (i Halt) String() string            { return "hlt" }

// Work burns a fixed number of cycles — the stand-in for application
// compute between the interesting instructions.
type Work struct{ N int64 }

func (i Work) Exec(c *Core) *mem.Fault   { return nil }
func (i Work) Cycles(m *CostModel) int64 { return i.N }
func (i Work) String() string            { return fmt.Sprintf("work %d", i.N) }

// Hook invokes an arbitrary Go callback — the escape hatch that lets
// higher layers (runtime services, test probes) observe execution without
// growing the ISA. The callback may return a fault to inject one.
type Hook struct {
	Name string
	Fn   func(c *Core) *mem.Fault
	Cost int64 // cycles
}

func (i Hook) Exec(c *Core) *mem.Fault {
	if i.Fn == nil {
		return nil
	}
	return i.Fn(c)
}
func (i Hook) Cycles(m *CostModel) int64 {
	if i.Cost > 0 {
		return i.Cost
	}
	return m.ALUCycles
}
func (i Hook) String() string { return "hook " + i.Name }
