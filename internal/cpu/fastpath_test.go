package cpu

import (
	"testing"

	"vessel/internal/mem"
	"vessel/internal/mpk"
)

// TestLowestVectorWins posts several vectors at once and checks delivery
// order: the lowest-numbered pending vector must be taken first, then the
// next, exactly as the linear scan did before TrailingZeros64.
func TestLowestVectorWins(t *testing.T) {
	m, c, as := buildEnv(t)
	a := NewAssembler()
	a.Label("main")
	a.Emit(AddImm{RBX, 1})
	a.JmpTo("main")
	// Handler: pop the vector into R9, record it in RDX (shifted tally),
	// and return.
	a.Label("handler")
	a.Emit(Pop{R9})
	a.Emit(MulImm{RDX, 64})
	a.Emit(Add{RDX, R9})
	a.Emit(UiRet{})
	prog, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	install(t, m, as, 0x1000, prog)
	c.HandlerAddr = a.AddrOf("handler", 0x1000)

	c.PostUserInterrupt(41)
	c.PostUserInterrupt(7)
	c.PostUserInterrupt(63)
	c.Run(30) // three delivery+handler+uiret rounds and some main loop
	// RDX accumulated vectors base-64 in delivery order: 7, then 41, 63.
	want := Word(7*64*64 + 41*64 + 63)
	if c.Regs[RDX] != want {
		t.Fatalf("delivery order tally = %#x, want %#x (7,41,63)", c.Regs[RDX], want)
	}
	if c.PendingVectors != 0 {
		t.Fatalf("pending = %#x after all deliveries", c.PendingVectors)
	}
}

// runCollatz executes a short program with loads, stores, calls, and a
// WRPKRU protection switch, returning final registers and cycles — the
// differential probe for fast-path invisibility.
func runCollatz(t *testing.T) ([NumRegs]Word, int64) {
	t.Helper()
	m, c, as := buildEnv(t)
	a := NewAssembler()
	a.Emit(MovImm{RAX, uint64(mpk.AllowAllValue)})
	a.Emit(WrPkru{})
	a.Emit(MovImm{RCX, 0x10000})
	a.Emit(MovImm{RBX, 27})
	a.Emit(MovImm{R8, 200})
	a.Label("loop")
	a.Emit(Store{RBX, RCX, 0})
	a.Emit(Load{RBX, RCX, 0})
	a.Emit(AddImm{RBX, 3})
	a.Emit(Push{RBX})
	a.Emit(Pop{RDX})
	a.LoopTo(R8, "loop")
	a.Emit(Halt{})
	prog, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	install(t, m, as, 0x1000, prog)
	c.Run(10_000)
	if c.Fault != nil {
		t.Fatal(c.Fault)
	}
	return c.Regs, c.Cycles
}

// TestFastPathInvisible runs the same program with the TLB/icache enabled
// and disabled: registers and cycle counts must match exactly.
func TestFastPathInvisible(t *testing.T) {
	if DisableFastPath {
		t.Fatal("fast path must be the default")
	}
	fastRegs, fastCycles := runCollatz(t)
	DisableFastPath = true
	defer func() { DisableFastPath = false }()
	slowRegs, slowCycles := runCollatz(t)
	if fastRegs != slowRegs {
		t.Fatalf("registers diverged: fast %v, slow %v", fastRegs, slowRegs)
	}
	if fastCycles != slowCycles {
		t.Fatalf("cycles diverged: fast %d, slow %d", fastCycles, slowCycles)
	}
}

// TestICacheInvalidatedByInstallCode overwrites already-executed code and
// checks the next fetch decodes the new instruction, not the cached one.
func TestICacheInvalidatedByInstallCode(t *testing.T) {
	m, c, as := buildEnv(t)
	install(t, m, as, 0x1000, []Instr{AddImm{RBX, 1}, Jmp{Target: 0x1000}})
	c.Run(10) // warm the icache on the two-instruction loop
	if c.Regs[RBX] == 0 {
		t.Fatal("loop did not run")
	}
	install(t, m, as, 0x1000, []Instr{AddImm{RCX, 5}, Halt{}})
	c.PC = 0x1000
	c.Run(10)
	if c.Regs[RCX] != 5 || !c.Halted {
		t.Fatalf("stale decode survived InstallCode: rcx=%d halted=%v", c.Regs[RCX], c.Halted)
	}
}

// TestICacheInvalidatedByProtect drops exec permission on a hot text page
// and checks the very next fetch faults despite the warm icache.
func TestICacheInvalidatedByProtect(t *testing.T) {
	m, c, as := buildEnv(t)
	install(t, m, as, 0x1000, []Instr{AddImm{RBX, 1}, Jmp{Target: 0x1000}})
	c.Run(10)
	if err := as.Protect(0x1000, mem.PageSize, mem.PermRead); err != nil {
		t.Fatal(err)
	}
	c.Run(10)
	if c.Fault == nil || c.Fault.Kind != mem.FaultPerm || c.Fault.Op != mpk.AccessExec {
		t.Fatalf("fault = %v, want exec perm fault", c.Fault)
	}
}

// TestTLBAcrossAddressSpaceSwitch runs two address spaces mapping the same
// virtual page to different frames on one core, alternating between them —
// the switch must flush cached translations.
func TestTLBAcrossAddressSpaceSwitch(t *testing.T) {
	m := NewMachine(1, Default())
	mk := func(tag Word) *mem.AddressSpace {
		as := mem.NewAddressSpace(m.Phys)
		if err := as.MapRange(0x1000, mem.PageSize, mem.PermXOnly, 0); err != nil {
			t.Fatal(err)
		}
		if err := as.MapRange(0x10000, mem.PageSize, mem.PermRW, 0); err != nil {
			t.Fatal(err)
		}
		if err := m.InstallCode(as, 0x1000, []Instr{
			MovImm{RCX, 0x10000}, MovImm{RAX, tag}, Store{RAX, RCX, 0}, Load{RDX, RCX, 0}, Halt{},
		}); err != nil {
			t.Fatal(err)
		}
		return as
	}
	asA, asB := mk(0xAAAA), mk(0xBBBB)
	c := m.Core(0)
	c.PKRU = mpk.AllowAllValue
	for i := 0; i < 4; i++ {
		as, want := asA, Word(0xAAAA)
		if i%2 == 1 {
			as, want = asB, 0xBBBB
		}
		c.AS = as
		c.PC = 0x1000
		c.Halted = false
		c.Run(10)
		if c.Fault != nil {
			t.Fatal(c.Fault)
		}
		if c.Regs[RDX] != want {
			t.Fatalf("round %d: rdx=%#x, want %#x", i, c.Regs[RDX], want)
		}
		// The other space's frame must be untouched by this run.
		other := asB
		if as == asB {
			other = asA
		}
		pte, ok := other.Lookup(0x10000)
		if !ok {
			t.Fatal("other AS lost its data page")
		}
		if got := pte.Frame.Data[0]; i > 0 && got == byte(want) {
			t.Fatalf("round %d: write leaked into the other address space", i)
		}
	}
}
