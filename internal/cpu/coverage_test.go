package cpu

import (
	"testing"

	"vessel/internal/mem"
	"vessel/internal/mpk"
)

func TestAssemblerHelpers(t *testing.T) {
	a := NewAssembler()
	a.Emit(MovImm{RAX, 1}, MovImm{RBX, 2})
	a.Label("eq")
	a.JeqTo(RAX, RBX, "eq")
	a.JneTo(RAX, RBX, "done")
	a.Label("done")
	a.Emit(Halt{})
	if a.Len() != 5 {
		t.Fatalf("len = %d", a.Len())
	}
	if a.SizeBytes() != 5*InstrSize {
		t.Fatalf("size = %d", a.SizeBytes())
	}
	prog, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 5 {
		t.Fatal("assembled length")
	}
	jeq := prog[2].(Jeq)
	if jeq.Target != a.AddrOf("eq", 0x1000) {
		t.Fatal("jeq target")
	}
	jne := prog[3].(Jne)
	if jne.Target != a.AddrOf("done", 0x1000) {
		t.Fatal("jne target")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddrOf of unknown label should panic")
		}
	}()
	a.AddrOf("missing", 0)
}

func TestMachineAccessors(t *testing.T) {
	m := NewMachine(3, nil)
	if m.NumCores() != 3 {
		t.Fatal("cores")
	}
	if m.NsFor(2000) != 1000 {
		t.Fatalf("NsFor = %v", m.NsFor(2000))
	}
	as := mem.NewAddressSpace(m.Phys)
	if err := as.MapRange(0x1000, mem.PageSize, mem.PermXOnly, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.InstallCode(as, 0x1000, []Instr{Halt{}}); err != nil {
		t.Fatal(err)
	}
	if ins, ok := m.FetchAt(as, 0x1000); !ok || ins.String() != "hlt" {
		t.Fatalf("FetchAt = %v %v", ins, ok)
	}
	if _, ok := m.FetchAt(as, 0x2000); ok {
		t.Fatal("FetchAt on unmapped page")
	}
	if _, ok := m.FetchAt(as, 0x1000+InstrSize); ok {
		t.Fatal("FetchAt past code")
	}
}

func TestInstrExecPaths(t *testing.T) {
	m, c, as := buildEnv(t)
	a := NewAssembler()
	a.Emit(
		MovImm{RAX, 7},
		MovReg{RBX, RAX},       // rbx = 7
		StoreAbs{RBX, 0x10008}, // [0x10008] = 7
		LoadAbs{RCX, 0x10008},  // rcx = 7
		MovImm{RDX, 5},
		Jeq{RAX, RDX, 0}, // not taken (7 != 5)
		MovImm{RSI, 9},
	)
	a.LeaTo(R8, "tail")
	a.Emit(JmpReg{R8})
	a.Emit(Halt{}) // skipped
	a.Label("tail")
	a.Emit(Halt{})
	prog, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	install(t, m, as, 0x1000, prog)
	c.Run(50)
	if c.Fault != nil {
		t.Fatal(c.Fault)
	}
	if c.Regs[RBX] != 7 || c.Regs[RCX] != 7 || c.Regs[RSI] != 9 {
		t.Fatalf("regs: %v", c.Regs)
	}
}

func TestInstrFaultPaths(t *testing.T) {
	cases := []struct {
		name string
		prog []Instr
	}{
		{"loadabs-unmapped", []Instr{LoadAbs{RAX, 0xdead0000}}},
		{"storeabs-unmapped", []Instr{StoreAbs{RAX, 0xdead0000}}},
		{"callmem-unmapped", []Instr{CallMem{0xdead0000}}},
		{"ret-unmapped-stack", []Instr{MovImm{RSP, 0xdead0000}, Ret{}}},
		{"push-unmapped-stack", []Instr{MovImm{RSP, 0xdead0000}, Push{RAX}}},
		{"pop-unmapped-stack", []Instr{MovImm{RSP, 0xdead0000}, Pop{RAX}}},
		{"callreg-push-fault", []Instr{MovImm{RSP, 0xdead0000}, CallReg{RAX}}},
		{"call-push-fault", []Instr{MovImm{RSP, 0xdead0000}, Call{0x1000}}},
	}
	for _, tc := range cases {
		m, c, as := buildEnv(t)
		install(t, m, as, 0x1000, append(tc.prog, Halt{}))
		c.Run(20)
		if c.Fault == nil {
			t.Fatalf("%s: no fault", tc.name)
		}
	}
}

func TestHookAndSendUIPIWithoutWiring(t *testing.T) {
	m, c, as := buildEnv(t)
	install(t, m, as, 0x1000, []Instr{
		Hook{Name: "nil-fn"},  // nil Fn is a no-op
		SendUIPI{IdxReg: RDI}, // no hook wired: drop
		Halt{},
	})
	c.Run(10)
	if c.Fault != nil {
		t.Fatal(c.Fault)
	}
}

func TestUiretFaultOnBadStack(t *testing.T) {
	m, c, as := buildEnv(t)
	install(t, m, as, 0x1000, []Instr{MovImm{RSP, 0xdead0000}, UiRet{}})
	c.Run(10)
	if c.Fault == nil {
		t.Fatal("uiret with bad stack must fault")
	}
	_ = m
}

func TestCpuIDAndRegString(t *testing.T) {
	m, c, as := buildEnv(t)
	install(t, m, as, 0x1000, []Instr{CpuID{RDX}, Halt{}})
	c.Run(10)
	if c.Regs[RDX] != uint64(c.ID) {
		t.Fatal("cpuid")
	}
	if RAX.String() != "rax" || Reg(99).String() == "" {
		t.Fatal("reg strings")
	}
	_ = m
}

func TestStuiClui(t *testing.T) {
	m, c, as := buildEnv(t)
	install(t, m, as, 0x1000, []Instr{
		Clui{},
		AddImm{RBX, 1}, // with UIF clear, a posted vector stays pending
		Stui{},
		AddImm{RBX, 1}, // now delivery can happen
		Jmp{0x1000 + 4*InstrSize},
	})
	c.HandlerAddr = 0x1000 // any valid code address
	c.Step()               // clui (delivery is checked before each fetch, so mask first)
	c.PostUserInterrupt(2)
	c.Step() // add — no delivery
	if c.PendingVectors == 0 || c.Regs[RBX] != 1 {
		t.Fatal("delivery happened while masked")
	}
	c.Step() // stui
	c.Step() // boundary: delivery fires before the next instruction
	if c.PendingVectors != 0 {
		t.Fatal("vector not delivered after stui")
	}
	_ = m
}

func TestCtrlScaling(t *testing.T) {
	cm := Default()
	base := cm.VesselCtrlFor(0)
	if base != cm.VesselCtrlPerReq {
		t.Fatalf("zero-core scaling = %v", base)
	}
	if cm.VesselCtrlFor(44) <= cm.VesselCtrlFor(32) {
		t.Fatal("per-core control cost must grow")
	}
	if cm.CaladanCtrlFor(44) <= cm.CaladanCtrlFor(32) {
		t.Fatal("IOKernel per-core cost must grow")
	}
	free := Default()
	free.VesselCtrlPerReq = 0
	if free.VesselCtrlFor(44) != 0 {
		t.Fatal("disabled control cost must stay zero")
	}
}

func TestDeliverFaultOnBadStack(t *testing.T) {
	// User-interrupt delivery pushes to the stack; a bad RSP faults.
	m, c, as := buildEnv(t)
	install(t, m, as, 0x1000, []Instr{AddImm{RBX, 1}, Jmp{0x1000}})
	c.HandlerAddr = 0x1000
	c.Regs[RSP] = 0xdead0000
	c.PostUserInterrupt(1)
	c.Run(10)
	if c.Fault == nil {
		t.Fatal("delivery onto a bad stack must fault")
	}
	_ = m
	_ = mpk.AllowAllValue
}
