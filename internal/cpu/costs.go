// Package cpu models the processor substrate of the reproduction: a cost
// model calibrated to the paper's measurements, simulated cores with PKRU
// registers and user-interrupt state, and a small instruction-stream VM on
// which the call gate, loader inspection, and context-switch microbenchmarks
// execute with per-instruction MPK checks.
package cpu

import "vessel/internal/sim"

// CostModel centralises every timing constant in the reproduction. All the
// figures' comparative results flow from these constants; the ablation
// benches sweep them. Values follow DESIGN.md §4 and are taken from the
// paper's own measurements wherever the paper reports one.
type CostModel struct {
	// ClockGHz converts instruction cycles to nanoseconds.
	ClockGHz float64

	// Per-instruction cycle costs for the layer-1 VM.
	WrPkruCycles int64 // §2.3: 11–260 cycles; we use a mid-low typical value
	RdPkruCycles int64
	ALUCycles    int64 // mov/add/cmp and friends
	MemCycles    int64 // L1-hit load/store
	JmpCycles    int64
	CallCycles   int64 // call/ret with stack traffic
	// PkeyRetagPage is the per-page cost of re-tagging under virtualized
	// protection keys (the pkey_mprotect walk libmpk performs on key
	// eviction and refill). Only charged when virtual keys are enabled
	// and a slot actually moves.
	PkeyRetagPage int64

	// UINTR path latencies (§2.2). SENDUIPI posts into the UPID and, when
	// the receiver is running, triggers delivery straight into the user
	// handler — about 15× cheaper than the kernel signal path.
	UintrSend     sim.Duration // senduipi execution on the sender core
	UintrDeliver  sim.Duration // post → handler entry on a running receiver
	UintrUiret    sim.Duration // handler return, hardware context restore
	KernelIPIPath sim.Duration // legacy IPI→kernel→signal delivery, for comparison

	// Kernel crossing costs (mitigations disabled, §6.1).
	UserKernelCross sim.Duration // one direction of a syscall/trap
	SignalDeliver   sim.Duration // kernel building + delivering a signal frame

	// Caladan core-reallocation timeline, Figure 3. The phases sum to
	// ~5.3µs, the paper's measured total.
	CaladanIoctl     sim.Duration // scheduler issues ioctl to kick victim
	CaladanIPI       sim.Duration // inter-processor interrupt delivery
	CaladanTrapSig   sim.Duration // victim traps into kernel, SIGUSR to runtime
	CaladanUserSave  sim.Duration // userspace runtime saves current state
	CaladanKernSwap  sim.Duration // kernel structures + page-table switch
	CaladanRestore   sim.Duration // return to userspace, restore new task
	CaladanParkPath  sim.Duration // cheaper voluntary-yield switch (Table 1)
	CaladanStealWin  sim.Duration // §4.5: steal for ≥2µs before parking
	CaladanReallocMs sim.Duration // §4.5: core reallocation every 10µs

	// VESSEL switch paths (Table 1). These can also be derived from the
	// instruction costs via the layer-1 machine; the constants are the
	// calibrated layer-2 equivalents.
	VesselParkSwitch    sim.Duration // park() → gate → pop next thread → jump
	VesselPreemptSwitch sim.Duration // Uintr → gate → switch
	VesselSchedScan     sim.Duration // scheduler queue-scan granularity

	// Linux CFS parameters for the baseline.
	CFSTick           sim.Duration // scheduler tick period
	CFSMinGranularity sim.Duration
	CFSLatency        sim.Duration // sched_latency target
	CFSSwitchCost     sim.Duration // full kernel context switch
	CFSWakeupCost     sim.Duration // wakeup path (enqueue + IPI + schedule)

	// Arachne core-arbiter parameters.
	ArachneInterval    sim.Duration // arbiter re-estimation period
	ArachneReallocCost sim.Duration // moving a core between apps via kernel

	// Control-plane capacity (Figure 12). Every request's dispatch
	// signal traverses the scheduling control plane — VESSEL's domain
	// scheduler or Caladan's IOKernel — modeled as a single FIFO server
	// with this per-request service time. The control plane saturates at
	// 1/cost requests per second, which is what caps core scalability:
	// the paper measures VESSEL scaling to 42 cores per domain and
	// Caladan to 34.
	VesselCtrlPerReq  sim.Duration
	CaladanCtrlPerReq sim.Duration

	// Memory system (Figures 11, 13).
	DRAMAccess  sim.Duration // latency charged per LLC miss
	MemBWTotal  float64      // machine memory bandwidth, bytes/ns (= GB/s)
	UmwaitWake  sim.Duration // leaving the UMWAIT light-sleep state
	UmwaitEnter sim.Duration
}

// Default returns the calibrated cost model used throughout the evaluation.
func Default() *CostModel {
	return &CostModel{
		ClockGHz: 2.0,

		WrPkruCycles: 28,
		RdPkruCycles: 6,
		ALUCycles:    1,
		MemCycles:    4,
		JmpCycles:    2,
		CallCycles:   6,

		PkeyRetagPage: 60, // one pkey_mprotect PTE walk + flush share per page

		UintrSend:     60,
		UintrDeliver:  100,
		UintrUiret:    40,
		KernelIPIPath: 1500,

		UserKernelCross: 300,
		SignalDeliver:   500,

		CaladanIoctl:     600,
		CaladanIPI:       400,
		CaladanTrapSig:   1100,
		CaladanUserSave:  700,
		CaladanKernSwap:  1500,
		CaladanRestore:   1000,
		CaladanParkPath:  2100,
		CaladanStealWin:  2 * sim.Microsecond,
		CaladanReallocMs: 10 * sim.Microsecond,

		VesselParkSwitch:    161,
		VesselPreemptSwitch: 260,
		VesselSchedScan:     200,

		CFSTick:           1 * sim.Millisecond,
		CFSMinGranularity: 750 * sim.Microsecond,
		CFSLatency:        6 * sim.Millisecond,
		CFSSwitchCost:     2 * sim.Microsecond,
		CFSWakeupCost:     3 * sim.Microsecond,

		ArachneInterval:    50 * sim.Millisecond,
		ArachneReallocCost: 29 * sim.Microsecond,

		VesselCtrlPerReq:  22,
		CaladanCtrlPerReq: 29,

		DRAMAccess:  90,
		MemBWTotal:  40.0, // 40 GB/s
		UmwaitWake:  400,
		UmwaitEnter: 100,
	}
}

// CyclesToNs converts an instruction-cycle count to virtual nanoseconds.
func (m *CostModel) CyclesToNs(cycles int64) sim.Duration {
	return sim.Duration(float64(cycles) / m.ClockGHz)
}

// ctrlScaled adds the per-core growth of control-plane work: both VESSEL's
// scheduler and Caladan's IOKernel scan per-core queues, so their
// per-request cost grows (mildly, quadratically) with the number of
// managed cores. This is what makes goodput *decline* past the scaling
// knee in Figure 12 rather than merely flatten.
func ctrlScaled(base sim.Duration, cores int) sim.Duration {
	if base <= 0 {
		return 0
	}
	return base + sim.Duration(cores*cores/500)
}

// VesselCtrlFor returns VESSEL's effective per-request control-plane cost
// for a domain of the given size.
func (m *CostModel) VesselCtrlFor(cores int) sim.Duration {
	return ctrlScaled(m.VesselCtrlPerReq, cores)
}

// CaladanCtrlFor returns the IOKernel's effective per-request cost.
func (m *CostModel) CaladanCtrlFor(cores int) sim.Duration {
	return ctrlScaled(m.CaladanCtrlPerReq, cores)
}

// CaladanReallocTotal returns the end-to-end Figure 3 preemption cost: the
// sum of every phase the victim core spends not running application code.
func (m *CostModel) CaladanReallocTotal() sim.Duration {
	return m.CaladanIoctl + m.CaladanIPI + m.CaladanTrapSig +
		m.CaladanUserSave + m.CaladanKernSwap + m.CaladanRestore
}

// Clone returns a copy of the model, for experiments that sweep a constant.
func (m *CostModel) Clone() *CostModel {
	c := *m
	return &c
}
