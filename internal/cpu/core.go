package cpu

import (
	"fmt"

	"vessel/internal/mem"
	"vessel/internal/mpk"
)

// Hooks let higher layers observe and extend core execution.
type Hooks struct {
	// OnSendUIPI is invoked by the SENDUIPI instruction with the UITT
	// index; the uintr package wires this to its routing tables.
	OnSendUIPI func(c *Core, index Word)
	// OnHalt fires when the core executes HLT.
	OnHalt func(c *Core)
	// OnFault is consulted before a memory fault halts the core. It
	// plays the role of the kernel's SIGSEGV path: returning true means
	// the fault was handled (e.g. redirected to a signal handler by
	// updating PC) and execution continues.
	OnFault func(c *Core, f *mem.Fault) bool
	// OnWrPkru fires after each WRPKRU retires, with the value the
	// register held before the write — the per-call protection-switch
	// probe (libmpk measures exactly this path at 11–260 cycles).
	OnWrPkru func(c *Core, prev mpk.PKRU)
}

// Core is a simulated CPU core: register file, PKRU, program counter,
// user-interrupt state, and a cycle counter. A core executes instruction
// streams installed in a Machine through an AddressSpace, applying the
// PTE∧PKRU check on every data access and the execute-permission check on
// every fetch.
type Core struct {
	ID    int
	Costs *CostModel
	AS    *mem.AddressSpace
	PKRU  mpk.PKRU
	Regs  [NumRegs]Word
	PC    mem.Addr

	// UIF is the user-interrupt flag; pending vectors are only delivered
	// while it is set (as after UIRET or STUI).
	UIF bool
	// PendingVectors is the posted-interrupt bitmap (the UPID's PIR in
	// hardware). Bits are set by uintr posting and cleared on delivery.
	PendingVectors uint64
	// HandlerAddr is the registered user-interrupt handler entry point.
	HandlerAddr mem.Addr
	// PrivilegedPKRU, when non-nil, suppresses user-interrupt delivery
	// while PKRU equals it — the runtime's CLUI/STUI discipline: a core
	// executing in the userspace privileged mode must not be re-entered
	// by its own scheduling interrupts until it drops back to an
	// application PKRU (the stage-3 WRPKRU of the call gate).
	PrivilegedPKRU *mpk.PKRU

	Cycles int64
	Halted bool
	Fault  *mem.Fault
	Hooks  Hooks

	machine *Machine
	nextPC  mem.Addr
	jumped  bool
}

// setPC redirects control flow for the current instruction.
func (c *Core) setPC(a mem.Addr) {
	c.nextPC = a
	c.jumped = true
}

// push writes v at [RSP-8] and decrements RSP.
func (c *Core) push(v Word) *mem.Fault {
	sp := mem.Addr(c.Regs[RSP] - 8)
	if fault := c.AS.Write(sp, 8, v, c.PKRU); fault != nil {
		return fault
	}
	c.Regs[RSP] = Word(sp)
	return nil
}

// pop reads [RSP] and increments RSP.
func (c *Core) pop() (Word, *mem.Fault) {
	sp := mem.Addr(c.Regs[RSP])
	v, fault := c.AS.Read(sp, 8, c.PKRU)
	if fault != nil {
		return 0, fault
	}
	c.Regs[RSP] = Word(sp + 8)
	return v, nil
}

// PostUserInterrupt posts vector (0–63) into the core's pending bitmap.
// Delivery happens before the next instruction boundary while UIF is set,
// mirroring the hardware's recognition of posted user interrupts.
func (c *Core) PostUserInterrupt(vector uint8) {
	c.PendingVectors |= 1 << (vector & 63)
}

// deliverUserInterrupt vectors the core into its registered handler:
// hardware pushes the interrupted PC and the vector number onto the current
// stack, clears UIF, and jumps to the handler (§2.2).
func (c *Core) deliverUserInterrupt() *mem.Fault {
	vec := uint8(0)
	for v := uint8(0); v < 64; v++ {
		if c.PendingVectors&(1<<v) != 0 {
			vec = v
			break
		}
	}
	c.PendingVectors &^= 1 << vec
	if fault := c.push(Word(c.PC)); fault != nil {
		return fault
	}
	if fault := c.push(Word(vec)); fault != nil {
		return fault
	}
	c.UIF = false
	c.PC = c.HandlerAddr
	c.Cycles += int64(float64(c.Costs.UintrDeliver) * c.Costs.ClockGHz)
	return nil
}

// raise routes a fault through the OnFault hook or halts the core.
func (c *Core) raise(f *mem.Fault) {
	if c.Hooks.OnFault != nil && c.Hooks.OnFault(c, f) {
		return
	}
	c.Fault = f
	c.Halted = true
}

// Inject raises a synthetic fault on the core at an instruction boundary,
// as if the instruction about to execute had faulted — the entry point the
// fault-injection harness uses to model wild writes and gate crashes. The
// fault takes the same path as an organic one (the OnFault hook, i.e. the
// runtime's SIGSEGV handler, gets first refusal); Inject reports whether
// the fault was contained (true) or fail-stopped the core (false).
func (c *Core) Inject(f *mem.Fault) bool {
	c.raise(f)
	return c.Fault == nil
}

// Step fetches, checks, and executes one instruction. It reports whether
// the core can continue (i.e. it is not halted). A core that was never
// dispatched has no address space yet and simply cannot run — stepping it
// is a no-op, not a fault.
func (c *Core) Step() bool {
	if c.Halted || c.AS == nil {
		return false
	}
	// Recognise pending user interrupts at the instruction boundary,
	// unless the core is in the masked privileged mode.
	if c.UIF && c.PendingVectors != 0 && c.HandlerAddr != 0 &&
		(c.PrivilegedPKRU == nil || c.PKRU != *c.PrivilegedPKRU) {
		if fault := c.deliverUserInterrupt(); fault != nil {
			c.raise(fault)
			return !c.Halted
		}
	}
	instr, fault := c.machine.fetch(c.AS, c.PC, c.PKRU)
	if fault != nil {
		c.raise(fault)
		return !c.Halted
	}
	c.nextPC = c.PC + InstrSize
	c.jumped = false
	c.Cycles += instr.Cycles(c.Costs)
	if fault := instr.Exec(c); fault != nil {
		c.raise(fault)
		return !c.Halted
	}
	c.PC = c.nextPC
	return !c.Halted
}

// Run executes up to maxSteps instructions, stopping early on halt or
// fault. It returns the number of instructions executed.
func (c *Core) Run(maxSteps int) int {
	n := 0
	for n < maxSteps && c.Step() {
		n++
	}
	return n
}

// Machine groups physical memory, the cost model, and the global code map
// keyed by physical location (so that text shared between address spaces is
// the same code everywhere, as SMAS requires).
type Machine struct {
	Phys  *mem.Physical
	Costs *CostModel
	cores []*Core
	code  map[codeKey]Instr
}

type codeKey struct {
	frame int
	off   uint64
}

// NewMachine creates a machine with the given number of cores, all sharing
// physical memory but each with a nil address space until attached.
func NewMachine(cores int, costs *CostModel) *Machine {
	if costs == nil {
		costs = Default()
	}
	m := &Machine{
		Phys:  mem.NewPhysical(),
		Costs: costs,
		code:  make(map[codeKey]Instr),
	}
	for i := 0; i < cores; i++ {
		m.cores = append(m.cores, &Core{
			ID:      i,
			Costs:   costs,
			machine: m,
			UIF:     true,
		})
	}
	return m
}

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// NumCores returns the number of cores.
func (m *Machine) NumCores() int { return len(m.cores) }

// InstallCode registers a program's instructions at virtual address base in
// the given address space. The pages covering the program must already be
// mapped; the instructions are recorded against the backing *frames*, so
// any address space sharing those frames executes the same code.
func (m *Machine) InstallCode(as *mem.AddressSpace, base mem.Addr, prog []Instr) error {
	if base%InstrSize != 0 {
		return fmt.Errorf("cpu: code base %#x not instruction aligned", uint64(base))
	}
	for i, ins := range prog {
		a := base + mem.Addr(i*InstrSize)
		pte, ok := as.Lookup(a)
		if !ok {
			return fmt.Errorf("cpu: code page %#x not mapped", uint64(a))
		}
		m.code[codeKey{pte.Frame.ID, a.Offset()}] = ins
	}
	return nil
}

// FetchAt returns the instruction mapped at addr in as, without permission
// checks — used by the loader's static code inspection (§5.2.1), which reads
// the program image it is installing.
func (m *Machine) FetchAt(as *mem.AddressSpace, addr mem.Addr) (Instr, bool) {
	pte, ok := as.Lookup(addr)
	if !ok {
		return nil, false
	}
	ins, ok := m.code[codeKey{pte.Frame.ID, addr.Offset()}]
	return ins, ok
}

// fetch resolves PC to an instruction, enforcing the execute permission on
// the text page. PKRU is not consulted for fetches (MPK does not mediate
// execution), but the page must be executable.
func (m *Machine) fetch(as *mem.AddressSpace, pc mem.Addr, pkru mpk.PKRU) (Instr, *mem.Fault) {
	frame, fault := as.Check(pc, mpk.AccessExec, pkru)
	if fault != nil {
		return nil, fault
	}
	ins, ok := m.code[codeKey{frame.ID, pc.Offset()}]
	if !ok {
		return nil, &mem.Fault{Addr: pc, Kind: mem.FaultPerm, Op: mpk.AccessExec}
	}
	return ins, nil
}

// NsFor converts a core's accumulated cycles to nanoseconds under the
// machine's cost model.
func (m *Machine) NsFor(cycles int64) float64 {
	return float64(cycles) / m.Costs.ClockGHz
}
