package cpu

import (
	"fmt"
	"math/bits"

	"vessel/internal/mem"
	"vessel/internal/mpk"
)

// DisableFastPath routes every fetch and data access through the uncached
// map-walk path, bypassing the per-core software TLB and decoded-fetch
// cache. It exists for differential testing — the fast path must be
// semantically invisible, and conformance runs assert byte-identical
// results with it on and off. Toggle only while no simulation is running.
var DisableFastPath bool

// Hooks let higher layers observe and extend core execution.
type Hooks struct {
	// OnSendUIPI is invoked by the SENDUIPI instruction with the UITT
	// index; the uintr package wires this to its routing tables.
	OnSendUIPI func(c *Core, index Word)
	// OnHalt fires when the core executes HLT.
	OnHalt func(c *Core)
	// OnFault is consulted before a memory fault halts the core. It
	// plays the role of the kernel's SIGSEGV path: returning true means
	// the fault was handled (e.g. redirected to a signal handler by
	// updating PC) and execution continues.
	OnFault func(c *Core, f *mem.Fault) bool
	// OnWrPkru fires after each WRPKRU retires, with the value the
	// register held before the write — the per-call protection-switch
	// probe (libmpk measures exactly this path at 11–260 cycles).
	OnWrPkru func(c *Core, prev mpk.PKRU)
}

// Core is a simulated CPU core: register file, PKRU, program counter,
// user-interrupt state, and a cycle counter. A core executes instruction
// streams installed in a Machine through an AddressSpace, applying the
// PTE∧PKRU check on every data access and the execute-permission check on
// every fetch.
type Core struct {
	ID    int
	Costs *CostModel
	AS    *mem.AddressSpace
	PKRU  mpk.PKRU
	Regs  [NumRegs]Word
	PC    mem.Addr

	// UIF is the user-interrupt flag; pending vectors are only delivered
	// while it is set (as after UIRET or STUI).
	UIF bool
	// PendingVectors is the posted-interrupt bitmap (the UPID's PIR in
	// hardware). Bits are set by uintr posting and cleared on delivery.
	PendingVectors uint64
	// HandlerAddr is the registered user-interrupt handler entry point.
	HandlerAddr mem.Addr
	// PrivilegedPKRU, when non-nil, suppresses user-interrupt delivery
	// while PKRU equals it — the runtime's CLUI/STUI discipline: a core
	// executing in the userspace privileged mode must not be re-entered
	// by its own scheduling interrupts until it drops back to an
	// application PKRU (the stage-3 WRPKRU of the call gate).
	PrivilegedPKRU *mpk.PKRU

	Cycles int64
	Halted bool
	// Stalled wedges the core: Step refuses to execute and the cycle
	// counter freezes, but no fault is recorded — the model of a core that
	// stops retiring instructions (a hardware wedge, a lost clock) rather
	// than one that crashed. Failure detectors see it as a heartbeat that
	// stops without an error state. Set by the fault injector's CoreStall.
	Stalled bool
	Fault   *mem.Fault
	Hooks   Hooks

	machine *Machine
	nextPC  mem.Addr
	jumped  bool

	// slow caches the DisableFastPath toggle for the duration of one
	// Run (or one public Step): the global is sampled once per entry
	// instead of on every fetch and data access — the toggle contract
	// ("only while no simulation is running") makes per-quantum
	// sampling exact.
	slow bool

	// sb is the superblock store (see superblock.go), lazily allocated
	// on the first fused Run and invalidated alongside the icache by
	// syncCaches.
	sb *sbCache

	// tlb is the core's software translation cache; see mem.TLB for the
	// generation-based coherence scheme that keeps it invisible.
	tlb mem.TLB
	// faultv is the scratch the TLB access helpers fill on failure, so
	// the non-faulting path never allocates a *mem.Fault. The pointer
	// handed to raise aliases this scratch; fault consumers (the OnFault
	// hook, readers of c.Fault) must not retain it across further
	// execution of this core, which none do — a contained fault is acted
	// on synchronously and an uncontained one halts the core.
	faultv mem.Fault

	// The decoded-fetch cache: a direct-mapped map from PC to the decoded
	// instruction, tagged with the address space, its translation
	// generation, and the machine's code generation. A hit skips both the
	// page-table walk and the codeKey map lookup in fetch. Exec
	// permission was verified at fill time and cannot have changed while
	// the generation tags match; PKRU is never consulted for fetches.
	icache    [icacheSize]icacheEntry
	icAS      *mem.AddressSpace
	icASGen   uint64
	icCodeGen uint64
}

// icacheSize is the number of direct-mapped decoded-fetch entries, indexed
// by instruction slot (PC / InstrSize). Power of two.
const icacheSize = 256

// icacheEntry tags the decoded instruction with PC+1 so the zero value
// never hits.
type icacheEntry struct {
	tag   mem.Addr
	instr Instr
}

// setPC redirects control flow for the current instruction.
func (c *Core) setPC(a mem.Addr) {
	c.nextPC = a
	c.jumped = true
}

// read is the core's checked data load: the PTE∧PKRU dual check resolved
// through the per-core TLB, allocation-free unless it faults — and even
// then the fault lands in the core's scratch.
func (c *Core) read(addr mem.Addr, size int) (Word, *mem.Fault) {
	if c.slow {
		return c.AS.Read(addr, size, c.PKRU)
	}
	v, ok := c.AS.ReadVia(&c.tlb, addr, size, c.PKRU, &c.faultv)
	if !ok {
		return 0, &c.faultv
	}
	return v, nil
}

// write is read's store counterpart.
func (c *Core) write(addr mem.Addr, size int, v Word) *mem.Fault {
	if c.slow {
		return c.AS.Write(addr, size, v, c.PKRU)
	}
	if !c.AS.WriteVia(&c.tlb, addr, size, v, c.PKRU, &c.faultv) {
		return &c.faultv
	}
	return nil
}

// syncCaches invalidates the decoded-fetch cache and the superblock
// store together when their shared (AS, AS generation, InstallCode
// generation) tags go stale — one generation triple-check covers both,
// so translation mutations and code installs invalidate fused blocks
// exactly when they invalidate single decodes.
func (c *Core) syncCaches() {
	if c.icAS != c.AS || c.icASGen != c.AS.Generation() || c.icCodeGen != c.machine.codeGen {
		c.icache = [icacheSize]icacheEntry{}
		if c.sb != nil {
			c.sb.clear()
		}
		c.icAS, c.icASGen, c.icCodeGen = c.AS, c.AS.Generation(), c.machine.codeGen
	}
}

// fetchFast resolves PC to a decoded instruction through the per-core
// icache, falling back to the machine's checked fetch on a miss.
func (c *Core) fetchFast() (Instr, *mem.Fault) {
	if c.slow {
		return c.machine.fetch(c.AS, c.PC, c.PKRU)
	}
	c.syncCaches()
	e := &c.icache[(uint64(c.PC)/InstrSize)&(icacheSize-1)]
	if e.tag == c.PC+1 {
		return e.instr, nil
	}
	ins, fault := c.machine.fetch(c.AS, c.PC, c.PKRU)
	if fault != nil {
		return nil, fault
	}
	e.tag, e.instr = c.PC+1, ins
	return ins, nil
}

// push writes v at [RSP-8] and decrements RSP.
func (c *Core) push(v Word) *mem.Fault {
	sp := mem.Addr(c.Regs[RSP] - 8)
	if fault := c.write(sp, 8, v); fault != nil {
		return fault
	}
	c.Regs[RSP] = Word(sp)
	return nil
}

// pop reads [RSP] and increments RSP.
func (c *Core) pop() (Word, *mem.Fault) {
	sp := mem.Addr(c.Regs[RSP])
	v, fault := c.read(sp, 8)
	if fault != nil {
		return 0, fault
	}
	c.Regs[RSP] = Word(sp + 8)
	return v, nil
}

// PostUserInterrupt posts vector (0–63) into the core's pending bitmap.
// Delivery happens before the next instruction boundary while UIF is set,
// mirroring the hardware's recognition of posted user interrupts.
func (c *Core) PostUserInterrupt(vector uint8) {
	c.PendingVectors |= 1 << (vector & 63)
}

// deliverUserInterrupt vectors the core into its registered handler:
// hardware pushes the interrupted PC and the vector number onto the current
// stack, clears UIF, and jumps to the handler (§2.2).
func (c *Core) deliverUserInterrupt() *mem.Fault {
	// Lowest pending vector wins; the caller guarantees the bitmap is
	// non-empty, so TrailingZeros64 is in [0, 63].
	vec := uint8(bits.TrailingZeros64(c.PendingVectors))
	c.PendingVectors &^= 1 << vec
	if fault := c.push(Word(c.PC)); fault != nil {
		return fault
	}
	if fault := c.push(Word(vec)); fault != nil {
		return fault
	}
	c.UIF = false
	c.PC = c.HandlerAddr
	c.Cycles += int64(float64(c.Costs.UintrDeliver) * c.Costs.ClockGHz)
	return nil
}

// raise routes a fault through the OnFault hook or halts the core.
func (c *Core) raise(f *mem.Fault) {
	if c.Hooks.OnFault != nil && c.Hooks.OnFault(c, f) {
		return
	}
	c.Fault = f
	c.Halted = true
}

// Inject raises a synthetic fault on the core at an instruction boundary,
// as if the instruction about to execute had faulted — the entry point the
// fault-injection harness uses to model wild writes and gate crashes. The
// fault takes the same path as an organic one (the OnFault hook, i.e. the
// runtime's SIGSEGV handler, gets first refusal); Inject reports whether
// the fault was contained (true) or fail-stopped the core (false).
func (c *Core) Inject(f *mem.Fault) bool {
	c.raise(f)
	return c.Fault == nil
}

// Step fetches, checks, and executes one instruction. It reports whether
// the core can continue (i.e. it is not halted). A core that was never
// dispatched has no address space yet and simply cannot run — stepping it
// is a no-op, not a fault.
func (c *Core) Step() bool {
	c.slow = DisableFastPath
	return c.step()
}

// step is Step with the fast-path toggle already sampled — the
// per-instruction boundary the superblock path defers to whenever fused
// execution cannot express one (delivery, unfetchable slots, and every
// block terminator's semantics are defined by this function).
func (c *Core) step() bool {
	if c.Halted || c.Stalled || c.AS == nil {
		return false
	}
	// Recognise pending user interrupts at the instruction boundary,
	// unless the core is in the masked privileged mode.
	if c.uintrDeliverable() {
		if fault := c.deliverUserInterrupt(); fault != nil {
			c.raise(fault)
			return !c.Halted
		}
	}
	instr, fault := c.fetchFast()
	if fault != nil {
		c.raise(fault)
		return !c.Halted
	}
	c.nextPC = c.PC + InstrSize
	c.jumped = false
	c.Cycles += instr.Cycles(c.Costs)
	if fault := instr.Exec(c); fault != nil {
		c.raise(fault)
		return !c.Halted
	}
	c.PC = c.nextPC
	return !c.Halted
}

// Run executes up to maxSteps instructions, stopping early on halt or
// fault. It returns the number of instructions executed — the step-count
// contract every quantum seam above (Manager.Step, RunTimesliced, the
// schedulers' time slices) relies on: Run(n) retires exactly the steps n
// per-instruction Steps would have, with identical cycle accounting.
// The default path executes through fused superblocks (see
// superblock.go), splitting a block when the remaining budget expires
// mid-run; DisableSuperblocks or DisableFastPath selects the
// per-instruction loop.
func (c *Core) Run(maxSteps int) int {
	c.slow = DisableFastPath
	n := 0
	if c.slow || DisableSuperblocks {
		for n < maxSteps && c.step() {
			n++
		}
		return n
	}
	for n < maxSteps {
		ran, cont := c.stepBlock(maxSteps - n)
		n += ran
		if !cont {
			break
		}
	}
	return n
}

// Machine groups physical memory, the cost model, and the global code map
// keyed by physical location (so that text shared between address spaces is
// the same code everywhere, as SMAS requires).
type Machine struct {
	Phys  *mem.Physical
	Costs *CostModel
	cores []*Core
	code  map[codeKey]Instr
	// codeGen counts InstallCode calls; every core's decoded-fetch cache
	// is tagged with it, so newly installed code invalidates stale
	// decodes machine-wide on the next fetch.
	codeGen uint64
}

type codeKey struct {
	frame int
	off   uint64
}

// NewMachine creates a machine with the given number of cores, all sharing
// physical memory but each with a nil address space until attached.
func NewMachine(cores int, costs *CostModel) *Machine {
	if costs == nil {
		costs = Default()
	}
	m := &Machine{
		Phys:  mem.NewPhysical(),
		Costs: costs,
		code:  make(map[codeKey]Instr),
	}
	for i := 0; i < cores; i++ {
		m.cores = append(m.cores, &Core{
			ID:      i,
			Costs:   costs,
			machine: m,
			UIF:     true,
		})
	}
	return m
}

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// NumCores returns the number of cores.
func (m *Machine) NumCores() int { return len(m.cores) }

// InstallCode registers a program's instructions at virtual address base in
// the given address space. The pages covering the program must already be
// mapped; the instructions are recorded against the backing *frames*, so
// any address space sharing those frames executes the same code.
func (m *Machine) InstallCode(as *mem.AddressSpace, base mem.Addr, prog []Instr) error {
	if base%InstrSize != 0 {
		return fmt.Errorf("cpu: code base %#x not instruction aligned", uint64(base))
	}
	m.codeGen++
	for i, ins := range prog {
		a := base + mem.Addr(i*InstrSize)
		pte, ok := as.Lookup(a)
		if !ok {
			return fmt.Errorf("cpu: code page %#x not mapped", uint64(a))
		}
		m.code[codeKey{pte.Frame.ID, a.Offset()}] = ins
	}
	return nil
}

// FetchAt returns the instruction mapped at addr in as, without permission
// checks — used by the loader's static code inspection (§5.2.1), which reads
// the program image it is installing.
func (m *Machine) FetchAt(as *mem.AddressSpace, addr mem.Addr) (Instr, bool) {
	pte, ok := as.Lookup(addr)
	if !ok {
		return nil, false
	}
	ins, ok := m.code[codeKey{pte.Frame.ID, addr.Offset()}]
	return ins, ok
}

// fetch resolves PC to an instruction, enforcing the execute permission on
// the text page. PKRU is not consulted for fetches (MPK does not mediate
// execution), but the page must be executable.
func (m *Machine) fetch(as *mem.AddressSpace, pc mem.Addr, pkru mpk.PKRU) (Instr, *mem.Fault) {
	frame, fault := as.Check(pc, mpk.AccessExec, pkru)
	if fault != nil {
		return nil, fault
	}
	ins, ok := m.code[codeKey{frame.ID, pc.Offset()}]
	if !ok {
		return nil, &mem.Fault{Addr: pc, Kind: mem.FaultPerm, Op: mpk.AccessExec}
	}
	return ins, nil
}

// NsFor converts a core's accumulated cycles to nanoseconds under the
// machine's cost model.
func (m *Machine) NsFor(cycles int64) float64 {
	return float64(cycles) / m.Costs.ClockGHz
}
