package cpu

import (
	"fmt"

	"vessel/internal/mem"
)

// Assembler builds instruction sequences with symbolic labels, resolving
// forward references when the program is assembled at a base address. The
// call gate, booting program, and test attack programs are all written with
// it.
type Assembler struct {
	instrs []Instr
	labels map[string]int // label -> instruction index
	fixups []fixup
}

type fixup struct {
	index int
	label string
	kind  fixupKind
}

type fixupKind uint8

const (
	fixJmp fixupKind = iota
	fixJne
	fixJeq
	fixJnzDec
	fixCall
	fixMovImm
)

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{labels: make(map[string]int)}
}

// Len returns the number of instructions emitted so far.
func (a *Assembler) Len() int { return len(a.instrs) }

// Emit appends raw instructions.
func (a *Assembler) Emit(ins ...Instr) *Assembler {
	a.instrs = append(a.instrs, ins...)
	return a
}

// Label defines a label at the current position.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		panic(fmt.Sprintf("asm: duplicate label %q", name))
	}
	a.labels[name] = len(a.instrs)
	return a
}

// JmpTo emits a jump to a label.
func (a *Assembler) JmpTo(label string) *Assembler {
	a.fixups = append(a.fixups, fixup{len(a.instrs), label, fixJmp})
	return a.Emit(Jmp{})
}

// JneTo emits a conditional jump to a label when regs differ.
func (a *Assembler) JneTo(x, y Reg, label string) *Assembler {
	a.fixups = append(a.fixups, fixup{len(a.instrs), label, fixJne})
	return a.Emit(Jne{A: x, B: y})
}

// JeqTo emits a conditional jump to a label when regs are equal.
func (a *Assembler) JeqTo(x, y Reg, label string) *Assembler {
	a.fixups = append(a.fixups, fixup{len(a.instrs), label, fixJeq})
	return a.Emit(Jeq{A: x, B: y})
}

// LoopTo emits a dec-and-jump-if-nonzero to a label.
func (a *Assembler) LoopTo(counter Reg, label string) *Assembler {
	a.fixups = append(a.fixups, fixup{len(a.instrs), label, fixJnzDec})
	return a.Emit(JnzDec{Dst: counter})
}

// CallTo emits a direct call to a label.
func (a *Assembler) CallTo(label string) *Assembler {
	a.fixups = append(a.fixups, fixup{len(a.instrs), label, fixCall})
	return a.Emit(Call{})
}

// LeaTo loads a label's assembled address into a register.
func (a *Assembler) LeaTo(dst Reg, label string) *Assembler {
	a.fixups = append(a.fixups, fixup{len(a.instrs), label, fixMovImm})
	return a.Emit(MovImm{Dst: dst})
}

// AddrOf returns the address a label will have when assembled at base.
// It panics on undefined labels.
func (a *Assembler) AddrOf(label string, base mem.Addr) mem.Addr {
	idx, ok := a.labels[label]
	if !ok {
		panic(fmt.Sprintf("asm: undefined label %q", label))
	}
	return base + mem.Addr(idx*InstrSize)
}

// Assemble resolves all labels against the base address and returns the
// final instruction slice. The assembler can be assembled repeatedly at
// different bases.
func (a *Assembler) Assemble(base mem.Addr) ([]Instr, error) {
	out := make([]Instr, len(a.instrs))
	copy(out, a.instrs)
	for _, f := range a.fixups {
		idx, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		target := base + mem.Addr(idx*InstrSize)
		switch f.kind {
		case fixJmp:
			out[f.index] = Jmp{Target: target}
		case fixJne:
			j := out[f.index].(Jne)
			j.Target = target
			out[f.index] = j
		case fixJeq:
			j := out[f.index].(Jeq)
			j.Target = target
			out[f.index] = j
		case fixJnzDec:
			j := out[f.index].(JnzDec)
			j.Target = target
			out[f.index] = j
		case fixCall:
			out[f.index] = Call{Target: target}
		case fixMovImm:
			mi := out[f.index].(MovImm)
			mi.Imm = Word(target)
			out[f.index] = mi
		}
	}
	return out, nil
}

// SizeBytes returns the assembled size in bytes.
func (a *Assembler) SizeBytes() uint64 { return uint64(len(a.instrs) * InstrSize) }
