package cpu

import "vessel/internal/mem"

// DisableSuperblocks routes Core.Run through the per-instruction Step
// loop, bypassing superblock fusion while keeping the TLB/icache fast
// path. Like DisableFastPath it exists for differential testing — fused
// execution must be semantically invisible, and conformance runs assert
// byte-identical canonical results with it on and off. Toggle only while
// no simulation is running. DisableFastPath implies this: the slow path
// never fuses.
var DisableSuperblocks bool

// Superblock execution fuses runs of straight-line decoded instructions
// into single-dispatch units. The per-instruction Step loop pays, for
// every instruction, the pending-interrupt predicate, the icache
// generation triple-check and tag compare, nextPC/jumped bookkeeping,
// and a virtual Cycles() call. A superblock pays all of that once per
// run: at fetch time the decoder greedily assembles consecutive
// instructions into a cached entry (terminated by control flow, by any
// instruction that can change interrupt deliverability or protection
// state, by a page crossing, or by the length cap), validates
// permissions for every constituent fetch with the full page-table walk
// at fill time, compiles each straight-line instruction into a flat µop
// record, and precomputes per-instruction cycle prefix sums. At
// execution time a hit costs one boundary check, one tag compare, a
// jump-table switch over the µop prefix (no interface dispatch; memory
// µops go straight to the width-specialized TLB accessors), and a single
// cycle-accounting update from the prefix table.
//
// Coherence rides the existing generation counters for free: superblock
// entries live behind the same (AS, AS generation, InstallCode
// generation) tags as the decoded-fetch cache and are cleared together
// by syncCaches, so Map/Unmap/Protect/SetPKey/ShareRange and
// InstallCode invalidate fused blocks exactly when they invalidate
// single decodes. Exec permission for every page a block spans was
// verified at fill time and cannot have changed while the tags match;
// PKRU is never consulted for fetches (mpk.PKRU.Check passes AccessExec
// unconditionally), so blocks stay warm across WRPKRU — which is a
// terminator anyway.
//
// Delivered behavior is byte-identical to the per-instruction loop by
// construction:
//
//   - Interrupt boundaries: deliverability (UIF, pending bitmap,
//     handler, PKRU-mask) cannot change inside a straight-line prefix —
//     every instruction that can change it (SENDUIPI, STUI, CLUI,
//     UIRET, WRPKRU, HLT, Hook, and all control flow) terminates a
//     block — so checking once at block entry is exactly equivalent to
//     checking at every boundary.
//   - Faults: a mid-block data fault bails out to the per-instruction
//     contract — PC and the cycle counter are fixed up to precisely the
//     faulting instruction (cycles charged through it, as Step charges
//     before Exec) before the fault is raised, so the OnFault hook and
//     halt state observe exactly what the slow loop would show.
//   - Quantum expiry: Core.Run splits a block at the step budget,
//     executing only the remaining quota and charging only its prefix
//     cycles, so Run(n) retires exactly the same instructions at the
//     same accounting as n per-instruction Steps.
const (
	// sbCacheSize is the number of direct-mapped superblock entries,
	// indexed by starting instruction slot. Power of two.
	sbCacheSize = 64
	// sbMaxLen caps fused-run length — long enough to swallow hot inner
	// loops whole, short enough to bound entry size and quantum-split
	// waste.
	sbMaxLen = 32
)

// A µop is a straight-line instruction compiled to a flat tagged record:
// one opcode byte, two register operands, one immediate. The interior of
// a superblock executes as a dense switch over µop codes — a jump table,
// not an interface dispatch — with the memory ops calling the width-
// specialized TLB accessors (mem.ReadVia8/WriteVia8) directly. Each µop
// is semantically identical to its source Instr's Exec; compileOp is the
// single point that guarantees it.
type sbOp struct {
	code uint8
	a, b uint8
	imm  int64
}

// µop codes. The switch in stepBlock must cover exactly these.
const (
	opMovImm uint8 = iota
	opMovReg
	opLoad  // a=Dst, b=Base, imm=Off
	opStore // a=Src, b=Base, imm=Off
	opLoadAbs
	opStoreAbs
	opAdd
	opAddImm
	opMulImm
	opPush
	opPop
	opWork // cycles live in the prefix table; execution is a no-op
	opCpuID
	opRdPkru
)

// compileOp translates a fusible instruction to its µop. The fusible set
// (reported by ok) doubles as the straight-line whitelist: no control
// flow, no reads of PC/nextPC/cycle state, no effect on interrupt
// deliverability or protection state, no hooks. Everything else —
// including Instr implementations from other packages (gate trampolines,
// syscall hooks) — conservatively terminates a block and executes with
// full per-instruction boundary semantics.
func compileOp(ins Instr) (op sbOp, ok bool) {
	switch v := ins.(type) {
	case MovImm:
		return sbOp{code: opMovImm, a: uint8(v.Dst), imm: int64(v.Imm)}, true
	case MovReg:
		return sbOp{code: opMovReg, a: uint8(v.Dst), b: uint8(v.Src)}, true
	case Load:
		return sbOp{code: opLoad, a: uint8(v.Dst), b: uint8(v.Base), imm: v.Off}, true
	case Store:
		return sbOp{code: opStore, a: uint8(v.Src), b: uint8(v.Base), imm: v.Off}, true
	case LoadAbs:
		return sbOp{code: opLoadAbs, a: uint8(v.Dst), imm: int64(v.Addr)}, true
	case StoreAbs:
		return sbOp{code: opStoreAbs, a: uint8(v.Src), imm: int64(v.Addr)}, true
	case Add:
		return sbOp{code: opAdd, a: uint8(v.Dst), b: uint8(v.Src)}, true
	case AddImm:
		return sbOp{code: opAddImm, a: uint8(v.Dst), imm: v.Imm}, true
	case MulImm:
		return sbOp{code: opMulImm, a: uint8(v.Dst), imm: v.Imm}, true
	case Push:
		return sbOp{code: opPush, a: uint8(v.Src)}, true
	case Pop:
		return sbOp{code: opPop, a: uint8(v.Dst)}, true
	case Work:
		return sbOp{code: opWork}, true
	case CpuID:
		return sbOp{code: opCpuID, a: uint8(v.Dst)}, true
	case RdPkru:
		return sbOp{code: opRdPkru}, true
	}
	return sbOp{}, false
}

// sbEntry is one cached superblock: the straight-line run starting at
// tag-1 compiled to µops, with per-instruction cycle prefix sums. tag is
// the start PC + 1 so the zero value never hits.
type sbEntry struct {
	tag mem.Addr
	n   int32
	// term, when non-nil, is the block's final instruction: a terminator
	// needing full per-instruction boundary semantics (control flow
	// writes nextPC, hooks observe core state), kept decoded rather than
	// compiled. A nil term means the block ended at a page crossing, the
	// length cap, or an unfetchable next slot, and every one of its n
	// instructions is a µop.
	term Instr
	ops  [sbMaxLen]sbOp
	// prefix[k] is the summed cycle cost of the block's first k
	// instructions under the machine's cost model, so a whole or partial
	// block charges the cycle counter with one add.
	prefix [sbMaxLen + 1]int64
}

// sbCache is a core's superblock store, allocated lazily on the first
// fused Run so never-executing cores (parked members of large machines)
// stay cheap.
type sbCache struct {
	ents [sbCacheSize]sbEntry
	// Fills, Hits, and Bailouts count block assembly, warm dispatch,
	// and mid-block exits to the precise path. Host-side observability
	// for tests and benches, never part of simulated results.
	Fills, Hits, Bailouts uint64
}

// clear invalidates every entry by tag, leaving the decoded payloads in
// place — an address-space switch costs a tag sweep, not a memclr of
// the whole store.
func (s *sbCache) clear() {
	for i := range s.ents {
		s.ents[i].tag = 0
	}
}

// uintrDeliverable reports whether a pending user interrupt would be
// recognised at the next instruction boundary — Step's delivery
// predicate, shared with the superblock path. Every instruction that
// can flip it terminates a block, so one check at block entry covers
// every interior boundary.
func (c *Core) uintrDeliverable() bool {
	return c.UIF && c.PendingVectors != 0 && c.HandlerAddr != 0 &&
		(c.PrivilegedPKRU == nil || c.PKRU != *c.PrivilegedPKRU)
}

// fillSuperblock assembles the superblock starting at c.PC into e,
// fetching each constituent through the machine's fully-checked fetch
// (the batched up-front permission validation: every text page the
// block touches is walked and exec-checked here, once, and the
// generation tags keep that verdict fresh). Assembly stops at a
// terminator (kept as the block's last instruction), a page crossing,
// the length cap, or an unfetchable slot (the block ends early and the
// per-instruction path raises the fault if execution reaches it).
// Reports whether a non-empty block was built; an empty block means the
// very first fetch faults and the caller must take the precise path.
func (c *Core) fillSuperblock(e *sbEntry) bool {
	e.tag = 0 // invalid while filling
	e.term = nil
	pc := c.PC
	n := 0
	for n < sbMaxLen {
		ins, fault := c.machine.fetch(c.AS, pc, c.PKRU)
		if fault != nil {
			break
		}
		op, fusible := compileOp(ins)
		e.prefix[n+1] = e.prefix[n] + ins.Cycles(c.Costs)
		n++
		if !fusible {
			e.term = ins
			break
		}
		e.ops[n-1] = op
		pc += InstrSize
		if pc.Offset() == 0 {
			break // page crossing: one block never spans text pages
		}
	}
	if n == 0 {
		return false
	}
	e.n, e.tag = int32(n), c.PC+1
	return true
}

// stepBlock executes at most budget instructions starting at c.PC as a
// superblock, falling back to the per-instruction path for any boundary
// the fused loop cannot express (pending interrupt, unfetchable first
// slot). It returns the number of retired steps under Run's counting
// contract — a step counts exactly when per-instruction Step would have
// returned true — and whether the core can continue. budget must be ≥1.
func (c *Core) stepBlock(budget int) (int, bool) {
	if c.Halted || c.Stalled || c.AS == nil {
		return 0, false
	}
	if c.uintrDeliverable() {
		// Delivery (and its fault quirks — a contained delivery fault
		// consumes a step without retiring an instruction) is exactly
		// the per-instruction boundary; take it verbatim.
		if c.step() {
			return 1, true
		}
		return 0, false
	}
	c.syncCaches()
	if c.sb == nil {
		c.sb = new(sbCache)
	}
	e := &c.sb.ents[(uint64(c.PC)/InstrSize)&(sbCacheSize-1)]
	if e.tag != c.PC+1 {
		if !c.fillSuperblock(e) {
			// First fetch faults: the precise path raises it with
			// Step's exact containment-and-counting behavior.
			if c.step() {
				return 1, true
			}
			return 0, false
		}
		c.sb.Fills++
	} else {
		c.sb.Hits++
	}
	n := int(e.n)
	straight := n
	term := e.term
	if term != nil {
		straight = n - 1
	}
	if budget < n {
		// Quantum expiry splits the block: retire only the remaining
		// quota, never the terminator (it needs a full boundary).
		straight = budget
		term = nil
	}
	// The µop interpreter: a dense switch over compiled straight-line
	// ops. The AS/PKRU/TLB locals are loop-invariant by construction —
	// every instruction that could change them terminates a block.
	as, tlb, pkru := c.AS, &c.tlb, c.PKRU
	pc := c.PC
	faultAt := -1
	for i := 0; i < straight; i++ {
		op := &e.ops[i]
		switch op.code {
		case opMovImm:
			c.Regs[op.a] = Word(op.imm)
		case opMovReg:
			c.Regs[op.a] = c.Regs[op.b]
		case opLoad:
			addr := mem.Addr(int64(c.Regs[op.b]) + op.imm)
			v, ok := as.ReadVia8(tlb, addr, pkru, &c.faultv)
			if !ok {
				faultAt = i
				break
			}
			c.Regs[op.a] = v
		case opStore:
			addr := mem.Addr(int64(c.Regs[op.b]) + op.imm)
			if !as.WriteVia8(tlb, addr, c.Regs[op.a], pkru, &c.faultv) {
				faultAt = i
			}
		case opLoadAbs:
			v, ok := as.ReadVia8(tlb, mem.Addr(op.imm), pkru, &c.faultv)
			if !ok {
				faultAt = i
				break
			}
			c.Regs[op.a] = v
		case opStoreAbs:
			if !as.WriteVia8(tlb, mem.Addr(op.imm), c.Regs[op.a], pkru, &c.faultv) {
				faultAt = i
			}
		case opAdd:
			c.Regs[op.a] += c.Regs[op.b]
		case opAddImm:
			c.Regs[op.a] = Word(int64(c.Regs[op.a]) + op.imm)
		case opMulImm:
			c.Regs[op.a] = Word(int64(c.Regs[op.a]) * op.imm)
		case opPush:
			sp := mem.Addr(c.Regs[RSP] - 8)
			if !as.WriteVia8(tlb, sp, c.Regs[op.a], pkru, &c.faultv) {
				faultAt = i
				break
			}
			c.Regs[RSP] = Word(sp)
		case opPop:
			sp := mem.Addr(c.Regs[RSP])
			v, ok := as.ReadVia8(tlb, sp, pkru, &c.faultv)
			if !ok {
				faultAt = i
				break
			}
			c.Regs[RSP] = Word(sp + 8)
			c.Regs[op.a] = v
		case opWork:
			// Cycle cost lives in the prefix table.
		case opCpuID:
			c.Regs[op.a] = Word(c.ID)
		case opRdPkru:
			c.Regs[RAX] = Word(uint32(c.PKRU))
		}
		if faultAt >= 0 {
			// Mid-block bailout: restore the precise-interrupt
			// illusion before anyone looks. PC lands on the faulting
			// instruction; cycles are charged through it, exactly as
			// Step charges before Exec.
			c.sb.Bailouts++
			c.PC = pc + mem.Addr(i)*InstrSize
			c.Cycles += e.prefix[i+1]
			c.raise(&c.faultv)
			if c.Halted {
				return i, false
			}
			return i + 1, true
		}
	}
	c.Cycles += e.prefix[straight]
	c.PC = pc + mem.Addr(straight)*InstrSize
	if term == nil {
		return straight, true
	}
	// The terminator retires with full per-instruction semantics, minus
	// the fetch (decoded at fill time, validated by the entry tag).
	c.nextPC = c.PC + InstrSize
	c.jumped = false
	c.Cycles += e.prefix[n] - e.prefix[n-1]
	if fault := term.Exec(c); fault != nil {
		c.sb.Bailouts++
		c.raise(fault)
		if c.Halted {
			return straight, false
		}
		return straight + 1, true
	}
	c.PC = c.nextPC
	if c.Halted {
		return straight, false
	}
	return straight + 1, true
}

// SuperblockStats reports (fills, hits, bailouts) of the core's
// superblock cache — zeros when the core never ran fused.
func (c *Core) SuperblockStats() (fills, hits, bailouts uint64) {
	if c.sb == nil {
		return 0, 0, 0
	}
	return c.sb.Fills, c.sb.Hits, c.sb.Bailouts
}
