package cpu

import (
	"testing"

	"vessel/internal/mem"
	"vessel/internal/mpk"
)

// buildEnv maps a text page (exec-only), a data page, and a stack page and
// attaches core 0.
func buildEnv(t *testing.T) (*Machine, *Core, *mem.AddressSpace) {
	t.Helper()
	m := NewMachine(2, Default())
	as := mem.NewAddressSpace(m.Phys)
	if err := as.MapRange(0x1000, mem.PageSize, mem.PermXOnly, 0); err != nil {
		t.Fatal(err)
	}
	if err := as.MapRange(0x10000, mem.PageSize, mem.PermRW, 0); err != nil {
		t.Fatal(err)
	}
	if err := as.MapRange(0x20000, mem.PageSize, mem.PermRW, 0); err != nil {
		t.Fatal(err)
	}
	c := m.Core(0)
	c.AS = as
	c.PKRU = mpk.AllowAllValue
	c.PC = 0x1000
	c.Regs[RSP] = 0x21000 // top of stack page
	return m, c, as
}

func install(t *testing.T, m *Machine, as *mem.AddressSpace, base mem.Addr, prog []Instr) {
	t.Helper()
	if err := m.InstallCode(as, base, prog); err != nil {
		t.Fatal(err)
	}
}

func TestBasicALUAndMemory(t *testing.T) {
	m, c, as := buildEnv(t)
	prog := []Instr{
		MovImm{RAX, 5},
		MovImm{RBX, 7},
		Add{RAX, RBX},
		MulImm{RAX, 3},
		AddImm{RAX, -6},
		MovImm{RCX, 0x10000},
		Store{RAX, RCX, 8},
		Load{RDX, RCX, 8},
		Halt{},
	}
	install(t, m, as, 0x1000, prog)
	c.Run(100)
	if c.Fault != nil {
		t.Fatal(c.Fault)
	}
	if c.Regs[RAX] != 30 || c.Regs[RDX] != 30 {
		t.Fatalf("rax=%d rdx=%d, want 30", c.Regs[RAX], c.Regs[RDX])
	}
	if !c.Halted {
		t.Fatal("not halted")
	}
	if c.Cycles == 0 {
		t.Fatal("no cycles accounted")
	}
}

func TestControlFlow(t *testing.T) {
	m, c, as := buildEnv(t)
	a := NewAssembler()
	a.Emit(MovImm{RAX, 0}, MovImm{RCX, 10})
	a.Label("loop")
	a.Emit(AddImm{RAX, 2})
	a.LoopTo(RCX, "loop")
	a.Emit(Halt{})
	prog, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	install(t, m, as, 0x1000, prog)
	c.Run(1000)
	if c.Regs[RAX] != 20 {
		t.Fatalf("rax = %d, want 20", c.Regs[RAX])
	}
}

func TestCallRet(t *testing.T) {
	m, c, as := buildEnv(t)
	a := NewAssembler()
	a.CallTo("fn")
	a.Emit(AddImm{RAX, 1}, Halt{})
	a.Label("fn")
	a.Emit(MovImm{RAX, 41}, Ret{})
	prog, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	install(t, m, as, 0x1000, prog)
	c.Run(100)
	if c.Fault != nil {
		t.Fatal(c.Fault)
	}
	if c.Regs[RAX] != 42 {
		t.Fatalf("rax = %d, want 42", c.Regs[RAX])
	}
	if c.Regs[RSP] != 0x21000 {
		t.Fatalf("stack not balanced: rsp=%#x", c.Regs[RSP])
	}
}

func TestIndirectCallAndJump(t *testing.T) {
	m, c, as := buildEnv(t)
	a := NewAssembler()
	a.LeaTo(R8, "target")
	a.Emit(CallReg{R8}, Halt{})
	a.Label("target")
	a.Emit(MovImm{RAX, 7}, Ret{})
	prog, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	install(t, m, as, 0x1000, prog)
	c.Run(100)
	if c.Regs[RAX] != 7 {
		t.Fatalf("rax = %d", c.Regs[RAX])
	}
}

func TestCallMemReadsPointer(t *testing.T) {
	m, c, as := buildEnv(t)
	a := NewAssembler()
	a.Emit(CallMem{Addr: 0x10000}, Halt{})
	a.Label("fn")
	a.Emit(MovImm{RAX, 99}, Ret{})
	prog, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	install(t, m, as, 0x1000, prog)
	// Write the function pointer into data memory.
	if f := as.Write(0x10000, 8, uint64(a.AddrOf("fn", 0x1000)), mpk.AllowAllValue); f != nil {
		t.Fatal(f)
	}
	c.Run(100)
	if c.Regs[RAX] != 99 {
		t.Fatalf("rax = %d", c.Regs[RAX])
	}
}

func TestWrRdPkru(t *testing.T) {
	m, c, as := buildEnv(t)
	want := uint64(uint32(mpk.AllowNoneValue.WithAccess(3, true, true)))
	install(t, m, as, 0x1000, []Instr{
		MovImm{RAX, want},
		WrPkru{},
		MovImm{RAX, 0},
		RdPkru{},
		Halt{},
	})
	c.Run(100)
	if uint64(uint32(c.PKRU)) != want {
		t.Fatalf("pkru = %#x, want %#x", uint32(c.PKRU), want)
	}
	if c.Regs[RAX] != want {
		t.Fatalf("rdpkru gave %#x", c.Regs[RAX])
	}
}

func TestPKRUBlocksDataAccess(t *testing.T) {
	m, c, as := buildEnv(t)
	if err := as.SetPKey(0x10000, mem.PageSize, 5); err != nil {
		t.Fatal(err)
	}
	install(t, m, as, 0x1000, []Instr{
		MovImm{RCX, 0x10000},
		Load{RAX, RCX, 0},
		Halt{},
	})
	c.PKRU = mpk.AllowNoneValue // no access to key 5
	c.Run(100)
	if c.Fault == nil || c.Fault.Kind != mem.FaultPKU {
		t.Fatalf("fault = %v, want PKU", c.Fault)
	}
	if !c.Halted {
		t.Fatal("core should halt on unhandled fault")
	}
}

func TestFaultHookRecovers(t *testing.T) {
	m, c, as := buildEnv(t)
	a := NewAssembler()
	a.Emit(MovImm{RCX, 0xdead000}) // unmapped
	a.Emit(Load{RAX, RCX, 0})
	a.Label("after")
	a.Emit(MovImm{RBX, 1}, Halt{})
	prog, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	install(t, m, as, 0x1000, prog)
	handled := 0
	c.Hooks.OnFault = func(core *Core, f *mem.Fault) bool {
		handled++
		core.PC = a.AddrOf("after", 0x1000) // signal handler skips the access
		return true
	}
	c.Run(100)
	if handled != 1 || c.Regs[RBX] != 1 || c.Fault != nil {
		t.Fatalf("handled=%d rbx=%d fault=%v", handled, c.Regs[RBX], c.Fault)
	}
}

func TestExecuteNonExecutableFaults(t *testing.T) {
	m, c, as := buildEnv(t)
	install(t, m, as, 0x1000, []Instr{Jmp{Target: 0x10000}})
	// The data page holds no code and is not executable.
	c.Run(10)
	if c.Fault == nil || c.Fault.Op != mpk.AccessExec {
		t.Fatalf("fault = %v", c.Fault)
	}
	_ = m
}

func TestExecOnlyTextRunsUnderStrictPKRU(t *testing.T) {
	// A core with AllowNone PKRU can still *execute* exec-only text —
	// the property that lets any uProcess invoke the shared call gate.
	m, c, as := buildEnv(t)
	install(t, m, as, 0x1000, []Instr{MovImm{RBX, 3}, Halt{}})
	c.PKRU = mpk.AllowNoneValue
	c.Run(10)
	if c.Fault != nil {
		t.Fatal(c.Fault)
	}
	if c.Regs[RBX] != 3 {
		t.Fatal("did not execute")
	}
}

func TestUserInterruptDeliveryAndUiret(t *testing.T) {
	m, c, as := buildEnv(t)
	a := NewAssembler()
	// Main: spin incrementing RBX.
	a.Label("main")
	a.Emit(AddImm{RBX, 1})
	a.JmpTo("main")
	// Handler: set RDX, pop vector, uiret.
	a.Label("handler")
	a.Emit(MovImm{RDX, 0xAB})
	a.Emit(Pop{R9}) // vector number pushed by delivery
	a.Emit(UiRet{})
	prog, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	install(t, m, as, 0x1000, prog)
	c.HandlerAddr = a.AddrOf("handler", 0x1000)

	c.Run(5)
	if c.Regs[RDX] == 0xAB {
		t.Fatal("handler ran before interrupt posted")
	}
	c.PostUserInterrupt(3)
	c.Run(2) // delivery + first two handler instructions (mov, pop)
	if c.Regs[RDX] != 0xAB {
		t.Fatalf("handler did not run: rdx=%#x", c.Regs[RDX])
	}
	if c.UIF {
		t.Fatal("UIF must be clear inside handler")
	}
	if c.Regs[R9] != 3 {
		t.Fatalf("vector = %d, want 3", c.Regs[R9])
	}
	before := c.Regs[RBX]
	c.Run(5) // uiret + resume main loop
	if !c.UIF {
		t.Fatal("UIF must be restored after uiret")
	}
	if c.Regs[RBX] <= before {
		t.Fatal("main loop did not resume")
	}
}

func TestUIFMasksDelivery(t *testing.T) {
	m, c, as := buildEnv(t)
	install(t, m, as, 0x1000, []Instr{AddImm{RBX, 1}, Jmp{Target: 0x1000}})
	c.HandlerAddr = 0x1000
	c.UIF = false
	c.PostUserInterrupt(1)
	c.Run(10)
	if c.PendingVectors == 0 {
		t.Fatal("vector should stay pending while UIF clear")
	}
}

func TestSendUIPIHook(t *testing.T) {
	m, c, as := buildEnv(t)
	var gotIdx Word
	c.Hooks.OnSendUIPI = func(core *Core, idx Word) { gotIdx = idx }
	install(t, m, as, 0x1000, []Instr{
		MovImm{RDI, 7},
		SendUIPI{IdxReg: RDI},
		Halt{},
	})
	c.Run(10)
	if gotIdx != 7 {
		t.Fatalf("senduipi index = %d", gotIdx)
	}
}

func TestHookInstr(t *testing.T) {
	m, c, as := buildEnv(t)
	ran := false
	install(t, m, as, 0x1000, []Instr{
		Hook{Name: "probe", Fn: func(core *Core) *mem.Fault { ran = true; return nil }, Cost: 10},
		Halt{},
	})
	c.Run(10)
	if !ran {
		t.Fatal("hook did not run")
	}
}

func TestSharedTextAcrossAddressSpaces(t *testing.T) {
	// Two address spaces sharing the same frames execute the same code —
	// the SMAS property.
	m := NewMachine(2, Default())
	as1 := mem.NewAddressSpace(m.Phys)
	if err := as1.MapRange(0x1000, mem.PageSize, mem.PermXOnly, 0); err != nil {
		t.Fatal(err)
	}
	if err := as1.MapRange(0x20000, mem.PageSize, mem.PermRW, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.InstallCode(as1, 0x1000, []Instr{MovImm{RAX, 77}, Halt{}}); err != nil {
		t.Fatal(err)
	}
	as2 := mem.NewAddressSpace(m.Phys)
	if err := as2.ShareRange(as1, 0x1000, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := as2.MapRange(0x30000, mem.PageSize, mem.PermRW, 0); err != nil {
		t.Fatal(err)
	}
	c := m.Core(1)
	c.AS = as2
	c.PKRU = mpk.AllowAllValue
	c.PC = 0x1000
	c.Regs[RSP] = 0x31000
	c.Run(10)
	if c.Regs[RAX] != 77 {
		t.Fatalf("shared text did not execute: rax=%d", c.Regs[RAX])
	}
}

func TestCostModel(t *testing.T) {
	cm := Default()
	if cm.CaladanReallocTotal() != 5300 {
		t.Fatalf("Caladan realloc total = %v, want 5.3µs", cm.CaladanReallocTotal())
	}
	if got := cm.CyclesToNs(28); got != 14 {
		t.Fatalf("28 cycles at 2GHz = %v ns, want 14", got)
	}
	clone := cm.Clone()
	clone.WrPkruCycles = 999
	if cm.WrPkruCycles == 999 {
		t.Fatal("Clone did not copy")
	}
}

func TestAssemblerErrors(t *testing.T) {
	a := NewAssembler()
	a.JmpTo("nowhere")
	if _, err := a.Assemble(0x1000); err == nil {
		t.Fatal("undefined label should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label should panic")
		}
	}()
	b := NewAssembler()
	b.Label("x")
	b.Label("x")
}

func TestInstrStrings(t *testing.T) {
	ins := []Instr{
		MovImm{RAX, 1}, MovReg{RAX, RBX}, Load{RAX, RBX, 8}, Store{RAX, RBX, -8},
		LoadAbs{RAX, 0x10}, StoreAbs{RAX, 0x10}, Add{RAX, RBX}, AddImm{RAX, 1},
		MulImm{RAX, 2}, Jmp{0x10}, JmpReg{RAX}, Jne{RAX, RBX, 0x10},
		Jeq{RAX, RBX, 0x10}, JnzDec{RAX, 0x10}, Call{0x10}, CallReg{RAX},
		CallMem{0x10}, Ret{}, Push{RAX}, Pop{RAX}, WrPkru{}, RdPkru{},
		CpuID{RAX}, SendUIPI{RAX}, UiRet{}, Halt{}, Work{100}, Hook{Name: "h"},
	}
	cm := Default()
	for _, in := range ins {
		if in.String() == "" {
			t.Fatalf("%T has empty String", in)
		}
		if in.Cycles(cm) <= 0 {
			t.Fatalf("%T has non-positive cycles", in)
		}
	}
}

func TestInstallCodeValidation(t *testing.T) {
	m := NewMachine(1, nil)
	as := mem.NewAddressSpace(m.Phys)
	if err := m.InstallCode(as, 0x1001, []Instr{Halt{}}); err == nil {
		t.Fatal("unaligned base must fail")
	}
	if err := m.InstallCode(as, 0x1000, []Instr{Halt{}}); err == nil {
		t.Fatal("unmapped page must fail")
	}
}
