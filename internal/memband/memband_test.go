package memband

import (
	"math"
	"testing"

	"vessel/internal/sim"
)

func cfg() Config {
	return Config{
		Duration:  50 * sim.Millisecond,
		Seed:      1,
		DemandGBs: 12,
		MemFrac:   0.7,
	}
}

func TestConfigValidate(t *testing.T) {
	c := cfg()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Costs == nil {
		t.Fatal("defaults not filled")
	}
	bad := []Config{
		{Duration: 0, DemandGBs: 1, MemFrac: 0.5},
		{Duration: 1, DemandGBs: 0, MemFrac: 0.5},
		{Duration: 1, DemandGBs: 1, MemFrac: 0},
		{Duration: 1, DemandGBs: 1, MemFrac: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if n := cfg().NaturalGBs(); math.Abs(n-8.4) > 1e-9 {
		t.Fatalf("natural = %v", n)
	}
}

func TestVesselTracksTargetsAccurately(t *testing.T) {
	// Figure 13b's VESSEL line: measured ≈ target across the sweep.
	v := Vessel{}
	for _, target := range []float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0} {
		m, err := v.Regulate(target, cfg())
		if err != nil {
			t.Fatal(err)
		}
		if m.ErrorFrac() > 0.08 {
			t.Errorf("target %.0f%%: actual %.2f vs target %.2f GB/s (err %.1f%%)",
				target*100, m.ActualGBs, m.TargetGBs, m.ErrorFrac()*100)
		}
	}
}

func TestMBAOvershootsAtLowSettings(t *testing.T) {
	// Figure 13b: MBA delivers far more bandwidth than requested at low
	// throttle levels.
	m := MBA{}
	low, err := m.Regulate(0.1, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if low.ActualGBs < 2.5*low.TargetGBs {
		t.Fatalf("MBA at 10%%: actual %.2f should be ≫ target %.2f", low.ActualGBs, low.TargetGBs)
	}
	full, err := m.Regulate(1.0, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.ActualGBs-cfg().NaturalGBs()) > 1e-9 {
		t.Fatalf("MBA at 100%% should be natural: %v", full.ActualGBs)
	}
	// Monotone in the setting.
	prev := -1.0
	for _, s := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		mm, _ := m.Regulate(s, cfg())
		if mm.ActualGBs <= prev {
			t.Fatalf("MBA curve not monotone at %.1f", s)
		}
		prev = mm.ActualGBs
	}
}

func TestCgroupCFSIsWorkConserving(t *testing.T) {
	// Figure 13b: CFS shares impose no cap on an otherwise idle machine.
	g := CgroupCFS{}
	for _, target := range []float64{0.1, 0.5, 1.0} {
		m, err := g.Regulate(target, cfg())
		if err != nil {
			t.Fatal(err)
		}
		if m.ActualGBs < 0.95*cfg().NaturalGBs() {
			t.Fatalf("CFS shares at %.0f%%: actual %.2f, expected ~natural %.2f",
				target*100, m.ActualGBs, cfg().NaturalGBs())
		}
	}
}

func TestCgroupQuotaAccurateOnAverageBurstyUpClose(t *testing.T) {
	q := CgroupQuota{}
	m, err := q.Regulate(0.2, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if m.ErrorFrac() > 1e-9 {
		t.Fatal("quota should be exact on long averages")
	}
	// A 1 ms observation window inside the burst sees full bandwidth.
	peak := q.PeakWithin(0.2, cfg(), 1*sim.Millisecond)
	if math.Abs(peak-cfg().NaturalGBs()) > 1e-9 {
		t.Fatalf("peak within burst = %v", peak)
	}
	// A full-period window sees the average.
	avg := q.PeakWithin(0.2, cfg(), 100*sim.Millisecond)
	if math.Abs(avg-0.2*cfg().NaturalGBs()) > 1e-9 {
		t.Fatalf("full-period window = %v", avg)
	}
}

func TestAccuracyOrdering(t *testing.T) {
	// The headline: VESSEL strictly more accurate than MBA and CFS at a
	// 30% target.
	c := cfg()
	v, _ := Vessel{}.Regulate(0.3, c)
	m, _ := MBA{}.Regulate(0.3, c)
	g, _ := CgroupCFS{}.Regulate(0.3, c)
	if !(v.ErrorFrac() < m.ErrorFrac() && m.ErrorFrac() < g.ErrorFrac()) {
		t.Fatalf("accuracy ordering broken: VESSEL %.3f, MBA %.3f, CFS %.3f",
			v.ErrorFrac(), m.ErrorFrac(), g.ErrorFrac())
	}
}

func TestRegulatorNames(t *testing.T) {
	for _, r := range []Regulator{Vessel{}, MBA{}, CgroupCFS{}, CgroupQuota{}} {
		if r.Name() == "" {
			t.Fatal("empty name")
		}
		if _, err := r.Regulate(0.5, Config{}); err == nil {
			t.Fatalf("%s accepted invalid config", r.Name())
		}
	}
}
