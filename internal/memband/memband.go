// Package memband implements the memory-bandwidth regulation comparison of
// §6.3.4 / Figure 13b: a single-threaded membench workload whose bandwidth
// consumption must be throttled to a target fraction, regulated by
//
//   - VESSEL: duty-cycling the thread's core at microsecond granularity
//     with sub-µs context switches — a closed loop on measured consumption;
//   - Intel MBA: the hardware delay-insertion throttle, whose level→actual
//     mapping is coarse and non-linear (low settings deliver far more
//     bandwidth than requested);
//   - Linux cgroup (CFS cpu shares): work-conserving weights that impose no
//     cap at all while the machine has idle cycles — the thread runs at
//     full tilt regardless of the configured share.
//
// Each regulator returns the measured average consumption so the harness
// can plot measured-vs-target accuracy.
package memband

import (
	"fmt"

	"vessel/internal/cpu"
	"vessel/internal/sim"
)

// Config parameterises one regulation run.
type Config struct {
	Costs *cpu.CostModel
	// Duration of the measured interval.
	Duration sim.Duration
	Seed     uint64
	// DemandGBs is membench's unthrottled single-thread bandwidth during
	// memory phases; MemFrac the fraction of runtime in them.
	DemandGBs float64
	MemFrac   float64
}

// Validate fills defaults.
func (c *Config) Validate() error {
	if c.Costs == nil {
		c.Costs = cpu.Default()
	}
	if c.Duration <= 0 {
		return fmt.Errorf("memband: duration must be positive")
	}
	if c.DemandGBs <= 0 {
		return fmt.Errorf("memband: demand must be positive")
	}
	if c.MemFrac <= 0 || c.MemFrac > 1 {
		return fmt.Errorf("memband: memfrac must be in (0,1]")
	}
	return nil
}

// NaturalGBs returns the unregulated average consumption.
func (c Config) NaturalGBs() float64 { return c.DemandGBs * c.MemFrac }

// Measurement is one (target, actual) point.
type Measurement struct {
	Regulator  string
	TargetFrac float64 // of natural consumption
	TargetGBs  float64
	ActualGBs  float64
}

// ErrorFrac is |actual−target|/target.
func (m Measurement) ErrorFrac() float64 {
	if m.TargetGBs == 0 {
		return 0
	}
	d := m.ActualGBs - m.TargetGBs
	if d < 0 {
		d = -d
	}
	return d / m.TargetGBs
}

// Regulator throttles membench to a target fraction of its natural
// bandwidth and reports what it actually consumed.
type Regulator interface {
	Name() string
	Regulate(targetFrac float64, cfg Config) (Measurement, error)
}

// ---- VESSEL ----------------------------------------------------------------

// Vessel duty-cycles the core at window granularity with a closed loop on
// measured consumption (§6.3.4: "assign an application fine-grained CPU
// quota for accurately regulating its memory bandwidth consumption").
type Vessel struct {
	// Window is the control interval; the paper's scheduler reacts at
	// sub-µs timescale. Default 1µs.
	Window sim.Duration
}

// Name returns "VESSEL".
func (Vessel) Name() string { return "VESSEL" }

// Regulate runs the duty-cycle control loop in virtual time.
func (v Vessel) Regulate(targetFrac float64, cfg Config) (Measurement, error) {
	if err := cfg.Validate(); err != nil {
		return Measurement{}, err
	}
	win := v.Window
	if win <= 0 {
		win = 1 * sim.Microsecond
	}
	natural := cfg.NaturalGBs()
	target := targetFrac * natural
	switchCost := cfg.Costs.VesselParkSwitch

	// Discrete control loop: each window, run or park the thread based
	// on whether cumulative consumption is above target. Consumption is
	// demand×memfrac while running; toggling costs a gate trip during
	// which no work (or traffic) happens.
	var consumedBytes float64 // GB·ns (bytes = GBs × ns)
	var elapsed sim.Duration
	running := true
	for elapsed < cfg.Duration {
		cum := consumedBytes / float64(elapsed+win)
		wantRun := cum < target
		if wantRun != running {
			// Pay the userspace switch; the window shrinks.
			running = wantRun
			run := win - switchCost
			if running {
				consumedBytes += natural * float64(run)
			}
			elapsed += win
			continue
		}
		if running {
			consumedBytes += natural * float64(win)
		}
		elapsed += win
	}
	actual := consumedBytes / float64(elapsed)
	return Measurement{
		Regulator:  v.Name(),
		TargetFrac: targetFrac,
		TargetGBs:  target,
		ActualGBs:  actual,
	}, nil
}

// ---- Intel MBA -------------------------------------------------------------

// MBA models Intel Memory Bandwidth Allocation: throttle levels insert
// delays between requests, but the level→bandwidth mapping is coarse and
// strongly non-linear — the published curves deliver far more bandwidth
// than the configured percentage at low settings. The table below follows
// the shape Intel documents for delay-value throttling.
type MBA struct{}

// Name returns "Intel-MBA".
func (MBA) Name() string { return "Intel-MBA" }

// mbaCurve maps the configured throttle percentage to the fraction of peak
// bandwidth actually delivered.
var mbaCurve = []struct{ setting, actual float64 }{
	{0.10, 0.34}, {0.20, 0.41}, {0.30, 0.49}, {0.40, 0.57},
	{0.50, 0.65}, {0.60, 0.73}, {0.70, 0.81}, {0.80, 0.88},
	{0.90, 0.95}, {1.00, 1.00},
}

// Regulate applies the hardware curve (with linear interpolation between
// documented levels — hardware only accepts 10% steps, so a requested
// target first rounds to the nearest level).
func (m MBA) Regulate(targetFrac float64, cfg Config) (Measurement, error) {
	if err := cfg.Validate(); err != nil {
		return Measurement{}, err
	}
	natural := cfg.NaturalGBs()
	// Round to the nearest supported 10% level.
	level := float64(int(targetFrac*10+0.5)) / 10
	if level < 0.1 {
		level = 0.1
	}
	if level > 1 {
		level = 1
	}
	actualFrac := 1.0
	for _, p := range mbaCurve {
		if level <= p.setting {
			actualFrac = p.actual
			break
		}
	}
	return Measurement{
		Regulator:  m.Name(),
		TargetFrac: targetFrac,
		TargetGBs:  targetFrac * natural,
		ActualGBs:  actualFrac * natural,
	}, nil
}

// ---- Linux cgroup / CFS shares ---------------------------------------------

// CgroupCFS models cpu.weight-based regulation: CFS shares are
// work-conserving, so on a machine with idle cycles the thread keeps
// running — and keeps issuing memory traffic — no matter the weight. Only
// a small scheduling-overhead dent appears at very low weights.
type CgroupCFS struct{}

// Name returns "Linux-CFS".
func (CgroupCFS) Name() string { return "Linux-CFS" }

// Regulate returns near-natural consumption regardless of target.
func (g CgroupCFS) Regulate(targetFrac float64, cfg Config) (Measurement, error) {
	if err := cfg.Validate(); err != nil {
		return Measurement{}, err
	}
	natural := cfg.NaturalGBs()
	// Work-conserving: the weight does nothing without competition.
	// Periodic scheduler ticks cost a sliver of runtime.
	tickLoss := float64(cfg.Costs.CFSSwitchCost) / float64(cfg.Costs.CFSTick)
	actual := natural * (1 - tickLoss)
	return Measurement{
		Regulator:  g.Name(),
		TargetFrac: targetFrac,
		TargetGBs:  targetFrac * natural,
		ActualGBs:  actual,
	}, nil
}

// ---- cgroup cpu.max (quota) ------------------------------------------------

// CgroupQuota models cpu.max period/quota capping: accurate on long
// averages but enforced at 100 ms periods — the thread bursts at full rate
// then freezes, so short-window consumption swings between 0 and 100%.
// Included for completeness; the paper's Figure 13b comparator is the
// shares-based configuration.
type CgroupQuota struct {
	Period sim.Duration
}

// Name returns "cgroup-quota".
func (CgroupQuota) Name() string { return "cgroup-quota" }

// Regulate returns the long-run average (≈ target) plus the burst ratio in
// the measurement's ActualGBs when observed over a window shorter than the
// period — modelled here as the long-run value, with WindowPeakGBs exposed
// via PeakWithin.
func (q CgroupQuota) Regulate(targetFrac float64, cfg Config) (Measurement, error) {
	if err := cfg.Validate(); err != nil {
		return Measurement{}, err
	}
	natural := cfg.NaturalGBs()
	return Measurement{
		Regulator:  q.Name(),
		TargetFrac: targetFrac,
		TargetGBs:  targetFrac * natural,
		ActualGBs:  targetFrac * natural,
	}, nil
}

// PeakWithin returns the worst-case consumption observed over a window w:
// within one period the group runs flat-out for quota time, so any window
// shorter than the quota burst sees full natural bandwidth.
func (q CgroupQuota) PeakWithin(targetFrac float64, cfg Config, w sim.Duration) float64 {
	period := q.Period
	if period <= 0 {
		period = 100 * sim.Millisecond
	}
	burst := sim.Duration(targetFrac * float64(period))
	if w <= burst {
		return cfg.NaturalGBs()
	}
	return cfg.NaturalGBs() * float64(burst) / float64(w)
}
