// Package sim provides a deterministic discrete-event simulation engine
// with a virtual nanosecond clock.
//
// Every component of the VESSEL reproduction — the simulated CPU cores, the
// simulated Linux kernel, the schedulers, and the workload generators — is
// driven by a single Engine. Events are executed in strictly non-decreasing
// time order; ties are broken by scheduling order, so a run is a pure
// function of its inputs and seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return Duration(t).String() }

// String formats a duration using the most natural unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	}
}

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it before it fires.
type Event struct {
	at     Time
	seq    uint64
	index  int // heap index; -1 once fired or cancelled
	fn     func()
	cancel bool
}

// At reports when the event is (or was) scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancel }

// Engine is a discrete-event scheduler over virtual time.
//
// Engine is not safe for concurrent use: the simulation is single-threaded
// by design so that results are deterministic.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool
	fired   uint64
	// hwPending is the deepest the event queue has ever been — a cheap
	// health signal the observability layer surfaces per run.
	hwPending int
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful in tests and
// for detecting runaway simulations).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at time t. Scheduling in the past (t < Now) panics:
// it is always a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	if len(e.queue) > e.hwPending {
		e.hwPending = len(e.queue)
	}
	return ev
}

// HighWaterPending returns the maximum number of simultaneously scheduled
// events observed over the engine's lifetime.
func (e *Engine) HighWaterPending() int { return e.hwPending }

// After schedules fn to run d after the current time. A non-positive d means
// "as soon as possible, after already-queued events at the current instant".
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel || ev.index < 0 {
		if ev != nil {
			ev.cancel = true
		}
		return
	}
	ev.cancel = true
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.stopped || len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.index = -1
	if ev.at < e.now {
		panic("sim: event heap out of order")
	}
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue is empty, Stop is called, or the next
// event would fire after `until`. The clock is left at the time of the last
// executed event (or advanced to `until` if it ran dry earlier).
func (e *Engine) Run(until Time) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= until {
		e.Step()
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
}

// RunAll executes events until the queue is empty or Stop is called.
// It panics if more than maxEvents fire, to catch runaway simulations.
func (e *Engine) RunAll(maxEvents uint64) {
	e.stopped = false
	start := e.fired
	for !e.stopped && e.Step() {
		if e.fired-start > maxEvents {
			panic(fmt.Sprintf("sim: more than %d events fired; runaway simulation?", maxEvents))
		}
	}
}

// Stop halts Run/RunAll after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// eventHeap is a min-heap on (at, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
