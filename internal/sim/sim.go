// Package sim provides a deterministic discrete-event simulation engine
// with a virtual nanosecond clock.
//
// Every component of the VESSEL reproduction — the simulated CPU cores, the
// simulated Linux kernel, the schedulers, and the workload generators — is
// driven by a single Engine. Events are executed in strictly non-decreasing
// time order; ties are broken by scheduling order, so a run is a pure
// function of its inputs and seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return Duration(t).String() }

// String formats a duration using the most natural unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	}
}

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// event is the engine-internal representation of a scheduled callback.
// Fired and cancelled events return to the engine's free list and are
// reused by later At/After calls, so the per-event allocation disappears
// from steady-state scheduling; gen counts reuses so stale handles can
// detect that their event is gone.
type event struct {
	at     Time
	seq    uint64
	gen    uint32
	index  int // heap index; -1 once fired or cancelled
	fn     func()
	cancel bool
}

// Event is a by-value handle to a scheduled callback, returned by the
// scheduling methods so callers can cancel the event before it fires or
// query it. The zero Event is valid and refers to nothing. A handle stays
// answerable after its event fires or is cancelled — until the engine
// reuses the underlying storage for a new event, after which it reads as
// expired (not pending, not cancelled). Retain handles to cancel or to
// test pending-ness, not as long-term records.
type Event struct {
	e   *event
	gen uint32
}

// At reports when the event is (or was) scheduled to fire. Zero for the
// zero handle or once the handle has expired.
func (h Event) At() Time {
	if h.e == nil || h.e.gen != h.gen {
		return 0
	}
	return h.e.at
}

// Cancelled reports whether Cancel was called before the event fired.
func (h Event) Cancelled() bool {
	return h.e != nil && h.e.gen == h.gen && h.e.cancel
}

// Pending reports whether the event is still scheduled to fire: it has
// neither fired nor been cancelled, and the handle has not expired.
func (h Event) Pending() bool {
	return h.e != nil && h.e.gen == h.gen && !h.e.cancel && h.e.index >= 0
}

// Engine is a discrete-event scheduler over virtual time.
//
// Engine is not safe for concurrent use: the simulation is single-threaded
// by design so that results are deterministic.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool
	fired   uint64
	// free holds fired/cancelled events awaiting reuse, so steady-state
	// scheduling allocates nothing. Reuse bumps the event's gen, expiring
	// any handles still pointing at it.
	free []*event
	// hwPending is the deepest the event queue has ever been — a cheap
	// health signal the observability layer surfaces per run.
	hwPending int
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful in tests and
// for detecting runaway simulations).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at time t. Scheduling in the past (t < Now) panics:
// it is always a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.gen++
		ev.cancel = false
	} else {
		ev = &event{}
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	heap.Push(&e.queue, ev)
	if len(e.queue) > e.hwPending {
		e.hwPending = len(e.queue)
	}
	return Event{e: ev, gen: ev.gen}
}

// HighWaterPending returns the maximum number of simultaneously scheduled
// events observed over the engine's lifetime.
func (e *Engine) HighWaterPending() int { return e.hwPending }

// After schedules fn to run d after the current time. A non-positive d means
// "as soon as possible, after already-queued events at the current instant".
func (e *Engine) After(d Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired, was already cancelled, or whose handle has expired is a
// no-op; the handle then reads as Cancelled until its storage is reused.
func (e *Engine) Cancel(h Event) {
	ev := h.e
	if ev == nil || ev.gen != h.gen {
		return
	}
	if ev.cancel || ev.index < 0 {
		ev.cancel = true
		return
	}
	ev.cancel = true
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.stopped || len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	ev.index = -1
	if ev.at < e.now {
		panic("sim: event heap out of order")
	}
	e.now = ev.at
	e.fired++
	fn := ev.fn
	fn()
	// Recycle only after the callback returns: the callback (and anything
	// it calls) may still query handles to this event; once we are back,
	// the event is history and its storage can serve the next At.
	ev.fn = nil
	e.free = append(e.free, ev)
	return true
}

// Run executes events until the queue is empty, Stop is called, or the next
// event would fire after `until`. The clock is left at the time of the last
// executed event (or advanced to `until` if it ran dry earlier).
func (e *Engine) Run(until Time) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= until {
		e.Step()
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
}

// RunAll executes events until the queue is empty or Stop is called.
// It panics if more than maxEvents fire, to catch runaway simulations.
func (e *Engine) RunAll(maxEvents uint64) {
	e.stopped = false
	start := e.fired
	for !e.stopped && e.Step() {
		if e.fired-start > maxEvents {
			panic(fmt.Sprintf("sim: more than %d events fired; runaway simulation?", maxEvents))
		}
	}
}

// Stop halts Run/RunAll after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// eventHeap is a min-heap on (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
