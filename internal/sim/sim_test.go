package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.RunAll(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.RunAll(100)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.RunAll(100)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Double-cancel is a no-op.
	e.Cancel(ev)
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []Time
	evs := make([]Event, 0, 20)
	for i := 1; i <= 20; i++ {
		tt := Time(i * 10)
		evs = append(evs, e.At(tt, func() { got = append(got, tt) }))
	}
	// Cancel every third event.
	for i := 2; i < len(evs); i += 3 {
		e.Cancel(evs[i])
	}
	e.RunAll(1000)
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("order violated after mid-heap cancel: %v", got)
		}
	}
	if len(got) != 14 {
		t.Fatalf("got %d events, want 14", len(got))
	}
}

func TestEventHandleLifecycle(t *testing.T) {
	e := NewEngine()
	var zero Event
	if zero.Pending() || zero.Cancelled() || zero.At() != 0 {
		t.Fatal("zero handle must be inert")
	}
	e.Cancel(zero) // must be a no-op

	ev := e.At(10, func() {})
	if !ev.Pending() || ev.At() != 10 {
		t.Fatalf("fresh event: pending=%v at=%v", ev.Pending(), ev.At())
	}
	e.RunAll(10)
	if ev.Pending() {
		t.Fatal("fired event still pending")
	}
	// Cancel after fire stays a no-op and must not resurrect anything.
	e.Cancel(ev)
	fired := false
	ev2 := e.At(20, func() { fired = true })
	e.RunAll(10)
	if !fired {
		t.Fatal("event scheduled after a stale cancel did not fire")
	}
	// ev2's storage is recycled; ev (if it shared the slot) must have
	// expired rather than alias the new event's state.
	ev3 := e.At(30, func() {})
	if ev.Pending() || ev2.Pending() && ev2.e == ev3.e && ev2.gen == ev3.gen {
		t.Fatal("stale handle aliases a recycled event")
	}
	if !ev3.Pending() {
		t.Fatal("ev3 should be pending")
	}
	e.Cancel(ev3)
	if ev3.Pending() || !ev3.Cancelled() {
		t.Fatal("cancel not observed through handle")
	}
}

func TestEngineEventReuseNoAlloc(t *testing.T) {
	// Steady-state self-scheduling must not allocate per event: the free
	// list recycles storage once warmed up.
	e := NewEngine()
	burst := func() {
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 1000 {
				e.After(10, tick)
			}
		}
		e.After(0, tick)
		e.RunAll(2000)
	}
	burst() // warm: populates the free list
	// The measured pass fires 1000 events; only the closure setup itself
	// may allocate (a handful), never one-per-event.
	if allocs := testing.AllocsPerRun(1, burst); allocs > 8 {
		t.Fatalf("1000 recycled events allocated %.0f times", allocs)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*100, func() { count++ })
	}
	e.Run(500)
	if count != 5 {
		t.Fatalf("Run(500) fired %d events, want 5", count)
	}
	if e.Now() != 500 {
		t.Fatalf("clock = %v, want 500", e.Now())
	}
	e.Run(2000)
	if count != 10 {
		t.Fatalf("after Run(2000): %d events, want 10", count)
	}
}

func TestEngineSelfScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(10, tick)
		}
	}
	e.After(0, tick)
	e.RunAll(1000)
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if e.Now() != 990 {
		t.Fatalf("clock = %v, want 990", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.RunAll(10)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.RunAll(100)
	if count != 3 {
		t.Fatalf("Stop did not halt run: count=%d", count)
	}
}

func TestEngineRunAllRunawayGuard(t *testing.T) {
	e := NewEngine()
	var loop func()
	loop = func() { e.After(1, loop) }
	e.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway simulation did not panic")
		}
	}()
	e.RunAll(1000)
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2500000, "2.500ms"},
		{3 * Second, "3.000s"},
		{-500, "-500ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(42).Fork(uint64(i)).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("forked streams suspiciously correlated: %d matches", same)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(7)
	const mean = 1000 * Nanosecond
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Exp(mean))
	}
	got := sum / n
	if math.Abs(got-float64(mean)) > 0.02*float64(mean) {
		t.Fatalf("Exp mean = %.1f, want ~%d", got, mean)
	}
}

func TestRNGLogNormalMedian(t *testing.T) {
	r := NewRNG(9)
	mu := math.Log(20000) // 20µs median
	var below int
	const n = 100000
	for i := 0; i < n; i++ {
		if r.LogNormal(mu, 1.0) < 20000 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("median fraction = %.3f, want ~0.5", frac)
	}
}

func TestRNGExpNonNegativeProperty(t *testing.T) {
	f := func(seed uint64, meanRaw uint32) bool {
		r := NewRNG(seed)
		mean := Duration(meanRaw%1000000 + 1)
		for i := 0; i < 100; i++ {
			if r.Exp(mean) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventOrderingProperty(t *testing.T) {
	// Property: regardless of insertion order, events always fire in
	// non-decreasing time order.
	f := func(times []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, tt := range times {
			at := Time(tt)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.RunAll(uint64(len(times)) + 1)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliAndPareto(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	for i := 0; i < 100000; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	if frac := float64(hits) / 100000; math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bernoulli(0.25) frequency = %.3f", frac)
	}
	for i := 0; i < 1000; i++ {
		if v := r.Pareto(2.0, 1.5); v < 2.0 {
			t.Fatalf("Pareto below minimum: %v", v)
		}
	}
}
