package sim

import "testing"

func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(Time(i), fn)
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(Time(i), fn)
		e.Step()
	}
}

func BenchmarkEngineSelfScheduling(b *testing.B) {
	// The common simulation pattern: each event schedules its successor.
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(10, tick)
		}
	}
	e.After(0, tick)
	b.ResetTimer()
	e.RunAll(uint64(b.N) + 1)
}

func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	evs := make([]Event, 0, b.N)
	for i := 0; i < b.N; i++ {
		evs = append(evs, e.At(Time(i), fn))
	}
	b.ResetTimer()
	for _, ev := range evs {
		e.Cancel(ev)
	}
}

func BenchmarkRNGExp(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(1000)
	}
}

func BenchmarkRNGLogNormal(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.LogNormal(9.9, 0.85)
	}
}
