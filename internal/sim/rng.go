package sim

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random source used by workload generators and noise
// models. It wraps a PCG generator seeded explicitly so that every experiment
// is reproducible from its seed.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a generator for the given seed. Different logical streams
// (e.g. arrival process vs. service times) should derive distinct seeds via
// RNG.Fork to stay independent.
func NewRNG(seed uint64) *RNG {
	return &RNG{src: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Fork derives an independent stream from this one, labelled by id.
// Forking is deterministic: the same parent seed and id always produce the
// same child stream.
func (r *RNG) Fork(id uint64) *RNG {
	s := r.src.Uint64() ^ (id * 0xbf58476d1ce4e5b9)
	return NewRNG(s)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Uint64 returns a uniform 64-bit value.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// IntN returns a uniform value in [0, n).
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Exp returns an exponentially distributed duration with the given mean.
// It is the building block for Poisson arrival processes and memcached-USR
// style service times.
func (r *RNG) Exp(mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	u := r.src.Float64()
	for u == 0 {
		u = r.src.Float64()
	}
	return Duration(-math.Log(u) * float64(mean))
}

// Normal returns a normally distributed value.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return r.src.NormFloat64()*stddev + mean
}

// LogNormal returns a log-normally distributed duration parameterised by the
// underlying normal's mu and sigma (natural log space). Used for the Silo
// TPC-C service-time model, which the paper characterises by a 20µs median
// and 280µs P999.
func (r *RNG) LogNormal(mu, sigma float64) Duration {
	return Duration(math.Exp(r.src.NormFloat64()*sigma + mu))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.src.Float64() < p }

// Pareto returns a bounded Pareto sample with the given minimum and shape
// alpha, used for heavy-tailed noise injection.
func (r *RNG) Pareto(xm float64, alpha float64) float64 {
	u := r.src.Float64()
	for u == 0 {
		u = r.src.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}
