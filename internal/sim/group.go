package sim

// EventGroup collects the handles a subsystem schedules so the whole set
// can be cancelled at teardown — the mechanism behind "kill a domain and
// its pending events die with it". Without this, restarting a component
// that shares an engine leaves stale callbacks queued, and they fire into
// the resurrected instance (the stale-handle hazard the generation-checked
// Event handles exist to detect).
//
// The group holds by-value handles, so membership costs no allocation
// beyond the slice; fired or cancelled events read as non-pending and are
// compacted away lazily.
type EventGroup struct {
	eng *Engine
	evs []Event
}

// NewEventGroup returns an empty group bound to eng.
func NewEventGroup(eng *Engine) *EventGroup { return &EventGroup{eng: eng} }

// Add tracks one scheduled event. Handles of already-fired events are
// accepted and simply compact away.
func (g *EventGroup) Add(ev Event) {
	if g == nil {
		return
	}
	// Compact opportunistically so a long-lived group that schedules many
	// short-lived events stays small.
	if len(g.evs) >= 32 {
		g.compact()
	}
	g.evs = append(g.evs, ev)
}

// compact drops handles that are no longer pending.
func (g *EventGroup) compact() {
	kept := g.evs[:0]
	for _, ev := range g.evs {
		if ev.Pending() {
			kept = append(kept, ev)
		}
	}
	g.evs = kept
}

// Pending returns how many tracked events are still scheduled to fire.
func (g *EventGroup) Pending() int {
	if g == nil {
		return 0
	}
	g.compact()
	return len(g.evs)
}

// CancelAll cancels every still-pending tracked event and empties the
// group, returning how many were actually cancelled.
func (g *EventGroup) CancelAll() int {
	if g == nil || g.eng == nil {
		return 0
	}
	n := 0
	for _, ev := range g.evs {
		if ev.Pending() {
			g.eng.Cancel(ev)
			n++
		}
	}
	g.evs = g.evs[:0]
	return n
}
