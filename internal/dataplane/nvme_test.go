package dataplane

import (
	"testing"

	"vessel/internal/sim"
)

func TestNVMeBasics(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewNVMe(nil, 8, 16); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewNVMe(eng, 0, 16); err == nil {
		t.Fatal("zero depth accepted")
	}
	d, err := NewNVMe(eng, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(Cmd{Op: OpRead, Tag: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(Cmd{Op: OpWrite, Tag: 2}); err != nil {
		t.Fatal(err)
	}
	if d.QueueDepth() != 2 {
		t.Fatalf("depth = %d", d.QueueDepth())
	}
	eng.RunAll(100)
	if d.Completed != 2 || d.QueueDepth() != 0 {
		t.Fatalf("completed=%d depth=%d", d.Completed, d.QueueDepth())
	}
	got := d.CQ.Poll(8)
	if len(got) != 2 || got[0].Payload != 1 || got[1].Payload != 2 {
		t.Fatalf("completions: %+v", got)
	}
	// Read finished before write (shorter media latency).
	if got[0].Arrive >= got[1].Arrive {
		t.Fatal("read should complete before write")
	}
	if d.AvgLatency() < 10*sim.Microsecond {
		t.Fatalf("avg latency = %v", d.AvgLatency())
	}
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("op strings")
	}
}

func TestNVMeBackpressureAndQueueing(t *testing.T) {
	eng := sim.NewEngine()
	d, err := NewNVMe(eng, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.Submit(Cmd{Op: OpRead, Tag: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Submit(Cmd{Op: OpRead, Tag: 99}); err == nil {
		t.Fatal("over-depth submit accepted")
	}
	if d.Rejected != 1 {
		t.Fatalf("rejected = %d", d.Rejected)
	}
	eng.RunAll(100)
	// Serialisation: the 4th command waits behind 3 others at 1µs each,
	// so its latency is ~3µs above the first's.
	got := d.CQ.Poll(8)
	if len(got) != 4 {
		t.Fatalf("completions = %d", len(got))
	}
	spread := got[3].Arrive.Sub(got[0].Arrive)
	if spread < 2*sim.Microsecond {
		t.Fatalf("no device queueing visible: spread %v", spread)
	}
}

func TestNVMePollerIntegration(t *testing.T) {
	// The §5.2.5 wiring: a polling thread submits a batch, drains
	// completions through an instrumented poller, and parks once the
	// stream runs dry.
	eng := sim.NewEngine()
	d, err := NewNVMe(eng, 32, 64)
	if err != nil {
		t.Fatal(err)
	}
	parks := 0
	var handled []uint64
	p := &Poller{
		Q:             d.CQ,
		Batch:         8,
		MaxEmptyPolls: 4,
		Park:          func() { parks++ },
		Handle:        func(pk Packet) { handled = append(handled, pk.Payload) },
	}
	for i := 0; i < 16; i++ {
		if err := d.Submit(Cmd{Op: OpRead, Tag: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunAll(1000)
	for i := 0; i < 40; i++ {
		if _, err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(handled) != 16 {
		t.Fatalf("handled = %d", len(handled))
	}
	if parks == 0 {
		t.Fatal("poller never parked after the stream ran dry")
	}
}

// TestNVMeCancelInflight is the stale-event regression for domain teardown:
// in-flight completions must be cancellable so they cannot post into a CQ
// polled by the domain's next incarnation.
func TestNVMeCancelInflight(t *testing.T) {
	eng := sim.NewEngine()
	d, err := NewNVMe(eng, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := d.Submit(Cmd{Op: OpRead, Tag: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if d.QueueDepth() != 3 {
		t.Fatalf("depth = %d", d.QueueDepth())
	}
	if n := d.CancelInflight(); n != 3 {
		t.Fatalf("cancelled %d, want 3", n)
	}
	if d.QueueDepth() != 0 {
		t.Fatalf("depth after cancel = %d", d.QueueDepth())
	}
	// Drain the engine: no cancelled completion may land.
	eng.RunAll(100)
	if d.Completed != 0 {
		t.Fatalf("completed = %d after cancel", d.Completed)
	}
	if got := d.CQ.Poll(8); len(got) != 0 {
		t.Fatalf("cancelled completions in CQ: %+v", got)
	}
	// The device remains usable: queue-depth credit was returned.
	for i := 0; i < 8; i++ {
		if err := d.Submit(Cmd{Op: OpRead, Tag: 100 + uint64(i)}); err != nil {
			t.Fatalf("submit %d after cancel: %v", i, err)
		}
	}
	eng.RunAll(100)
	if d.Completed != 8 {
		t.Fatalf("completed = %d, want 8", d.Completed)
	}
	// Cancel with nothing in flight is a no-op.
	if n := d.CancelInflight(); n != 0 {
		t.Fatalf("idle cancel = %d", n)
	}
}
