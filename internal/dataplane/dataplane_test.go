package dataplane

import (
	"testing"
)

func TestQueueBasics(t *testing.T) {
	if _, err := NewQueue("bad", 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	q, err := NewQueue("rx", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !q.Push(Packet{Arrive: 10, Payload: uint64(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(Packet{}) {
		t.Fatal("overfull push accepted")
	}
	if q.Dropped != 1 {
		t.Fatalf("dropped = %d", q.Dropped)
	}
	if q.Depth() != 4 {
		t.Fatalf("depth = %d", q.Depth())
	}
	if q.OldestAge(110) != 100 {
		t.Fatalf("age = %v", q.OldestAge(110))
	}
	got := q.Poll(2)
	if len(got) != 2 || got[0].Payload != 0 || got[1].Payload != 1 {
		t.Fatalf("poll = %v", got)
	}
	rest := q.Poll(10)
	if len(rest) != 2 {
		t.Fatalf("rest = %v", rest)
	}
	if q.Poll(1) != nil {
		t.Fatal("empty poll returned packets")
	}
	if q.EmptyPolls != 1 {
		t.Fatalf("empty polls = %d", q.EmptyPolls)
	}
	if q.OldestAge(0) != 0 {
		t.Fatal("empty queue age")
	}
}

func TestPollerParksAfterEmptyBudget(t *testing.T) {
	q, _ := NewQueue("rx", 64)
	parks := 0
	handled := 0
	p := &Poller{
		Q:             q,
		Batch:         8,
		MaxEmptyPolls: 3,
		Park:          func() { parks++ },
		Handle:        func(Packet) { handled++ },
	}
	// Three empty polls → one park.
	for i := 0; i < 3; i++ {
		if ok, err := p.Step(); ok || err != nil {
			t.Fatalf("step %d: %v %v", i, ok, err)
		}
	}
	if parks != 1 {
		t.Fatalf("parks = %d", parks)
	}
	// Work resets the streak.
	q.Push(Packet{Payload: 7})
	if ok, _ := p.Step(); !ok {
		t.Fatal("packet not processed")
	}
	if handled != 1 || p.Handled != 1 {
		t.Fatal("handle accounting")
	}
	// Streak restarts from zero after work.
	p.Step()
	p.Step()
	if parks != 1 {
		t.Fatal("parked too eagerly after work")
	}
	p.Step()
	if parks != 2 {
		t.Fatalf("parks = %d", parks)
	}
}

func TestPollerValidation(t *testing.T) {
	p := &Poller{}
	if _, err := p.Step(); err == nil {
		t.Fatal("unwired poller accepted")
	}
	q, _ := NewQueue("rx", 4)
	p = &Poller{Q: q, Park: func() {}, MaxEmptyPolls: 1}
	q.Push(Packet{})
	if ok, err := p.Step(); !ok || err != nil {
		t.Fatal("default batch should process")
	}
}
