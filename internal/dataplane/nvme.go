package dataplane

import (
	"fmt"

	"vessel/internal/sim"
)

// This file models the storage side of §5.2.5: an SPDK-style userspace
// block device with submission/completion queues, polled (never
// interrupt-driven) by instrumented pollers. The latency model follows the
// low-latency devices the paper's introduction cites (Optane, Z-NAND,
// memory-semantic SSDs): ~10 µs reads, ~20 µs writes, a device that
// serialises commands at a fixed IOPS capacity, and completion latency
// that grows with queue depth.

// Op is a block command type.
type Op uint8

// Block command operations.
const (
	OpRead Op = iota
	OpWrite
)

func (o Op) String() string {
	if o == OpWrite {
		return "write"
	}
	return "read"
}

// Cmd is one submitted block command.
type Cmd struct {
	Op        Op
	LBA       uint64
	Submitted sim.Time
	// Tag is returned in the completion for request matching.
	Tag uint64
}

// NVMe is the simulated device: a bounded submission pipeline and a
// completion queue the host polls.
type NVMe struct {
	eng *sim.Engine
	// CQ is the completion ring the host polls; each completion's
	// Payload is the command Tag, Arrive its completion time.
	CQ *Queue

	ReadLat  sim.Duration // media latency for reads
	WriteLat sim.Duration // media latency for writes
	PerCmd   sim.Duration // serialisation: 1/IOPS capacity

	// OnSubmit, when set, observes every accepted command at submit time.
	// OnComplete observes each completion with its submit and completion
	// instants — the dataplane seam request-journey tracing hooks into.
	// Both default nil; cancelled in-flight commands never complete.
	OnSubmit   func(c Cmd, at sim.Time)
	OnComplete func(tag uint64, submitted, completed sim.Time)

	qdMax    int
	inflight int
	busyTill sim.Time
	// pending tracks scheduled completion events so a domain teardown can
	// cancel them instead of letting completions land in a dead consumer.
	pending *sim.EventGroup

	Submitted uint64
	Completed uint64
	Rejected  uint64
	latSum    sim.Duration
}

// NewNVMe builds a device with the given queue-depth limit and completion
// ring capacity.
func NewNVMe(eng *sim.Engine, queueDepth, cqCapacity int) (*NVMe, error) {
	if eng == nil {
		return nil, fmt.Errorf("dataplane: nvme needs an engine")
	}
	if queueDepth <= 0 {
		return nil, fmt.Errorf("dataplane: queue depth must be positive")
	}
	cq, err := NewQueue("nvme-cq", cqCapacity)
	if err != nil {
		return nil, err
	}
	return &NVMe{
		eng:      eng,
		pending:  sim.NewEventGroup(eng),
		CQ:       cq,
		ReadLat:  10 * sim.Microsecond,
		WriteLat: 20 * sim.Microsecond,
		PerCmd:   1 * sim.Microsecond, // 1M IOPS
		qdMax:    queueDepth,
	}, nil
}

// QueueDepth returns the commands currently in flight.
func (d *NVMe) QueueDepth() int { return d.inflight }

// AvgLatency returns the mean completion latency so far.
func (d *NVMe) AvgLatency() sim.Duration {
	if d.Completed == 0 {
		return 0
	}
	return d.latSum / sim.Duration(d.Completed)
}

// Submit queues a command. It fails with backpressure when the device's
// queue depth is exhausted — the caller (a polling thread) retries after
// draining completions, parking if the budget runs out.
func (d *NVMe) Submit(c Cmd) error {
	if d.inflight >= d.qdMax {
		d.Rejected++
		return fmt.Errorf("dataplane: nvme queue full (depth %d)", d.qdMax)
	}
	now := d.eng.Now()
	c.Submitted = now
	d.inflight++
	d.Submitted++
	// The device serialises command processing at PerCmd, then the media
	// access runs; completions post to the CQ.
	start := now
	if d.busyTill > start {
		start = d.busyTill
	}
	media := d.ReadLat
	if c.Op == OpWrite {
		media = d.WriteLat
	}
	d.busyTill = start.Add(d.PerCmd)
	done := d.busyTill.Add(media)
	tag := c.Tag
	sub := c.Submitted
	if d.OnSubmit != nil {
		d.OnSubmit(c, now)
	}
	d.pending.Add(d.eng.At(done, func() {
		d.inflight--
		d.Completed++
		d.latSum += d.eng.Now().Sub(sub)
		d.CQ.Push(Packet{Arrive: d.eng.Now(), Payload: tag})
		if d.OnComplete != nil {
			d.OnComplete(tag, sub, d.eng.Now())
		}
	}))
	return nil
}

// CancelInflight cancels every scheduled-but-unfired completion and zeroes
// the in-flight count, returning how many were cancelled. Call it when the
// consuming domain is torn down: a completion firing into a dead domain's
// queue would otherwise greet whoever inherits the engine next.
func (d *NVMe) CancelInflight() int {
	n := d.pending.CancelAll()
	d.inflight -= n
	return n
}
