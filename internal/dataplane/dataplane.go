// Package dataplane models VESSEL's kernel-bypass network/storage libraries
// (§5.2.5): polled descriptor queues mapped into the runtime, instrumented
// with park() so threads busy-spinning on completions yield their cores,
// with queue depths exposed to the scheduler as load signals.
//
// The paper reuses Caladan's dataplane and SPDK; this package provides the
// simulated equivalent the examples and scheduler tests drive.
package dataplane

import (
	"fmt"

	"vessel/internal/sim"
)

// Packet is one unit of dataplane work (an RX descriptor or an NVMe
// completion).
type Packet struct {
	Arrive  sim.Time
	Payload uint64
}

// Queue is a polled single-consumer descriptor ring.
type Queue struct {
	Name string
	ring []Packet
	cap  int
	// Dropped counts ring-full drops (backpressure signal).
	Dropped uint64
	// Polls and EmptyPolls measure spinning behaviour.
	Polls      uint64
	EmptyPolls uint64
	// wedged simulates a stuck device/driver: Poll returns nothing while
	// set, though packets keep accumulating (and eventually drop at the
	// ring cap). WedgedPolls counts polls answered while wedged.
	wedged      bool
	WedgedPolls uint64
}

// NewQueue builds a ring with the given capacity.
func NewQueue(name string, capacity int) (*Queue, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("dataplane: capacity must be positive")
	}
	return &Queue{Name: name, cap: capacity}, nil
}

// Push enqueues a packet, dropping it when the ring is full.
func (q *Queue) Push(p Packet) bool {
	if len(q.ring) >= q.cap {
		q.Dropped++
		return false
	}
	q.ring = append(q.ring, p)
	return true
}

// SetWedged wedges or unwedges the queue. A wedged queue answers every
// poll empty — the fault-injection harness's model of a hung device, which
// must make the polling thread park (not spin) and the queue's depth/age
// signals visible to the scheduler.
func (q *Queue) SetWedged(on bool) { q.wedged = on }

// IsWedged reports whether the queue is currently wedged.
func (q *Queue) IsWedged() bool { return q.wedged }

// Poll dequeues up to batch packets.
func (q *Queue) Poll(batch int) []Packet {
	q.Polls++
	if q.wedged {
		q.WedgedPolls++
		q.EmptyPolls++
		return nil
	}
	if len(q.ring) == 0 {
		q.EmptyPolls++
		return nil
	}
	if batch > len(q.ring) {
		batch = len(q.ring)
	}
	out := q.ring[:batch:batch]
	q.ring = q.ring[batch:]
	return out
}

// Depth returns the current occupancy — the queueing signal the scheduler
// consumes (§5.2.5: "software queues ... exposed to the scheduler to assist
// in making scheduling decisions").
func (q *Queue) Depth() int { return len(q.ring) }

// OldestAge returns the age of the head packet, the queueing-delay metric.
func (q *Queue) OldestAge(now sim.Time) sim.Duration {
	if len(q.ring) == 0 {
		return 0
	}
	return now.Sub(q.ring[0].Arrive)
}

// Poller drives a queue with park() discipline: after MaxEmptyPolls
// consecutive empty polls it invokes Park instead of continuing to spin —
// the instrumentation the paper adds to the dataplane libraries so
// busy-spinning threads do not hold cores (§5.2.5).
type Poller struct {
	Q             *Queue
	Batch         int
	MaxEmptyPolls int
	// Park is the runtime's park gate; called when the poller gives up
	// its core. Must not be nil.
	Park func()
	// Handle processes one packet.
	Handle func(Packet)

	emptyStreak int
	Handled     uint64
	Parks       uint64
}

// Step performs one poll iteration, parking when the empty-poll budget is
// exhausted. It reports whether any packet was processed.
func (p *Poller) Step() (bool, error) {
	if p.Q == nil || p.Park == nil {
		return false, fmt.Errorf("dataplane: poller not wired")
	}
	batch := p.Batch
	if batch <= 0 {
		batch = 16
	}
	pkts := p.Q.Poll(batch)
	if len(pkts) == 0 {
		p.emptyStreak++
		if p.emptyStreak >= p.MaxEmptyPolls {
			p.emptyStreak = 0
			p.Parks++
			p.Park()
		}
		return false, nil
	}
	p.emptyStreak = 0
	for _, pkt := range pkts {
		p.Handled++
		if p.Handle != nil {
			p.Handle(pkt)
		}
	}
	return true, nil
}
