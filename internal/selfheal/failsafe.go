package selfheal

import (
	"fmt"
	"sync"

	"vessel/internal/vessel"
)

// Failsafe wraps a scheduler policy so that no policy bug can take the
// cluster down: every decision runs under panic recovery and a
// per-decision cycle budget, and the first violation atomically replaces
// the primary with the minimal round-robin fallback for the rest of the
// run. The swap is one-way — a policy that panicked once has forfeited the
// benefit of the doubt.
//
// Failsafe implements vessel.Policy (plug it into ChaosConfig.Policy or
// CoreScheduler.Policy) and faultinject.PolicyTarget (attach it with
// Injector.AttachPolicy so PolicyPanic faults have something to attack).
// All methods are safe for concurrent use.
type Failsafe struct {
	mu       sync.Mutex
	primary  vessel.Policy
	fallback vessel.Policy
	// budget is the per-decision cycle ceiling; 0 disables the check.
	budget  int64
	swapped bool
	reason  string
	// armPanic / armBurn are the fault injector's pending attacks on the
	// next decision.
	armPanic bool
	armBurn  int64
	// Panics counts recovered policy panics; Overruns counts decisions
	// that blew the cycle budget. At most one of them ever reaches 1 —
	// the swap happens on the first violation.
	Panics   uint64
	Overruns uint64
	// OnSwap, when non-nil, observes the takeover. It is invoked with the
	// lock held, exactly once; it must not call back into the Failsafe.
	OnSwap func(reason string)
}

// NewFailsafe wraps primary with a round-robin fallback and the given
// per-decision cycle budget (0 disables the budget check).
func NewFailsafe(primary vessel.Policy, budgetCycles int64) *Failsafe {
	if primary == nil {
		primary = vessel.RoundRobinPolicy{}
	}
	return &Failsafe{primary: primary, fallback: vessel.RoundRobinPolicy{}, budget: budgetCycles}
}

// Name implements vessel.Policy.
func (f *Failsafe) Name() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.swapped {
		return fmt.Sprintf("failsafe[%s]", f.fallback.Name())
	}
	return fmt.Sprintf("failsafe(%s)", f.primary.Name())
}

// Decide implements vessel.Policy. A primary that panics or decides past
// the budget is swapped for the fallback, whose decision is returned; the
// cycles a budget-blowing decision burned are still charged (the damage
// was done once), the swap guarantees it never recurs.
func (f *Failsafe) Decide(v vessel.PolicyView) vessel.PolicyDecision {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.swapped {
		return f.fallback.Decide(v)
	}
	dec, ok := f.tryPrimary(v)
	if !ok {
		f.Panics++
		f.swapLocked("panic")
		return f.fallback.Decide(v)
	}
	if f.armBurn > 0 {
		dec.CostCycles += f.armBurn
		f.armBurn = 0
	}
	if f.budget > 0 && dec.CostCycles > f.budget {
		f.Overruns++
		f.swapLocked(fmt.Sprintf("budget cost=%d limit=%d", dec.CostCycles, f.budget))
		fb := f.fallback.Decide(v)
		fb.CostCycles += dec.CostCycles
		return fb
	}
	return dec
}

// tryPrimary runs the primary's decision under panic recovery.
func (f *Failsafe) tryPrimary(v vessel.PolicyView) (dec vessel.PolicyDecision, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	if f.armPanic {
		f.armPanic = false
		panic("selfheal: injected policy panic")
	}
	return f.primary.Decide(v), true
}

// swapLocked performs the one-way takeover. Callers hold f.mu.
func (f *Failsafe) swapLocked(reason string) {
	f.swapped = true
	f.reason = reason
	if f.OnSwap != nil {
		f.OnSwap(reason)
	}
}

// Swapped reports whether the fallback has taken over, and why.
func (f *Failsafe) Swapped() (bool, string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.swapped, f.reason
}

// InjectPanic implements faultinject.PolicyTarget: the next decision
// panics inside the primary.
func (f *Failsafe) InjectPanic() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armPanic = true
}

// InjectBurn implements faultinject.PolicyTarget: the next decision is
// charged the given extra cycles, blowing the budget if one is set.
func (f *Failsafe) InjectBurn(cycles int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armBurn += cycles
}
