package selfheal

import (
	"bytes"
	"fmt"

	"vessel/internal/cpu"
	"vessel/internal/faultinject"
	"vessel/internal/mpk"
	"vessel/internal/obs"
	"vessel/internal/obs/journey"
	"vessel/internal/sim"
	"vessel/internal/smas"
	"vessel/internal/stats"
	"vessel/internal/trace"
	"vessel/internal/uproc"
	"vessel/internal/vessel"
)

// Config sizes and tunes a self-healing cluster.
type Config struct {
	// Domains is the number of scheduling domains; CoresPerDomain sizes
	// each domain's machine.
	Domains        int
	CoresPerDomain int
	Costs          *cpu.CostModel
	// Detector tunes the phi-accrual failure detector.
	Detector DetectorConfig
	// DetectBudget is the declared ceiling on detection MTTR (silence →
	// fence); RestartBudget is the additional ceiling on a full domain
	// restart. Exceeding either is a reported violation. Defaults:
	// 500µs each.
	DetectBudget  sim.Duration
	RestartBudget sim.Duration
	// PolicyBudgetCycles is the failsafe's per-decision cycle ceiling
	// (default 100k cycles; 0 keeps the default, -1 disables).
	PolicyBudgetCycles int64
	// Primary builds each domain's primary scheduler policy; nil uses
	// round-robin (making the failsafe swap a no-op behaviourally, but
	// still exercised).
	Primary func() vessel.Policy
	// MaxDomainRestarts caps supervised domain resurrections (0 =
	// unlimited); past it the domain is declared dead.
	MaxDomainRestarts int
	// WatchdogSoft/WatchdogHard arm each domain's cycle-budget watchdog
	// when positive.
	WatchdogSoft, WatchdogHard int64
	// EventCap bounds the shared containment event log (a ring: oldest
	// entries are overwritten). Default 1<<15 entries.
	EventCap int
	// VirtualKeys builds every domain (and every restart incarnation)
	// with libmpk-style virtualized protection keys, lifting the 13-key
	// density cap (DESIGN.md §14).
	VirtualKeys bool
	// SLOMaxViolationFrac, when positive and a journey tracer is
	// attached, is the largest acceptable fraction of SLO-violating
	// request journeys; exceeding it at the end of a run is a reported
	// violation — the SLO health signal feeding recovery alongside the
	// phi-accrual detector (DESIGN.md §15). Zero disables the check.
	SLOMaxViolationFrac float64
}

func (c Config) withDefaults() Config {
	if c.Domains <= 0 {
		c.Domains = 1
	}
	if c.CoresPerDomain <= 0 {
		c.CoresPerDomain = 1
	}
	if c.Costs == nil {
		c.Costs = cpu.Default()
	}
	if c.DetectBudget <= 0 {
		c.DetectBudget = 500 * sim.Microsecond
	}
	if c.RestartBudget <= 0 {
		c.RestartBudget = 500 * sim.Microsecond
	}
	if c.PolicyBudgetCycles == 0 {
		c.PolicyBudgetCycles = 100_000
	} else if c.PolicyBudgetCycles < 0 {
		c.PolicyBudgetCycles = 0
	}
	if c.EventCap <= 0 {
		c.EventCap = 1 << 15
	}
	return c
}

// workerSpec is the durable description of one supervised workload — what
// survives a domain restart and lets the supervisor rebuild the worker in
// a fresh incarnation.
type workerSpec struct {
	name string
	// build constructs the program against the current incarnation's
	// manager (gate addresses differ across incarnations).
	build  func(mg *vessel.Manager) *smas.Program
	core   int
	policy vessel.RestartPolicy
}

// domainState is one domain plus its recovery bookkeeping.
type domainState struct {
	id       int
	mg       *vessel.Manager
	failsafe *Failsafe
	injector *faultinject.Injector
	workers  []workerSpec
	// lastAlive is the last instant any core of the domain beat — the
	// moment the domain went fully dark, for restart MTTR.
	lastAlive  sim.Time
	restarts   int
	dead       bool
	swapLogged bool
}

// Cluster supervises a set of scheduling domains on one shared virtual
// timeline: it drives their cores, feeds the failure detector with
// progress heartbeats, fences cores that stall or fail-stop, restarts
// domains that lose every core (with full state reconciliation), heals
// leaked protection keys, and records MTTR for every recovery. All of it
// is deterministic: same configuration, same fault plans, same seeds —
// byte-identical Report.Canonical output.
type Cluster struct {
	cfg     Config
	eng     *sim.Engine
	events  *trace.EventLog
	det     *Detector
	obs     *obs.Observer
	journey *journey.Tracer
	domains []*domainState
	mttr    *stats.Histogram
	// Counters tallies recovery actions in deterministic order.
	Counters   *stats.Counters
	violations []string
	rounds     int
	started    bool
}

// New builds the cluster: one shared engine, one shared (ring) event log,
// and per domain a manager, a failsafe-wrapped policy, and optionally a
// watchdog.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:      cfg,
		eng:      sim.NewEngine(),
		events:   trace.NewRingEventLog(cfg.EventCap),
		det:      NewDetector(cfg.Detector),
		mttr:     stats.NewHistogram(),
		Counters: stats.NewCounters(),
	}
	for i := 0; i < cfg.Domains; i++ {
		mg, err := c.newManager()
		if err != nil {
			return nil, err
		}
		mg.UseEvents(c.events)
		if cfg.WatchdogSoft > 0 || cfg.WatchdogHard > 0 {
			mg.EnableWatchdog(cfg.WatchdogSoft, cfg.WatchdogHard)
		}
		var primary vessel.Policy
		if cfg.Primary != nil {
			primary = cfg.Primary()
		}
		c.domains = append(c.domains, &domainState{
			id:       i,
			mg:       mg,
			failsafe: NewFailsafe(primary, cfg.PolicyBudgetCycles),
		})
	}
	return c, nil
}

// newManager builds one domain incarnation on the shared engine, in the
// key mode the configuration asks for.
func (c *Cluster) newManager() (*vessel.Manager, error) {
	if c.cfg.VirtualKeys {
		return vessel.NewVirtualManagerOn(c.eng, c.cfg.CoresPerDomain, c.cfg.Costs)
	}
	return vessel.NewManagerOn(c.eng, c.cfg.CoresPerDomain, c.cfg.Costs)
}

// Engine exposes the shared engine (for tests and harness wiring).
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Manager returns a domain's current manager incarnation.
func (c *Cluster) Manager(domain int) *vessel.Manager { return c.domains[domain].mg }

// Failsafe returns a domain's failsafe policy wrapper.
func (c *Cluster) Failsafe(domain int) *Failsafe { return c.domains[domain].failsafe }

// AttachObs installs an observer for the cluster's recovery overlays
// (fence/recover/failsafe spans, MTTR observations). Cores are numbered
// globally: domain*CoresPerDomain+core.
func (c *Cluster) AttachObs(o *obs.Observer) { c.obs = o }

// AttachJourney installs request-journey tracing on every domain (and
// every restart incarnation): seam events land in the shared flight
// recorder, and recovery actions — watchdog kills, failsafe swaps,
// domain restarts — snapshot it into black-box dumps carried by the
// report. Nil is a no-op.
func (c *Cluster) AttachJourney(t *journey.Tracer) {
	if t == nil {
		return
	}
	c.journey = t
	for _, d := range c.domains {
		d.mg.AttachJourney(t)
	}
}

// AddWorker supervises a workload on a domain: build constructs its
// program against whichever manager incarnation is current, so the worker
// survives both uProcess restarts (vessel.Supervise) and whole-domain
// restarts (this package).
func (c *Cluster) AddWorker(domain int, name string, build func(mg *vessel.Manager) *smas.Program, core int, policy vessel.RestartPolicy) error {
	d := c.domains[domain]
	d.workers = append(d.workers, workerSpec{name: name, build: build, core: core, policy: policy})
	_, err := d.mg.Supervise(name, func() *smas.Program { return build(d.mg) }, core, policy)
	return err
}

// InjectFaults attaches a chaos plan to a domain and wires the domain's
// failsafe as the plan's policy attack surface. The plan dies with the
// incarnation: faults not yet fired when the domain is restarted are
// discarded (and counted).
func (c *Cluster) InjectFaults(domain int, plan faultinject.Plan) *faultinject.Injector {
	d := c.domains[domain]
	d.injector = d.mg.InjectFaults(plan)
	d.injector.AttachPolicy(d.failsafe)
	return d.injector
}

// coreID names a domain core for the detector.
func (c *Cluster) coreID(d *domainState, core int) string {
	return fmt.Sprintf("d%d.c%d", d.id, core)
}

// globalCore flattens (domain, core) for observer spans.
func (c *Cluster) globalCore(d *domainState, core int) int {
	return d.id*c.cfg.CoresPerDomain + core
}

func (c *Cluster) event(now sim.Time, name, detail string) {
	c.events.Record(now, name, detail)
}

func (c *Cluster) violate(now sim.Time, format string, args ...any) {
	v := fmt.Sprintf(format, args...)
	c.violations = append(c.violations, v)
	c.Counters.Inc("selfheal.violation")
	c.event(now, "heal.violation", v)
}

// start boots every domain core and registers it with the detector.
func (c *Cluster) start() error {
	for _, d := range c.domains {
		for core := 0; core < c.cfg.CoresPerDomain; core++ {
			if err := d.mg.Start(core); err != nil {
				return err
			}
			c.det.Track(c.coreID(d, core), c.eng.Now())
		}
		d.lastAlive = c.eng.Now()
	}
	c.started = true
	return nil
}

// Run drives the cluster for steps instructions per core in quanta,
// reacting to failures after every round. It is the cluster-level
// equivalent of vessel.RunChaos, plus detection and recovery.
func (c *Cluster) Run(steps, quantum int) (*Report, error) {
	if quantum <= 0 {
		return nil, fmt.Errorf("selfheal: quantum must be positive")
	}
	if steps < quantum {
		steps = quantum
	}
	if !c.started {
		if err := c.start(); err != nil {
			return nil, err
		}
	}
	// Approximate virtual duration of one idle round, used to keep the
	// clock moving when nothing executes and nothing is queued — the
	// supervisor's own tick, without which a fully wedged cluster would
	// freeze time and blind the detector.
	roundNs := sim.Duration(float64(quantum) / c.cfg.Costs.ClockGHz)
	if roundNs <= 0 {
		roundNs = sim.Microsecond
	}
	rounds := (steps + quantum - 1) / quantum
	type beatRec struct {
		id string
		d  *domainState
	}
	for round := 0; round < rounds; round++ {
		c.rounds++
		progressed := false
		var beats []beatRec
		for _, d := range c.domains {
			if d.dead {
				continue
			}
			m := d.mg.Machine()
			for core := 0; core < m.NumCores(); core++ {
				if d.mg.CoreFenced(core) {
					continue
				}
				if d.mg.Domain.Offline(core) {
					// The cluster scheduler revoked this core: it is no
					// longer this domain's responsibility, so the detector
					// must stop expecting beats from it — silence here is
					// churn, not failure.
					if id := c.coreID(d, core); c.forgetChurned(id) {
						c.Counters.Inc("selfheal.churn.forget")
					}
					continue
				}
				if id := c.coreID(d, core); c.trackChurned(id) {
					// Granted (back) to the domain mid-run: monitor it.
					c.Counters.Inc("selfheal.churn.track")
				}
				cc := m.Core(core)
				if cc.Fault != nil || cc.Stalled {
					continue // silent: the detector sees the missing beat
				}
				if cc.Halted {
					ok, err := d.mg.Domain.Wake(core)
					if err != nil {
						return nil, err
					}
					if !ok {
						// Healthy idle: nothing runnable is not a failure.
						beats = append(beats, beatRec{c.coreID(d, core), d})
						continue
					}
				}
				ran := cc.Run(quantum)
				if ran > 0 {
					progressed = true
				}
				if cc.Fault != nil || cc.Stalled {
					continue // died or wedged mid-quantum: no beat
				}
				beats = append(beats, beatRec{c.coreID(d, core), d})
				dec := d.failsafe.Decide(vessel.PolicyView{
					Core:     core,
					RanFull:  ran == quantum,
					QueueLen: len(d.mg.Domain.Runqueue(core)),
					Idle:     ran == 0,
				})
				cc.Cycles += dec.CostCycles
				if dec.Preempt {
					if err := d.mg.Domain.Preempt(core, uproc.SchedCommand{}); err != nil {
						return nil, err
					}
				}
			}
		}
		c.syncClock()
		if !progressed {
			if c.eng.Pending() > 0 {
				c.eng.Step()
			} else {
				c.eng.Run(c.eng.Now().Add(roundNs))
			}
		}
		now := c.eng.Now()
		for _, b := range beats {
			c.det.Beat(b.id, now)
			b.d.lastAlive = now
		}
		for _, d := range c.domains {
			if d.dead {
				continue
			}
			if d.injector != nil {
				d.injector.Step(now)
			}
			if err := d.mg.PollSupervised(); err != nil {
				return nil, err
			}
		}
		if err := c.react(now); err != nil {
			return nil, err
		}
	}
	if err := c.drain(); err != nil {
		return nil, err
	}
	c.finalChecks()
	return c.report(), nil
}

// forgetChurned drops a detector entity if it is still tracked,
// reporting whether anything was dropped — the revoke side of
// granted-core churn.
func (c *Cluster) forgetChurned(id string) bool {
	if _, tracked := c.det.LastBeat(id); !tracked {
		return false
	}
	c.det.Forget(id)
	return true
}

// trackChurned registers a detector entity if it is not tracked yet,
// reporting whether it was new — the grant side of granted-core churn.
// The silence clock starts now, so a freshly granted core is not
// suspected for the time it spent in another domain.
func (c *Cluster) trackChurned(id string) bool {
	if _, tracked := c.det.LastBeat(id); tracked {
		return false
	}
	c.det.Track(id, c.eng.Now())
	return true
}

// syncClock advances the shared engine to the farthest core's cycle time
// across every live domain.
func (c *Cluster) syncClock() {
	var maxNs float64
	for _, d := range c.domains {
		if d.dead {
			continue
		}
		m := d.mg.Machine()
		for i := 0; i < m.NumCores(); i++ {
			if ns := m.NsFor(m.Core(i).Cycles); ns > maxNs {
				maxNs = ns
			}
		}
	}
	if t := sim.Time(maxNs); t > c.eng.Now() {
		c.eng.Run(t)
	}
}

// react is the recovery state machine, run once per round:
//
//	detect (fatal fault, or phi over threshold)
//	  → fence the core (drain to survivors, re-home supervised workers)
//	  → if no cores remain: restart the domain (cancel stale events,
//	    fresh incarnation, re-supervise, reconcile state, check MTTR)
//	live domains additionally get pkey reconciliation (heals leaks) and
//	failsafe-swap bookkeeping.
func (c *Cluster) react(now sim.Time) error {
	for _, d := range c.domains {
		if d.dead {
			continue
		}
		m := d.mg.Machine()
		for core := 0; core < m.NumCores(); core++ {
			if d.mg.CoreFenced(core) || d.mg.Domain.Offline(core) {
				continue
			}
			id := c.coreID(d, core)
			cc := m.Core(core)
			fatal := cc.Fault != nil
			if !fatal && !c.det.Suspect(id, now) {
				continue
			}
			cause := "suspect"
			if fatal {
				cause = "fatal"
			}
			last, _ := c.det.LastBeat(id)
			mttr := now.Sub(last)
			if err := d.mg.FenceCore(core); err != nil {
				return err
			}
			c.det.Forget(id)
			c.mttr.Record(int64(mttr))
			c.Counters.Inc("selfheal.fence")
			c.event(now, "heal.fence", fmt.Sprintf("domain=%d core=%d cause=%s mttr=%v", d.id, core, cause, mttr))
			if c.obs != nil {
				c.obs.Span(c.globalCore(d, core), last, now, obs.CatFence, cause)
				c.obs.Reg().Observe("selfheal.mttr_ns", int64(mttr))
			}
			if mttr > c.cfg.DetectBudget {
				c.violate(now, "domain %d core %d: detection MTTR %v exceeds budget %v", d.id, core, mttr, c.cfg.DetectBudget)
			}
		}
		live, offline := 0, 0
		for core := 0; core < m.NumCores(); core++ {
			switch {
			case d.mg.CoreFenced(core):
			case d.mg.Domain.Offline(core):
				offline++
			default:
				live++
			}
		}
		// A domain whose cores are merely revoked (offline, not fenced) is
		// healthy-but-coreless: the cluster scheduler decides when it runs
		// again, so a restart here would fight the upper level. Restart
		// only when fencing has consumed every core the domain owned.
		if live == 0 && offline == 0 {
			if err := c.restartDomain(d, now); err != nil {
				return err
			}
			continue
		}
		c.reconcileKeys(d, now)
		if sw, reason := d.failsafe.Swapped(); sw && !d.swapLogged {
			d.swapLogged = true
			c.Counters.Inc("selfheal.failsafe.swap")
			c.event(now, "heal.failsafe", fmt.Sprintf("domain=%d reason=%s", d.id, reason))
			if c.obs != nil {
				c.obs.Span(c.globalCore(d, 0), now, now, obs.CatFailsafe, reason)
			}
			if c.journey != nil {
				c.journey.Event(now, "heal.failsafe", fmt.Sprintf("domain=%d reason=%s", d.id, reason))
				c.journey.Dump(now, fmt.Sprintf("heal.failsafe.domain%d", d.id))
			}
		}
	}
	return nil
}

// reconcileKeys frees protection keys that are allocated but owned by no
// region — the PkeyLeak class, and any future lost pkey_free. Ownership is
// judged by SMAS.KeyOwned: a region's key in direct mode, a virtual-key
// table slot in virtual mode (where slots legitimately outnumber what a
// static region index could record); anything else in the app range is a
// leak.
func (c *Cluster) reconcileKeys(d *domainState, now sim.Time) {
	s := d.mg.Domain.S
	for k := mpk.PKey(1); k < smas.RuntimeKey; k++ {
		if !s.Keys.InUse(k) || s.KeyOwned(k) {
			continue
		}
		if err := s.Keys.Free(k); err == nil {
			c.Counters.Inc("selfheal.pkey.reclaimed")
			c.event(now, "heal.pkey", fmt.Sprintf("domain=%d key=%d", d.id, k))
		}
	}
}

// restartDomain resurrects a domain that lost every core: the old
// incarnation's pending events are cancelled (stale restarts and
// deliveries must not fire into the successor), a fresh manager is built
// on the shared engine, every supervised worker is relaunched, and the new
// state is reconciled against the worker manifest — no leaked keys, no
// lost or duplicated uProcesses.
func (c *Cluster) restartDomain(d *domainState, now sim.Time) error {
	downAt := d.lastAlive
	d.restarts++
	if c.cfg.MaxDomainRestarts > 0 && d.restarts > c.cfg.MaxDomainRestarts {
		d.dead = true
		c.Counters.Inc("selfheal.domain.giveup")
		c.event(now, "heal.giveup", fmt.Sprintf("domain=%d restarts=%d", d.id, d.restarts-1))
		return nil
	}
	cancelled := d.mg.CancelPending()
	discarded := 0
	if d.injector != nil {
		discarded = d.injector.Pending()
		d.injector = nil
	}
	c.Counters.Add("selfheal.events.cancelled", uint64(cancelled))
	c.Counters.Add("selfheal.injections.discarded", uint64(discarded))
	fresh, err := c.newManager()
	if err != nil {
		return err
	}
	fresh.UseEvents(c.events)
	if c.cfg.WatchdogSoft > 0 || c.cfg.WatchdogHard > 0 {
		fresh.EnableWatchdog(c.cfg.WatchdogSoft, c.cfg.WatchdogHard)
	}
	if c.journey != nil {
		fresh.AttachJourney(c.journey)
	}
	d.mg = fresh
	baseKeys := fresh.Domain.S.Keys.Available()
	for i := range d.workers {
		spec := d.workers[i]
		if _, err := fresh.Supervise(spec.name, func() *smas.Program { return spec.build(d.mg) }, spec.core, spec.policy); err != nil {
			return fmt.Errorf("selfheal: relaunching %s in domain %d: %w", spec.name, d.id, err)
		}
	}
	for core := 0; core < c.cfg.CoresPerDomain; core++ {
		if err := fresh.Start(core); err != nil {
			return err
		}
		c.det.Track(c.coreID(d, core), now)
	}
	d.lastAlive = now

	// Reconciliation oracles: the fresh incarnation must account for
	// exactly the supervised manifest — keys, regions, uProcesses. Under
	// virtualized keys more workers can be live than hardware slots, so
	// the allocator's draw-down is the table's resident count and the
	// region census uses the virtual-region index instead of slots.
	s := fresh.Domain.S
	if s.Virtual() {
		if got, want := baseKeys-s.Keys.Available(), s.VKeys.Resident(); got != want {
			c.violate(now, "domain %d restart: %d slots drawn, want %d resident (slot leak across restart)", d.id, got, want)
		}
		if got := s.LiveRegionCount(); got != len(d.workers) {
			c.violate(now, "domain %d restart: %d regions, want %d", d.id, got, len(d.workers))
		}
	} else {
		if got, want := s.Keys.Available(), baseKeys-len(d.workers); got != want {
			c.violate(now, "domain %d restart: %d keys available, want %d (leak across restart)", d.id, got, want)
		}
		if got := len(s.RegionKeys()); got != len(d.workers) {
			c.violate(now, "domain %d restart: %d regions, want %d", d.id, got, len(d.workers))
		}
	}
	if got := len(fresh.Domain.UProcs()); got != len(d.workers) {
		c.violate(now, "domain %d restart: %d uProcesses, want %d (lost or duplicated)", d.id, got, len(d.workers))
	}
	for _, spec := range d.workers {
		if _, ok := fresh.Lookup(spec.name); !ok {
			c.violate(now, "domain %d restart: worker %s lost", d.id, spec.name)
		}
	}
	mttr := now.Sub(downAt)
	c.mttr.Record(int64(mttr))
	c.Counters.Inc("selfheal.domain.restart")
	c.event(now, "heal.restart", fmt.Sprintf("domain=%d n=%d cancelled=%d discarded=%d mttr=%v", d.id, d.restarts, cancelled, discarded, mttr))
	if c.journey != nil {
		c.journey.Event(now, "heal.restart", fmt.Sprintf("domain=%d n=%d mttr=%v", d.id, d.restarts, mttr))
		c.journey.Dump(now, fmt.Sprintf("heal.restart.domain%d", d.id))
	}
	if c.obs != nil {
		c.obs.Span(c.globalCore(d, 0), downAt, now, obs.CatRecover, fmt.Sprintf("domain=%d", d.id))
		c.obs.Reg().Observe("selfheal.mttr_ns", int64(mttr))
		c.obs.Reg().Inc("selfheal.domain.restarts")
	}
	if budget := c.cfg.DetectBudget + c.cfg.RestartBudget; mttr > budget {
		c.violate(now, "domain %d restart MTTR %v exceeds budget %v", d.id, mttr, budget)
	}
	return nil
}

// drain settles in-flight recovery work (supervised relaunch backoffs) so
// the final oracles judge a quiescent cluster, not one mid-restart.
func (c *Cluster) drain() error {
	for i := 0; i < 8 && c.eng.Pending() > 0; i++ {
		c.eng.RunAll(1 << 20)
		for _, d := range c.domains {
			if d.dead {
				continue
			}
			if err := d.mg.PollSupervised(); err != nil {
				return err
			}
		}
	}
	return nil
}

// finalChecks runs the post-run conservation oracles: every supervised
// worker of a live domain is either running or has explicitly given up,
// and no live domain holds unaccounted protection keys.
func (c *Cluster) finalChecks() {
	now := c.eng.Now()
	for _, d := range c.domains {
		if d.dead {
			continue
		}
		c.reconcileKeys(d, now)
		for _, spec := range d.workers {
			_, ok := d.mg.Lookup(spec.name)
			_, gaveUp := d.mg.Supervised(spec.name)
			if !ok && !gaveUp {
				c.violate(now, "domain %d worker %s lost: not running, not given up", d.id, spec.name)
			}
		}
	}
	// SLO health: the journey tracer's windowed violation fraction is a
	// first-class recovery signal — too many tail-violating requests is a
	// breach even when every core kept beating.
	if c.journey != nil && c.cfg.SLOMaxViolationFrac > 0 {
		if frac := c.journey.ViolationFrac(); frac > c.cfg.SLOMaxViolationFrac {
			c.violate(now, "SLO violation fraction %.4f exceeds budget %.4f", frac, c.cfg.SLOMaxViolationFrac)
		}
	}
}

// Report is the outcome of a Run, with a canonical byte rendering as the
// determinism witness.
type Report struct {
	Rounds              int
	Fences              int
	DomainRestarts      int
	DomainsDead         int
	PolicySwaps         int
	PkeysHealed         int
	EventsCancelled     int
	InjectionsDiscarded int
	// MTTR aggregates every recovery's time-to-repair (ns of virtual
	// time): fence detections and domain restarts.
	MTTR stats.Summary
	// Violations are recovery-invariant breaches; an empty list is the
	// pass condition the chaos soak gates on.
	Violations []string
	Counters   *stats.Counters
	Events     *trace.EventLog
	// FlightDumps are the journey flight-recorder snapshots captured at
	// recovery moments (uProcess kills, failsafe swaps, domain
	// restarts); empty without an attached tracer. SLOGood/SLOBad are
	// the tracer's SLO tallies over finished request journeys.
	FlightDumps     []journey.Dump
	SLOGood, SLOBad uint64
}

func (c *Cluster) report() *Report {
	dead := 0
	for _, d := range c.domains {
		if d.dead {
			dead++
		}
	}
	good, bad := c.journey.SLOCounts()
	return &Report{
		Rounds:              c.rounds,
		Fences:              int(c.Counters.Get("selfheal.fence")),
		DomainRestarts:      int(c.Counters.Get("selfheal.domain.restart")),
		DomainsDead:         dead,
		PolicySwaps:         int(c.Counters.Get("selfheal.failsafe.swap")),
		PkeysHealed:         int(c.Counters.Get("selfheal.pkey.reclaimed")),
		EventsCancelled:     int(c.Counters.Get("selfheal.events.cancelled")),
		InjectionsDiscarded: int(c.Counters.Get("selfheal.injections.discarded")),
		MTTR:                c.mttr.Summarize(),
		Violations:          append([]string(nil), c.violations...),
		Counters:            c.Counters,
		Events:              c.events,
		FlightDumps:         c.journey.Dumps(),
		SLOGood:             good,
		SLOBad:              bad,
	}
}

// Canonical renders the report deterministically: identical runs produce
// byte-identical output, which is how the chaos soak proves replayability.
func (r *Report) Canonical() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "rounds=%d fences=%d restarts=%d dead=%d swaps=%d healedkeys=%d cancelled=%d discarded=%d\n",
		r.Rounds, r.Fences, r.DomainRestarts, r.DomainsDead, r.PolicySwaps,
		r.PkeysHealed, r.EventsCancelled, r.InjectionsDiscarded)
	fmt.Fprintf(&b, "mttr: n=%d p50=%d p99=%d max=%d\n", r.MTTR.Count, r.MTTR.P50, r.MTTR.P99, r.MTTR.Max)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "violation: %s\n", v)
	}
	b.WriteString(r.Counters.String())
	fmt.Fprintf(&b, "events (overwritten=%d):\n", r.Events.Overwritten())
	b.WriteString(r.Events.String())
	// Journey sections render only when a tracer produced data, so the
	// canonical bytes of tracer-less runs are unchanged.
	if r.SLOGood+r.SLOBad > 0 {
		fmt.Fprintf(&b, "slo: good=%d bad=%d frac=%.4f\n",
			r.SLOGood, r.SLOBad, float64(r.SLOBad)/float64(r.SLOGood+r.SLOBad))
	}
	for i, d := range r.FlightDumps {
		fmt.Fprintf(&b, "flight-dump %d:\n", i)
		b.WriteString(d.Text())
	}
	return b.Bytes()
}
