// Package selfheal is the cluster-level self-healing layer: deterministic
// failure detection over simulated cycles, core fencing, supervised domain
// recovery with full state reconciliation, and a failsafe scheduler-policy
// wrapper. Everything runs in virtual time — same seed, same plan, same
// byte-identical recovery history — so the chaos soak can gate on MTTR and
// post-recovery invariants without wall-clock flakiness.
package selfheal

import (
	"math"
	"sort"
	"sync"

	"vessel/internal/sim"
)

// DetectorConfig tunes the phi-accrual suspicion math.
type DetectorConfig struct {
	// PhiThreshold is the suspicion level at which an entity is flagged
	// (default 8 — roughly "the silence is 10⁸× longer than the survival
	// function predicts").
	PhiThreshold float64
	// MinGap floors the learned mean heartbeat gap, so an entity that
	// beats every instruction cannot talk the detector into microsecond
	// paranoia (default 1µs).
	MinGap sim.Duration
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.PhiThreshold <= 0 {
		c.PhiThreshold = 8
	}
	if c.MinGap <= 0 {
		c.MinGap = sim.Microsecond
	}
	return c
}

// entity is one monitored heartbeat stream.
type entity struct {
	id       string
	lastBeat sim.Time
	// meanGap is the running mean inter-beat gap in virtual nanoseconds
	// (Welford's update, mean only — phi-accrual with an exponential
	// survival model needs no variance).
	meanGap float64
	beats   uint64
}

// Detector is a phi-accrual failure detector over virtual time. Heartbeats
// are progress observations (instructions retired, or a healthy idle); the
// suspicion level phi grows with the silence since the last beat, scaled by
// the entity's learned mean gap. Because time is simulated, detection
// latency is a pure function of the run — the property the MTTR gates rely
// on. All methods are safe for concurrent use; iteration orders are
// deterministic (insertion order for Suspects).
type Detector struct {
	mu       sync.Mutex
	cfg      DetectorConfig
	entities map[string]*entity
	order    []string
}

// NewDetector builds an empty detector.
func NewDetector(cfg DetectorConfig) *Detector {
	return &Detector{cfg: cfg.withDefaults(), entities: make(map[string]*entity)}
}

// Track registers (or re-registers, after a recovery) an entity, with its
// heartbeat history reset and the silence clock starting at now.
func (d *Detector) Track(id string, now sim.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.entities[id]; !ok {
		d.order = append(d.order, id)
	}
	d.entities[id] = &entity{id: id, lastBeat: now, meanGap: float64(d.cfg.MinGap)}
}

// Forget stops monitoring an entity (a fenced core is no longer anyone's
// responsibility).
func (d *Detector) Forget(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.entities[id]; !ok {
		return
	}
	delete(d.entities, id)
	for i, o := range d.order {
		if o == id {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
}

// Beat records one heartbeat at now and folds the observed gap into the
// learned mean.
func (d *Detector) Beat(id string, now sim.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entities[id]
	if !ok {
		return
	}
	gap := float64(now.Sub(e.lastBeat))
	if gap < float64(d.cfg.MinGap) {
		gap = float64(d.cfg.MinGap)
	}
	e.beats++
	e.meanGap += (gap - e.meanGap) / float64(e.beats)
	if e.meanGap < float64(d.cfg.MinGap) {
		e.meanGap = float64(d.cfg.MinGap)
	}
	e.lastBeat = now
}

// phiLocked computes the suspicion level: with an exponential survival
// model, P(silence > t) = exp(-t/mean), so phi = -log10 P = t/(mean·ln10).
func (d *Detector) phiLocked(e *entity, now sim.Time) float64 {
	elapsed := float64(now.Sub(e.lastBeat))
	if elapsed <= 0 {
		return 0
	}
	return elapsed / (e.meanGap * math.Ln10)
}

// Phi returns the current suspicion level for an entity (0 if untracked).
func (d *Detector) Phi(id string, now sim.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entities[id]; ok {
		return d.phiLocked(e, now)
	}
	return 0
}

// Suspect reports whether an entity's phi exceeds the threshold.
func (d *Detector) Suspect(id string, now sim.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entities[id]
	return ok && d.phiLocked(e, now) > d.cfg.PhiThreshold
}

// Suspects returns all entities over threshold, in registration order.
func (d *Detector) Suspects(now sim.Time) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for _, id := range d.order {
		if d.phiLocked(d.entities[id], now) > d.cfg.PhiThreshold {
			out = append(out, id)
		}
	}
	return out
}

// LastBeat returns when an entity last beat (false if untracked).
func (d *Detector) LastBeat(id string) (sim.Time, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entities[id]; ok {
		return e.lastBeat, true
	}
	return 0, false
}

// Tracked returns the monitored entity IDs, sorted.
func (d *Detector) Tracked() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := append([]string(nil), d.order...)
	sort.Strings(out)
	return out
}
