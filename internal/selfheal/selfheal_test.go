package selfheal

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/faultinject"
	"vessel/internal/mem"
	"vessel/internal/obs/journey"
	"vessel/internal/sim"
	"vessel/internal/smas"
	"vessel/internal/vessel"
)

func parkLoop(mg *vessel.Manager, name string) *smas.Program {
	a := cpu.NewAssembler()
	a.Label("loop")
	a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	a.Emit(cpu.Call{Target: mg.Domain.GatePark.Entry})
	a.JmpTo("loop")
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

// --- Detector ---

func TestDetectorLearnsGapAndSuspects(t *testing.T) {
	d := NewDetector(DetectorConfig{PhiThreshold: 8, MinGap: sim.Microsecond})
	now := sim.Time(0)
	d.Track("c0", now)
	// Regular 2µs heartbeats: never suspect while beating.
	for i := 0; i < 50; i++ {
		now = now.Add(2 * sim.Microsecond)
		d.Beat("c0", now)
		if d.Suspect("c0", now) {
			t.Fatalf("suspect while beating regularly at beat %d (phi=%.2f)", i, d.Phi("c0", now))
		}
	}
	// Silence: phi grows monotonically and crosses the threshold.
	prev := d.Phi("c0", now)
	for i := 0; i < 100 && !d.Suspect("c0", now); i++ {
		now = now.Add(2 * sim.Microsecond)
		phi := d.Phi("c0", now)
		if phi < prev {
			t.Fatalf("phi not monotone under silence: %f -> %f", prev, phi)
		}
		prev = phi
	}
	if !d.Suspect("c0", now) {
		t.Fatalf("never suspected after %v of silence (phi=%.2f)", now, prev)
	}
	// Detection latency is a bounded multiple of the learned gap:
	// phi > 8 requires elapsed > 8·ln10·mean ≈ 18.4·mean.
	last, _ := d.LastBeat("c0")
	silence := now.Sub(last)
	if silence > 50*sim.Microsecond {
		t.Fatalf("detection took %v, want bounded by ~19 mean gaps", silence)
	}
	// A beat resets suspicion.
	d.Beat("c0", now)
	if d.Suspect("c0", now) {
		t.Fatal("still suspect immediately after a beat")
	}
}

func TestDetectorMinGapFloorsParanoia(t *testing.T) {
	d := NewDetector(DetectorConfig{PhiThreshold: 8, MinGap: sim.Microsecond})
	now := sim.Time(0)
	d.Track("c0", now)
	// Beats every nanosecond must not shrink the mean below MinGap.
	for i := 0; i < 1000; i++ {
		now = now.Add(1)
		d.Beat("c0", now)
	}
	// 10µs of silence is ~10 MinGaps: phi ≈ 10/ln10 ≈ 4.3 < 8.
	if d.Suspect("c0", now.Add(10*sim.Microsecond)) {
		t.Fatalf("hair-trigger suspicion: MinGap floor not applied (phi=%.2f)",
			d.Phi("c0", now.Add(10*sim.Microsecond)))
	}
	if !d.Suspect("c0", now.Add(60*sim.Microsecond)) {
		t.Fatal("real silence not detected")
	}
}

func TestDetectorForgetAndRetrack(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	d.Track("c0", 0)
	d.Track("c1", 0)
	if got := d.Suspects(sim.Time(sim.Second)); len(got) != 2 {
		t.Fatalf("suspects = %v, want both", got)
	}
	d.Forget("c0")
	if got := d.Suspects(sim.Time(sim.Second)); len(got) != 1 || got[0] != "c1" {
		t.Fatalf("suspects after forget = %v", got)
	}
	// Re-tracking resets the silence clock.
	d.Track("c0", sim.Time(sim.Second))
	if d.Suspect("c0", sim.Time(sim.Second)) {
		t.Fatal("freshly re-tracked entity already suspect")
	}
}

// --- Failsafe ---

// panicPolicy panics on the Nth decision; burnPolicy charges fixed cycles.
type panicPolicy struct{ decideAt, n int }

func (p *panicPolicy) Name() string { return "panicky" }
func (p *panicPolicy) Decide(v vessel.PolicyView) vessel.PolicyDecision {
	p.n++
	if p.n == p.decideAt {
		panic("scheduled policy bug")
	}
	return vessel.PolicyDecision{Preempt: v.RanFull}
}

type burnPolicy struct{ cost int64 }

func (p burnPolicy) Name() string { return "burny" }
func (p burnPolicy) Decide(v vessel.PolicyView) vessel.PolicyDecision {
	return vessel.PolicyDecision{Preempt: v.RanFull, CostCycles: p.cost}
}

func TestFailsafeSwapsOnPanic(t *testing.T) {
	swaps := 0
	f := NewFailsafe(&panicPolicy{decideAt: 3}, 0)
	f.OnSwap = func(string) { swaps++ }
	v := vessel.PolicyView{RanFull: true}
	for i := 0; i < 10; i++ {
		dec := f.Decide(v)
		if !dec.Preempt {
			t.Fatalf("decision %d: round-robin semantics lost across the swap", i)
		}
	}
	sw, reason := f.Swapped()
	if !sw || reason != "panic" {
		t.Fatalf("swapped = (%v, %q), want (true, panic)", sw, reason)
	}
	if f.Panics != 1 || swaps != 1 {
		t.Fatalf("panics=%d swaps=%d, want 1/1 (swap is one-way)", f.Panics, swaps)
	}
	if name := f.Name(); !strings.Contains(name, "roundrobin") {
		t.Fatalf("post-swap name %q does not expose the fallback", name)
	}
}

func TestFailsafeSwapsOnBudget(t *testing.T) {
	f := NewFailsafe(burnPolicy{cost: 50}, 100)
	dec := f.Decide(vessel.PolicyView{RanFull: true})
	if sw, _ := f.Swapped(); sw || dec.CostCycles != 50 {
		t.Fatalf("within-budget decision triggered a swap (cost=%d)", dec.CostCycles)
	}
	// An injected burn blows the budget: the burned cycles are still
	// charged once, and the fallback takes over.
	f.InjectBurn(500)
	dec = f.Decide(vessel.PolicyView{RanFull: true})
	if dec.CostCycles != 550 {
		t.Fatalf("burned cycles not charged: cost=%d, want 550", dec.CostCycles)
	}
	sw, reason := f.Swapped()
	if !sw || !strings.Contains(reason, "budget") {
		t.Fatalf("swapped = (%v, %q), want budget swap", sw, reason)
	}
	if dec = f.Decide(vessel.PolicyView{RanFull: true}); dec.CostCycles != 0 {
		t.Fatalf("fallback still paying the primary's cost: %d", dec.CostCycles)
	}
	if f.Overruns != 1 {
		t.Fatalf("overruns = %d", f.Overruns)
	}
}

// TestFailsafeConcurrentDecide exercises the lock under -race: decisions,
// injections, and swap reads race freely.
func TestFailsafeConcurrentDecide(t *testing.T) {
	f := NewFailsafe(&panicPolicy{decideAt: 64}, 1000)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			f.InjectBurn(1)
			f.Swapped()
			_ = f.Name()
		}
		close(done)
	}()
	for i := 0; i < 200; i++ {
		f.Decide(vessel.PolicyView{RanFull: i%2 == 0, QueueLen: i % 3})
	}
	<-done
}

// TestDetectorConcurrent exercises the detector lock under -race.
func TestDetectorConcurrent(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	for i := 0; i < 8; i++ {
		d.Track(fmt.Sprintf("c%d", i), 0)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 500; i++ {
			d.Beat(fmt.Sprintf("c%d", i%8), sim.Time(i)*sim.Time(sim.Microsecond))
		}
		close(done)
	}()
	for i := 0; i < 500; i++ {
		d.Suspects(sim.Time(i) * sim.Time(sim.Microsecond))
		d.Phi("c3", sim.Time(i))
	}
	<-done
}

// --- Cluster recovery, one fault class at a time ---

func newCluster(t *testing.T, domains, cores int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Domains:        domains,
		CoresPerDomain: cores,
		DetectBudget:   500 * sim.Microsecond,
		RestartBudget:  500 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func addParkWorkers(t *testing.T, c *Cluster, domain, cores, perCore int) {
	t.Helper()
	for core := 0; core < cores; core++ {
		for j := 0; j < perCore; j++ {
			name := fmt.Sprintf("d%dw%d", domain, core*perCore+j)
			err := c.AddWorker(domain, name, func(mg *vessel.Manager) *smas.Program {
				return parkLoop(mg, name)
			}, core, vessel.RestartPolicy{})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestClusterHealsCoreStall(t *testing.T) {
	c := newCluster(t, 1, 2)
	addParkWorkers(t, c, 0, 2, 1)
	c.InjectFaults(0, faultinject.Plan{Seed: 1, Faults: []faultinject.Fault{
		{Kind: faultinject.CoreStall, Core: 0, At: sim.Time(10 * sim.Microsecond)},
	}})
	rep, err := c.Run(400_000, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Fences != 1 {
		t.Fatalf("fences = %d, want 1\n%s", rep.Fences, rep.Canonical())
	}
	if !c.Manager(0).CoreFenced(0) {
		t.Fatal("stalled core not fenced")
	}
	// The stalled core's worker was written off and re-homed: it must be
	// running again on the survivor.
	u, ok := c.Manager(0).Lookup("d0w0")
	if !ok {
		t.Fatalf("worker d0w0 lost after stall recovery\n%s", rep.Canonical())
	}
	_ = u
	if rep.MTTR.Max > int64(500*sim.Microsecond) {
		t.Fatalf("MTTR %dns blew the detection budget", rep.MTTR.Max)
	}
	if rep.Events.CountByName("heal.fence") != 1 {
		t.Fatalf("event log:\n%s", rep.Events.String())
	}
}

func TestClusterHealsDomainCrash(t *testing.T) {
	c := newCluster(t, 2, 2)
	addParkWorkers(t, c, 0, 2, 1)
	addParkWorkers(t, c, 1, 2, 1)
	c.InjectFaults(0, faultinject.Plan{Seed: 1, Faults: []faultinject.Fault{
		{Kind: faultinject.DomainCrash, At: sim.Time(20 * sim.Microsecond)},
	}})
	rep, err := c.Run(400_000, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.DomainRestarts != 1 {
		t.Fatalf("restarts = %d, want 1\n%s", rep.DomainRestarts, rep.Canonical())
	}
	// Reconciliation: the fresh incarnation runs both workers, and the
	// untouched domain never noticed.
	for _, w := range []string{"d0w0", "d0w1"} {
		if _, ok := c.Manager(0).Lookup(w); !ok {
			t.Fatalf("worker %s lost across the domain restart", w)
		}
	}
	if c.Manager(1).FencedCores() != 0 {
		t.Fatal("healthy domain had cores fenced")
	}
	if rep.Events.CountByName("heal.restart") != 1 {
		t.Fatalf("event log:\n%s", rep.Events.String())
	}
}

func TestClusterFailsafeTakeover(t *testing.T) {
	c, err := New(Config{
		Domains:        1,
		CoresPerDomain: 1,
		Primary:        func() vessel.Policy { return vessel.FairSharePolicy{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	addParkWorkers(t, c, 0, 1, 2)
	c.InjectFaults(0, faultinject.Plan{Seed: 1, Faults: []faultinject.Fault{
		{Kind: faultinject.PolicyPanic, At: sim.Time(10 * sim.Microsecond)},
	}})
	rep, err := c.Run(200_000, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.PolicySwaps != 1 {
		t.Fatalf("swaps = %d, want 1\n%s", rep.PolicySwaps, rep.Canonical())
	}
	if sw, reason := c.Failsafe(0).Swapped(); !sw || reason != "panic" {
		t.Fatalf("failsafe = (%v, %q)", sw, reason)
	}
	if rep.Events.CountByName("heal.failsafe") != 1 {
		t.Fatalf("event log:\n%s", rep.Events.String())
	}
	// The run survived the policy death: workers still alive.
	if _, ok := c.Manager(0).Lookup("d0w0"); !ok {
		t.Fatal("worker lost to a policy panic")
	}
}

func TestClusterHealsPkeyLeak(t *testing.T) {
	c := newCluster(t, 1, 1)
	addParkWorkers(t, c, 0, 1, 1)
	c.InjectFaults(0, faultinject.Plan{Seed: 1, Faults: []faultinject.Fault{
		{Kind: faultinject.PkeyLeak, At: sim.Time(5 * sim.Microsecond)},
		{Kind: faultinject.PkeyLeak, At: sim.Time(15 * sim.Microsecond)},
	}})
	rep, err := c.Run(200_000, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.PkeysHealed != 2 {
		t.Fatalf("healed %d keys, want 2\n%s", rep.PkeysHealed, rep.Canonical())
	}
	// Conservation: one worker, one region, all other app keys free.
	s := c.Manager(0).Domain.S
	if got := s.Keys.Available(); got != smas.MaxUProcs-1 {
		t.Fatalf("%d keys available, want %d", got, smas.MaxUProcs-1)
	}
}

func TestClusterSurvivesUintrStorm(t *testing.T) {
	c := newCluster(t, 1, 1)
	addParkWorkers(t, c, 0, 1, 2)
	c.InjectFaults(0, faultinject.Plan{Seed: 1, Faults: []faultinject.Fault{
		{Kind: faultinject.UintrStorm, At: sim.Time(10 * sim.Microsecond), Delay: 30 * sim.Microsecond},
	}})
	rep, err := c.Run(400_000, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	// Park-loop workers keep yielding voluntarily, so the domain rides
	// out the storm without any fencing; the drops are counted.
	if rep.Fences != 0 || rep.DomainRestarts != 0 {
		t.Fatalf("storm caused fences=%d restarts=%d\n%s", rep.Fences, rep.DomainRestarts, rep.Canonical())
	}
	if c.Manager(0).Injector() != nil && c.Manager(0).Injector().Counters.Get("inject.uintr.storm-drop") == 0 {
		t.Fatal("storm never dropped a send")
	}
}

func TestClusterDeterministicAcrossRuns(t *testing.T) {
	run := func() []byte {
		c := newCluster(t, 2, 2)
		addParkWorkers(t, c, 0, 2, 1)
		addParkWorkers(t, c, 1, 2, 1)
		for dom := 0; dom < 2; dom++ {
			c.InjectFaults(dom, faultinject.Plan{
				Seed: uint64(7 + dom),
				Faults: []faultinject.Fault{
					{Kind: faultinject.CoreStall, Core: 0, At: sim.Time(10 * sim.Microsecond)},
					{Kind: faultinject.PkeyLeak, At: sim.Time(20 * sim.Microsecond)},
					{Kind: faultinject.PolicyPanic, At: sim.Time(30 * sim.Microsecond)},
					{Kind: faultinject.DomainCrash, At: sim.Time(60 * sim.Microsecond)},
				},
				Random:       4,
				RandomKinds:  []faultinject.Kind{faultinject.DropUintr, faultinject.UintrStorm},
				RandomCores:  2,
				RandomWindow: 100 * sim.Microsecond,
			})
		}
		rep, err := c.Run(400_000, 400)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Canonical()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical cluster runs diverged:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestClusterAllFiveClassesRecover(t *testing.T) {
	c, err := New(Config{
		Domains:        2,
		CoresPerDomain: 2,
		WatchdogSoft:   20_000,
		WatchdogHard:   60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	addParkWorkers(t, c, 0, 2, 1)
	addParkWorkers(t, c, 1, 2, 1)
	c.InjectFaults(0, faultinject.Plan{Seed: 3, Faults: []faultinject.Fault{
		{Kind: faultinject.CoreStall, Core: 1, At: sim.Time(10 * sim.Microsecond)},
		{Kind: faultinject.PkeyLeak, At: sim.Time(15 * sim.Microsecond)},
		{Kind: faultinject.DomainCrash, At: sim.Time(50 * sim.Microsecond)},
	}})
	c.InjectFaults(1, faultinject.Plan{Seed: 4, Faults: []faultinject.Fault{
		{Kind: faultinject.PolicyPanic, At: sim.Time(10 * sim.Microsecond)},
		{Kind: faultinject.UintrStorm, At: sim.Time(20 * sim.Microsecond), Delay: 20 * sim.Microsecond},
	}})
	rep, err := c.Run(600_000, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v\n%s", rep.Violations, rep.Canonical())
	}
	if rep.Fences == 0 || rep.DomainRestarts == 0 || rep.PolicySwaps == 0 || rep.PkeysHealed == 0 {
		t.Fatalf("recovery paths not all exercised: fences=%d restarts=%d swaps=%d healed=%d\n%s",
			rep.Fences, rep.DomainRestarts, rep.PolicySwaps, rep.PkeysHealed, rep.Canonical())
	}
	// Every worker of every domain survives to the end.
	for dom := 0; dom < 2; dom++ {
		for _, w := range []string{fmt.Sprintf("d%dw0", dom), fmt.Sprintf("d%dw1", dom)} {
			if _, ok := c.Manager(dom).Lookup(w); !ok {
				t.Fatalf("worker %s did not survive\n%s", w, rep.Canonical())
			}
		}
	}
}

// TestClusterChaosFlightRecorderEndToEnd drives the full black-box loop:
// a journey tracer rides along a chaos run whose faults force both a
// failsafe swap and a whole-domain restart, and every recovery action
// must leave a flight-recorder dump in the report — reason named after
// the action, seam events captured, the bounded window's scroll-outs
// counted. The same plan replayed against a fresh tracer must render
// byte-identical canonical output, dumps included: the postmortem
// artifact is as deterministic as the run it witnesses.
func TestClusterChaosFlightRecorderEndToEnd(t *testing.T) {
	run := func() (*Report, *journey.Tracer) {
		c, err := New(Config{
			Domains:        2,
			CoresPerDomain: 2,
			WatchdogSoft:   20_000,
			WatchdogHard:   60_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr := journey.NewTracer(journey.Config{
			SLOTarget: 30 * sim.Microsecond,
			SLOWindow: 50 * sim.Microsecond,
		})
		c.AttachJourney(tr)
		addParkWorkers(t, c, 0, 2, 1)
		addParkWorkers(t, c, 1, 2, 1)
		c.InjectFaults(0, faultinject.Plan{Seed: 3, Faults: []faultinject.Fault{
			{Kind: faultinject.PolicyPanic, At: sim.Time(10 * sim.Microsecond)},
			{Kind: faultinject.DomainCrash, At: sim.Time(50 * sim.Microsecond)},
		}})
		c.InjectFaults(1, faultinject.Plan{Seed: 4, Faults: []faultinject.Fault{
			{Kind: faultinject.UintrStorm, At: sim.Time(10 * sim.Microsecond), Delay: 40 * sim.Microsecond},
		}})
		rep, err := c.Run(600_000, 400)
		if err != nil {
			t.Fatal(err)
		}
		return rep, tr
	}

	rep, tr := run()
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v\n%s", rep.Violations, rep.Canonical())
	}
	if rep.PolicySwaps == 0 || rep.DomainRestarts == 0 {
		t.Fatalf("chaos plan did not exercise both recovery paths: swaps=%d restarts=%d\n%s",
			rep.PolicySwaps, rep.DomainRestarts, rep.Canonical())
	}
	// One dump per recovery action, named after it, with the seam events
	// leading up to the action inside.
	byReason := map[string]journey.Dump{}
	for _, d := range rep.FlightDumps {
		byReason[d.Reason] = d
		if len(d.Events) == 0 {
			t.Fatalf("dump %q captured no events", d.Reason)
		}
	}
	if _, ok := byReason["heal.failsafe.domain0"]; !ok {
		t.Fatalf("no flight dump for the failsafe swap; got %d dumps", len(rep.FlightDumps))
	}
	restart, ok := byReason["heal.restart.domain0"]
	if !ok {
		t.Fatalf("no flight dump for the domain restart; got %d dumps", len(rep.FlightDumps))
	}
	// By restart time the run has logged more seam events (gate invokes,
	// SENDUIPI dispositions) than the bounded window holds: the black box
	// keeps the most recent ones and counts what scrolled out.
	if restart.Overwritten == 0 {
		t.Fatalf("restart dump should have scrolled the bounded window (events=%d)", len(restart.Events))
	}
	if tr.Flight().Overwritten() == 0 {
		t.Fatal("live flight recorder reports no overwrites")
	}
	// The dumps render inside the canonical report bytes.
	canon := rep.Canonical()
	for _, want := range []string{"flight-dump 0:", "# vessel-flight-dump v1", "reason heal.restart.domain0", "gate.invoke"} {
		if !bytes.Contains(canon, []byte(want)) {
			t.Fatalf("canonical report missing %q:\n%s", want, canon)
		}
	}
	// Replay determinism, postmortem included.
	rep2, _ := run()
	if !bytes.Equal(canon, rep2.Canonical()) {
		t.Fatalf("identical chaos runs rendered different reports:\n--- a ---\n%s\n--- b ---\n%s", canon, rep2.Canonical())
	}
}
