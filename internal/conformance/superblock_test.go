package conformance

import (
	"bytes"
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/sched"
)

// TestSuperblocksByteIdentical runs the standard seed sweep through every
// scheduler twice — superblock fusion enabled and disabled — and requires
// byte-identical canonical results. Fused execution must be pure
// mechanism: single-check, single-account dispatch of straight-line runs
// may never change an observable number, at any seed, under any
// scheduler. Together with TestFastPathByteIdentical this pins the whole
// execution-acceleration stack (TLB, icache, superblocks) to the golden
// granularity.
//
// Not parallel: DisableSuperblocks is a package-level toggle that must
// only change while no simulation is running.
func TestSuperblocksByteIdentical(t *testing.T) {
	if cpu.DisableSuperblocks {
		t.Fatal("superblocks must be the default")
	}
	seeds := []uint64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	sweep := func() map[uint64]map[string][]byte {
		out := make(map[uint64]map[string][]byte)
		for _, seed := range seeds {
			sc := Generate(seed, true)
			out[seed] = make(map[string][]byte)
			for _, s := range Systems() {
				res, err := sched.Run(s, sc.Config())
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, s.Name(), err)
				}
				out[seed][s.Name()] = res.Canonical()
			}
		}
		return out
	}
	fused := sweep()
	cpu.DisableSuperblocks = true
	defer func() { cpu.DisableSuperblocks = false }()
	precise := sweep()
	for _, seed := range seeds {
		for name, fb := range fused[seed] {
			if !bytes.Equal(fb, precise[seed][name]) {
				t.Errorf("seed %d %s: canonical result differs with superblocks off\n--- fused\n%s--- per-instruction\n%s",
					seed, name, fb, precise[seed][name])
			}
		}
	}
}
