package conformance

// Shrinking: when a scenario fails an oracle, the harness greedily tries
// smaller variants — dropping apps one at a time, halving cores and
// duration, stripping bursts, priorities and the bandwidth target — and
// keeps any variant that still fails. The result is a locally minimal
// reproducer: no single shrink step applied to it still reproduces the
// violation. Shrinking preserves the seed, so the minimal scenario's
// replay command reproduces the failure deterministically.

// shrinkCandidates returns the next generation of strictly smaller
// scenarios, most aggressive first.
func shrinkCandidates(s Scenario) []Scenario {
	var out []Scenario
	// Drop each app (keep at least one).
	if len(s.Apps) > 1 {
		for i := range s.Apps {
			c := s.clone()
			c.Apps = append(c.Apps[:i:i], c.Apps[i+1:]...)
			out = append(out, c)
		}
	}
	// Halve cores.
	if s.Cores > 1 {
		c := s.clone()
		c.Cores /= 2
		out = append(out, c)
	}
	// Halve duration (warmup scales with it).
	if s.DurationUs/2 >= minDurationUs {
		c := s.clone()
		c.DurationUs /= 2
		c.WarmupUs = c.DurationUs / 5
		out = append(out, c)
	}
	// Strip features one at a time.
	if s.BWTargetFrac != 0 {
		c := s.clone()
		c.BWTargetFrac = 0
		out = append(out, c)
	}
	for i := range s.Apps {
		if s.Apps[i].Burst != nil {
			c := s.clone()
			c.Apps[i].Burst = nil
			out = append(out, c)
		}
		if s.Apps[i].Priority != 0 {
			c := s.clone()
			c.Apps[i].Priority = 0
			out = append(out, c)
		}
	}
	return out
}

// Shrink greedily minimises sc while stillFails keeps returning true for
// the candidate. maxSteps bounds the number of candidate evaluations (each
// evaluation typically re-runs the full scheduler battery). It returns the
// smallest failing scenario found and how many candidates were tried.
func Shrink(sc Scenario, stillFails func(Scenario) bool, maxSteps int) (Scenario, int) {
	if maxSteps <= 0 {
		maxSteps = 200
	}
	tried := 0
	for {
		adopted := false
		for _, cand := range shrinkCandidates(sc) {
			if tried >= maxSteps {
				return sc, tried
			}
			tried++
			if stillFails(cand) {
				sc = cand
				adopted = true
				break // restart candidate generation from the smaller scenario
			}
		}
		if !adopted {
			return sc, tried
		}
	}
}

// SameOracleFails builds the usual shrinking predicate: a candidate counts
// as failing only if the *same* (system, oracle) pair fires, so the
// shrinker follows one bug instead of wandering to a different one on a
// smaller scenario. Run errors count as not-failing (the candidate is
// rejected).
func SameOracleFails(v Violation) func(Scenario) bool {
	return func(cand Scenario) bool {
		rep, err := RunScenario(cand)
		if err != nil {
			return false
		}
		for _, cv := range rep.Violations {
			if cv.System == v.System && cv.Oracle == v.Oracle {
				return true
			}
		}
		return false
	}
}
