package conformance

import (
	"strings"
	"testing"

	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/trace"
	"vessel/internal/workload"
)

// TestGeneratedScenariosConform is the in-tree slice of the conformance
// sweep: a fixed seed set, every scheduler, every oracle. The full
// 50-seed sweep runs in CI via cmd/conformancebench.
func TestGeneratedScenariosConform(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		sc := Generate(seed, true)
		rep, err := RunScenario(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d: %s\nreplay: %s", seed, v, ReplayCommand(sc, ""))
		}
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		a, b := Generate(seed, true), Generate(seed, true)
		if a.Encode() != b.Encode() {
			t.Fatalf("seed %d: generator not deterministic", seed)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated scenario invalid: %v", seed, err)
		}
		full := Generate(seed, false)
		if err := full.Validate(); err != nil {
			t.Fatalf("seed %d: full scenario invalid: %v", seed, err)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		sc := Generate(seed, true)
		dec, err := Decode(sc.Encode())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if dec.Encode() != sc.Encode() {
			t.Fatalf("seed %d: round trip changed scenario:\n%s\n%s", seed, sc.Encode(), dec.Encode())
		}
	}
}

func TestDecodeRejectsDegenerateScenarios(t *testing.T) {
	bad := []struct{ name, enc string }{
		{"garbage", "not json"},
		{"trailing", `{"seed":1,"cores":1,"duration_us":100,"warmup_us":0,"apps":[{"name":"a","kind":"B"}]} extra`},
		{"unknown-field", `{"seed":1,"cores":1,"duration_us":100,"warmup_us":0,"apps":[{"name":"a","kind":"B"}],"bogus":1}`},
		{"zero-cores", `{"seed":1,"cores":0,"duration_us":100,"warmup_us":0,"apps":[{"name":"a","kind":"B"}]}`},
		{"huge-cores", `{"seed":1,"cores":1000,"duration_us":100,"warmup_us":0,"apps":[{"name":"a","kind":"B"}]}`},
		{"no-apps", `{"seed":1,"cores":1,"duration_us":100,"warmup_us":0,"apps":[]}`},
		{"dup-names", `{"seed":1,"cores":1,"duration_us":100,"warmup_us":0,"apps":[{"name":"a","kind":"B"},{"name":"a","kind":"B"}]}`},
		{"bad-kind", `{"seed":1,"cores":1,"duration_us":100,"warmup_us":0,"apps":[{"name":"a","kind":"X"}]}`},
		{"bad-dist", `{"seed":1,"cores":1,"duration_us":100,"warmup_us":0,"apps":[{"name":"a","kind":"L","dist":"zipf","load_frac":0.5}]}`},
		{"zero-load", `{"seed":1,"cores":1,"duration_us":100,"warmup_us":0,"apps":[{"name":"a","kind":"L","dist":"silo"}]}`},
		{"bw-one", `{"seed":1,"cores":1,"duration_us":100,"warmup_us":0,"bw_target_frac":1,"apps":[{"name":"a","kind":"B"}]}`},
		{"mixed-fields", `{"seed":1,"cores":1,"duration_us":100,"warmup_us":0,"apps":[{"name":"a","kind":"L","dist":"silo","load_frac":0.5,"bw_demand":3}]}`},
		{"long-duration", `{"seed":1,"cores":1,"duration_us":99000000,"warmup_us":0,"apps":[{"name":"a","kind":"B"}]}`},
		{"neg-warmup", `{"seed":1,"cores":1,"duration_us":100,"warmup_us":-5,"apps":[{"name":"a","kind":"B"}]}`},
	}
	for _, tc := range bad {
		if _, err := Decode(tc.enc); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestPlantedViolationShrinksAndReplays is the end-to-end acceptance
// property: plant a bug via the sched oracle hook, watch an oracle catch
// it, shrink to a minimal scenario, and replay the minimal scenario to the
// same violation.
func TestPlantedViolationShrinksAndReplays(t *testing.T) {
	// The plant: VESSEL over-reports completions for every L-app —
	// exactly the kind of accounting bug differential testing is for.
	remove := sched.RegisterPostRunHook(func(cfg sched.Config, r *sched.Result) {
		if r.Scheduler != "VESSEL" {
			return
		}
		for i := range r.Apps {
			if r.Apps[i].Kind == workload.LatencyCritical {
				r.Apps[i].Completed = r.Apps[i].Offered + 1
			}
		}
	})
	defer remove()

	// Seed 3 (quick) generates a multi-app scenario, so there is room to
	// shrink. If generation ever changes, pick any seed with ≥2 apps.
	var sc Scenario
	for seed := uint64(1); ; seed++ {
		sc = Generate(seed, true)
		hasL := false
		for _, a := range sc.Apps {
			if a.Kind == "L" {
				hasL = true
			}
		}
		if hasL && len(sc.Apps) >= 2 {
			break
		}
		if seed > 100 {
			t.Fatal("no multi-app scenario in the first 100 seeds")
		}
	}

	rep, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	var planted *Violation
	for i, v := range rep.Violations {
		if v.System == "VESSEL" && v.Oracle == "completed-le-offered" {
			planted = &rep.Violations[i]
			break
		}
	}
	if planted == nil {
		t.Fatalf("planted violation not caught; got %v", rep.Violations)
	}

	shrunk, tried := Shrink(sc, SameOracleFails(*planted), 60)
	if tried == 0 {
		t.Fatal("shrinker tried nothing")
	}
	if len(shrunk.Apps) > len(sc.Apps) || shrunk.Cores > sc.Cores || shrunk.DurationUs > sc.DurationUs {
		t.Fatalf("shrunk scenario grew: %s", shrunk.Encode())
	}
	if len(shrunk.Apps) != 1 || shrunk.Cores != 1 {
		t.Fatalf("expected shrink to 1 app / 1 core for an every-L-app bug, got %s", shrunk.Encode())
	}

	// The replay token reproduces the same violation deterministically.
	dec, err := Decode(shrunk.Encode())
	if err != nil {
		t.Fatalf("replay token does not decode: %v", err)
	}
	rep1, err := RunScenario(dec)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := RunScenario(dec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Report{rep1, rep2} {
		found := false
		for _, v := range r.Violations {
			if v.System == planted.System && v.Oracle == planted.Oracle {
				found = true
			}
		}
		if !found {
			t.Fatalf("replay did not reproduce the violation: %v", r.Violations)
		}
	}
	if cmd := ReplayCommand(shrunk, "-plant overcount"); !strings.Contains(cmd, "-replay") || !strings.Contains(cmd, "-plant") {
		t.Fatalf("replay command malformed: %s", cmd)
	}
}

// TestDeterminismOracleCatchesNondeterminism plants a hook that perturbs
// every other run and checks the determinism oracle fires.
func TestDeterminismOracleCatchesNondeterminism(t *testing.T) {
	flip := false
	remove := sched.RegisterPostRunHook(func(cfg sched.Config, r *sched.Result) {
		if r.Scheduler != "Linux" {
			return
		}
		flip = !flip
		if flip {
			r.Switches++
		}
	})
	defer remove()
	rep, err := RunScenario(Generate(1, true))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.System == "Linux" && v.Oracle == "determinism" {
			found = true
		}
	}
	if !found {
		t.Fatalf("determinism oracle silent: %v", rep.Violations)
	}
}

func TestCheckEventsLifecycle(t *testing.T) {
	ev := func(t sim.Time, name, detail string) trace.Event {
		return trace.Event{T: t, Name: name, Detail: detail}
	}
	good := []trace.Event{
		ev(10, "contain.fault", "core=0 uproc=a addr=0x1 kind=1"),
		ev(20, "reclaim", "uproc=a key=3"),
		ev(30, "restart.schedule", "uproc=a backoff=1µs"),
		ev(40, "restart", "uproc=a n=1"),
		ev(50, "reclaim", "uproc=a key=3"),
	}
	if vs := CheckEvents(good); len(vs) != 0 {
		t.Fatalf("clean log flagged: %v", vs)
	}
	cases := []struct {
		name   string
		events []trace.Event
		oracle string
	}{
		{"time-backwards", []trace.Event{ev(20, "x", ""), ev(10, "y", "")}, "event-order"},
		{"double-reclaim", []trace.Event{
			ev(10, "reclaim", "uproc=a key=3"),
			ev(20, "reclaim", "uproc=a key=3"),
		}, "pkey-lifecycle"},
		{"restart-of-live", []trace.Event{ev(10, "restart", "uproc=a n=1")}, "pkey-lifecycle"},
		{"key-out-of-range", []trace.Event{ev(10, "reclaim", "uproc=a key=16")}, "pkey-range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vs := CheckEvents(tc.events)
			for _, v := range vs {
				if v.Oracle == tc.oracle {
					return
				}
			}
			t.Fatalf("oracle %s silent: %v", tc.oracle, vs)
		})
	}
}

func TestShrinkStopsAtFixpointAndBudget(t *testing.T) {
	sc := Generate(3, true)
	// A predicate that always fails shrinks to the floor.
	min, _ := Shrink(sc, func(Scenario) bool { return true }, 500)
	if len(min.Apps) != 1 || min.Cores != 1 || min.DurationUs/2 >= minDurationUs {
		t.Fatalf("always-failing predicate did not reach the floor: %s", min.Encode())
	}
	if min.BWTargetFrac != 0 {
		t.Fatalf("bw target survived: %s", min.Encode())
	}
	for _, a := range min.Apps {
		if a.Burst != nil || a.Priority != 0 {
			t.Fatalf("features survived: %s", min.Encode())
		}
	}
	if err := min.Validate(); err != nil {
		t.Fatalf("shrunk scenario invalid: %v", err)
	}
	// A zero budget returns the input untouched.
	same, tried := Shrink(sc, func(Scenario) bool { return true }, 1)
	if tried != 1 {
		t.Fatalf("budget ignored: tried %d", tried)
	}
	_ = same
	// A never-failing predicate returns the input.
	orig, _ := Shrink(sc, func(Scenario) bool { return false }, 500)
	if orig.Encode() != sc.Encode() {
		t.Fatal("never-failing predicate changed the scenario")
	}
}
