package conformance

import (
	"bytes"
	"fmt"

	"vessel/internal/harness"
)

// CheckPlanDeterminism is the parallel-determinism oracle: it executes the
// plan twice — once sequentially, once on a pool of `parallel` workers —
// and demands byte-identical canonical results cell by cell. The executor
// promises that results land in plan-order slots regardless of worker
// interleaving; this oracle is what holds it to that promise, the same way
// the per-scheduler determinism oracle holds each sim.Engine to same-seed
// reproducibility. Caches are deliberately absent from both executors: the
// oracle must compare two live runs, not a run to its own cached bytes.
func CheckPlanDeterminism(plan harness.Plan, parallel int) []Violation {
	seq, err := harness.Sequential().RunPlan(plan)
	if err != nil {
		return []Violation{{Oracle: "parallel-determinism", Detail: fmt.Sprintf("sequential run failed: %v", err)}}
	}
	par, err := (&harness.Executor{Parallel: parallel}).RunPlan(plan)
	if err != nil {
		return []Violation{{Oracle: "parallel-determinism", Detail: fmt.Sprintf("parallel run failed: %v", err)}}
	}
	var vs []Violation
	for i := range seq {
		a, b := seq[i].Result.Canonical(), par[i].Result.Canonical()
		if !bytes.Equal(a, b) {
			vs = append(vs, Violation{
				System: plan.Specs[i].Scheduler, Oracle: "parallel-determinism",
				Detail: fmt.Sprintf("plan cell %d (%s seed=%d) differs between -parallel 1 and -parallel %d:\n--- sequential\n%s--- parallel\n%s",
					i, plan.Specs[i].Scheduler, plan.Specs[i].Seed, parallel, a, b),
			})
		}
		if seq[i].Hash != par[i].Hash {
			vs = append(vs, Violation{
				System: plan.Specs[i].Scheduler, Oracle: "parallel-determinism",
				Detail: fmt.Sprintf("plan cell %d hash differs: %s vs %s", i, seq[i].Hash, par[i].Hash),
			})
		}
	}
	return vs
}
