package conformance

import (
	"fmt"

	"vessel/internal/obs/journey"
	"vessel/internal/sched"
	"vessel/internal/sim"
)

// CheckJourney verifies the journey conservation oracle for a run that
// executed with an attached tracer: every finished request journey's
// critical-path segments (queue | run | uintr | gate | data) must sum to
// its measured sojourn *exactly* — not within tolerance — and its span
// tree must be well-formed (dense mint-order IDs, a single root, children
// inside the root's interval, follows-from edges pointing backwards).
// Journey construction makes the identity hold by clamping retroactive
// transitions; this oracle re-derives it from the recorded tree so a
// future instrumentation bug (a missed transition, a double close) cannot
// hide behind the accumulator.
//
// The tracer must be fresh for the run: sharing one tracer across runs
// mixes journeys from different timelines and trips the oracle by design.
func CheckJourney(system string, t *journey.Tracer, res sched.Result) []Violation {
	var out []Violation
	add := func(format string, args ...any) {
		out = append(out, Violation{System: system, Oracle: "journey-conservation", Detail: fmt.Sprintf(format, args...)})
	}
	if !t.Enabled() {
		add("tracer is nil; nothing to check")
		return out
	}
	js := t.Journeys()
	if uint64(len(js)) != t.Minted() {
		add("tracer minted %d journeys but retains %d", t.Minted(), len(js))
	}
	for i, j := range js {
		if j.ID != uint64(i+1) {
			add("journey at index %d has ID %d, want dense mint order %d", i, j.ID, i+1)
		}
		if !j.Finished() {
			continue // requests in flight at run end: excluded by design
		}
		if j.Done < j.Arrive {
			add("journey %d (%s): Done %d before Arrive %d", j.ID, j.Name, int64(j.Done), int64(j.Arrive))
			continue
		}
		// The conservation identity: segments partition the sojourn.
		if got, want := j.Sum(), j.Done.Sub(j.Arrive); got != want {
			add("journey %d (%s): segments sum to %d ns, sojourn is %d ns (Δ %d)",
				j.ID, j.Name, int64(got), int64(want), int64(got-want))
		}
		// Re-derive the per-segment totals from the span tree: the
		// accumulator and the tree must agree.
		var fromTree [journey.NumSegments]sim.Duration
		for k, n := range j.Tree() {
			if n.ID != k {
				add("journey %d node at index %d has ID %d", j.ID, k, n.ID)
			}
			if k == 0 {
				if n.Parent != -1 || n.Start != j.Arrive || n.End != j.Done {
					add("journey %d root node malformed: parent=%d span=[%d,%d] want [-1, %d, %d]",
						j.ID, n.Parent, int64(n.Start), int64(n.End), int64(j.Arrive), int64(j.Done))
				}
				continue
			}
			if n.Parent != 0 {
				add("journey %d node %d: parent %d, want root", j.ID, n.ID, n.Parent)
			}
			if n.Follows >= n.ID {
				add("journey %d node %d: follows-from %d points forward", j.ID, n.ID, n.Follows)
			}
			if n.End < n.Start {
				add("journey %d node %d: negative span [%d,%d]", j.ID, n.ID, int64(n.Start), int64(n.End))
			}
			if n.Start < j.Arrive || n.End > j.Done {
				add("journey %d node %d: span [%d,%d] escapes root [%d,%d]",
					j.ID, n.ID, int64(n.Start), int64(n.End), int64(j.Arrive), int64(j.Done))
			}
			if n.End > n.Start { // closed segment span (instants carry no weight)
				fromTree[n.Seg] += n.End.Sub(n.Start)
			}
		}
		for s := journey.Segment(0); s < journey.NumSegments; s++ {
			if fromTree[s] != j.Segs[s] {
				add("journey %d segment %s: tree says %d ns, accumulator says %d ns",
					j.ID, s, int64(fromTree[s]), int64(j.Segs[s]))
			}
		}
	}
	// A measured run that completed requests must have finished journeys;
	// an instrumentation seam that silently stopped minting would
	// otherwise pass every per-journey check vacuously.
	var completed uint64
	for _, a := range res.Apps {
		completed += uint64(a.Latency.Count)
	}
	a := t.Analyze()
	if completed > 0 && a.Finished == 0 {
		add("run completed %d measured requests but no journey finished", completed)
	}
	return out
}
