package conformance

import (
	"fmt"

	"vessel/internal/obs"
	"vessel/internal/sched"
	"vessel/internal/sim"
)

// CheckProfile verifies the observability conservation law for a run that
// executed with an attached observer: every simulated cycle the scheduler
// accrued must be charged to exactly one (core, occupant, category) bucket,
// so the profiler's per-activity-category totals equal the result's cycle
// breakdown *exactly* — not within tolerance. Both sides flow through
// sched.Accountant.AccrueCore with the same window clipping, so any
// difference means an accrual bypassed the accountant (or was charged
// twice).
//
// The observer must be fresh for the run: sharing one observer across runs
// accumulates charges and trips this oracle by design.
func CheckProfile(system string, o *obs.Observer, res sched.Result) []Violation {
	var out []Violation
	add := func(oracle, format string, args ...any) {
		out = append(out, Violation{System: system, Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
	}
	if !o.Enabled() {
		add("obs-conservation", "observer is nil; nothing to check")
		return out
	}
	totals := o.Profile().CategoryTotals()
	want := [...]struct {
		cat obs.Category
		ns  sim.Duration
	}{
		{obs.CatIdle, res.Cycles.IdleNs},
		{obs.CatApp, res.Cycles.AppNs},
		{obs.CatRuntime, res.Cycles.RuntimeNs},
		{obs.CatKernel, res.Cycles.KernelNs},
		{obs.CatSwitch, res.Cycles.SwitchNs},
	}
	for _, w := range want {
		if totals[w.cat] != w.ns {
			add("obs-conservation", "category %s: profiler charged %d ns, breakdown says %d ns (Δ %d)",
				w.cat, int64(totals[w.cat]), int64(w.ns), int64(totals[w.cat]-w.ns))
		}
	}
	if got, total := o.Profile().ActivityTotal(), res.Cycles.Total(); got != total {
		add("obs-conservation", "activity total %d ns != breakdown total %d ns", int64(got), int64(total))
	}
	return out
}
