package conformance

import (
	"fmt"
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/smas"
	"vessel/internal/vessel"
	"vessel/internal/vpkey"
)

// vpkeyWorker is a park-loop worker with a configurable compute burst —
// every gate call pushes through the worker's own stack, so a key whose
// refill went missing would fault on the very first crossing.
func vpkeyWorker(mg *vessel.Manager, name string, work int64) *smas.Program {
	a := cpu.NewAssembler()
	a.Label("loop")
	a.Emit(cpu.Work{N: work})
	a.Emit(cpu.Call{Target: mg.Domain.GatePark.Entry})
	a.JmpTo("loop")
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

// runDense launches n park-loop workers on a manager's two cores and
// drives both cores timesliced, then destroys every third worker and
// reaps. It is the standard battery body for the lifecycle oracle tests.
func runDense(t *testing.T, mg *vessel.Manager, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("w%03d", i)
		if _, err := mg.Launch(name, vpkeyWorker(mg, name, 200+int64(i)*37), i%2); err != nil {
			t.Fatalf("launch %s: %v", name, err)
		}
	}
	for core := 0; core < 2; core++ {
		if err := mg.Start(core); err != nil {
			t.Fatal(err)
		}
		if _, err := mg.RunTimesliced(core, 40_000, 701); err != nil {
			t.Fatalf("core %d: %v", core, err)
		}
	}
	for i := 0; i < n; i += 3 {
		if err := mg.Destroy(fmt.Sprintf("w%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for core := 0; core < 2; core++ {
		mg.Step(core, 4000)
	}
	if _, err := mg.Reap(); err != nil {
		t.Fatal(err)
	}
}

func TestVPkeyLifecycleOracleCleanVirtualRun(t *testing.T) {
	mg, err := vessel.NewManagerVirtual(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 40 workers on 13 slots: allocation alone forces evictions, and the
	// timesliced run forces refills at activation.
	runDense(t, mg, 40)
	vt := mg.Domain.S.VKeys
	if vt.Evictions == 0 || vt.Refills == 0 {
		t.Fatalf("battery did not exercise eviction: evictions=%d refills=%d", vt.Evictions, vt.Refills)
	}
	if vs := CheckVPkeyLifecycle("virtual", mg.Domain.S); len(vs) != 0 {
		t.Fatalf("clean virtual run flagged:\n%v", vs)
	}
	if vs := CheckEvents(mg.Events().Events()); len(vs) != 0 {
		t.Fatalf("event stream flagged:\n%v", vs)
	}
}

func TestVPkeyLifecycleOracleCleanDirectRun(t *testing.T) {
	mg, err := vessel.NewManager(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	runDense(t, mg, 10)
	if vs := CheckVPkeyLifecycle("direct", mg.Domain.S); len(vs) != 0 {
		t.Fatalf("clean direct run flagged:\n%v", vs)
	}
}

func TestVPkeyLifecycleOracleFlagsLeakedSlot(t *testing.T) {
	for _, mode := range []string{"direct", "virtual"} {
		t.Run(mode, func(t *testing.T) {
			var mg *vessel.Manager
			var err error
			if mode == "virtual" {
				mg, err = vessel.NewManagerVirtual(2, nil)
			} else {
				mg, err = vessel.NewManager(2, nil)
			}
			if err != nil {
				t.Fatal(err)
			}
			runDense(t, mg, 6)
			// A lost pkey_free: the allocator holds a key no region (and
			// no table slot) owns.
			if _, err := mg.Domain.S.Keys.Alloc(); err != nil {
				t.Fatal(err)
			}
			vs := CheckVPkeyLifecycle(mode, mg.Domain.S)
			found := false
			for _, v := range vs {
				if v.Oracle == "slot-leak" {
					found = true
				}
			}
			if !found {
				t.Fatalf("leaked key not flagged: %v", vs)
			}
		})
	}
}

func TestVPkeyLifecycleOracleFlagsBogusAttribution(t *testing.T) {
	mg, err := vessel.NewManagerVirtual(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	runDense(t, mg, 20)
	vt := mg.Domain.S.VKeys
	// Forge a record naming a never-issued virtual key: the attribution
	// audit must notice both the impossible key and the unbalanced sum.
	vt.RetagLog = append(vt.RetagLog, vpkey.Retag{VKey: 9999, Slot: 3, Pages: 7, Reason: "evict", Core: 0})
	vs := CheckVPkeyLifecycle("virtual", mg.Domain.S)
	found := false
	for _, v := range vs {
		if v.Oracle == "retag-attribution" {
			found = true
		}
	}
	if !found {
		t.Fatalf("forged attribution not flagged: %v", vs)
	}
}

func TestVPkeyDensityBeyondHardwareKeys(t *testing.T) {
	// The acceptance demo at package level runs ≥100 uProcesses through
	// the cluster facade; this is the manager-level counterpart pinning
	// the same property where the oracles live: far more live keys than
	// hardware slots, all isolation invariants intact.
	mg, err := vessel.NewManagerVirtual(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 120
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("dense%03d", i)
		if _, err := mg.Launch(name, vpkeyWorker(mg, name, 150), i%2); err != nil {
			t.Fatalf("launch %d: %v", i, err)
		}
	}
	for core := 0; core < 2; core++ {
		if err := mg.Start(core); err != nil {
			t.Fatal(err)
		}
		if _, err := mg.RunTimesliced(core, 60_000, 701); err != nil {
			t.Fatalf("core %d: %v", core, err)
		}
	}
	s := mg.Domain.S
	if got := s.LiveRegionCount(); got != n {
		t.Fatalf("live regions = %d, want %d", got, n)
	}
	if s.VKeys.Resident() > int(smas.RuntimeKey)-1 {
		t.Fatalf("resident = %d exceeds the hardware slot budget", s.VKeys.Resident())
	}
	if vs := CheckVPkeyLifecycle("dense", s); len(vs) != 0 {
		t.Fatalf("dense run flagged:\n%v", vs)
	}
}
