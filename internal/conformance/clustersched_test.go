package conformance

import (
	"bytes"
	"sync"
	"testing"

	"vessel/internal/clustersched"
	"vessel/internal/sim"
)

// clusterClient actuates upcalls immediately, tracking online cores so a
// broken hold-back would surface as a core online in two domains.
type clusterClient struct{ online map[int]bool }

func (c *clusterClient) CoreGranted(core int, at sim.Time) error {
	c.online[core] = true
	return nil
}

func (c *clusterClient) CoreRevoked(core int, at sim.Time) (int, error) {
	delete(c.online, core)
	return 1, nil
}

// runClusterScenario drives a full demand-shift story against a Sched:
// bootstrap, a greedy phase (d0 hoards, d1 moderate, d2 idle), then a
// reversal (d0 drains and yields, d2 surges) so the op history contains
// grants, yield revokes, and revoke→regrant handoffs of the same core.
// The final Schedule is left undelivered to exercise pending accounting.
func runClusterScenario(policy string) *clustersched.Report {
	p, err := clustersched.NewNamed(policy)
	if err != nil {
		panic(err)
	}
	const domains, cores = 3, 12
	s, err := clustersched.New(clustersched.Config{
		Topo:    clustersched.Topology{Cores: cores, CoresPerNode: 4},
		Domains: domains,
	}, p)
	if err != nil {
		panic(err)
	}
	clients := make([]*clusterClient, domains)
	for d := range clients {
		clients[d] = &clusterClient{online: make(map[int]bool)}
	}
	deliver := func(at sim.Time) {
		// Two passes: a regrant held back behind an unactuated revoke
		// unblocks on the second sweep.
		for pass := 0; pass < 2; pass++ {
			for d := 0; d < domains; d++ {
				if _, err := s.Deliver(d, at, clients[d]); err != nil {
					panic(err)
				}
			}
		}
	}
	now := sim.Time(0)
	if _, err := s.Bootstrap(1, now); err != nil {
		panic(err)
	}
	deliver(now)

	// Greedy phase.
	s.RequestCores(0, 8, 1)
	s.RequestCores(1, 3, 1)
	s.SetSignals(0, 16, 0.4)
	s.SetSignals(1, 6, 0.1)
	s.SetSignals(2, 0, 0)
	for i := 0; i < 4; i++ {
		now = sim.Time(10 + 10*i)
		s.Schedule(now)
		deliver(now + 1)
	}

	// Reversal: d0 drains to two cores, d2 surges.
	now += 10
	for {
		g := s.Granted(0)
		if len(g) <= 2 {
			break
		}
		if err := s.YieldCore(0, g[len(g)-1], now); err != nil {
			panic(err)
		}
		now++
	}
	deliver(now)
	s.RequestCores(2, 6, now)
	s.SetSignals(0, 1, 0)
	s.SetSignals(2, 12, 0.5)
	for i := 0; i < 4; i++ {
		now += 10
		s.Schedule(now)
		deliver(now + 1)
	}

	// Last demand twitch, committed but never delivered.
	s.RequestCores(1, 2, now+5)
	s.Schedule(now + 6)
	return s.Report()
}

func hasOracle(vs []Violation, oracle string) bool {
	for _, v := range vs {
		if v.Oracle == oracle {
			return true
		}
	}
	return false
}

// copyReport clones the fields CheckClusterSched reads so tampering
// cannot leak between subtests.
func copyReport(r *clustersched.Report) *clustersched.Report {
	cp := *r
	cp.Ops = append([]clustersched.Op(nil), r.Ops...)
	cp.FinalOwner = append([]int(nil), r.FinalOwner...)
	return &cp
}

func TestCheckClusterSchedCleanSweep(t *testing.T) {
	for _, policy := range clustersched.Names() {
		rep := runClusterScenario(policy)
		if len(rep.Ops) == 0 {
			t.Fatalf("%s: scenario produced no ops", policy)
		}
		if rep.Revokes == 0 {
			t.Fatalf("%s: scenario produced no revokes — handoff path untested", policy)
		}
		if vs := CheckClusterSched("clustersched/"+policy, rep); len(vs) != 0 {
			for _, v := range vs {
				t.Errorf("%s", v)
			}
			t.Fatalf("%s: %d violations on a clean run", policy, len(vs))
		}
	}
}

func TestCheckClusterSchedTampers(t *testing.T) {
	base := runClusterScenario("fairshare")
	if vs := CheckClusterSched("base", base); len(vs) != 0 {
		t.Fatalf("baseline not clean: %v", vs)
	}
	cases := []struct {
		name, oracle string
		mutate       func(r *clustersched.Report) bool
	}{
		{"double-grant", "double-grant", func(r *clustersched.Report) bool {
			// Point a later grant at an earlier grant's core while that
			// core is still owned on the replayed ledger.
			owned := map[int]bool{}
			first := -1
			for i, op := range r.Ops {
				switch op.Kind {
				case clustersched.Grant:
					if first >= 0 && owned[r.Ops[first].Core] && i != first {
						r.Ops[i].Core = r.Ops[first].Core
						return true
					}
					if first < 0 {
						first = i
					}
					owned[op.Core] = true
				case clustersched.Revoke:
					owned[op.Core] = false
				}
			}
			return false
		}},
		{"revoke-owner", "revoke-owner", func(r *clustersched.Report) bool {
			for i, op := range r.Ops {
				if op.Kind == clustersched.Revoke {
					r.Ops[i].Domain = (op.Domain + 1) % r.Domains
					return true
				}
			}
			return false
		}},
		{"final-owner", "final-owner", func(r *clustersched.Report) bool {
			r.FinalOwner[0] = (r.FinalOwner[0]+2)%r.Domains + 1
			return true
		}},
		{"tally", "tally", func(r *clustersched.Report) bool {
			r.Grants++
			return true
		}},
		{"delivery", "delivery", func(r *clustersched.Report) bool {
			r.PendingUpcalls++
			return true
		}},
		{"actuation-time", "actuation-time", func(r *clustersched.Report) bool {
			for i, op := range r.Ops {
				if op.Delivered && op.At > 0 {
					r.Ops[i].DeliveredAt = op.At - 1
					return true
				}
			}
			return false
		}},
		{"regrant-order", "regrant-order", func(r *clustersched.Report) bool {
			// Find a delivered revoke followed by a delivered grant of the
			// same core and pull the grant's actuation before the revoke's.
			lastRevoke := map[int]int{}
			for i, op := range r.Ops {
				switch op.Kind {
				case clustersched.Revoke:
					if op.Delivered {
						lastRevoke[op.Core] = i
					}
				case clustersched.Grant:
					if j, ok := lastRevoke[op.Core]; ok && op.Delivered {
						r.Ops[i].DeliveredAt = r.Ops[j].DeliveredAt - 1
						return true
					}
				}
			}
			return false
		}},
		{"op-order", "op-order", func(r *clustersched.Report) bool {
			r.Ops[0].Seq, r.Ops[1].Seq = r.Ops[1].Seq, r.Ops[0].Seq
			return true
		}},
		{"op-range", "op-range", func(r *clustersched.Report) bool {
			r.Ops[0].Core = r.Cores + 7
			return true
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := copyReport(base)
			if !tc.mutate(rep) {
				t.Fatalf("scenario lacks material for the %s tamper", tc.name)
			}
			vs := CheckClusterSched("tampered", rep)
			if !hasOracle(vs, tc.oracle) {
				t.Fatalf("oracle %q did not fire; got %v", tc.oracle, vs)
			}
		})
	}
}

// TestCheckClusterSchedParallelDeterminism reruns the same scenario
// concurrently and requires byte-identical canonical reports — the
// witness CheckClusterSched certifies must not depend on goroutine
// interleaving or test parallelism.
func TestCheckClusterSchedParallelDeterminism(t *testing.T) {
	want := runClusterScenario("fairshare").Canonical()
	const width = 8
	got := make([][]byte, width)
	var wg sync.WaitGroup
	for i := 0; i < width; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = runClusterScenario("fairshare").Canonical()
		}(i)
	}
	wg.Wait()
	for i := 0; i < width; i++ {
		if !bytes.Equal(want, got[i]) {
			t.Fatalf("run %d diverged from the serial run (%d vs %d bytes)",
				i, len(got[i]), len(want))
		}
	}
}
