package conformance

import (
	"bytes"
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/sched"
)

// TestFastPathByteIdentical runs the standard seed sweep through every
// scheduler twice — simulated-MMU fast path enabled and disabled — and
// requires byte-identical canonical results. The fast path (software TLB,
// decoded-fetch cache, bulk batching) must be pure mechanism: if it ever
// leaks into an observable number, this differential catches it at the
// same granularity the golden files use. The sweep also pins down the
// sim-engine event free-list: recycled event storage must not perturb
// firing order anywhere in the layer-2 models.
//
// Not parallel: DisableFastPath is a package-level toggle that must only
// change while no simulation is running.
func TestFastPathByteIdentical(t *testing.T) {
	if cpu.DisableFastPath {
		t.Fatal("fast path must be the default")
	}
	seeds := []uint64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	sweep := func() map[uint64]map[string][]byte {
		out := make(map[uint64]map[string][]byte)
		for _, seed := range seeds {
			sc := Generate(seed, true)
			out[seed] = make(map[string][]byte)
			for _, s := range Systems() {
				res, err := sched.Run(s, sc.Config())
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, s.Name(), err)
				}
				out[seed][s.Name()] = res.Canonical()
			}
		}
		return out
	}
	fast := sweep()
	cpu.DisableFastPath = true
	defer func() { cpu.DisableFastPath = false }()
	slow := sweep()
	for _, seed := range seeds {
		for name, fb := range fast[seed] {
			if !bytes.Equal(fb, slow[seed][name]) {
				t.Errorf("seed %d %s: canonical result differs with fast path off\n--- fast\n%s--- slow\n%s",
					seed, name, fb, slow[seed][name])
			}
		}
	}
}
