package conformance

import (
	"bytes"
	"runtime"
	"testing"
)

// TestDeterminismAcrossGOMAXPROCS is the regression guard for the
// paper-repro property that a run is a pure function of its config and
// seed: every scheduler, run twice at GOMAXPROCS=1 and twice at the
// machine's parallelism, must produce byte-identical canonical results.
// The simulators are single-threaded by construction, so a difference
// here means someone introduced map-iteration order, goroutines, or other
// scheduling-dependent state into a hot path.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	scenarios := []Scenario{Generate(11, true), Generate(12, true)}
	if testing.Short() {
		scenarios = scenarios[:1]
	}
	for _, sc := range scenarios {
		// name → canonical bytes observed at each parallelism level
		baseline := make(map[string][]byte)
		for _, procs := range []int{1, runtime.NumCPU()} {
			prev := runtime.GOMAXPROCS(procs)
			for _, s := range Systems() {
				res, err := s.Run(sc.Config())
				if err != nil {
					runtime.GOMAXPROCS(prev)
					t.Fatalf("seed %d %s: %v", sc.Seed, s.Name(), err)
				}
				got := res.Canonical()
				if want, ok := baseline[s.Name()]; !ok {
					baseline[s.Name()] = got
				} else if !bytes.Equal(want, got) {
					runtime.GOMAXPROCS(prev)
					t.Errorf("seed %d %s: result differs at GOMAXPROCS=%d:\n--- first\n%s--- now\n%s",
						sc.Seed, s.Name(), procs, want, got)
				}
			}
			runtime.GOMAXPROCS(prev)
		}
	}
}
