package conformance

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/sim"
	"vessel/internal/smas"
	"vessel/internal/vessel"
)

func integrationParkLoop(mg *vessel.Manager, name string) *smas.Program {
	a := cpu.NewAssembler()
	a.Label("loop")
	a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	a.Emit(cpu.Call{Target: mg.Domain.GatePark.Entry})
	a.JmpTo("loop")
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

func integrationCrasher(mg *vessel.Manager, name string) *smas.Program {
	a := cpu.NewAssembler()
	a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	a.Emit(cpu.Call{Target: mg.Domain.GatePark.Entry})
	a.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: cpu.Word(smas.RuntimeBase)})
	a.Emit(cpu.Store{Src: cpu.RDX, Base: cpu.RCX})
	a.Emit(cpu.Halt{})
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

// TestChaosTraceSatisfiesLifecycleOracles runs a real supervised
// crash-loop under the VESSEL manager and feeds its containment trace to
// CheckEvents: the pkey/region lifecycle oracle must hold on the log the
// production code actually emits, not just on hand-written fixtures.
func TestChaosTraceSatisfiesLifecycleOracles(t *testing.T) {
	mg, err := vessel.NewManager(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Launch("good", integrationParkLoop(mg, "good"), 0); err != nil {
		t.Fatal(err)
	}
	_, err = mg.Supervise("crash", func() *smas.Program { return integrationCrasher(mg, "crash") }, 0,
		vessel.RestartPolicy{Backoff: 2 * sim.Microsecond, MaxBackoff: 8 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Start(0); err != nil {
		t.Fatal(err)
	}
	rep, err := mg.RunChaos(vessel.ChaosConfig{Steps: 120_000, Quantum: 500})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts == 0 {
		t.Fatal("chaos run exercised no restarts; the lifecycle oracle saw nothing")
	}
	events := mg.Events().Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	if vs := CheckEvents(events); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("%s", v)
		}
	}
}
