package conformance

// Cluster-scheduler oracle (DESIGN.md §16): replays a clustersched
// Report's committed operation history against an independent ledger and
// checks the two-level scheduler's safety properties — no double grants,
// revokes only from the owner, conservation against the final ownership
// map, delivery completeness, and revoke-before-regrant actuation order
// (a core must never be online in two domains at once).

import (
	"fmt"

	"vessel/internal/clustersched"
)

// CheckClusterSched replays rep.Ops and returns every violated property.
func CheckClusterSched(system string, rep *clustersched.Report) []Violation {
	var out []Violation
	add := func(oracle, format string, args ...any) {
		out = append(out, Violation{System: system, Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
	}
	if rep == nil {
		add("report", "nil report")
		return out
	}

	owner := make([]int, rep.Cores)
	for i := range owner {
		owner[i] = -1
	}
	// lastRevoke[core] remembers the most recent replayed revoke of a
	// core, for the regrant ordering check.
	lastRevoke := make([]int, rep.Cores)
	for i := range lastRevoke {
		lastRevoke[i] = -1
	}
	grants, revokes, delivered := 0, 0, 0
	for i, op := range rep.Ops {
		if op.Seq != i {
			add("op-order", "op %d carries seq %d", i, op.Seq)
		}
		if op.Core < 0 || op.Core >= rep.Cores {
			add("op-range", "op %d core %d outside pool of %d", i, op.Core, rep.Cores)
			continue
		}
		if op.Domain < 0 || op.Domain >= rep.Domains {
			add("op-range", "op %d domain %d outside %d domains", i, op.Domain, rep.Domains)
			continue
		}
		switch op.Kind {
		case clustersched.Grant:
			grants++
			if owner[op.Core] != -1 {
				add("double-grant", "op %d grants core %d to domain %d while domain %d owns it",
					i, op.Core, op.Domain, owner[op.Core])
			}
			owner[op.Core] = op.Domain
			// Revoke-before-regrant: a delivered grant must actuate after
			// the previous owner's revoke actuated, never before.
			if r := lastRevoke[op.Core]; r >= 0 && op.Delivered {
				prev := rep.Ops[r]
				if !prev.Delivered {
					add("regrant-order", "op %d (grant core %d) delivered while revoke op %d is still pending",
						i, op.Core, r)
				} else if op.DeliveredAt < prev.DeliveredAt {
					add("regrant-order", "op %d (grant core %d) actuated at %d before revoke op %d at %d",
						i, op.Core, int64(op.DeliveredAt), r, int64(prev.DeliveredAt))
				}
			}
		case clustersched.Revoke:
			revokes++
			if owner[op.Core] != op.Domain {
				add("revoke-owner", "op %d revokes core %d from domain %d but the ledger says %d",
					i, op.Core, op.Domain, owner[op.Core])
			}
			owner[op.Core] = -1
			lastRevoke[op.Core] = i
		default:
			add("op-kind", "op %d has unknown kind %d", i, op.Kind)
		}
		if op.Delivered {
			delivered++
			if op.DeliveredAt < op.At {
				add("actuation-time", "op %d delivered at %d before its commit at %d",
					i, int64(op.DeliveredAt), int64(op.At))
			}
		}
	}

	// Conservation: the replayed ledger must equal the reported one.
	if len(rep.FinalOwner) != rep.Cores {
		add("final-owner", "final owner map has %d entries for %d cores", len(rep.FinalOwner), rep.Cores)
	} else {
		for c, d := range owner {
			if rep.FinalOwner[c] != d {
				add("final-owner", "core %d: replay says domain %d, report says %d", c, d, rep.FinalOwner[c])
			}
		}
	}

	// Tallies must be derived from the same history the oracle replayed.
	if grants != rep.Grants || revokes != rep.Revokes {
		add("tally", "replayed %d grants / %d revokes, report says %d / %d",
			grants, revokes, rep.Grants, rep.Revokes)
	}
	if delivered != rep.Delivered {
		add("tally", "replayed %d delivered ops, report says %d", delivered, rep.Delivered)
	}
	// Delivery completeness: every committed op is either actuated or
	// accounted for as a pending upcall.
	if undelivered := len(rep.Ops) - delivered; undelivered != rep.PendingUpcalls {
		add("delivery", "%d committed ops undelivered but %d upcalls reported pending",
			undelivered, rep.PendingUpcalls)
	}
	return out
}
