package conformance

import (
	"fmt"

	"vessel/internal/mem"
	"vessel/internal/mpk"
	"vessel/internal/smas"
)

// CheckVPkeyLifecycle audits a domain's protection-key state against the
// virtualization invariants (DESIGN.md §14). The layer silently breaking
// isolation would invalidate every experiment above it, so the oracle
// re-derives each property from the ground truth — the page table and the
// hardware-key allocator — rather than trusting the table's own counters:
//
//   - "slot-unique": no two live virtual keys hold the same hardware
//     slot, and the table's slot index is the exact inverse of its entry
//     index;
//   - "eviction-fence": every page of a resident key carries its slot;
//     every page of an evicted key carries the fence (runtime) key, i.e.
//     is inaccessible to every application PKRU until refill;
//   - "retag-attribution": every re-tag the table performed is accounted
//     for in the attribution log (when the bounded log did not overflow),
//     with a valid reason and a virtual key the table actually issued;
//   - "slot-leak": the allocator and the table agree exactly — every
//     in-use app-range key is held by a live virtual key and vice versa,
//     so alloc/free/reap cycles leak nothing in either direction.
//
// On a direct-mode SMAS it degrades to the phantom-key audit: every
// in-use app key must back a live region.
func CheckVPkeyLifecycle(system string, s *smas.SMAS) []Violation {
	var out []Violation
	add := func(oracle, format string, args ...any) {
		out = append(out, Violation{System: system, Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
	}

	if !s.Virtual() {
		// Direct mode: the PR 4 phantom-key audit. RegionKeys is the
		// owner set; anything else in use in the app range is a leak.
		owned := make(map[mpk.PKey]bool)
		for _, k := range s.RegionKeys() {
			owned[k] = true
		}
		for k := mpk.PKey(1); k < smas.RuntimeKey; k++ {
			if s.Keys.InUse(k) && !owned[k] {
				add("slot-leak", "key %d in use but no live region owns it", k)
			}
			if owned[k] && !s.Keys.InUse(k) {
				add("slot-leak", "region holds key %d the allocator thinks is free", k)
			}
		}
		return out
	}

	t := s.VKeys
	live := t.LiveInfo()

	// slot-unique: resident slots are distinct, in the app range, and the
	// table's reverse index agrees.
	slots := make(map[mpk.PKey]int) // slot → vkey
	resident := 0
	for _, e := range live {
		if e.Slot == 0 {
			continue
		}
		resident++
		if e.Slot >= smas.RuntimeKey {
			add("slot-unique", "virtual key %d holds reserved key %d", e.VKey, e.Slot)
		}
		if prev, dup := slots[e.Slot]; dup {
			add("slot-unique", "virtual keys %d and %d share slot %d", prev, e.VKey, e.Slot)
		}
		slots[e.Slot] = int(e.VKey)
		if owner, ok := t.Owner(e.Slot); !ok || int(owner) != int(e.VKey) {
			add("slot-unique", "slot index says slot %d belongs to %d, entry says %d", e.Slot, owner, e.VKey)
		}
	}
	if resident != t.Resident() {
		add("slot-unique", "%d entries resident but slot index holds %d", resident, t.Resident())
	}

	// eviction-fence: re-derive accessibility from the page table.
	for _, e := range live {
		want := e.Slot
		state := "resident"
		if e.Slot == 0 {
			want = smas.RuntimeKey
			state = "evicted"
		}
		for _, r := range e.Ranges {
			for a := r.Base; a < r.Base+mem.Addr(r.Size); a += mem.PageSize {
				pte, ok := s.AS.Lookup(a)
				if !ok {
					add("eviction-fence", "virtual key %d (%s): page %#x unmapped", e.VKey, state, uint64(a))
					break
				}
				if pte.PKey != want {
					add("eviction-fence", "virtual key %d (%s): page %#x tagged %d, want %d",
						e.VKey, state, uint64(a), pte.PKey, want)
					break
				}
			}
		}
	}

	// retag-attribution: the log balances the counter and names only
	// sane work.
	if t.RetagDropped == 0 {
		var sum uint64
		for i, r := range t.RetagLog {
			sum += uint64(r.Pages)
			if r.Reason != "evict" && r.Reason != "refill" {
				add("retag-attribution", "record %d has reason %q", i, r.Reason)
			}
			if r.VKey <= 0 || r.VKey > t.MaxIssued() {
				add("retag-attribution", "record %d names virtual key %d, never issued", i, r.VKey)
			}
			if r.Pages < 0 {
				add("retag-attribution", "record %d re-tags %d pages", i, r.Pages)
			}
		}
		if sum != t.RetaggedPages {
			add("retag-attribution", "log accounts %d pages, counter says %d", sum, t.RetaggedPages)
		}
		if got, want := uint64(len(t.RetagLog)), t.Evictions+t.Refills; got != want {
			add("retag-attribution", "%d records for %d evictions + %d refills", got, t.Evictions, t.Refills)
		}
	}

	// slot-leak: allocator ↔ table agreement in both directions.
	for k := mpk.PKey(1); k < smas.RuntimeKey; k++ {
		inUse, held := s.Keys.InUse(k), t.Holds(k)
		if inUse && !held {
			add("slot-leak", "key %d in use but the virtual-key table does not hold it", k)
		}
		if held && !inUse {
			add("slot-leak", "table holds slot %d the allocator thinks is free", k)
		}
	}

	return out
}
