package conformance

import (
	"fmt"
	"strconv"
	"strings"

	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/trace"
	"vessel/internal/workload"
)

// Violation is one oracle failure: which system broke which property, and
// how.
type Violation struct {
	System string // scheduler (or component) under test
	Oracle string // short stable identifier, e.g. "cycle-conservation"
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: %s", v.System, v.Oracle, v.Detail)
}

// CheckResult checks the universal invariants every scheduler must uphold
// under every configuration — the conservation laws formerly embedded in
// the experiments package's invariants test, promoted here so any package
// (and the conformance sweep) can call them:
//
//   - the cycle breakdown partitions cores × duration (±2% boundary slack)
//     and no component is negative;
//   - completed ≤ offered for every app, and recorded latencies never
//     exceed completions;
//   - latency quantiles are ordered (p50 ≤ p90 ≤ p99 ≤ p999 ≤ max) and
//     positive when present;
//   - a B-app's wall time never exceeds machine time and its useful time
//     never exceeds its wall time (contention only deflates);
//   - normalized throughputs are non-negative and total ≤ 1 + ε;
//   - the result echoes the config's core count and measured duration.
func CheckResult(system string, cfg sched.Config, res sched.Result) []Violation {
	var out []Violation
	add := func(oracle, format string, args ...any) {
		out = append(out, Violation{System: system, Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
	}

	if res.Cores != cfg.Cores {
		add("config-echo", "result cores %d != config cores %d", res.Cores, cfg.Cores)
	}
	if res.Measured != cfg.Duration {
		add("config-echo", "measured %v != configured duration %v", res.Measured, cfg.Duration)
	}

	machine := sim.Duration(cfg.Cores) * cfg.Duration
	total := res.Cycles.Total()
	if total < machine*98/100 || total > machine*102/100 {
		add("cycle-conservation", "breakdown totals %v, want %v ±2%%", total, machine)
	}
	for _, c := range []struct {
		name string
		v    sim.Duration
	}{
		{"app", res.Cycles.AppNs}, {"runtime", res.Cycles.RuntimeNs},
		{"kernel", res.Cycles.KernelNs}, {"switch", res.Cycles.SwitchNs},
		{"idle", res.Cycles.IdleNs},
	} {
		if c.v < 0 {
			add("cycle-conservation", "negative %s component %v", c.name, c.v)
		}
	}

	var totalNorm float64
	for _, a := range res.Apps {
		tag := a.Name
		if a.Completed > a.Offered {
			add("completed-le-offered", "%s: completed %d > offered %d", tag, a.Completed, a.Offered)
		}
		if !finite(a.NormTput) || a.NormTput < 0 {
			add("norm-nonnegative", "%s: norm tput %v", tag, a.NormTput)
		} else {
			totalNorm += a.NormTput
		}
		if a.Kind == workload.LatencyCritical {
			q := a.Latency
			if q.Count > a.Completed {
				add("latency-count", "%s: %d latencies recorded but only %d completed", tag, q.Count, a.Completed)
			}
			if q.Count > 0 {
				if !(q.P50 <= q.P90 && q.P90 <= q.P99 && q.P99 <= q.P999 && q.P999 <= q.Max) {
					add("quantile-order", "%s: unordered quantiles %+v", tag, q)
				}
				if q.P50 <= 0 {
					add("quantile-order", "%s: non-positive p50 %d", tag, q.P50)
				}
			}
		}
		if a.Kind == workload.BestEffort {
			if a.BWallNs > machine {
				add("b-time-bound", "%s: wall %v exceeds machine time %v", tag, a.BWallNs, machine)
			}
			if a.BUsefulNs > a.BWallNs {
				add("b-time-bound", "%s: useful %v exceeds wall %v", tag, a.BUsefulNs, a.BWallNs)
			}
			if a.BUsefulNs < 0 || a.BWallNs < 0 {
				add("b-time-bound", "%s: negative B time useful=%v wall=%v", tag, a.BUsefulNs, a.BWallNs)
			}
		}
	}
	// Heavy-tailed service distributions (Silo's log-normal spans 20 µs
	// median to 280 µs P999) make "ideal capacity" a noisy denominator on
	// short windows: a window that happens to sample mostly-short requests
	// legitimately completes more than mean-rate capacity predicts. Widen
	// the bound when any L-app uses one.
	normBound := 1.05
	for _, a := range cfg.Apps {
		if _, heavy := a.Dist.(workload.TPCCDist); heavy {
			normBound = 1.5
			break
		}
	}
	if totalNorm > normBound {
		add("norm-capacity", "total norm %.3f exceeds machine capacity (bound %.2f)", totalNorm, normBound)
	}
	return out
}

// CheckEvents checks the pkey/region lifecycle properties of a
// containment event log (the trace the vessel manager and uproc domain
// emit):
//
//   - timestamps are non-decreasing (the log is simulation-ordered);
//   - reclaimed protection keys are inside the hardware's 16-key space;
//   - a uProcess is never reclaimed twice without an intervening restart
//     (a double reclaim would double-free its key), and never restarted
//     twice without dying in between.
func CheckEvents(events []trace.Event) []Violation {
	var out []Violation
	add := func(oracle, format string, args ...any) {
		out = append(out, Violation{System: "events", Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
	}
	var prev sim.Time
	reclaimed := make(map[string]bool) // uproc name → dead awaiting relaunch
	for i, e := range events {
		if e.T < prev {
			add("event-order", "event %d (%s) at %v before predecessor at %v", i, e.Name, e.T, prev)
		}
		prev = e.T
		switch e.Name {
		case "reclaim":
			u := eventField(e.Detail, "uproc")
			if k, ok := eventIntField(e.Detail, "key"); ok && (k < 0 || k > 15) {
				add("pkey-range", "reclaim of %s frees key %d outside [0,15]", u, k)
			}
			if u != "" {
				if reclaimed[u] {
					add("pkey-lifecycle", "%s reclaimed twice without an intervening restart", u)
				}
				reclaimed[u] = true
			}
		case "restart":
			u := eventField(e.Detail, "uproc")
			if u != "" {
				if !reclaimed[u] {
					add("pkey-lifecycle", "%s restarted without a preceding reclaim", u)
				}
				reclaimed[u] = false
			}
		}
	}
	return out
}

// eventField extracts key=value fields from an event detail string.
func eventField(detail, key string) string {
	for _, f := range strings.Fields(detail) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			return v
		}
	}
	return ""
}

func eventIntField(detail, key string) (int64, bool) {
	v := eventField(detail, key)
	if v == "" {
		return 0, false
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
