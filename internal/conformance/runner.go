package conformance

import (
	"bytes"
	"fmt"

	"vessel/internal/harness"
	"vessel/internal/sched"
	"vessel/internal/sched/arachne"
	"vessel/internal/sched/caladan"
	"vessel/internal/sched/cfs"
	"vessel/internal/vessel"
	"vessel/internal/workload"
)

// Systems returns the four scheduler implementations the paper compares.
// Every conformance scenario runs on all of them.
func Systems() []sched.Scheduler {
	return []sched.Scheduler{
		vessel.Simulator{},
		caladan.Simulator{Variant: caladan.Plain},
		arachne.Simulator{},
		cfs.Simulator{},
	}
}

// loadScaleDown is the factor for the monotonicity oracle's companion run.
const loadScaleDown = 0.5

// monotonicityTolerance bounds how much completed throughput may "shrink"
// when offered load doubles before the oracle fires. Doubling the offered
// load resamples the arrival process, so small statistical wobble is
// expected; a scheduler that completes substantially *fewer* requests when
// offered substantially more has collapsed.
const monotonicityTolerance = 0.70

// monotonicitySlack absorbs tiny-count noise on short scenarios.
const monotonicitySlack = 30

// subcriticalLoad gates the monotonicity oracle: it only applies when the
// scenario's total L-app load fraction stays below this. Past saturation
// the property genuinely does not hold — the kernel baselines collapse
// (CFS's run-to-completion workers starve whole apps once every core is
// pinned), which is the paper's point, not a conformance bug.
const subcriticalLoad = 0.70

// Report is the outcome of running one scenario through the harness.
type Report struct {
	Scenario   Scenario
	Violations []Violation
	// Results maps scheduler name → the first run's result, for display.
	Results map[string]sched.Result
	// Runs counts scheduler executions (including determinism re-runs and
	// metamorphic companions).
	Runs int
}

// Failed reports whether any oracle fired.
func (r Report) Failed() bool { return len(r.Violations) > 0 }

// systemOutcome collects one scheduler's runs and oracle verdicts; each
// executor worker fills exactly one, so merging them in Systems() order
// reconstructs the sequential report byte for byte.
type systemOutcome struct {
	name       string
	result     sched.Result
	violations []Violation
	runs       int
}

// RunScenario runs the scenario through every scheduler and every oracle,
// sequentially. Shorthand for RunScenarioExec with a sequential executor.
func RunScenario(sc Scenario) (Report, error) {
	return RunScenarioExec(sc, harness.Sequential())
}

// RunScenarioExec runs the scenario through every scheduler and every
// oracle, using the executor's worker pool to run the per-system pipelines
// (first run, determinism re-run, metamorphic companion) concurrently.
// Violations are merged in Systems() order, so the report is identical at
// any parallelism. The executor's cache is deliberately not consulted:
// oracles must observe live runs (cached results bypass post-run hooks,
// and the determinism oracle would otherwise compare a result to itself).
//
// A returned error means a run itself failed (which generated scenarios
// never should) — oracle failures land in the report, not the error.
func RunScenarioExec(sc Scenario, exec *harness.Executor) (Report, error) {
	rep := Report{Scenario: sc, Results: make(map[string]sched.Result)}
	if err := sc.Validate(); err != nil {
		return rep, err
	}
	half := sc.ScaleLoad(loadScaleDown)
	var sumL float64
	hasL := false
	for _, a := range sc.Apps {
		if a.Kind == "L" {
			hasL = true
			sumL += a.LoadFrac
		}
	}
	checkMonotonicity := hasL && sumL <= subcriticalLoad

	systems := Systems()
	outcomes := make([]systemOutcome, len(systems))
	err := exec.Map(len(systems), func(i int) error {
		s := systems[i]
		out := &outcomes[i]
		out.name = s.Name()
		res, err := sched.Run(s, sc.Config())
		if err != nil {
			return fmt.Errorf("%s: %w", out.name, err)
		}
		out.runs++
		out.result = res
		out.violations = append(out.violations, CheckResult(out.name, sc.Config(), res)...)

		// Determinism: the same seed must reproduce the same bytes.
		again, err := sched.Run(s, sc.Config())
		if err != nil {
			return fmt.Errorf("%s (rerun): %w", out.name, err)
		}
		out.runs++
		if !bytes.Equal(res.Canonical(), again.Canonical()) {
			out.violations = append(out.violations, Violation{
				System: out.name, Oracle: "determinism",
				Detail: fmt.Sprintf("same seed %d produced different results:\n--- run 1\n%s--- run 2\n%s",
					sc.Seed, res.Canonical(), again.Canonical()),
			})
		}

		// VESSEL's switch-cycle bound: its userspace switch paths (gate
		// park ≈161 ns, Uintr preempt ≈260 ns, umwait wake + park ≈561 ns)
		// must stay strictly below the kernel-assisted baselines
		// (Caladan's park path, a CFS context switch) — the paper's
		// Table 1 relationship. The mean per-switch cost can only sit at
		// or below the dearest userspace path.
		if out.name == "VESSEL" && res.Switches > 0 {
			costs := sc.Config().Costs
			mean := float64(res.Cycles.SwitchNs) / float64(res.Switches)
			ceiling := float64(costs.VesselPreemptSwitch)
			if wake := float64(costs.UmwaitWake + costs.VesselParkSwitch); wake > ceiling {
				ceiling = wake
			}
			if mean > ceiling+1 {
				out.violations = append(out.violations, Violation{
					System: out.name, Oracle: "switch-bound",
					Detail: fmt.Sprintf("mean switch %.1f ns exceeds the dearest userspace path %.0f ns", mean, ceiling),
				})
			}
			kernelFloor := costs.CaladanParkPath
			if costs.CFSSwitchCost < kernelFloor {
				kernelFloor = costs.CFSSwitchCost
			}
			if mean >= float64(kernelFloor) {
				out.violations = append(out.violations, Violation{
					System: out.name, Oracle: "switch-bound",
					Detail: fmt.Sprintf("mean switch %.1f ns not below the cheapest kernel path %v", mean, kernelFloor),
				})
			}
		}

		// Load monotonicity: halving every L-app's offered load must not
		// let the scheduler complete substantially more requests than it
		// did at full load. Only meaningful while the scenario is
		// subcritical — see subcriticalLoad.
		if checkMonotonicity {
			halfRes, err := sched.Run(s, half.Config())
			if err != nil {
				return fmt.Errorf("%s (half load): %w", out.name, err)
			}
			out.runs++
			for _, a := range res.Apps {
				if a.Kind != workload.LatencyCritical {
					continue
				}
				ha, ok := halfRes.App(a.Name)
				if !ok {
					continue
				}
				floor := monotonicityTolerance*float64(ha.Completed) - monotonicitySlack
				if float64(a.Completed) < floor {
					out.violations = append(out.violations, Violation{
						System: out.name, Oracle: "load-monotonicity",
						Detail: fmt.Sprintf("%s: completed %d at full load but %d at half load (floor %.0f)",
							a.Name, a.Completed, ha.Completed, floor),
					})
				}
			}
		}
		return nil
	})
	if err != nil {
		return rep, err
	}
	for _, out := range outcomes {
		rep.Runs += out.runs
		rep.Results[out.name] = out.result
		rep.Violations = append(rep.Violations, out.violations...)
	}
	return rep, nil
}

// ReplayCommand returns the one-liner that deterministically reproduces
// this scenario. extraFlags (e.g. a -plant flag that re-installs the
// tampering hook) are spliced in verbatim.
func ReplayCommand(sc Scenario, extraFlags string) string {
	if extraFlags != "" {
		extraFlags += " "
	}
	return fmt.Sprintf("go run ./cmd/conformancebench %s-replay '%s'", extraFlags, sc.Encode())
}
