package conformance

import (
	"fmt"

	"vessel/internal/selfheal"
	"vessel/internal/sim"
)

// SelfHealExpect declares what a chaos run was supposed to exercise, so the
// oracle can flag a plan whose faults silently never fired (a soak that
// injects five fault classes but recovers from zero proves nothing).
type SelfHealExpect struct {
	// MinFences / MinRestarts / MinPolicySwaps / MinPkeysHealed are lower
	// bounds on the recovery paths the plan must have exercised; zero
	// means "no requirement".
	MinFences      int
	MinRestarts    int
	MinPolicySwaps int
	MinPkeysHealed int
	// AllowDeadDomains permits domains that exhausted their restart cap;
	// by default any dead domain is a violation.
	AllowDeadDomains bool
}

// CheckSelfHeal converts a self-healing run's report into conformance
// violations:
//
//   - every invariant breach the cluster recorded (leaked pkeys, orphaned
//     regions, lost or duplicated uProcesses, unreconciled workers) is
//     re-emitted under the "recovery-invariant" oracle;
//   - the worst observed MTTR must fit the declared detect+restart budget
//     ("mttr-budget");
//   - a run that claims recoveries must have MTTR samples backing them,
//     and vice versa ("mttr-accounting");
//   - the expected recovery paths must actually have been exercised
//     ("coverage"), and domains must end alive unless the expectation
//     says otherwise ("liveness").
func CheckSelfHeal(system string, cfg selfheal.Config, rep *selfheal.Report, want SelfHealExpect) []Violation {
	var out []Violation
	add := func(oracle, format string, args ...any) {
		out = append(out, Violation{System: system, Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
	}

	for _, v := range rep.Violations {
		add("recovery-invariant", "%s", v)
	}

	budget := cfg.DetectBudget + cfg.RestartBudget
	if budget <= 0 {
		budget = sim.Millisecond // cluster defaults: 500µs + 500µs
	}
	if rep.MTTR.Count > 0 && sim.Duration(rep.MTTR.Max) > budget {
		add("mttr-budget", "max MTTR %dns exceeds budget %dns", rep.MTTR.Max, int64(budget))
	}

	recoveries := rep.Fences + rep.DomainRestarts
	if recoveries > 0 && rep.MTTR.Count == 0 {
		add("mttr-accounting", "%d recoveries but no MTTR samples", recoveries)
	}
	if rep.MTTR.Count > uint64(recoveries) {
		add("mttr-accounting", "%d MTTR samples exceed %d recoveries", rep.MTTR.Count, recoveries)
	}

	if rep.Fences < want.MinFences {
		add("coverage", "fences %d < required %d", rep.Fences, want.MinFences)
	}
	if rep.DomainRestarts < want.MinRestarts {
		add("coverage", "domain restarts %d < required %d", rep.DomainRestarts, want.MinRestarts)
	}
	if rep.PolicySwaps < want.MinPolicySwaps {
		add("coverage", "policy swaps %d < required %d", rep.PolicySwaps, want.MinPolicySwaps)
	}
	if rep.PkeysHealed < want.MinPkeysHealed {
		add("coverage", "pkeys healed %d < required %d", rep.PkeysHealed, want.MinPkeysHealed)
	}

	if rep.DomainsDead > 0 && !want.AllowDeadDomains {
		add("liveness", "%d domain(s) gave up after exhausting restarts", rep.DomainsDead)
	}

	return out
}
