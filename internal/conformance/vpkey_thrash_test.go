package conformance

import (
	"bytes"
	"fmt"
	"testing"

	"vessel/internal/faultinject"
	"vessel/internal/selfheal"
	"vessel/internal/sim"
	"vessel/internal/smas"
	"vessel/internal/vessel"
)

// thrashClusterConfig is the shared scenario for the eviction-storm
// tests: one virtualized domain, two cores, default budgets.
func thrashClusterConfig() selfheal.Config {
	return selfheal.Config{
		Domains:        1,
		CoresPerDomain: 2,
		DetectBudget:   500 * sim.Microsecond,
		RestartBudget:  500 * sim.Microsecond,
		VirtualKeys:    true,
	}
}

// runThrashStorm builds the eviction-storm scenario — two dozen
// uProcesses sharing one virtualized domain while PkeyThrash faults
// strip every unpinned key back to the fence, plus a core stall to
// drive detection and recovery under the storm — and runs it to
// completion. The scenario is fully deterministic (fixed seed, fixed
// injection times), so two calls must produce identical reports.
func runThrashStorm(t *testing.T) (*selfheal.Cluster, *selfheal.Report) {
	t.Helper()
	c, err := selfheal.New(thrashClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("storm%02d", i)
		err := c.AddWorker(0, name, func(mg *vessel.Manager) *smas.Program {
			return vpkeyWorker(mg, name, 200+int64(i)*17)
		}, i%2, vessel.RestartPolicy{})
		if err != nil {
			t.Fatal(err)
		}
	}
	c.InjectFaults(0, faultinject.Plan{
		Seed: 7,
		Faults: []faultinject.Fault{
			{Kind: faultinject.PkeyThrash, At: sim.Time(5 * sim.Microsecond)},
			{Kind: faultinject.PkeyThrash, At: sim.Time(15 * sim.Microsecond)},
			{Kind: faultinject.PkeyThrash, At: sim.Time(30 * sim.Microsecond)},
			{Kind: faultinject.CoreStall, Core: 1, At: sim.Time(40 * sim.Microsecond)},
		},
		Random:       6,
		RandomKinds:  []faultinject.Kind{faultinject.PkeyThrash},
		RandomCores:  2,
		RandomWindow: 60 * sim.Microsecond,
	})
	rep, err := c.Run(400_000, 400)
	if err != nil {
		t.Fatal(err)
	}
	return c, rep
}

func TestVPkeyEvictionStormSelfHeals(t *testing.T) {
	c, rep := runThrashStorm(t)

	// The storm actually happened: keys were stripped and refilled.
	s := c.Manager(0).Domain.S
	if s.VKeys == nil {
		t.Fatal("cluster did not virtualize keys")
	}
	if s.VKeys.Evictions == 0 || s.VKeys.Refills == 0 {
		t.Fatalf("storm did not bite: evictions=%d refills=%d",
			s.VKeys.Evictions, s.VKeys.Refills)
	}
	if n := rep.Events.CountByName("inject.pkeythrash"); n < 3 {
		t.Fatalf("only %d thrash injections recorded, want the 3 deterministic ones", n)
	}

	// The self-healing oracles hold under thrashing: the stall was
	// detected and fenced within budget, nothing was lost.
	if vs := CheckSelfHeal("vpkey-thrash", thrashClusterConfig(), rep, SelfHealExpect{MinFences: 1}); len(vs) != 0 {
		t.Fatalf("self-heal oracles flagged:\n%v", vs)
	}
	if rep.MTTR.Count == 0 {
		t.Fatal("no MTTR samples: the stall was never recovered")
	}
	if vs := CheckEvents(rep.Events.Events()); len(vs) != 0 {
		t.Fatalf("event stream flagged:\n%v", vs)
	}

	// The key table itself survived the storm with isolation intact.
	if vs := CheckVPkeyLifecycle("vpkey-thrash", s); len(vs) != 0 {
		t.Fatalf("lifecycle oracles flagged:\n%v", vs)
	}

	// Every worker is still alive on the surviving core.
	for i := 0; i < 24; i++ {
		if _, ok := c.Manager(0).Lookup(fmt.Sprintf("storm%02d", i)); !ok {
			t.Fatalf("worker storm%02d lost to the storm", i)
		}
	}
}

// TestVPkeyEvictionStormDeterministic is the MTTR regression pin: the
// storm scenario's canonical report — every event, every MTTR sample,
// every counter — must be byte-identical across runs, so any change to
// eviction ordering or recovery latency shows up as a diff, not a flake.
func TestVPkeyEvictionStormDeterministic(t *testing.T) {
	_, rep1 := runThrashStorm(t)
	_, rep2 := runThrashStorm(t)
	c1, c2 := rep1.Canonical(), rep2.Canonical()
	if !bytes.Equal(c1, c2) {
		t.Fatalf("storm scenario nondeterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", c1, c2)
	}
	if rep1.MTTR.Count == 0 {
		t.Fatal("regression baseline has no MTTR samples")
	}
}
