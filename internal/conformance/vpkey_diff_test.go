package conformance

import (
	"fmt"
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/vessel"
)

// vpkeyDiffFingerprint runs a seed-parameterized launch/park/destroy/reap
// scenario on a fresh two-core manager and returns a canonical byte
// fingerprint: the full event log plus per-core scheduler and cycle
// counters. The scenario keeps at most 13 keys live, so a virtualized
// manager must take the resident fast path on every crossing — zero
// evictions, zero re-tags — and the fingerprint must match direct mode
// byte for byte.
func vpkeyDiffFingerprint(t *testing.T, virtual bool, seed uint64) string {
	t.Helper()
	var mg *vessel.Manager
	var err error
	if virtual {
		mg, err = vessel.NewManagerVirtual(2, nil)
	} else {
		mg, err = vessel.NewManager(2, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	n := 3 + int(seed%11) // 3..13 live keys: under the slot budget
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("d%d-%02d", seed, i)
		work := 200 + int64(seed)*13 + int64(i)*37
		if _, err := mg.Launch(name, vpkeyWorker(mg, name, work), i%2); err != nil {
			t.Fatalf("launch %s: %v", name, err)
		}
	}
	for core := 0; core < 2; core++ {
		if err := mg.Start(core); err != nil {
			t.Fatal(err)
		}
		if _, err := mg.RunTimesliced(core, 30_000, 701); err != nil {
			t.Fatalf("core %d: %v", core, err)
		}
	}
	for i := 0; i < n; i += 3 {
		if err := mg.Destroy(fmt.Sprintf("d%d-%02d", seed, i)); err != nil {
			t.Fatal(err)
		}
	}
	for core := 0; core < 2; core++ {
		mg.Step(core, 3000)
	}
	if _, err := mg.Reap(); err != nil {
		t.Fatal(err)
	}

	if virtual {
		if ev := mg.Domain.S.VKeys.Evictions; ev != 0 {
			t.Fatalf("≤13 live keys must never evict, saw %d evictions", ev)
		}
	}

	fp := mg.Events().String()
	for core := 0; core < 2; core++ {
		parks, preempts := mg.Domain.CoreStats(core)
		fp += fmt.Sprintf("core%d parks=%d preempts=%d cycles=%d\n",
			core, parks, preempts, mg.Machine().Core(core).Cycles)
	}
	return fp
}

// TestVPkeyDifferential pins the central compatibility claim of the
// virtualization layer: while the live-key count fits the hardware,
// virtual mode is behaviorally invisible — the event stream, the
// scheduler counters, and the cycle counts are byte-identical to direct
// mode — and that holds with the simulated-MMU fast path both enabled
// and disabled.
func TestVPkeyDifferential(t *testing.T) {
	// Not parallel: toggles the package-level fast-path switch.
	seeds := []uint64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	defer func() { cpu.DisableFastPath = false }()
	for _, seed := range seeds {
		var got [4]string
		i := 0
		for _, disable := range []bool{false, true} {
			cpu.DisableFastPath = disable
			for _, virtual := range []bool{false, true} {
				got[i] = vpkeyDiffFingerprint(t, virtual, seed)
				i++
			}
		}
		for j := 1; j < 4; j++ {
			if got[j] != got[0] {
				t.Fatalf("seed %d: fingerprint %d diverged from baseline\n--- baseline ---\n%s\n--- variant ---\n%s",
					seed, j, got[0], got[j])
			}
		}
	}
}
