package conformance

import (
	"strings"
	"testing"

	"vessel/internal/obs"
	"vessel/internal/sched"
)

// obsConfig builds a small mixed L+B run with a fresh observer attached.
func obsConfig(seed uint64) sched.Config {
	cfg := baseScenario(seed).Config()
	cfg.Obs = obs.New(0)
	return cfg
}

func baseScenario(seed uint64) Scenario {
	return Scenario{
		Seed:       seed,
		Cores:      4,
		DurationUs: 20000,
		WarmupUs:   2000,
		Apps: []AppSpec{
			{Name: "mc", Kind: "L", Dist: "memcached", LoadFrac: 0.5},
			{Name: "batch", Kind: "B", BWDemand: 2, MemFrac: 0.2},
		},
	}
}

// TestObsConservationAllSchedulers is the conservation oracle end to end:
// for every scheduler, a run with the observability layer attached must
// charge exactly the cycle breakdown it reports — per category and in
// total.
func TestObsConservationAllSchedulers(t *testing.T) {
	for _, s := range Systems() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			cfg := obsConfig(7)
			res, err := s.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if vs := CheckProfile(s.Name(), cfg.Obs, res); len(vs) > 0 {
				for _, v := range vs {
					t.Error(v)
				}
			}
			if cfg.Obs.SpanCount() == 0 {
				t.Fatal("run recorded no spans")
			}
			// The profile must actually attribute work to the named apps,
			// not just to anonymous buckets.
			prof := cfg.Obs.Profile()
			var named bool
			for core := 0; core < cfg.Cores && !named; core++ {
				if prof.Get(core, "mc", obs.CatApp) > 0 {
					named = true
				}
			}
			if !named {
				t.Error("no app cycles attributed to \"mc\" on any core")
			}
		})
	}
}

// TestObsTimelineDeterministic: two same-seed runs produce byte-identical
// timelines and collapsed stacks (the layer-2 half of the determinism
// contract; the vessel golden test covers layer-1).
func TestObsTimelineDeterministic(t *testing.T) {
	for _, s := range Systems() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			render := func() (string, string) {
				cfg := obsConfig(11)
				if _, err := s.Run(cfg); err != nil {
					t.Fatal(err)
				}
				return renderTimeline(t, cfg.Obs), cfg.Obs.Profile().Collapsed()
			}
			tl1, cs1 := render()
			tl2, cs2 := render()
			if tl1 != tl2 {
				t.Error("timelines differ across same-seed runs")
			}
			if cs1 != cs2 {
				t.Error("collapsed stacks differ across same-seed runs")
			}
			if cs1 == "" {
				t.Error("empty collapsed stacks")
			}
		})
	}
}

func renderTimeline(t *testing.T, o *obs.Observer) string {
	t.Helper()
	var b strings.Builder
	if err := o.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
