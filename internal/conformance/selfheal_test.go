package conformance

import (
	"strings"
	"testing"

	"vessel/internal/selfheal"
	"vessel/internal/sim"
	"vessel/internal/stats"
)

func healReport() *selfheal.Report {
	return &selfheal.Report{
		Rounds:         100,
		Fences:         1,
		DomainRestarts: 1,
		PolicySwaps:    1,
		PkeysHealed:    2,
		MTTR:           stats.Summary{Count: 2, Max: int64(400 * sim.Microsecond)},
	}
}

func healConfig() selfheal.Config {
	return selfheal.Config{
		DetectBudget:  500 * sim.Microsecond,
		RestartBudget: 500 * sim.Microsecond,
	}
}

func oracles(vs []Violation) []string {
	var out []string
	for _, v := range vs {
		out = append(out, v.Oracle)
	}
	return out
}

func TestCheckSelfHealCleanRunPasses(t *testing.T) {
	want := SelfHealExpect{MinFences: 1, MinRestarts: 1, MinPolicySwaps: 1, MinPkeysHealed: 2}
	if vs := CheckSelfHeal("chaos", healConfig(), healReport(), want); len(vs) != 0 {
		t.Fatalf("clean run flagged: %v", vs)
	}
}

func TestCheckSelfHealRelaysReportViolations(t *testing.T) {
	rep := healReport()
	rep.Violations = []string{"d0: leaked pkey 5", "d1: worker w0 lost"}
	vs := CheckSelfHeal("chaos", healConfig(), rep, SelfHealExpect{})
	n := 0
	for _, v := range vs {
		if v.Oracle == "recovery-invariant" {
			n++
			if v.System != "chaos" {
				t.Fatalf("system = %q", v.System)
			}
		}
	}
	if n != 2 {
		t.Fatalf("relayed %d of 2 violations: %v", n, vs)
	}
	if !strings.Contains(vs[0].String(), "leaked pkey 5") {
		t.Fatalf("detail lost: %v", vs[0])
	}
}

func TestCheckSelfHealMTTRBudget(t *testing.T) {
	rep := healReport()
	rep.MTTR.Max = int64(2 * sim.Millisecond)
	vs := CheckSelfHeal("chaos", healConfig(), rep, SelfHealExpect{})
	found := false
	for _, v := range vs {
		if v.Oracle == "mttr-budget" {
			found = true
		}
	}
	if !found {
		t.Fatalf("2ms MTTR passed a 1ms budget: %v", vs)
	}
}

func TestCheckSelfHealMTTRAccounting(t *testing.T) {
	rep := healReport()
	rep.MTTR.Count = 0 // recoveries claimed, no samples
	vs := CheckSelfHeal("chaos", healConfig(), rep, SelfHealExpect{})
	if len(vs) != 1 || vs[0].Oracle != "mttr-accounting" {
		t.Fatalf("missing samples not flagged: %v", vs)
	}

	rep = healReport()
	rep.MTTR.Count = 9 // more samples than recoveries
	vs = CheckSelfHeal("chaos", healConfig(), rep, SelfHealExpect{})
	if len(vs) != 1 || vs[0].Oracle != "mttr-accounting" {
		t.Fatalf("excess samples not flagged: %v", vs)
	}
}

func TestCheckSelfHealCoverageAndLiveness(t *testing.T) {
	rep := healReport()
	rep.PolicySwaps = 0
	rep.DomainsDead = 1
	want := SelfHealExpect{MinFences: 1, MinRestarts: 1, MinPolicySwaps: 1, MinPkeysHealed: 2}
	got := oracles(CheckSelfHeal("chaos", healConfig(), rep, want))
	if len(got) != 2 || got[0] != "coverage" || got[1] != "liveness" {
		t.Fatalf("oracles = %v", got)
	}

	// Dead domains tolerated when declared.
	want.AllowDeadDomains = true
	want.MinPolicySwaps = 0
	if vs := CheckSelfHeal("chaos", healConfig(), rep, want); len(vs) != 0 {
		t.Fatalf("declared expectations still flagged: %v", vs)
	}
}

func TestCheckSelfHealDefaultBudget(t *testing.T) {
	// A zero-valued config gets the cluster's default 1ms combined budget.
	rep := healReport()
	rep.MTTR.Max = int64(900 * sim.Microsecond)
	if vs := CheckSelfHeal("chaos", selfheal.Config{}, rep, SelfHealExpect{}); len(vs) != 0 {
		t.Fatalf("900µs flagged under default budget: %v", vs)
	}
	rep.MTTR.Max = int64(1100 * sim.Microsecond)
	vs := CheckSelfHeal("chaos", selfheal.Config{}, rep, SelfHealExpect{})
	if len(vs) != 1 || vs[0].Oracle != "mttr-budget" {
		t.Fatalf("1.1ms not flagged under default budget: %v", vs)
	}
}
