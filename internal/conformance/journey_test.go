package conformance

import (
	"bytes"
	"testing"

	"vessel/internal/obs/journey"
	"vessel/internal/sched"
)

// journeyConfig builds a run config with a fresh journey tracer attached.
func journeyConfig(seed uint64) (sched.Config, *journey.Tracer) {
	cfg := baseScenario(seed).Config()
	tr := journey.New()
	cfg.Journey = tr
	return cfg, tr
}

// TestJourneyConservationAllSchedulers is the journey conservation oracle
// end to end: for every scheduler, every finished journey's segment
// decomposition must sum exactly to its sojourn, with a well-formed span
// tree.
func TestJourneyConservationAllSchedulers(t *testing.T) {
	for _, s := range Systems() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			cfg, tr := journeyConfig(7)
			res, err := s.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if vs := CheckJourney(s.Name(), tr, res); len(vs) > 0 {
				for _, v := range vs {
					t.Error(v)
				}
			}
			a := tr.Analyze()
			if a.Finished == 0 {
				t.Fatal("run finished no journeys")
			}
			// The decomposition must attribute both queueing and running
			// time: a run where one is identically zero means a seam
			// transition never fired.
			if a.Seg[journey.SegQueue].Count == 0 || a.Seg[journey.SegRun].Count == 0 {
				t.Errorf("degenerate decomposition: queue n=%d run n=%d",
					a.Seg[journey.SegQueue].Count, a.Seg[journey.SegRun].Count)
			}
		})
	}
}

// TestJourneyConservationSweep runs the oracle over a seed sweep of
// generated scenarios on every scheduler — the acceptance gate CI runs.
func TestJourneyConservationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is the CI journey job; -short skips it")
	}
	for seed := uint64(1); seed <= 6; seed++ {
		sc := Generate(seed, true)
		for _, s := range Systems() {
			cfg := sc.Config()
			tr := journey.New()
			cfg.Journey = tr
			res, err := sched.Run(s, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, s.Name(), err)
			}
			if vs := CheckJourney(s.Name(), tr, res); len(vs) > 0 {
				for _, v := range vs {
					t.Errorf("seed %d: %s", seed, v)
				}
			}
		}
	}
}

// TestJourneyCanonicalDifferential pins the observe-don't-perturb
// contract: a run's canonical bytes are identical with journey tracing on
// or off, for every scheduler — tracing may never move a timestamp, a
// dispatch decision, or an RNG draw.
func TestJourneyCanonicalDifferential(t *testing.T) {
	for _, s := range Systems() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				off := baseScenario(seed).Config()
				resOff, err := s.Run(off)
				if err != nil {
					t.Fatal(err)
				}
				on, tr := journeyConfig(seed)
				resOn, err := s.Run(on)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(resOff.Canonical(), resOn.Canonical()) {
					t.Fatalf("seed %d: canonical bytes differ with journey tracing on\n--- off\n%s--- on\n%s",
						seed, resOff.Canonical(), resOn.Canonical())
				}
				if tr.Minted() == 0 {
					t.Fatalf("seed %d: tracer minted nothing", seed)
				}
			}
		})
	}
}

// TestJourneyDeterministicExport: two same-seed runs produce
// byte-identical journey text exports, Chrome traces, and collapsed
// stacks.
func TestJourneyDeterministicExport(t *testing.T) {
	for _, s := range Systems() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			render := func() (string, string, string) {
				cfg, tr := journeyConfig(11)
				if _, err := s.Run(cfg); err != nil {
					t.Fatal(err)
				}
				var text, chrome, coll bytes.Buffer
				if err := tr.WriteText(&text); err != nil {
					t.Fatal(err)
				}
				if err := tr.WriteChromeTrace(&chrome); err != nil {
					t.Fatal(err)
				}
				if err := tr.WriteCollapsed(&coll); err != nil {
					t.Fatal(err)
				}
				return text.String(), chrome.String(), coll.String()
			}
			t1, c1, f1 := render()
			t2, c2, f2 := render()
			if t1 != t2 {
				t.Error("journey text export differs across same-seed runs")
			}
			if c1 != c2 {
				t.Error("journey Chrome trace differs across same-seed runs")
			}
			if f1 != f2 {
				t.Error("journey collapsed stacks differ across same-seed runs")
			}
			if t1 == "" || c1 == "" || f1 == "" {
				t.Error("empty export")
			}
		})
	}
}

// TestJourneyOracleCatchesTamper plants a broken journey and proves the
// oracle fires — the oracle-of-the-oracle check every conformance oracle
// in this package carries.
func TestJourneyOracleCatchesTamper(t *testing.T) {
	cfg, tr := journeyConfig(3)
	s := Systems()[0]
	res, err := s.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	js := tr.Journeys()
	var tampered *journey.Journey
	for _, j := range js {
		if j.Finished() {
			tampered = j
			break
		}
	}
	if tampered == nil {
		t.Fatal("no finished journey to tamper with")
	}
	tampered.Segs[journey.SegQueue] += 1
	vs := CheckJourney(s.Name(), tr, res)
	found := false
	for _, v := range vs {
		if v.Oracle == "journey-conservation" {
			found = true
		}
	}
	if !found {
		t.Fatalf("oracle missed the tampered journey; violations: %v", vs)
	}
}
