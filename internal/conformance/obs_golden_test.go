package conformance

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"vessel/internal/obs"
	"vessel/internal/vessel"
)

var updateGolden = flag.Bool("update", false, "rewrite obs golden files")

// goldenRun executes the fixed-seed VESSEL scenario with the observer
// attached and renders the two export formats whose bytes we pin.
func goldenRun(t *testing.T) (chrome, collapsed []byte) {
	t.Helper()
	cfg := obsConfig(23)
	if _, err := (vessel.Simulator{}).Run(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Obs.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), []byte(cfg.Obs.Profile().Collapsed())
}

// TestObsGoldenOutput pins the Chrome trace JSON and collapsed-stack
// bytes of a fixed-seed VESSEL run. Any change to event ordering,
// export formatting, or simulation behaviour shows up as a golden
// diff. Run with -update to rebless after an intentional change.
func TestObsGoldenOutput(t *testing.T) {
	chrome, collapsed := goldenRun(t)
	goldens := []struct {
		path string
		got  []byte
	}{
		{filepath.Join("testdata", "obs_golden_chrome.json"), chrome},
		{filepath.Join("testdata", "obs_golden_collapsed.txt"), collapsed},
	}
	for _, g := range goldens {
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(g.path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(g.path, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(g.path)
		if err != nil {
			t.Fatalf("%s missing (run with -update to create): %v", g.path, err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s differs from golden (%d vs %d bytes); run with -update after intentional changes",
				g.path, len(g.got), len(want))
		}
	}
	if err := obs.ValidateChromeTrace(bytes.NewReader(chrome)); err != nil {
		t.Fatalf("golden chrome trace fails validation: %v", err)
	}
}

// TestObsGoldenAcrossGOMAXPROCS: output bytes are identical whether the
// runtime schedules test goroutines on one OS thread or many. The
// simulation is single-goroutine, so this pins the absence of any
// map-iteration or scheduling nondeterminism in the export path.
func TestObsGoldenAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	c1, s1 := goldenRun(t)
	runtime.GOMAXPROCS(prev)
	if prev == 1 && runtime.NumCPU() > 1 {
		runtime.GOMAXPROCS(runtime.NumCPU())
		defer runtime.GOMAXPROCS(prev)
	}
	c2, s2 := goldenRun(t)
	if !bytes.Equal(c1, c2) {
		t.Error("chrome trace differs between GOMAXPROCS settings")
	}
	if !bytes.Equal(s1, s2) {
		t.Error("collapsed stacks differ between GOMAXPROCS settings")
	}
}
