// Package conformance is the differential-testing harness over the four
// scheduler implementations (VESSEL, Caladan, Arachne, Linux CFS). It
// synthesizes randomized scenarios from a seed, runs every scheduler on
// each, and checks two oracle classes:
//
//   - universal invariants that must hold for any scheduler under any
//     configuration (cycle-breakdown conservation, completed ≤ offered,
//     quantile ordering, bounded best-effort time) — promoted out of the
//     experiments tests into CheckResult so any package can call them;
//   - cross-scheduler and metamorphic properties (same seed ⇒
//     byte-identical results, VESSEL's per-switch cost bounded below the
//     kernel-path baselines, throughput monotone in offered load).
//
// On a violation the harness shrinks the scenario — dropping apps, halving
// cores and duration, stripping features — to a minimal reproducer and
// prints the one-line conformancebench command that replays it.
package conformance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"vessel/internal/cpu"
	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/workload"
)

// BurstSpec describes an optional ON/OFF arrival modulation.
type BurstSpec struct {
	OnUs   int64   `json:"on_us"`
	OffUs  int64   `json:"off_us"`
	Factor float64 `json:"factor"`
}

// AppSpec describes one application declaratively. Specs — not
// workload.App values — are what scenarios carry, because an App
// accumulates run state (queues, counters, histograms) and must be built
// fresh for every scheduler run.
type AppSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "L" or "B"

	// L-app fields.
	Dist     string     `json:"dist,omitempty"` // "memcached" or "silo"
	LoadFrac float64    `json:"load_frac,omitempty"`
	Priority int        `json:"priority,omitempty"`
	Burst    *BurstSpec `json:"burst,omitempty"`

	// B-app fields.
	BWDemand float64 `json:"bw_demand,omitempty"`
	MemFrac  float64 `json:"mem_frac,omitempty"`
}

// Scenario is one generated test case: everything needed to rebuild the
// same sched.Config any number of times.
type Scenario struct {
	Seed         uint64    `json:"seed"`
	Cores        int       `json:"cores"`
	DurationUs   int64     `json:"duration_us"`
	WarmupUs     int64     `json:"warmup_us"`
	BWTargetFrac float64   `json:"bw_target_frac,omitempty"`
	Apps         []AppSpec `json:"apps"`
}

// Generation bounds. Validate enforces the same ranges on decode, so a
// replayed scenario is always one the generator could have produced (or a
// shrunk descendant of one).
const (
	maxCores      = 64
	maxApps       = 8
	maxDurationUs = 1_000_000 // 1 s of virtual time
	minDurationUs = 50
)

// Generate synthesizes a randomized scenario from a seed. The same seed
// always yields the same scenario. Quick shrinks durations for CI-speed
// sweeps.
func Generate(seed uint64, quick bool) Scenario {
	rng := sim.NewRNG(seed ^ 0xc0f0a97a5c3e11d7)
	sc := Scenario{Seed: seed}
	sc.Cores = 1 + rng.IntN(12)
	if quick {
		sc.DurationUs = 1500 + int64(rng.IntN(4))*500
	} else {
		sc.DurationUs = 8000 + int64(rng.IntN(6))*2000
	}
	sc.WarmupUs = sc.DurationUs / 5

	// App mix: L-only, B-only, classic 1L+1B colocation, or dense.
	var nL, nB int
	switch rng.IntN(4) {
	case 0:
		nL = 1 + rng.IntN(2)
	case 1:
		nB = 1 + rng.IntN(2)
	case 2:
		nL, nB = 1, 1
	default:
		nL, nB = 1+rng.IntN(3), rng.IntN(2)
	}
	for i := 0; i < nL; i++ {
		a := AppSpec{
			Name:     fmt.Sprintf("L%d", i),
			Kind:     "L",
			Dist:     "memcached",
			LoadFrac: 0.05 + 1.15*rng.Float64(), // through overload
		}
		if rng.Bernoulli(0.3) {
			a.Dist = "silo"
		}
		if rng.Bernoulli(0.25) {
			a.Priority = 1 + rng.IntN(2)
		}
		if rng.Bernoulli(0.25) {
			a.Burst = &BurstSpec{
				OnUs:   int64(50 + rng.IntN(450)),
				OffUs:  int64(50 + rng.IntN(450)),
				Factor: 1.5 + 4.5*rng.Float64(),
			}
		}
		sc.Apps = append(sc.Apps, a)
	}
	for i := 0; i < nB; i++ {
		a := AppSpec{Name: fmt.Sprintf("B%d", i), Kind: "B"}
		switch rng.IntN(3) {
		case 0: // linpack-like
			a.BWDemand, a.MemFrac = 0.5, 0.05
		case 1: // membench-like
			a.BWDemand, a.MemFrac = 12.0, 0.7
		default:
			a.BWDemand = 0.2 + 13.8*rng.Float64()
			a.MemFrac = 0.05 + 0.8*rng.Float64()
		}
		sc.Apps = append(sc.Apps, a)
	}
	if nB > 0 && rng.Bernoulli(0.3) {
		sc.BWTargetFrac = 0.3 + 0.5*rng.Float64()
	}
	return sc
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks that the scenario is inside the generator's envelope.
// Decode runs it on every input, so a fuzzer can't smuggle a degenerate
// scenario (NaN loads, zero-core machines, unbounded durations) past the
// harness.
func (s Scenario) Validate() error {
	if s.Cores < 1 || s.Cores > maxCores {
		return fmt.Errorf("conformance: cores %d outside [1,%d]", s.Cores, maxCores)
	}
	if s.DurationUs < minDurationUs || s.DurationUs > maxDurationUs {
		return fmt.Errorf("conformance: duration %dµs outside [%d,%d]", s.DurationUs, minDurationUs, maxDurationUs)
	}
	if s.WarmupUs < 0 || s.WarmupUs > maxDurationUs {
		return fmt.Errorf("conformance: warmup %dµs outside [0,%d]", s.WarmupUs, maxDurationUs)
	}
	if !finite(s.BWTargetFrac) || s.BWTargetFrac < 0 || s.BWTargetFrac >= 1 {
		return fmt.Errorf("conformance: bw target %v outside [0,1)", s.BWTargetFrac)
	}
	if len(s.Apps) == 0 || len(s.Apps) > maxApps {
		return fmt.Errorf("conformance: %d apps outside [1,%d]", len(s.Apps), maxApps)
	}
	seen := make(map[string]bool, len(s.Apps))
	for i, a := range s.Apps {
		if a.Name == "" || len(a.Name) > 32 {
			return fmt.Errorf("conformance: app %d has bad name %q", i, a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("conformance: duplicate app name %q", a.Name)
		}
		seen[a.Name] = true
		switch a.Kind {
		case "L":
			if a.Dist != "memcached" && a.Dist != "silo" {
				return fmt.Errorf("conformance: app %q has unknown dist %q", a.Name, a.Dist)
			}
			if !finite(a.LoadFrac) || a.LoadFrac <= 0 || a.LoadFrac > 2 {
				return fmt.Errorf("conformance: app %q load %v outside (0,2]", a.Name, a.LoadFrac)
			}
			if a.Priority < 0 || a.Priority > 8 {
				return fmt.Errorf("conformance: app %q priority %d outside [0,8]", a.Name, a.Priority)
			}
			if b := a.Burst; b != nil {
				if b.OnUs < 1 || b.OnUs > maxDurationUs || b.OffUs < 1 || b.OffUs > maxDurationUs {
					return fmt.Errorf("conformance: app %q burst periods outside [1,%d]µs", a.Name, maxDurationUs)
				}
				if !finite(b.Factor) || b.Factor < 1 || b.Factor > 64 {
					return fmt.Errorf("conformance: app %q burst factor %v outside [1,64]", a.Name, b.Factor)
				}
			}
			if a.BWDemand != 0 || a.MemFrac != 0 {
				return fmt.Errorf("conformance: L-app %q carries B-app fields", a.Name)
			}
		case "B":
			if !finite(a.BWDemand) || a.BWDemand < 0 || a.BWDemand > 64 {
				return fmt.Errorf("conformance: app %q bw demand %v outside [0,64]", a.Name, a.BWDemand)
			}
			if !finite(a.MemFrac) || a.MemFrac < 0 || a.MemFrac > 1 {
				return fmt.Errorf("conformance: app %q mem frac %v outside [0,1]", a.Name, a.MemFrac)
			}
			if a.Dist != "" || a.LoadFrac != 0 || a.Priority != 0 || a.Burst != nil {
				return fmt.Errorf("conformance: B-app %q carries L-app fields", a.Name)
			}
		default:
			return fmt.Errorf("conformance: app %q has unknown kind %q", a.Name, a.Kind)
		}
	}
	return nil
}

// dist returns the service distribution for an L-app spec.
func (a AppSpec) dist() workload.ServiceDist {
	if a.Dist == "silo" {
		return workload.Silo()
	}
	return workload.Memcached()
}

// Config builds a fresh sched.Config for one run. Apps are constructed
// anew on every call: workload.App values accumulate run state, so two
// runs must never share them.
func (s Scenario) Config() sched.Config {
	cfg := sched.Config{
		Seed:         s.Seed,
		Cores:        s.Cores,
		Duration:     sim.Duration(s.DurationUs) * sim.Microsecond,
		Warmup:       sim.Duration(s.WarmupUs) * sim.Microsecond,
		BWTargetFrac: s.BWTargetFrac,
		Costs:        cpu.Default(),
	}
	for _, a := range s.Apps {
		switch a.Kind {
		case "L":
			rate := a.LoadFrac * sched.IdealLCapacity(s.Cores, a.dist())
			app := workload.NewLApp(a.Name, a.dist(), rate)
			app.Priority = a.Priority
			if a.Burst != nil {
				app.Burst = &workload.Burst{
					OnMean:  sim.Duration(a.Burst.OnUs) * sim.Microsecond,
					OffMean: sim.Duration(a.Burst.OffUs) * sim.Microsecond,
					Factor:  a.Burst.Factor,
				}
			}
			cfg.Apps = append(cfg.Apps, app)
		case "B":
			cfg.Apps = append(cfg.Apps, workload.NewBApp(a.Name, a.BWDemand, a.MemFrac))
		}
	}
	return cfg
}

// ScaleLoad returns a copy with every L-app's offered load scaled by f —
// the knob behind the load-monotonicity metamorphic oracle.
func (s Scenario) ScaleLoad(f float64) Scenario {
	out := s.clone()
	for i := range out.Apps {
		if out.Apps[i].Kind == "L" {
			out.Apps[i].LoadFrac *= f
		}
	}
	return out
}

// clone deep-copies the scenario (Burst pointers included).
func (s Scenario) clone() Scenario {
	out := s
	out.Apps = make([]AppSpec, len(s.Apps))
	copy(out.Apps, s.Apps)
	for i := range out.Apps {
		if b := out.Apps[i].Burst; b != nil {
			bb := *b
			out.Apps[i].Burst = &bb
		}
	}
	return out
}

// Encode renders the scenario as a one-line JSON document — the replay
// token conformancebench prints and accepts.
func (s Scenario) Encode() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Scenario has no unmarshalable fields; this cannot happen.
		panic(err)
	}
	return string(b)
}

// Decode parses and validates an encoded scenario. Unknown fields are
// rejected so a typo in a hand-edited replay token fails loudly instead of
// silently testing something else.
func Decode(enc string) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader([]byte(enc)))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("conformance: decode: %w", err)
	}
	if dec.More() {
		return Scenario{}, fmt.Errorf("conformance: trailing data after scenario")
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}
