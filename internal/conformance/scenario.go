// Package conformance is the differential-testing harness over the four
// scheduler implementations (VESSEL, Caladan, Arachne, Linux CFS). It
// synthesizes randomized scenarios from a seed, runs every scheduler on
// each, and checks two oracle classes:
//
//   - universal invariants that must hold for any scheduler under any
//     configuration (cycle-breakdown conservation, completed ≤ offered,
//     quantile ordering, bounded best-effort time) — promoted out of the
//     experiments tests into CheckResult so any package can call them;
//   - cross-scheduler and metamorphic properties (same seed ⇒
//     byte-identical results, VESSEL's per-switch cost bounded below the
//     kernel-path baselines, throughput monotone in offered load).
//
// On a violation the harness shrinks the scenario — dropping apps, halving
// cores and duration, stripping features — to a minimal reproducer and
// prints the one-line conformancebench command that replays it.
package conformance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"vessel/internal/harness"
	"vessel/internal/sched"
	"vessel/internal/sim"
)

// BurstSpec and AppSpec are the harness's declarative app descriptions;
// scenarios carry them verbatim, so a scenario's apps and a RunSpec's apps
// share one schema (and one JSON encoding — replay tokens are unchanged).
type (
	BurstSpec = harness.BurstSpec
	AppSpec   = harness.AppSpec
)

// Scenario is one generated test case: everything needed to rebuild the
// same sched.Config any number of times.
type Scenario struct {
	Seed         uint64    `json:"seed"`
	Cores        int       `json:"cores"`
	DurationUs   int64     `json:"duration_us"`
	WarmupUs     int64     `json:"warmup_us"`
	BWTargetFrac float64   `json:"bw_target_frac,omitempty"`
	Apps         []AppSpec `json:"apps"`
}

// Generation bounds. Validate enforces the same ranges on decode, so a
// replayed scenario is always one the generator could have produced (or a
// shrunk descendant of one).
const (
	maxCores      = 64
	maxApps       = 8
	maxDurationUs = 1_000_000 // 1 s of virtual time
	minDurationUs = 50
)

// Generate synthesizes a randomized scenario from a seed. The same seed
// always yields the same scenario. Quick shrinks durations for CI-speed
// sweeps.
func Generate(seed uint64, quick bool) Scenario {
	rng := sim.NewRNG(seed ^ 0xc0f0a97a5c3e11d7)
	sc := Scenario{Seed: seed}
	sc.Cores = 1 + rng.IntN(12)
	if quick {
		sc.DurationUs = 1500 + int64(rng.IntN(4))*500
	} else {
		sc.DurationUs = 8000 + int64(rng.IntN(6))*2000
	}
	sc.WarmupUs = sc.DurationUs / 5

	// App mix: L-only, B-only, classic 1L+1B colocation, or dense.
	var nL, nB int
	switch rng.IntN(4) {
	case 0:
		nL = 1 + rng.IntN(2)
	case 1:
		nB = 1 + rng.IntN(2)
	case 2:
		nL, nB = 1, 1
	default:
		nL, nB = 1+rng.IntN(3), rng.IntN(2)
	}
	for i := 0; i < nL; i++ {
		a := AppSpec{
			Name:     fmt.Sprintf("L%d", i),
			Kind:     "L",
			Dist:     "memcached",
			LoadFrac: 0.05 + 1.15*rng.Float64(), // through overload
		}
		if rng.Bernoulli(0.3) {
			a.Dist = "silo"
		}
		if rng.Bernoulli(0.25) {
			a.Priority = 1 + rng.IntN(2)
		}
		if rng.Bernoulli(0.25) {
			a.Burst = &BurstSpec{
				OnUs:   int64(50 + rng.IntN(450)),
				OffUs:  int64(50 + rng.IntN(450)),
				Factor: 1.5 + 4.5*rng.Float64(),
			}
		}
		sc.Apps = append(sc.Apps, a)
	}
	for i := 0; i < nB; i++ {
		a := AppSpec{Name: fmt.Sprintf("B%d", i), Kind: "B"}
		switch rng.IntN(3) {
		case 0: // linpack-like
			a.BWDemand, a.MemFrac = 0.5, 0.05
		case 1: // membench-like
			a.BWDemand, a.MemFrac = 12.0, 0.7
		default:
			a.BWDemand = 0.2 + 13.8*rng.Float64()
			a.MemFrac = 0.05 + 0.8*rng.Float64()
		}
		sc.Apps = append(sc.Apps, a)
	}
	if nB > 0 && rng.Bernoulli(0.3) {
		sc.BWTargetFrac = 0.3 + 0.5*rng.Float64()
	}
	return sc
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks that the scenario is inside the generator's envelope.
// Decode runs it on every input, so a fuzzer can't smuggle a degenerate
// scenario (NaN loads, zero-core machines, unbounded durations) past the
// harness.
func (s Scenario) Validate() error {
	if s.Cores < 1 || s.Cores > maxCores {
		return fmt.Errorf("conformance: cores %d outside [1,%d]", s.Cores, maxCores)
	}
	if s.DurationUs < minDurationUs || s.DurationUs > maxDurationUs {
		return fmt.Errorf("conformance: duration %dµs outside [%d,%d]", s.DurationUs, minDurationUs, maxDurationUs)
	}
	if s.WarmupUs < 0 || s.WarmupUs > maxDurationUs {
		return fmt.Errorf("conformance: warmup %dµs outside [0,%d]", s.WarmupUs, maxDurationUs)
	}
	if !finite(s.BWTargetFrac) || s.BWTargetFrac < 0 || s.BWTargetFrac >= 1 {
		return fmt.Errorf("conformance: bw target %v outside [0,1)", s.BWTargetFrac)
	}
	if len(s.Apps) == 0 || len(s.Apps) > maxApps {
		return fmt.Errorf("conformance: %d apps outside [1,%d]", len(s.Apps), maxApps)
	}
	seen := make(map[string]bool, len(s.Apps))
	for i, a := range s.Apps {
		if err := a.Validate(maxDurationUs); err != nil {
			return fmt.Errorf("conformance: app %d: %w", i, err)
		}
		if seen[a.Name] {
			return fmt.Errorf("conformance: duplicate app name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// Spec renders the scenario as a harness RunSpec for the named scheduler —
// the bridge onto the shared plan executor. Scenario.Config() and
// Spec(name).Config() build identical configs.
func (s Scenario) Spec(scheduler string) harness.RunSpec {
	apps := make([]AppSpec, len(s.Apps))
	copy(apps, s.Apps)
	return harness.RunSpec{
		Scheduler:    scheduler,
		Seed:         s.Seed,
		Cores:        s.Cores,
		DurationNs:   s.DurationUs * int64(sim.Microsecond),
		WarmupNs:     s.WarmupUs * int64(sim.Microsecond),
		BWTargetFrac: s.BWTargetFrac,
		Apps:         apps,
	}
}

// Config builds a fresh sched.Config for one run. Apps are constructed
// anew on every call: workload.App values accumulate run state, so two
// runs must never share them.
func (s Scenario) Config() sched.Config {
	return s.Spec("").Config()
}

// ScaleLoad returns a copy with every L-app's offered load scaled by f —
// the knob behind the load-monotonicity metamorphic oracle.
func (s Scenario) ScaleLoad(f float64) Scenario {
	out := s.clone()
	for i := range out.Apps {
		if out.Apps[i].Kind == "L" {
			out.Apps[i].LoadFrac *= f
		}
	}
	return out
}

// clone deep-copies the scenario (Burst pointers included).
func (s Scenario) clone() Scenario {
	out := s
	out.Apps = make([]AppSpec, len(s.Apps))
	copy(out.Apps, s.Apps)
	for i := range out.Apps {
		if b := out.Apps[i].Burst; b != nil {
			bb := *b
			out.Apps[i].Burst = &bb
		}
	}
	return out
}

// Encode renders the scenario as a one-line JSON document — the replay
// token conformancebench prints and accepts.
func (s Scenario) Encode() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Scenario has no unmarshalable fields; this cannot happen.
		panic(err)
	}
	return string(b)
}

// Decode parses and validates an encoded scenario. Unknown fields are
// rejected so a typo in a hand-edited replay token fails loudly instead of
// silently testing something else.
func Decode(enc string) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader([]byte(enc)))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("conformance: decode: %w", err)
	}
	if dec.More() {
		return Scenario{}, fmt.Errorf("conformance: trailing data after scenario")
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}
