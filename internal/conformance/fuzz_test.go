package conformance

import (
	"testing"
)

// FuzzScenarioDecode feeds arbitrary bytes to the replay-token decoder.
// Decode is the harness's trust boundary — replay tokens arrive from shell
// command lines and CI logs — so the property is total: either the token
// is rejected with an error, or the resulting scenario is fully inside the
// generator's envelope (Validate passes), builds a valid scheduler config,
// and round-trips byte-for-byte through Encode.
func FuzzScenarioDecode(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(Generate(seed, true).Encode())
		f.Add(Generate(seed, false).Encode())
	}
	f.Add(`{"seed":1,"cores":1,"duration_us":100,"warmup_us":0,"apps":[{"name":"a","kind":"B"}]}`)
	f.Add(`{"seed":0,"cores":64,"duration_us":50,"warmup_us":0,"apps":[{"name":"x","kind":"L","dist":"silo","load_frac":2}]}`)
	f.Add(`not json at all`)
	f.Add(`{"apps":null}`)
	f.Fuzz(func(t *testing.T, enc string) {
		sc, err := Decode(enc)
		if err != nil {
			return
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("Decode accepted a scenario Validate rejects: %v\n%s", err, enc)
		}
		cfg := sc.Config()
		if err := cfg.Validate(); err != nil {
			t.Fatalf("decoded scenario builds an invalid sched.Config: %v\n%s", err, enc)
		}
		re, err := Decode(sc.Encode())
		if err != nil {
			t.Fatalf("re-encode does not decode: %v\n%s", err, sc.Encode())
		}
		if re.Encode() != sc.Encode() {
			t.Fatalf("round trip unstable:\n%s\n%s", sc.Encode(), re.Encode())
		}
	})
}
