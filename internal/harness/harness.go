// Package harness is the unified run-plan layer every sweep-shaped driver
// in the reproduction builds on: the experiments package's figure and table
// regenerators, the conformance scenario sweep, and the chaos seed sweeps.
//
// It separates *what* to run from *how* to run it:
//
//   - RunSpec is a declarative, serializable description of one scheduler
//     run — scheduler, apps, load, cores, seed, duration, cost-model
//     overrides, fault plan, observability flag — with a canonical
//     content hash (Hash);
//   - Plan composes RunSpecs, typically from sweep axes (Axes), in the
//     order their results must be folded;
//   - Executor runs independent specs concurrently on a bounded worker
//     pool but addresses every result by its plan index, so folding the
//     results in plan order yields byte-identical output at any
//     parallelism — the property the parallel-determinism oracle in
//     internal/conformance enforces;
//   - Cache stores results content-addressed by spec hash, so re-running
//     a figure re-executes only the cells whose axes (or scheduler epoch)
//     changed.
//
// Each simulated run stays single-threaded and deterministic; the harness
// exploits host cores only *across* independent runs, the way Caladan's
// IOKernel dispatches independent work to idle cores while each core's
// dispatch stays serialized.
package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"vessel/internal/clustersched"
	"vessel/internal/cpu"
	"vessel/internal/faultinject"
	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/workload"
)

// BurstSpec describes an optional ON/OFF arrival modulation.
type BurstSpec struct {
	OnUs   int64   `json:"on_us"`
	OffUs  int64   `json:"off_us"`
	Factor float64 `json:"factor"`
}

// AppSpec describes one application declaratively. Specs — not
// workload.App values — are what plans and scenarios carry, because an App
// accumulates run state (queues, counters, histograms) and must be built
// fresh for every scheduler run.
type AppSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "L" or "B"

	// L-app fields. LoadFrac is the offered load as a fraction of the
	// run's ideal capacity (cores / mean service time).
	Dist     string     `json:"dist,omitempty"` // "memcached" or "silo"
	LoadFrac float64    `json:"load_frac,omitempty"`
	Priority int        `json:"priority,omitempty"`
	Burst    *BurstSpec `json:"burst,omitempty"`

	// B-app fields.
	BWDemand float64 `json:"bw_demand,omitempty"`
	MemFrac  float64 `json:"mem_frac,omitempty"`
}

// ServiceDist resolves the spec's service distribution (L-apps).
func (a AppSpec) ServiceDist() workload.ServiceDist {
	if a.Dist == "silo" {
		return workload.Silo()
	}
	return workload.Memcached()
}

// Build constructs a fresh workload.App for a run on the given core count.
// L-app rates scale with cores: rate = LoadFrac × IdealLCapacity(cores).
func (a AppSpec) Build(cores int) *workload.App {
	switch a.Kind {
	case "L":
		rate := a.LoadFrac * sched.IdealLCapacity(cores, a.ServiceDist())
		app := workload.NewLApp(a.Name, a.ServiceDist(), rate)
		app.Priority = a.Priority
		if a.Burst != nil {
			app.Burst = &workload.Burst{
				OnMean:  sim.Duration(a.Burst.OnUs) * sim.Microsecond,
				OffMean: sim.Duration(a.Burst.OffUs) * sim.Microsecond,
				Factor:  a.Burst.Factor,
			}
		}
		return app
	default:
		return workload.NewBApp(a.Name, a.BWDemand, a.MemFrac)
	}
}

func finite(v float64) bool {
	return !(v != v) && v < 1e308 && v > -1e308
}

// Validate checks the spec against the generation envelope shared with the
// conformance harness; maxPeriodUs bounds burst ON/OFF period lengths.
func (a AppSpec) Validate(maxPeriodUs int64) error {
	if a.Name == "" || len(a.Name) > 32 {
		return fmt.Errorf("harness: app has bad name %q", a.Name)
	}
	switch a.Kind {
	case "L":
		if a.Dist != "memcached" && a.Dist != "silo" {
			return fmt.Errorf("harness: app %q has unknown dist %q", a.Name, a.Dist)
		}
		if !finite(a.LoadFrac) || a.LoadFrac <= 0 || a.LoadFrac > 2 {
			return fmt.Errorf("harness: app %q load %v outside (0,2]", a.Name, a.LoadFrac)
		}
		if a.Priority < 0 || a.Priority > 8 {
			return fmt.Errorf("harness: app %q priority %d outside [0,8]", a.Name, a.Priority)
		}
		if b := a.Burst; b != nil {
			if b.OnUs < 1 || b.OnUs > maxPeriodUs || b.OffUs < 1 || b.OffUs > maxPeriodUs {
				return fmt.Errorf("harness: app %q burst periods outside [1,%d]µs", a.Name, maxPeriodUs)
			}
			if !finite(b.Factor) || b.Factor < 1 || b.Factor > 64 {
				return fmt.Errorf("harness: app %q burst factor %v outside [1,64]", a.Name, b.Factor)
			}
		}
		if a.BWDemand != 0 || a.MemFrac != 0 {
			return fmt.Errorf("harness: L-app %q carries B-app fields", a.Name)
		}
	case "B":
		if !finite(a.BWDemand) || a.BWDemand < 0 || a.BWDemand > 64 {
			return fmt.Errorf("harness: app %q bw demand %v outside [0,64]", a.Name, a.BWDemand)
		}
		if !finite(a.MemFrac) || a.MemFrac < 0 || a.MemFrac > 1 {
			return fmt.Errorf("harness: app %q mem frac %v outside [0,1]", a.Name, a.MemFrac)
		}
		if a.Dist != "" || a.LoadFrac != 0 || a.Priority != 0 || a.Burst != nil {
			return fmt.Errorf("harness: B-app %q carries L-app fields", a.Name)
		}
	default:
		return fmt.Errorf("harness: app %q has unknown kind %q", a.Name, a.Kind)
	}
	return nil
}

// RunSpec declares one scheduler run. Everything a run depends on is a
// field here, so two equal specs produce byte-identical results and the
// canonical hash is a complete cache key.
type RunSpec struct {
	// Scheduler names the implementation, exactly as Scheduler.Name()
	// reports it: "VESSEL", "Caladan", "Caladan-DR-L", "Caladan-DR-H",
	// "Arachne", "Linux".
	Scheduler    string    `json:"scheduler"`
	Seed         uint64    `json:"seed"`
	Cores        int       `json:"cores"`
	DurationNs   int64     `json:"duration_ns"`
	WarmupNs     int64     `json:"warmup_ns"`
	BWTargetFrac float64   `json:"bw_target_frac,omitempty"`
	Apps         []AppSpec `json:"apps"`
	// Costs overrides the calibrated cost model; nil means cpu.Default().
	// The full model serializes into the spec (and therefore the hash),
	// so an ablation that tweaks one constant occupies its own cache
	// cells.
	Costs *cpu.CostModel `json:"costs,omitempty"`
	// Faults optionally carries a deterministic fault-injection plan.
	// sched-level runs ignore it (fault plans drive Manager chaos runs);
	// chaos cells key their cached results on it.
	Faults *faultinject.Plan `json:"faults,omitempty"`
	// Obs asks the executor to attach its Observer to this run. Obs runs
	// are never cached (a cached result records no spans) and are only
	// byte-stable under Parallel == 1, because the spans of concurrent
	// runs would interleave in one shared Observer.
	Obs bool `json:"obs,omitempty"`
	// ClusterPolicy optionally names the upper-level core-allocation
	// policy for two-level cluster runs, validated against
	// clustersched.Names(). Empty means single-level; omitempty keeps
	// the hashes of every existing single-level spec unchanged.
	ClusterPolicy string `json:"cluster_policy,omitempty"`
}

// ValidateClusterPolicy checks the optional cluster-policy axis against
// the registered policies. Empty is always valid (single-level run).
func (s RunSpec) ValidateClusterPolicy() error {
	if s.ClusterPolicy == "" {
		return nil
	}
	for _, n := range clustersched.Names() {
		if n == s.ClusterPolicy {
			return nil
		}
	}
	return fmt.Errorf("harness: unknown cluster policy %q (have %v)",
		s.ClusterPolicy, clustersched.Names())
}

// Config materializes the spec into a sched.Config. Apps are built fresh
// on every call: two runs must never share workload.App state.
func (s RunSpec) Config() sched.Config {
	cfg := sched.Config{
		Seed:         s.Seed,
		Cores:        s.Cores,
		Duration:     sim.Duration(s.DurationNs),
		Warmup:       sim.Duration(s.WarmupNs),
		BWTargetFrac: s.BWTargetFrac,
		Costs:        s.Costs,
	}
	if cfg.Costs == nil {
		cfg.Costs = cpu.Default()
	} else {
		cfg.Costs = cfg.Costs.Clone() // runs must not share a mutable model
	}
	for _, a := range s.Apps {
		cfg.Apps = append(cfg.Apps, a.Build(s.Cores))
	}
	return cfg
}

// hashFormat versions the canonical encoding; bump it when the spec schema
// or result serialization changes incompatibly, invalidating every cache.
const hashFormat = 1

// Hash returns the spec's canonical content hash: SHA-256 over the format
// version, the named scheduler's implementation epoch, and the spec's
// canonical JSON. Two specs hash equal iff every axis — scheduler, seed,
// cores, durations, apps, cost model, fault plan — is equal.
func (s RunSpec) Hash() string {
	return HashKey("runspec", schedulerEpoch(s.Scheduler), s)
}

// HashKey builds a content hash for an arbitrary cacheable computation:
// a kind tag (namespacing the key space), an implementation epoch, and the
// key's canonical JSON. encoding/json renders struct fields in declaration
// order and map keys sorted, so the encoding — and the hash — is a pure
// function of the key's value.
func HashKey(kind string, epoch int, key any) string {
	b, err := json.Marshal(key)
	if err != nil {
		// Keys are plain data structs; a marshal failure is a programming
		// error in the caller, not a runtime condition.
		panic(fmt.Sprintf("harness: unhashable %s key: %v", kind, err))
	}
	h := sha256.New()
	fmt.Fprintf(h, "v%d %s epoch%d ", hashFormat, kind, epoch)
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// Plan is an ordered list of runs. Order matters: the executor may run
// specs in any interleaving, but results are always folded in plan order.
type Plan struct {
	Specs []RunSpec
}

// Add appends a spec and returns its plan index.
func (p *Plan) Add(s RunSpec) int {
	p.Specs = append(p.Specs, s)
	return len(p.Specs) - 1
}

// Len returns the number of specs.
func (p *Plan) Len() int { return len(p.Specs) }

// Axes composes a Plan from sweep axes: the cartesian product
// schedulers × loads × seeds, in that nesting order (seeds fastest).
// Build maps one grid cell to its spec; returning false skips the cell
// (per-system load caps, for example). Empty axes default to a single
// zero-valued point, so one-axis sweeps list only the axis they vary.
type Axes struct {
	Schedulers []string
	Loads      []float64
	Seeds      []uint64
	Build      func(scheduler string, load float64, seed uint64) (RunSpec, bool)
}

// Plan expands the axes into an ordered plan.
func (a Axes) Plan() Plan {
	scheds := a.Schedulers
	if len(scheds) == 0 {
		scheds = []string{""}
	}
	loads := a.Loads
	if len(loads) == 0 {
		loads = []float64{0}
	}
	seeds := a.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	var p Plan
	for _, s := range scheds {
		for _, lf := range loads {
			for _, seed := range seeds {
				if spec, ok := a.Build(s, lf, seed); ok {
					p.Add(spec)
				}
			}
		}
	}
	return p
}
