package harness

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"vessel/internal/sim"
)

func quickPlan() Plan {
	return Axes{
		Schedulers: []string{"VESSEL", "Caladan", "Linux"},
		Loads:      []float64{0.2, 0.5},
		Build: func(scheduler string, load float64, _ uint64) (RunSpec, bool) {
			return RunSpec{
				Scheduler:  scheduler,
				Seed:       7,
				Cores:      4,
				DurationNs: int64(2 * sim.Millisecond),
				WarmupNs:   int64(500 * sim.Microsecond),
				Apps: []AppSpec{
					{Name: "mc", Kind: "L", Dist: "memcached", LoadFrac: load},
					{Name: "bg", Kind: "B", BWDemand: 0.5, MemFrac: 0.05},
				},
			}, true
		},
	}.Plan()
}

// TestRunPlanParallelDeterminism: the same plan at Parallel 1 and
// Parallel 8 must produce identical canonical result bytes in identical
// plan order — the core determinism contract of the executor.
func TestRunPlanParallelDeterminism(t *testing.T) {
	plan := quickPlan()
	seq, err := Sequential().RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&Executor{Parallel: 8}).RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != plan.Len() || len(par) != plan.Len() {
		t.Fatalf("lengths: seq=%d par=%d plan=%d", len(seq), len(par), plan.Len())
	}
	for i := range seq {
		if seq[i].Hash != par[i].Hash {
			t.Fatalf("cell %d: hash %s vs %s", i, seq[i].Hash, par[i].Hash)
		}
		if !bytes.Equal(seq[i].Result.Canonical(), par[i].Result.Canonical()) {
			t.Fatalf("cell %d (%s): canonical bytes diverge between -parallel 1 and -parallel 8",
				i, plan.Specs[i].Scheduler)
		}
	}
}

// TestMapLowestIndexErrorWins: when several cells fail, Map must report
// the lowest-index error regardless of completion order, so failure
// output is as deterministic as success output.
func TestMapLowestIndexErrorWins(t *testing.T) {
	for _, workers := range []int{1, 8} {
		e := &Executor{Parallel: workers}
		err := e.Map(16, func(i int) error {
			if i%2 == 1 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 1 failed" {
			t.Fatalf("parallel=%d: err = %v, want cell 1's", workers, err)
		}
	}
}

func TestMapZeroAndNegative(t *testing.T) {
	calls := 0
	if err := Sequential().Map(0, func(int) error { calls++; return nil }); err != nil || calls != 0 {
		t.Fatalf("n=0: err=%v calls=%d", err, calls)
	}
	e := &Executor{Parallel: -3} // resolves to DefaultParallel
	seen := make([]bool, 5)
	if err := e.Map(5, func(i int) error { seen[i] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d never ran", i)
		}
	}
}

// TestCacheHitAndInvalidation: a warm cache must serve every unchanged
// cell; changing any axis must miss.
func TestCacheHitAndInvalidation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan := quickPlan()

	cold, err := (&Executor{Parallel: 4, Cache: cache}).RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range cold {
		if rr.Cached {
			t.Fatalf("cold cell %d served from cache", i)
		}
	}
	hits, misses, puts := cache.Stats()
	if hits != 0 || misses != int64(plan.Len()) || puts != int64(plan.Len()) {
		t.Fatalf("cold stats: hits=%d misses=%d puts=%d", hits, misses, puts)
	}

	warm, err := (&Executor{Parallel: 4, Cache: cache}).RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range warm {
		if !rr.Cached {
			t.Fatalf("warm cell %d missed the cache", i)
		}
		if !bytes.Equal(warm[i].Result.Canonical(), cold[i].Result.Canonical()) {
			t.Fatalf("cell %d: cached result differs from computed result", i)
		}
	}

	// Nudge one axis: only that cell misses.
	changed := plan
	changed.Specs = append([]RunSpec(nil), plan.Specs...)
	changed.Specs[3].Seed++
	rerun, err := (&Executor{Parallel: 1, Cache: cache}).RunPlan(changed)
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range rerun {
		if want := i != 3; rr.Cached != want {
			t.Fatalf("cell %d after axis change: cached=%v want %v", i, rr.Cached, want)
		}
	}
}

// TestRunOneObsSkipsCache: observability runs must never be served from
// (or stored in) the cache — a cached result records no spans.
func TestRunOneObsSkipsCache(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := quickPlan().Specs[0]
	e := &Executor{Parallel: 1, Cache: cache}
	if _, err := e.RunOne(spec); err != nil {
		t.Fatal(err)
	}
	obsSpec := spec
	obsSpec.Obs = true
	rr, err := e.RunOne(obsSpec)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Cached {
		t.Fatal("obs run served from cache")
	}
	_, _, puts := cache.Stats()
	if puts != 1 {
		t.Fatalf("obs run stored in cache (puts=%d)", puts)
	}
}

func TestRunPlanUnknownScheduler(t *testing.T) {
	plan := quickPlan()
	plan.Specs[2].Scheduler = "bogus"
	if _, err := Sequential().RunPlan(plan); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestCachedJSON(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Executor{Parallel: 1, Cache: cache}
	type key struct {
		N int `json:"n"`
	}
	calls := 0
	compute := func() (int, error) { calls++; return 99, nil }
	v, cached, err := CachedJSON(e, "t", 1, key{4}, compute)
	if err != nil || v != 99 || cached || calls != 1 {
		t.Fatalf("cold: v=%d cached=%v calls=%d err=%v", v, cached, calls, err)
	}
	v, cached, err = CachedJSON(e, "t", 1, key{4}, compute)
	if err != nil || v != 99 || !cached || calls != 1 {
		t.Fatalf("warm: v=%d cached=%v calls=%d err=%v", v, cached, calls, err)
	}
	// A different epoch is a different cell.
	_, cached, err = CachedJSON(e, "t", 2, key{4}, compute)
	if err != nil || cached || calls != 2 {
		t.Fatalf("epoch bump: cached=%v calls=%d err=%v", cached, calls, err)
	}
	// Without a cache, compute runs every time.
	plain := Sequential()
	_, cached, err = CachedJSON(plain, "t", 1, key{4}, compute)
	if err != nil || cached || calls != 3 {
		t.Fatalf("no cache: cached=%v calls=%d err=%v", cached, calls, err)
	}
}
