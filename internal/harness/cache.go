package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// cacheEntry is the on-disk envelope: the key is stored next to the value
// so `cat` on a cache file shows exactly which cell it holds, and Get can
// reject hash collisions with mismatched keys (paranoia, not expectation).
type cacheEntry struct {
	Kind  string          `json:"kind"`
	Key   json.RawMessage `json:"key"`
	Value json.RawMessage `json:"value"`
}

// Cache is a content-addressed result store: one JSON file per spec hash
// under a directory. Entries never mutate — a hash fully determines its
// value — so concurrent readers and writers only race on whole-file
// creation, which the temp-file+rename Put makes atomic.
type Cache struct {
	dir                string
	hits, misses, puts atomic.Int64
}

// OpenCache creates (if needed) and opens a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}

// Get loads the entry for hash into out (a JSON-decodable pointer).
// It returns false on a miss; a present-but-corrupt entry is treated as a
// miss (the next Put rewrites it).
func (c *Cache) Get(hash string, out any) bool {
	b, err := os.ReadFile(c.path(hash))
	if err != nil {
		c.misses.Add(1)
		return false
	}
	var e cacheEntry
	if err := json.Unmarshal(b, &e); err != nil || e.Value == nil {
		c.misses.Add(1)
		return false
	}
	if err := json.Unmarshal(e.Value, out); err != nil {
		c.misses.Add(1)
		return false
	}
	c.hits.Add(1)
	return true
}

// Put stores value under hash, recording key (the hashed spec) alongside
// for debuggability. The write is atomic: temp file in the same directory,
// then rename.
func (c *Cache) Put(hash, kind string, key, value any) error {
	kb, err := json.Marshal(key)
	if err != nil {
		return fmt.Errorf("harness: cache key: %w", err)
	}
	vb, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("harness: cache value: %w", err)
	}
	b, err := json.MarshalIndent(cacheEntry{Kind: kind, Key: kb, Value: vb}, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-"+hash+"-*")
	if err != nil {
		return fmt.Errorf("harness: cache put: %w", err)
	}
	_, werr := tmp.Write(append(b, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache put: %w", errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), c.path(hash)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache put: %w", err)
	}
	c.puts.Add(1)
	return nil
}

// Stats reports hit/miss/store counts since open.
func (c *Cache) Stats() (hits, misses, puts int64) {
	return c.hits.Load(), c.misses.Load(), c.puts.Load()
}
