package harness

import (
	"encoding/json"
	"strings"
	"testing"

	"vessel/internal/clustersched"
	"vessel/internal/cpu"
	"vessel/internal/faultinject"
	"vessel/internal/sim"
)

func baseSpec() RunSpec {
	return RunSpec{
		Scheduler:  "VESSEL",
		Seed:       42,
		Cores:      8,
		DurationNs: int64(5 * sim.Millisecond),
		WarmupNs:   int64(1 * sim.Millisecond),
		Apps: []AppSpec{
			{Name: "mc", Kind: "L", Dist: "memcached", LoadFrac: 0.5},
			{Name: "bg", Kind: "B", BWDemand: 0.5, MemFrac: 0.05},
		},
	}
}

// TestHashChangesWithEveryAxis: the content hash must move when any
// field of the spec moves — otherwise the cache returns a stale result
// for a changed cell.
func TestHashChangesWithEveryAxis(t *testing.T) {
	base := baseSpec()
	h0 := base.Hash()
	if base.Hash() != h0 {
		t.Fatal("hash is not stable across calls")
	}

	mutations := map[string]func(*RunSpec){
		"scheduler": func(s *RunSpec) { s.Scheduler = "Caladan" },
		"seed":      func(s *RunSpec) { s.Seed = 43 },
		"cores":     func(s *RunSpec) { s.Cores = 4 },
		"duration":  func(s *RunSpec) { s.DurationNs++ },
		"warmup":    func(s *RunSpec) { s.WarmupNs++ },
		"bw-target": func(s *RunSpec) { s.BWTargetFrac = 0.5 },
		"app-load":  func(s *RunSpec) { s.Apps[0].LoadFrac = 0.6 },
		"app-name":  func(s *RunSpec) { s.Apps[0].Name = "mc2" },
		"app-burst": func(s *RunSpec) { s.Apps[0].Burst = &BurstSpec{OnUs: 100, OffUs: 100, Factor: 2} },
		"app-prio":  func(s *RunSpec) { s.Apps[1].Priority = 3 },
		"costs": func(s *RunSpec) {
			cm := cpu.Default()
			cm.WrPkruCycles++
			s.Costs = cm
		},
		"faults":         func(s *RunSpec) { s.Faults = &faultinject.Plan{Seed: 1, Random: 2} },
		"obs":            func(s *RunSpec) { s.Obs = true },
		"cluster-policy": func(s *RunSpec) { s.ClusterPolicy = "fairshare" },
	}
	seen := map[string]string{h0: "base"}
	for name, mutate := range mutations {
		s := baseSpec()
		s.Apps = append([]AppSpec(nil), s.Apps...) // deep enough for these mutations
		mutate(&s)
		h := s.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("axis %q: hash collides with %q", name, prev)
		}
		seen[h] = name
	}
}

// TestHashEpochSeparatesSchedulers: two specs differing only in scheduler
// must hash apart even before the epoch prefix, and HashKey itself must
// separate kinds and epochs.
func TestHashKeyKindAndEpoch(t *testing.T) {
	key := struct {
		A int `json:"a"`
	}{7}
	h1 := HashKey("table1", 1, key)
	if h1 != HashKey("table1", 1, key) {
		t.Fatal("HashKey not deterministic")
	}
	if h1 == HashKey("memband", 1, key) {
		t.Fatal("kind does not separate hashes")
	}
	if h1 == HashKey("table1", 2, key) {
		t.Fatal("epoch does not separate hashes")
	}
}

func TestSchedulerRegistry(t *testing.T) {
	names := SchedulerNames()
	if len(names) != 6 {
		t.Fatalf("scheduler names = %v", names)
	}
	for _, name := range names {
		s, err := SchedulerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Fatalf("registry name %q resolves to scheduler %q", name, s.Name())
		}
	}
	if _, err := SchedulerByName("vessel"); err != nil {
		t.Fatal("lookup should be case-insensitive:", err)
	}
	if _, err := SchedulerByName("nope"); err == nil || !strings.Contains(err.Error(), "known:") {
		t.Fatalf("unknown scheduler error should list known names, got %v", err)
	}
}

func TestAxesPlanComposition(t *testing.T) {
	var got []string
	p := Axes{
		Schedulers: []string{"VESSEL", "Linux"},
		Loads:      []float64{0.2, 0.8},
		Seeds:      []uint64{1},
		Build: func(scheduler string, load float64, seed uint64) (RunSpec, bool) {
			if scheduler == "Linux" && load > 0.5 {
				return RunSpec{}, false // out of envelope: skipped
			}
			s := baseSpec()
			s.Scheduler = scheduler
			s.Apps[0].LoadFrac = load
			s.Seed = seed
			got = append(got, scheduler)
			return s, true
		},
	}.Plan()
	if p.Len() != 3 {
		t.Fatalf("plan length = %d, want 3 (one cell skipped)", p.Len())
	}
	// Nesting order: schedulers outermost.
	if p.Specs[0].Scheduler != "VESSEL" || p.Specs[2].Scheduler != "Linux" {
		t.Fatalf("unexpected order: %v", got)
	}
}

func TestSpecValidateAndConfig(t *testing.T) {
	s := baseSpec()
	cfg := s.Config()
	if len(cfg.Apps) != 2 || cfg.Seed != 42 || cfg.Cores != 8 {
		t.Fatalf("config: %+v", cfg)
	}
	// The L-app's rate scales with the spec's core count.
	if cfg.Apps[0].RateK <= 0 {
		t.Fatal("L-app rate not derived")
	}
	// Apps are built fresh per call: two runs must never share state.
	cfg2 := s.Config()
	if cfg.Apps[0] == cfg2.Apps[0] {
		t.Fatal("Config reuses workload.App values across runs")
	}
	// Config must not alias the default cost model when Costs is nil.
	cfg.Costs.WrPkruCycles++
	if cpu.Default().WrPkruCycles == cfg.Costs.WrPkruCycles {
		t.Fatal("Config aliases the shared default cost model")
	}

	bad := baseSpec()
	bad.Apps[0].LoadFrac = -1
	if err := bad.Apps[0].Validate(1000); err == nil {
		t.Fatal("negative load accepted")
	}
	if err := s.Apps[0].Validate(1000); err != nil {
		t.Fatal(err)
	}
}

// TestClusterPolicyAxis: the optional two-level axis validates against the
// registered cluster policies, and an empty value serializes to nothing —
// so every pre-existing single-level spec keeps its exact cache hash.
func TestClusterPolicyAxis(t *testing.T) {
	s := baseSpec()
	if err := s.ValidateClusterPolicy(); err != nil {
		t.Fatalf("empty policy rejected: %v", err)
	}
	if b, _ := json.Marshal(s); strings.Contains(string(b), "cluster_policy") {
		t.Fatalf("empty cluster policy leaks into canonical JSON: %s", b)
	}
	for _, name := range clustersched.Names() {
		s.ClusterPolicy = name
		if err := s.ValidateClusterPolicy(); err != nil {
			t.Errorf("registered policy %q rejected: %v", name, err)
		}
	}
	s.ClusterPolicy = "roundrobin"
	if err := s.ValidateClusterPolicy(); err == nil {
		t.Fatal("unknown cluster policy accepted")
	}
	// The executor refuses the spec before touching scheduler or cache.
	if _, err := Sequential().RunOne(s); err == nil {
		t.Fatal("RunOne accepted a spec with an unknown cluster policy")
	}
}
