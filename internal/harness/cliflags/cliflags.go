// Package cliflags unifies the command-line surface shared by the
// repository's drivers (experiments, conformancebench, chaosbench,
// vesselsim): one spelling for -seed/-quick/-parallel/-cache/-out, one
// set of exit codes, and one constructor turning the parallel/cache
// flags into a harness.Executor. Keeping the flag definitions here means
// every tool documents the same contract — in particular that -parallel
// changes wall-clock time only, never output bytes.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vessel/internal/harness"
)

// Exit codes shared by every driver.
const (
	// ExitOK: every run and oracle passed.
	ExitOK = 0
	// ExitFailure: a run failed or an oracle found a violation.
	ExitFailure = 1
	// ExitUsage: bad flags or undecodable input.
	ExitUsage = 2
)

// Seed registers the shared -seed flag with the given default.
func Seed(def uint64) *uint64 {
	return flag.Uint64("seed", def, "simulation seed")
}

// Quick registers the shared -quick flag.
func Quick() *bool {
	return flag.Bool("quick", false, "shrink durations and sweep density (CI-friendly)")
}

// Parallel registers the shared -parallel flag. The default is the
// host's usable width; 1 forces sequential execution. Output bytes are
// identical at every setting — parallelism only changes wall-clock time.
func Parallel() *int {
	return flag.Int("parallel", harness.DefaultParallel(),
		"worker-pool width for independent runs (output is byte-identical at any width)")
}

// CacheDir registers the shared -cache flag (empty disables caching).
func CacheDir() *string {
	return flag.String("cache", "",
		"content-addressed run-cache directory (empty = no caching)")
}

// Out registers the shared -out flag (empty means stdout).
func Out() *string {
	return flag.String("out", "", "write the report to this file instead of stdout")
}

// Exec builds the harness executor the parallel/cache flags describe.
func Exec(parallel int, cacheDir string) (*harness.Executor, error) {
	e := &harness.Executor{Parallel: parallel}
	if cacheDir != "" {
		c, err := harness.OpenCache(cacheDir)
		if err != nil {
			return nil, fmt.Errorf("open cache: %w", err)
		}
		e.Cache = c
	}
	return e, nil
}

// Fail prints "tool: err" to stderr and exits with ExitFailure.
func Fail(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(ExitFailure)
}

// UsageErr prints "tool: err" to stderr and returns ExitUsage, for
// drivers that funnel exit codes through one os.Exit call.
func UsageErr(tool string, err error) int {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	return ExitUsage
}

// OutWriter resolves the -out flag: an opened file when path is
// non-empty, os.Stdout otherwise. close flushes and closes the file (a
// no-op for stdout) and must be called even on error paths.
func OutWriter(path string) (w io.Writer, close func() error, err error) {
	if path == "" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}
