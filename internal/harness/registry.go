package harness

import (
	"fmt"
	"sort"
	"strings"

	"vessel/internal/sched"
	"vessel/internal/sched/arachne"
	"vessel/internal/sched/caladan"
	"vessel/internal/sched/cfs"
	"vessel/internal/vessel"
)

// schedulerEntry couples a constructor with an implementation epoch. The
// epoch folds into every RunSpec hash for that scheduler: bumping it when
// the implementation's behaviour changes invalidates exactly that
// scheduler's cached cells and nobody else's.
type schedulerEntry struct {
	make  func() sched.Scheduler
	epoch int
}

// registry maps Scheduler.Name() strings (lower-cased) to entries. All
// writes happen in this package's init-time literal; runtime access is
// read-only, so concurrent executor workers need no locking.
var registry = map[string]schedulerEntry{
	"vessel":       {func() sched.Scheduler { return vessel.Simulator{} }, 1},
	"caladan":      {func() sched.Scheduler { return caladan.Simulator{} }, 1},
	"caladan-dr-l": {func() sched.Scheduler { return caladan.Simulator{Variant: caladan.DRLow} }, 1},
	"caladan-dr-h": {func() sched.Scheduler { return caladan.Simulator{Variant: caladan.DRHigh} }, 1},
	"arachne":      {func() sched.Scheduler { return arachne.Simulator{} }, 1},
	"linux":        {func() sched.Scheduler { return cfs.Simulator{} }, 1},
}

// SchedulerByName resolves a Scheduler.Name() string (case-insensitive)
// to a fresh scheduler value.
func SchedulerByName(name string) (sched.Scheduler, error) {
	e, ok := registry[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("harness: unknown scheduler %q (known: %s)", name, strings.Join(SchedulerNames(), ", "))
	}
	return e.make(), nil
}

// SchedulerNames lists the registered canonical names, sorted.
func SchedulerNames() []string {
	names := make([]string, 0, len(registry))
	for k := range registry {
		e := registry[k]
		names = append(names, e.make().Name())
	}
	sort.Strings(names)
	return names
}

// schedulerEpoch returns the implementation epoch folded into RunSpec
// hashes; unknown names get epoch 0 (they fail later at run time with a
// clear error from SchedulerByName).
func schedulerEpoch(name string) int {
	return registry[strings.ToLower(name)].epoch
}
