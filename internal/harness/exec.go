package harness

import (
	"runtime"
	"sync"

	"vessel/internal/obs"
	"vessel/internal/sched"
)

// DefaultParallel returns the default worker count:
// min(GOMAXPROCS, host cores), at least 1.
func DefaultParallel() int {
	p := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < p {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Executor runs plans. The zero value runs sequentially with no cache; it
// is safe for concurrent use by multiple goroutines once configured.
type Executor struct {
	// Parallel bounds concurrent runs; values below 1 mean DefaultParallel.
	Parallel int
	// Cache, when non-nil, serves and stores results content-addressed by
	// spec hash. Cached results bypass scheduler execution entirely —
	// including post-run hooks — so oracle-bearing sweeps (conformance)
	// run uncached.
	Cache *Cache
	// Observer, when non-nil, attaches to specs with Obs set. A shared
	// Observer accumulates spans across runs, so it forces sequential
	// execution (see parallel) to keep span order deterministic.
	Observer *obs.Observer
}

// Sequential returns an executor that runs one spec at a time, uncached.
func Sequential() *Executor { return &Executor{Parallel: 1} }

// parallel resolves the effective worker count. A shared Observer pins it
// to 1: spans from concurrent runs would interleave nondeterministically
// in the single span ring.
func (e *Executor) parallel() int {
	if e.Observer != nil {
		return 1
	}
	p := e.Parallel
	if p < 1 {
		p = DefaultParallel()
	}
	return p
}

// Map calls fn(0..n-1) on the executor's worker pool and returns the
// error of the lowest failing index, or nil. Every index runs regardless
// of other indices' failures, so partial results land in caller-owned
// slots deterministically; the lowest-index error rule makes the reported
// error independent of goroutine interleaving.
func (e *Executor) Map(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := e.parallel()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunResult is one executed (or cache-served) spec.
type RunResult struct {
	Spec   RunSpec
	Hash   string
	Result sched.Result
	Cached bool
}

// RunOne executes a single spec: cache lookup (unless the spec records
// observability spans), scheduler run through sched.Run, cache store.
func (e *Executor) RunOne(spec RunSpec) (RunResult, error) {
	rr := RunResult{Spec: spec, Hash: spec.Hash()}
	if err := spec.ValidateClusterPolicy(); err != nil {
		return rr, err
	}
	cacheable := e.Cache != nil && !spec.Obs
	if cacheable && e.Cache.Get(rr.Hash, &rr.Result) {
		rr.Cached = true
		return rr, nil
	}
	s, err := SchedulerByName(spec.Scheduler)
	if err != nil {
		return rr, err
	}
	cfg := spec.Config()
	if spec.Obs {
		cfg.Obs = e.Observer
	}
	rr.Result, err = sched.Run(s, cfg)
	if err != nil {
		return rr, err
	}
	if cacheable {
		if err := e.Cache.Put(rr.Hash, "runspec", spec, rr.Result); err != nil {
			return rr, err
		}
	}
	return rr, nil
}

// RunPlan executes every spec in the plan — concurrently up to the worker
// bound — and returns results indexed in plan order. Each worker writes
// only its own slot, so the returned slice (and anything folded from it in
// order) is byte-identical at any parallelism. On error, the error of the
// lowest-index failing spec is returned.
func (e *Executor) RunPlan(p Plan) ([]RunResult, error) {
	results := make([]RunResult, len(p.Specs))
	err := e.Map(len(p.Specs), func(i int) error {
		rr, err := e.RunOne(p.Specs[i])
		results[i] = rr
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// CachedJSON serves an arbitrary JSON-able computation through the
// executor's cache: adaptive cells (a binary search, a measured table)
// that are deterministic functions of their key but are not single
// scheduler runs. Returns the value and whether it was served from cache.
func CachedJSON[T any](e *Executor, kind string, epoch int, key any, compute func() (T, error)) (T, bool, error) {
	var v T
	if e.Cache == nil {
		v, err := compute()
		return v, false, err
	}
	h := HashKey(kind, epoch, key)
	if e.Cache.Get(h, &v) {
		return v, true, nil
	}
	v, err := compute()
	if err != nil {
		return v, false, err
	}
	if err := e.Cache.Put(h, kind, key, v); err != nil {
		return v, false, err
	}
	return v, false, nil
}
