package vpkey

import (
	"testing"

	"vessel/internal/mem"
	"vessel/internal/mpk"
)

// fence/limit mirror the SMAS key layout: keys 1..13 are slots, 14 is the
// runtime (fence) key, 15 the pipe key, key 0 reserved.
const (
	testFence = mpk.PKey(14)
	testLimit = mpk.PKey(14)
)

// newTable builds a table over a standalone address space with the SMAS
// reservation pattern (0, 14, 15 held back).
func newTable(t *testing.T) (*Table, *mem.AddressSpace, *mpk.Allocator) {
	t.Helper()
	as := mem.NewAddressSpace(mem.NewPhysical())
	keys := mpk.NewAllocator()
	for i := 0; i < 15; i++ {
		if _, err := keys.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	for k := mpk.PKey(1); k < testFence; k++ {
		if err := keys.Free(k); err != nil {
			t.Fatal(err)
		}
	}
	return New(as, keys, testFence, testLimit), as, keys
}

// mapRegion allocates a key, maps one page for it at base, and binds it.
func mapRegion(t *testing.T, tab *Table, as *mem.AddressSpace, base mem.Addr) (VKey, mpk.PKey) {
	t.Helper()
	vk, slot, err := tab.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := as.MapRange(base, mem.PageSize, mem.PermRW, slot); err != nil {
		t.Fatalf("MapRange: %v", err)
	}
	if err := tab.Bind(vk, base, mem.PageSize); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	return vk, slot
}

func pageKey(t *testing.T, as *mem.AddressSpace, a mem.Addr) mpk.PKey {
	t.Helper()
	pte, ok := as.Lookup(a)
	if !ok {
		t.Fatalf("addr %#x not mapped", uint64(a))
	}
	return pte.PKey
}

func TestAllocEvictsLRUAndRetagsToFence(t *testing.T) {
	tab, as, keys := newTable(t)
	base := mem.Addr(0x1000_0000)
	var vks []VKey
	for i := 0; i < 13; i++ {
		vk, _ := mapRegion(t, tab, as, base+mem.Addr(i)*0x10000)
		vks = append(vks, vk)
	}
	if keys.Available() != 0 {
		t.Fatalf("13 regions should consume all 13 slots; %d free", keys.Available())
	}
	// Touch every key except vks[0] so vks[0] is the LRU victim.
	for _, vk := range vks[1:] {
		if _, _, err := tab.Touch(vk, 0); err != nil {
			t.Fatal(err)
		}
	}
	tab.Unpin(0)
	gen := tab.Generation()
	vk14, slot14 := mapRegion(t, tab, as, base+13*0x10000)
	if tab.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", tab.Evictions)
	}
	if tab.Generation() != gen+1 {
		t.Fatalf("generation did not bump on eviction")
	}
	if _, resident := tab.SlotOf(vks[0]); resident {
		t.Fatal("LRU key should be evicted")
	}
	// The victim's page is fenced; the new key's page carries the slot.
	if k := pageKey(t, as, base); k != testFence {
		t.Fatalf("evicted page tagged %d, want fence %d", k, testFence)
	}
	if k := pageKey(t, as, base+13*0x10000); k != slot14 {
		t.Fatalf("new page tagged %d, want slot %d", k, slot14)
	}
	if owner, _ := tab.Owner(slot14); owner != vk14 {
		t.Fatalf("slot %d owned by %d, want %d", slot14, owner, vk14)
	}
}

func TestTouchRefillsAndWarmCacheHits(t *testing.T) {
	tab, as, _ := newTable(t)
	base := mem.Addr(0x1000_0000)
	var vks []VKey
	for i := 0; i < 14; i++ { // one more than slots: vks[0] ends evicted
		vk, _ := mapRegion(t, tab, as, base+mem.Addr(i)*0x10000)
		vks = append(vks, vk)
	}
	if _, resident := tab.SlotOf(vks[0]); resident {
		t.Fatal("vks[0] should have been evicted by the 14th alloc")
	}
	slot, pages, err := tab.Touch(vks[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if pages != 1 {
		t.Fatalf("refill re-tagged %d pages, want 1", pages)
	}
	if k := pageKey(t, as, base); k != slot {
		t.Fatalf("refilled page tagged %d, want %d", k, slot)
	}
	if tab.Refills != 1 {
		t.Fatalf("Refills = %d, want 1", tab.Refills)
	}
	// Second touch on the same core is a warm hit: no re-tag.
	hits := tab.WarmHits
	slot2, pages2, err := tab.Touch(vks[0], 0)
	if err != nil || slot2 != slot || pages2 != 0 {
		t.Fatalf("warm touch = (%d, %d, %v), want (%d, 0, nil)", slot2, pages2, err, slot)
	}
	if tab.WarmHits != hits+1 {
		t.Fatalf("WarmHits = %d, want %d", tab.WarmHits, hits+1)
	}
}

func TestPinnedKeyIsNeverEvicted(t *testing.T) {
	tab, as, _ := newTable(t)
	base := mem.Addr(0x1000_0000)
	var vks []VKey
	for i := 0; i < 13; i++ {
		vk, _ := mapRegion(t, tab, as, base+mem.Addr(i)*0x10000)
		vks = append(vks, vk)
	}
	// Pin vks[0] (the LRU) to core 0; the next alloc must evict vks[1].
	if _, _, err := tab.Touch(vks[0], 0); err != nil {
		t.Fatal(err)
	}
	for _, vk := range vks[1:] {
		if _, _, err := tab.Touch(vk, 1); err != nil {
			t.Fatal(err)
		}
	}
	tab.Unpin(1)
	// vks[0] has the oldest touch now; it must be skipped as pinned.
	if _, _, err := tab.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, resident := tab.SlotOf(vks[0]); !resident {
		t.Fatal("pinned key was evicted")
	}
	if _, resident := tab.SlotOf(vks[1]); resident {
		t.Fatal("expected vks[1] (oldest unpinned) to be the victim")
	}
}

func TestAllPinnedFailsCleanly(t *testing.T) {
	tab, as, keys := newTable(t)
	base := mem.Addr(0x1000_0000)
	for i := 0; i < 13; i++ {
		vk, _ := mapRegion(t, tab, as, base+mem.Addr(i)*0x10000)
		if _, _, err := tab.Touch(vk, i); err != nil { // 13 cores, 13 pins
			t.Fatal(err)
		}
	}
	if keys.Available() != 0 {
		t.Fatal("want zero free slots")
	}
	if _, _, err := tab.Alloc(); err == nil {
		t.Fatal("Alloc with every slot pinned should fail")
	}
	if tab.Live() != 13 {
		t.Fatalf("failed Alloc leaked an entry: Live = %d", tab.Live())
	}
}

func TestFreeReturnsSlotAndRefusesPinned(t *testing.T) {
	tab, as, keys := newTable(t)
	base := mem.Addr(0x1000_0000)
	vk, _ := mapRegion(t, tab, as, base)
	if _, _, err := tab.Touch(vk, 0); err != nil {
		t.Fatal(err)
	}
	if err := tab.Free(vk); err == nil {
		t.Fatal("Free of a pinned key should fail (a live PKRU grants its slot)")
	}
	tab.Unpin(0)
	avail := keys.Available()
	if err := tab.Free(vk); err != nil {
		t.Fatal(err)
	}
	if keys.Available() != avail+1 {
		t.Fatal("slot not returned to the allocator")
	}
	if err := tab.Free(vk); err == nil {
		t.Fatal("double Free should fail")
	}
}

func TestThrashEvictsAllUnpinned(t *testing.T) {
	tab, as, keys := newTable(t)
	base := mem.Addr(0x1000_0000)
	var vks []VKey
	for i := 0; i < 6; i++ {
		vk, _ := mapRegion(t, tab, as, base+mem.Addr(i)*0x10000)
		vks = append(vks, vk)
	}
	if _, _, err := tab.Touch(vks[5], 0); err != nil { // pin one
		t.Fatal(err)
	}
	evicted, pages := tab.Thrash()
	if evicted != 5 || pages != 5 {
		t.Fatalf("Thrash = (%d, %d), want (5, 5)", evicted, pages)
	}
	if tab.Resident() != 1 {
		t.Fatalf("Resident = %d after thrash, want 1 (the pinned key)", tab.Resident())
	}
	// Thrashed slots go back to the allocator, unlike eviction-for-reuse.
	if keys.Available() != 13-1 {
		t.Fatalf("Available = %d, want 12", keys.Available())
	}
	for _, vk := range vks[:5] {
		if i := int(vk) - 1; pageKey(t, as, base+mem.Addr(i)*0x10000) != testFence {
			t.Fatalf("thrashed key %d's page not fenced", vk)
		}
	}
}

func TestRetagAttributionBalances(t *testing.T) {
	tab, as, _ := newTable(t)
	base := mem.Addr(0x1000_0000)
	var vks []VKey
	for i := 0; i < 20; i++ { // 7 evictions
		vk, _ := mapRegion(t, tab, as, base+mem.Addr(i)*0x10000)
		vks = append(vks, vk)
	}
	for _, vk := range vks { // refill everything once, evicting more
		if _, _, err := tab.Touch(vk, 0); err != nil {
			t.Fatal(err)
		}
		tab.Unpin(0)
	}
	if tab.RetagDropped != 0 {
		t.Fatalf("RetagDropped = %d in a tiny run", tab.RetagDropped)
	}
	var sum uint64
	for _, r := range tab.RetagLog {
		if r.Reason != "evict" && r.Reason != "refill" {
			t.Fatalf("bad reason %q", r.Reason)
		}
		sum += uint64(r.Pages)
	}
	if sum != tab.RetaggedPages {
		t.Fatalf("attribution: log sums %d pages, counter says %d", sum, tab.RetaggedPages)
	}
	if uint64(len(tab.RetagLog)) != tab.Evictions+tab.Refills {
		t.Fatalf("log has %d records, want %d evictions + %d refills",
			len(tab.RetagLog), tab.Evictions, tab.Refills)
	}
}

func TestVictimChoiceIsDeterministic(t *testing.T) {
	// Two identical runs over interleaved touches must pick identical
	// victims (min lastTouch, ties by lowest vkey — never map order).
	run := func() []uint64 {
		tab, as, _ := newTable(t)
		base := mem.Addr(0x1000_0000)
		var vks []VKey
		for i := 0; i < 13; i++ {
			vk, _ := mapRegion(t, tab, as, base+mem.Addr(i)*0x10000)
			vks = append(vks, vk)
		}
		for i := 0; i < 30; i++ {
			if _, _, err := tab.Touch(vks[(i*7)%13], 0); err != nil {
				t.Fatal(err)
			}
			tab.Unpin(0)
		}
		var evictOrder []uint64
		tab.OnEvict = func(_ int, vk VKey, _ mpk.PKey, _ int) {
			evictOrder = append(evictOrder, uint64(vk))
		}
		for i := 13; i < 19; i++ {
			mapRegion(t, tab, as, base+mem.Addr(i)*0x10000)
		}
		return evictOrder
	}
	a, b := run(), run()
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("want 6 evictions per run, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("victim sequence diverged at %d: %v vs %v", i, a, b)
		}
	}
}
