package vpkey

import (
	"testing"

	"vessel/internal/mem"
	"vessel/internal/mpk"
)

// FuzzVPkeyOps drives random alloc/free/touch/unpin/thrash interleavings
// against a model map and checks the virtualization invariants after
// every operation: slot uniqueness, fence-tagging of evicted pages,
// slot-tagging of resident pages, allocator/table agreement, and
// attribution balance. The ops are decoded two bytes at a time
// (op selector, operand), so the corpus stays dense.
func FuzzVPkeyOps(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 0, 2, 0})
	f.Add([]byte{0, 0, 0, 1, 0, 2, 4, 0, 1, 0, 2, 1, 3, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 4, 0, 2, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		as := mem.NewAddressSpace(mem.NewPhysical())
		keys := mpk.NewAllocator()
		for i := 0; i < 15; i++ {
			if _, err := keys.Alloc(); err != nil {
				t.Fatal(err)
			}
		}
		for k := mpk.PKey(1); k < testFence; k++ {
			if err := keys.Free(k); err != nil {
				t.Fatal(err)
			}
		}
		tab := New(as, keys, testFence, testLimit)

		const cores = 4
		base := mem.Addr(0x1000_0000)
		// model: every live virtual key and its single bound page.
		model := make(map[VKey]mem.Addr)
		var order []VKey // live keys in creation order, for operand decode
		next := 0

		live := func(idx byte) (VKey, bool) {
			if len(order) == 0 {
				return 0, false
			}
			return order[int(idx)%len(order)], true
		}
		removeLive := func(vk VKey) {
			for i, v := range order {
				if v == vk {
					order = append(order[:i], order[i+1:]...)
					return
				}
			}
		}

		check := func() {
			t.Helper()
			// Slot uniqueness + allocator agreement: every resident slot
			// is in use and in the app range; resident count matches.
			seen := make(map[mpk.PKey]bool)
			resident := 0
			for vk, pb := range model {
				slot, ok := tab.SlotOf(vk)
				if ok {
					resident++
					if slot <= 0 || slot >= testLimit {
						t.Fatalf("key %d resident on out-of-range slot %d", vk, slot)
					}
					if seen[slot] {
						t.Fatalf("slot %d shared by two live keys", slot)
					}
					seen[slot] = true
					if !keys.InUse(slot) {
						t.Fatalf("resident slot %d not in use in the allocator", slot)
					}
					if owner, _ := tab.Owner(slot); owner != vk {
						t.Fatalf("slot %d owner %d, want %d", slot, owner, vk)
					}
					// Resident pages carry the slot.
					if pte, ok2 := as.Lookup(pb); !ok2 || pte.PKey != slot {
						t.Fatalf("resident key %d page tagged %d, want slot %d", vk, pte.PKey, slot)
					}
				} else {
					// Evicted pages carry the fence: inaccessible to every
					// application PKRU until refill.
					if pte, ok2 := as.Lookup(pb); !ok2 || pte.PKey != testFence {
						t.Fatalf("evicted key %d page tagged %d, want fence %d", vk, pte.PKey, testFence)
					}
				}
			}
			if resident != tab.Resident() {
				t.Fatalf("model sees %d resident, table says %d", resident, tab.Resident())
			}
			if len(model) != tab.Live() {
				t.Fatalf("model has %d live keys, table says %d", len(model), tab.Live())
			}
			// Attribution: with no overflow, the log accounts for every
			// re-tagged page.
			if tab.RetagDropped == 0 {
				var sum uint64
				for _, r := range tab.RetagLog {
					sum += uint64(r.Pages)
				}
				if sum != tab.RetaggedPages {
					t.Fatalf("attribution: log %d pages, counter %d", sum, tab.RetaggedPages)
				}
			}
		}

		for i := 0; i+1 < len(data) && next < 200; i += 2 {
			op, arg := data[i], data[i+1]
			switch op % 5 {
			case 0: // alloc + map + bind
				vk, slot, err := tab.Alloc()
				if err != nil {
					continue // all slots pinned — legal state
				}
				pb := base + mem.Addr(next)*0x10000
				next++
				if err := as.MapRange(pb, mem.PageSize, mem.PermRW, slot); err != nil {
					t.Fatal(err)
				}
				if err := tab.Bind(vk, pb, mem.PageSize); err != nil {
					t.Fatal(err)
				}
				model[vk] = pb
				order = append(order, vk)
			case 1: // free (may be refused while pinned)
				vk, ok := live(arg)
				if !ok {
					continue
				}
				if err := tab.Free(vk); err == nil {
					as.Unmap(model[vk], mem.PageSize)
					delete(model, vk)
					removeLive(vk)
				}
			case 2: // touch on some core
				vk, ok := live(arg)
				if !ok {
					continue
				}
				slot, _, err := tab.Touch(vk, int(arg)%cores)
				if err != nil {
					continue // every slot pinned elsewhere — legal
				}
				if got, ok2 := tab.SlotOf(vk); !ok2 || got != slot {
					t.Fatalf("Touch returned slot %d but SlotOf says (%d, %v)", slot, got, ok2)
				}
			case 3: // unpin a core
				tab.Unpin(int(arg) % cores)
			case 4: // eviction storm
				tab.Thrash()
			}
			check()
		}
	})
}
