// Package vpkey virtualizes protection keys the way libmpk does: an
// unbounded space of software ("virtual") keys is multiplexed onto the
// hardware's 16 pkey slots, with LRU slot eviction and lazy PTE re-tagging
// on evict/refill. A domain's uProcess density is then no longer capped by
// the 4-bit hardware key field — the limit the paper inherits from MPK
// (§4.1) and that libmpk removes.
//
// The model mirrors the semantics that make virtualization sound on real
// hardware:
//
//   - Evicting a virtual key re-tags its data pages to a fence key (the
//     runtime key): every application PKRU denies the fence key, so an
//     evicted compartment is inaccessible to everyone until refilled, while
//     the privileged runtime (AllowAll) is unaffected.
//   - Text pages are never re-tagged: PKRU does not mediate instruction
//     fetches, so an evicted uProcess's code stays executable — only its
//     data loses (and regains) accessibility. This also bounds re-tag work
//     to the data region.
//   - Re-tagging goes through mem.AddressSpace.SetPKey, which bumps the
//     translation generation — per-core software TLBs and decoded-fetch
//     caches self-invalidate, so the fast path stays coherent for free.
//   - A virtual key pinned by a core (its current uProcess) is never
//     evicted: recycling a hardware slot under a live PKRU would let the
//     running compartment reach the new tenant's pages — the stale-key
//     reuse pitfall libmpk warns about.
//
// Everything is deterministic: recency is a monotonic touch counter, never
// wall clock, and eviction victims are chosen by (oldest touch, lowest
// virtual key), independent of map iteration order.
package vpkey

import (
	"fmt"

	"vessel/internal/mem"
	"vessel/internal/mpk"
)

// VKey is a virtual protection key. Valid keys are positive; 0 is "none".
type VKey int

// Range is one page-aligned data range owned by a virtual key.
type Range struct {
	Base mem.Addr
	Size uint64
}

// Retag is one attributed re-tagging action: which virtual key's pages
// moved, to which hardware slot (or the fence key), how many pages, on
// whose behalf. The lifecycle oracle audits that every SetPKey the table
// performed is accounted for here.
type Retag struct {
	VKey VKey
	// Slot is the hardware key the pages now carry: the fence key for an
	// eviction, the granted slot for a refill.
	Slot  mpk.PKey
	Pages int
	// Reason is "evict" or "refill".
	Reason string
	// Core is the core whose activation drove the re-tag, or -1 when the
	// table acted on the manager's behalf (region allocation, thrash).
	Core int
}

// retagLogCap bounds the attribution log; overflow is counted, never
// silent, so the oracle knows when the log stopped being exhaustive.
const retagLogCap = 1 << 14

// warmWays is the per-core warm-cache associativity: enough for the
// handful of uProcesses that ping-pong on one core between evictions.
const warmWays = 8

type entry struct {
	vk   VKey
	slot mpk.PKey // 0 while evicted (key 0 is reserved, never a slot)
	// ranges are the data ranges re-tagged on evict/refill.
	ranges    []Range
	pages     int
	lastTouch uint64
}

type warmLine struct {
	vk   VKey
	slot mpk.PKey
	gen  uint64
}

// Table maps live virtual keys onto hardware slots drawn from an
// mpk.Allocator. It is single-writer, like the simulation that drives it.
type Table struct {
	as    *mem.AddressSpace
	keys  *mpk.Allocator
	fence mpk.PKey
	// limit bounds usable slots to [1, limit): the app-key range of the
	// owning SMAS (fixed-role keys are never slots).
	limit mpk.PKey

	entries map[VKey]*entry
	slots   map[mpk.PKey]VKey
	pins    map[int]VKey
	warm    map[int]*[warmWays]warmLine
	clock   uint64
	gen     uint64
	next    VKey

	// Counters, all monotonic and deterministic.
	Allocs        uint64
	Frees         uint64
	Evictions     uint64
	Refills       uint64
	RetaggedPages uint64
	WarmHits      uint64

	// RetagLog attributes every re-tag; RetagDropped counts records the
	// bounded log could not keep.
	RetagLog     []Retag
	RetagDropped uint64

	// OnEvict and OnRefill, when non-nil, observe slot movement — the
	// observability layer's probes.
	OnEvict  func(core int, vk VKey, slot mpk.PKey, pages int)
	OnRefill func(core int, vk VKey, slot mpk.PKey, pages int)
}

// New builds a table over an address space and a hardware-key allocator.
// Evicted pages are re-tagged to fence; slots are only ever accepted from
// the allocator when below limit.
func New(as *mem.AddressSpace, keys *mpk.Allocator, fence, limit mpk.PKey) *Table {
	return &Table{
		as:      as,
		keys:    keys,
		fence:   fence,
		limit:   limit,
		entries: make(map[VKey]*entry),
		slots:   make(map[mpk.PKey]VKey),
		pins:    make(map[int]VKey),
		warm:    make(map[int]*[warmWays]warmLine),
		next:    1,
	}
}

// Generation counts evictions: any cached (virtual key → slot) binding is
// stale once it changes. The per-core warm cache keys on it; external warm
// caches may too.
func (t *Table) Generation() uint64 { return t.gen }

// Live returns the number of live virtual keys.
func (t *Table) Live() int { return len(t.entries) }

// Resident returns how many live virtual keys currently hold a slot.
func (t *Table) Resident() int { return len(t.slots) }

// Holds reports whether hardware key k is a slot currently owned by the
// table — the self-healing reconciler must not "heal" these as leaks.
func (t *Table) Holds(k mpk.PKey) bool {
	_, ok := t.slots[k]
	return ok
}

// Owner returns the virtual key holding hardware slot k.
func (t *Table) Owner(k mpk.PKey) (VKey, bool) {
	vk, ok := t.slots[k]
	return vk, ok
}

// SlotOf returns vk's current slot; ok is false while vk is evicted or
// unknown.
func (t *Table) SlotOf(vk VKey) (mpk.PKey, bool) {
	e, ok := t.entries[vk]
	if !ok || e.slot == 0 {
		return 0, false
	}
	return e.slot, true
}

// MaxIssued returns the highest virtual key handed out so far.
func (t *Table) MaxIssued() VKey { return t.next - 1 }

// Alloc issues a fresh virtual key and makes it resident, evicting the
// least-recently-used unpinned key if no hardware slot is free. The
// returned slot is what the caller tags the new region's pages with.
func (t *Table) Alloc() (VKey, mpk.PKey, error) {
	slot, err := t.acquireSlot(-1)
	if err != nil {
		return 0, 0, err
	}
	vk := t.next
	t.next++
	t.clock++
	t.entries[vk] = &entry{vk: vk, slot: slot, lastTouch: t.clock}
	t.slots[slot] = vk
	t.Allocs++
	return vk, slot, nil
}

// Bind registers a data range under vk. Pages must already carry vk's
// current slot (the caller maps them with the slot Alloc returned); from
// here on evict/refill re-tags them.
func (t *Table) Bind(vk VKey, base mem.Addr, size uint64) error {
	e, ok := t.entries[vk]
	if !ok {
		return fmt.Errorf("vpkey: Bind of unknown key %d", vk)
	}
	pages := int((size + mem.PageSize - 1) / mem.PageSize)
	e.ranges = append(e.ranges, Range{Base: base, Size: size})
	e.pages += pages
	return nil
}

// Free retires a virtual key. A resident key's slot returns to the
// allocator; an evicted key owns no slot. The caller unmaps the pages.
// Freeing a pinned key is refused — some core's PKRU still grants it.
func (t *Table) Free(vk VKey) error {
	e, ok := t.entries[vk]
	if !ok {
		return fmt.Errorf("vpkey: Free of unknown key %d", vk)
	}
	for core, p := range t.pins {
		if p == vk {
			return fmt.Errorf("vpkey: key %d is pinned by core %d", vk, core)
		}
	}
	if e.slot != 0 {
		delete(t.slots, e.slot)
		if err := t.keys.Free(e.slot); err != nil {
			return fmt.Errorf("vpkey: releasing slot %d: %w", e.slot, err)
		}
	}
	delete(t.entries, vk)
	t.Frees++
	return nil
}

// Touch makes vk resident (refilling after an eviction if needed), pins it
// to core, and returns its slot plus the number of pages re-tagged — the
// cost the caller charges to the core. The per-core warm cache makes the
// no-eviction crossing path a handful of comparisons.
func (t *Table) Touch(vk VKey, core int) (mpk.PKey, int, error) {
	if w := t.warm[core]; w != nil {
		l := &w[int(vk)%warmWays]
		if l.vk == vk && l.gen == t.gen {
			t.WarmHits++
			t.clock++
			t.entries[vk].lastTouch = t.clock
			t.pins[core] = vk
			return l.slot, 0, nil
		}
	}
	e, ok := t.entries[vk]
	if !ok {
		return 0, 0, fmt.Errorf("vpkey: Touch of unknown key %d", vk)
	}
	t.clock++
	e.lastTouch = t.clock
	// Pin before any eviction decision: the key being activated must not
	// be the victim of its own refill.
	t.pins[core] = vk
	retagged := 0
	if e.slot == 0 {
		slot, err := t.acquireSlot(core)
		if err != nil {
			delete(t.pins, core)
			return 0, 0, err
		}
		e.slot = slot
		t.slots[slot] = vk
		retagged = t.retag(e, slot, "refill", core)
		t.Refills++
		if t.OnRefill != nil {
			t.OnRefill(core, vk, slot, retagged)
		}
	}
	w := t.warm[core]
	if w == nil {
		w = new([warmWays]warmLine)
		t.warm[core] = w
	}
	w[int(vk)%warmWays] = warmLine{vk: vk, slot: e.slot, gen: t.gen}
	return e.slot, retagged, nil
}

// Unpin releases a core's pin, making its last virtual key evictable
// again. Call it when the core idles or is fenced.
func (t *Table) Unpin(core int) { delete(t.pins, core) }

// Pinned returns the virtual key core currently pins, or 0.
func (t *Table) Pinned(core int) VKey { return t.pins[core] }

// acquireSlot finds a free hardware slot: from the allocator if one is
// free in the app range, otherwise by evicting the LRU unpinned resident
// key. core attributes the eviction (-1 = manager).
func (t *Table) acquireSlot(core int) (mpk.PKey, error) {
	if k, err := t.keys.Alloc(); err == nil {
		if k < t.limit {
			return k, nil
		}
		// The allocator handed out a fixed-role key (only possible if the
		// owning SMAS's reservations were tampered with): put it back and
		// fall through to eviction.
		t.keys.Free(k)
	}
	victim := t.victim()
	if victim == nil {
		return 0, fmt.Errorf("vpkey: all %d resident keys are pinned; no slot can be evicted", len(t.slots))
	}
	slot := victim.slot
	pages := t.retag(victim, t.fence, "evict", core)
	victim.slot = 0
	delete(t.slots, slot)
	t.Evictions++
	t.gen++ // every warm (vk → slot) binding is now suspect
	if t.OnEvict != nil {
		t.OnEvict(core, victim.vk, slot, pages)
	}
	return slot, nil
}

// victim picks the eviction victim: resident, unpinned, oldest touch,
// ties broken by lowest virtual key — a pure function of table state.
func (t *Table) victim() *entry {
	pinned := make(map[VKey]bool, len(t.pins))
	for _, vk := range t.pins {
		pinned[vk] = true
	}
	var best *entry
	for _, vk := range t.slots {
		e := t.entries[vk]
		if pinned[e.vk] {
			continue
		}
		if best == nil || e.lastTouch < best.lastTouch ||
			(e.lastTouch == best.lastTouch && e.vk < best.vk) {
			best = e
		}
	}
	return best
}

// retag moves every page of e's ranges to key, records the attribution,
// and returns the page count. SetPKey bumps the address-space generation,
// which is what keeps TLBs and decoded-fetch caches coherent.
func (t *Table) retag(e *entry, key mpk.PKey, reason string, core int) int {
	pages := 0
	for _, r := range e.ranges {
		if err := t.as.SetPKey(r.Base, r.Size, key); err != nil {
			// Ranges are bound by the owning SMAS over pages it mapped;
			// a failure here means the table and address space disagree.
			panic(fmt.Sprintf("vpkey: retag of key %d range %#x+%#x: %v", e.vk, uint64(r.Base), r.Size, err))
		}
		pages += int((r.Size + mem.PageSize - 1) / mem.PageSize)
	}
	t.RetaggedPages += uint64(pages)
	if len(t.RetagLog) < retagLogCap {
		t.RetagLog = append(t.RetagLog, Retag{VKey: e.vk, Slot: key, Pages: pages, Reason: reason, Core: core})
	} else {
		t.RetagDropped++
	}
	return pages
}

// Thrash force-evicts every unpinned resident key — the eviction-storm
// fault (faultinject.PkeyThrash). It returns how many keys were evicted
// and how many pages were re-tagged.
func (t *Table) Thrash() (evicted, pages int) {
	for {
		v := t.victim()
		if v == nil {
			return evicted, pages
		}
		slot := v.slot
		pages += t.retag(v, t.fence, "evict", -1)
		v.slot = 0
		delete(t.slots, slot)
		// The freed slot goes back to the allocator: a thrash leaves free
		// hardware slots behind, exactly like a burst of pkey_free calls.
		if err := t.keys.Free(slot); err != nil {
			panic(fmt.Sprintf("vpkey: thrash releasing slot %d: %v", slot, err))
		}
		t.Evictions++
		t.gen++
		evicted++
		if t.OnEvict != nil {
			t.OnEvict(-1, v.vk, slot, v.pages)
		}
	}
}

// Info is a deterministic snapshot of one live virtual key, for oracles.
type Info struct {
	VKey   VKey
	Slot   mpk.PKey // 0 while evicted
	Pages  int
	Ranges []Range
	Pinned bool
}

// LiveInfo snapshots every live virtual key in ascending key order.
func (t *Table) LiveInfo() []Info {
	pinned := make(map[VKey]bool, len(t.pins))
	for _, vk := range t.pins {
		pinned[vk] = true
	}
	out := make([]Info, 0, len(t.entries))
	for vk := VKey(1); vk < t.next; vk++ {
		e, ok := t.entries[vk]
		if !ok {
			continue
		}
		out = append(out, Info{
			VKey:   e.vk,
			Slot:   e.slot,
			Pages:  e.pages,
			Ranges: append([]Range(nil), e.ranges...),
			Pinned: pinned[e.vk],
		})
	}
	return out
}
