package faultinject

import (
	"reflect"
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/dataplane"
	"vessel/internal/mem"
	"vessel/internal/sim"
	"vessel/internal/smas"
	"vessel/internal/trace"
	"vessel/internal/uproc"
)

func newDomain(t *testing.T, cores int) *uproc.Domain {
	t.Helper()
	m := cpu.NewMachine(cores, cpu.Default())
	d, err := uproc.NewDomain(sim.NewEngine(), m)
	if err != nil {
		t.Fatal(err)
	}
	d.Events = trace.NewEventLog(4096)
	return d
}

func parkLoop(d *uproc.Domain, name string) *smas.Program {
	a := cpu.NewAssembler()
	a.Label("loop")
	a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	a.Emit(cpu.Call{Target: d.GatePark.Entry})
	a.JmpTo("loop")
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

func TestPlanExpandDeterministic(t *testing.T) {
	plan := Plan{
		Seed: 7,
		Faults: []Fault{
			{Kind: WildWrite, Target: "a", At: sim.Time(30 * sim.Microsecond)},
			{Kind: Runaway, Target: "b", At: sim.Time(10 * sim.Microsecond)},
		},
		Random:        5,
		RandomKinds:   []Kind{DropUintr, DelayUintr, WildWrite},
		RandomTargets: []string{"a", "b"},
		RandomCores:   4,
		RandomWindow:  50 * sim.Microsecond,
	}
	s1, s2 := plan.Expand(), plan.Expand()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same plan expanded differently:\n%v\n%v", s1, s2)
	}
	if len(s1) != 7 {
		t.Fatalf("expanded %d faults, want 7", len(s1))
	}
	for i := 1; i < len(s1); i++ {
		if s1[i].At < s1[i-1].At {
			t.Fatal("schedule not time-sorted")
		}
	}
	other := plan
	other.Seed = 8
	if reflect.DeepEqual(plan.Expand(), other.Expand()) {
		t.Fatal("different seeds expanded identically")
	}
}

func TestWildWriteContained(t *testing.T) {
	d := newDomain(t, 1)
	bad, err := d.CreateUProc("bad", parkLoop(d, "bad"))
	if err != nil {
		t.Fatal(err)
	}
	good, err := d.CreateUProc("good", parkLoop(d, "good"))
	if err != nil {
		t.Fatal(err)
	}
	inj := New(d, Plan{Seed: 1, Faults: []Fault{{Kind: WildWrite, Target: "bad", At: 0}}})
	d.AttachThread(0, bad.Threads()[0])
	d.AttachThread(0, good.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	inj.Step(0)
	core := d.Machine.Core(0)
	if bad.State != uproc.UProcTerminated {
		t.Fatal("wild write did not terminate the offender")
	}
	if bad.FaultSignals != 1 {
		t.Fatalf("fault signals = %d", bad.FaultSignals)
	}
	if good.State == uproc.UProcTerminated {
		t.Fatal("blast radius escaped: sibling died")
	}
	if core.Fault != nil || core.Halted {
		t.Fatalf("core fail-stopped by a contained fault: halted=%v fault=%v", core.Halted, core.Fault)
	}
	core.Run(2000)
	if cur := d.Current(0); cur == nil || cur.U != good {
		t.Fatal("survivor not running after containment")
	}
	if inj.Counters.Get("inject.wildwrite") != 1 {
		t.Fatalf("counters:\n%s", inj.Counters.String())
	}
}

func TestRuntimeCrashFailStopsCore(t *testing.T) {
	d := newDomain(t, 1)
	a, err := d.CreateUProc("a", parkLoop(d, "a"))
	if err != nil {
		t.Fatal(err)
	}
	inj := New(d, Plan{Seed: 1, Faults: []Fault{{Kind: RuntimeCrash, Target: "a", At: 0}}})
	d.AttachThread(0, a.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	inj.Step(0)
	core := d.Machine.Core(0)
	if !core.Halted || core.Fault == nil {
		t.Fatalf("runtime crash not fail-stop: halted=%v fault=%v", core.Halted, core.Fault)
	}
	// A fail-stopped core must refuse to wake.
	if ok, err := d.Wake(0); err != nil || ok {
		t.Fatalf("Wake on crashed core = (%v, %v), want (false, nil)", ok, err)
	}
	if d.Events.CountByName("fatal.runtime") != 1 {
		t.Fatalf("event log:\n%s", d.Events.String())
	}
}

func TestRunawaySuppressesPark(t *testing.T) {
	d := newDomain(t, 1)
	r, err := d.CreateUProc("r", parkLoop(d, "r"))
	if err != nil {
		t.Fatal(err)
	}
	inj := New(d, Plan{Seed: 1, Faults: []Fault{{Kind: Runaway, Target: "r", At: 0}}})
	inj.Step(0)
	d.AttachThread(0, r.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(0)
	core.Run(3000)
	parks, _ := d.CoreStats(0)
	if parks != 0 {
		t.Fatalf("parks = %d; runaway should never yield", parks)
	}
	if cur := d.Current(0); cur == nil || cur.U != r {
		t.Fatal("runaway lost the core without a watchdog")
	}
	if r.Threads()[0].BurnCycles == 0 {
		t.Fatal("runaway accrued no burn")
	}
}

func TestUintrDropLosesKick(t *testing.T) {
	d := newDomain(t, 1)
	a, err := d.CreateUProc("a", parkLoop(d, "a"))
	if err != nil {
		t.Fatal(err)
	}
	inj := New(d, Plan{Seed: 1, Faults: []Fault{{Kind: DropUintr, Core: 0, At: 0}}})
	d.AttachThread(0, a.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	inj.Step(0)
	core := d.Machine.Core(0)
	if err := d.Preempt(0, uproc.SchedCommand{}); err != nil {
		t.Fatal(err)
	}
	if core.PendingVectors != 0 {
		t.Fatal("dropped Uintr still reached the core")
	}
	if d.Sched.Dropped != 1 {
		t.Fatalf("sender dropped = %d, want 1", d.Sched.Dropped)
	}
	// The next kick goes through: the drop was one-shot.
	if err := d.Preempt(0, uproc.SchedCommand{}); err != nil {
		t.Fatal(err)
	}
	if core.PendingVectors == 0 {
		t.Fatal("second Uintr lost too")
	}
}

func TestUintrDelayResends(t *testing.T) {
	d := newDomain(t, 1)
	a, err := d.CreateUProc("a", parkLoop(d, "a"))
	if err != nil {
		t.Fatal(err)
	}
	inj := New(d, Plan{Seed: 1, Faults: []Fault{{Kind: DelayUintr, Core: 0, At: 0, Delay: 2 * sim.Microsecond}}})
	d.AttachThread(0, a.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	inj.Step(0)
	core := d.Machine.Core(0)
	if err := d.Preempt(0, uproc.SchedCommand{}); err != nil {
		t.Fatal(err)
	}
	if core.PendingVectors != 0 {
		t.Fatal("delayed Uintr delivered immediately")
	}
	inj.Step(1 * 1000) // 1µs: still held
	if core.PendingVectors != 0 {
		t.Fatal("delayed Uintr released early")
	}
	inj.Step(3 * 1000) // 3µs: past the delay
	if core.PendingVectors == 0 {
		t.Fatal("delayed Uintr never re-sent")
	}
}

func TestWedgeQueueStallsAndRecovers(t *testing.T) {
	d := newDomain(t, 1)
	q, err := dataplane.NewQueue("rx", 8)
	if err != nil {
		t.Fatal(err)
	}
	inj := New(d, Plan{Seed: 1, Faults: []Fault{{Kind: WedgeQueue, Target: "rx", At: 0, Delay: 5 * sim.Microsecond}}})
	inj.RegisterQueue(q)
	q.Push(dataplane.Packet{Payload: 1})
	q.Push(dataplane.Packet{Payload: 2})
	inj.Step(0)
	if !q.IsWedged() {
		t.Fatal("queue not wedged")
	}
	if got := q.Poll(16); got != nil {
		t.Fatalf("wedged queue returned %d packets", len(got))
	}
	if q.WedgedPolls != 1 {
		t.Fatalf("wedged polls = %d", q.WedgedPolls)
	}
	if q.Depth() != 2 {
		t.Fatal("wedge dropped queued packets")
	}
	inj.Step(6 * 1000) // past the wedge window
	if q.IsWedged() {
		t.Fatal("queue never unwedged")
	}
	if got := q.Poll(16); len(got) != 2 {
		t.Fatalf("recovered queue returned %d packets, want 2", len(got))
	}
}

func TestInjectionRetriesUntilTargetRuns(t *testing.T) {
	d := newDomain(t, 1)
	a, err := d.CreateUProc("a", parkLoop(d, "a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.CreateUProc("b", parkLoop(d, "b"))
	if err != nil {
		t.Fatal(err)
	}
	inj := New(d, Plan{Seed: 1, Faults: []Fault{{Kind: WildWrite, Target: "b", At: 0}}})
	d.AttachThread(0, a.Threads()[0])
	d.AttachThread(0, b.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	// "a" is current; the fault against "b" must wait, not misfire.
	inj.Step(0)
	if b.State == uproc.UProcTerminated || a.State == uproc.UProcTerminated {
		t.Fatal("injection hit the wrong target")
	}
	if inj.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", inj.Pending())
	}
	// Run until "b" holds the core, then the retry lands on it.
	core := d.Machine.Core(0)
	for i := 0; i < 50 && b.State != uproc.UProcTerminated; i++ {
		core.Run(40)
		inj.Step(0)
	}
	if b.State != uproc.UProcTerminated {
		t.Fatal("retrying injection never landed")
	}
	if a.State == uproc.UProcTerminated {
		t.Fatal("bystander died")
	}
	if inj.Pending() != 0 {
		t.Fatalf("pending = %d after landing", inj.Pending())
	}
}
