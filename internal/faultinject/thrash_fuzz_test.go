package faultinject

import (
	"bytes"
	"reflect"
	"testing"

	"vessel/internal/sim"
)

func TestPkeyThrashCodecRoundTrip(t *testing.T) {
	p := Plan{
		Seed: 9,
		Faults: []Fault{
			{Kind: PkeyThrash, At: sim.Time(10 * sim.Microsecond)},
			{Kind: PkeyThrash, At: sim.Time(20 * sim.Microsecond)},
		},
		Random:       5,
		RandomKinds:  []Kind{PkeyThrash, PkeyLeak},
		RandomCores:  2,
		RandomWindow: 100 * sim.Microsecond,
	}
	data, err := EncodePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"pkeythrash"`)) {
		t.Fatalf("encoding does not name the thrash kind:\n%s", data)
	}
	got, err := DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mutated the plan:\n got %+v\nwant %+v", got, p)
	}
	thrashes := 0
	for _, f := range got.Expand() {
		if f.Kind == PkeyThrash {
			thrashes++
		}
	}
	if thrashes < 2 {
		t.Fatalf("Expand kept %d thrash faults, want at least the 2 deterministic ones", thrashes)
	}
}

// FuzzThrashPlanDecode hammers the plan decoder with inputs biased toward
// the eviction-storm fault class: it must never panic, any accepted plan
// must round-trip canonically, and every PkeyThrash the decoder admits
// must survive encode∘decode and expansion unchanged in count.
func FuzzThrashPlanDecode(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"faults":[{"kind":"pkeythrash"}]}`),
		[]byte(`{"faults":[{"kind":"pkeythrash","at_ns":5000},{"kind":"pkeythrash","at_ns":15000}]}`),
		[]byte(`{"random":8,"random_kinds":["pkeythrash"],"random_window_ns":200000}`),
		[]byte(`{"random":3,"random_kinds":["pkeythrash","pkeyleak","corestall"],"random_cores":2,"random_window_ns":50000}`),
		[]byte(`{"faults":[{"kind":"pkeythrash","core":1,"target":"w0","delay_ns":100}]}`),
		[]byte(`{"faults":[{"kind":"pkeytrash"}]}`), // misspelled: must be rejected, not panic
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p1, err := DecodePlan(data)
		if err != nil {
			return
		}
		enc, err := EncodePlan(p1)
		if err != nil {
			t.Fatalf("accepted plan failed to encode: %v (%+v)", err, p1)
		}
		p2, err := DecodePlan(enc)
		if err != nil {
			t.Fatalf("own encoding rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("decode/encode/decode not identity:\n p1=%+v\n p2=%+v", p1, p2)
		}
		count := func(p Plan) (det, rnd int) {
			for _, f := range p.Faults {
				if f.Kind == PkeyThrash {
					det++
				}
			}
			for _, k := range p.RandomKinds {
				if k == PkeyThrash {
					rnd++
				}
			}
			return
		}
		d1, r1 := count(p1)
		d2, r2 := count(p2)
		if d1 != d2 || r1 != r2 {
			t.Fatalf("thrash faults changed across round trip: (%d,%d) vs (%d,%d)", d1, r1, d2, r2)
		}
		// Expansion keeps every deterministic thrash and is stable.
		e1, e2 := p1.Expand(), p1.Expand()
		if !reflect.DeepEqual(e1, e2) {
			t.Fatal("Expand nondeterministic")
		}
		got := 0
		for _, f := range e1 {
			if f.Kind == PkeyThrash {
				got++
			}
		}
		if got < d1 {
			t.Fatalf("Expand dropped thrash faults: %d < %d", got, d1)
		}
	})
}
