package faultinject

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"vessel/internal/sim"
)

func TestPlanCodecRoundTrip(t *testing.T) {
	p := Plan{
		Seed: 42,
		Faults: []Fault{
			{Kind: WildWrite, Target: "a", At: sim.Time(30 * sim.Microsecond)},
			{Kind: CoreStall, Core: 2, At: sim.Time(5 * sim.Microsecond)},
			{Kind: DomainCrash, At: sim.Time(40 * sim.Microsecond)},
			{Kind: PolicyPanic, Delay: 12345},
			{Kind: UintrStorm, Delay: 7 * sim.Microsecond},
			{Kind: PkeyLeak, At: sim.Time(sim.Microsecond)},
		},
		Random:        3,
		RandomKinds:   []Kind{DropUintr, CoreStall, PkeyLeak},
		RandomTargets: []string{"a", "b"},
		RandomCores:   4,
		RandomWindow:  50 * sim.Microsecond,
	}
	data, err := EncodePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePlan(data)
	if err != nil {
		t.Fatalf("decoding own encoding: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mutated the plan:\n got %+v\nwant %+v", got, p)
	}
	if !reflect.DeepEqual(got.Expand(), p.Expand()) {
		t.Fatal("decoded plan expands differently")
	}
}

func TestDecodePlanRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown kind", `{"faults":[{"kind":"meteor"}]}`, "unknown fault kind"},
		{"unknown field", `{"faults":[{"kind":"wildwrite","frobnicate":1}]}`, "frobnicate"},
		{"negative at", `{"faults":[{"kind":"corestall","at_ns":-1}]}`, "negative"},
		{"negative delay", `{"faults":[{"kind":"uintrstorm","delay_ns":-5}]}`, "negative"},
		{"negative core", `{"faults":[{"kind":"corestall","core":-2}]}`, "negative"},
		{"negative random", `{"random":-1,"random_kinds":["wildwrite"]}`, "negative"},
		{"random without kinds", `{"random":3}`, "no random_kinds"},
		{"random overflow", `{"random":9999999,"random_kinds":["wildwrite"]}`, "exceeds limit"},
		{"trailing data", `{"seed":1} {"seed":2}`, "trailing"},
		{"not json", `hello`, "decoding plan"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodePlan([]byte(tc.in))
			if err == nil {
				t.Fatalf("decoded invalid plan %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseKindCoversAllKinds(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = (%v, %v), want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseKind("Kind(99)"); err == nil {
		t.Fatal("ParseKind accepted the unknown-kind placeholder")
	}
}

// FuzzPlanDecode holds the decoder's contract under arbitrary input: it
// must never panic, and any plan it accepts must re-encode canonically —
// decode∘encode∘decode is the identity, and Expand on the result is safe
// and deterministic.
func FuzzPlanDecode(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{}`),
		[]byte(`{"seed":7,"faults":[{"kind":"wildwrite","target":"a","at_ns":1000}]}`),
		[]byte(`{"random":2,"random_kinds":["corestall","pkeyleak"],"random_cores":4,"random_window_ns":50000}`),
		[]byte(`{"faults":[{"kind":"domaincrash"},{"kind":"policypanic","delay_ns":500},{"kind":"uintrstorm","delay_ns":20000}]}`),
		[]byte(`{"faults":[{"kind":"meteor"}]}`),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p1, err := DecodePlan(data)
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		enc1, err := EncodePlan(p1)
		if err != nil {
			t.Fatalf("accepted plan failed to encode: %v (%+v)", err, p1)
		}
		p2, err := DecodePlan(enc1)
		if err != nil {
			t.Fatalf("own encoding rejected: %v\n%s", err, enc1)
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("decode/encode/decode not identity:\n p1=%+v\n p2=%+v", p1, p2)
		}
		enc2, err := EncodePlan(p2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding not canonical:\n%s\n%s", enc1, enc2)
		}
		s1, s2 := p1.Expand(), p1.Expand()
		if !reflect.DeepEqual(s1, s2) {
			t.Fatal("Expand nondeterministic on decoded plan")
		}
	})
}
