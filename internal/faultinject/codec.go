package faultinject

// Plan codec: a JSON wire format for injection schedules, so chaos plans
// can be declared in files and harness specs instead of Go literals. The
// decoder validates everything it accepts — unknown kinds, unknown fields,
// negative times and counts are errors, never silently clamped — because a
// plan that decodes is a plan the injector will execute verbatim, and the
// determinism story depends on the schedule being exactly what was
// declared. Encode∘Decode is the identity on valid plans (the fuzz target
// holds this).

import (
	"bytes"
	"encoding/json"
	"fmt"

	"vessel/internal/sim"
)

// faultJSON is the wire form of one Fault. Times are integer nanoseconds
// of virtual time.
type faultJSON struct {
	Kind    string `json:"kind"`
	AtNs    int64  `json:"at_ns,omitempty"`
	Target  string `json:"target,omitempty"`
	Core    int    `json:"core,omitempty"`
	DelayNs int64  `json:"delay_ns,omitempty"`
}

// planJSON is the wire form of a Plan.
type planJSON struct {
	Seed          uint64      `json:"seed,omitempty"`
	Faults        []faultJSON `json:"faults,omitempty"`
	Random        int         `json:"random,omitempty"`
	RandomKinds   []string    `json:"random_kinds,omitempty"`
	RandomTargets []string    `json:"random_targets,omitempty"`
	RandomCores   int         `json:"random_cores,omitempty"`
	RandomWindow  int64       `json:"random_window_ns,omitempty"`
}

// maxRandomFaults bounds decoded random-fault counts so a hostile or
// corrupted plan cannot make Expand allocate without limit.
const maxRandomFaults = 1 << 16

// EncodePlan renders a plan in the JSON wire format.
func EncodePlan(p Plan) ([]byte, error) {
	out := planJSON{
		Seed:          p.Seed,
		Random:        p.Random,
		RandomTargets: p.RandomTargets,
		RandomCores:   p.RandomCores,
		RandomWindow:  int64(p.RandomWindow),
	}
	for _, f := range p.Faults {
		if f.Kind >= numKinds {
			return nil, fmt.Errorf("faultinject: cannot encode unknown kind %d", uint8(f.Kind))
		}
		out.Faults = append(out.Faults, faultJSON{
			Kind:    f.Kind.String(),
			AtNs:    int64(f.At),
			Target:  f.Target,
			Core:    f.Core,
			DelayNs: int64(f.Delay),
		})
	}
	for _, k := range p.RandomKinds {
		if k >= numKinds {
			return nil, fmt.Errorf("faultinject: cannot encode unknown random kind %d", uint8(k))
		}
		out.RandomKinds = append(out.RandomKinds, k.String())
	}
	return json.MarshalIndent(out, "", "  ")
}

// DecodePlan parses and validates the JSON wire format.
func DecodePlan(data []byte) (Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var in planJSON
	if err := dec.Decode(&in); err != nil {
		return Plan{}, fmt.Errorf("faultinject: decoding plan: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil {
		return Plan{}, fmt.Errorf("faultinject: trailing data after plan")
	}
	p := Plan{
		Seed:         in.Seed,
		Random:       in.Random,
		RandomCores:  in.RandomCores,
		RandomWindow: sim.Duration(in.RandomWindow),
	}
	// Normalise empty to nil so decode∘encode∘decode is structurally
	// idempotent (omitempty drops empty lists on re-encode).
	if len(in.RandomTargets) > 0 {
		p.RandomTargets = in.RandomTargets
	}
	if in.Random < 0 {
		return Plan{}, fmt.Errorf("faultinject: random count %d is negative", in.Random)
	}
	if in.Random > maxRandomFaults {
		return Plan{}, fmt.Errorf("faultinject: random count %d exceeds limit %d", in.Random, maxRandomFaults)
	}
	if in.RandomCores < 0 {
		return Plan{}, fmt.Errorf("faultinject: random core count %d is negative", in.RandomCores)
	}
	if in.RandomWindow < 0 {
		return Plan{}, fmt.Errorf("faultinject: random window %dns is negative", in.RandomWindow)
	}
	if in.Random > 0 && len(in.RandomKinds) == 0 {
		return Plan{}, fmt.Errorf("faultinject: random=%d with no random_kinds", in.Random)
	}
	for i, f := range in.Faults {
		kind, err := ParseKind(f.Kind)
		if err != nil {
			return Plan{}, fmt.Errorf("faultinject: fault %d: %w", i, err)
		}
		if f.AtNs < 0 {
			return Plan{}, fmt.Errorf("faultinject: fault %d: at_ns %d is negative", i, f.AtNs)
		}
		if f.DelayNs < 0 {
			return Plan{}, fmt.Errorf("faultinject: fault %d: delay_ns %d is negative", i, f.DelayNs)
		}
		if f.Core < 0 {
			return Plan{}, fmt.Errorf("faultinject: fault %d: core %d is negative", i, f.Core)
		}
		p.Faults = append(p.Faults, Fault{
			Kind:   kind,
			At:     sim.Time(f.AtNs),
			Target: f.Target,
			Core:   f.Core,
			Delay:  sim.Duration(f.DelayNs),
		})
	}
	for i, s := range in.RandomKinds {
		kind, err := ParseKind(s)
		if err != nil {
			return Plan{}, fmt.Errorf("faultinject: random kind %d: %w", i, err)
		}
		p.RandomKinds = append(p.RandomKinds, kind)
	}
	return p, nil
}
