package faultinject

// Tests for the self-healing fault classes: the failures themselves (the
// recovery side lives in internal/selfheal). Each asserts the injected
// state is exactly what the detectors and reconcilers key on.

import (
	"testing"

	"vessel/internal/sim"
	"vessel/internal/uproc"
)

func TestCoreStallFreezesWithoutFault(t *testing.T) {
	d := newDomain(t, 2)
	a, err := d.CreateUProc("a", parkLoop(d, "a"))
	if err != nil {
		t.Fatal(err)
	}
	inj := New(d, Plan{Seed: 1, Faults: []Fault{{Kind: CoreStall, Core: 0, At: 0}}})
	d.AttachThread(0, a.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	inj.Step(0)
	core := d.Machine.Core(0)
	if !core.Stalled {
		t.Fatal("core not stalled")
	}
	before := core.Cycles
	if ran := core.Run(1000); ran != 0 {
		t.Fatalf("stalled core retired %d instructions", ran)
	}
	if core.Cycles != before {
		t.Fatal("stalled core's cycle counter advanced")
	}
	// The distinguishing mark of a stall: no fault, no halt. Only the
	// missing heartbeat gives it away.
	if core.Fault != nil || core.Halted {
		t.Fatalf("stall recorded an error state: halted=%v fault=%v", core.Halted, core.Fault)
	}
	if inj.Counters.Get("inject.corestall") != 1 {
		t.Fatalf("counters:\n%s", inj.Counters.String())
	}
	// Out-of-range cores are skipped, not panicked on.
	inj2 := New(d, Plan{Seed: 1, Faults: []Fault{{Kind: CoreStall, Core: 99, At: 0}}})
	inj2.Step(0)
	if inj2.Counters.Get("inject.skip") != 1 {
		t.Fatal("out-of-range corestall not skipped")
	}
}

func TestDomainCrashFailStopsEveryCore(t *testing.T) {
	d := newDomain(t, 2)
	for _, name := range []string{"a", "b"} {
		u, err := d.CreateUProc(name, parkLoop(d, name))
		if err != nil {
			t.Fatal(err)
		}
		core := 0
		if name == "b" {
			core = 1
		}
		d.AttachThread(core, u.Threads()[0])
		if err := d.StartCore(core); err != nil {
			t.Fatal(err)
		}
	}
	inj := New(d, Plan{Seed: 1, Faults: []Fault{{Kind: DomainCrash, At: 0}}})
	inj.Step(0)
	for i := 0; i < 2; i++ {
		c := d.Machine.Core(i)
		if !c.Halted || c.Fault == nil {
			t.Fatalf("core %d survived the domain crash: halted=%v fault=%v", i, c.Halted, c.Fault)
		}
		if ok, err := d.Wake(i); err != nil || ok {
			t.Fatalf("Wake on crashed core %d = (%v, %v)", i, ok, err)
		}
	}
	if inj.Counters.Get("inject.domaincrash") != 1 {
		t.Fatalf("counters:\n%s", inj.Counters.String())
	}
}

// recordingPolicy is a PolicyTarget stub recording what was injected.
type recordingPolicy struct {
	panics int
	burned int64
}

func (p *recordingPolicy) InjectPanic()            { p.panics++ }
func (p *recordingPolicy) InjectBurn(cycles int64) { p.burned += cycles }

func TestPolicyPanicTargetsAttachedPolicy(t *testing.T) {
	d := newDomain(t, 1)
	inj := New(d, Plan{Seed: 1, Faults: []Fault{
		{Kind: PolicyPanic, At: 0},
		{Kind: PolicyPanic, At: 0, Delay: 500},
	}})
	pol := &recordingPolicy{}
	inj.AttachPolicy(pol)
	inj.Step(0)
	if pol.panics != 1 {
		t.Fatalf("panics = %d, want 1", pol.panics)
	}
	if pol.burned != 500 {
		t.Fatalf("burned = %d, want 500", pol.burned)
	}
	// Without a policy attached the fault is skipped, not stuck pending.
	inj2 := New(d, Plan{Seed: 1, Faults: []Fault{{Kind: PolicyPanic, At: 0}}})
	inj2.Step(0)
	if inj2.Pending() != 0 || inj2.Counters.Get("inject.skip") != 1 {
		t.Fatal("unattached policypanic not skipped")
	}
}

func TestUintrStormDropsEverySendInWindow(t *testing.T) {
	d := newDomain(t, 1)
	a, err := d.CreateUProc("a", parkLoop(d, "a"))
	if err != nil {
		t.Fatal(err)
	}
	inj := New(d, Plan{Seed: 1, Faults: []Fault{{Kind: UintrStorm, At: 0, Delay: 5 * sim.Microsecond}}})
	d.AttachThread(0, a.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	inj.Step(0)
	core := d.Machine.Core(0)
	for i := 0; i < 3; i++ {
		if err := d.Preempt(0, uproc.SchedCommand{}); err != nil {
			t.Fatal(err)
		}
	}
	if core.PendingVectors != 0 {
		t.Fatal("storm let a Uintr through")
	}
	if d.Sched.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3 (storm drops every send, not one)", d.Sched.Dropped)
	}
	if inj.Counters.Get("inject.uintr.storm-drop") != 3 {
		t.Fatalf("counters:\n%s", inj.Counters.String())
	}
	// Past the window the channel heals.
	d.Eng.Run(sim.Time(6 * sim.Microsecond))
	if err := d.Preempt(0, uproc.SchedCommand{}); err != nil {
		t.Fatal(err)
	}
	if core.PendingVectors == 0 {
		t.Fatal("channel still dead after the storm window")
	}
}

func TestPkeyLeakAllocatesOrphanKey(t *testing.T) {
	d := newDomain(t, 1)
	if _, err := d.CreateUProc("a", parkLoop(d, "a")); err != nil {
		t.Fatal(err)
	}
	avail := d.S.Keys.Available()
	regions := len(d.S.RegionKeys())
	inj := New(d, Plan{Seed: 1, Faults: []Fault{{Kind: PkeyLeak, At: 0}}})
	inj.Step(0)
	if got := d.S.Keys.Available(); got != avail-1 {
		t.Fatalf("available keys %d, want %d", got, avail-1)
	}
	// The leak's signature: a key in use that no region accounts for.
	if got := len(d.S.RegionKeys()); got != regions {
		t.Fatalf("region count changed: %d -> %d", regions, got)
	}
	if inj.Counters.Get("inject.pkeyleak") != 1 {
		t.Fatalf("counters:\n%s", inj.Counters.String())
	}
}
