// Package faultinject is the deterministic chaos harness of the
// reproduction: a seed-driven injector that subjects a running scheduling
// domain to the failure modes the paper's isolation story (§4) must
// survive — PKRU-violating wild writes, crashes at the call gate before
// privilege is raised, crashes inside the trusted runtime, runaway threads
// that stop calling park(), dropped or delayed scheduler Uintrs, and
// wedged dataplane queues.
//
// Identical (Plan, seed) inputs expand to an identical injection schedule,
// and because the simulation itself is deterministic, to an identical
// containment event trace — the property the chaos tests assert by
// comparing trace.EventLog fingerprints across runs.
package faultinject

import (
	"fmt"
	"sort"

	"vessel/internal/dataplane"
	"vessel/internal/mem"
	"vessel/internal/mpk"
	"vessel/internal/sim"
	"vessel/internal/smas"
	"vessel/internal/stats"
	"vessel/internal/uintr"
	"vessel/internal/uproc"
)

// Kind enumerates the injectable failure modes.
type Kind uint8

const (
	// WildWrite injects a PKRU-violating store attributed to the target
	// uProcess — the classic stray pointer into a sibling's region or the
	// runtime's. Must be contained: only the offender dies.
	WildWrite Kind = iota
	// GateCrash injects a fault at the park gate's entry while the target
	// still runs with its application PKRU — a crash mid call-gate
	// transition, before stage 1 raises privilege. Contained like any
	// application fault.
	GateCrash
	// RuntimeCrash injects a fault while the core holds the privileged
	// PKRU — a bug inside the trusted runtime itself. The domain
	// fail-stops that core by design; the harness verifies the blast
	// radius stays on the one core.
	RuntimeCrash
	// Runaway makes the target uProcess stop parking: every subsequent
	// park() is suppressed, so only preemption and the watchdog can get
	// its cores back.
	Runaway
	// DropUintr discards the next scheduler Uintr aimed at Core.
	DropUintr
	// DelayUintr holds the next scheduler Uintr aimed at Core for Delay of
	// virtual time, then re-sends it.
	DelayUintr
	// WedgeQueue wedges the named dataplane queue (polls come back empty)
	// for Delay of virtual time.
	WedgeQueue
	// CoreStall wedges the core itself: it stops retiring instructions and
	// its cycle counter freezes, with no fault recorded — the failure the
	// phi-accrual detector must catch from the missing heartbeat alone.
	// Recovery is core fencing, not containment.
	CoreStall
	// DomainCrash fail-stops every core of the domain at once — the
	// trusted runtime dying wholesale. Recovery is a supervised domain
	// restart with full state reconciliation.
	DomainCrash
	// PolicyPanic attacks the attached scheduler policy (AttachPolicy):
	// with zero Delay the policy's next decision panics; with a positive
	// Delay the next decision is charged that many extra cycles, blowing
	// the per-decision budget. Either way the failsafe wrapper must swap
	// in the round-robin fallback.
	PolicyPanic
	// UintrStorm drops every scheduler Uintr for Delay of virtual time —
	// a loss storm on the upcall channel, not just one dropped send.
	UintrStorm
	// PkeyLeak allocates a protection key that no region owns, modelling
	// a lost pkey_free — the libmpk leak class. Reconciliation must find
	// and reclaim it.
	PkeyLeak
	// PkeyThrash force-evicts every unpinned resident virtual key — an
	// eviction storm against the virtual protection-key layer. Each
	// evicted uProcess's next activation pays a full refill; the
	// isolation oracles must hold throughout. A no-op (with a note) in
	// domains without virtualized keys.
	PkeyThrash
	// ClusterPolicyPanic attacks the cluster-scope scheduling policy
	// (AttachClusterPolicy) — the ghOSt-style upper level that decides
	// core grants and revokes — the same way PolicyPanic attacks the
	// per-domain policy: zero Delay panics the next decision, positive
	// Delay burns that many extra cycles into it. The cluster's failsafe
	// wrapper must swap in the static fallback.
	ClusterPolicyPanic
	numKinds
)

func (k Kind) String() string {
	switch k {
	case WildWrite:
		return "wildwrite"
	case GateCrash:
		return "gatecrash"
	case RuntimeCrash:
		return "runtimecrash"
	case Runaway:
		return "runaway"
	case DropUintr:
		return "dropuintr"
	case DelayUintr:
		return "delayuintr"
	case WedgeQueue:
		return "wedgequeue"
	case CoreStall:
		return "corestall"
	case DomainCrash:
		return "domaincrash"
	case PolicyPanic:
		return "policypanic"
	case UintrStorm:
		return "uintrstorm"
	case PkeyLeak:
		return "pkeyleak"
	case PkeyThrash:
		return "pkeythrash"
	case ClusterPolicyPanic:
		return "clusterpolicypanic"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind is the inverse of String, used by the plan decoder.
func ParseKind(s string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown fault kind %q", s)
}

// Fault is one planned injection.
type Fault struct {
	Kind Kind
	// At is the virtual time at or after which the fault fires. Faults
	// aimed at a uProcess additionally wait until the target is actually
	// running on some core.
	At sim.Time
	// Target names the uProcess (WildWrite, GateCrash, RuntimeCrash,
	// Runaway) or the dataplane queue (WedgeQueue) under attack.
	Target string
	// Core aims the Uintr kinds at a core's scheduler channel.
	Core int
	// Delay parameterises DelayUintr and WedgeQueue; zero picks a
	// seed-derived default.
	Delay sim.Duration
}

// Plan declares an injection schedule. Identical plans (including Seed)
// always expand to identical schedules.
type Plan struct {
	Seed   uint64
	Faults []Fault
	// Random, when positive, appends Random extra faults with kinds drawn
	// from RandomKinds, uProcess targets from RandomTargets, cores uniform
	// in [0, RandomCores), and fire times uniform in [0, RandomWindow) —
	// all derived from Seed.
	Random        int
	RandomKinds   []Kind
	RandomTargets []string
	RandomCores   int
	RandomWindow  sim.Duration
}

// Expand returns the concrete, time-sorted injection schedule. The sort is
// stable, so equal-time faults keep their declaration (then generation)
// order and the schedule is a pure function of the plan.
func (p Plan) Expand() []Fault {
	out := append([]Fault(nil), p.Faults...)
	if p.Random > 0 && len(p.RandomKinds) > 0 {
		rng := sim.NewRNG(p.Seed ^ 0x9e3779b97f4a7c15)
		window := p.RandomWindow
		if window <= 0 {
			window = 100 * sim.Microsecond
		}
		cores := p.RandomCores
		if cores <= 0 {
			cores = 1
		}
		for i := 0; i < p.Random; i++ {
			f := Fault{
				Kind: p.RandomKinds[rng.IntN(len(p.RandomKinds))],
				At:   sim.Time(rng.Float64() * float64(window)),
				Core: rng.IntN(cores),
			}
			if len(p.RandomTargets) > 0 {
				f.Target = p.RandomTargets[rng.IntN(len(p.RandomTargets))]
			}
			f.Delay = sim.Duration(1+rng.IntN(10)) * sim.Microsecond
			out = append(out, f)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// timedResend is a delayed Uintr awaiting re-send.
type timedResend struct {
	at   sim.Time
	core int
}

// timedUnwedge is a wedged queue awaiting release.
type timedUnwedge struct {
	at   sim.Time
	name string
	q    *dataplane.Queue
}

// Injector drives a Plan against a live uproc.Domain. It owns the park
// filter and the scheduler sender's interposer; construct it with New
// before the run starts and call Step once per scheduling quantum with the
// engine clock already advanced.
type Injector struct {
	d        *uproc.Domain
	rng      *sim.RNG
	schedule []Fault
	next     int
	// pending holds armed uProcess-targeted faults waiting for their
	// target to be running on some core.
	pending []Fault

	queues    map[string]*dataplane.Queue
	runaway   map[string]bool
	resend    []timedResend
	unwedge   []timedUnwedge
	drop      map[int]int
	delay     map[int]sim.Duration
	resending bool
	// stormUntil: while the clock is before it, every send is dropped
	// (UintrStorm). policy is the attached scheduler-policy attack surface.
	stormUntil    sim.Time
	policy        PolicyTarget
	clusterPolicy PolicyTarget

	// Counters tallies injections by kind and outcome, in deterministic
	// (insertion) order.
	Counters *stats.Counters
}

// New expands the plan and wires the injector into the domain: it installs
// the domain's ParkFilter (runaway modelling) and the scheduler sender's
// Interpose hook (drop/delay). Injection events are recorded into
// d.Events when the domain has an event log attached.
func New(d *uproc.Domain, plan Plan) *Injector {
	inj := &Injector{
		d:        d,
		rng:      sim.NewRNG(plan.Seed),
		schedule: plan.Expand(),
		queues:   make(map[string]*dataplane.Queue),
		runaway:  make(map[string]bool),
		drop:     make(map[int]int),
		delay:    make(map[int]sim.Duration),
		Counters: stats.NewCounters(),
	}
	d.ParkFilter = func(u *uproc.UProc) bool { return !inj.runaway[u.Name] }
	d.Sched.Interpose = inj.interpose
	return inj
}

// RegisterQueue makes a dataplane queue addressable by WedgeQueue faults.
func (inj *Injector) RegisterQueue(q *dataplane.Queue) { inj.queues[q.Name] = q }

// PolicyTarget is the scheduler-policy attack surface PolicyPanic faults
// drive. The failsafe policy wrapper (internal/selfheal) implements it:
// InjectPanic makes the wrapped policy's next decision panic, InjectBurn
// charges the next decision the given extra cycles so it blows the
// per-decision budget.
type PolicyTarget interface {
	InjectPanic()
	InjectBurn(cycles int64)
}

// AttachPolicy makes the scheduler policy addressable by PolicyPanic
// faults. Without one attached, PolicyPanic injections are skipped (and
// counted as such).
func (inj *Injector) AttachPolicy(p PolicyTarget) { inj.policy = p }

// AttachClusterPolicy makes the cluster-scope scheduling policy (the
// clustersched failsafe wrapper) addressable by ClusterPolicyPanic
// faults. Without one attached, those injections are skipped (and
// counted as such).
func (inj *Injector) AttachClusterPolicy(p PolicyTarget) { inj.clusterPolicy = p }

// Pending returns the number of armed faults still waiting for their
// target (plus schedule entries not yet due).
func (inj *Injector) Pending() int { return len(inj.pending) + (len(inj.schedule) - inj.next) }

// note counts and logs one injector action.
func (inj *Injector) note(name, detail string) {
	inj.Counters.Inc(name)
	if inj.d.Events != nil {
		inj.d.Events.Record(inj.d.Eng.Now(), name, detail)
	}
}

// interpose is the Sender.Interpose hook: it applies any armed drop or
// delay verdict for the targeted core. Delayed sends are modelled as a
// drop plus a re-send from the injector's own virtual-time queue (the
// layer-1 sender delivers immediately, so there is no engine to defer on).
func (inj *Injector) interpose(idx int, vector uint8) uintr.Tamper {
	if inj.resending {
		return uintr.Tamper{}
	}
	if inj.d.Eng.Now() < inj.stormUntil {
		// Loss storm: every send on every core is discarded, silently from
		// the sender's point of view — only the counter records it, since
		// per-drop events would dominate the log during a long storm.
		inj.Counters.Inc("inject.uintr.storm-drop")
		return uintr.Tamper{Drop: true}
	}
	if n := inj.drop[idx]; n > 0 {
		inj.drop[idx] = n - 1
		inj.note("inject.uintr.drop", fmt.Sprintf("core=%d", idx))
		return uintr.Tamper{Drop: true}
	}
	if dl, ok := inj.delay[idx]; ok {
		delete(inj.delay, idx)
		inj.resend = append(inj.resend, timedResend{at: inj.d.Eng.Now().Add(dl), core: idx})
		inj.note("inject.uintr.delay", fmt.Sprintf("core=%d delay=%v", idx, dl))
		return uintr.Tamper{Drop: true}
	}
	return uintr.Tamper{}
}

// Step fires every injection due at or before now, retries faults whose
// target was not yet running, re-sends delayed Uintrs, and releases wedged
// queues whose delay elapsed.
func (inj *Injector) Step(now sim.Time) {
	for inj.next < len(inj.schedule) && inj.schedule[inj.next].At <= now {
		inj.pending = append(inj.pending, inj.schedule[inj.next])
		inj.next++
	}
	kept := inj.pending[:0]
	for _, f := range inj.pending {
		if !inj.fire(f, now) {
			kept = append(kept, f)
		}
	}
	inj.pending = kept

	keptR := inj.resend[:0]
	for _, r := range inj.resend {
		if r.at <= now {
			inj.resending = true
			_, _ = inj.d.Sched.SendUIPI(r.core)
			inj.resending = false
			inj.note("inject.uintr.resend", fmt.Sprintf("core=%d", r.core))
		} else {
			keptR = append(keptR, r)
		}
	}
	inj.resend = keptR

	keptU := inj.unwedge[:0]
	for _, w := range inj.unwedge {
		if w.at <= now {
			w.q.SetWedged(false)
			inj.note("inject.unwedge", fmt.Sprintf("queue=%s", w.name))
		} else {
			keptU = append(keptU, w)
		}
	}
	inj.unwedge = keptU
}

// fire attempts one injection; it reports whether the fault is consumed
// (false means "retry next Step" — the target was not in a injectable
// state yet).
func (inj *Injector) fire(f Fault, now sim.Time) bool {
	switch f.Kind {
	case Runaway:
		inj.runaway[f.Target] = true
		inj.note("inject.runaway", fmt.Sprintf("uproc=%s", f.Target))
		return true
	case DropUintr:
		inj.drop[f.Core]++
		inj.note("inject.uintr.arm-drop", fmt.Sprintf("core=%d", f.Core))
		return true
	case DelayUintr:
		dl := f.Delay
		if dl <= 0 {
			dl = 5 * sim.Microsecond
		}
		inj.delay[f.Core] = dl
		inj.note("inject.uintr.arm-delay", fmt.Sprintf("core=%d delay=%v", f.Core, dl))
		return true
	case WedgeQueue:
		q, ok := inj.queues[f.Target]
		if !ok {
			inj.note("inject.skip", fmt.Sprintf("queue=%s not registered", f.Target))
			return true
		}
		dl := f.Delay
		if dl <= 0 {
			dl = 10 * sim.Microsecond
		}
		q.SetWedged(true)
		inj.unwedge = append(inj.unwedge, timedUnwedge{at: now.Add(dl), name: f.Target, q: q})
		inj.note("inject.wedge", fmt.Sprintf("queue=%s delay=%v", f.Target, dl))
		return true
	case CoreStall:
		if f.Core < 0 || f.Core >= inj.d.Machine.NumCores() {
			inj.note("inject.skip", fmt.Sprintf("corestall core=%d out of range", f.Core))
			return true
		}
		inj.d.Machine.Core(f.Core).Stalled = true
		inj.note("inject.corestall", fmt.Sprintf("core=%d", f.Core))
		return true
	case DomainCrash:
		// The trusted runtime dies wholesale: raise a privileged-mode fault
		// on every core, so each takes the uncontained fail-stop path and
		// the whole domain goes dark at one instant.
		priv := inj.d.S.RuntimePKRU()
		for i := 0; i < inj.d.Machine.NumCores(); i++ {
			c := inj.d.Machine.Core(i)
			if c.Fault != nil {
				continue // already dead
			}
			c.PKRU = priv
			c.Inject(&mem.Fault{Addr: smas.RuntimeBase, Kind: mem.FaultPKU, Op: mpk.AccessWrite})
		}
		inj.note("inject.domaincrash", fmt.Sprintf("cores=%d", inj.d.Machine.NumCores()))
		return true
	case PolicyPanic:
		if inj.policy == nil {
			inj.note("inject.skip", "policypanic: no policy attached")
			return true
		}
		if f.Delay > 0 {
			inj.policy.InjectBurn(int64(f.Delay))
			inj.note("inject.policyburn", fmt.Sprintf("cycles=%d", int64(f.Delay)))
		} else {
			inj.policy.InjectPanic()
			inj.note("inject.policypanic", "")
		}
		return true
	case ClusterPolicyPanic:
		if inj.clusterPolicy == nil {
			inj.note("inject.skip", "clusterpolicypanic: no cluster policy attached")
			return true
		}
		if f.Delay > 0 {
			inj.clusterPolicy.InjectBurn(int64(f.Delay))
			inj.note("inject.clusterpolicyburn", fmt.Sprintf("cycles=%d", int64(f.Delay)))
		} else {
			inj.clusterPolicy.InjectPanic()
			inj.note("inject.clusterpolicypanic", "")
		}
		return true
	case UintrStorm:
		dl := f.Delay
		if dl <= 0 {
			dl = 20 * sim.Microsecond
		}
		inj.stormUntil = now.Add(dl)
		inj.note("inject.uintr.storm", fmt.Sprintf("until=%d", int64(inj.stormUntil)))
		return true
	case PkeyLeak:
		k, err := inj.d.S.Keys.Alloc()
		if err != nil {
			inj.note("inject.skip", "pkeyleak: no key free")
			return true
		}
		inj.note("inject.pkeyleak", fmt.Sprintf("key=%d", k))
		return true
	case PkeyThrash:
		if inj.d.S.VKeys == nil {
			inj.note("inject.skip", "pkeythrash: keys not virtualized")
			return true
		}
		evicted, pages := inj.d.S.VKeys.Thrash()
		inj.note("inject.pkeythrash", fmt.Sprintf("evicted=%d pages=%d", evicted, pages))
		return true
	case WildWrite, GateCrash, RuntimeCrash:
		return inj.fireCrash(f)
	default:
		inj.note("inject.skip", fmt.Sprintf("unknown kind %d", f.Kind))
		return true
	}
}

// fireCrash injects a synthetic memory fault attributed to the target
// uProcess on whichever core currently runs it.
func (inj *Injector) fireCrash(f Fault) bool {
	core := -1
	var u *uproc.UProc
	for i := 0; i < inj.d.Machine.NumCores(); i++ {
		t := inj.d.Current(i)
		if t != nil && t.U.Name == f.Target && t.U.State != uproc.UProcTerminated {
			core, u = i, t.U
			break
		}
	}
	if u == nil {
		return false // target not running anywhere yet; retry
	}
	c := inj.d.Machine.Core(core)
	priv := inj.d.S.RuntimePKRU()
	switch f.Kind {
	case WildWrite:
		if c.PKRU == priv {
			return false // mid-gate: wait for application mode
		}
		addr := inj.wildAddr(u)
		inj.note("inject.wildwrite", fmt.Sprintf("core=%d uproc=%s addr=%#x", core, u.Name, uint64(addr)))
		c.Inject(&mem.Fault{Addr: addr, Kind: mem.FaultPKU, Op: mpk.AccessWrite})
	case GateCrash:
		if c.PKRU == priv {
			return false
		}
		inj.note("inject.gatecrash", fmt.Sprintf("core=%d uproc=%s", core, u.Name))
		c.Inject(&mem.Fault{Addr: inj.d.GatePark.Entry, Kind: mem.FaultPerm, Op: mpk.AccessExec})
	case RuntimeCrash:
		// Model a bug in the privileged runtime: the core is in
		// privileged mode when the fault hits, so containment correctly
		// refuses and the core fail-stops.
		c.PKRU = priv
		inj.note("inject.runtimecrash", fmt.Sprintf("core=%d uproc=%s", core, u.Name))
		c.Inject(&mem.Fault{Addr: smas.RuntimeBase, Kind: mem.FaultPKU, Op: mpk.AccessWrite})
	}
	return true
}

// wildAddr picks a seed-driven victim address outside the offender's own
// region: a live sibling's region base or the runtime region.
func (inj *Injector) wildAddr(from *uproc.UProc) mem.Addr {
	var victims []mem.Addr
	for _, v := range inj.d.UProcs() {
		if v != from && v.State == uproc.UProcRunning {
			victims = append(victims, v.Image.Region.Base)
		}
	}
	victims = append(victims, smas.RuntimeBase)
	base := victims[inj.rng.IntN(len(victims))]
	return base + mem.Addr(inj.rng.IntN(64)*8)
}
