package faultinject

import (
	"bytes"
	"testing"
)

func TestClusterPolicyPanicTargetsAttachedPolicy(t *testing.T) {
	d := newDomain(t, 1)
	inj := New(d, Plan{Seed: 1, Faults: []Fault{
		{Kind: ClusterPolicyPanic, At: 0},
		{Kind: ClusterPolicyPanic, At: 0, Delay: 900},
	}})
	cluster := &recordingPolicy{}
	domain := &recordingPolicy{}
	inj.AttachClusterPolicy(cluster)
	inj.AttachPolicy(domain)
	inj.Step(0)
	if cluster.panics != 1 || cluster.burned != 900 {
		t.Fatalf("cluster policy: panics=%d burned=%d, want 1/900", cluster.panics, cluster.burned)
	}
	// The attack is scoped: the per-domain policy is untouched.
	if domain.panics != 0 || domain.burned != 0 {
		t.Fatalf("domain policy attacked: panics=%d burned=%d", domain.panics, domain.burned)
	}
	// Without a cluster policy attached the fault is skipped, not stuck.
	inj2 := New(d, Plan{Seed: 1, Faults: []Fault{{Kind: ClusterPolicyPanic, At: 0}}})
	inj2.Step(0)
	if inj2.Pending() != 0 || inj2.Counters.Get("inject.skip") != 1 {
		t.Fatal("unattached clusterpolicypanic not skipped")
	}
}

func TestClusterPolicyPanicCodecRoundTrip(t *testing.T) {
	p := Plan{Seed: 7, Faults: []Fault{
		{Kind: ClusterPolicyPanic, At: 10},
		{Kind: ClusterPolicyPanic, At: 20, Delay: 5000},
	}}
	enc, err := EncodePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePlan(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := EncodePlan(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", enc, enc2)
	}
	if k, err := ParseKind("clusterpolicypanic"); err != nil || k != ClusterPolicyPanic {
		t.Fatalf("ParseKind: %v %v", k, err)
	}
}
