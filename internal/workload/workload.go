// Package workload implements the paper's workloads (§6.1):
//
//   - memcached with Facebook's USR distribution: reads and writes with a
//     1 µs average service time, Poisson arrivals;
//   - Silo under TPC-C: high service-time variability, 20 µs median and
//     280 µs at the 99.9th percentile;
//   - Linpack: a CPU-bound best-effort batch job whose throughput is
//     proportional to the CPU time it receives;
//   - membench: a memory-intensive best-effort app alternating memory and
//     compute phases (the AI-recommendation stand-in).
//
// Apps expose open-loop request generation over the simulation engine and
// latency/throughput accounting consumed by every scheduler simulator.
package workload

import (
	"fmt"
	"math"

	"vessel/internal/obs/journey"
	"vessel/internal/sim"
	"vessel/internal/stats"
)

// Kind distinguishes latency-critical from best-effort applications.
type Kind uint8

const (
	// LatencyCritical apps serve request streams and are measured by
	// tail latency (L-apps).
	LatencyCritical Kind = iota
	// BestEffort apps consume whatever cycles are left (B-apps).
	BestEffort
)

func (k Kind) String() string {
	if k == LatencyCritical {
		return "L-app"
	}
	return "B-app"
}

// ServiceDist samples request service times.
type ServiceDist interface {
	Sample(r *sim.RNG) sim.Duration
	Mean() sim.Duration
}

// ExpDist is an exponential service-time distribution — the memcached-USR
// stand-in with a 1 µs mean.
type ExpDist struct{ M sim.Duration }

// Sample draws a service time.
func (d ExpDist) Sample(r *sim.RNG) sim.Duration { return r.Exp(d.M) }

// Mean returns the distribution mean.
func (d ExpDist) Mean() sim.Duration { return d.M }

// FixedDist is a deterministic service time.
type FixedDist struct{ D sim.Duration }

// Sample returns the fixed service time.
func (d FixedDist) Sample(r *sim.RNG) sim.Duration { return d.D }

// Mean returns the fixed service time.
func (d FixedDist) Mean() sim.Duration { return d.D }

// TPCCDist models Silo/TPC-C service times: log-normal with a 20 µs median
// and 280 µs at P999 (§6.1). Solving exp(µ)=20µs and exp(µ+3.09σ)=280µs
// gives σ = ln(14)/3.09.
type TPCCDist struct{}

var tpccMu = math.Log(20_000)
var tpccSigma = math.Log(14) / 3.0902 // z(0.999) = 3.0902

// Sample draws a TPC-C transaction service time.
func (TPCCDist) Sample(r *sim.RNG) sim.Duration {
	return r.LogNormal(tpccMu, tpccSigma)
}

// Mean returns the log-normal mean exp(µ+σ²/2).
func (TPCCDist) Mean() sim.Duration {
	return sim.Duration(math.Exp(tpccMu + tpccSigma*tpccSigma/2))
}

// Memcached returns the memcached-USR L-app service distribution.
func Memcached() ServiceDist { return ExpDist{M: 1 * sim.Microsecond} }

// Silo returns the Silo/TPC-C L-app service distribution.
func Silo() ServiceDist { return TPCCDist{} }

// Burst configures an ON/OFF modulated Poisson arrival process for the
// bursty-load experiments (Figure 10). Period lengths are exponential with
// the given means. The instantaneous rate is scaled by 2F/(1+F) during ON
// periods and 2/(1+F) during OFF periods, so with OnMean == OffMean the
// long-run average stays exactly the configured rate while ON periods run
// F times hotter than OFF ones.
type Burst struct {
	OnMean  sim.Duration
	OffMean sim.Duration
	Factor  float64
}

// multipliers returns the (on, off) rate scalers. A Factor below 1 (or
// non-finite: NaN/±Inf would poison every downstream gap computation) is
// treated as no modulation.
func (b *Burst) multipliers() (float64, float64) {
	f := b.Factor
	if math.IsNaN(f) || math.IsInf(f, 0) || f < 1 {
		f = 1
	}
	return 2 * f / (1 + f), 2 / (1 + f)
}

// Request is one L-app request.
type Request struct {
	App     *App
	Arrive  sim.Time
	Service sim.Duration
	// Remaining tracks unserved work for schedulers that preempt
	// requests mid-service (§4.4 priority preemption, CFS timeslices).
	Remaining sim.Duration
	Start     sim.Time
	Done      sim.Time
	// J is the request's journey trace context (nil when journey
	// tracing is off; every journey method is nil-safe, so schedulers
	// propagate it without guarding).
	J *journey.Journey
}

// Sojourn returns the request's total latency.
func (r *Request) Sojourn() sim.Duration { return r.Done.Sub(r.Arrive) }

// App is one application instance in an experiment.
type App struct {
	Name string
	Kind Kind

	// L-app parameters.
	Dist  ServiceDist
	RateK float64 // offered load, requests per second
	Burst *Burst
	// Priority orders latency-critical apps for §4.4 preemption: a
	// request of a higher-priority app may preempt a core serving a
	// lower-priority one. Zero is the default; B-apps are always below
	// every L-app.
	Priority int

	// B-app parameters: bandwidth demand while running (bytes/ns, i.e.
	// GB/s) and the fraction of runtime spent in memory phases.
	// Linpack: BWDemand≈0.5, MemFrac≈0.1; membench: BWDemand≈12,
	// MemFrac≈0.7.
	BWDemand float64
	MemFrac  float64

	// Queue is the pending-request FIFO the scheduler serves.
	Queue []*Request

	// Accounting.
	Offered    uint64
	Completed  uint64
	Lat        *stats.Histogram
	BUsefulNs  sim.Duration // B-app CPU time actually delivered
	FirstStart sim.Time
}

// NewLApp builds a latency-critical app.
func NewLApp(name string, dist ServiceDist, ratePerSec float64) *App {
	return &App{
		Name:  name,
		Kind:  LatencyCritical,
		Dist:  dist,
		RateK: ratePerSec,
		Lat:   stats.NewHistogram(),
	}
}

// NewBApp builds a best-effort app. bwDemand is GB/s consumed per running
// core during memory phases; memFrac is the fraction of time in them.
func NewBApp(name string, bwDemand, memFrac float64) *App {
	return &App{
		Name:     name,
		Kind:     BestEffort,
		BWDemand: bwDemand,
		MemFrac:  memFrac,
		Lat:      stats.NewHistogram(),
	}
}

// Linpack returns the paper's CPU-bound B-app.
func Linpack() *App { return NewBApp("linpack", 0.5, 0.05) }

// Membench returns the paper's memory-intensive B-app.
func Membench() *App { return NewBApp("membench", 12.0, 0.7) }

// AvgBW returns the app's average bandwidth demand per running core.
func (a *App) AvgBW() float64 { return a.BWDemand * a.MemFrac }

// Enqueue appends an arrived request.
func (a *App) Enqueue(r *Request) {
	a.Offered++
	a.Queue = append(a.Queue, r)
}

// StealNewest removes and returns the most recently enqueued request —
// used by kernel-path models that hold a just-arrived request in a per-core
// receive ring until softirq processing releases it.
func (a *App) StealNewest() *Request {
	if len(a.Queue) == 0 {
		return nil
	}
	r := a.Queue[len(a.Queue)-1]
	a.Queue = a.Queue[:len(a.Queue)-1]
	return r
}

// Requeue re-inserts a stolen request without recounting it as offered.
func (a *App) Requeue(r *Request) {
	a.Queue = append(a.Queue, r)
}

// RequeueFront re-inserts a preempted in-flight request at the head of the
// queue so it resumes before younger requests.
func (a *App) RequeueFront(r *Request) {
	a.Queue = append([]*Request{r}, a.Queue...)
}

// Dequeue pops the oldest pending request, or nil.
func (a *App) Dequeue() *Request {
	if len(a.Queue) == 0 {
		return nil
	}
	r := a.Queue[0]
	a.Queue = a.Queue[1:]
	return r
}

// QueueDelay returns the age of the oldest pending request at time now —
// the queueing-delay signal both Caladan and VESSEL schedulers use (§4.5).
func (a *App) QueueDelay(now sim.Time) sim.Duration {
	if len(a.Queue) == 0 {
		return 0
	}
	return now.Sub(a.Queue[0].Arrive)
}

// Complete records a finished request (if after the measurement start).
func (a *App) Complete(r *Request, measureFrom sim.Time) {
	a.Completed++
	if r.Arrive >= measureFrom {
		a.Lat.Record(int64(r.Sojourn()))
	}
}

// GenerateArrivals schedules the app's Poisson (optionally burst-modulated)
// arrival process on the engine until the given time. onArrival is invoked
// for each arrival after the request is queued.
func (a *App) GenerateArrivals(eng *sim.Engine, rng *sim.RNG, until sim.Time, onArrival func(*Request)) error {
	if a.Kind != LatencyCritical {
		return fmt.Errorf("workload: %s is not latency-critical", a.Name)
	}
	if math.IsNaN(a.RateK) || math.IsInf(a.RateK, 0) {
		// NaN slips past the <= 0 check below, and the float→Duration
		// conversion of 1e9/NaN is undefined; reject explicitly.
		return fmt.Errorf("workload: %s has non-finite rate %v", a.Name, a.RateK)
	}
	if a.RateK <= 0 {
		return nil
	}
	if a.Dist == nil {
		return fmt.Errorf("workload: %s has no service distribution", a.Name)
	}
	if a.Burst != nil && (a.Burst.OnMean <= 0 || a.Burst.OffMean <= 0) {
		// Exp of a non-positive mean is 0, so phase ends would never
		// advance and the catch-up loop below would spin forever.
		return fmt.Errorf("workload: %s burst phase means must be positive (on=%v off=%v)",
			a.Name, a.Burst.OnMean, a.Burst.OffMean)
	}
	arrivals := rng.Fork(1)
	services := rng.Fork(2)
	bursts := rng.Fork(3)

	baseGap := sim.Duration(1e9 / a.RateK) // ns between arrivals at base rate

	// Burst modulation state.
	factor := 1.0
	var phaseEnd sim.Time
	inOn := false
	nextPhase := func(now sim.Time) {
		if a.Burst == nil {
			phaseEnd = sim.MaxTime
			return
		}
		onMul, offMul := a.Burst.multipliers()
		if inOn {
			inOn = false
			factor = offMul
			phaseEnd = now.Add(bursts.Exp(a.Burst.OffMean))
		} else {
			inOn = true
			factor = onMul
			phaseEnd = now.Add(bursts.Exp(a.Burst.OnMean))
		}
	}
	nextPhase(0)

	var schedule func(at sim.Time)
	schedule = func(at sim.Time) {
		if at > until {
			return
		}
		eng.At(at, func() {
			now := eng.Now()
			for a.Burst != nil && now >= phaseEnd {
				nextPhase(phaseEnd)
			}
			svc := a.Dist.Sample(services)
			r := &Request{App: a, Arrive: now, Service: svc, Remaining: svc}
			a.Enqueue(r)
			if onArrival != nil {
				onArrival(r)
			}
			gap := sim.Duration(float64(arrivals.Exp(baseGap)) / factor)
			if gap < 1 {
				gap = 1
			}
			schedule(now.Add(gap))
		})
	}
	schedule(sim.Time(arrivals.Exp(baseGap)))
	return nil
}

// Sample forwards to the app's service distribution (helper for
// schedulers that sample work directly).
func (a *App) Sample(r *sim.RNG) sim.Duration { return a.Dist.Sample(r) }

// TracePoint is one recorded arrival for replay: when it arrives and how
// much service it needs.
type TracePoint struct {
	At      sim.Time
	Service sim.Duration
}

// ReplayArrivals schedules an exact recorded arrival trace instead of a
// stochastic process — for regression tests and for replaying captured
// workloads. Points must be in non-decreasing time order.
func (a *App) ReplayArrivals(eng *sim.Engine, pts []TracePoint, onArrival func(*Request)) error {
	if a.Kind != LatencyCritical {
		return fmt.Errorf("workload: %s is not latency-critical", a.Name)
	}
	var prev sim.Time
	for _, p := range pts {
		if p.At < prev {
			return fmt.Errorf("workload: trace not time-ordered at %v", p.At)
		}
		prev = p.At
	}
	for _, p := range pts {
		p := p
		eng.At(p.At, func() {
			r := &Request{App: a, Arrive: p.At, Service: p.Service, Remaining: p.Service}
			a.Enqueue(r)
			if onArrival != nil {
				onArrival(r)
			}
		})
	}
	return nil
}
