package workload_test

import (
	"math"
	"testing"

	"vessel/internal/sim"
	"vessel/internal/workload"
)

// FuzzAppArrivals drives App construction and arrival generation with
// adversarial parameters: non-finite rates, degenerate burst phase means,
// NaN burst factors. The property is total: GenerateArrivals either
// rejects the input with an error or produces a finite, well-formed
// arrival stream — never a panic, hang, or corrupt request.
func FuzzAppArrivals(f *testing.F) {
	f.Add(1_000_000.0, 4.0, int64(50_000), int64(50_000), uint8(0))
	f.Add(8_000_000.0, 1.0, int64(0), int64(0), uint8(1))
	f.Add(0.0, 0.0, int64(0), int64(0), uint8(2))
	f.Add(math.NaN(), math.NaN(), int64(-1), int64(-1), uint8(0))
	f.Add(math.Inf(1), math.Inf(-1), int64(1), int64(0), uint8(1))
	f.Fuzz(func(t *testing.T, rate, factor float64, onMean, offMean int64, distSel uint8) {
		// Finite but astronomically high rates are valid inputs that just
		// take forever to enumerate; cap those. Non-finite rates must stay
		// as-is so the rejection path gets exercised.
		if !math.IsInf(rate, 0) && !math.IsNaN(rate) && rate > 1e8 {
			rate = 1e8
		}
		var dist workload.ServiceDist
		switch distSel % 3 {
		case 0:
			dist = workload.Memcached()
		case 1:
			dist = workload.Silo()
		case 2:
			dist = workload.FixedDist{D: 1000}
		}
		app := workload.NewLApp("fuzz", dist, rate)
		if factor != 0 || onMean != 0 || offMean != 0 {
			app.Burst = &workload.Burst{
				OnMean:  sim.Duration(onMean),
				OffMean: sim.Duration(offMean),
				Factor:  factor,
			}
		}
		eng := sim.NewEngine()
		rng := sim.NewRNG(7)
		const until = sim.Time(100_000) // 100 µs window
		err := app.GenerateArrivals(eng, rng, until, func(r *workload.Request) {
			// Service 0 is possible: Exp samples truncate to whole ns.
			if r.Service < 0 || r.Remaining != r.Service {
				t.Fatalf("malformed request: service=%v remaining=%v", r.Service, r.Remaining)
			}
			if r.Arrive < 0 || r.Arrive > until {
				t.Fatalf("arrival at %v outside [0,%v]", r.Arrive, until)
			}
		})
		if err != nil {
			return // rejected input: the documented outcome for bad params
		}
		eng.Run(until)
		if app.Offered != uint64(len(app.Queue)) {
			t.Fatalf("offered %d != queued %d (nothing dequeues in this harness)",
				app.Offered, len(app.Queue))
		}
	})
}
