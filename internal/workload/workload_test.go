package workload

import (
	"math"
	"testing"

	"vessel/internal/sim"
)

func TestTPCCQuantiles(t *testing.T) {
	// The paper characterises Silo/TPC-C by a 20µs median and 280µs
	// P999; the calibrated distribution must hit both.
	r := sim.NewRNG(1)
	d := Silo()
	n := 300000
	samples := make([]sim.Duration, n)
	for i := range samples {
		samples[i] = d.Sample(r)
	}
	below20, below280 := 0, 0
	for _, s := range samples {
		if s < 20*sim.Microsecond {
			below20++
		}
		if s < 280*sim.Microsecond {
			below280++
		}
	}
	if f := float64(below20) / float64(n); math.Abs(f-0.5) > 0.01 {
		t.Fatalf("median fraction = %.3f", f)
	}
	if f := float64(below280) / float64(n); math.Abs(f-0.999) > 0.001 {
		t.Fatalf("P999 fraction = %.4f", f)
	}
	if d.Mean() < 20*sim.Microsecond || d.Mean() > 40*sim.Microsecond {
		t.Fatalf("TPCC mean = %v", d.Mean())
	}
}

func TestMemcachedDist(t *testing.T) {
	d := Memcached()
	if d.Mean() != sim.Microsecond {
		t.Fatalf("mean = %v", d.Mean())
	}
	r := sim.NewRNG(2)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(r))
	}
	if avg := sum / n; math.Abs(avg-1000) > 30 {
		t.Fatalf("sampled mean = %.1f ns", avg)
	}
}

func TestFixedDist(t *testing.T) {
	d := FixedDist{D: 5 * sim.Microsecond}
	r := sim.NewRNG(3)
	if d.Sample(r) != 5*sim.Microsecond || d.Mean() != 5*sim.Microsecond {
		t.Fatal("fixed dist broken")
	}
}

func TestPoissonArrivalRate(t *testing.T) {
	eng := sim.NewEngine()
	app := NewLApp("mc", Memcached(), 1_000_000) // 1 Mops
	var count int
	if err := app.GenerateArrivals(eng, sim.NewRNG(4), sim.Time(100*sim.Millisecond), func(r *Request) {
		count++
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run(sim.Time(100 * sim.Millisecond))
	// Expect ~100k arrivals in 100ms at 1 Mops.
	if count < 95_000 || count > 105_000 {
		t.Fatalf("arrivals = %d, want ~100k", count)
	}
	if app.Offered != uint64(count) {
		t.Fatalf("offered = %d", app.Offered)
	}
}

func TestArrivalsAreApproximatelyPoisson(t *testing.T) {
	// Coefficient of variation of inter-arrival gaps must be ~1.
	eng := sim.NewEngine()
	app := NewLApp("mc", Memcached(), 2_000_000)
	var prev sim.Time
	var gaps []float64
	if err := app.GenerateArrivals(eng, sim.NewRNG(5), sim.Time(50*sim.Millisecond), func(r *Request) {
		gaps = append(gaps, float64(r.Arrive-prev))
		prev = r.Arrive
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run(sim.Time(50 * sim.Millisecond))
	var mean, m2 float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		m2 += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(m2/float64(len(gaps))) / mean
	if cv < 0.9 || cv > 1.1 {
		t.Fatalf("inter-arrival CV = %.3f, want ~1", cv)
	}
}

func TestBurstModulation(t *testing.T) {
	// With bursts the arrival process must show higher variance than
	// Poisson over window counts.
	countWindows := func(burst *Burst, seed uint64) []int {
		eng := sim.NewEngine()
		app := NewLApp("mc", Memcached(), 1_000_000)
		app.Burst = burst
		win := int64(1 * sim.Millisecond)
		counts := make([]int, 100)
		if err := app.GenerateArrivals(eng, sim.NewRNG(seed), sim.Time(100*sim.Millisecond), func(r *Request) {
			idx := int64(r.Arrive) / win
			if idx < 100 {
				counts[idx]++
			}
		}); err != nil {
			t.Fatal(err)
		}
		eng.Run(sim.Time(100 * sim.Millisecond))
		return counts
	}
	varOf := func(counts []int) float64 {
		var mean, m2 float64
		for _, c := range counts {
			mean += float64(c)
		}
		mean /= float64(len(counts))
		for _, c := range counts {
			m2 += (float64(c) - mean) * (float64(c) - mean)
		}
		return m2 / float64(len(counts))
	}
	plain := varOf(countWindows(nil, 7))
	bursty := varOf(countWindows(&Burst{OnMean: 2 * sim.Millisecond, OffMean: 2 * sim.Millisecond, Factor: 4}, 7))
	if bursty < 3*plain {
		t.Fatalf("burst variance %.0f not clearly above plain %.0f", bursty, plain)
	}
}

func TestQueueOperations(t *testing.T) {
	app := NewLApp("mc", Memcached(), 1)
	if app.Dequeue() != nil {
		t.Fatal("dequeue of empty queue")
	}
	if app.QueueDelay(100) != 0 {
		t.Fatal("empty queue delay")
	}
	r1 := &Request{App: app, Arrive: 10, Service: 100}
	r2 := &Request{App: app, Arrive: 20, Service: 100}
	app.Enqueue(r1)
	app.Enqueue(r2)
	if app.QueueDelay(110) != 100 {
		t.Fatalf("queue delay = %v", app.QueueDelay(110))
	}
	if app.Dequeue() != r1 || app.Dequeue() != r2 {
		t.Fatal("FIFO order broken")
	}
	r1.Start = 50
	r1.Done = 150
	app.Complete(r1, 0)
	if app.Completed != 1 || app.Lat.Count() != 1 {
		t.Fatal("completion accounting")
	}
	// Requests arriving before the measurement start don't count toward
	// latency stats.
	r2.Done = 220
	app.Complete(r2, 100)
	if app.Lat.Count() != 1 {
		t.Fatal("warmup request counted")
	}
	if r1.Sojourn() != 140 {
		t.Fatalf("sojourn = %v", r1.Sojourn())
	}
}

func TestBAppHelpers(t *testing.T) {
	lp := Linpack()
	mb := Membench()
	if lp.Kind != BestEffort || mb.Kind != BestEffort {
		t.Fatal("kinds")
	}
	if mb.AvgBW() <= lp.AvgBW() {
		t.Fatal("membench must demand more bandwidth than linpack")
	}
	if lp.Kind.String() != "B-app" || LatencyCritical.String() != "L-app" {
		t.Fatal("kind strings")
	}
}

func TestGenerateArrivalsValidation(t *testing.T) {
	eng := sim.NewEngine()
	b := Linpack()
	if err := b.GenerateArrivals(eng, sim.NewRNG(1), 1000, nil); err == nil {
		t.Fatal("B-app arrivals must error")
	}
	l := NewLApp("x", nil, 100)
	if err := l.GenerateArrivals(eng, sim.NewRNG(1), 1000, nil); err == nil {
		t.Fatal("missing dist must error")
	}
	z := NewLApp("z", Memcached(), 0)
	if err := z.GenerateArrivals(eng, sim.NewRNG(1), 1000, nil); err != nil {
		t.Fatal("zero rate should be a no-op, not an error")
	}
}

func TestReplayArrivals(t *testing.T) {
	eng := sim.NewEngine()
	app := NewLApp("mc", Memcached(), 0)
	pts := []TracePoint{
		{At: 100, Service: 1000},
		{At: 250, Service: 2000},
		{At: 250, Service: 500},
	}
	var got []sim.Time
	if err := app.ReplayArrivals(eng, pts, func(r *Request) {
		got = append(got, r.Arrive)
	}); err != nil {
		t.Fatal(err)
	}
	eng.RunAll(100)
	if len(got) != 3 || got[0] != 100 || got[2] != 250 {
		t.Fatalf("replayed arrivals: %v", got)
	}
	if app.Offered != 3 {
		t.Fatalf("offered = %d", app.Offered)
	}
	if app.Queue[0].Remaining != 1000 {
		t.Fatal("remaining not initialized")
	}
	// Unordered traces are rejected.
	if err := app.ReplayArrivals(eng, []TracePoint{{At: 50}, {At: 20}}, nil); err == nil {
		t.Fatal("unordered trace accepted")
	}
	// B-apps cannot replay.
	if err := Linpack().ReplayArrivals(eng, pts, nil); err == nil {
		t.Fatal("B-app replay accepted")
	}
}

func TestArrivalDeterminism(t *testing.T) {
	run := func() []sim.Time {
		eng := sim.NewEngine()
		app := NewLApp("mc", Memcached(), 500_000)
		var times []sim.Time
		app.GenerateArrivals(eng, sim.NewRNG(99), sim.Time(10*sim.Millisecond), func(r *Request) {
			times = append(times, r.Arrive)
		})
		eng.Run(sim.Time(10 * sim.Millisecond))
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
}
