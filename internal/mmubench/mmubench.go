// Package mmubench holds the simulated-MMU fast-path benchmark bodies.
//
// Each body takes a *testing.B so the same code serves two masters: the
// ordinary `go test -bench` wrappers in the repository root, and
// cmd/mmubench, which runs them through testing.Benchmark to produce the
// BENCH_mmu.json artifact CI archives. The Slow variants measure the same
// operation with the fast path off (per-byte walks, direct page-table
// Check), so a single process yields a machine-independent speedup ratio.
package mmubench

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/mpk"
)

const (
	textBase  = mem.Addr(0x1000)
	dataBase  = mem.Addr(0x10000)
	stackBase = mem.Addr(0x20000)
)

// env builds the standard one-core machine: an exec-only text page, four
// RW data pages, and a stack page.
func env(b *testing.B) (*cpu.Machine, *cpu.Core, *mem.AddressSpace) {
	b.Helper()
	m := cpu.NewMachine(1, cpu.Default())
	as := mem.NewAddressSpace(m.Phys)
	if err := as.MapRange(textBase, mem.PageSize, mem.PermXOnly, 0); err != nil {
		b.Fatal(err)
	}
	if err := as.MapRange(dataBase, 4*mem.PageSize, mem.PermRW, 0); err != nil {
		b.Fatal(err)
	}
	if err := as.MapRange(stackBase, mem.PageSize, mem.PermRW, 0); err != nil {
		b.Fatal(err)
	}
	c := m.Core(0)
	c.AS = as
	c.PKRU = mpk.AllowAllValue
	c.PC = textBase
	c.Regs[cpu.RSP] = cpu.Word(stackBase) + cpu.Word(mem.PageSize)
	return m, c, as
}

// stepProgram is the Step workload: an endless loop mixing ALU ops, loads,
// stores, and stack traffic — the instruction mix of a busy uProcess inner
// loop, with no faults and no halts.
func stepProgram(b *testing.B, m *cpu.Machine, as *mem.AddressSpace) {
	b.Helper()
	a := cpu.NewAssembler()
	a.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: cpu.Word(dataBase)})
	a.Emit(cpu.MovImm{Dst: cpu.RBX, Imm: 27})
	a.Label("loop")
	a.Emit(cpu.Store{Src: cpu.RBX, Base: cpu.RCX, Off: 0})
	a.Emit(cpu.Load{Dst: cpu.RDX, Base: cpu.RCX, Off: 0})
	a.Emit(cpu.AddImm{Dst: cpu.RBX, Imm: 3})
	a.Emit(cpu.Push{Src: cpu.RBX})
	a.Emit(cpu.Pop{Dst: cpu.RDX})
	a.JmpTo("loop")
	prog, err := a.Assemble(textBase)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.InstallCode(as, textBase, prog); err != nil {
		b.Fatal(err)
	}
}

// BenchCoreStep measures ns per simulated instruction on the default
// path: superblock fusion over the software TLB + decoded-fetch cache.
// The non-faulting run must not allocate: CI fails if allocs/op is
// nonzero.
func BenchCoreStep(b *testing.B) {
	m, c, as := env(b)
	stepProgram(b, m, as)
	c.Run(64) // warm the superblock store, icache, and TLB
	b.ReportAllocs()
	b.ResetTimer()
	c.Run(b.N)
	if c.Fault != nil {
		b.Fatal(c.Fault)
	}
}

// BenchCoreStepNoSB is the same workload with superblock fusion disabled
// but the TLB/icache fast path on — the per-instruction Step loop the
// superblock gate is measured against (PR 5's 16 ns/instr baseline).
func BenchCoreStepNoSB(b *testing.B) {
	cpu.DisableSuperblocks = true
	defer func() { cpu.DisableSuperblocks = false }()
	BenchCoreStep(b)
}

// BenchCoreStepSlow is the same workload with the fast path disabled — the
// pre-optimization per-access page-table walk (which also forgoes fusion).
func BenchCoreStepSlow(b *testing.B) {
	cpu.DisableFastPath = true
	defer func() { cpu.DisableFastPath = false }()
	BenchCoreStep(b)
}

// BenchASCheckHit measures a warm-TLB translation: the per-access cost every
// load, store, and fetch pays on the fast path.
func BenchASCheckHit(b *testing.B) {
	_, _, as := env(b)
	var tlb mem.TLB
	var f mem.Fault
	if as.CheckVia(&tlb, dataBase+8, mpk.AccessRead, mpk.AllowAllValue, &f) == nil {
		b.Fatal(&f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if as.CheckVia(&tlb, dataBase+8, mpk.AccessRead, mpk.AllowAllValue, &f) == nil {
			b.Fatal(&f)
		}
	}
}

// BenchASCheckHitSlow measures the full page-table Check the TLB short-cuts.
func BenchASCheckHitSlow(b *testing.B) {
	_, _, as := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, fault := as.Check(dataBase+8, mpk.AccessRead, mpk.AllowAllValue); fault != nil {
			b.Fatal(fault)
		}
	}
}

// BenchReadBytes4K measures a page-sized bulk copy out of uProcess memory
// (the syscall-layer buffer path): one permission check per page touched,
// into a reused buffer — the non-faulting path must not allocate, and CI
// gates allocs/op at zero.
func BenchReadBytes4K(b *testing.B) {
	_, _, as := env(b)
	buf := make([]byte, mem.PageSize)
	b.SetBytes(mem.PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fault := as.ReadBytesInto(dataBase, buf, mpk.AllowAllValue); fault != nil {
			b.Fatal(fault)
		}
	}
}

// BenchReadBytes4KSlow is the pre-optimization reference: one full Check per
// byte, exactly what ReadBytes did before page-run batching.
func BenchReadBytes4KSlow(b *testing.B) {
	_, _, as := env(b)
	b.SetBytes(mem.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := make([]byte, mem.PageSize)
		for j := range out {
			v, fault := as.Read(dataBase+mem.Addr(j), 1, mpk.AllowAllValue)
			if fault != nil {
				b.Fatal(fault)
			}
			out[j] = byte(v)
		}
	}
}

// MachineCores sizes the whole-machine IPS benchmark; cmd/mmubench uses
// it to turn ns/op into instructions per wall-second.
const MachineCores = 8

// BenchMachineIPS measures whole-machine simulated instruction
// throughput: MachineCores cores share one text+data address space (each
// with a private stack page) and each steps b.N instructions of the
// standard inner-loop mix, so one op is one instruction on every core.
// Whole-machine IPS is MachineCores × 1e9 / (ns/op) — the figure of
// merit for "how much simulated machine one wall-second buys", tracked
// as a soft regression gate in BENCH_mmu.json.
func BenchMachineIPS(b *testing.B) {
	m := cpu.NewMachine(MachineCores, cpu.Default())
	as := mem.NewAddressSpace(m.Phys)
	if err := as.MapRange(textBase, mem.PageSize, mem.PermXOnly, 0); err != nil {
		b.Fatal(err)
	}
	if err := as.MapRange(dataBase, 4*mem.PageSize, mem.PermRW, 0); err != nil {
		b.Fatal(err)
	}
	if err := as.MapRange(stackBase, MachineCores*mem.PageSize, mem.PermRW, 0); err != nil {
		b.Fatal(err)
	}
	stepProgram(b, m, as)
	for i := 0; i < MachineCores; i++ {
		c := m.Core(i)
		c.AS = as
		c.PKRU = mpk.AllowAllValue
		c.PC = textBase
		c.Regs[cpu.RSP] = cpu.Word(stackBase) + cpu.Word((i+1)*mem.PageSize)
		c.Run(64) // warm each core's superblock store, icache, and TLB
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < MachineCores; i++ {
		m.Core(i).Run(b.N)
	}
	b.StopTimer()
	for i := 0; i < MachineCores; i++ {
		if f := m.Core(i).Fault; f != nil {
			b.Fatalf("core %d: %v", i, f)
		}
	}
}
