package cache

import (
	"testing"

	"vessel/internal/mem"
	"vessel/internal/sim"
)

func BenchmarkCacheAccessHit(b *testing.B) {
	c, err := New(1<<20, 16, 64)
	if err != nil {
		b.Fatal(err)
	}
	c.Access(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000)
	}
}

func BenchmarkCacheAccessStream(b *testing.B) {
	c, err := New(1<<20, 16, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(mem.Addr(i*64) % (4 << 20))
	}
}

func BenchmarkObjectCopyWorkload(b *testing.B) {
	w := DefaultWorkload()
	w.Quanta = 200
	for i := 0; i < b.N; i++ {
		c, err := DefaultCache()
		if err != nil {
			b.Fatal(err)
		}
		_ = Run(c, w, LayoutColored, 90, 4, 161, sim.NewRNG(1))
	}
}
