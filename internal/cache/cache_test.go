package cache

import (
	"testing"
	"testing/quick"

	"vessel/internal/mem"
	"vessel/internal/sim"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 16, 64); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := New(1<<20, 0, 64); err == nil {
		t.Fatal("zero ways accepted")
	}
	if _, err := New(1000, 16, 64); err == nil {
		t.Fatal("indivisible size accepted")
	}
	c, err := New(1<<20, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sets != 1024 {
		t.Fatalf("sets = %d", c.Sets)
	}
	if c.NumColors() != 16 {
		t.Fatalf("colors = %d", c.NumColors())
	}
}

func TestHitMissBasics(t *testing.T) {
	c, _ := New(1<<10, 2, 64) // 8 sets, 2-way
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("warm access missed")
	}
	if !c.Access(32) {
		t.Fatal("same line, different offset missed")
	}
	if c.Access(64) {
		t.Fatal("different line hit")
	}
	if c.MissRate() <= 0 || c.MissRate() >= 1 {
		t.Fatalf("miss rate = %v", c.MissRate())
	}
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatal("reset")
	}
	empty, _ := New(1<<10, 2, 64)
	if empty.MissRate() != 0 {
		t.Fatal("empty miss rate")
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := New(2*64*2, 2, 64) // 2 sets, 2-way
	// Three lines mapping to set 0: 0, 128, 256 (line numbers 0,2,4).
	c.Access(0)
	c.Access(128)
	c.Access(0)   // 0 is now MRU
	c.Access(256) // evicts 128 (LRU)
	if !c.Access(0) {
		t.Fatal("MRU line evicted")
	}
	if c.Access(128) {
		t.Fatal("LRU line should have been evicted")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c, _ := New(1<<20, 16, 64)
	// Touch half the cache twice: second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			c.Reset()
		}
		for a := 0; a < 512<<10; a += 64 {
			c.Access(mem.Addr(a))
		}
	}
	if c.Misses != 0 {
		t.Fatalf("capacity misses for a fitting working set: %d", c.Misses)
	}
}

func TestColoredLayoutDisjoint(t *testing.T) {
	c, _ := DefaultCache()
	colors := c.NumColors()
	pa := pagesFor(0, 512<<10, LayoutColored, colors, sim.NewRNG(1))
	pb := pagesFor(1, 512<<10, LayoutColored, colors, sim.NewRNG(2))
	colorOf := func(a mem.Addr) int { return int(a.PageOf()) % colors }
	seenA := map[int]bool{}
	for _, p := range pa {
		seenA[colorOf(p)] = true
	}
	for _, p := range pb {
		if seenA[colorOf(p)] {
			t.Fatalf("colour overlap at %#x", uint64(p))
		}
	}
}

func TestFigure11Shape(t *testing.T) {
	// The headline: colored layout slashes the miss rate by orders of
	// magnitude and completes measurably faster.
	w := DefaultWorkload()
	ci, _ := DefaultCache()
	inter := Run(ci, w, LayoutInterleaved, 90, 4, 161, sim.NewRNG(1))
	cc, _ := DefaultCache()
	colored := Run(cc, w, LayoutColored, 90, 4, 161, sim.NewRNG(1))

	if inter.MissRate < 0.01 {
		t.Fatalf("interleaved miss rate %.4f too low to be interesting", inter.MissRate)
	}
	if colored.MissRate > inter.MissRate/20 {
		t.Fatalf("colored miss rate %.5f not ≪ interleaved %.4f", colored.MissRate, inter.MissRate)
	}
	speedup := 1 - float64(colored.CompletionTime)/float64(inter.CompletionTime)
	if speedup < 0.04 || speedup > 0.40 {
		t.Fatalf("completion-time reduction %.1f%%, paper band is 6–24%%", speedup*100)
	}
	if inter.Accesses != colored.Accesses {
		t.Fatal("both layouts must do identical work")
	}
	if inter.Layout.String() == colored.Layout.String() {
		t.Fatal("layout names")
	}
}

func TestAccessAlwaysCachesProperty(t *testing.T) {
	// Property: immediately re-accessing any address hits.
	c, _ := New(1<<16, 4, 64)
	f := func(raw uint32) bool {
		a := mem.Addr(raw)
		c.Access(a)
		return c.Access(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
