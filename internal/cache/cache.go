// Package cache implements the set-associative cache simulator behind the
// Figure 11 cache-friendliness experiment (§6.3.2): two single-threaded
// L-apps time-share one core, each repeatedly copying objects from a
// uniformly random working set.
//
// Under separate address spaces (the Caladan configuration) the kernel
// backs each app's pages with arbitrary frames, so both working sets
// spread over every cache set and evict each other across context
// switches. Under VESSEL's shared address space, the SMAS allocator
// applies page colouring (alloc.AllocPagesColored) to place the two
// uProcesses in disjoint cache partitions, so each app's working set
// survives the other's runs.
package cache

import (
	"fmt"

	"vessel/internal/mem"
	"vessel/internal/sim"
)

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	Sets     int
	Ways     int
	LineSize int

	// lines[set][way] holds the cached line tag (addr / LineSize);
	// lru[set][way] the recency stamp.
	lines [][]uint64
	valid [][]bool
	lru   [][]uint64
	tick  uint64

	Hits   uint64
	Misses uint64
}

// New builds a cache. sizeBytes must be sets×ways×lineSize.
func New(sizeBytes, ways, lineSize int) (*Cache, error) {
	if ways <= 0 || lineSize <= 0 || sizeBytes <= 0 {
		return nil, fmt.Errorf("cache: invalid geometry")
	}
	sets := sizeBytes / (ways * lineSize)
	if sets == 0 || sets*ways*lineSize != sizeBytes {
		return nil, fmt.Errorf("cache: %d bytes not divisible into %d-way sets of %d-byte lines",
			sizeBytes, ways, lineSize)
	}
	c := &Cache{Sets: sets, Ways: ways, LineSize: lineSize}
	c.lines = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for i := range c.lines {
		c.lines[i] = make([]uint64, ways)
		c.valid[i] = make([]bool, ways)
		c.lru[i] = make([]uint64, ways)
	}
	return c, nil
}

// NumColors returns the number of page colours this cache geometry has:
// how many distinct pages map to disjoint set ranges.
func (c *Cache) NumColors() int {
	setsPerPage := mem.PageSize / c.LineSize
	colors := c.Sets / setsPerPage
	if colors < 1 {
		colors = 1
	}
	return colors
}

// Access touches addr, returning true on a hit.
func (c *Cache) Access(addr mem.Addr) bool {
	c.tick++
	line := uint64(addr) / uint64(c.LineSize)
	set := int(line % uint64(c.Sets))
	for w := 0; w < c.Ways; w++ {
		if c.valid[set][w] && c.lines[set][w] == line {
			c.lru[set][w] = c.tick
			c.Hits++
			return true
		}
	}
	c.Misses++
	// LRU victim.
	victim := 0
	for w := 1; w < c.Ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	c.lines[set][victim] = line
	c.valid[set][victim] = true
	c.lru[set][victim] = c.tick
	return false
}

// MissRate returns misses / accesses.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// Reset clears statistics (contents stay, as after a warmup phase).
func (c *Cache) Reset() {
	c.Hits = 0
	c.Misses = 0
}

// Layout describes how an app's working-set pages map to physical frames.
type Layout uint8

// The two layouts Figure 11 compares.
const (
	// LayoutInterleaved: separate address spaces; the kernel hands out
	// frames arbitrarily, so both apps cover every colour.
	LayoutInterleaved Layout = iota
	// LayoutColored: VESSEL's SMAS allocator gives each app a disjoint
	// half of the page colours.
	LayoutColored
)

func (l Layout) String() string {
	if l == LayoutColored {
		return "vessel-colored"
	}
	return "separate-interleaved"
}

// Workload is the object-copy benchmark of §6.3.2.
type Workload struct {
	// WorkingSetBytes per app.
	WorkingSetBytes int
	// ObjectBytes per copy (source read + destination write).
	ObjectBytes int
	// Objects copied per scheduling quantum before the core switches.
	ObjectsPerQuantum int
	// Quanta per app.
	Quanta int
	// ComputePerObject is non-memory work per copied object.
	ComputePerObject sim.Duration
}

// DefaultWorkload returns parameters sized against DefaultCache.
func DefaultWorkload() Workload {
	return Workload{
		WorkingSetBytes:   512 << 10,
		ObjectBytes:       256,
		ObjectsPerQuantum: 64,
		Quanta:            2000,
		ComputePerObject:  400,
	}
}

// DefaultCache returns the modelled shared cache: 1 MiB, 16-way, 64 B
// lines (64 page colours).
func DefaultCache() (*Cache, error) { return New(1<<20, 16, 64) }

// Result is one configuration's outcome.
type Result struct {
	Layout         Layout
	MissRate       float64
	CompletionTime sim.Duration
	Accesses       uint64
}

// pagesFor lays out an app's working-set pages under the given policy.
// appIdx selects the colour partition (colored) or the random frame pool.
func pagesFor(appIdx int, ws int, layout Layout, numColors int, rng *sim.RNG) []mem.Addr {
	npages := (ws + mem.PageSize - 1) / mem.PageSize
	pages := make([]mem.Addr, npages)
	switch layout {
	case LayoutColored:
		// App appIdx gets colours [appIdx*half, (appIdx+1)*half): its
		// pages' set indices never collide with the other app's.
		half := numColors / 2
		for i := range pages {
			color := appIdx*half + i%half
			group := i / half
			pageNo := group*numColors + color
			pages[i] = mem.Addr(pageNo * mem.PageSize)
		}
	default:
		// Separate address spaces: the kernel backs each virtual page
		// with an arbitrary physical frame, so page colours are random.
		// The binomial imbalance across colours oversubscribes some
		// sets beyond the cache's associativity — the source of the
		// steady-state conflict misses Figure 11 measures.
		base := (appIdx + 1) << 30
		for i := range pages {
			frame := rng.IntN(1 << 20)
			pages[i] = mem.Addr(base + frame*mem.PageSize)
		}
	}
	return pages
}

// Run executes the two-app object-copy benchmark on one core under the
// given layout and returns miss rate and completion time.
func Run(c *Cache, w Workload, layout Layout, dramNs, hitNs, switchNs float64, rng *sim.RNG) Result {
	numColors := c.NumColors()
	apps := [2][]mem.Addr{
		pagesFor(0, w.WorkingSetBytes, layout, numColors, rng.Fork(100)),
		pagesFor(1, w.WorkingSetBytes, layout, numColors, rng.Fork(101)),
	}
	var totalNs float64
	var accesses uint64
	linesPerObject := (w.ObjectBytes + c.LineSize - 1) / c.LineSize

	// Warmup: enough quanta that the random object draws cover the whole
	// working set (coupon-collector bound), then reset statistics so
	// cold misses don't drown the steady state.
	warmup := w.Quanta / 10
	if warmup < 250 {
		warmup = 250
	}
	for q := 0; q < warmup+w.Quanta; q++ {
		if q == warmup {
			c.Reset()
			totalNs = 0
			accesses = 0
		}
		app := q % 2
		pages := apps[app]
		for o := 0; o < w.ObjectsPerQuantum; o++ {
			// Pick a random object: source and destination in the
			// app's working set.
			src := pages[rng.IntN(len(pages))] + mem.Addr(rng.IntN(mem.PageSize/w.ObjectBytes)*w.ObjectBytes)
			dst := pages[rng.IntN(len(pages))] + mem.Addr(rng.IntN(mem.PageSize/w.ObjectBytes)*w.ObjectBytes)
			for l := 0; l < linesPerObject; l++ {
				for _, a := range [2]mem.Addr{src, dst} {
					addr := a + mem.Addr(l*c.LineSize)
					accesses++
					if c.Access(addr) {
						totalNs += hitNs
					} else {
						totalNs += dramNs
					}
				}
			}
			totalNs += float64(w.ComputePerObject)
		}
		totalNs += switchNs
	}
	return Result{
		Layout:         layout,
		MissRate:       c.MissRate(),
		CompletionTime: sim.Duration(totalNs),
		Accesses:       accesses,
	}
}
