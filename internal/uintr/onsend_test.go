package uintr

import (
	"fmt"
	"reflect"
	"testing"

	"vessel/internal/cpu"
)

// TestOnSendDispositionGolden drives one sender through all four SENDUIPI
// dispositions — delivered, deferred, suppressed, dropped — and checks the
// OnSend observations against a golden event list. The deferred-delivery
// window closes on reattach, so the receiver's OnFlush must appear after
// every deferred OnSend that fed the PIR and before any later sends: the
// ordering journey tracing relies on to close SegUintr windows correctly.
func TestOnSendDispositionGolden(t *testing.T) {
	e := newEnv(t)
	r := NewReceiver(1, e.handlerAddr())
	r.Attach(e.core)
	s := NewSender(4, cpu.Default(), nil)
	if err := s.Register(0, r, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(1, r, 9); err != nil {
		t.Fatal(err)
	}

	var events []string
	s.OnSend = func(idx int, vector uint8, o Outcome) {
		events = append(events, fmt.Sprintf("send idx=%d vec=%d %s", idx, vector, o))
	}
	r.OnFlush = func(flushed uint64) {
		events = append(events, fmt.Sprintf("flush pir=%#x", flushed))
	}
	send := func(idx int) {
		t.Helper()
		if _, err := s.SendUIPI(idx); err != nil {
			t.Fatal(err)
		}
	}

	send(0) // attached: delivered
	r.Detach()
	send(0) // descheduled: deferred into the PIR
	send(1) // second vector joins the same deferred window
	r.Attach(e.core) // window closes: OnFlush fires with both vectors
	r.Suppress(true)
	send(0) // SN set: suppressed
	r.Suppress(false)
	s.Interpose = func(idx int, vector uint8) Tamper { return Tamper{Drop: true} }
	send(0) // interposer swallows it: dropped

	golden := []string{
		"send idx=0 vec=7 delivered",
		"send idx=0 vec=7 deferred",
		"send idx=1 vec=9 deferred",
		"flush pir=0x280", // bits 7 and 9, flushed together
		"send idx=0 vec=7 suppressed",
		"send idx=0 vec=7 dropped",
	}
	if !reflect.DeepEqual(events, golden) {
		t.Fatalf("disposition events:\n got  %q\n want %q", events, golden)
	}
	if s.Sent != 5 || s.Dropped != 1 {
		t.Fatalf("Sent=%d Dropped=%d, want 5 and 1", s.Sent, s.Dropped)
	}
}

// TestOnSendNilObserverUnchanged pins that installing no OnSend hook leaves
// every disposition path silent and functional — the observer is optional.
func TestOnSendNilObserverUnchanged(t *testing.T) {
	e := newEnv(t)
	r := NewReceiver(1, e.handlerAddr())
	s := NewSender(2, cpu.Default(), nil)
	if err := s.Register(0, r, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SendUIPI(0); err != nil { // deferred, no hook
		t.Fatal(err)
	}
	if r.Pending() != 1<<3 {
		t.Fatalf("pending = %#x, want bit 3", r.Pending())
	}
	r.Attach(e.core) // flush, no hook
	if r.Pending() != 0 {
		t.Fatal("flush did not drain the PIR")
	}
}
