package uintr

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/mpk"
	"vessel/internal/sim"
)

// env builds a machine whose core 0 spins in a loop and has a registered
// handler that records the vector and returns.
type env struct {
	m    *cpu.Machine
	core *cpu.Core
	asm  *cpu.Assembler
}

func newEnv(t *testing.T) *env {
	t.Helper()
	m := cpu.NewMachine(2, cpu.Default())
	as := mem.NewAddressSpace(m.Phys)
	for _, r := range []struct {
		base mem.Addr
		perm mem.Perm
	}{{0x1000, mem.PermXOnly}, {0x20000, mem.PermRW}} {
		if err := as.MapRange(r.base, mem.PageSize, r.perm, 0); err != nil {
			t.Fatal(err)
		}
	}
	a := cpu.NewAssembler()
	a.Label("main")
	a.Emit(cpu.AddImm{Dst: cpu.RBX, Imm: 1})
	a.JmpTo("main")
	a.Label("handler")
	a.Emit(cpu.Pop{Dst: cpu.R9}) // vector
	a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	a.Emit(cpu.UiRet{})
	prog, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InstallCode(as, 0x1000, prog); err != nil {
		t.Fatal(err)
	}
	c := m.Core(0)
	c.AS = as
	c.PKRU = mpk.AllowAllValue
	c.PC = 0x1000
	c.Regs[cpu.RSP] = 0x21000
	return &env{m: m, core: c, asm: a}
}

func (e *env) handlerAddr() mem.Addr { return e.asm.AddrOf("handler", 0x1000) }

func TestSendDeliversToRunningReceiver(t *testing.T) {
	e := newEnv(t)
	r := NewReceiver(1, e.handlerAddr())
	r.Attach(e.core)
	s := NewSender(4, cpu.Default(), nil)
	if err := s.Register(0, r, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SendUIPI(0); err != nil {
		t.Fatal(err)
	}
	e.core.Run(5)
	if e.core.Regs[cpu.R9] != 5 {
		t.Fatalf("vector = %d, want 5", e.core.Regs[cpu.R9])
	}
	if e.core.Regs[cpu.RDX] != 1 {
		t.Fatal("handler did not run once")
	}
	if r.Delivered != 1 || r.Deferred != 0 {
		t.Fatalf("delivered=%d deferred=%d", r.Delivered, r.Deferred)
	}
}

func TestDeferredDeliveryWhenDescheduled(t *testing.T) {
	e := newEnv(t)
	r := NewReceiver(1, e.handlerAddr())
	s := NewSender(4, cpu.Default(), nil)
	if err := s.Register(0, r, 7); err != nil {
		t.Fatal(err)
	}
	// Receiver not attached: the post must be deferred, not lost.
	if _, err := s.SendUIPI(0); err != nil {
		t.Fatal(err)
	}
	if r.Pending() == 0 || r.Deferred != 1 {
		t.Fatal("post not deferred")
	}
	e.core.Run(3)
	if e.core.Regs[cpu.RDX] != 0 {
		t.Fatal("handler ran without attachment")
	}
	// Attaching (receiver scheduled back in) flushes the pending vector.
	r.Attach(e.core)
	e.core.Run(5)
	if e.core.Regs[cpu.RDX] != 1 || e.core.Regs[cpu.R9] != 7 {
		t.Fatalf("deferred vector not delivered: rdx=%d r9=%d",
			e.core.Regs[cpu.RDX], e.core.Regs[cpu.R9])
	}
}

func TestDetachPreservesPending(t *testing.T) {
	e := newEnv(t)
	r := NewReceiver(1, e.handlerAddr())
	r.Attach(e.core)
	s := NewSender(4, cpu.Default(), nil)
	if err := s.Register(0, r, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SendUIPI(0); err != nil {
		t.Fatal(err)
	}
	// Context switch out before the core recognised the interrupt.
	r.Detach()
	if e.core.HandlerAddr != 0 || e.core.PendingVectors != 0 {
		t.Fatal("detach did not scrub core state")
	}
	if r.Pending() == 0 {
		t.Fatal("pending vector lost across detach")
	}
	r.Attach(e.core)
	e.core.Run(5)
	if e.core.Regs[cpu.RDX] != 1 {
		t.Fatal("vector not delivered after re-attach")
	}
}

func TestSuppressedNotification(t *testing.T) {
	e := newEnv(t)
	r := NewReceiver(1, e.handlerAddr())
	r.Attach(e.core)
	r.Suppress(true)
	s := NewSender(4, cpu.Default(), nil)
	if err := s.Register(0, r, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SendUIPI(0); err != nil {
		t.Fatal(err)
	}
	e.core.Run(5)
	if e.core.Regs[cpu.RDX] != 0 {
		t.Fatal("suppressed interrupt was delivered")
	}
	if r.Pending() == 0 {
		t.Fatal("suppressed interrupt not posted to PIR")
	}
}

func TestInvalidUITTIndex(t *testing.T) {
	s := NewSender(2, nil, nil)
	if _, err := s.SendUIPI(0); err == nil {
		t.Fatal("unregistered entry must #GP")
	}
	if _, err := s.SendUIPI(-1); err == nil {
		t.Fatal("negative index must #GP")
	}
	if _, err := s.SendUIPI(5); err == nil {
		t.Fatal("out-of-range index must #GP")
	}
	if err := s.Register(5, NewReceiver(0, 0x1000), 1); err == nil {
		t.Fatal("register out of range must fail")
	}
	if err := s.Register(0, nil, 1); err == nil {
		t.Fatal("nil receiver must fail")
	}
}

func TestUnregister(t *testing.T) {
	r := NewReceiver(1, 0x1000)
	s := NewSender(2, nil, nil)
	if err := s.Register(1, r, 3); err != nil {
		t.Fatal(err)
	}
	s.Unregister(1)
	if _, err := s.SendUIPI(1); err == nil {
		t.Fatal("send after unregister must fail")
	}
}

func TestEngineDelayedDelivery(t *testing.T) {
	e := newEnv(t)
	eng := sim.NewEngine()
	cm := cpu.Default()
	r := NewReceiver(1, e.handlerAddr())
	r.Attach(e.core)
	s := NewSender(4, cm, eng)
	if err := s.Register(0, r, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SendUIPI(0); err != nil {
		t.Fatal(err)
	}
	// Nothing delivered until the engine advances past the latency.
	if e.core.PendingVectors != 0 {
		t.Fatal("delivery should be deferred to the engine")
	}
	eng.Run(eng.Now().Add(cm.UintrDeliver))
	if e.core.PendingVectors == 0 {
		t.Fatal("engine did not deliver")
	}
	e.core.Run(5)
	if e.core.Regs[cpu.R9] != 9 {
		t.Fatal("wrong vector via engine path")
	}
}

func TestEngineDeliveryRaceWithDetach(t *testing.T) {
	// Receiver descheduled between post and notification: the vector must
	// fall back to the UPID, not disappear.
	e := newEnv(t)
	eng := sim.NewEngine()
	r := NewReceiver(1, e.handlerAddr())
	r.Attach(e.core)
	s := NewSender(4, cpu.Default(), eng)
	if err := s.Register(0, r, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SendUIPI(0); err != nil {
		t.Fatal(err)
	}
	r.Detach()
	eng.RunAll(100)
	if r.Pending() == 0 {
		t.Fatal("vector lost in detach race")
	}
	if r.Deferred != 1 {
		t.Fatalf("deferred = %d", r.Deferred)
	}
}

func TestSendUIPIInstructionHook(t *testing.T) {
	// A layer-1 program issuing senduipi reaches the sender's routing.
	e := newEnv(t)
	m2 := cpu.NewMachine(1, cpu.Default())
	as := mem.NewAddressSpace(m2.Phys)
	if err := as.MapRange(0x1000, mem.PageSize, mem.PermXOnly, 0); err != nil {
		t.Fatal(err)
	}
	if err := as.MapRange(0x20000, mem.PageSize, mem.PermRW, 0); err != nil {
		t.Fatal(err)
	}
	if err := m2.InstallCode(as, 0x1000, []cpu.Instr{
		cpu.MovImm{Dst: cpu.RDI, Imm: 0},
		cpu.SendUIPI{IdxReg: cpu.RDI},
		cpu.Halt{},
	}); err != nil {
		t.Fatal(err)
	}
	sender := m2.Core(0)
	sender.AS = as
	sender.PKRU = mpk.AllowAllValue
	sender.PC = 0x1000
	sender.Regs[cpu.RSP] = 0x21000

	r := NewReceiver(1, e.handlerAddr())
	r.Attach(e.core)
	s := NewSender(4, cpu.Default(), nil)
	if err := s.Register(0, r, 6); err != nil {
		t.Fatal(err)
	}
	s.Connect(sender)
	sender.Run(10)
	if s.Sent != 1 {
		t.Fatalf("sent = %d", s.Sent)
	}
	e.core.Run(5)
	if e.core.Regs[cpu.R9] != 6 {
		t.Fatal("instruction-issued interrupt not delivered")
	}
}

// TestCancelInflightDropsScheduledDelivery is the stale-event regression for
// domain teardown: an engine-scheduled notification must be cancellable so
// it cannot land in a receiver owned by a later incarnation of the domain.
func TestCancelInflightDropsScheduledDelivery(t *testing.T) {
	e := newEnv(t)
	eng := sim.NewEngine()
	cm := cpu.Default()
	r := NewReceiver(1, e.handlerAddr())
	r.Attach(e.core)
	s := NewSender(4, cm, eng)
	if err := s.Register(0, r, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SendUIPI(0); err != nil {
		t.Fatal(err)
	}
	if s.Inflight() != 1 {
		t.Fatalf("inflight = %d", s.Inflight())
	}
	if n := s.CancelInflight(); n != 1 {
		t.Fatalf("cancelled %d, want 1", n)
	}
	if s.Inflight() != 0 {
		t.Fatalf("inflight after cancel = %d", s.Inflight())
	}
	// Drain the engine: the cancelled delivery must never land.
	eng.RunAll(100)
	if e.core.PendingVectors != 0 {
		t.Fatal("cancelled delivery still posted a vector")
	}
	if r.Delivered != 0 {
		t.Fatalf("delivered = %d", r.Delivered)
	}
	// The sender is still usable after a teardown-style cancel.
	if _, err := s.SendUIPI(0); err != nil {
		t.Fatal(err)
	}
	eng.Run(eng.Now().Add(cm.UintrDeliver))
	if e.core.PendingVectors == 0 {
		t.Fatal("post-cancel send not delivered")
	}
}

// TestCancelInflightLayer1NilSafe: a layer-1 sender (no engine) delivers
// synchronously — nothing is ever in flight and cancel is a no-op.
func TestCancelInflightLayer1NilSafe(t *testing.T) {
	s := NewSender(1, cpu.Default(), nil)
	if s.Inflight() != 0 {
		t.Fatalf("inflight = %d", s.Inflight())
	}
	if n := s.CancelInflight(); n != 0 {
		t.Fatalf("cancelled %d on nil-engine sender", n)
	}
}
