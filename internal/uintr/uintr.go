// Package uintr models Intel's user interrupts (UINTR, §2.2): a receiver
// holds a User Posted Interrupt Descriptor (UPID); each sender holds a User
// Interrupt Target Table (UITT) whose entries point at UPIDs. SENDUIPI posts
// the vector into the UPID and — when the receiver is running with user
// interrupts enabled — triggers delivery straight into the receiver's
// registered user handler, with no kernel involvement. If the receiver has
// been context-switched out, delivery is deferred until it runs again.
package uintr

import (
	"fmt"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/sim"
)

// UPID is the User Posted Interrupt Descriptor. Hardware state is reduced
// to what the semantics need: the posted-interrupt requests bitmap (PIR),
// the outstanding-notification flag (ON), and suppression (SN).
type UPID struct {
	PIR uint64 // posted vectors awaiting delivery
	ON  bool   // a notification is outstanding
	SN  bool   // suppress notifications (receiver opted out temporarily)
}

// Outcome classifies the disposition of one SENDUIPI, for observers.
type Outcome uint8

const (
	// Delivered: the notification reached (or was scheduled to reach) the
	// receiver's handler directly.
	Delivered Outcome = iota
	// Deferred: the receiver was descheduled; the vector parked in the PIR.
	Deferred
	// Suppressed: the UPID's SN bit swallowed the notification.
	Suppressed
	// Dropped: the fault-injection interposer discarded the post.
	Dropped
)

func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Deferred:
		return "deferred"
	case Suppressed:
		return "suppressed"
	case Dropped:
		return "dropped"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Receiver is a thread-side endpoint: a UPID plus the binding to the core
// the receiver thread currently occupies (nil when descheduled).
type Receiver struct {
	ID      int
	upid    UPID
	core    *cpu.Core
	handler mem.Addr
	// Delivered counts vectors that reached the handler; Deferred counts
	// posts that arrived while the receiver was descheduled.
	Delivered uint64
	Deferred  uint64
	// OnFlush, when non-nil, fires in Attach whenever deferred vectors
	// flush from the PIR to the newly attached core — the close of a
	// deferred-delivery window.
	OnFlush func(flushed uint64)
}

// NewReceiver returns a receiver with no core attached. The handler address
// is recorded at registration time, mirroring uintr_register_handler().
func NewReceiver(id int, handler mem.Addr) *Receiver {
	return &Receiver{ID: id, handler: handler}
}

// Attach marks the receiver as running on core and flushes any vectors that
// were posted while it was descheduled (deferred delivery, §2.2).
func (r *Receiver) Attach(core *cpu.Core) {
	r.core = core
	core.HandlerAddr = r.handler
	if r.upid.PIR != 0 {
		flushed := r.upid.PIR
		core.PendingVectors |= r.upid.PIR
		r.upid.PIR = 0
		r.upid.ON = false
		if r.OnFlush != nil {
			r.OnFlush(flushed)
		}
	}
}

// Detach marks the receiver as descheduled. Vectors already forwarded to
// the core but not yet recognised move back into the UPID so they are not
// lost across the context switch.
func (r *Receiver) Detach() {
	if r.core != nil {
		r.upid.PIR |= r.core.PendingVectors
		r.core.PendingVectors = 0
		r.core.HandlerAddr = 0
		r.core = nil
	}
}

// Running reports whether the receiver is attached to a core.
func (r *Receiver) Running() bool { return r.core != nil }

// Suppress sets or clears the UPID suppress-notification bit.
func (r *Receiver) Suppress(on bool) { r.upid.SN = on }

// Pending returns the deferred vector bitmap.
func (r *Receiver) Pending() uint64 { return r.upid.PIR }

// UITTEntry routes a sender's connection index to a receiver UPID with a
// fixed vector, as built by uintr_register_sender().
type UITTEntry struct {
	Receiver *Receiver
	Vector   uint8
	Valid    bool
	// deliver is the notification body, built once at Register time so the
	// SendUIPI hot path hands the engine a prebuilt func instead of
	// allocating a fresh closure per send.
	deliver func()
}

// Tamper is a fault-injection verdict on one SENDUIPI: the interposer can
// drop the post entirely (a lost interrupt). Delayed delivery is built on
// Drop — the injector swallows the post and re-sends it later from its own
// virtual-time queue.
type Tamper struct {
	Drop bool
}

// Sender is a core-side UITT. SendUIPI(idx) consults entry idx.
type Sender struct {
	uitt  []UITTEntry
	eng   *sim.Engine // optional: when set, delivery is charged as an event
	costs *cpu.CostModel
	// inflight tracks engine-scheduled deliveries that have not yet fired,
	// so a domain teardown can cancel them instead of letting stale
	// notifications land in a resurrected receiver.
	inflight *sim.EventGroup
	Sent     uint64
	// Interpose, when non-nil, sees every send before it is posted and may
	// tamper with it — the fault-injection harness models dropped and
	// delayed Uintrs here, between SENDUIPI and the UPID.
	Interpose func(idx int, vector uint8) Tamper
	// Dropped counts sends discarded by the interposer.
	Dropped uint64
	// OnSend, when non-nil, observes every SENDUIPI with its disposition,
	// after the send is resolved but before any delayed delivery fires.
	OnSend func(idx int, vector uint8, o Outcome)
}

// NewSender creates a sender with capacity table entries. eng may be nil for
// immediate (layer-1, instruction-stepped) delivery.
func NewSender(capacity int, costs *cpu.CostModel, eng *sim.Engine) *Sender {
	if costs == nil {
		costs = cpu.Default()
	}
	s := &Sender{uitt: make([]UITTEntry, capacity), costs: costs, eng: eng}
	if eng != nil {
		s.inflight = sim.NewEventGroup(eng)
	}
	return s
}

// CancelInflight cancels every scheduled-but-undelivered notification,
// returning how many were cancelled. A layer-1 sender (nil engine)
// delivers synchronously and has nothing in flight. Call this when the
// receiving domain is torn down, so deferred deliveries cannot fire into
// whatever reuses the engine next.
func (s *Sender) CancelInflight() int { return s.inflight.CancelAll() }

// Inflight returns how many scheduled deliveries have not yet fired.
func (s *Sender) Inflight() int { return s.inflight.Pending() }

// Register installs a route to recv with the given vector at index idx,
// mirroring the kernel's UITT management syscalls.
func (s *Sender) Register(idx int, recv *Receiver, vector uint8) error {
	if idx < 0 || idx >= len(s.uitt) {
		return fmt.Errorf("uintr: UITT index %d out of range", idx)
	}
	if recv == nil {
		return fmt.Errorf("uintr: nil receiver")
	}
	entry := UITTEntry{Receiver: recv, Vector: vector, Valid: true}
	r, vec := recv, vector
	entry.deliver = func() {
		// The receiver may have been descheduled between post and
		// notification; re-check and defer if so.
		if r.core == nil {
			r.upid.PIR |= 1 << (vec & 63)
			r.upid.ON = true
			r.Deferred++
			return
		}
		r.core.PostUserInterrupt(vec)
		r.Delivered++
	}
	s.uitt[idx] = entry
	return nil
}

// Unregister invalidates index idx.
func (s *Sender) Unregister(idx int) {
	if idx >= 0 && idx < len(s.uitt) {
		s.uitt[idx] = UITTEntry{}
	}
}

// SendUIPI posts the interrupt routed by UITT entry idx. An invalid entry
// is a general-protection fault in hardware; we return an error. The
// returned duration is the modeled send cost on the sending core.
func (s *Sender) SendUIPI(idx int) (sim.Duration, error) {
	if idx < 0 || idx >= len(s.uitt) || !s.uitt[idx].Valid {
		return 0, fmt.Errorf("uintr: senduipi with invalid UITT index %d (#GP)", idx)
	}
	e := &s.uitt[idx]
	r := e.Receiver
	s.Sent++
	if s.Interpose != nil {
		if t := s.Interpose(idx, e.Vector); t.Drop {
			s.Dropped++
			if s.OnSend != nil {
				s.OnSend(idx, e.Vector, Dropped)
			}
			return s.costs.UintrSend, nil
		}
	}
	if r.upid.SN {
		// Suppressed: post into PIR only; no notification.
		r.upid.PIR |= 1 << (e.Vector & 63)
		r.Deferred++
		if s.OnSend != nil {
			s.OnSend(idx, e.Vector, Suppressed)
		}
		return s.costs.UintrSend, nil
	}
	if r.core == nil {
		// Receiver descheduled: defer until it is attached again.
		r.upid.PIR |= 1 << (e.Vector & 63)
		r.upid.ON = true
		r.Deferred++
		if s.OnSend != nil {
			s.OnSend(idx, e.Vector, Deferred)
		}
		return s.costs.UintrSend, nil
	}
	if s.OnSend != nil {
		s.OnSend(idx, e.Vector, Delivered)
	}
	if s.eng != nil {
		s.inflight.Add(s.eng.After(s.costs.UintrDeliver, e.deliver))
	} else {
		e.deliver()
	}
	return s.costs.UintrSend, nil
}

// Connect wires a core's SENDUIPI instruction hook to this sender, so
// layer-1 programs can issue senduipi directly.
func (s *Sender) Connect(core *cpu.Core) {
	core.Hooks.OnSendUIPI = func(c *cpu.Core, idx cpu.Word) {
		// Instruction-level sends ignore errors the way hardware
		// raises #GP: an invalid index halts via a fault hook in real
		// use; here we simply drop it (tests cover the error path via
		// the method API).
		_, _ = s.SendUIPI(int(idx))
	}
}
