package trace

import (
	"strings"
	"testing"

	"vessel/internal/sim"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(10)
	r.Add(0, 0, 100, App, "mc")
	r.Add(0, 100, 150, Switch, "")
	r.Add(1, 0, 200, Idle, "")
	r.Add(0, 50, 50, App, "zero") // zero-length ignored
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	segs := r.Segments()
	if segs[0].Duration() != 100 || segs[0].Label != "mc" {
		t.Fatalf("segment 0 = %+v", segs[0])
	}
	totals := r.Totals()
	if totals[App] != 100 || totals[Switch] != 50 || totals[Idle] != 200 {
		t.Fatalf("totals = %v", totals)
	}
	var nilRec *Recorder
	nilRec.Add(0, 0, 10, App, "") // must not panic
	if nilRec.Len() != 0 || nilRec.Segments() != nil {
		t.Fatal("nil recorder accessors")
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Add(0, sim.Time(i*10), sim.Time(i*10+10), App, "")
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d", r.Len())
	}
	if r.Dropped != 6 {
		t.Fatalf("dropped = %d", r.Dropped)
	}
	segs := r.Segments()
	// Oldest retained is segment 6 (starts at 60), in order.
	if segs[0].Start != 60 || segs[3].Start != 90 {
		t.Fatalf("ring order: %+v", segs)
	}
}

func TestTimelineRendering(t *testing.T) {
	r := NewRecorder(0)
	// Core 0: app for the first half, idle second half.
	r.Add(0, 0, 500, App, "mc")
	r.Add(0, 500, 1000, Idle, "")
	line := r.Timeline(0, 0, 1000, 10)
	if line != "#####....." {
		t.Fatalf("timeline = %q", line)
	}
	// Dominance: a bucket that is 70% kernel renders 'K'.
	r2 := NewRecorder(0)
	r2.Add(0, 0, 70, Kernel, "")
	r2.Add(0, 70, 100, App, "")
	if got := r2.Timeline(0, 0, 100, 1); got != "K" {
		t.Fatalf("dominant = %q", got)
	}
	// Degenerate parameters.
	if r.Timeline(0, 0, 1000, 0) != "" || r.Timeline(0, 100, 100, 5) != "" {
		t.Fatal("degenerate timeline not empty")
	}
	// Render includes every core and the legend.
	out := r.Render(2, 0, 1000, 10)
	if !strings.Contains(out, "core  0") || !strings.Contains(out, "core  1") {
		t.Fatalf("render: %s", out)
	}
	if !strings.Contains(out, "#=app") {
		t.Fatal("legend missing")
	}
}

func TestWriteChromeJSON(t *testing.T) {
	r := NewRecorder(0)
	r.Add(0, 0, 500, App, "mc")
	r.Add(0, 500, 600, Switch, "")
	r.Add(1, 0, 600, Idle, "") // idle omitted from the export
	var buf strings.Builder
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"traceEvents"`) {
		t.Fatal("missing traceEvents envelope")
	}
	if !strings.Contains(out, `"mc (app)"`) {
		t.Fatalf("app segment missing: %s", out)
	}
	if strings.Contains(out, `"idle"`) {
		t.Fatal("idle segments must be omitted")
	}
	if !strings.Contains(out, `"dur":0.5`) { // 500ns = 0.5µs
		t.Fatalf("duration units wrong: %s", out)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind")
	}
}

func TestSegmentsClippedToWindow(t *testing.T) {
	r := NewRecorder(0)
	r.Add(0, 0, 1000, App, "")
	// A window inside the segment renders fully occupied.
	if got := r.Timeline(0, 200, 800, 6); got != "######" {
		t.Fatalf("clipped = %q", got)
	}
	// A window past the segment is idle.
	if got := r.Timeline(0, 2000, 3000, 4); got != "...." {
		t.Fatalf("out-of-range = %q", got)
	}
}
