package trace

import (
	"fmt"
	"strings"
	"sync"

	"vessel/internal/sim"
)

// Event is one entry in the containment/chaos event stream: a named thing
// that happened at a point in virtual time (an injection, a contained
// fault, a watchdog kill, a restart, a reclaim). Events are the
// determinism witness of the fault-injection harness — two runs with the
// same seed and plan must produce byte-identical event logs.
type Event struct {
	T      sim.Time
	Name   string
	Detail string
}

func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%d %s", int64(e.T), e.Name)
	}
	return fmt.Sprintf("%d %s %s", int64(e.T), e.Name, e.Detail)
}

// EventLog is a bounded event buffer with two full-log disciplines. The
// default (NewEventLog) is append-only: when full it drops new events
// (keeping the prefix intact, so the determinism fingerprint stays
// comparable) and counts the drops. Ring mode (NewRingEventLog) instead
// overwrites the oldest entry and counts overwrites — constant memory for
// arbitrarily long chaos soaks, at the cost of losing the prefix. The log
// is safe for concurrent use; note that concurrent recording makes the
// *order* of entries depend on goroutine interleaving, so determinism
// fingerprints should only be taken from single-threaded
// (simulation-driven) logs.
type EventLog struct {
	mu      sync.Mutex
	max     int
	ring    bool
	start   int // ring mode: index of the logically first event
	events  []Event
	dropped     uint64
	overwritten uint64
}

// NewEventLog returns a log keeping at most max events, dropping new ones
// once full.
func NewEventLog(max int) *EventLog {
	if max <= 0 {
		max = 1 << 16
	}
	return &EventLog{max: max}
}

// NewRingEventLog returns a log keeping the most recent max events,
// overwriting the oldest once full — the bounded-memory discipline long
// soak runs use.
func NewRingEventLog(max int) *EventLog {
	l := NewEventLog(max)
	l.ring = true
	return l
}

// Record appends one event. A full append-mode log drops it; a full ring
// overwrites its oldest entry.
func (l *EventLog) Record(t sim.Time, name, detail string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.events) >= l.max {
		if !l.ring {
			l.dropped++
			return
		}
		l.events[l.start] = Event{T: t, Name: name, Detail: detail}
		l.start = (l.start + 1) % len(l.events)
		l.overwritten++
		return
	}
	l.events = append(l.events, Event{T: t, Name: name, Detail: detail})
}

// at returns the i-th event in logical (oldest-first) order. Callers hold mu.
func (l *EventLog) at(i int) Event {
	if l.start == 0 {
		return l.events[i]
	}
	return l.events[(l.start+i)%len(l.events)]
}

// Dropped returns how many events were rejected because the log was full.
func (l *EventLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Overwritten returns how many events a ring-mode log displaced.
func (l *EventLog) Overwritten() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.overwritten
}

// Events returns a copy of the recorded events in order.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	for i := range out {
		out[i] = l.at(i)
	}
	return out
}

// Len returns the number of recorded events.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// CountByName returns how many recorded events carry the given name.
func (l *EventLog) CountByName(name string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Name == name {
			n++
		}
	}
	return n
}

// String renders the log one event per line — the canonical fingerprint
// the determinism tests compare across runs.
func (l *EventLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var b strings.Builder
	for i := range l.events {
		b.WriteString(l.at(i).String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Tail returns a copy of the last n events (all of them when n exceeds the
// length, none when n is negative).
func (l *EventLog) Tail(n int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n > len(l.events) {
		n = len(l.events)
	}
	out := make([]Event, n)
	for i := range out {
		out[i] = l.at(len(l.events) - n + i)
	}
	return out
}
