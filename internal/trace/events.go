package trace

import (
	"fmt"
	"strings"
	"sync"

	"vessel/internal/sim"
)

// Event is one entry in the containment/chaos event stream: a named thing
// that happened at a point in virtual time (an injection, a contained
// fault, a watchdog kill, a restart, a reclaim). Events are the
// determinism witness of the fault-injection harness — two runs with the
// same seed and plan must produce byte-identical event logs.
type Event struct {
	T      sim.Time
	Name   string
	Detail string
}

func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%d %s", int64(e.T), e.Name)
	}
	return fmt.Sprintf("%d %s %s", int64(e.T), e.Name, e.Detail)
}

// EventLog is a bounded append-only event buffer. When full it drops new
// events (keeping the prefix intact, so the determinism fingerprint stays
// comparable) and counts the drops. The log is safe for concurrent use;
// note that concurrent recording makes the *order* of entries depend on
// goroutine interleaving, so determinism fingerprints should only be taken
// from single-threaded (simulation-driven) logs.
type EventLog struct {
	mu      sync.Mutex
	max     int
	events  []Event
	dropped uint64
}

// NewEventLog returns a log keeping at most max events.
func NewEventLog(max int) *EventLog {
	if max <= 0 {
		max = 1 << 16
	}
	return &EventLog{max: max}
}

// Record appends one event, unless the log is full.
func (l *EventLog) Record(t sim.Time, name, detail string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.events) >= l.max {
		l.dropped++
		return
	}
	l.events = append(l.events, Event{T: t, Name: name, Detail: detail})
}

// Dropped returns how many events were rejected because the log was full.
func (l *EventLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Events returns a copy of the recorded events in order.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of recorded events.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// CountByName returns how many recorded events carry the given name.
func (l *EventLog) CountByName(name string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Name == name {
			n++
		}
	}
	return n
}

// String renders the log one event per line — the canonical fingerprint
// the determinism tests compare across runs.
func (l *EventLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var b strings.Builder
	for _, e := range l.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Tail returns a copy of the last n events (all of them when n exceeds the
// length, none when n is negative).
func (l *EventLog) Tail(n int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n > len(l.events) {
		n = len(l.events)
	}
	out := make([]Event, n)
	copy(out, l.events[len(l.events)-n:])
	return out
}
