package trace

import (
	"fmt"
	"strings"

	"vessel/internal/sim"
)

// Event is one entry in the containment/chaos event stream: a named thing
// that happened at a point in virtual time (an injection, a contained
// fault, a watchdog kill, a restart, a reclaim). Events are the
// determinism witness of the fault-injection harness — two runs with the
// same seed and plan must produce byte-identical event logs.
type Event struct {
	T      sim.Time
	Name   string
	Detail string
}

func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%d %s", int64(e.T), e.Name)
	}
	return fmt.Sprintf("%d %s %s", int64(e.T), e.Name, e.Detail)
}

// EventLog is a bounded append-only event buffer. When full it drops new
// events (keeping the prefix intact, so the determinism fingerprint stays
// comparable) and counts the drops.
type EventLog struct {
	max    int
	events []Event
	// Dropped counts events rejected because the log was full.
	Dropped uint64
}

// NewEventLog returns a log keeping at most max events.
func NewEventLog(max int) *EventLog {
	if max <= 0 {
		max = 1 << 16
	}
	return &EventLog{max: max}
}

// Record appends one event, unless the log is full.
func (l *EventLog) Record(t sim.Time, name, detail string) {
	if len(l.events) >= l.max {
		l.Dropped++
		return
	}
	l.events = append(l.events, Event{T: t, Name: name, Detail: detail})
}

// Events returns the recorded events in order.
func (l *EventLog) Events() []Event { return l.events }

// Len returns the number of recorded events.
func (l *EventLog) Len() int { return len(l.events) }

// CountByName returns how many recorded events carry the given name.
func (l *EventLog) CountByName(name string) int {
	n := 0
	for _, e := range l.events {
		if e.Name == name {
			n++
		}
	}
	return n
}

// String renders the log one event per line — the canonical fingerprint
// the determinism tests compare across runs.
func (l *EventLog) String() string {
	var b strings.Builder
	for _, e := range l.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Tail returns the last n events (all of them when n exceeds the length).
func (l *EventLog) Tail(n int) []Event {
	if n >= len(l.events) {
		return l.events
	}
	return l.events[len(l.events)-n:]
}
