package trace

import "testing"

// Tail used to panic on negative n (make with a negative length); it must
// clamp to "no events" instead.
func TestTailClampsNegativeN(t *testing.T) {
	l := NewEventLog(0)
	l.Record(1, "a", "")
	l.Record(2, "b", "")
	if got := l.Tail(-1); len(got) != 0 {
		t.Fatalf("Tail(-1) returned %d events", len(got))
	}
	if got := l.Tail(-1 << 40); len(got) != 0 {
		t.Fatal("Tail(very negative) returned events")
	}
	if got := l.Tail(1); len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("Tail(1) = %+v", got)
	}
	if got := l.Tail(99); len(got) != 2 {
		t.Fatalf("Tail(99) = %d events", len(got))
	}
}
