package trace

import (
	"sync"
	"testing"

	"vessel/internal/sim"
)

// TestEventLogConcurrentWriters hammers one log from many goroutines under
// the race detector: every record must either land or be counted as a
// drop, with the full-log prefix preserved.
func TestEventLogConcurrentWriters(t *testing.T) {
	const (
		writers = 8
		each    = 2000
		max     = writers * each / 2 // force the full-log drop path
	)
	l := NewEventLog(max)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Record(sim.Time(i), "evt", "w")
				if i%64 == 0 {
					// Interleave readers with writers.
					_ = l.Len()
					_ = l.Tail(3)
					_ = l.CountByName("evt")
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != max {
		t.Fatalf("len = %d, want full log %d", l.Len(), max)
	}
	if got := l.Len() + int(l.Dropped()); got != writers*each {
		t.Fatalf("kept+dropped = %d, want %d", got, writers*each)
	}
	if n := l.CountByName("evt"); n != max {
		t.Fatalf("CountByName = %d, want %d", n, max)
	}
	if got := len(l.Events()); got != max {
		t.Fatalf("Events len = %d, want %d", got, max)
	}
}

// TestEventLogFullKeepsPrefix checks the wraparound edge single-threaded:
// a full log drops new events instead of evicting old ones, so the prefix
// fingerprint stays stable.
func TestEventLogFullKeepsPrefix(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 5; i++ {
		l.Record(sim.Time(i), "e", "")
	}
	if l.Len() != 3 || l.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", l.Len(), l.Dropped())
	}
	ev := l.Events()
	for i, e := range ev {
		if e.T != sim.Time(i) {
			t.Fatalf("prefix disturbed: %v", ev)
		}
	}
	// Mutating the returned slice must not corrupt the log.
	ev[0].Name = "mutated"
	if l.Events()[0].Name != "e" {
		t.Fatal("Events returned internal storage")
	}
	if got := l.Tail(10); len(got) != 3 {
		t.Fatalf("tail = %d", len(got))
	}
	if got := l.Tail(2); len(got) != 2 || got[0].T != 1 {
		t.Fatalf("tail(2) = %+v", got)
	}
}
