// Package trace records per-core execution segments from the scheduling
// simulators and renders them as the core-occupancy timelines of the
// paper's Figure 7: what each core was doing (application, runtime,
// kernel, switching, idle) instant by instant. Recorders are bounded ring
// buffers, so tracing a long run costs a fixed amount of memory.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"vessel/internal/sim"
)

// Kind classifies a segment, mirroring sched.Activity.
type Kind uint8

// Segment kinds.
const (
	Idle Kind = iota
	App
	Runtime
	Kernel
	Switch
	numKinds
)

func (k Kind) String() string {
	switch k {
	case Idle:
		return "idle"
	case App:
		return "app"
	case Runtime:
		return "runtime"
	case Kernel:
		return "kernel"
	case Switch:
		return "switch"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// glyph is the timeline character for each kind.
func (k Kind) glyph() byte {
	switch k {
	case App:
		return '#'
	case Runtime:
		return 'r'
	case Kernel:
		return 'K'
	case Switch:
		return 's'
	default:
		return '.'
	}
}

// Segment is one contiguous span of a core doing one thing.
type Segment struct {
	Core  int
	Start sim.Time
	End   sim.Time
	Kind  Kind
	// Label optionally names the occupant (app name).
	Label string
}

// Duration returns the segment length.
func (s Segment) Duration() sim.Duration { return s.End.Sub(s.Start) }

// Recorder is a bounded segment buffer.
type Recorder struct {
	max     int
	segs    []Segment
	start   int // ring start when full
	Dropped uint64
}

// NewRecorder returns a recorder keeping at most max segments (oldest
// evicted first). max ≤ 0 selects a generous default.
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = 1 << 16
	}
	return &Recorder{max: max}
}

// Add records a segment. Zero-length segments are ignored.
func (r *Recorder) Add(core int, start, end sim.Time, kind Kind, label string) {
	if r == nil || end <= start {
		return
	}
	s := Segment{Core: core, Start: start, End: end, Kind: kind, Label: label}
	if len(r.segs) < r.max {
		r.segs = append(r.segs, s)
		return
	}
	r.segs[r.start] = s
	r.start = (r.start + 1) % r.max
	r.Dropped++
}

// Segments returns the recorded segments in insertion order.
func (r *Recorder) Segments() []Segment {
	if r == nil {
		return nil
	}
	if len(r.segs) < r.max || r.start == 0 {
		out := make([]Segment, len(r.segs))
		copy(out, r.segs)
		return out
	}
	out := make([]Segment, 0, len(r.segs))
	out = append(out, r.segs[r.start:]...)
	out = append(out, r.segs[:r.start]...)
	return out
}

// Len returns the number of retained segments.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.segs)
}

// Totals sums retained time per kind.
func (r *Recorder) Totals() map[Kind]sim.Duration {
	out := make(map[Kind]sim.Duration, numKinds)
	for _, s := range r.Segments() {
		out[s.Kind] += s.Duration()
	}
	return out
}

// Timeline renders core's activity over [from, to) as a width-character
// bar: '#' application, 'r' runtime, 'K' kernel, 's' switch, '.' idle.
// Each character covers (to-from)/width; the dominant kind in each bucket
// wins.
func (r *Recorder) Timeline(core int, from, to sim.Time, width int) string {
	if width <= 0 || to <= from {
		return ""
	}
	bucketNs := float64(to-from) / float64(width)
	// Per-bucket per-kind occupancy.
	occ := make([][numKinds]float64, width)
	for _, s := range r.Segments() {
		if s.Core != core || s.End <= from || s.Start >= to {
			continue
		}
		lo, hi := s.Start, s.End
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		b0 := int(float64(lo-from) / bucketNs)
		b1 := int(float64(hi-from-1) / bucketNs)
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			bs := from.Add(sim.Duration(float64(b) * bucketNs))
			be := from.Add(sim.Duration(float64(b+1) * bucketNs))
			l, h := lo, hi
			if l < bs {
				l = bs
			}
			if h > be {
				h = be
			}
			if h > l {
				occ[b][s.Kind] += float64(h - l)
			}
		}
	}
	var b strings.Builder
	for _, bucket := range occ {
		best := Idle
		var bestV float64
		for k := Kind(0); k < numKinds; k++ {
			if bucket[k] > bestV {
				bestV = bucket[k]
				best = k
			}
		}
		b.WriteByte(best.glyph())
	}
	return b.String()
}

// chromeEvent is one Chrome-tracing "complete" event.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeJSON emits the retained segments in the Chrome tracing
// format (chrome://tracing, Perfetto): one track per core, one complete
// event per segment. Idle segments are omitted — the gaps read as idle.
func (r *Recorder) WriteChromeJSON(w io.Writer) error {
	events := make([]chromeEvent, 0, r.Len())
	for _, s := range r.Segments() {
		if s.Kind == Idle {
			continue
		}
		name := s.Kind.String()
		if s.Label != "" {
			name = s.Label + " (" + name + ")"
		}
		events = append(events, chromeEvent{
			Name: name,
			Cat:  s.Kind.String(),
			Ph:   "X",
			TS:   float64(s.Start) / 1000,
			Dur:  float64(s.Duration()) / 1000,
			PID:  0,
			TID:  s.Core,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// Render prints every core's timeline over [from, to) with a legend —
// the Figure 7 exhibit.
func (r *Recorder) Render(cores int, from, to sim.Time, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "core timelines %v → %v  (#=app r=runtime K=kernel s=switch .=idle)\n",
		from, to)
	for c := 0; c < cores; c++ {
		fmt.Fprintf(&b, "core %2d |%s|\n", c, r.Timeline(c, from, to, width))
	}
	return b.String()
}
