package trace

import (
	"fmt"
	"strings"
	"testing"

	"vessel/internal/sim"
)

// TestRingEventLogOverwritesOldest pins the bounded-memory discipline long
// chaos soaks rely on: a full ring displaces its oldest entry, keeps the
// most recent max in order, and counts the displacements.
func TestRingEventLogOverwritesOldest(t *testing.T) {
	l := NewRingEventLog(4)
	for i := 0; i < 10; i++ {
		l.Record(sim.Time(i), fmt.Sprintf("e%d", i), "")
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d, want 4", l.Len())
	}
	if l.Overwritten() != 6 {
		t.Fatalf("overwritten = %d, want 6", l.Overwritten())
	}
	if l.Dropped() != 0 {
		t.Fatalf("ring mode dropped %d", l.Dropped())
	}
	evs := l.Events()
	for i, ev := range evs {
		want := fmt.Sprintf("e%d", 6+i)
		if ev.Name != want || ev.T != sim.Time(6+i) {
			t.Fatalf("event %d = %s@%d, want %s", i, ev.Name, int64(ev.T), want)
		}
	}
	// String and Tail see the same logical (oldest-first) order.
	s := l.String()
	if strings.Contains(s, "e5") || !strings.Contains(s, "e6") {
		t.Fatalf("String holds stale entries:\n%s", s)
	}
	if strings.Index(s, "e6") > strings.Index(s, "e9") {
		t.Fatalf("String order wrong:\n%s", s)
	}
	tail := l.Tail(2)
	if len(tail) != 2 || tail[0].Name != "e8" || tail[1].Name != "e9" {
		t.Fatalf("tail = %+v", tail)
	}
	if l.CountByName("e9") != 1 || l.CountByName("e0") != 0 {
		t.Fatal("CountByName sees overwritten entries")
	}
}

// TestAppendModeUnchangedByRingSupport: the default log still keeps the
// prefix and drops the excess — the determinism-fingerprint discipline.
func TestAppendModeUnchangedByRingSupport(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 5; i++ {
		l.Record(sim.Time(i), fmt.Sprintf("e%d", i), "")
	}
	if l.Len() != 3 || l.Dropped() != 2 || l.Overwritten() != 0 {
		t.Fatalf("len=%d dropped=%d overwritten=%d", l.Len(), l.Dropped(), l.Overwritten())
	}
	evs := l.Events()
	if evs[0].Name != "e0" || evs[2].Name != "e2" {
		t.Fatalf("prefix not preserved: %+v", evs)
	}
}

// TestRingEventLogUnderCapacity: a ring that never fills behaves exactly
// like an append log.
func TestRingEventLogUnderCapacity(t *testing.T) {
	l := NewRingEventLog(8)
	for i := 0; i < 5; i++ {
		l.Record(sim.Time(i), fmt.Sprintf("e%d", i), "x")
	}
	if l.Len() != 5 || l.Overwritten() != 0 {
		t.Fatalf("len=%d overwritten=%d", l.Len(), l.Overwritten())
	}
	if evs := l.Events(); evs[0].Name != "e0" || evs[4].Name != "e4" {
		t.Fatalf("order wrong: %+v", evs)
	}
}
