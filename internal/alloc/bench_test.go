package alloc

import (
	"testing"

	"vessel/internal/mem"
)

func BenchmarkAllocFreeSmall(b *testing.B) {
	a, err := NewArena(0x10000, 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.Alloc(64)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocFreeLarge(b *testing.B) {
	a, err := NewArena(0x10000, 256<<20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.Alloc(64 << 10)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocChurn(b *testing.B) {
	// Mixed-size churn with a live window, the realistic pattern.
	a, err := NewArena(0x10000, 128<<20)
	if err != nil {
		b.Fatal(err)
	}
	var live []mem.Addr
	sizes := []uint64{16, 96, 768, 4096, 20000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.Alloc(sizes[i%len(sizes)])
		if err != nil {
			b.Fatal(err)
		}
		live = append(live, p)
		if len(live) > 512 {
			if err := a.Free(live[0]); err != nil {
				b.Fatal(err)
			}
			live = live[1:]
		}
	}
}

func BenchmarkColoredPageAlloc(b *testing.B) {
	allowed := map[int]bool{0: true, 1: true, 2: true, 3: true}
	for i := 0; i < b.N; i++ {
		a, err := NewArena(0x10000, 8<<20)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.AllocPagesColored(128, allowed, 8); err != nil {
			b.Fatal(err)
		}
	}
}
