package alloc

import (
	"testing"

	"vessel/internal/mem"
)

// FuzzArena drives the allocator with an arbitrary op stream and checks
// the no-overlap / in-bounds invariants after every operation.
func FuzzArena(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 4, 0, 5, 6, 0})
	f.Add([]byte{255, 255, 0, 0, 1})
	f.Add([]byte{10, 20, 30, 40, 50, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		a, err := NewArena(0x10000, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		var live []mem.Addr
		for _, op := range ops {
			if op == 0 && len(live) > 0 {
				if err := a.Free(live[0]); err != nil {
					t.Fatalf("free: %v", err)
				}
				live = live[1:]
				continue
			}
			size := uint64(op) * 97 // spread across size classes and large
			p, err := a.Alloc(size)
			if err != nil {
				continue // exhaustion is legal
			}
			sz, ok := a.SizeOf(p)
			if !ok || sz < size && size > 0 {
				t.Fatalf("SizeOf(%#x) = %d, want ≥ %d", uint64(p), sz, size)
			}
			if uint64(p) < 0x10000 || uint64(p)+sz > 0x10000+(1<<20) {
				t.Fatalf("allocation out of arena: %#x+%d", uint64(p), sz)
			}
			for _, q := range live {
				qs, _ := a.SizeOf(q)
				if uint64(p) < uint64(q)+qs && uint64(q) < uint64(p)+sz {
					t.Fatalf("overlap: %#x+%d with %#x+%d", uint64(p), sz, uint64(q), qs)
				}
			}
			live = append(live, p)
		}
	})
}
