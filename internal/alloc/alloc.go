// Package alloc implements the uProcess heap allocator of §5.2.3. The paper
// preloads jemalloc and repoints its chunk source from mmap() to the
// MPK-protected uProcess region; this package provides the equivalent:
// a size-class allocator whose backing store is a fixed arena inside the
// uProcess region, never the kernel.
//
// The allocator also supports cache-color-constrained page allocation,
// which is how VESSEL lays out colocated uProcesses' working sets in
// disjoint cache partitions — the mechanism behind the Figure 11 cache-
// friendliness result.
package alloc

import (
	"fmt"
	"sort"

	"vessel/internal/mem"
)

// sizeClasses are the small-allocation bins (bytes), jemalloc-style.
var sizeClasses = []uint64{16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 2048}

// runSize is how much a small class carves from the arena at a time.
const runSize = 16 * 1024

// Arena manages [base, base+size) of a uProcess region.
type Arena struct {
	base mem.Addr
	size uint64

	// Address-ordered free extents for large allocations.
	free []extent
	// Per-class free lists for small allocations.
	bins [][]mem.Addr
	// Live allocations: address → (size, class index or −1).
	live map[mem.Addr]liveInfo

	allocated uint64
	peak      uint64
}

type extent struct {
	base mem.Addr
	size uint64
}

type liveInfo struct {
	size  uint64
	class int // −1 for large
}

// NewArena returns an allocator over [base, base+size). base and size must
// be 16-byte aligned.
func NewArena(base mem.Addr, size uint64) (*Arena, error) {
	if uint64(base)%16 != 0 || size%16 != 0 || size == 0 {
		return nil, fmt.Errorf("alloc: arena [%#x, +%#x) not 16-byte aligned", uint64(base), size)
	}
	return &Arena{
		base: base,
		size: size,
		free: []extent{{base, size}},
		bins: make([][]mem.Addr, len(sizeClasses)),
		live: make(map[mem.Addr]liveInfo),
	}, nil
}

// Base returns the arena's start address.
func (a *Arena) Base() mem.Addr { return a.base }

// Size returns the arena's capacity.
func (a *Arena) Size() uint64 { return a.size }

// classFor returns the smallest size class ≥ n, or −1 if n is large.
func classFor(n uint64) int {
	for i, c := range sizeClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// align16 rounds n up to a multiple of 16.
func align16(n uint64) uint64 { return (n + 15) &^ 15 }

// Alloc returns a 16-byte-aligned block of at least n bytes.
func (a *Arena) Alloc(n uint64) (mem.Addr, error) {
	if n == 0 {
		n = 1
	}
	if ci := classFor(n); ci >= 0 {
		return a.allocSmall(ci)
	}
	return a.allocLarge(align16(n))
}

func (a *Arena) allocSmall(ci int) (mem.Addr, error) {
	if len(a.bins[ci]) == 0 {
		// Carve a new run from the large allocator and split it.
		run, err := a.carve(runSize)
		if err != nil {
			// Fall back to a single-object run when fragmented.
			run, err = a.carve(align16(sizeClasses[ci]))
			if err != nil {
				return 0, err
			}
			a.bins[ci] = append(a.bins[ci], run)
		} else {
			cs := sizeClasses[ci]
			for off := uint64(0); off+cs <= runSize; off += cs {
				a.bins[ci] = append(a.bins[ci], run+mem.Addr(off))
			}
		}
	}
	last := len(a.bins[ci]) - 1
	addr := a.bins[ci][last]
	a.bins[ci] = a.bins[ci][:last]
	a.live[addr] = liveInfo{size: sizeClasses[ci], class: ci}
	a.account(int64(sizeClasses[ci]))
	return addr, nil
}

func (a *Arena) allocLarge(n uint64) (mem.Addr, error) {
	addr, err := a.carve(n)
	if err != nil {
		return 0, err
	}
	a.live[addr] = liveInfo{size: n, class: -1}
	a.account(int64(n))
	return addr, nil
}

// carve takes n bytes from the first fitting free extent (address order).
func (a *Arena) carve(n uint64) (mem.Addr, error) {
	for i := range a.free {
		if a.free[i].size >= n {
			addr := a.free[i].base
			a.free[i].base += mem.Addr(n)
			a.free[i].size -= n
			if a.free[i].size == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			return addr, nil
		}
	}
	return 0, fmt.Errorf("alloc: out of memory (want %d bytes, %d free in %d extents)",
		n, a.FreeBytes(), len(a.free))
}

// Free releases a block returned by Alloc.
func (a *Arena) Free(addr mem.Addr) error {
	info, ok := a.live[addr]
	if !ok {
		return fmt.Errorf("alloc: free of unallocated address %#x", uint64(addr))
	}
	delete(a.live, addr)
	a.account(-int64(info.size))
	if info.class >= 0 {
		a.bins[info.class] = append(a.bins[info.class], addr)
		return nil
	}
	a.release(addr, info.size)
	return nil
}

// release returns an extent to the free list, coalescing neighbours.
func (a *Arena) release(addr mem.Addr, n uint64) {
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].base >= addr })
	a.free = append(a.free, extent{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = extent{addr, n}
	// Coalesce with successor.
	if i+1 < len(a.free) && a.free[i].base+mem.Addr(a.free[i].size) == a.free[i+1].base {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	// Coalesce with predecessor.
	if i > 0 && a.free[i-1].base+mem.Addr(a.free[i-1].size) == a.free[i].base {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

func (a *Arena) account(delta int64) {
	a.allocated = uint64(int64(a.allocated) + delta)
	if a.allocated > a.peak {
		a.peak = a.allocated
	}
}

// AllocatedBytes returns the bytes currently live (by size class, so small
// allocations count their bin size).
func (a *Arena) AllocatedBytes() uint64 { return a.allocated }

// PeakBytes returns the high-water mark.
func (a *Arena) PeakBytes() uint64 { return a.peak }

// FreeBytes returns the bytes in large free extents (bin-cached small
// blocks are not counted; they are committed to their class).
func (a *Arena) FreeBytes() uint64 {
	var n uint64
	for _, e := range a.free {
		n += e.size
	}
	return n
}

// LiveCount returns the number of live allocations.
func (a *Arena) LiveCount() int { return len(a.live) }

// SizeOf returns the usable size of a live allocation.
func (a *Arena) SizeOf(addr mem.Addr) (uint64, bool) {
	info, ok := a.live[addr]
	return info.size, ok
}

// --- cache-colored page allocation ------------------------------------------

// ColorOf returns the cache color of the page containing addr: the page's
// index modulo the number of page colors the cache has (cache size divided
// by way count and page size).
func ColorOf(addr mem.Addr, numColors int) int {
	if numColors <= 0 {
		return 0
	}
	return int(addr.PageOf()) % numColors
}

// AllocPagesColored allocates npages whole pages whose colors all lie in
// the allowed set (given numColors total). This is the layout policy that
// lets two colocated uProcesses occupy disjoint cache partitions (Figure
// 11): pages are taken from free extents page by page, skipping pages of
// the wrong color.
func (a *Arena) AllocPagesColored(npages int, allowed map[int]bool, numColors int) ([]mem.Addr, error) {
	if npages <= 0 {
		return nil, fmt.Errorf("alloc: npages must be positive")
	}
	var got []mem.Addr
	// Scan free extents for correctly colored pages.
	for _, e := range append([]extent(nil), a.free...) {
		start := (e.base + mem.PageSize - 1) &^ (mem.PageSize - 1)
		for p := start; p+mem.PageSize <= e.base+mem.Addr(e.size); p += mem.PageSize {
			if len(got) == npages {
				break
			}
			if allowed == nil || allowed[ColorOf(p, numColors)] {
				got = append(got, p)
			}
		}
	}
	if len(got) < npages {
		return nil, fmt.Errorf("alloc: only %d/%d pages available in allowed colors", len(got), npages)
	}
	got = got[:npages]
	// Claim each page: split it out of its extent.
	for _, p := range got {
		if err := a.claimPage(p); err != nil {
			return nil, err
		}
		a.live[p] = liveInfo{size: mem.PageSize, class: -1}
		a.account(mem.PageSize)
	}
	return got, nil
}

// claimPage removes [p, p+PageSize) from the free list.
func (a *Arena) claimPage(p mem.Addr) error {
	for i := range a.free {
		e := a.free[i]
		if p >= e.base && p+mem.PageSize <= e.base+mem.Addr(e.size) {
			// Split into up-to-two remainders.
			before := extent{e.base, uint64(p - e.base)}
			after := extent{p + mem.PageSize, uint64(e.base+mem.Addr(e.size)) - uint64(p+mem.PageSize)}
			repl := a.free[:i]
			repl = append(repl, a.free[i+1:]...)
			a.free = repl
			if before.size > 0 {
				a.release(before.base, before.size)
			}
			if after.size > 0 {
				a.release(after.base, after.size)
			}
			return nil
		}
	}
	return fmt.Errorf("alloc: page %#x not free", uint64(p))
}
