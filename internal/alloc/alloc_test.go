package alloc

import (
	"testing"
	"testing/quick"

	"vessel/internal/mem"
	"vessel/internal/sim"
)

func newArena(t *testing.T, size uint64) *Arena {
	t.Helper()
	a, err := NewArena(0x1000_0000, size)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewArenaValidation(t *testing.T) {
	if _, err := NewArena(0x1001, 4096); err == nil {
		t.Fatal("unaligned base accepted")
	}
	if _, err := NewArena(0x1000, 100); err == nil {
		t.Fatal("unaligned size accepted")
	}
	if _, err := NewArena(0x1000, 0); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestSmallAllocFree(t *testing.T) {
	a := newArena(t, 1<<20)
	p1, err := a.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("duplicate allocation")
	}
	if uint64(p1)%16 != 0 || uint64(p2)%16 != 0 {
		t.Fatal("misaligned")
	}
	if sz, ok := a.SizeOf(p1); !ok || sz != 32 {
		t.Fatalf("size class for 24 = %d", sz)
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	// Freed small blocks are recycled from the bin.
	p3, err := a.Alloc(30)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatalf("bin not recycled: %#x vs %#x", uint64(p3), uint64(p1))
	}
	if a.LiveCount() != 2 {
		t.Fatalf("live = %d", a.LiveCount())
	}
}

func TestZeroAndLargeAlloc(t *testing.T) {
	a := newArena(t, 1<<20)
	p, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := a.SizeOf(p); sz != 16 {
		t.Fatalf("zero-byte alloc size = %d", sz)
	}
	big, err := a.Alloc(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := a.SizeOf(big); sz < 100_000 {
		t.Fatalf("large size = %d", sz)
	}
	if err := a.Free(big); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreeAndBadFree(t *testing.T) {
	a := newArena(t, 1<<20)
	p, _ := a.Alloc(64)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Fatal("double free accepted")
	}
	if err := a.Free(0xdead0); err == nil {
		t.Fatal("wild free accepted")
	}
}

func TestExhaustion(t *testing.T) {
	a := newArena(t, 64*1024)
	var ptrs []mem.Addr
	for {
		p, err := a.Alloc(4096)
		if err != nil {
			break
		}
		ptrs = append(ptrs, p)
	}
	if len(ptrs) == 0 {
		t.Fatal("nothing allocated before exhaustion")
	}
	// Freeing everything makes the full arena reusable (coalescing).
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if a.AllocatedBytes() != 0 {
		t.Fatalf("allocated = %d after freeing all", a.AllocatedBytes())
	}
	if _, err := a.Alloc(48 * 1024); err != nil {
		t.Fatalf("large alloc after free-all: %v", err)
	}
}

func TestCoalescing(t *testing.T) {
	a := newArena(t, 1<<20)
	p1, _ := a.Alloc(8192)
	p2, _ := a.Alloc(8192)
	p3, _ := a.Alloc(8192)
	// Free middle, then neighbours: extents must coalesce so a larger
	// allocation fits in the hole.
	if err := a.Free(p2); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p3); err != nil {
		t.Fatal(err)
	}
	p4, err := a.Alloc(24 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if p4 != p1 {
		t.Fatalf("coalesced hole not reused: got %#x want %#x", uint64(p4), uint64(p1))
	}
}

func TestPeakAccounting(t *testing.T) {
	a := newArena(t, 1<<20)
	p1, _ := a.Alloc(1024)
	p2, _ := a.Alloc(1024)
	peak := a.PeakBytes()
	a.Free(p1)
	a.Free(p2)
	if a.PeakBytes() != peak || peak < 2048 {
		t.Fatalf("peak = %d", a.PeakBytes())
	}
}

func TestColorOf(t *testing.T) {
	if ColorOf(0, 64) != 0 {
		t.Fatal("page 0 color")
	}
	if ColorOf(65*mem.PageSize, 64) != 1 {
		t.Fatal("page 65 color with 64 colors")
	}
	if ColorOf(0x5000, 0) != 0 {
		t.Fatal("zero colors should degrade to 0")
	}
}

func TestColoredPageAllocation(t *testing.T) {
	a := newArena(t, 4<<20)
	const numColors = 8
	evens := map[int]bool{0: true, 2: true, 4: true, 6: true}
	odds := map[int]bool{1: true, 3: true, 5: true, 7: true}
	pa, err := a.AllocPagesColored(64, evens, numColors)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := a.AllocPagesColored(64, odds, numColors)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pa {
		if c := ColorOf(p, numColors); !evens[c] {
			t.Fatalf("page %#x has color %d, want even", uint64(p), c)
		}
	}
	for _, p := range pb {
		if c := ColorOf(p, numColors); !odds[c] {
			t.Fatalf("page %#x has color %d, want odd", uint64(p), c)
		}
	}
	// No overlap.
	seen := map[mem.Addr]bool{}
	for _, p := range append(pa, pb...) {
		if seen[p] {
			t.Fatalf("page %#x allocated twice", uint64(p))
		}
		seen[p] = true
	}
	// Colored pages are live allocations and freeable.
	if err := a.Free(pa[0]); err != nil {
		t.Fatal(err)
	}
}

func TestColoredExhaustion(t *testing.T) {
	a := newArena(t, 64*1024) // 16 pages
	only0 := map[int]bool{0: true}
	// With 8 colors over 16 pages only 2 pages have color 0.
	if _, err := a.AllocPagesColored(3, only0, 8); err == nil {
		t.Fatal("colored over-allocation accepted")
	}
	got, err := a.AllocPagesColored(2, only0, 8)
	if err != nil || len(got) != 2 {
		t.Fatalf("colored alloc: %v", err)
	}
	if _, err := a.AllocPagesColored(0, only0, 8); err == nil {
		t.Fatal("zero pages accepted")
	}
}

func TestNilAllowedMeansAnyColor(t *testing.T) {
	a := newArena(t, 64*1024)
	got, err := a.AllocPagesColored(4, nil, 8)
	if err != nil || len(got) != 4 {
		t.Fatalf("nil allowed: %v", err)
	}
}

func TestAllocFreeProperty(t *testing.T) {
	// Property: after any interleaving of allocs and frees, live
	// allocations never overlap and all fall inside the arena.
	f := func(ops []uint16) bool {
		a, err := NewArena(0x10000, 1<<20)
		if err != nil {
			return false
		}
		var ptrs []mem.Addr
		for _, op := range ops {
			if op%3 == 0 && len(ptrs) > 0 {
				idx := int(op/3) % len(ptrs)
				if a.Free(ptrs[idx]) != nil {
					return false
				}
				ptrs = append(ptrs[:idx], ptrs[idx+1:]...)
				continue
			}
			size := uint64(op%5000) + 1
			p, err := a.Alloc(size)
			if err != nil {
				continue // exhaustion is fine
			}
			ptrs = append(ptrs, p)
		}
		// Verify no overlaps among live blocks.
		type iv struct{ lo, hi uint64 }
		var ivs []iv
		for _, p := range ptrs {
			sz, ok := a.SizeOf(p)
			if !ok {
				return false
			}
			if uint64(p) < 0x10000 || uint64(p)+sz > 0x10000+(1<<20) {
				return false
			}
			ivs = append(ivs, iv{uint64(p), uint64(p) + sz})
		}
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				if ivs[i].lo < ivs[j].hi && ivs[j].lo < ivs[i].hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Keep sim import used for duration constants in future bench comparisons.
var _ = sim.Microsecond
