package vessel

import (
	"fmt"

	"vessel/internal/sim"
	"vessel/internal/uproc"
)

// This file makes the mechanism level self-driving: RunFor co-simulates
// the instruction-stepped cores with the event engine, and CoreScheduler is
// the scheduler box of Figure 4 — the entity that scans per-core queues,
// enforces time slices with Uintr preemption, and dispatches best-effort
// threads onto idle cores from a global queue (§4.5).

// coSimSlice is the granularity at which core execution and engine events
// interleave.
const coSimSlice = 1 * sim.Microsecond

// RunFor advances the whole system — every core's instruction stream and
// the event engine — together for the given virtual duration. Cores
// execute approximately slice×clock instructions per interleave step, so
// engine-driven actors (the CoreScheduler, Uintr deliveries) observe core
// state at microsecond granularity, as a real scheduler core would. The
// per-slice step budget is exact even though cores execute fused
// superblocks: Core.Run splits a block at the budget, so every
// interleave boundary sits on a precise instruction count.
func (mg *Manager) RunFor(total sim.Duration) {
	ghz := mg.m.Costs.ClockGHz
	stepsPerSlice := int(float64(coSimSlice) * ghz)
	if stepsPerSlice < 1 {
		stepsPerSlice = 1
	}
	deadline := mg.eng.Now().Add(total)
	for mg.eng.Now() < deadline {
		for i := 0; i < mg.m.NumCores(); i++ {
			mg.m.Core(i).Run(stepsPerSlice)
		}
		mg.eng.Run(mg.eng.Now().Add(coSimSlice))
	}
}

// CoreScheduler is VESSEL's scheduling entity over a layer-1 domain: a
// periodic scan loop on the engine that keeps cores fair and busy.
type CoreScheduler struct {
	mg *Manager
	// Quantum is the time slice after which a continuously running
	// thread is preempted when siblings wait (0 disables slicing).
	Quantum sim.Duration
	// ScanEvery is the scan period (default 5µs).
	ScanEvery sim.Duration
	// Policy decides preemption per scan; nil defaults to FairSharePolicy,
	// the historical behaviour (preempt only when siblings wait).
	Policy Policy

	beQ     []*uproc.Thread
	lastCur []*uproc.Thread
	ranFor  []sim.Duration
	running bool
	// Preemptions counts slices enforced; Dispatches counts BE threads
	// placed on idle cores.
	Preemptions uint64
	Dispatches  uint64
}

// NewCoreScheduler builds the scheduler for a manager's domain.
func NewCoreScheduler(mg *Manager, quantum sim.Duration) *CoreScheduler {
	n := mg.m.NumCores()
	return &CoreScheduler{
		mg:        mg,
		Quantum:   quantum,
		ScanEvery: 5 * sim.Microsecond,
		lastCur:   make([]*uproc.Thread, n),
		ranFor:    make([]sim.Duration, n),
	}
}

// AddBestEffort queues a thread on the global best-effort queue; it will
// be dispatched to whichever core runs dry (§4.5).
func (s *CoreScheduler) AddBestEffort(t *uproc.Thread) {
	s.beQ = append(s.beQ, t)
}

// Start arms the scan loop on the engine. Use Manager.RunFor to drive the
// system.
func (s *CoreScheduler) Start() error {
	if s.running {
		return fmt.Errorf("vessel: scheduler already running")
	}
	s.running = true
	var scan func()
	scan = func() {
		if !s.running {
			return
		}
		s.scanOnce()
		s.mg.eng.After(s.ScanEvery, scan)
	}
	s.mg.eng.After(s.ScanEvery, scan)
	return nil
}

// Stop halts the scan loop.
func (s *CoreScheduler) Stop() { s.running = false }

// scanOnce is one pass over the cores: dispatch BE work to idle cores,
// and preempt threads that exhausted their quantum while others wait.
func (s *CoreScheduler) scanOnce() {
	d := s.mg.Domain
	pol := s.Policy
	if pol == nil {
		pol = FairSharePolicy{}
	}
	for i := 0; i < s.mg.m.NumCores(); i++ {
		if d.Fenced(i) {
			continue
		}
		core := s.mg.m.Core(i)
		cur := d.Current(i)
		// Idle core: hand it a best-effort thread.
		if cur == nil && core.Halted {
			if len(s.beQ) > 0 {
				t := s.beQ[0]
				s.beQ = s.beQ[1:]
				if err := d.Preempt(i, uproc.SchedCommand{Activate: t}); err == nil {
					s.Dispatches++
				}
			}
			s.lastCur[i] = nil
			s.ranFor[i] = 0
			continue
		}
		// Quantum accounting: how long has the same thread held the
		// core across scans?
		if cur != s.lastCur[i] {
			s.lastCur[i] = cur
			s.ranFor[i] = 0
			continue
		}
		s.ranFor[i] += s.ScanEvery
		dec := pol.Decide(PolicyView{
			Core:     i,
			RanFull:  s.Quantum > 0 && s.ranFor[i] >= s.Quantum,
			QueueLen: len(d.Runqueue(i)),
		})
		core.Cycles += dec.CostCycles
		if dec.Preempt {
			if err := d.Preempt(i, uproc.SchedCommand{}); err == nil {
				s.Preemptions++
			}
			s.ranFor[i] = 0
		}
	}
}
