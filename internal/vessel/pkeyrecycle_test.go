package vessel

import (
	"testing"

	"vessel/internal/mem"
	"vessel/internal/uproc"
)

// TestPkeyRecycleIsolation exercises the libmpk stale-key pitfall: a
// protection key must not be recycled to a new uProcess while any core
// still runs the old one — the old tenant's PKRU would grant it access to
// the new tenant's region. The manager therefore keeps a destroyed
// uProcess's region pending until the lazy kill has landed on every core.
func TestPkeyRecycleIsolation(t *testing.T) {
	mg, err := NewManager(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := mg.Launch("a", parkLoop(mg), 0)
	if err != nil {
		t.Fatal(err)
	}
	// A second thread of "a" runs on core 1, so the kill lands at two
	// different times.
	t2, err := mg.Domain.NewThread(a, a.Image.Entry)
	if err != nil {
		t.Fatal(err)
	}
	mg.Domain.AttachThread(1, t2)
	for core := 0; core < 2; core++ {
		if err := mg.Start(core); err != nil {
			t.Fatal(err)
		}
		mg.Step(core, 200)
	}
	oldKey := a.Image.Region.Key
	oldBase := a.Image.Region.Base
	if err := mg.Destroy("a"); err != nil {
		t.Fatal(err)
	}
	// Only core 0 processes its command queue: the kill lands there, but
	// core 1 still runs the dying uProcess.
	mg.Step(0, 500)
	if on := mg.Domain.RunningOn(a); on != 1 {
		t.Fatalf("expected a still running on core 1, RunningOn = %d", on)
	}
	if n, err := mg.Reap(); err != nil || n != 0 {
		t.Fatalf("Reap with a live core = (%d, %v), want (0, nil)", n, err)
	}
	if !mg.Domain.S.Keys.InUse(oldKey) {
		t.Fatal("key freed while a core still runs the old tenant")
	}
	// Forcing the reclaim directly must also refuse.
	if err := mg.Domain.ReclaimRegion(a); err == nil {
		t.Fatal("ReclaimRegion succeeded under a live PKRU")
	}
	// Once core 1 hits a gate, the kill lands and reclaim proceeds.
	mg.Step(1, 500)
	if on := mg.Domain.RunningOn(a); on >= 0 {
		t.Fatalf("a still current on core %d after the kill", on)
	}
	if n, err := mg.Reap(); err != nil || n != 1 {
		t.Fatalf("Reap = (%d, %v), want (1, nil)", n, err)
	}
	if mg.Domain.S.Keys.InUse(oldKey) {
		t.Fatal("key not freed after reclaim")
	}

	// The next launch recycles the lowest free key — the one just freed.
	b, err := mg.Launch("b", parkLoop(mg), 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Image.Region.Key != oldKey {
		t.Fatalf("new uProcess got key %d, want recycled key %d", b.Image.Region.Key, oldKey)
	}
	// The old region is gone: even the recycled key's owner cannot touch
	// the dead tenant's addresses (fresh bases are handed out, the old
	// range is unmapped).
	if _, f := mg.Domain.S.AS.Read(oldBase, 8, b.PKRU); f == nil || f.Kind != mem.FaultNotMapped {
		t.Fatalf("dead tenant's region still mapped: fault=%v", f)
	}
	// And the recycled key's new owner runs normally (the core idled when
	// its previous tenant died; wake it for the new one).
	if ok, err := mg.Domain.Wake(0); err != nil || !ok {
		t.Fatalf("Wake(0) = (%v, %v)", ok, err)
	}
	mg.Step(0, 2000)
	if b.Threads()[0].Switches == 0 {
		t.Fatal("recycled-key uProcess never ran")
	}
	if b.State == uproc.UProcTerminated {
		t.Fatal("recycled-key uProcess died")
	}
}
