package vessel

import (
	"fmt"

	"vessel/internal/cpu"
	"vessel/internal/faultinject"
	"vessel/internal/obs"
	"vessel/internal/obs/journey"
	"vessel/internal/sim"
	"vessel/internal/smas"
	"vessel/internal/trace"
	"vessel/internal/uproc"
)

// Manager is VESSEL's control plane (§5.1): the standalone auxiliary
// program that creates SMAS, processes uProcess creation and destruction
// commands, and owns the scheduling domain's resources. It is a thin,
// user-facing layer over uproc.Domain — the mechanism model — and is what
// the examples and the Table 1 microbenchmark drive.
type Manager struct {
	Domain *uproc.Domain
	eng    *sim.Engine
	m      *cpu.Machine
	named  map[string]*uproc.UProc
	// zombies are destroyed uProcesses awaiting region reclamation
	// (termination is lazy, §5.1 — cores apply the kill at their next
	// privileged entry).
	zombies []*uproc.UProc

	// Chaos-harness state (chaos.go): supervised uProcesses with restart
	// policies, the attached fault injector, and the containment event
	// log shared with the domain.
	supervised []*supervised
	injector   *faultinject.Injector
	events     *trace.EventLog

	// Cluster-scheduled mode (executor.go): the per-NUMA executor cache
	// and the executors currently bound to granted cores. Nil until
	// SetClusterManaged.
	exec      *execCache
	executors map[int]*Executor
}

// NewManager boots a scheduling domain on a fresh simulated machine with
// the given number of cores.
func NewManager(cores int, costs *cpu.CostModel) (*Manager, error) {
	return NewManagerOn(sim.NewEngine(), cores, costs)
}

// AttachObs installs the observability layer across the manager's domain
// (WRPKRU, gates, UINTR, pkeys, kills) and enables the manager's own
// restart spans. Nil is a no-op.
func (mg *Manager) AttachObs(o *obs.Observer) { mg.Domain.AttachObs(o) }

// AttachJourney installs request-journey tracing across the manager's
// domain seams (gates, UINTR dispositions and deferred windows, kill
// dumps). Nil is a no-op.
func (mg *Manager) AttachJourney(t *journey.Tracer) { mg.Domain.AttachJourney(t) }

// Launch creates a uProcess from a program (fork of the hosting kProcess,
// SMAS attach, load with code inspection) and pins its main thread to the
// given core's FIFO queue.
func (mg *Manager) Launch(name string, p *smas.Program, core int) (*uproc.UProc, error) {
	if _, dup := mg.named[name]; dup {
		return nil, fmt.Errorf("vessel: uProcess %q already exists", name)
	}
	if core < 0 || core >= mg.m.NumCores() {
		return nil, fmt.Errorf("vessel: core %d out of range", core)
	}
	if mg.Domain.Fenced(core) {
		return nil, fmt.Errorf("vessel: core %d is fenced", core)
	}
	if mg.Domain.Offline(core) {
		return nil, fmt.Errorf("vessel: core %d is not granted to this domain", core)
	}
	u, err := mg.Domain.CreateUProc(name, p)
	if err != nil {
		return nil, err
	}
	mg.Domain.AttachThread(core, u.Threads()[0])
	mg.named[name] = u
	return u, nil
}

// Lookup finds a launched uProcess by name.
func (mg *Manager) Lookup(name string) (*uproc.UProc, bool) {
	u, ok := mg.named[name]
	return u, ok
}

// Destroy sends the kill command for a uProcess; cores apply it lazily at
// their next privileged entry (§5.1).
func (mg *Manager) Destroy(name string) error {
	u, ok := mg.named[name]
	if !ok {
		return fmt.Errorf("vessel: no uProcess %q", name)
	}
	delete(mg.named, name)
	mg.zombies = append(mg.zombies, u)
	return mg.Domain.DestroyUProc(u)
}

// Reap reclaims the regions and protection keys of destroyed uProcesses
// whose termination has landed. It returns how many were reclaimed;
// uProcesses whose cores have not yet processed the kill stay pending.
func (mg *Manager) Reap() (int, error) {
	reclaimed := 0
	kept := make([]*uproc.UProc, 0, len(mg.zombies))
	for i, u := range mg.zombies {
		// Stay pending while the kill has not landed or a core still
		// runs a thread of u — reclaiming then would recycle the pkey
		// under a live PKRU (the libmpk stale-key pitfall).
		if u.State != uproc.UProcTerminated || mg.Domain.RunningOn(u) >= 0 {
			kept = append(kept, u)
			continue
		}
		if err := mg.Domain.ReclaimRegion(u); err != nil {
			// Zombies already reclaimed this pass must leave the list —
			// keeping them would reclaim (and double-free the pkey of)
			// the same region on the next call. The failed one and the
			// not-yet-examined tail stay pending.
			mg.zombies = append(kept, mg.zombies[i:]...)
			return reclaimed, err
		}
		reclaimed++
	}
	mg.zombies = kept
	return reclaimed, nil
}

// ZombiesSettled reports whether every destroyed uProcess's lazy
// termination has landed: the kill applied and no core still running one
// of its threads — the point at which Reap can reclaim them all.
func (mg *Manager) ZombiesSettled() bool {
	for _, u := range mg.zombies {
		if u.State != uproc.UProcTerminated || mg.Domain.RunningOn(u) >= 0 {
			return false
		}
	}
	return true
}

// DrainZombies drives the domain until every destroyed uProcess's
// termination has landed, stepping placeable cores in small quanta and
// waking idle ones so queued kill commands are applied. It stops at
// event quiescence — zombies settled, or no core ran an instruction and
// the engine has nothing pending — rather than after a fixed step count.
// It reports whether the zombies settled.
func (mg *Manager) DrainZombies(quantum int) (bool, error) {
	if quantum <= 0 {
		quantum = 500
	}
	// The round bound is a backstop against a runaway live uProcess
	// keeping cores busy forever; quiescence normally stops the loop
	// long before.
	const maxRounds = 1 << 10
	for round := 0; round < maxRounds; round++ {
		if mg.ZombiesSettled() {
			return true, nil
		}
		ran := 0
		for core := 0; core < mg.m.NumCores(); core++ {
			if mg.Domain.Fenced(core) || mg.Domain.Offline(core) {
				continue
			}
			c := mg.m.Core(core)
			if c.Fault != nil || c.Stalled {
				continue
			}
			if c.Halted {
				// A halted core still drains its command queue (where the
				// kill lands) on wake.
				if _, err := mg.Domain.Wake(core); err != nil {
					return false, err
				}
			}
			ran += c.Run(quantum)
		}
		if ran == 0 {
			if mg.eng.Pending() == 0 {
				return mg.ZombiesSettled(), nil
			}
			mg.eng.Step()
		}
	}
	return mg.ZombiesSettled(), nil
}

// Start begins execution on a core (first thread dispatch).
func (mg *Manager) Start(core int) error { return mg.Domain.StartCore(core) }

// Step runs up to n instructions on a core, returning how many executed.
// Execution goes through the core's superblock engine; Core.Run's
// step-count contract guarantees the returned count (and the core's
// cycle accounting) is exactly what n per-instruction Steps would give,
// so callers may sum counts across quanta without drift.
func (mg *Manager) Step(core, n int) int { return mg.m.Core(core).Run(n) }

// RunTimesliced drives a core for totalSteps instructions, injecting a
// scheduler preemption (the Uintr path) every quantumSteps — time-slicing
// for applications that never park voluntarily. It returns the number of
// preemptions injected. A core that stops because of an uncontained fault
// (a crash in the trusted runtime, or outside any uProcess) surfaces that
// fault as an error; a core that merely went idle (quiescence) returns
// nil — callers can tell a crashed core from a finished one. Quantum
// boundaries are exact under superblock fusion: Run splits a fused block
// at the budget, so preemptions land after precisely quantumSteps
// retired instructions, never mid-block.
func (mg *Manager) RunTimesliced(core, totalSteps, quantumSteps int) (int, error) {
	if quantumSteps <= 0 {
		return 0, fmt.Errorf("vessel: quantum must be positive")
	}
	injected := 0
	for done := 0; done < totalSteps; {
		n := quantumSteps
		if rem := totalSteps - done; n > rem {
			n = rem
		}
		ran := mg.m.Core(core).Run(n)
		done += ran
		if ran < n {
			if f := mg.m.Core(core).Fault; f != nil {
				return injected, fmt.Errorf("vessel: core %d crashed: %w", core, f)
			}
			break // core idled (UMWAIT): quiescence, not a crash
		}
		if err := mg.Domain.Preempt(core, uproc.SchedCommand{}); err != nil {
			return injected, err
		}
		injected++
	}
	return injected, nil
}

// Machine exposes the underlying simulated machine.
func (mg *Manager) Machine() *cpu.Machine { return mg.m }

// Engine exposes the simulation engine (for Uintr delivery timing).
func (mg *Manager) Engine() *sim.Engine { return mg.eng }
