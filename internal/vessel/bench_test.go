package vessel

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/workload"
)

// BenchmarkSimulatorThroughput measures the layer-2 simulator's host cost:
// one full colocation run per iteration (requests simulated per host
// second are reported as a custom metric).
func BenchmarkSimulatorThroughput(b *testing.B) {
	var totalReqs uint64
	for i := 0; i < b.N; i++ {
		mc := workload.NewLApp("memcached", workload.Memcached(), 4e6)
		cfg := sched.Config{
			Seed:     uint64(i + 1),
			Cores:    8,
			Duration: 10 * sim.Millisecond,
			Warmup:   2 * sim.Millisecond,
			Apps:     []*workload.App{mc, workload.Linpack()},
			Costs:    cpu.Default(),
		}
		res, err := Simulator{}.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		a, _ := res.App("memcached")
		totalReqs += a.Completed
	}
	b.ReportMetric(float64(totalReqs)/b.Elapsed().Seconds(), "sim-reqs/s")
}
