package vessel

import (
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"vessel/internal/cpu"
	"vessel/internal/obs"
	"vessel/internal/obs/journey"
	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/workload"
)

// benchRun executes one full colocation run, optionally with the
// observability layers attached. mutate adjusts the baseline config (nil
// Obs, nil Journey) for the variant under test — the guard we care about:
// everything off must cost within noise of the pre-obs simulator.
func benchRun(b *testing.B, mutate func(cfg *sched.Config)) {
	b.Helper()
	var totalReqs uint64
	for i := 0; i < b.N; i++ {
		mc := workload.NewLApp("memcached", workload.Memcached(), 4e6)
		cfg := sched.Config{
			Seed:     uint64(i + 1),
			Cores:    8,
			Duration: 10 * sim.Millisecond,
			Warmup:   2 * sim.Millisecond,
			Apps:     []*workload.App{mc, workload.Linpack()},
			Costs:    cpu.Default(),
		}
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := Simulator{}.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		a, _ := res.App("memcached")
		totalReqs += a.Completed
	}
	b.ReportMetric(float64(totalReqs)/b.Elapsed().Seconds(), "sim-reqs/s")
}

// BenchmarkSimulatorThroughput measures the layer-2 simulator's host cost:
// one full colocation run per iteration (requests simulated per host
// second are reported as a custom metric). Observability disabled — the
// default configuration and the baseline for the <2% overhead guard
// (see DESIGN.md §10).
func BenchmarkSimulatorThroughput(b *testing.B) {
	benchRun(b, nil)
}

// BenchmarkSimulatorThroughputObs is the same run with span timelines,
// profiling, and the metrics registry enabled (default ring size).
// Compare against BenchmarkSimulatorThroughput to measure the cost of
// turning observability on.
func BenchmarkSimulatorThroughputObs(b *testing.B) {
	benchRun(b, func(cfg *sched.Config) { cfg.Obs = obs.New(0) })
}

// BenchmarkSimulatorThroughputJourney adds request-journey tracing on top
// of the observability layer: every request mints a span tree and the
// flight recorder runs at its default capacity. Compare against
// BenchmarkSimulatorThroughputObs for the absolute cost; the CI journey
// job gates the paired ratio below (see DESIGN.md §15).
func BenchmarkSimulatorThroughputJourney(b *testing.B) {
	benchRun(b, func(cfg *sched.Config) {
		cfg.Obs = obs.New(0)
		cfg.Journey = journey.New()
	})
}

// BenchmarkJourneyOverheadPaired measures the journey-on cost as a ratio,
// not a pair of absolute numbers: every iteration runs the same seeded
// colocation twice — obs-only and obs+journey, alternating which goes
// first — and accumulates wall time per variant. Because both runs in a
// pair see near-identical machine state (frequency scaling, cache
// residency, co-tenant load), the reported overhead-pct is stable where
// comparing two separately-run benchmarks is not. The CI journey job
// takes the minimum across repetitions as a regression tripwire — see
// DESIGN.md §15 for the measured numbers and the gate's rationale.
func BenchmarkJourneyOverheadPaired(b *testing.B) {
	benchJourneyPaired(b, journey.New)
}

// BenchmarkJourneyOverheadSampledPaired is the same paired measurement
// with 1-in-16 request sampling — the production-style configuration the
// CI soft gate tracks. Sampling skips span-tree construction for 15 of 16
// requests, so its overhead should sit well below the trace-everything
// variant's.
func BenchmarkJourneyOverheadSampledPaired(b *testing.B) {
	benchJourneyPaired(b, func() *journey.Tracer {
		return journey.NewTracer(journey.Config{SampleEvery: 16})
	})
}

func benchJourneyPaired(b *testing.B, mkTracer func() *journey.Tracer) {
	// GC pacing is pinned for the duration: each timed region runs with
	// the collector off and the previous run's garbage is collected at
	// the untimed barrier below. Allocation cost stays in the measurement;
	// collector scheduling noise (which swamps a 5% signal) does not.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var tObs, tJourney time.Duration
	for i := 0; i < b.N; i++ {
		for k := 0; k < 2; k++ {
			mc := workload.NewLApp("memcached", workload.Memcached(), 4e6)
			cfg := sched.Config{
				Seed:     uint64(i + 1),
				Cores:    8,
				Duration: 10 * sim.Millisecond,
				Warmup:   2 * sim.Millisecond,
				Apps:     []*workload.App{mc, workload.Linpack()},
				Costs:    cpu.Default(),
				Obs:      obs.New(0),
			}
			withJourney := (i+k)%2 == 1
			if withJourney {
				cfg.Journey = mkTracer()
			}
			// Each timed run starts from a freshly-collected heap so one
			// variant's garbage cannot tax the other's timed region.
			runtime.GC()
			start := time.Now()
			if _, err := (Simulator{}).Run(cfg); err != nil {
				b.Fatal(err)
			}
			d := time.Since(start)
			if withJourney {
				tJourney += d
			} else {
				tObs += d
			}
		}
	}
	b.ReportMetric((tJourney.Seconds()/tObs.Seconds()-1)*100, "overhead-pct")
	b.ReportMetric(tObs.Seconds()*1000/float64(b.N), "obs-ms")
	b.ReportMetric(tJourney.Seconds()*1000/float64(b.N), "journey-ms")
	b.ReportMetric(0, "ns/op") // wall time is split across variants; ns/op is not meaningful here
}
