package vessel

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/obs"
	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/workload"
)

// benchRun executes one full colocation run, optionally with the
// observability layer attached. makeObs returns nil for the disabled
// path — the guard we care about: obs off must cost within noise of
// the pre-obs simulator.
func benchRun(b *testing.B, makeObs func() *obs.Observer) {
	b.Helper()
	var totalReqs uint64
	for i := 0; i < b.N; i++ {
		mc := workload.NewLApp("memcached", workload.Memcached(), 4e6)
		cfg := sched.Config{
			Seed:     uint64(i + 1),
			Cores:    8,
			Duration: 10 * sim.Millisecond,
			Warmup:   2 * sim.Millisecond,
			Apps:     []*workload.App{mc, workload.Linpack()},
			Costs:    cpu.Default(),
			Obs:      makeObs(),
		}
		res, err := Simulator{}.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		a, _ := res.App("memcached")
		totalReqs += a.Completed
	}
	b.ReportMetric(float64(totalReqs)/b.Elapsed().Seconds(), "sim-reqs/s")
}

// BenchmarkSimulatorThroughput measures the layer-2 simulator's host cost:
// one full colocation run per iteration (requests simulated per host
// second are reported as a custom metric). Observability disabled — the
// default configuration and the baseline for the <2% overhead guard
// (see DESIGN.md §10).
func BenchmarkSimulatorThroughput(b *testing.B) {
	benchRun(b, func() *obs.Observer { return nil })
}

// BenchmarkSimulatorThroughputObs is the same run with span timelines,
// profiling, and the metrics registry enabled (default ring size).
// Compare against BenchmarkSimulatorThroughput to measure the cost of
// turning observability on.
func BenchmarkSimulatorThroughputObs(b *testing.B) {
	benchRun(b, func() *obs.Observer { return obs.New(0) })
}
