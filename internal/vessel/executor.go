package vessel

// Executor cache and the manager-side actuation of cluster core grants
// and revokes — the lower level of two-level scheduling. When the
// cluster grants a core, the domain binds an *executor* to it: the run
// context (upcall stack, per-core scheduler state) a granted core needs
// before it can dispatch threads. Executors are lazily allocated and
// recycled through a per-NUMA-node cache keyed off a simple
// core→node map, so a domain that churns through grants on the same
// node reuses warm contexts instead of allocating fresh ones — the
// NRK executor-cache idea.

import (
	"fmt"

	"vessel/internal/uproc"
)

// Executor is the run context a domain binds to a granted core: upcall
// stack metadata plus recycling bookkeeping.
type Executor struct {
	// ID is the executor's allocation order within its domain.
	ID int
	// Node is the NUMA node whose cache owns this executor; an executor
	// never migrates across nodes (its stacks are node-local memory).
	Node int
	// BoundCore is the core the executor currently backs, or -1 while it
	// sits in the cache.
	BoundCore int
	// Binds counts how many grants this executor has served — Binds > 1
	// means the cache recycled it.
	Binds int
	// UpcallStackTop is the executor's dedicated upcall stack cursor
	// (metadata only; the simulated runtime stacks live in the SMAS).
	UpcallStackTop uint64
}

// execCache is the per-NUMA-node executor free list.
type execCache struct {
	coresPerNode int
	free         [][]*Executor
	nextID       int
	allocs       int
	recycles     int
}

func (ec *execCache) node(core int) int {
	if ec.coresPerNode <= 0 {
		return 0
	}
	n := core / ec.coresPerNode
	if n >= len(ec.free) {
		n = len(ec.free) - 1
	}
	return n
}

// get pops a cached executor for the core's node, or allocates one.
func (ec *execCache) get(core int) *Executor {
	n := ec.node(core)
	if l := len(ec.free[n]); l > 0 {
		e := ec.free[n][l-1]
		ec.free[n] = ec.free[n][:l-1]
		e.BoundCore = core
		e.Binds++
		ec.recycles++
		return e
	}
	e := &Executor{ID: ec.nextID, Node: n, BoundCore: core, Binds: 1,
		UpcallStackTop: uint64(0x7f00_0000_0000 + ec.nextID*0x10000)}
	ec.nextID++
	ec.allocs++
	return e
}

// put returns an executor to its node's free list.
func (ec *execCache) put(e *Executor) {
	e.BoundCore = -1
	ec.free[e.Node] = append(ec.free[e.Node], e)
}

// SetClusterManaged switches the manager into cluster-scheduled mode:
// every core is released to the cluster (offline, empty, halted) and the
// per-NUMA executor cache is initialized with the given core→node
// granularity. Cores come back one grant at a time via GrantCore. Must
// be called before any uProcess is launched.
func (mg *Manager) SetClusterManaged(coresPerNode int) error {
	if len(mg.named) > 0 || len(mg.zombies) > 0 {
		return fmt.Errorf("vessel: cannot enter cluster-managed mode with live uProcesses")
	}
	if coresPerNode <= 0 {
		coresPerNode = mg.m.NumCores()
	}
	nodes := (mg.m.NumCores() + coresPerNode - 1) / coresPerNode
	mg.exec = &execCache{coresPerNode: coresPerNode, free: make([][]*Executor, nodes)}
	mg.executors = make(map[int]*Executor)
	for core := 0; core < mg.m.NumCores(); core++ {
		// Install the architectural hooks once (StartCore on an offline
		// core halts without dispatching), then release the core.
		if _, err := mg.Domain.ReleaseCore(core, nil); err != nil {
			return err
		}
		if err := mg.Domain.StartCore(core); err != nil {
			return err
		}
	}
	return nil
}

// ClusterManaged reports whether the manager is in cluster-scheduled mode.
func (mg *Manager) ClusterManaged() bool { return mg.exec != nil }

// CoreOnline reports whether the domain may place work on the core: it is
// granted (not offline) and not fenced.
func (mg *Manager) CoreOnline(core int) bool {
	return core >= 0 && core < mg.m.NumCores() &&
		!mg.Domain.Fenced(core) && !mg.Domain.Offline(core)
}

// OnlineCores lists the cores the domain currently owns, ascending.
func (mg *Manager) OnlineCores() []int {
	var out []int
	for i := 0; i < mg.m.NumCores(); i++ {
		if mg.CoreOnline(i) {
			out = append(out, i)
		}
	}
	return out
}

// GrantCore actuates a CoreGranted upcall: the core is admitted back
// under the domain's management and an executor is bound to it from the
// per-node cache. The core comes back idle; Wake dispatches once work is
// queued.
func (mg *Manager) GrantCore(core int) error {
	if mg.exec == nil {
		return fmt.Errorf("vessel: manager is not cluster-managed")
	}
	if mg.CoreOnline(core) {
		return fmt.Errorf("vessel: core %d already granted", core)
	}
	if err := mg.Domain.AdmitCore(core); err != nil {
		return err
	}
	e := mg.exec.get(core)
	mg.executors[core] = e
	mg.event("grant.core", fmt.Sprintf("core=%d exec=%d binds=%d", core, e.ID, e.Binds))
	return nil
}

// revokeDrainSteps bounds how long RevokeCore steps a busy core waiting
// for its running thread to reach a gate boundary.
const revokeDrainSteps = 200_000

// RevokeCore actuates a CoreRevoked upcall: queued threads are re-homed
// round-robin onto the cores the domain still owns, a running thread is
// kicked (Uintr preemption) and the core stepped until the release
// drains at its gate boundary, supervised workloads pinned to the core
// are re-pinned, and the executor returns to its node's cache. It
// returns the number of threads moved to surviving cores.
func (mg *Manager) RevokeCore(core int) (int, error) {
	if mg.exec == nil {
		return 0, fmt.Errorf("vessel: manager is not cluster-managed")
	}
	if !mg.CoreOnline(core) {
		return 0, fmt.Errorf("vessel: core %d is not granted", core)
	}
	var targets []int
	for _, i := range mg.OnlineCores() {
		if i != core && mg.m.Core(i).Fault == nil {
			targets = append(targets, i)
		}
	}
	busy := mg.Domain.Current(core) != nil
	moved, err := mg.Domain.ReleaseCore(core, targets)
	if err != nil {
		return 0, err
	}
	if busy {
		// Force the running thread to a gate boundary now rather than at
		// its next voluntary park: queue an (empty) scheduler command and
		// kick the core, then step it until the release drains.
		if err := mg.Domain.Preempt(core, uproc.SchedCommand{}); err != nil {
			return moved, err
		}
		c := mg.m.Core(core)
		for i := 0; i < revokeDrainSteps && !c.Halted && c.Fault == nil; i += 64 {
			if c.Run(64) == 0 {
				break
			}
		}
		if !c.Halted && c.Fault == nil {
			return moved, fmt.Errorf("vessel: core %d did not drain within %d steps", core, revokeDrainSteps)
		}
		if mg.Domain.Current(core) == nil && len(targets) > 0 {
			moved++ // the formerly-running thread re-homed at the gate
		}
	}
	// Re-pin supervised workloads exactly as fencing does, so their next
	// restart lands on a core the domain still owns.
	if len(targets) > 0 {
		i := 0
		for _, s := range mg.supervised {
			if s.core == core {
				s.core = targets[i%len(targets)]
				i++
				mg.event("revoke.rehome", fmt.Sprintf("uproc=%s core=%d", s.name, s.core))
			}
		}
	}
	if e := mg.executors[core]; e != nil {
		mg.exec.put(e)
		delete(mg.executors, core)
	}
	mg.event("revoke.core", fmt.Sprintf("core=%d moved=%d", core, moved))
	return moved, nil
}

// ExecutorOn returns the executor bound to a granted core, if any.
func (mg *Manager) ExecutorOn(core int) *Executor { return mg.executors[core] }

// ExecCacheStats reports executor allocations and cache recycles since
// the manager entered cluster-managed mode.
func (mg *Manager) ExecCacheStats() (allocs, recycles int) {
	if mg.exec == nil {
		return 0, 0
	}
	return mg.exec.allocs, mg.exec.recycles
}

// Occupancy is the number of uProcesses the manager is responsible for:
// live named uProcesses plus zombies still awaiting reclamation. The
// cluster layer keys per-domain stepping off this rather than its own
// launch bookkeeping, so uProcesses launched directly on the manager
// still get scheduled.
func (mg *Manager) Occupancy() int { return len(mg.named) + len(mg.zombies) }

// Backlog is the domain's total runqueue depth (threads waiting for a
// core, not counting the ones running) — the queue-buildup signal the
// µs-latency cluster policy consumes.
func (mg *Manager) Backlog() int {
	total := 0
	for i := 0; i < mg.m.NumCores(); i++ {
		total += len(mg.Domain.Runqueue(i))
	}
	return total
}
