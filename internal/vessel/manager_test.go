package vessel

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/smas"
	"vessel/internal/uproc"
)

func parkLoop(mg *Manager) *smas.Program {
	a := cpu.NewAssembler()
	a.Label("loop")
	a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	a.Emit(cpu.Call{Target: mg.Domain.GatePark.Entry})
	a.JmpTo("loop")
	return &smas.Program{Name: "loop", Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

func TestManagerLifecycle(t *testing.T) {
	mg, err := NewManager(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ua, err := mg.Launch("a", parkLoop(mg), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Launch("a", parkLoop(mg), 0); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := mg.Launch("oob", parkLoop(mg), 5); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	ub, err := mg.Launch("b", parkLoop(mg), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Start(0); err != nil {
		t.Fatal(err)
	}
	mg.Step(0, 3000)
	if ua.Threads()[0].Switches == 0 || ub.Threads()[0].Switches == 0 {
		t.Fatal("both uProcesses should have run")
	}
	got, ok := mg.Lookup("a")
	if !ok || got != ua {
		t.Fatal("lookup")
	}
	if err := mg.Destroy("a"); err != nil {
		t.Fatal(err)
	}
	if err := mg.Destroy("a"); err == nil {
		t.Fatal("double destroy accepted")
	}
	mg.Step(0, 3000)
	if ua.State != uproc.UProcTerminated {
		t.Fatal("a not terminated")
	}
	if ub.State == uproc.UProcTerminated {
		t.Fatal("b should survive")
	}
	if mg.Machine() == nil || mg.Engine() == nil {
		t.Fatal("accessors")
	}
}

func TestRunTimeslicedFairness(t *testing.T) {
	// Two uProcesses that never park share one core fairly under
	// scheduler-driven time slicing — preemption makes run-to-completion
	// apps schedulable (§4.4's second primitive).
	mg, err := NewManager(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	spin := func(name string) *smas.Program {
		a := cpu.NewAssembler()
		a.Label("loop")
		a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
		a.JmpTo("loop")
		return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
	}
	ua, err := mg.Launch("a", spin("a"), 0)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := mg.Launch("b", spin("b"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Start(0); err != nil {
		t.Fatal(err)
	}
	injected, err := mg.RunTimesliced(0, 40_000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if injected < 30 {
		t.Fatalf("injected = %d", injected)
	}
	_, preempts := mg.Domain.CoreStats(0)
	if preempts < 30 {
		t.Fatalf("preemptions = %d", preempts)
	}
	sa, sb := ua.Threads()[0].Switches, ub.Threads()[0].Switches
	if sa < 10 || sb < 10 {
		t.Fatalf("switches: a=%d b=%d", sa, sb)
	}
	diff := int64(sa) - int64(sb)
	if diff < -2 || diff > 2 {
		t.Fatalf("unfair slicing: a=%d b=%d", sa, sb)
	}
	if _, err := mg.RunTimesliced(0, 100, 0); err == nil {
		t.Fatal("zero quantum accepted")
	}
}
