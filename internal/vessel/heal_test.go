package vessel

import (
	"strings"
	"testing"

	"vessel/internal/sim"
	"vessel/internal/smas"
	"vessel/internal/trace"
	"vessel/internal/uproc"
)

// TestCancelPendingDropsScheduledRelaunch is the stale-event regression for
// domain teardown: a supervised relaunch scheduled on the shared engine must
// be cancellable, so it cannot fire into whatever replaces the domain.
func TestCancelPendingDropsScheduledRelaunch(t *testing.T) {
	eng := sim.NewEngine()
	mg, err := NewManagerOn(eng, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	mg.UseEvents(trace.NewEventLog(256))
	_, err = mg.Supervise("crash", func() *smas.Program { return crasher(mg, "crash") }, 0,
		RestartPolicy{Backoff: sim.Second, MaxBackoff: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Start(0); err != nil {
		t.Fatal(err)
	}
	// Run the core until the crasher has wild-stored and been contained.
	mg.m.Core(0).Run(5000)
	u, ok := mg.Lookup("crash")
	if !ok || u.State != uproc.UProcTerminated {
		t.Fatalf("crasher not contained: found=%v", ok)
	}
	// Supervision notices the death and schedules the backed-off relaunch.
	if err := mg.PollSupervised(); err != nil {
		t.Fatal(err)
	}
	if eng.Pending() == 0 {
		t.Fatal("no relaunch scheduled")
	}
	n := mg.CancelPending()
	if n < 1 {
		t.Fatalf("cancelled %d events, want >= 1", n)
	}
	if eng.Pending() != 0 {
		t.Fatalf("%d events survived the cancel", eng.Pending())
	}
	// Drain virtual time far past the backoff: the cancelled relaunch must
	// not resurrect the uProcess.
	eng.Run(eng.Now().Add(10 * sim.Second))
	eng.RunAll(1 << 20)
	if restarts, _ := mg.Supervised("crash"); restarts != 0 {
		t.Fatalf("cancelled relaunch still fired: restarts=%d", restarts)
	}
	if _, ok := mg.Lookup("crash"); ok {
		t.Fatal("crasher resurrected after CancelPending")
	}
	if mg.events.CountByName("cancel.pending") != 1 {
		t.Fatalf("cancel not logged:\n%s", mg.events.String())
	}
	// Idempotent: nothing left to cancel.
	if n := mg.CancelPending(); n != 0 {
		t.Fatalf("second cancel found %d events", n)
	}
}

// TestFenceCoreRehomesAndRefusesPlacement covers manager-level fencing:
// queued work moves to the surviving core, and both Launch and the chaos
// scheduler refuse the fenced core afterwards.
func TestFenceCoreRehomesAndRefusesPlacement(t *testing.T) {
	mg, err := NewManager(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	mg.UseEvents(trace.NewEventLog(256))
	for _, name := range []string{"a", "b"} {
		if _, err := mg.Launch(name, spinner(name), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := mg.FenceCore(0); err != nil {
		t.Fatal(err)
	}
	if !mg.CoreFenced(0) || mg.CoreFenced(1) {
		t.Fatal("fence state wrong")
	}
	if mg.FencedCores() != 1 {
		t.Fatalf("fenced cores = %d", mg.FencedCores())
	}
	if got := len(mg.Domain.Runqueue(0)); got != 0 {
		t.Fatalf("fenced core still queues %d threads", got)
	}
	if got := len(mg.Domain.Runqueue(1)); got != 2 {
		t.Fatalf("survivor got %d threads, want 2", got)
	}
	if _, err := mg.Launch("c", spinner("c"), 0); err == nil ||
		!strings.Contains(err.Error(), "fenced") {
		t.Fatalf("launch on fenced core: %v", err)
	}
	// Fencing is idempotent.
	if err := mg.FenceCore(0); err != nil {
		t.Fatal(err)
	}
	if mg.FencedCores() != 1 {
		t.Fatal("re-fence changed state")
	}
	// The chaos loop schedules only the survivor; the run must still make
	// progress with core 0 withdrawn.
	if err := mg.Start(1); err != nil {
		t.Fatal(err)
	}
	if _, err := mg.RunChaos(ChaosConfig{Steps: 2000, Quantum: 200}); err != nil {
		t.Fatal(err)
	}
	if cyc := mg.m.Core(0).Cycles; cyc != 0 {
		t.Fatalf("fenced core executed %d cycles", cyc)
	}
	if mg.m.Core(1).Cycles == 0 {
		t.Fatal("survivor made no progress")
	}
}
