package vessel

// Scheduler policies: the pluggable decision point the failsafe wrapper
// (internal/selfheal) guards. A policy sees one core's state per quantum
// and decides whether to preempt; the chaos loop and the CoreScheduler both
// route their preemption decisions through one, so a buggy policy — one
// that panics, or that burns unbounded cycles deciding — can be swapped for
// the round-robin failsafe at a single seam without stopping the run.

// PolicyView is the per-core state a policy decides on. It is a value
// snapshot: policies cannot reach back into the domain, which is what makes
// a mid-run policy swap safe.
type PolicyView struct {
	// Core is the core being decided.
	Core int
	// RanFull reports that the current thread consumed its whole quantum
	// (it never parked voluntarily).
	RanFull bool
	// QueueLen is the number of threads waiting on the core's runqueue.
	QueueLen int
	// Idle reports that the core executed nothing this quantum.
	Idle bool
}

// PolicyDecision is a policy's verdict for one core-quantum.
type PolicyDecision struct {
	// Preempt kicks the core with a scheduler Uintr.
	Preempt bool
	// CostCycles is the modeled cost of making this decision, charged to
	// the deciding entity. The failsafe wrapper compares it against the
	// per-decision budget; a policy that "thinks" past the budget is
	// treated as wedged and replaced.
	CostCycles int64
}

// Policy decides preemption per core per quantum.
type Policy interface {
	Name() string
	Decide(PolicyView) PolicyDecision
}

// RoundRobinPolicy preempts any thread that consumed its full quantum —
// the minimal, obviously-correct discipline. It is both the default chaos
// policy (matching the historical RunChaos behaviour) and the failsafe a
// broken policy is swapped for.
type RoundRobinPolicy struct{}

// Name implements Policy.
func (RoundRobinPolicy) Name() string { return "roundrobin" }

// Decide implements Policy.
func (RoundRobinPolicy) Decide(v PolicyView) PolicyDecision {
	return PolicyDecision{Preempt: v.RanFull}
}

// FairSharePolicy preempts a full-quantum thread only when siblings wait —
// an uncontested thread keeps the core, saving the switch. This matches
// the CoreScheduler's historical discipline.
type FairSharePolicy struct{}

// Name implements Policy.
func (FairSharePolicy) Name() string { return "fairshare" }

// Decide implements Policy.
func (FairSharePolicy) Decide(v PolicyView) PolicyDecision {
	return PolicyDecision{Preempt: v.RanFull && v.QueueLen > 0}
}
