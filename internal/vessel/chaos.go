package vessel

// This file is the containment/chaos side of the manager (the tentpole of
// the robustness milestone): supervised uProcesses restarted with capped
// exponential backoff in virtual time, and a chaos run loop that drives
// every core under time slicing while a faultinject.Injector attacks the
// domain. The invariants it upholds:
//
//   - a crashing uProcess is killed, its region and protection key are
//     reclaimed (only once no core still runs it), and it is restarted
//     after a backoff — so a crash loop costs bounded pkeys and bounded
//     core time;
//   - an uncontained fault (trusted-runtime crash) fail-stops exactly one
//     core, and the rest of the domain keeps running;
//   - with identical seeds and plans, the whole run — injections, kills,
//     restarts, reclaims — replays identically.

import (
	"fmt"

	"vessel/internal/faultinject"
	"vessel/internal/obs"
	"vessel/internal/sim"
	"vessel/internal/smas"
	"vessel/internal/trace"
	"vessel/internal/uproc"
)

// RestartPolicy caps how eagerly a supervised uProcess is relaunched after
// a crash.
type RestartPolicy struct {
	// MaxRestarts caps relaunches; zero means unlimited.
	MaxRestarts int
	// Backoff is the delay in virtual time before the first relaunch;
	// each successive crash doubles it up to MaxBackoff. A healthy
	// uptime longer than MaxBackoff resets the doubling.
	Backoff    sim.Duration
	MaxBackoff sim.Duration
}

func (p RestartPolicy) withDefaults() RestartPolicy {
	if p.Backoff <= 0 {
		p.Backoff = 10 * sim.Microsecond
	}
	if p.MaxBackoff < p.Backoff {
		p.MaxBackoff = 100 * p.Backoff
	}
	return p
}

// supervised tracks one uProcess under a restart policy.
type supervised struct {
	name   string
	build  func() *smas.Program
	core   int
	policy RestartPolicy

	u         *uproc.UProc
	backoff   sim.Duration
	lastStart sim.Time
	restarts  int
	pending   bool // a relaunch event is scheduled
	// relaunch is the handle of the scheduled relaunch, so a domain
	// teardown can cancel it (CancelPending) before the event fires into
	// a manager that no longer exists.
	relaunch sim.Event
	gaveUp   bool
	err      error
}

// event records into the manager's containment log, when attached.
func (mg *Manager) event(name, detail string) {
	if mg.events != nil {
		mg.events.Record(mg.eng.Now(), name, detail)
	}
}

// Events returns the manager's containment event log, creating it (and
// attaching it to the domain) on first use.
func (mg *Manager) Events() *trace.EventLog {
	if mg.events == nil {
		mg.events = trace.NewEventLog(1 << 16)
		mg.Domain.Events = mg.events
	}
	return mg.events
}

// EnableWatchdog arms the domain's per-uProcess cycle-budget watchdog:
// past soft cycles without a voluntary park a thread counts as
// overrunning, past hard cycles its uProcess is killed.
func (mg *Manager) EnableWatchdog(softCycles, hardCycles int64) {
	mg.Domain.Watchdog = &uproc.Watchdog{SoftBudgetCycles: softCycles, HardBudgetCycles: hardCycles}
}

// Watchdog returns the armed watchdog, or nil.
func (mg *Manager) Watchdog() *uproc.Watchdog { return mg.Domain.Watchdog }

// InjectFaults attaches a fault plan; the injector fires during RunChaos.
// It also ensures the event log exists, so injections are traced.
func (mg *Manager) InjectFaults(plan faultinject.Plan) *faultinject.Injector {
	mg.Events()
	mg.injector = faultinject.New(mg.Domain, plan)
	return mg.injector
}

// Injector returns the attached injector, or nil.
func (mg *Manager) Injector() *faultinject.Injector { return mg.injector }

// Supervise launches a uProcess under a restart policy: when it dies (a
// contained fault, a watchdog kill, or an explicit destroy), its region
// and key are reclaimed and build() is relaunched after the policy's
// backoff in virtual time. build runs per launch, because program images
// are installed fresh each time.
func (mg *Manager) Supervise(name string, build func() *smas.Program, core int, policy RestartPolicy) (*uproc.UProc, error) {
	policy = policy.withDefaults()
	u, err := mg.Launch(name, build(), core)
	if err != nil {
		return nil, err
	}
	mg.Events()
	mg.supervised = append(mg.supervised, &supervised{
		name:      name,
		build:     build,
		core:      core,
		policy:    policy,
		u:         u,
		backoff:   policy.Backoff,
		lastStart: mg.eng.Now(),
	})
	return u, nil
}

// Supervised returns (restarts, gaveUp) for a supervised uProcess.
func (mg *Manager) Supervised(name string) (int, bool) {
	for _, s := range mg.supervised {
		if s.name == name {
			return s.restarts, s.gaveUp
		}
	}
	return 0, false
}

// pollSupervised reclaims dead supervised uProcesses and schedules their
// relaunches. Reclaim happens strictly before relaunch, so a crash loop
// recycles one pkey instead of exhausting the 13-key budget.
func (mg *Manager) pollSupervised() error {
	now := mg.eng.Now()
	for _, s := range mg.supervised {
		if s.pending || s.gaveUp || s.u == nil {
			continue
		}
		if s.u.State != uproc.UProcTerminated {
			// Healthy uptime past the backoff cap resets the doubling,
			// so a uProcess that crashes rarely is not punished forever.
			if now.Sub(s.lastStart) > s.policy.MaxBackoff {
				s.backoff = s.policy.Backoff
			}
			continue
		}
		if mg.Domain.RunningOn(s.u) >= 0 {
			continue // the lazy kill has not landed on every core yet
		}
		if err := mg.Domain.ReclaimRegion(s.u); err != nil {
			return err
		}
		delete(mg.named, s.name)
		if s.policy.MaxRestarts > 0 && s.restarts >= s.policy.MaxRestarts {
			s.gaveUp = true
			mg.event("restart.giveup", fmt.Sprintf("uproc=%s restarts=%d", s.name, s.restarts))
			continue
		}
		backoff := s.backoff
		if s.backoff < s.policy.MaxBackoff {
			s.backoff *= 2
			if s.backoff > s.policy.MaxBackoff {
				s.backoff = s.policy.MaxBackoff
			}
		}
		s.pending = true
		mg.event("restart.schedule", fmt.Sprintf("uproc=%s backoff=%v", s.name, backoff))
		sup := s
		scheduledAt := now
		s.relaunch = mg.eng.After(backoff, func() {
			sup.pending = false
			sup.restarts++
			sup.lastStart = mg.eng.Now()
			u, err := mg.Launch(sup.name, sup.build(), sup.core)
			if err != nil {
				sup.err = err
				sup.gaveUp = true
				mg.event("restart.fail", fmt.Sprintf("uproc=%s err=%v", sup.name, err))
				return
			}
			sup.u = u
			mg.event("restart", fmt.Sprintf("uproc=%s n=%d", sup.name, sup.restarts))
			// The restart span covers schedule→relaunch: the whole
			// backoff window the uProcess spent dead, on its home core.
			if o := mg.Domain.Obs; o != nil {
				o.Span(sup.core, scheduledAt, sup.lastStart, obs.CatRestart, sup.name)
				o.Reg().Inc("vessel.restarts")
			}
			if _, err := mg.Domain.Wake(sup.core); err != nil {
				sup.err = err
			}
		})
	}
	return nil
}

// ChaosConfig drives every core of the domain under time slicing, fault
// injection, the watchdog, and supervised restarts — the chaos-mode
// equivalent of RunTimesliced across the whole machine.
type ChaosConfig struct {
	// Steps is the per-core instruction budget for the run.
	Steps int
	// Quantum is the preemption (and injection/restart polling) interval
	// in instructions.
	Quantum int
	// Policy decides preemption per core per quantum; nil defaults to
	// RoundRobinPolicy, the historical behaviour. Wrap it in a
	// selfheal.Failsafe to survive policy panics and budget blowouts.
	Policy Policy
}

// ChaosReport summarises a chaos run.
type ChaosReport struct {
	Rounds      int
	Preemptions uint64
	// FatalCores lists cores fail-stopped by uncontained faults, in the
	// order they died.
	FatalCores []int
	// Restarts sums supervised relaunches; WatchdogKills and
	// ContainedFaults summarise the containment paths taken.
	Restarts        int
	WatchdogKills   uint64
	ContainedFaults uint64
}

// RunChaos runs all cores round-robin in fixed quanta. After each round it
// advances the discrete-event clock to the farthest core's cycle time
// (firing restart backoffs), fires due injections, and polls supervised
// uProcesses. Iteration order is fixed, so runs are deterministic.
func (mg *Manager) RunChaos(cfg ChaosConfig) (ChaosReport, error) {
	var rep ChaosReport
	if cfg.Quantum <= 0 {
		return rep, fmt.Errorf("vessel: quantum must be positive")
	}
	if cfg.Steps < cfg.Quantum {
		cfg.Steps = cfg.Quantum
	}
	pol := cfg.Policy
	if pol == nil {
		pol = RoundRobinPolicy{}
	}
	fatal := make(map[int]bool)
	markFatal := func(core int) {
		if !fatal[core] {
			fatal[core] = true
			rep.FatalCores = append(rep.FatalCores, core)
			mg.event("fatal.core", fmt.Sprintf("core=%d fault=%v", core, mg.m.Core(core).Fault))
		}
	}
	rounds := (cfg.Steps + cfg.Quantum - 1) / cfg.Quantum
	for round := 0; round < rounds; round++ {
		rep.Rounds++
		progressed := false
		for core := 0; core < mg.m.NumCores(); core++ {
			if fatal[core] || mg.Domain.Fenced(core) {
				continue
			}
			c := mg.m.Core(core)
			if c.Halted {
				if c.Fault != nil {
					markFatal(core)
					continue
				}
				ok, err := mg.Domain.Wake(core)
				if err != nil {
					return rep, err
				}
				if !ok {
					continue // nothing runnable; stay idle this round
				}
			}
			ran := c.Run(cfg.Quantum)
			if ran > 0 {
				progressed = true
			}
			if c.Halted && c.Fault != nil {
				markFatal(core)
				continue
			}
			dec := pol.Decide(PolicyView{
				Core:     core,
				RanFull:  ran == cfg.Quantum,
				QueueLen: len(mg.Domain.Runqueue(core)),
				Idle:     ran == 0,
			})
			// The decision's modeled cost lands on the decided core — the
			// scheduler's overhead is part of the tenant's timeline, which
			// keeps a costed policy deterministic in virtual time.
			c.Cycles += dec.CostCycles
			if dec.Preempt {
				if err := mg.Domain.Preempt(core, uproc.SchedCommand{}); err != nil {
					return rep, err
				}
				rep.Preemptions++
			}
		}
		mg.syncClock()
		if !progressed && mg.eng.Pending() > 0 {
			// Every core is idle but virtual-time work (a restart
			// backoff, a deferred delivery) is queued: core cycles will
			// never advance the clock, so fire the next event directly
			// or the run would spin its remaining rounds frozen in time.
			mg.eng.Step()
		}
		if mg.injector != nil {
			mg.injector.Step(mg.eng.Now())
		}
		if err := mg.pollSupervised(); err != nil {
			return rep, err
		}
	}
	for _, s := range mg.supervised {
		rep.Restarts += s.restarts
		if s.err != nil {
			return rep, s.err
		}
	}
	if wd := mg.Domain.Watchdog; wd != nil {
		rep.WatchdogKills = wd.Kills
	}
	for _, u := range mg.Domain.UProcs() {
		rep.ContainedFaults += uint64(u.FaultSignals)
	}
	return rep, nil
}

// syncClock advances the discrete-event clock to the farthest core's cycle
// time, firing any virtual-time events (restart backoffs) that became due.
func (mg *Manager) syncClock() {
	var maxNs float64
	for i := 0; i < mg.m.NumCores(); i++ {
		if ns := mg.m.NsFor(mg.m.Core(i).Cycles); ns > maxNs {
			maxNs = ns
		}
	}
	if t := sim.Time(maxNs); t > mg.eng.Now() {
		mg.eng.Run(t)
	}
}
