package vessel

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/workload"
)

func runVessel(t *testing.T, cfg sched.Config) sched.Result {
	t.Helper()
	res, err := Simulator{}.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func baseCfg(apps ...*workload.App) sched.Config {
	return sched.Config{
		Seed:     1,
		Cores:    8,
		Duration: 40 * sim.Millisecond,
		Warmup:   5 * sim.Millisecond,
		Apps:     apps,
		Costs:    cpu.Default(),
	}
}

func TestLAppAloneLowLoad(t *testing.T) {
	// 8 cores, 1µs service → capacity 8 Mops. At 2 Mops latency must be
	// low and throughput equal offered load.
	mc := workload.NewLApp("memcached", workload.Memcached(), 2e6)
	res := runVessel(t, baseCfg(mc))
	a, _ := res.App("memcached")
	if a.Latency.P50 > 3000 {
		t.Fatalf("p50 = %dns at 25%% load", a.Latency.P50)
	}
	if a.Latency.P999 > 50_000 {
		t.Fatalf("p999 = %dns at 25%% load", a.Latency.P999)
	}
	got := a.Tput.PerSecond()
	if got < 1.9e6 || got > 2.1e6 {
		t.Fatalf("throughput = %.2f Mops, want ~2", got/1e6)
	}
	if a.NormTput < 0.2 || a.NormTput > 0.3 {
		t.Fatalf("norm tput = %.3f, want ~0.25", a.NormTput)
	}
}

func TestColocationNearIdealTotalThroughput(t *testing.T) {
	// The headline VESSEL property (Fig. 9): colocating memcached with
	// Linpack keeps total normalized throughput near 1 across loads
	// (paper: 6.6% average decline).
	for _, loadFrac := range []float64{0.2, 0.5, 0.8} {
		mc := workload.NewLApp("memcached", workload.Memcached(), loadFrac*8e6)
		lp := workload.Linpack()
		res := runVessel(t, baseCfg(mc, lp))
		total := res.TotalNormTput()
		if total < 0.85 || total > 1.05 {
			t.Fatalf("load %.1f: total norm tput = %.3f, want ~1", loadFrac, total)
		}
		b, _ := res.App("linpack")
		wantB := 1 - loadFrac
		if b.NormTput < wantB-0.15 || b.NormTput > wantB+0.1 {
			t.Fatalf("load %.1f: B norm = %.3f, want ~%.2f", loadFrac, b.NormTput, wantB)
		}
	}
}

func TestColocationLatencyStaysLow(t *testing.T) {
	// Even at 80% load with a colocated B-app, VESSEL's P999 stays in
	// the tens of µs (paper Fig. 9: ~20-60µs at high load).
	mc := workload.NewLApp("memcached", workload.Memcached(), 0.8*8e6)
	res := runVessel(t, baseCfg(mc, workload.Linpack()))
	a, _ := res.App("memcached")
	if a.Latency.P999 > 100_000 {
		t.Fatalf("p999 = %.1fµs, want < 100µs", float64(a.Latency.P999)/1000)
	}
	if res.Preemptions == 0 {
		t.Fatal("colocation at 80% load must preempt BE cores")
	}
}

func TestOverloadExplodesLatency(t *testing.T) {
	mc := workload.NewLApp("memcached", workload.Memcached(), 1.2*8e6)
	res := runVessel(t, baseCfg(mc))
	a, _ := res.App("memcached")
	if a.Latency.P999 < 200_000 {
		t.Fatalf("p999 = %dns under overload, expected explosion", a.Latency.P999)
	}
}

func TestDenseColocationManyApps(t *testing.T) {
	// 10 L-apps on one core (Fig. 10 shape): aggregate throughput close
	// to a single app's at the same aggregate load.
	mk := func(n int, aggregate float64) (float64, int64) {
		apps := make([]*workload.App, n)
		for i := range apps {
			apps[i] = workload.NewLApp(string(rune('a'+i)), workload.Memcached(), aggregate/float64(n))
		}
		cfg := baseCfg(apps...)
		cfg.Cores = 1
		res := runVessel(t, cfg)
		var tput float64
		var p999 int64
		for _, ar := range res.Apps {
			tput += ar.Tput.PerSecond()
			if ar.Latency.P999 > p999 {
				p999 = ar.Latency.P999
			}
		}
		return tput, p999
	}
	t1, p1 := mk(1, 0.7e6)
	t10, p10 := mk(10, 0.7e6)
	if t10 < 0.9*t1 {
		t.Fatalf("10-app aggregate tput %.2f Mops << 1-app %.2f Mops", t10/1e6, t1/1e6)
	}
	// Tail grows only modestly (paper: VESSEL "almost unchanged").
	if p10 > 5*p1+50_000 {
		t.Fatalf("10-app p999 %.1fµs vs 1-app %.1fµs", float64(p10)/1000, float64(p1)/1000)
	}
}

func TestSiloHighServiceTimes(t *testing.T) {
	// Silo's 20µs median requests amortise switching: total normalized
	// throughput approaches ideal.
	rate := 0.7 * sched.IdealLCapacity(8, workload.Silo())
	silo := workload.NewLApp("silo", workload.Silo(), rate)
	cfg := baseCfg(silo, workload.Linpack())
	cfg.Duration = 200 * sim.Millisecond
	cfg.Warmup = 20 * sim.Millisecond
	res := runVessel(t, cfg)
	if total := res.TotalNormTput(); total < 0.9 {
		t.Fatalf("Silo colocation total norm tput = %.3f", total)
	}
}

func TestBandwidthRegulation(t *testing.T) {
	// With a bandwidth budget, membench's measured consumption must track
	// the target closely (Fig. 13b's VESSEL line).
	mb := workload.Membench()
	cfg := baseCfg(mb)
	cfg.BWTargetFrac = 0.3
	res := runVessel(t, cfg)
	b, _ := res.App("membench")
	target := 0.3 * cfg.Costs.MemBWTotal
	if b.AvgBWGBs > target*1.15 {
		t.Fatalf("measured %.1f GB/s exceeds target %.1f GB/s", b.AvgBWGBs, target)
	}
	if b.AvgBWGBs < target*0.5 {
		t.Fatalf("measured %.1f GB/s far below target %.1f GB/s (over-throttled)", b.AvgBWGBs, target)
	}
}

func TestCycleBreakdownSane(t *testing.T) {
	mc := workload.NewLApp("memcached", workload.Memcached(), 4e6)
	res := runVessel(t, baseCfg(mc, workload.Linpack()))
	bd := res.Cycles
	total := bd.Total()
	want := sim.Duration(8) * 40 * sim.Millisecond
	// All core-time must be accounted (within 1%).
	if total < want*99/100 || total > want*101/100 {
		t.Fatalf("breakdown total %v, want %v", total, want)
	}
	// VESSEL's overhead fraction is small (paper: ~1-3%).
	if f := bd.OverheadFrac(); f > 0.05 {
		t.Fatalf("overhead fraction %.3f, want < 5%%", f)
	}
	if bd.AppNs == 0 {
		t.Fatal("no app time")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() sched.Result {
		mc := workload.NewLApp("memcached", workload.Memcached(), 4e6)
		return runVessel(t, baseCfg(mc, workload.Linpack()))
	}
	a, b := run(), run()
	if a.Switches != b.Switches || a.Preemptions != b.Preemptions {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d", a.Switches, a.Preemptions, b.Switches, b.Preemptions)
	}
	la, _ := a.App("memcached")
	lb, _ := b.App("memcached")
	if la.Latency.P999 != lb.Latency.P999 || la.Completed != lb.Completed {
		t.Fatal("results differ across identical runs")
	}
}

func TestPriorityPreemptionProtectsHighPriorityTails(t *testing.T) {
	// §4.4: "preemption happens when a high-priority task is blocked by
	// a low-priority one". Memcached (1µs requests) shares two cores
	// with Silo (20–280µs requests). Without priorities, memcached
	// requests queue behind multi-hundred-µs Silo transactions; with a
	// higher priority, VESSEL preempts Silo mid-request at gate cost.
	run := func(mcPrio int) (int64, sched.Result) {
		mc := workload.NewLApp("memcached", workload.Memcached(), 0.25*2e6)
		mc.Priority = mcPrio
		silo := workload.NewLApp("silo", workload.Silo(), 0.5*sched.IdealLCapacity(2, workload.Silo()))
		cfg := baseCfg(mc, silo)
		cfg.Cores = 2
		cfg.Duration = 100 * sim.Millisecond
		cfg.Warmup = 20 * sim.Millisecond
		res := runVessel(t, cfg)
		a, _ := res.App("memcached")
		return a.Latency.P999, res
	}
	flatP999, _ := run(0)
	prioP999, prioRes := run(1)
	if prioP999 >= flatP999/3 {
		t.Fatalf("priority preemption should slash memcached's tail: %dns (prio) vs %dns (flat)",
			prioP999, flatP999)
	}
	if prioP999 > 60_000 {
		t.Fatalf("prioritised p999 = %dns, want tens of µs", prioP999)
	}
	// Silo still completes its work (requests resume, none lost).
	s, _ := prioRes.App("silo")
	if s.Completed < s.Offered*95/100 {
		t.Fatalf("silo lost requests: %d/%d", s.Completed, s.Offered)
	}
	if prioRes.Preemptions == 0 {
		t.Fatal("no preemptions recorded")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := (Simulator{}).Run(sched.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := (Simulator{}).Run(sched.Config{Cores: 1, Duration: 1000}); err == nil {
		t.Fatal("no apps accepted")
	}
}
