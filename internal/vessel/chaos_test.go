package vessel

import (
	"reflect"
	"strings"
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/faultinject"
	"vessel/internal/mem"
	"vessel/internal/sim"
	"vessel/internal/smas"
	"vessel/internal/stats"
	"vessel/internal/uproc"
)

// crasher parks once (giving siblings a slice), then wild-stores into the
// runtime region — a PKRU violation attributed to it and contained.
func crasher(mg *Manager, name string) *smas.Program {
	a := cpu.NewAssembler()
	a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	a.Emit(cpu.Call{Target: mg.Domain.GatePark.Entry})
	a.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: cpu.Word(smas.RuntimeBase)})
	a.Emit(cpu.Store{Src: cpu.RDX, Base: cpu.RCX})
	a.Emit(cpu.Halt{}) // unreachable: the store faults first
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

func spinner(name string) *smas.Program {
	a := cpu.NewAssembler()
	a.Label("loop")
	a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	a.JmpTo("loop")
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

func TestRunTimeslicedSurfacesCrash(t *testing.T) {
	// An uncontained fault (trusted-runtime crash) must surface as an
	// error, not be mistaken for quiescence.
	mg, err := NewManager(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Launch("a", parkLoop(mg), 0); err != nil {
		t.Fatal(err)
	}
	mg.InjectFaults(faultinject.Plan{Seed: 1, Faults: []faultinject.Fault{
		{Kind: faultinject.RuntimeCrash, Target: "a", At: 0},
	}})
	if err := mg.Start(0); err != nil {
		t.Fatal(err)
	}
	mg.Injector().Step(0)
	if _, err := mg.RunTimesliced(0, 10_000, 500); err == nil {
		t.Fatal("crashed core reported as quiescent")
	} else if !strings.Contains(err.Error(), "crashed") {
		t.Fatalf("crash error = %v", err)
	}
}

func TestRunTimeslicedQuiescenceIsNotAnError(t *testing.T) {
	// A core that idles — all threads exited, or a contained fault killed
	// the only tenant — returns nil: callers can tell the two apart.
	mg, err := NewManager(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	exiter := func() *smas.Program {
		a := cpu.NewAssembler()
		a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
		a.Emit(cpu.Call{Target: mg.Domain.GateExit.Entry})
		return &smas.Program{Name: "exit", Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
	}
	if _, err := mg.Launch("exit", exiter(), 0); err != nil {
		t.Fatal(err)
	}
	if err := mg.Start(0); err != nil {
		t.Fatal(err)
	}
	if _, err := mg.RunTimesliced(0, 10_000, 500); err != nil {
		t.Fatalf("quiescence surfaced as error: %v", err)
	}

	// Same for a contained crash of the only tenant.
	mg2, err := NewManager(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := mg2.Launch("bad", crasher(mg2, "bad"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := mg2.Start(0); err != nil {
		t.Fatal(err)
	}
	if _, err := mg2.RunTimesliced(0, 10_000, 500); err != nil {
		t.Fatalf("contained crash surfaced as core error: %v", err)
	}
	if bad.State != uproc.UProcTerminated {
		t.Fatal("crasher not terminated")
	}
	if c := mg2.Machine().Core(0); c.Fault != nil {
		t.Fatalf("contained crash fail-stopped the core: %v", c.Fault)
	}
}

// chaosRun builds one standard chaos scenario and runs it: a park-loop
// survivor and a supervised crash-looper sharing core 0, a runaway spinner
// on core 1 under the watchdog, and random Uintr tampering from the seed.
func chaosRun(t testing.TB, seed uint64) (ChaosReport, string, string) {
	t.Helper()
	mg, err := NewManager(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	mg.EnableWatchdog(2000, 8000)
	if _, err := mg.Launch("good", parkLoop(mg), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Launch("spin", spinner("spin"), 1); err != nil {
		t.Fatal(err)
	}
	_, err = mg.Supervise("crash", func() *smas.Program { return crasher(mg, "crash") }, 0,
		RestartPolicy{Backoff: 2 * sim.Microsecond, MaxBackoff: 8 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	inj := mg.InjectFaults(faultinject.Plan{
		Seed:          seed,
		Random:        6,
		RandomKinds:   []faultinject.Kind{faultinject.DropUintr, faultinject.DelayUintr},
		RandomCores:   2,
		RandomWindow:  200 * sim.Microsecond,
		RandomTargets: []string{"crash"},
	})
	for core := 0; core < 2; core++ {
		if err := mg.Start(core); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := mg.RunChaos(ChaosConfig{Steps: 120_000, Quantum: 500})
	if err != nil {
		t.Fatal(err)
	}
	return rep, mg.Events().String(), inj.Counters.String()
}

func TestChaosDeterminism(t *testing.T) {
	// Identical seed + plan must replay the whole run — injections, kills,
	// restarts, reclaims — event for event and counter for counter.
	rep1, ev1, ctr1 := chaosRun(t, 42)
	rep2, ev2, ctr2 := chaosRun(t, 42)
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("reports diverged:\n%+v\n%+v", rep1, rep2)
	}
	if ev1 != ev2 {
		t.Fatalf("event traces diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", ev1, ev2)
	}
	if ctr1 != ctr2 {
		t.Fatalf("counters diverged:\n%s\nvs\n%s", ctr1, ctr2)
	}
	// The run must actually exercise the machinery it claims to replay.
	if rep1.Restarts == 0 {
		t.Fatal("no supervised restarts happened")
	}
	if rep1.ContainedFaults == 0 {
		t.Fatal("no contained faults happened")
	}
	if rep1.WatchdogKills == 0 {
		t.Fatal("watchdog never fired")
	}
	for _, want := range []string{"contain.fault", "restart", "reclaim", "watchdog.kill"} {
		if !strings.Contains(ev1, want) {
			t.Fatalf("event trace lacks %q:\n%s", want, ev1)
		}
	}
	// A different seed must not replay the same tampering schedule.
	_, _, ctr3 := chaosRun(t, 43)
	if ctr1 == ctr3 {
		t.Fatal("different seeds produced identical counters")
	}
}

// survivorRun runs a park-loop survivor on one core next to either a calm
// park-loop peer (baseline) or a supervised crash-looper (chaos), recording
// the survivor's activation gaps — the latency a tenant observes while a
// neighbour crash-loops.
func survivorRun(t testing.TB, chaotic bool) (ChaosReport, *Manager, stats.Summary) {
	t.Helper()
	mg, err := NewManager(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	good, err := mg.Launch("good", parkLoop(mg), 0)
	if err != nil {
		t.Fatal(err)
	}
	h := stats.NewHistogram()
	var lastNs float64
	started := false
	mg.Domain.OnActivate = func(core int, th *uproc.Thread) {
		if th.U != good {
			return
		}
		ns := mg.Machine().NsFor(mg.Machine().Core(core).Cycles)
		if started {
			h.Record(int64(ns - lastNs))
		}
		started = true
		lastNs = ns
	}
	if chaotic {
		_, err = mg.Supervise("crash", func() *smas.Program { return crasher(mg, "crash") }, 0,
			RestartPolicy{Backoff: 1 * sim.Microsecond, MaxBackoff: 4 * sim.Microsecond})
	} else {
		_, err = mg.Launch("calm", parkLoop(mg), 0)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Start(0); err != nil {
		t.Fatal(err)
	}
	rep, err := mg.RunChaos(ChaosConfig{Steps: 800_000, Quantum: 400})
	if err != nil {
		t.Fatal(err)
	}
	return rep, mg, h.Summarize()
}

func TestFaultContainmentAndReclaim(t *testing.T) {
	baseRep, _, base := survivorRun(t, false)
	chaosRep, mg, chaos := survivorRun(t, true)

	// The crash loop must actually loop: >= 100 crash/restart cycles. Each
	// cycle reclaims the region and key before relaunching, so surviving
	// 100 cycles on a 13-key budget is itself the leak proof — a leaked
	// key would exhaust the allocator (and fail the run) after ~11.
	if chaosRep.Restarts < 100 {
		t.Fatalf("restarts = %d, want >= 100", chaosRep.Restarts)
	}
	if chaosRep.ContainedFaults < 100 {
		t.Fatalf("contained faults = %d, want >= 100", chaosRep.ContainedFaults)
	}
	if len(chaosRep.FatalCores) != 0 {
		t.Fatalf("contained crashes fail-stopped cores %v", chaosRep.FatalCores)
	}

	// Key accounting balances: at most the survivor and the current
	// crasher incarnation hold keys.
	if avail := mg.Domain.S.Keys.Available(); avail < smas.MaxUProcs-2 {
		t.Fatalf("pkeys leaked across restarts: %d of %d available", avail, smas.MaxUProcs)
	}

	// The survivor kept running and its tail latency stayed bounded: the
	// blast radius of a crash loop is a bounded slowdown, not a stall.
	if good, ok := mg.Lookup("good"); !ok || good.State == uproc.UProcTerminated {
		t.Fatal("survivor died")
	}
	if base.Count == 0 || chaos.Count == 0 {
		t.Fatalf("no activations recorded: base n=%d chaos n=%d", base.Count, chaos.Count)
	}
	if base.P999 <= 0 {
		t.Fatalf("degenerate baseline p999 %d", base.P999)
	}
	if limit := 10 * base.P999; chaos.P999 > limit {
		t.Fatalf("survivor p999 %dns under chaos exceeds 10x fault-free %dns", chaos.P999, base.P999)
	}
	_ = baseRep
}

func TestChaosRestartsWhileAllCoresIdle(t *testing.T) {
	// A supervised crasher alone in the domain: after it dies every core
	// is idle, so core cycles stop advancing virtual time — the restart
	// backoff must still fire (via the event queue), not freeze the run.
	mg, err := NewManager(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = mg.Supervise("crash", func() *smas.Program { return crasher(mg, "crash") }, 0,
		RestartPolicy{Backoff: 5 * sim.Microsecond, MaxBackoff: 40 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Start(0); err != nil {
		t.Fatal(err)
	}
	rep, err := mg.RunChaos(ChaosConfig{Steps: 100_000, Quantum: 500})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts < 5 {
		t.Fatalf("restarts = %d: backoffs starved with all cores idle", rep.Restarts)
	}
}

func TestSuperviseGivesUpAtMaxRestarts(t *testing.T) {
	mg, err := NewManager(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Launch("good", parkLoop(mg), 0); err != nil {
		t.Fatal(err)
	}
	_, err = mg.Supervise("crash", func() *smas.Program { return crasher(mg, "crash") }, 0,
		RestartPolicy{MaxRestarts: 3, Backoff: 1 * sim.Microsecond, MaxBackoff: 4 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Start(0); err != nil {
		t.Fatal(err)
	}
	rep, err := mg.RunChaos(ChaosConfig{Steps: 400_000, Quantum: 400})
	if err != nil {
		t.Fatal(err)
	}
	restarts, gaveUp := mg.Supervised("crash")
	if !gaveUp {
		t.Fatalf("supervisor did not give up (restarts=%d)", restarts)
	}
	if restarts != 3 || rep.Restarts != 3 {
		t.Fatalf("restarts = %d (report %d), want 3", restarts, rep.Restarts)
	}
	if mg.Events().CountByName("restart.giveup") != 1 {
		t.Fatalf("event log:\n%s", mg.Events().String())
	}
	// After giving up the key is back in the pool and only the survivor
	// holds one.
	if avail := mg.Domain.S.Keys.Available(); avail != smas.MaxUProcs-1 {
		t.Fatalf("available keys = %d, want %d", avail, smas.MaxUProcs-1)
	}
}

func TestSuperviseBackoffDoublesAndCaps(t *testing.T) {
	mg, err := NewManager(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Launch("good", parkLoop(mg), 0); err != nil {
		t.Fatal(err)
	}
	_, err = mg.Supervise("crash", func() *smas.Program { return crasher(mg, "crash") }, 0,
		RestartPolicy{Backoff: 1 * sim.Microsecond, MaxBackoff: 8 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Start(0); err != nil {
		t.Fatal(err)
	}
	if _, err := mg.RunChaos(ChaosConfig{Steps: 600_000, Quantum: 400}); err != nil {
		t.Fatal(err)
	}
	// The schedule events carry the backoff used each time: 1µs, 2µs, 4µs,
	// then pinned at the 8µs cap.
	var backoffs []string
	for _, e := range mg.Events().Events() {
		if e.Name == "restart.schedule" {
			backoffs = append(backoffs, e.Detail)
		}
	}
	if len(backoffs) < 5 {
		t.Fatalf("only %d restart.schedule events", len(backoffs))
	}
	for i, want := range []string{"backoff=1.000µs", "backoff=2.000µs", "backoff=4.000µs", "backoff=8.000µs", "backoff=8.000µs"} {
		if !strings.Contains(backoffs[i], want) {
			t.Fatalf("schedule %d = %q, want %q", i, backoffs[i], want)
		}
	}
}

func BenchmarkFaultContainment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, _, _ := survivorRun(b, true)
		if rep.Restarts == 0 {
			b.Fatal("no restarts")
		}
	}
}
