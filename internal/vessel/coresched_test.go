package vessel

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/sim"
	"vessel/internal/smas"
)

func spinProg(name string) *smas.Program {
	a := cpu.NewAssembler()
	a.Label("loop")
	a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	a.JmpTo("loop")
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

func TestCoreSchedulerTimeslicesSpinners(t *testing.T) {
	// Two never-parking uProcesses on one core: the scan-loop scheduler
	// alone (no test-driven preemption) keeps them both progressing via
	// Uintr time slices.
	mg, err := NewManager(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ua, err := mg.Launch("a", spinProg("a"), 0)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := mg.Launch("b", spinProg("b"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Start(0); err != nil {
		t.Fatal(err)
	}
	s := NewCoreScheduler(mg, 50*sim.Microsecond)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	mg.RunFor(2 * sim.Millisecond)
	if s.Preemptions < 10 {
		t.Fatalf("preemptions = %d", s.Preemptions)
	}
	sa, sb := ua.Threads()[0].Switches, ub.Threads()[0].Switches
	if sa < 5 || sb < 5 {
		t.Fatalf("switches a=%d b=%d", sa, sb)
	}
	diff := int64(sa) - int64(sb)
	if diff < -2 || diff > 2 {
		t.Fatalf("unfair slicing: a=%d b=%d", sa, sb)
	}
	s.Stop()
	before := s.Preemptions
	mg.RunFor(500 * sim.Microsecond)
	if s.Preemptions != before {
		t.Fatal("scheduler kept preempting after Stop")
	}
}

func TestCoreSchedulerDispatchesBestEffortToIdleCores(t *testing.T) {
	// A short-lived foreground uProcess exits; the scheduler fills the
	// idle core from the global best-effort queue (§4.5).
	mg, err := NewManager(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	oneshot, err := mg.Domain.CreateUProc("oneshot", &smas.Program{
		Name: "oneshot",
		Asm: func() *cpu.Assembler {
			a := cpu.NewAssembler()
			a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
			a.Emit(cpu.Call{Target: mg.Domain.GateExit.Entry})
			return a
		}(),
		PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The batch uProcess's thread lives on the global BE queue, not on
	// any core FIFO — exactly how §4.5 treats best-effort work.
	be, err := mg.Domain.CreateUProc("batch", spinProg("batch"))
	if err != nil {
		t.Fatal(err)
	}
	s := NewCoreScheduler(mg, 0)
	beWorker := be.Threads()[0]
	s.AddBestEffort(beWorker)

	mg.Domain.AttachThread(0, oneshot.Threads()[0])
	if err := mg.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	mg.RunFor(1 * sim.Millisecond)
	if s.Dispatches == 0 {
		t.Fatal("idle core never received best-effort work")
	}
	if beWorker.Switches == 0 {
		t.Fatal("best-effort thread never ran")
	}
}
