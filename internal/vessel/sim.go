// Package vessel implements VESSEL (§5): the userspace core scheduler built
// on the uProcess abstraction. It contains two connected pieces:
//
//   - Manager (manager.go): the layer-1 control plane over uproc.Domain —
//     creating SMAS, launching uProcesses from programs, and driving
//     the mechanism model (used by the Table 1 microbenchmark and the
//     examples);
//   - Simulator (this file): the layer-2 performance model implementing
//     sched.Scheduler with VESSEL's one-level policy (§4.5): per-core FIFO
//     queues holding threads of *different* applications, a global
//     best-effort queue, sub-µs Uintr preemption of BE cores, and
//     bandwidth-aware core regulation at microsecond granularity.
//
// The switching costs the Simulator charges (VesselParkSwitch ≈ 161 ns,
// VesselPreemptSwitch ≈ 260 ns) are the calibrated equivalents of what the
// layer-1 machine measures instruction-by-instruction.
package vessel

import (
	"vessel/internal/obs"
	"vessel/internal/obs/journey"
	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/stats"
	"vessel/internal/workload"
)

// Simulator implements sched.Scheduler with VESSEL's one-level policy.
type Simulator struct{}

// Name returns "VESSEL".
func (Simulator) Name() string { return "VESSEL" }

// coreState is a worker core in the layer-2 model.
type coreState struct {
	id int
	// fifo is the per-core FIFO of resident L-app worker threads,
	// rotated on every park (§4.5).
	fifo []*workload.App
	// runningL/runningB describe the current occupant.
	runningL *workload.App
	runningB *workload.App
	busy     bool // an event will fire for this core
	// In-flight request state, for §4.4 priority preemption.
	curReq    *workload.Request
	reqEv     sim.Event
	reqFrom   sim.Time
	reqInflat float64

	act   sched.Activity
	lastT sim.Time
	// bStart marks when the current B run began (for useful-time
	// accrual); bPending guards against double preemption.
	bStart    sim.Time
	preempted bool
}

type vesselRun struct {
	cfg  sched.Config
	eng  *sim.Engine
	rng  *sim.RNG
	acct sched.Accountant
	bw   *sched.BW

	cores    []*coreState
	lApps    []*workload.App
	bApps    []*workload.App
	reacting map[*workload.App]bool // single-flight preemption chains
	beQ      []*workload.App        // global BE queue (entries = schedulable B threads)
	bwCap    float64                // B-app bandwidth budget in GB/s (0 = unlimited)
	endAt    sim.Time
	funnel   map[*workload.App]sim.Duration // per-B useful ns (contention-deflated)
	bWall    map[*workload.App]sim.Duration // per-B wall ns on cores
	lWork    map[*workload.App]sim.Duration // per-L-app core time on requests

	switches, preempts, reallocs uint64
}

// Run executes the configured workload under VESSEL's scheduler.
func (Simulator) Run(cfg sched.Config) (sched.Result, error) {
	if err := cfg.Validate(); err != nil {
		return sched.Result{}, err
	}
	r := &vesselRun{
		cfg:      cfg,
		eng:      sim.NewEngine(),
		rng:      sim.NewRNG(cfg.Seed),
		bw:       sched.NewBW(cfg.Costs.MemBWTotal),
		funnel:   make(map[*workload.App]sim.Duration),
		bWall:    make(map[*workload.App]sim.Duration),
		lWork:    make(map[*workload.App]sim.Duration),
		reacting: make(map[*workload.App]bool),
	}
	r.endAt = sim.Time(cfg.Warmup + cfg.Duration)
	r.acct = sched.Accountant{From: sim.Time(cfg.Warmup), To: r.endAt, Trace: cfg.Trace, Obs: cfg.Obs, Journey: cfg.Journey}
	if cfg.BWTargetFrac > 0 {
		r.bwCap = cfg.BWTargetFrac * cfg.Costs.MemBWTotal
	}
	for _, a := range cfg.Apps {
		if a.Kind == workload.LatencyCritical {
			r.lApps = append(r.lApps, a)
		} else {
			r.bApps = append(r.bApps, a)
		}
	}
	for i := 0; i < cfg.Cores; i++ {
		c := &coreState{id: i, act: sched.ActIdle}
		// Every L-app has a worker thread resident on every core.
		c.fifo = append(c.fifo, r.lApps...)
		r.cores = append(r.cores, c)
	}
	// One BE thread per core per B-app in the global queue.
	for i := 0; i < cfg.Cores; i++ {
		for _, b := range r.bApps {
			r.beQ = append(r.beQ, b)
		}
	}
	// Arrival processes. Every request's dispatch signal crosses the
	// domain scheduler — a single FIFO control-plane server whose
	// saturation caps core scalability (Figure 12).
	ctrl := cfg.Costs.VesselCtrlFor(cfg.Cores)
	var ctrlFree sim.Time
	for _, a := range r.lApps {
		app := a
		if err := app.GenerateArrivals(r.eng, r.rng.Fork(uint64(len(app.Name))+7), r.endAt, func(req *workload.Request) {
			// Mint the request's journey at arrival; the control-plane
			// dispatch delay below counts as queueing (the request is
			// waiting for the scheduler to learn about it).
			req.J = cfg.Journey.Mint(app.Name, req.Arrive)
			if ctrl <= 0 {
				r.onArrival(app)
				return
			}
			stolen := app.StealNewest()
			now := r.eng.Now()
			start := now
			if ctrlFree > start {
				start = ctrlFree
			}
			done := start.Add(ctrl)
			ctrlFree = done
			r.eng.At(done, func() {
				if stolen != nil {
					app.Requeue(stolen)
				}
				r.onArrival(app)
			})
		}); err != nil {
			return sched.Result{}, err
		}
	}
	// Initial fill: give idle cores to BE threads.
	r.eng.At(0, func() {
		for _, c := range r.cores {
			if !c.busy {
				r.serveNext(c)
			}
		}
	})
	// Bandwidth regulation scan (µs-scale, §6.3.4). Runs only with a
	// configured budget.
	if r.bwCap > 0 {
		var scan func()
		scan = func() {
			r.regulateBW()
			if r.eng.Now() < r.endAt {
				r.eng.After(1*sim.Microsecond, scan)
			}
		}
		r.eng.At(0, scan)
	}
	r.eng.At(sim.Time(cfg.Warmup), func() { r.bw.ResetAvg(r.eng.Now()) })

	r.eng.Run(r.endAt)
	return r.collect()
}

// setAct transitions a core's accounting activity.
func (r *vesselRun) setAct(c *coreState, act sched.Activity) {
	now := r.eng.Now()
	label := ""
	switch {
	case c.runningL != nil:
		label = c.runningL.Name
	case c.runningB != nil:
		label = c.runningB.Name
	}
	r.acct.AccrueCore(c.id, c.act, c.lastT, now, label)
	c.act = act
	c.lastT = now
}

// preemptDelayThreshold is the queueing delay after which the scheduler
// preempts a BE core rather than waiting for a natural completion. VESSEL
// reuses Caladan's queueing-delay metric (§4.5); with sub-µs switches the
// threshold can be tight.
const preemptDelayThreshold = 1 * sim.Microsecond

// onArrival reacts to a new request for app: wake an idle core, or start a
// reaction chain that preempts BE cores once queueing delay exceeds the
// threshold.
func (r *vesselRun) onArrival(app *workload.App) {
	// Prefer an idle core (UMWAIT wake + dispatch).
	for _, c := range r.cores {
		if !c.busy && c.runningB == nil && c.runningL == nil {
			r.wakeIdle(c, app)
			return
		}
	}
	if !r.reacting[app] {
		r.reacting[app] = true
		r.armReaction(app)
	}
}

// armReaction schedules the scheduler's next look at app's queue: one scan
// interval plus the Uintr delivery it would take to act.
func (r *vesselRun) armReaction(app *workload.App) {
	cm := r.cfg.Costs
	r.eng.After(cm.VesselSchedScan+cm.UintrDeliver, func() {
		now := r.eng.Now()
		if len(app.Queue) == 0 || now >= r.endAt {
			r.reacting[app] = false
			return
		}
		if app.QueueDelay(now) >= preemptDelayThreshold {
			preempted := false
			for _, c := range r.cores {
				if c.runningB != nil && !c.preempted {
					r.preemptB(c)
					preempted = true
					break
				}
			}
			// No best-effort core to take: preempt a core serving a
			// strictly lower-priority L-app mid-request (§4.4).
			if !preempted {
				for _, c := range r.cores {
					if c.curReq != nil && c.runningL != nil &&
						c.runningL.Priority < app.Priority {
						r.preemptL(c)
						break
					}
				}
			}
			if preempted && len(app.Queue) > 0 {
				// The head request's dispatch was gated on the user
				// interrupt that just landed: split the last UintrDeliver
				// of its wait retroactively into a uintr segment (the
				// clamp keeps conservation exact if it arrived mid-flight).
				j := app.Queue[0].J
				j.To(journey.SegUintr, now.Add(-cm.UintrDeliver))
				j.To(journey.SegQueue, now)
			}
		}
		// Keep watching until the queue drains: more BE cores may need
		// preempting, or a natural completion may clear it.
		r.armReaction(app)
	})
}

// wakeIdle dispatches an idle core to serve app.
func (r *vesselRun) wakeIdle(c *coreState, app *workload.App) {
	cm := r.cfg.Costs
	c.busy = true
	r.setAct(c, sched.ActSwitch)
	r.switches++
	r.eng.After(cm.UmwaitWake+cm.VesselParkSwitch, func() {
		c.busy = false
		r.serveNext(c)
	})
}

// preemptB stops the BE thread on c (Uintr handler → gate → switch) and
// lets the core pick up L work.
func (r *vesselRun) preemptB(c *coreState) {
	cm := r.cfg.Costs
	b := c.runningB
	if b == nil {
		return
	}
	c.preempted = true
	r.preempts++
	r.reallocs++
	now := r.eng.Now()
	// The preemption arrived by user interrupt: the reaction timer included
	// one UintrDeliver of flight, so the send→delivery window ends now.
	if o := r.cfg.Obs; o != nil {
		o.Span(c.id, now.Add(-cm.UintrDeliver), now, obs.CatUintr, b.Name)
		o.Reg().Inc("vessel.uintr.preempt")
	}
	// Accrue the B run's useful time, deflated by memory contention.
	useful := r.acct.Clip(c.bStart, now)
	if useful > 0 {
		r.funnel[b] += sim.Duration(float64(useful) / r.bw.Inflation())
		r.bWall[b] += useful
	}
	r.bw.Remove(now, b.AvgBW())
	c.runningB = nil
	c.preempted = false
	// Preempted BE threads go back to the global BE queue (§4.5).
	r.beQ = append(r.beQ, b)
	c.busy = true
	r.setAct(c, sched.ActSwitch)
	r.switches++
	r.eng.After(cm.VesselPreemptSwitch, func() {
		c.busy = false
		r.serveNext(c)
	})
}

// serveNext is the core's dispatch loop: first L work from the per-core
// FIFO (rotating), then a BE thread from the global queue, else idle.
func (r *vesselRun) serveNext(c *coreState) {
	if c.busy {
		return
	}
	now := r.eng.Now()
	if now >= r.endAt {
		r.setAct(c, sched.ActIdle)
		return
	}
	// Continue the current L app run-to-completion with no switch.
	if c.runningL != nil {
		if req := c.runningL.Dequeue(); req != nil {
			r.startRequest(c, c.runningL, req)
			return
		}
		// Parks: rotate the FIFO so siblings get the core next time.
		c.runningL = nil
	}
	// Scan the per-core FIFO for an L thread with pending work, highest
	// priority first (§4.4); equal priorities keep FIFO rotation order.
	bestPrio := 0
	found := false
	for _, app := range c.fifo {
		if len(app.Queue) > 0 && (!found || app.Priority > bestPrio) {
			bestPrio = app.Priority
			found = true
		}
	}
	if found {
		for i := 0; i < len(c.fifo); i++ {
			app := c.fifo[0]
			c.fifo = append(c.fifo[1:], app)
			if len(app.Queue) > 0 && app.Priority == bestPrio {
				req := app.Dequeue()
				// Switching threads costs one park-path gate trip.
				req.J.To(journey.SegGate, now)
				cm := r.cfg.Costs
				c.busy = true
				r.setAct(c, sched.ActSwitch)
				r.switches++
				r.eng.After(cm.VesselParkSwitch, func() {
					c.busy = false
					r.startRequest(c, app, req)
				})
				return
			}
		}
	}
	// No L work anywhere on this core: run best-effort if the bandwidth
	// budget allows.
	for i := 0; i < len(r.beQ); i++ {
		b := r.beQ[i]
		if r.bwCap > 0 && r.bw.Demand()+b.AvgBW() > r.bwCap {
			continue
		}
		r.beQ = append(r.beQ[:i], r.beQ[i+1:]...)
		r.startB(c, b)
		return
	}
	r.setAct(c, sched.ActIdle)
}

// startRequest runs one L request (or its preempted remainder)
// run-to-completion.
func (r *vesselRun) startRequest(c *coreState, app *workload.App, req *workload.Request) {
	now := r.eng.Now()
	if req.Start == 0 {
		req.Start = now
	}
	if req.Remaining <= 0 {
		req.Remaining = req.Service
	}
	c.runningL = app
	c.busy = true
	c.curReq = req
	c.reqFrom = now
	c.reqInflat = r.bw.Inflation()
	req.J.To(journey.SegRun, now)
	r.setAct(c, sched.ActApp)
	dur := sim.Duration(float64(req.Remaining)*c.reqInflat) + r.bw.StallNoise(r.rng)
	c.reqEv = r.eng.After(dur, func() {
		c.reqEv = sim.Event{}
		c.curReq = nil
		req.Remaining = 0
		req.Done = r.eng.Now()
		req.J.Finish(req.Done)
		app.Complete(req, sim.Time(r.cfg.Warmup))
		r.lWork[app] += r.acct.Clip(now, r.eng.Now())
		c.busy = false
		r.serveNext(c)
	})
}

// preemptL interrupts a core serving a lower-priority L request (§4.4:
// "preemption happens when a high-priority task is blocked by a
// low-priority one"): the in-flight request's remainder goes back to the
// head of its queue and the core re-dispatches through the gate.
func (r *vesselRun) preemptL(c *coreState) {
	req := c.curReq
	if req == nil || !c.reqEv.Pending() {
		return
	}
	now := r.eng.Now()
	r.eng.Cancel(c.reqEv)
	c.reqEv = sim.Event{}
	c.curReq = nil
	served := sim.Duration(float64(now.Sub(c.reqFrom)) / c.reqInflat)
	if served > req.Remaining {
		served = req.Remaining
	}
	req.Remaining -= served
	req.App.RequeueFront(req)
	req.J.To(journey.SegQueue, now)
	c.runningL = nil
	r.preempts++
	c.busy = true
	r.setAct(c, sched.ActSwitch)
	r.switches++
	r.eng.After(r.cfg.Costs.VesselPreemptSwitch, func() {
		c.busy = false
		r.serveNext(c)
	})
}

// startB puts a BE thread on the core; it runs until preempted.
func (r *vesselRun) startB(c *coreState, b *workload.App) {
	cm := r.cfg.Costs
	c.busy = true
	r.setAct(c, sched.ActSwitch)
	r.switches++
	r.reallocs++
	r.eng.After(cm.VesselParkSwitch, func() {
		c.busy = false
		c.runningB = b
		c.bStart = r.eng.Now()
		r.bw.Add(r.eng.Now(), b.AvgBW())
		r.setAct(c, sched.ActApp)
	})
}

// regulateBW enforces the B-app bandwidth budget at scan granularity:
// preempt BE cores while demand exceeds the budget.
func (r *vesselRun) regulateBW() {
	for r.bw.Demand() > r.bwCap {
		var victim *coreState
		for _, c := range r.cores {
			if c.runningB != nil && !c.preempted {
				victim = c
				break
			}
		}
		if victim == nil {
			return
		}
		r.preemptB(victim)
	}
	// Under budget: idle cores may pick BE work back up.
	for _, c := range r.cores {
		if !c.busy && c.runningB == nil && c.runningL == nil && len(r.beQ) > 0 {
			r.serveNext(c)
		}
	}
}

// collect finalises accounting and builds the result.
func (r *vesselRun) collect() (sched.Result, error) {
	now := r.eng.Now()
	for _, c := range r.cores {
		// Close out any running B accrual.
		if c.runningB != nil {
			useful := r.acct.Clip(c.bStart, now)
			if useful > 0 {
				r.funnel[c.runningB] += sim.Duration(float64(useful) / r.bw.Inflation())
				r.bWall[c.runningB] += useful
			}
		}
		// Close the span through setAct so it keeps its occupant label
		// (and reaches the obs timeline/profiler like every other accrual).
		r.setAct(c, c.act)
	}
	if o := r.cfg.Obs; o != nil {
		o.Reg().Add("vessel.switches", r.switches)
		o.Reg().Add("vessel.preempts", r.preempts)
		o.Reg().Add("vessel.reallocs", r.reallocs)
	}
	res := sched.Result{
		Scheduler:     "VESSEL",
		Cores:         r.cfg.Cores,
		Measured:      r.cfg.Duration,
		Cycles:        r.acct.Breakdown,
		Switches:      r.switches,
		Preemptions:   r.preempts,
		Reallocations: r.reallocs,
	}
	for _, a := range r.cfg.Apps {
		ar := sched.AppResult{
			Name:      a.Name,
			Kind:      a.Kind,
			Offered:   a.Offered,
			Completed: a.Completed,
		}
		if a.Kind == workload.LatencyCritical {
			ar.Latency = a.Lat.Summarize()
			ar.Tput = stats.Rate{Count: a.Lat.Count(), Elapsed: int64(r.cfg.Duration)}
			ar.LBusyNs = r.lWork[a]
		} else {
			ar.BUsefulNs = r.funnel[a]
			ar.BWallNs = r.bWall[a]
			ar.Tput = stats.Rate{Count: uint64(ar.BUsefulNs), Elapsed: int64(r.cfg.Duration)}
			// Aggregate bandwidth: per-core demand × average cores held.
			ar.AvgBWGBs = a.AvgBW() * float64(r.bWall[a]) / float64(r.cfg.Duration)
		}
		res.Apps = append(res.Apps, ar)
	}
	sched.Normalize(&res, r.cfg)
	return res, nil
}
