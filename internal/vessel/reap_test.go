package vessel

import (
	"strings"
	"testing"

	"vessel/internal/uproc"
)

// TestReapErrorDropsReclaimed pins the Reap error path: when reclaiming
// one zombie fails mid-pass, the zombies already reclaimed in that pass
// must leave the pending list. Keeping them would hand their regions to
// Domain.ReclaimRegion again on the next call — a double-free of an
// already-recycled protection key.
func TestReapErrorDropsReclaimed(t *testing.T) {
	mg, err := NewManager(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ua, err := mg.Launch("a", parkLoop(mg), 0)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := mg.Launch("b", parkLoop(mg), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Start(0); err != nil {
		t.Fatal(err)
	}
	mg.Step(0, 3000)
	if err := mg.Destroy("a"); err != nil {
		t.Fatal(err)
	}
	if err := mg.Destroy("b"); err != nil {
		t.Fatal(err)
	}
	mg.Step(0, 5000)
	if ua.State != uproc.UProcTerminated || ub.State != uproc.UProcTerminated {
		t.Fatalf("kills not landed: a=%v b=%v", ua.State, ub.State)
	}

	// Sabotage: free b's region out from under the manager, so Reap's own
	// reclaim of b fails with a key double-free.
	if err := mg.Domain.ReclaimRegion(ub); err != nil {
		t.Fatal(err)
	}
	availBefore := mg.Domain.S.Keys.Available()

	// First pass: a reclaims, b errors. a must be gone from the list.
	n, err := mg.Reap()
	if err == nil {
		t.Fatal("expected reclaim error for b")
	}
	if n != 1 {
		t.Fatalf("reclaimed %d before the error, want 1 (a)", n)
	}
	if got := mg.Domain.S.Keys.Available(); got != availBefore+1 {
		t.Fatalf("available keys = %d, want %d", got, availBefore+1)
	}

	// a's freed key is recycled to a fresh uProcess (the allocator hands
	// out the lowest free key).
	uc, err := mg.Launch("c", parkLoop(mg), 0)
	if err != nil {
		t.Fatal(err)
	}
	if uc.Image.Region.Key != ua.Image.Region.Key {
		t.Skipf("allocator did not recycle a's key (%d vs %d)", uc.Image.Region.Key, ua.Image.Region.Key)
	}

	// Second pass: only b may be retried. Before the fix the unfiltered
	// list still held a, and reclaiming it again freed a's recycled key
	// out from under the live uProcess c.
	n, err = mg.Reap()
	if err == nil || n != 0 {
		t.Fatalf("second reap: n=%d err=%v, want 0 and b's error", n, err)
	}
	if !strings.Contains(err.Error(), "not allocated") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !mg.Domain.S.Keys.InUse(uc.Image.Region.Key) {
		t.Fatal("live uProcess c lost its protection key to a stale zombie's re-reclaim")
	}
}
