package vessel

// Manager-level recovery surface used by the cluster self-healer
// (internal/selfheal): shared-engine construction so a restarted domain
// lives on the same virtual timeline as its predecessor, core fencing with
// supervised-workload re-homing, and teardown-time cancellation of the
// domain's pending events — the restart side of the stale-event hazard.

import (
	"fmt"

	"vessel/internal/cpu"
	"vessel/internal/sim"
	"vessel/internal/trace"
	"vessel/internal/uproc"
)

// NewManagerOn boots a scheduling domain on a fresh simulated machine that
// shares an existing event engine. A supervised domain restart constructs
// the replacement this way: fresh SMAS, fresh machine, same timeline — so
// the recovery's virtual-time accounting (MTTR) is continuous across the
// restart.
func NewManagerOn(eng *sim.Engine, cores int, costs *cpu.CostModel) (*Manager, error) {
	if costs == nil {
		costs = cpu.Default()
	}
	m := cpu.NewMachine(cores, costs)
	d, err := uproc.NewDomain(eng, m)
	if err != nil {
		return nil, err
	}
	return &Manager{Domain: d, eng: eng, m: m, named: make(map[string]*uproc.UProc)}, nil
}

// NewVirtualManagerOn is NewManagerOn with libmpk-style virtualized
// protection keys enabled on the fresh SMAS before any region exists, so
// the domain's uProcess density is no longer capped by the 13 hardware
// app keys.
func NewVirtualManagerOn(eng *sim.Engine, cores int, costs *cpu.CostModel) (*Manager, error) {
	mg, err := NewManagerOn(eng, cores, costs)
	if err != nil {
		return nil, err
	}
	if err := mg.Domain.S.EnableVirtualKeys(); err != nil {
		return nil, err
	}
	return mg, nil
}

// NewManagerVirtual boots a virtual-key scheduling domain on a fresh
// engine (the virtual-mode counterpart of NewManager).
func NewManagerVirtual(cores int, costs *cpu.CostModel) (*Manager, error) {
	return NewVirtualManagerOn(sim.NewEngine(), cores, costs)
}

// KeysAvailable is the domain's placeable uProcess headroom as the SMAS
// reports it: free hardware keys in direct mode, effectively unbounded
// under key virtualization.
func (mg *Manager) KeysAvailable() int { return mg.Domain.S.KeysAvailable() }

// UseEvents attaches an existing event log to the manager and its domain,
// replacing any log created so far. A cluster supervisor shares one log
// across a domain's incarnations so the containment stream — crash, fence,
// restart, reconcile — reads as one ordered history.
func (mg *Manager) UseEvents(l *trace.EventLog) {
	mg.events = l
	mg.Domain.Events = l
}

// PollSupervised reclaims dead supervised uProcesses and schedules their
// relaunches — the supervision step RunChaos performs each round, exported
// for external run loops that drive the manager core by core.
func (mg *Manager) PollSupervised() error { return mg.pollSupervised() }

// CancelPending cancels every event this manager still has scheduled on
// the shared engine — supervised relaunch backoffs and in-flight Uintr
// deliveries — and reports how many were cancelled. A domain being torn
// down for a restart must call this first: its events capture the dying
// manager, and firing after the restart would resurrect uProcesses in (or
// deliver interrupts to) a domain that no longer exists.
func (mg *Manager) CancelPending() int {
	n := 0
	for _, s := range mg.supervised {
		if s.pending && s.relaunch.Pending() {
			mg.eng.Cancel(s.relaunch)
			s.pending = false
			n++
		}
	}
	n += mg.Domain.Sched.CancelInflight()
	if n > 0 {
		mg.event("cancel.pending", fmt.Sprintf("events=%d", n))
	}
	return n
}

// CoreFenced reports whether a core has been withdrawn from placement.
func (mg *Manager) CoreFenced(core int) bool { return mg.Domain.Fenced(core) }

// FencedCores returns how many cores are currently fenced.
func (mg *Manager) FencedCores() int {
	n := 0
	for i := 0; i < mg.m.NumCores(); i++ {
		if mg.Domain.Fenced(i) {
			n++
		}
	}
	return n
}

// FenceCore withdraws a core from placement: queued threads are re-homed
// round-robin across the remaining healthy cores, a thread wedged on the
// core is written off with its uProcess, and supervised workloads pinned
// there are re-pinned so their next restart lands on a survivor. With no
// healthy core left the fence still takes effect (the domain is dead and
// the caller's next move is a domain restart); the runqueue then stays put
// for the restart's reconciliation to account for.
func (mg *Manager) FenceCore(core int) error {
	if core < 0 || core >= mg.m.NumCores() {
		return fmt.Errorf("vessel: fence core %d out of range", core)
	}
	if mg.Domain.Fenced(core) {
		return nil
	}
	var targets []int
	for i := 0; i < mg.m.NumCores(); i++ {
		c := mg.m.Core(i)
		if i != core && !mg.Domain.Fenced(i) && c.Fault == nil && !c.Stalled {
			targets = append(targets, i)
		}
	}
	moved, killed, err := mg.Domain.FenceCore(core, targets)
	if err != nil {
		return err
	}
	if len(targets) > 0 {
		i := 0
		for _, s := range mg.supervised {
			if s.core == core {
				s.core = targets[i%len(targets)]
				i++
				mg.event("fence.rehome", fmt.Sprintf("uproc=%s core=%d", s.name, s.core))
			}
		}
	}
	mg.event("fence", fmt.Sprintf("core=%d moved=%d killed=%d targets=%d", core, moved, killed, len(targets)))
	return nil
}
