package vessel

import (
	"testing"
)

func TestClusterManagedLifecycle(t *testing.T) {
	mg, err := NewManager(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.SetClusterManaged(4); err != nil {
		t.Fatal(err)
	}
	if got := len(mg.OnlineCores()); got != 0 {
		t.Fatalf("%d cores online before any grant", got)
	}
	// Launching on an ungranted core is refused.
	if _, err := mg.Launch("a", parkLoop(mg), 0); err == nil {
		t.Fatal("launch on ungranted core accepted")
	}
	if err := mg.GrantCore(0); err != nil {
		t.Fatal(err)
	}
	if err := mg.GrantCore(0); err == nil {
		t.Fatal("double grant accepted")
	}
	if !mg.CoreOnline(0) || mg.CoreOnline(1) {
		t.Fatal("online set wrong after grant")
	}
	if _, err := mg.Launch("a", parkLoop(mg), 0); err != nil {
		t.Fatal(err)
	}
	if ok, err := mg.Domain.Wake(0); err != nil || !ok {
		t.Fatalf("wake after grant: ok=%v err=%v", ok, err)
	}
	if mg.Step(0, 500) == 0 {
		t.Fatal("granted core made no progress")
	}
	if mg.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", mg.Occupancy())
	}
}

func TestRevokeMovesWorkAndRecyclesExecutor(t *testing.T) {
	mg, err := NewManager(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.SetClusterManaged(4); err != nil {
		t.Fatal(err)
	}
	for _, c := range []int{0, 1} {
		if err := mg.GrantCore(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mg.Launch("a", parkLoop(mg), 1); err != nil {
		t.Fatal(err)
	}
	if ok, err := mg.Domain.Wake(1); err != nil || !ok {
		t.Fatalf("wake: ok=%v err=%v", ok, err)
	}
	mg.Step(1, 100) // mid-run: a thread is live on core 1
	e1 := mg.ExecutorOn(1)
	if e1 == nil || e1.BoundCore != 1 {
		t.Fatalf("executor not bound: %+v", e1)
	}
	moved, err := mg.RevokeCore(1)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("moved = %d, want 1 (the running thread)", moved)
	}
	if mg.CoreOnline(1) {
		t.Fatal("core still online after revoke")
	}
	if mg.ExecutorOn(1) != nil {
		t.Fatal("executor still bound after revoke")
	}
	// The thread landed on core 0 and resumes there.
	if ok, err := mg.Domain.Wake(0); err != nil || !ok {
		t.Fatalf("wake survivor: ok=%v err=%v", ok, err)
	}
	if mg.Step(0, 500) == 0 {
		t.Fatal("migrated thread made no progress")
	}
	// A re-grant on the same NUMA node recycles the cached executor.
	if err := mg.GrantCore(2); err != nil {
		t.Fatal(err)
	}
	e2 := mg.ExecutorOn(2)
	if e2 != e1 || e2.Binds != 2 {
		t.Fatalf("executor not recycled: e1=%p e2=%p binds=%d", e1, e2, e2.Binds)
	}
	allocs, recycles := mg.ExecCacheStats()
	if allocs != 2 || recycles != 1 {
		t.Fatalf("cache stats allocs=%d recycles=%d, want 2/1", allocs, recycles)
	}
}

func TestExecutorCacheIsNodeLocal(t *testing.T) {
	mg, err := NewManager(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.SetClusterManaged(4); err != nil {
		t.Fatal(err)
	}
	// Bind and release an executor on node 0.
	if err := mg.GrantCore(0); err != nil {
		t.Fatal(err)
	}
	e0 := mg.ExecutorOn(0)
	// Keep a second core online so the revoke has a re-home target.
	if err := mg.GrantCore(1); err != nil {
		t.Fatal(err)
	}
	if _, err := mg.RevokeCore(0); err != nil {
		t.Fatal(err)
	}
	// A grant on node 1 must NOT steal node 0's cached executor.
	if err := mg.GrantCore(4); err != nil {
		t.Fatal(err)
	}
	e4 := mg.ExecutorOn(4)
	if e4 == e0 {
		t.Fatal("executor crossed NUMA nodes")
	}
	if e4.Node != 1 {
		t.Fatalf("node = %d, want 1", e4.Node)
	}
	// But a re-grant on node 0 does recycle it.
	if err := mg.GrantCore(2); err != nil {
		t.Fatal(err)
	}
	if mg.ExecutorOn(2) != e0 {
		t.Fatal("node-0 executor not recycled on node-0 re-grant")
	}
}

func TestRevokeLastCoreHasNoTargets(t *testing.T) {
	mg, err := NewManager(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.SetClusterManaged(0); err != nil {
		t.Fatal(err)
	}
	if err := mg.GrantCore(0); err != nil {
		t.Fatal(err)
	}
	// Revoking the only core is legal at the manager level (the cluster's
	// MinPerDomain invariant is what normally prevents it); the runqueue
	// stays put since there is nowhere to move it.
	if _, err := mg.RevokeCore(0); err != nil {
		t.Fatal(err)
	}
	if len(mg.OnlineCores()) != 0 {
		t.Fatal("cores online after revoking the only grant")
	}
}

func TestSetClusterManagedRefusesLiveUprocs(t *testing.T) {
	mg, err := NewManager(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Launch("a", parkLoop(mg), 0); err != nil {
		t.Fatal(err)
	}
	if err := mg.SetClusterManaged(0); err == nil {
		t.Fatal("entered cluster-managed mode with live uProcesses")
	}
}
