package uproc

// Core release: the domain-side mechanism half of two-level scheduling.
// When the cluster revokes a core from a domain (a CoreRevoked upcall),
// the domain *releases* it: the core is withdrawn from placement, its
// queued threads re-homed onto cores the domain still owns, and — unlike
// fencing — the thread currently running is left to reach its next gate
// boundary, where switchNext drains it too and halts the core. Contexts
// are only capturable at gate boundaries (saveCurrent reads the task-map
// RSP), so revocation must be lazy where fencing could afford to kill:
// the fenced core was already dead, the released core is merely leaving.
//
// Release is reversible. AdmitCore puts a core back under the domain's
// management when the cluster grants it (a CoreGranted upcall); fencing
// stays one-way.

import (
	"fmt"

	"vessel/internal/cpu"
)

// Offline reports whether a core has been released back to the cluster.
func (d *Domain) Offline(core int) bool {
	return core >= 0 && core < len(d.offline) && d.offline[core]
}

// rehome migrates a core's queued threads round-robin onto the target
// cores, reaping dead ones; with no targets the queue is left in place.
// It returns the number of threads moved. Shared by FenceCore and the
// release path.
func (d *Domain) rehome(cs *coreState, targets []int) int {
	if len(targets) == 0 {
		return 0
	}
	moved := 0
	for _, t := range cs.runq {
		if t.U.State == UProcTerminated || t.State == ThreadDead {
			t.State = ThreadDead
			continue
		}
		dst := targets[moved%len(targets)]
		d.cores[dst].runq = append(d.cores[dst].runq, t)
		moved++
	}
	cs.runq = nil
	return moved
}

// validTargets checks that every target core is in range, distinct from
// core, and still placeable (neither fenced nor offline).
func (d *Domain) validTargets(core int, targets []int) error {
	for _, t := range targets {
		if t < 0 || t >= len(d.cores) {
			return fmt.Errorf("uproc: release target %d out of range", t)
		}
		if t == core {
			return fmt.Errorf("uproc: release target %d is the released core", t)
		}
		if d.fenced[t] || d.offline[t] {
			return fmt.Errorf("uproc: release target %d is not placeable", t)
		}
	}
	return nil
}

// ReleaseCore withdraws a core from the domain's placement and re-homes
// its queued threads round-robin onto targets, returning the number of
// threads moved. A thread currently running on the core keeps running
// until its next gate entry (park, schedule, exit), where switchNext
// requeues it, drains it onto the same targets, and halts the core — the
// caller kicks the core with Preempt and steps it until Offline work has
// drained (Current returns nil). An idle core is fully released
// immediately. Targets must be cores the domain still owns; with no
// targets the runqueue is left in place (legal only when it is empty or
// the domain is headed for destruction).
func (d *Domain) ReleaseCore(core int, targets []int) (moved int, err error) {
	if core < 0 || core >= len(d.cores) {
		return 0, fmt.Errorf("uproc: release core %d out of range", core)
	}
	if d.fenced[core] {
		return 0, fmt.Errorf("uproc: core %d is fenced; fencing is one-way", core)
	}
	if d.offline[core] {
		return 0, nil
	}
	if err := d.validTargets(core, targets); err != nil {
		return 0, err
	}
	d.offline[core] = true
	cs := d.cores[core]
	cs.releaseTo = append([]int(nil), targets...)
	d.drainCommands(cs)
	moved = d.rehome(cs, targets)
	if cs.current == nil {
		// Idle core: nothing will reach a gate boundary, finish now.
		c := d.Machine.Core(core)
		c.Halted = true
		d.S.UnpinCore(core)
	}
	d.event("release.core", fmt.Sprintf("core=%d moved=%d lazy=%t", core, moved, cs.current != nil))
	return moved, nil
}

// finishRelease is the lazy half of ReleaseCore, reached from switchNext
// when an offline core enters a gate: any work that accumulated since the
// release (the requeued current thread, late Activate commands) is
// re-homed and the core halts. Threads strand on the released core only
// when the release recorded no targets.
func (d *Domain) finishRelease(c *cpu.Core, cs *coreState) {
	moved := d.rehome(cs, cs.releaseTo)
	cs.current = nil
	c.Halted = true
	// The released core grants no application key anymore: drop its
	// virtual-key pin, same as the idle-halt path.
	d.S.UnpinCore(c.ID)
	if moved > 0 {
		d.event("release.drain", fmt.Sprintf("core=%d moved=%d", c.ID, moved))
	}
}

// AdmitCore puts a released core back under the domain's management — the
// actuation of a CoreGranted upcall. The core comes back idle (halted,
// empty runqueue); Wake dispatches the first thread once one is queued.
// A fenced core cannot be admitted: fencing is one-way by design.
func (d *Domain) AdmitCore(core int) error {
	if core < 0 || core >= len(d.cores) {
		return fmt.Errorf("uproc: admit core %d out of range", core)
	}
	if d.fenced[core] {
		return fmt.Errorf("uproc: core %d is fenced; cannot admit", core)
	}
	if !d.offline[core] {
		return nil
	}
	d.offline[core] = false
	d.cores[core].releaseTo = nil
	d.event("admit.core", fmt.Sprintf("core=%d", core))
	return nil
}
