package uproc

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/sim"
)

func TestCloneUProcIntoFreshDomain(t *testing.T) {
	parentDom := newDomain(t, 1)
	prog := parkLoopProgram(parentDom, "app")
	parent, err := parentDom.CreateUProc("app", prog)
	if err != nil {
		t.Fatal(err)
	}
	// Parent writes distinctive data into its region.
	rt := parentDom.S.RuntimePKRU()
	if f := parentDom.S.AS.Write(parent.Image.DataBase, 8, 0xFEED, rt); f != nil {
		t.Fatal(f)
	}

	// Fork target: a fresh domain with mirrored allocation history (the
	// child program must be structurally identical so text/regions land
	// at the same addresses).
	childDom := newDomain(t, 1)
	childProg := parkLoopProgram(childDom, "app")
	child, err := parentDom.CloneUProc(parent, childDom, childProg)
	if err != nil {
		t.Fatal(err)
	}
	// Identical address-space layout (§5.3's fork contract).
	if child.Image.Region.Base != parent.Image.Region.Base {
		t.Fatal("region base differs")
	}
	if child.Image.Entry != parent.Image.Entry {
		t.Fatal("entry differs")
	}
	// Data synchronized.
	v, f := childDom.S.AS.Read(child.Image.DataBase, 8, childDom.S.RuntimePKRU())
	if f != nil || v != 0xFEED {
		t.Fatalf("child data = %#x, %v", v, f)
	}
	// But physically independent: child writes don't reach the parent.
	if f := childDom.S.AS.Write(child.Image.DataBase, 8, 0xBEEF, childDom.S.RuntimePKRU()); f != nil {
		t.Fatal(f)
	}
	pv, _ := parentDom.S.AS.Read(parent.Image.DataBase, 8, rt)
	if pv != 0xFEED {
		t.Fatal("child write aliased into parent")
	}
	// The child runs in its domain.
	childDom.AttachThread(0, child.Threads()[0])
	if err := childDom.StartCore(0); err != nil {
		t.Fatal(err)
	}
	childDom.Machine.Core(0).Run(500)
	if childDom.Machine.Core(0).Fault != nil {
		t.Fatalf("child fault: %v", childDom.Machine.Core(0).Fault)
	}
}

func TestCloneRejectsSameDomain(t *testing.T) {
	d := newDomain(t, 1)
	prog := parkLoopProgram(d, "app")
	u, err := d.CreateUProc("app", prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CloneUProc(u, d, parkLoopProgram(d, "app")); err == nil {
		t.Fatal("same-domain fork must be rejected (address collision, §5.3)")
	}
	d.terminate(u)
	other := newDomain(t, 1)
	if _, err := d.CloneUProc(u, other, parkLoopProgram(other, "app")); err == nil {
		t.Fatal("fork of terminated uProcess accepted")
	}
}

func TestCloneDetectsLayoutDivergence(t *testing.T) {
	parentDom := newDomain(t, 1)
	parent, err := parentDom.CreateUProc("app", parkLoopProgram(parentDom, "app"))
	if err != nil {
		t.Fatal(err)
	}
	// A target domain whose allocation history already diverged.
	skewed := newDomain(t, 1)
	if _, err := skewed.S.AllocRegion(8 * mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := parentDom.CloneUProc(parent, skewed, parkLoopProgram(skewed, "app")); err == nil {
		t.Fatal("layout divergence must be detected")
	}
}

// TestOnDemandLoadThroughRuntime covers §5.3's dlopen path end to end at
// the uProcess level: a library loaded at runtime is inspected, installed
// executable-only, and callable by the owning uProcess.
func TestOnDemandLoadThroughRuntime(t *testing.T) {
	d := newDomain(t, 1)
	u, err := d.CreateUProc("app", parkLoopProgram(d, "app"))
	if err != nil {
		t.Fatal(err)
	}
	// Legitimate library: sets RDX and returns.
	lib := cpu.NewAssembler()
	lib.Emit(cpu.MovImm{Dst: cpu.RDX, Imm: 0xD1}, cpu.Ret{})
	code, err := lib.Assemble(d.S.NextTextBase())
	if err != nil {
		t.Fatal(err)
	}
	base, err := d.S.LoadLibrary("libok", code, u.Image.Region.Key)
	if err != nil {
		t.Fatal(err)
	}
	// A caller program using the library.
	caller := cpu.NewAssembler()
	caller.Emit(cpu.Call{Target: base})
	caller.Emit(cpu.Call{Target: d.GateExit.Entry})
	callerBase, err := d.S.LoadLibrary("caller", mustAssemble(t, caller, d.S.NextTextBase()), u.Image.Region.Key)
	if err != nil {
		t.Fatal(err)
	}
	th, err := d.NewThread(u, callerBase)
	if err != nil {
		t.Fatal(err)
	}
	d.AttachThread(0, th)
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(0)
	core.Run(500)
	if core.Fault != nil {
		t.Fatal(core.Fault)
	}
	if th.State != ThreadDead {
		t.Fatal("caller did not finish")
	}
	// Malicious library still rejected at runtime load.
	if _, err := d.S.LoadLibrary("libevil", []cpu.Instr{cpu.WrPkru{}}, u.Image.Region.Key); err == nil {
		t.Fatal("runtime load accepted WRPKRU")
	}
	_ = sim.Microsecond
}
