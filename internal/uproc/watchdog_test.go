package uproc

import (
	"testing"

	"vessel/internal/trace"
)

// TestWatchdogKillsRunaway arms the cycle-budget watchdog and runs a
// spinner (never parks) next to a well-behaved park-loop app on one core:
// the spinner must blow its hard budget and get killed at a preemption
// boundary, while the park-loop app — whose budget resets on every
// voluntary yield — survives and keeps the core.
func TestWatchdogKillsRunaway(t *testing.T) {
	d := newDomain(t, 1)
	wd := &Watchdog{SoftBudgetCycles: 1500, HardBudgetCycles: 6000}
	d.Watchdog = wd
	d.Events = trace.NewEventLog(1024)

	spin, err := d.CreateUProc("spin", spinProgram("spin"))
	if err != nil {
		t.Fatal(err)
	}
	good, err := d.CreateUProc("good", parkLoopProgram(d, "good"))
	if err != nil {
		t.Fatal(err)
	}
	d.AttachThread(0, spin.Threads()[0])
	d.AttachThread(0, good.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(0)
	for round := 0; round < 60 && spin.State != UProcTerminated; round++ {
		core.Run(500)
		if err := d.Preempt(0, SchedCommand{}); err != nil {
			t.Fatal(err)
		}
	}
	if spin.State != UProcTerminated {
		t.Fatalf("runaway not killed: burn=%d", spin.Threads()[0].BurnCycles)
	}
	if wd.Kills != 1 {
		t.Fatalf("watchdog kills = %d, want 1", wd.Kills)
	}
	if wd.Overruns == 0 {
		t.Fatal("no soft-budget overruns counted before the kill")
	}
	if good.State == UProcTerminated {
		t.Fatal("well-behaved uProcess killed")
	}
	// The survivor keeps the core, and its voluntary parks keep its own
	// budget reset — it must never look like a runaway.
	core.Run(3000)
	if cur := d.Current(0); cur == nil || cur.U != good {
		t.Fatal("survivor not running after watchdog kill")
	}
	if burn := good.Threads()[0].BurnCycles; burn > wd.SoftBudgetCycles {
		t.Fatalf("parking thread accumulated burn %d past soft budget", burn)
	}
	if d.Events.CountByName("watchdog.kill") != 1 {
		t.Fatalf("event log:\n%s", d.Events.String())
	}
}

// TestWatchdogSparesPreemptedButYielding checks that preemption alone does
// not reset the budget: only park() does. A spinner preempted every
// quantum still accrues burn monotonically.
func TestWatchdogBurnAccruesAcrossPreemptions(t *testing.T) {
	d := newDomain(t, 1)
	spin, err := d.CreateUProc("spin", spinProgram("spin"))
	if err != nil {
		t.Fatal(err)
	}
	d.AttachThread(0, spin.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(0)
	var last int64
	for round := 0; round < 4; round++ {
		core.Run(300)
		if err := d.Preempt(0, SchedCommand{}); err != nil {
			t.Fatal(err)
		}
		core.Run(80) // deliver the Uintr and cross the gate so burn is charged
		burn := spin.Threads()[0].BurnCycles
		if burn <= last {
			t.Fatalf("round %d: burn %d did not grow past %d", round, burn, last)
		}
		last = burn
	}
}
