package uproc

// Core fencing: the mechanism half of self-healing recovery. When a
// failure detector decides a core is gone — stalled without a fault, or
// fail-stopped by an uncontained crash — the core is fenced: withdrawn
// from placement, its queued threads migrated to survivors, and whatever
// thread was wedged on it written off. Fencing is one-way by design; a
// core that looked dead long enough to fence cannot be trusted to come
// back mid-run (the same reasoning that keeps Wake away from fail-stopped
// cores).

import "fmt"

// Fenced reports whether a core has been withdrawn from placement.
func (d *Domain) Fenced(core int) bool {
	return core >= 0 && core < len(d.fenced) && d.fenced[core]
}

// FenceCore withdraws a core from placement and drains its work onto the
// target cores: pending scheduler commands are applied, queued threads are
// re-homed round-robin across targets, and a thread still marked current is
// killed with its whole uProcess — its context lives in registers the dead
// core will never save, so it cannot be migrated, only written off. This
// mirrors the stale-PKRU reasoning in ReclaimRegion: the fenced core may
// still hold the uProcess's PKRU, but since it never executes again the key
// cannot be abused, exactly as on a fail-stopped core.
//
// With no targets the runqueue is left in place (the domain is dead and
// headed for a restart, which reconciles everything); moved reports threads
// re-homed, killed reports uProcesses written off.
func (d *Domain) FenceCore(core int, targets []int) (moved, killed int, err error) {
	if core < 0 || core >= len(d.cores) {
		return 0, 0, fmt.Errorf("uproc: fence core %d out of range", core)
	}
	for _, t := range targets {
		if t < 0 || t >= len(d.cores) {
			return 0, 0, fmt.Errorf("uproc: fence target %d out of range", t)
		}
		if t == core || d.fenced[t] || d.offline[t] {
			return 0, 0, fmt.Errorf("uproc: fence target %d is the fenced core or not placeable", t)
		}
	}
	if d.fenced[core] {
		return 0, 0, nil
	}
	d.fenced[core] = true
	cs := d.cores[core]
	d.drainCommands(cs)
	if cur := cs.current; cur != nil && cur.U.State != UProcTerminated {
		cur.State = ThreadDead
		d.event("fence.kill", fmt.Sprintf("core=%d uproc=%s thread=%d", core, cur.U.Name, cur.ID))
		d.killUProc(cur.U, core)
		killed++
	}
	cs.current = nil
	// The fenced core never executes again, so its PKRU is inert: release
	// its virtual-key pin so the key can be evicted or freed.
	d.S.UnpinCore(core)
	moved = d.rehome(cs, targets)
	d.event("fence.core", fmt.Sprintf("core=%d moved=%d killed=%d", core, moved, killed))
	return moved, killed, nil
}
