package uproc

import (
	"fmt"

	"vessel/internal/callgate"
	"vessel/internal/cpu"
	"vessel/internal/mpk"
	"vessel/internal/obs"
	"vessel/internal/sim"
	"vessel/internal/uintr"
	"vessel/internal/vpkey"
)

// coreTime converts a core's cycle counter to virtual time under the
// machine's cost model — the layer-1 clock the observability spans use.
// Each core's clock is its own (layer-1 cores step independently), which is
// exactly the semantics a per-core timeline wants.
func (d *Domain) coreTime(c *cpu.Core) sim.Time {
	return sim.Time(int64(d.Machine.NsFor(c.Cycles)))
}

// obsMark drops an instant marker at the core's current time, when an
// observer is attached.
func (d *Domain) obsMark(c *cpu.Core, cat obs.Category, name string) {
	if d.Obs != nil {
		d.Obs.Mark(c.ID, d.coreTime(c), cat, name)
	}
}

// AttachObs installs the observability layer across the domain's layer-1
// instrumentation points: WRPKRU retirement on every core, call-gate body
// invocations, SENDUIPI dispositions (including deferred-delivery windows
// closed on reattach), and protection-key lifecycle. The hooks chain with
// anything already installed. Attaching a nil observer is a no-op.
func (d *Domain) AttachObs(o *obs.Observer) {
	if o == nil {
		return
	}
	d.Obs = o

	// WRPKRU: one span per retired write, spanning the modeled cost, on
	// the writing core's own clock — the libmpk probe.
	wrCost := sim.Duration(int64(d.Machine.NsFor(d.Machine.Costs.WrPkruCycles)))
	for i := 0; i < d.Machine.NumCores(); i++ {
		c := d.Machine.Core(i)
		prev := c.Hooks.OnWrPkru
		c.Hooks.OnWrPkru = func(c *cpu.Core, old mpk.PKRU) {
			at := d.coreTime(c)
			o.Span(c.ID, at, at.Add(wrCost), obs.CatWrPkru, "")
			o.Charge(c.ID, "", obs.CatWrPkru, wrCost)
			o.Reg().Inc("uproc.wrpkru")
			if prev != nil {
				prev(c, old)
			}
		}
	}

	// Gate crossings: every runtime-function body that runs privileged.
	prevInvoke := d.RT.OnInvoke
	d.RT.OnInvoke = func(c *cpu.Core, fid callgate.FuncID, name string) {
		d.obsMark(c, obs.CatGate, name)
		o.Reg().Inc("uproc.gate." + name)
		if prevInvoke != nil {
			prevInvoke(c, fid, name)
		}
	}

	// UINTR: count every SENDUIPI by disposition; deferred posts open a
	// per-receiver window (UITT index i routes to core i) that closes when
	// the receiver reattaches and its PIR flushes.
	prevSend := d.Sched.OnSend
	d.Sched.OnSend = func(idx int, vector uint8, out uintr.Outcome) {
		o.Reg().Inc("uproc.uintr." + out.String())
		if out == uintr.Deferred || out == uintr.Suppressed {
			if idx >= 0 && idx < d.Machine.NumCores() {
				o.UintrDeferred(idx, d.coreTime(d.Machine.Core(idx)))
			}
		}
		if prevSend != nil {
			prevSend(idx, vector, out)
		}
	}
	for i := range d.cores {
		i := i
		r := d.cores[i].receiver
		if r == nil {
			continue
		}
		prevFlush := r.OnFlush
		r.OnFlush = func(flushed uint64) {
			o.UintrFlush(i, d.coreTime(d.Machine.Core(i)))
			o.Reg().Inc("uproc.uintr.flush")
			if prevFlush != nil {
				prevFlush(flushed)
			}
		}
	}

	// Protection-key lifecycle (pkey_alloc/pkey_free pressure).
	prevAlloc, prevFree := d.S.Keys.OnAlloc, d.S.Keys.OnFree
	d.S.Keys.OnAlloc = func(k mpk.PKey) {
		o.Reg().Inc("uproc.pkey.alloc")
		o.Reg().Observe("uproc.pkey.inuse", int64(mpk.NumKeys-d.S.Keys.Available()))
		if prevAlloc != nil {
			prevAlloc(k)
		}
	}
	d.S.Keys.OnFree = func(k mpk.PKey) {
		o.Reg().Inc("uproc.pkey.free")
		if prevFree != nil {
			prevFree(k)
		}
	}

	// Virtualized protection keys: evictions and refills are overlay
	// markers on the driving core, with the lazy re-tag volume counted.
	if vt := d.S.VKeys; vt != nil {
		prevEvict, prevRefill := vt.OnEvict, vt.OnRefill
		vt.OnEvict = func(core int, vk vpkey.VKey, slot mpk.PKey, pages int) {
			if core >= 0 && core < d.Machine.NumCores() {
				d.obsMark(d.Machine.Core(core), obs.CatVPkey, fmt.Sprintf("evict:v%d", vk))
			}
			o.Reg().Inc("uproc.vpkey.evict")
			o.Reg().Add("uproc.vpkey.retag_pages", uint64(pages))
			if prevEvict != nil {
				prevEvict(core, vk, slot, pages)
			}
		}
		vt.OnRefill = func(core int, vk vpkey.VKey, slot mpk.PKey, pages int) {
			if core >= 0 && core < d.Machine.NumCores() {
				d.obsMark(d.Machine.Core(core), obs.CatVPkey, fmt.Sprintf("refill:v%d", vk))
			}
			o.Reg().Inc("uproc.vpkey.refill")
			o.Reg().Add("uproc.vpkey.retag_pages", uint64(pages))
			if prevRefill != nil {
				prevRefill(core, vk, slot, pages)
			}
		}
	}
}

// obsKill records a watchdog or containment kill as an instant marker and a
// registry counter ("uproc.kill.watchdog" / "uproc.kill.fault").
func (d *Domain) obsKill(c *cpu.Core, kind, uprocName string) {
	if d.Obs != nil {
		d.obsMark(c, obs.CatWatchdog, kind+":"+uprocName)
		d.Obs.Reg().Inc("uproc.kill." + kind)
	}
	// A kill is a black-box moment: snapshot the journey flight recorder
	// so the postmortem carries the events leading up to it.
	if d.Journey != nil {
		at := d.coreTime(c)
		d.Journey.Event(at, "uproc.kill", kind+":"+uprocName)
		d.Journey.Dump(at, "uproc.kill."+kind+":"+uprocName)
	}
}
