package uproc

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/smas"
)

// sysEnv creates a domain with two uProcesses for interposition tests.
func sysEnv(t *testing.T) (*Domain, *UProc, *UProc) {
	t.Helper()
	d := newDomain(t, 1)
	ua, err := d.CreateUProc("A", parkLoopProgram(d, "A"))
	if err != nil {
		t.Fatal(err)
	}
	ub, err := d.CreateUProc("B", parkLoopProgram(d, "B"))
	if err != nil {
		t.Fatal(err)
	}
	return d, ua, ub
}

func TestSyscallOwnershipIsolation(t *testing.T) {
	// §5.2.4's security scenario, closed: A creates a file through the
	// runtime; B's brute-force probe over the vfd space finds nothing,
	// and direct use of A's vfd is denied.
	d, ua, ub := sysEnv(t)
	v, err := d.Sys.Creat(ua, "/secret", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sys.Write(ua, v, []byte("key")); err != nil {
		t.Fatal(err)
	}
	// B probes every plausible descriptor.
	for probe := VFD(0); probe < 64; probe++ {
		if d.Sys.Probe(ub, probe) {
			t.Fatalf("B sees vfd %d", probe)
		}
	}
	// Direct use is denied and counted.
	if _, err := d.Sys.Read(ub, v, 8); err == nil {
		t.Fatal("B read A's descriptor")
	}
	if err := d.Sys.Write(ub, v, []byte("x")); err == nil {
		t.Fatal("B wrote A's descriptor")
	}
	if err := d.Sys.Close(ub, v); err == nil {
		t.Fatal("B closed A's descriptor")
	}
	if d.Sys.Denied != 3 {
		t.Fatalf("denied = %d", d.Sys.Denied)
	}
	// A's own access still works.
	data, err := d.Sys.Read(ua, v, 8)
	if err != nil || string(data) != "key" {
		t.Fatalf("A read: %q %v", data, err)
	}
	if err := d.Sys.Close(ua, v); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Sys.Read(ua, v, 8); err == nil {
		t.Fatal("use after close")
	}
}

func TestSyscallSurvivesKProcessMigration(t *testing.T) {
	// §5.2.4's correctness scenario, closed: the descriptor belongs to
	// the runtime's table, not to whichever kProcess the uProcess
	// happens to run in, so it survives "migration" — modeled by the
	// runtime switching its syscall host after the original dies.
	d, ua, _ := sysEnv(t)
	v, err := d.Sys.Creat(ua, "/data", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sys.Write(ua, v, []byte("persist")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Sys.Read(ua, v, 16)
	if err != nil || string(got) != "persist" {
		t.Fatalf("read after migration setup: %q %v", got, err)
	}
}

func TestSyscallTerminationReapsDescriptors(t *testing.T) {
	d, ua, ub := sysEnv(t)
	va, err := d.Sys.Creat(ua, "/a", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := d.Sys.Creat(ub, "/b", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	d.terminate(ua)
	if d.Sys.Probe(ua, va) {
		t.Fatal("terminated uProcess still owns descriptors")
	}
	if !d.Sys.Probe(ub, vb) {
		t.Fatal("unrelated uProcess lost descriptors")
	}
}

func TestSyscallGateLayer1(t *testing.T) {
	// Full layer-1 round trip: the application issues creat/write/read/
	// close through the FnSyscall call gate, with the filename and
	// buffer staged in its own region like a real libc stub would. The
	// ABI: RDI=op, RSI=arg1, RBP=arg2, result in RDX (all preserved
	// across gate transitions except the result register itself).
	d := newDomain(t, 1)
	u, err := d.CreateUProc("app", &smas.Program{
		Name: "app", Asm: stubProgram(d), PIE: true,
		DataSize: mem.PageSize, StackSize: 2 * mem.PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	nameAddr := u.Image.DataBase
	bufAddr := u.Image.DataBase + 64
	// Plant "/f\0" and the payload word in the app's data page.
	rt := d.S.RuntimePKRU()
	if f := d.S.AS.WriteBytes(nameAddr, []byte("/f\x00"), rt); f != nil {
		t.Fatal(f)
	}
	if f := d.S.AS.Write(bufAddr, 8, 0x68656c6c6f, rt); f != nil { // "hello"
		t.Fatal(f)
	}
	th := u.Threads()[0]
	th.savedRegs[cpu.RSI] = uint64(nameAddr)
	th.savedRegs[cpu.RBP] = uint64(bufAddr)
	d.AttachThread(0, th)
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(0)
	core.Run(2000)
	if core.Fault != nil {
		t.Fatalf("fault: %v", core.Fault)
	}
	if th.State != ThreadDead {
		t.Fatalf("stub did not finish: %v (PC %#x)", th.State, uint64(core.PC))
	}
	// The file exists with the payload written through the gate.
	file, ok := d.Kernel.FS().Lookup("/f")
	if !ok {
		t.Fatal("file not created")
	}
	if len(file.Data) != 8 || file.Data[0] != 'o' {
		// Little-endian word 0x68656c6c6f writes "olleh\0\0\0".
		t.Fatalf("file data = %q", file.Data)
	}
	// And the read-back word was stored at bufAddr+8 by the stub.
	v, f := d.S.AS.Read(bufAddr+8, 8, rt)
	if f != nil || v != 0x68656c6c6f {
		t.Fatalf("readback = %#x, %v", v, f)
	}
}

// stubProgram is the app-side libc stub: creat, write, read, close, exit —
// with arguments staged in registers RSI (name) and RBP (buffer).
func stubProgram(d *Domain) *cpu.Assembler {
	a := cpu.NewAssembler()
	// creat: RDI=3, RSI=name, RBP=0600 → RDX = vfd. The buffer address
	// is recoverable as name+64, so nothing else needs preserving.
	a.Emit(cpu.MovImm{Dst: cpu.RDI, Imm: SysCreat})
	a.Emit(cpu.MovImm{Dst: cpu.RBP, Imm: 0o600})
	a.Emit(cpu.Call{Target: d.GateSyscall.Entry})
	// write: RDI=5, RSI=vfd, RBP=buf(name+64) → RDX = n
	a.Emit(cpu.MovReg{Dst: cpu.RBP, Src: cpu.RSI})
	a.Emit(cpu.AddImm{Dst: cpu.RBP, Imm: 64})      // RBP = buf
	a.Emit(cpu.MovReg{Dst: cpu.RSI, Src: cpu.RDX}) // RSI = vfd
	a.Emit(cpu.MovImm{Dst: cpu.RDI, Imm: SysWrite})
	a.Emit(cpu.Call{Target: d.GateSyscall.Entry})
	//   read back into buf+8: RDI=4, RSI=vfd, RBP=buf+8
	a.Emit(cpu.AddImm{Dst: cpu.RBP, Imm: 8})
	a.Emit(cpu.MovImm{Dst: cpu.RDI, Imm: SysRead})
	a.Emit(cpu.Call{Target: d.GateSyscall.Entry})
	//   close: RDI=6, RSI=vfd
	a.Emit(cpu.MovImm{Dst: cpu.RDI, Imm: SysClose})
	a.Emit(cpu.Call{Target: d.GateSyscall.Entry})
	// exit
	a.Emit(cpu.Call{Target: d.GateExit.Entry})
	return a
}

func TestSyscallGateErrors(t *testing.T) {
	d, ua, _ := sysEnv(t)
	// Opening a missing file fails in-band.
	if _, err := d.Sys.Open(ua, "/missing", false); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	// Reads at EOF return empty.
	v, err := d.Sys.Creat(ua, "/empty", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	data, err := d.Sys.Read(ua, v, 8)
	if err != nil || data != nil {
		t.Fatalf("EOF read: %v %v", data, err)
	}
	// Reopening an existing file through Open works in both modes.
	if _, err := d.Sys.Open(ua, "/empty", false); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Sys.Open(ua, "/empty", true); err != nil {
		t.Fatal(err)
	}
	// Domain accessors.
	if len(d.UProcs()) != 2 {
		t.Fatalf("uprocs = %d", len(d.UProcs()))
	}
	if d.Runqueue(0) == nil && len(d.Runqueue(0)) != 0 {
		t.Fatal("runqueue accessor")
	}
}

func TestSysImplUnknownOpAndBadArgs(t *testing.T) {
	// Drive sysImpl through the gate with an unknown opcode and with a
	// bad vfd: both must return SysErr in-band, not fault.
	d := newDomain(t, 1)
	a := cpu.NewAssembler()
	a.Emit(cpu.MovImm{Dst: cpu.RDI, Imm: 99}) // unknown op
	a.Emit(cpu.Call{Target: d.GateSyscall.Entry})
	a.Emit(cpu.Store{Src: cpu.RDX, Base: cpu.RSI}) // publish result at [RSI]=dataBase
	a.Emit(cpu.MovImm{Dst: cpu.RDI, Imm: SysClose})
	a.Emit(cpu.MovImm{Dst: cpu.RSI, Imm: 777}) // bad vfd
	a.Emit(cpu.MovImm{Dst: cpu.RBP, Imm: 0})
	a.Emit(cpu.Call{Target: d.GateSyscall.Entry}) // close bad vfd → SysErr
	a.Emit(cpu.Call{Target: d.GateExit.Entry})
	u, err := d.CreateUProc("app", &smas.Program{
		Name: "app", Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := u.Threads()[0]
	th.savedRegs[cpu.RSI] = uint64(u.Image.DataBase)
	d.AttachThread(0, th)
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(0)
	core.Run(1000)
	if core.Fault != nil {
		t.Fatalf("fault: %v", core.Fault)
	}
	if th.State != ThreadDead {
		t.Fatal("program did not finish")
	}
	// The first result (unknown op) must have been SysErr.
	v, f := d.S.AS.Read(u.Image.DataBase, 8, d.S.RuntimePKRU())
	if f != nil || v != uint64(SysErr) {
		t.Fatalf("unknown op result = %#x, %v", v, f)
	}
}
