package uproc

import (
	"strings"
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/sim"
	"vessel/internal/smas"
)

// readCStringFixture builds a domain with two uProcesses so boundary and
// cross-region behaviour of readCString can be probed directly.
type readCStringFixture struct {
	d    *Domain
	u    *UProc // the caller whose PKRU readCString runs with
	v    *UProc // a sibling the caller must not be able to read
	end  mem.Addr
	base mem.Addr
}

func newReadCStringFixture(tb testing.TB) *readCStringFixture {
	tb.Helper()
	m := cpu.NewMachine(1, cpu.Default())
	d, err := NewDomain(sim.NewEngine(), m)
	if err != nil {
		tb.Fatal(err)
	}
	u, err := d.CreateUProc("caller", parkLoopFixtureProgram(d, "caller"))
	if err != nil {
		tb.Fatal(err)
	}
	v, err := d.CreateUProc("sibling", parkLoopFixtureProgram(d, "sibling"))
	if err != nil {
		tb.Fatal(err)
	}
	r := u.Image.Region
	return &readCStringFixture{d: d, u: u, v: v, base: r.Base, end: r.Base + mem.Addr(r.Size)}
}

// parkLoopFixtureProgram avoids depending on test helpers in other files.
func parkLoopFixtureProgram(d *Domain, name string) *smas.Program {
	a := cpu.NewAssembler()
	a.Label("loop")
	a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	a.Emit(cpu.Call{Target: d.GatePark.Entry})
	a.JmpTo("loop")
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

// poke writes one byte into the SMAS with the privileged view (test setup
// only — the assertions below are about the *application* view).
func (fx *readCStringFixture) poke(tb testing.TB, addr mem.Addr, b byte) {
	tb.Helper()
	if f := fx.d.S.AS.Write(addr, 1, uint64(b), fx.d.S.RuntimePKRU()); f != nil {
		tb.Fatalf("setup write at %#x: %v", uint64(addr), f)
	}
}

func TestReadCStringRegionBoundary(t *testing.T) {
	fx := newReadCStringFixture(t)

	// An unterminated string abutting the region end must fault cleanly
	// when the scan crosses into the guard gap — never read past it.
	start := fx.end - 16
	for a := start; a < fx.end; a++ {
		fx.poke(t, a, 'A')
	}
	s, f := fx.d.readCString(start, fx.u.PKRU)
	if f == nil {
		t.Fatalf("unterminated string at region end returned %q; want fault", s)
	}
	if f.Kind != mem.FaultNotMapped {
		t.Fatalf("fault kind = %v, want not-mapped (guard gap)", f.Kind)
	}
	if f.Addr != fx.end {
		t.Fatalf("faulted at %#x, want first out-of-region byte %#x", uint64(f.Addr), uint64(fx.end))
	}

	// With a NUL just inside the boundary the read succeeds and stops.
	fx.poke(t, fx.end-1, 0)
	s, f = fx.d.readCString(start, fx.u.PKRU)
	if f != nil {
		t.Fatalf("terminated string faulted: %v", f)
	}
	if want := strings.Repeat("A", 15); s != want {
		t.Fatalf("read %q, want %q", s, want)
	}

	// A pointer into the runtime region must fault with the caller's
	// PKRU — the confused-deputy hole the privileged read had.
	if _, f = fx.d.readCString(smas.RuntimeBase, fx.u.PKRU); f == nil {
		t.Fatal("runtime-region pointer readable through syscall path")
	} else if f.Kind != mem.FaultPKU {
		t.Fatalf("runtime-region fault kind = %v, want PKU", f.Kind)
	}

	// A pointer into a sibling uProcess's region must fault the same way.
	if _, f = fx.d.readCString(fx.v.Image.DataBase, fx.u.PKRU); f == nil {
		t.Fatal("sibling-region pointer readable through syscall path")
	} else if f.Kind != mem.FaultPKU {
		t.Fatalf("sibling-region fault kind = %v, want PKU", f.Kind)
	}

	// The caller's own memory still works.
	fx.poke(t, fx.u.Image.DataBase, 'h')
	fx.poke(t, fx.u.Image.DataBase+1, 'i')
	fx.poke(t, fx.u.Image.DataBase+2, 0)
	s, f = fx.d.readCString(fx.u.Image.DataBase, fx.u.PKRU)
	if f != nil || s != "hi" {
		t.Fatalf("own-region read = %q, %v", s, f)
	}
}

// FuzzReadCString drives readCString with arbitrary offsets and contents
// and asserts the safety invariants: it never panics, never returns more
// than 64 bytes, and — when it succeeds — never consumed a byte at or past
// the region end with the caller's PKRU.
func FuzzReadCString(f *testing.F) {
	f.Add(uint32(0), []byte("hello"))
	f.Add(uint32(4090), []byte("unterminated-near-end"))
	f.Add(uint32(1), []byte{0})
	f.Add(uint32(4095), []byte{'x'})
	f.Fuzz(func(t *testing.T, off uint32, data []byte) {
		fx := newReadCStringFixture(t)
		span := uint64(fx.end - fx.base)
		addr := fx.base + mem.Addr(uint64(off)%span)
		// Stage the payload, clipped at the region end (the setup may
		// not write out of the region either).
		for i := 0; i < len(data) && addr+mem.Addr(i) < fx.end; i++ {
			fx.poke(t, addr+mem.Addr(i), data[i])
		}
		s, fault := fx.d.readCString(addr, fx.u.PKRU)
		if len(s) > 64 {
			t.Fatalf("returned %d bytes, cap is 64", len(s))
		}
		if fault == nil {
			// Success means the scan ended on a NUL or the 64-byte cap,
			// entirely inside the caller's region: the bytes consumed
			// are [addr, addr+len(s)] including the terminator (when
			// not capped), all below the region end.
			consumed := addr + mem.Addr(len(s))
			if len(s) < 64 {
				consumed++ // the NUL
			}
			if consumed > fx.end {
				t.Fatalf("read crossed region end: addr=%#x len=%d end=%#x", uint64(addr), len(s), uint64(fx.end))
			}
		} else if fault.Addr < addr || fault.Addr > fx.end {
			t.Fatalf("fault at %#x outside the scanned range starting %#x", uint64(fault.Addr), uint64(addr))
		}
	})
}
