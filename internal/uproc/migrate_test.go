package uproc

import "testing"

func TestMigrateBetweenCoreFIFOs(t *testing.T) {
	d := newDomain(t, 2)
	u, err := d.CreateUProc("app", parkLoopProgram(d, "app"))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := d.NewThread(u, u.Image.Entry)
	if err != nil {
		t.Fatal(err)
	}
	d.AttachThread(0, u.Threads()[0])
	d.AttachThread(0, t2)
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	// t2 sits queued on core 0 while the main thread runs.
	if len(d.Runqueue(0)) != 1 {
		t.Fatalf("core 0 queue = %d", len(d.Runqueue(0)))
	}
	// A running thread cannot be migrated.
	if err := d.Migrate(d.Current(0), 0, 1); err == nil {
		t.Fatal("migrated a running thread")
	}
	// Migrate the queued one to core 1 and run it there.
	if err := d.Migrate(t2, 0, 1); err != nil {
		t.Fatal(err)
	}
	if len(d.Runqueue(0)) != 0 || len(d.Runqueue(1)) != 1 {
		t.Fatal("queues after migration")
	}
	if err := d.StartCore(1); err != nil {
		t.Fatal(err)
	}
	d.Machine.Core(1).Run(500)
	if t2.Switches == 0 {
		t.Fatal("migrated thread never ran on core 1")
	}
	// Error paths.
	if err := d.Migrate(t2, 0, 1); err == nil {
		t.Fatal("migrating a non-queued thread accepted")
	}
	if err := d.Migrate(t2, -1, 1); err == nil || d.Migrate(t2, 0, 9) == nil {
		t.Fatal("out-of-range cores accepted")
	}
}
