package uproc

import (
	"testing"

	"vessel/internal/callgate"
	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/sim"
	"vessel/internal/smas"
)

func newDomain(t *testing.T, cores int) *Domain {
	t.Helper()
	m := cpu.NewMachine(cores, cpu.Default())
	d, err := NewDomain(sim.NewEngine(), m)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// parkLoopProgram builds an app that increments RDX then parks, forever.
func parkLoopProgram(d *Domain, name string) *smas.Program {
	a := cpu.NewAssembler()
	a.Label("loop")
	a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	a.Emit(cpu.Call{Target: d.GatePark.Entry})
	a.JmpTo("loop")
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

// spinProgram builds an app that increments RDX forever without parking.
func spinProgram(name string) *smas.Program {
	a := cpu.NewAssembler()
	a.Label("loop")
	a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	a.JmpTo("loop")
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

func TestPingPongPark(t *testing.T) {
	d := newDomain(t, 1)
	ua, err := d.CreateUProc("A", parkLoopProgram(d, "A"))
	if err != nil {
		t.Fatal(err)
	}
	ub, err := d.CreateUProc("B", parkLoopProgram(d, "B"))
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := ua.Threads()[0], ub.Threads()[0]
	d.AttachThread(0, ta)
	d.AttachThread(0, tb)
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(0)
	core.Run(5000)
	if core.Fault != nil {
		t.Fatalf("fault: %v", core.Fault)
	}
	parks, _ := d.CoreStats(0)
	if parks < 20 {
		t.Fatalf("only %d parks", parks)
	}
	// Both threads made roughly equal progress: each park boundary is
	// one RDX increment, and the core's FIFO alternates them.
	if ta.Switches < 5 || tb.Switches < 5 {
		t.Fatalf("switches: A=%d B=%d", ta.Switches, tb.Switches)
	}
	diff := int64(ta.Switches) - int64(tb.Switches)
	if diff < -1 || diff > 1 {
		t.Fatalf("unfair alternation: A=%d B=%d", ta.Switches, tb.Switches)
	}
}

func TestContextIntegrityAcrossSwitches(t *testing.T) {
	// Each app accumulates a distinct stride in RDX across many parks;
	// if context save/restore ever leaked registers between uProcesses
	// the final counts would be wrong.
	d := newDomain(t, 1)
	mk := func(name string, stride int64, iters uint64) *smas.Program {
		a := cpu.NewAssembler()
		a.Emit(cpu.MovImm{Dst: cpu.RDX, Imm: 0})
		a.Emit(cpu.MovImm{Dst: cpu.RSI, Imm: iters})
		a.Label("loop")
		a.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: stride})
		a.Emit(cpu.Call{Target: d.GatePark.Entry})
		a.LoopTo(cpu.RSI, "loop")
		// Publish RDX into the uProcess's own data page, then exit.
		a.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: 0}) // patched below via RDI trick
		a.Label("publish")
		a.Emit(cpu.Call{Target: d.GateExit.Entry})
		return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
	}
	ua, err := d.CreateUProc("A", mk("A", 3, 50))
	if err != nil {
		t.Fatal(err)
	}
	ub, err := d.CreateUProc("B", mk("B", 7, 50))
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := ua.Threads()[0], ub.Threads()[0]
	d.AttachThread(0, ta)
	d.AttachThread(0, tb)
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(0)
	for i := 0; i < 100000 && !core.Halted; i++ {
		core.Step()
		// Capture RDX at exit time by watching thread death.
		if ta.State == ThreadDead && tb.State == ThreadDead {
			break
		}
	}
	// When each thread exits, its last RDX is in its saved context or
	// observable via the exit boundary. Track via switch counts: both
	// completed all 50 iterations without corrupting the other.
	if ta.State != ThreadDead || tb.State != ThreadDead {
		t.Fatalf("threads did not finish: A=%v B=%v", ta.State, tb.State)
	}
	if ta.Switches < 50 || tb.Switches < 50 {
		t.Fatalf("switch counts: A=%d B=%d", ta.Switches, tb.Switches)
	}
}

func TestPreemptionResumesExactly(t *testing.T) {
	d := newDomain(t, 1)
	ua, err := d.CreateUProc("spin", spinProgram("spin"))
	if err != nil {
		t.Fatal(err)
	}
	ub, err := d.CreateUProc("other", parkLoopProgram(d, "other"))
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := ua.Threads()[0], ub.Threads()[0]
	d.AttachThread(0, ta)
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(0)
	core.Run(100)
	before := core.Regs[cpu.RDX]
	if before == 0 {
		t.Fatal("spin made no progress")
	}
	// Preempt: activate B on this core and kick it.
	if err := d.Preempt(0, SchedCommand{Activate: tb}); err != nil {
		t.Fatal(err)
	}
	core.Run(200)
	_, preempts := d.CoreStats(0)
	if preempts == 0 {
		t.Fatal("no preemption recorded")
	}
	if tb.Switches == 0 {
		t.Fatal("preemption never dispatched the other uProcess")
	}
	// B parks in its loop; the FIFO returns to A, which must resume
	// from exactly where it was (monotonically growing RDX, no reset).
	core.Run(2000)
	if core.Fault != nil {
		t.Fatalf("fault: %v", core.Fault)
	}
	if ta.Switches < 2 {
		t.Fatalf("spinner never resumed: switches=%d", ta.Switches)
	}
	// While A runs its RDX keeps growing past the preemption point.
	if d.Current(0) == ta && core.Regs[cpu.RDX] <= before {
		t.Fatalf("spinner lost progress: %d <= %d", core.Regs[cpu.RDX], before)
	}
}

func TestIsolationFaultTerminatesOnlyOffender(t *testing.T) {
	// uProcess "evil" reads uProcess "victim"'s region: MPK faults, the
	// runtime's signal path terminates evil, and victim keeps running —
	// the §4.3 blast-radius guarantee.
	d := newDomain(t, 1)
	victim, err := d.CreateUProc("victim", parkLoopProgram(d, "victim"))
	if err != nil {
		t.Fatal(err)
	}
	evilAsm := cpu.NewAssembler()
	evilAsm.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	evilAsm.Emit(cpu.Call{Target: d.GatePark.Entry})
	evilAsm.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: uint64(victim.Image.Region.Base)})
	evilAsm.Emit(cpu.Load{Dst: cpu.RAX, Base: cpu.RCX}) // cross-uProcess read
	evilAsm.Emit(cpu.Halt{})
	evil, err := d.CreateUProc("evil", &smas.Program{
		Name: "evil", Asm: evilAsm, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.AttachThread(0, victim.Threads()[0])
	d.AttachThread(0, evil.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(0)
	core.Run(5000)
	if evil.State != UProcTerminated {
		t.Fatal("offender not terminated")
	}
	if evil.FaultSignals != 1 {
		t.Fatalf("fault signals = %d", evil.FaultSignals)
	}
	if victim.State == UProcTerminated {
		t.Fatal("victim terminated — blast radius not contained")
	}
	// The victim keeps running alone on the core.
	if core.Halted {
		t.Fatal("core halted though victim is runnable")
	}
	if d.Current(0).U != victim {
		t.Fatal("victim not running after offender died")
	}
	// The offender's kProcess saw the SIGSEGV.
	if evil.KProc.Alive {
		t.Fatal("offender kProcess still alive")
	}
	if victim.KProc == evil.KProc {
		t.Fatal("test invalid: distinct kProcesses expected")
	}
}

func TestFaultBroadcastKillsSiblingsLazily(t *testing.T) {
	// A uProcess with threads on two cores: core 0's thread faults;
	// core 1's sibling dies at its next privileged entry (§4.3).
	d := newDomain(t, 2)
	faultAsm := cpu.NewAssembler()
	faultAsm.Emit(cpu.MovImm{Dst: cpu.RCX, Imm: 0xdead0000})
	faultAsm.Emit(cpu.Load{Dst: cpu.RAX, Base: cpu.RCX})
	faultAsm.Emit(cpu.Halt{})
	bad, err := d.CreateUProc("bad", &smas.Program{
		Name: "bad", Asm: faultAsm, PIE: true, DataSize: mem.PageSize, StackSize: 4 * mem.PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	good, err := d.CreateUProc("good", parkLoopProgram(d, "good"))
	if err != nil {
		t.Fatal(err)
	}
	// Sibling thread of "bad" parks in a loop on core 1. Its entry is
	// the park-loop code of "good"? No — it must be bad's own code.
	// Give bad a second thread whose entry is a park loop in bad's text.
	parkAsm := cpu.NewAssembler()
	parkAsm.Label("loop")
	parkAsm.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	parkAsm.Emit(cpu.Call{Target: d.GatePark.Entry})
	parkAsm.JmpTo("loop")
	libBase, err := d.S.LoadLibrary("bad-worker", mustAssemble(t, parkAsm, d.S.NextTextBase()), bad.Image.Region.Key)
	if err != nil {
		t.Fatal(err)
	}
	sibling, err := d.NewThread(bad, libBase)
	if err != nil {
		t.Fatal(err)
	}
	d.AttachThread(0, bad.Threads()[0])
	d.AttachThread(1, sibling)
	d.AttachThread(1, good.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	if err := d.StartCore(1); err != nil {
		t.Fatal(err)
	}
	// Core 0 faults almost immediately.
	d.Machine.Core(0).Run(50)
	if bad.State != UProcTerminated {
		t.Fatal("bad not terminated after fault")
	}
	if sibling.State == ThreadDead {
		t.Fatal("sibling killed eagerly; must be lazy")
	}
	// Core 1 keeps running; at the sibling's next park the kill command
	// drains and the sibling is reaped.
	d.Machine.Core(1).Run(3000)
	if sibling.State != ThreadDead {
		t.Fatalf("sibling state = %v, want dead", sibling.State)
	}
	if good.State == UProcTerminated {
		t.Fatal("unrelated uProcess died")
	}
	if d.Current(1) == nil || d.Current(1).U != good {
		t.Fatal("core 1 should now run the good uProcess")
	}
}

func mustAssemble(t *testing.T, a *cpu.Assembler, base mem.Addr) []cpu.Instr {
	t.Helper()
	code, err := a.Assemble(base)
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func TestExitGateAndWake(t *testing.T) {
	d := newDomain(t, 1)
	exitAsm := cpu.NewAssembler()
	exitAsm.Emit(cpu.AddImm{Dst: cpu.RDX, Imm: 1})
	exitAsm.Emit(cpu.Call{Target: d.GateExit.Entry})
	u, err := d.CreateUProc("oneshot", &smas.Program{
		Name: "oneshot", Asm: exitAsm, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.AttachThread(0, u.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(0)
	core.Run(200)
	if u.Threads()[0].State != ThreadDead {
		t.Fatal("thread not dead after exit gate")
	}
	if !core.Halted {
		t.Fatal("core should idle (UMWAIT) with nothing to run")
	}
	// Wake with nothing queued: stays idle.
	if ok, err := d.Wake(0); err != nil || ok {
		t.Fatalf("wake on empty = %v, %v", ok, err)
	}
	// Queue a second run of the program via a new thread, wake, run.
	t2, err := d.NewThread(u, u.Image.Entry)
	if err != nil {
		t.Fatal(err)
	}
	d.AttachThread(0, t2)
	ok, err := d.Wake(0)
	if err != nil || !ok {
		t.Fatalf("wake = %v, %v", ok, err)
	}
	core.Run(200)
	if t2.State != ThreadDead {
		t.Fatal("second thread did not run to exit")
	}
}

func TestPreemptWakesIdleCore(t *testing.T) {
	// A core idling in UMWAIT wakes when the scheduler activates a
	// thread on it — the "notify the scheduler and enter an idle mode
	// using UMWAIT" loop of §4.5, closed from the other side.
	d := newDomain(t, 1)
	u, err := d.CreateUProc("once", parkLoopProgram(d, "once"))
	if err != nil {
		t.Fatal(err)
	}
	// Start with a throwaway thread that exits immediately so the core
	// goes idle.
	exitAsm := cpu.NewAssembler()
	exitAsm.Emit(cpu.Call{Target: d.GateExit.Entry})
	base, err := d.S.LoadLibrary("exit-now", mustAssemble(t, exitAsm, d.S.NextTextBase()), u.Image.Region.Key)
	if err != nil {
		t.Fatal(err)
	}
	t0, err := d.NewThread(u, base)
	if err != nil {
		t.Fatal(err)
	}
	d.AttachThread(0, t0)
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(0)
	core.Run(200)
	if !core.Halted {
		t.Fatal("core should be idle")
	}
	// Scheduler activates the park-loop thread on the idle core.
	if err := d.Preempt(0, SchedCommand{Activate: u.Threads()[0]}); err != nil {
		t.Fatal(err)
	}
	if core.Halted {
		t.Fatal("idle core not woken by activation")
	}
	core.Run(1000)
	if u.Threads()[0].Switches == 0 {
		t.Fatal("activated thread never ran")
	}
}

func TestDestroyUProcLazy(t *testing.T) {
	d := newDomain(t, 1)
	ua, err := d.CreateUProc("A", parkLoopProgram(d, "A"))
	if err != nil {
		t.Fatal(err)
	}
	ub, err := d.CreateUProc("B", parkLoopProgram(d, "B"))
	if err != nil {
		t.Fatal(err)
	}
	d.AttachThread(0, ua.Threads()[0])
	d.AttachThread(0, ub.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(0)
	core.Run(500)
	if err := d.DestroyUProc(ua); err != nil {
		t.Fatal(err)
	}
	core.Run(2000)
	if ua.State != UProcTerminated {
		t.Fatal("A not terminated after destroy")
	}
	if ub.State == UProcTerminated {
		t.Fatal("B terminated by A's destroy")
	}
	if d.Current(0) == nil || d.Current(0).U != ub {
		t.Fatal("B should own the core now")
	}
	// Region reclaim frees the key for a new uProcess.
	avail := d.S.Keys.Available()
	if err := d.ReclaimRegion(ua); err != nil {
		t.Fatal(err)
	}
	if d.S.Keys.Available() != avail+1 {
		t.Fatal("key not reclaimed")
	}
	if err := d.ReclaimRegion(ub); err == nil {
		t.Fatal("reclaim of live uProcess must fail")
	}
}

func TestMultiThreadSharedRegion(t *testing.T) {
	// Two threads of ONE uProcess share its region: one writes a flag,
	// the other spins parked until it sees it — intra-uProcess sharing
	// is unrestricted while inter-uProcess access faults.
	d := newDomain(t, 1)
	// The writer receives the flag address in RDI via its initial
	// register file (argv-style; RDI survives gate transitions, unlike
	// the gate's scratch registers), stores 42 there, and exits.
	writer := cpu.NewAssembler()
	writer.Emit(cpu.MovImm{Dst: cpu.RDX, Imm: 42})
	writer.Emit(cpu.Store{Src: cpu.RDX, Base: cpu.RDI})
	writer.Emit(cpu.Call{Target: d.GateExit.Entry})
	u, err := d.CreateUProc("shared", &smas.Program{
		Name: "shared", Asm: writer, PIE: true, DataSize: mem.PageSize, StackSize: 4 * mem.PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	flag := u.Image.DataBase
	// Patch: the assembler baked Imm 0; rewrite the program would be
	// cleaner, but the instruction stream is immutable once installed.
	// Instead have the main thread receive the address in RCX via its
	// initial register file.
	u.Threads()[0].savedRegs[cpu.RDI] = uint64(flag)

	reader := cpu.NewAssembler()
	reader.Label("spin")
	reader.Emit(cpu.Call{Target: d.GatePark.Entry})
	reader.Emit(cpu.Load{Dst: cpu.RDX, Base: cpu.RDI}) // RDI = flag addr via initial regs
	reader.Emit(cpu.MovImm{Dst: cpu.RSI, Imm: 42})
	reader.JneTo(cpu.RDX, cpu.RSI, "spin")
	reader.Emit(cpu.Call{Target: d.GateExit.Entry})
	readerBase, err := d.S.LoadLibrary("reader", mustAssemble(t, reader, d.S.NextTextBase()), u.Image.Region.Key)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := d.NewThread(u, readerBase)
	if err != nil {
		t.Fatal(err)
	}
	t2.savedRegs[cpu.RDI] = uint64(flag)
	d.AttachThread(0, t2)
	d.AttachThread(0, u.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(0)
	core.Run(5000)
	if core.Fault != nil {
		t.Fatalf("fault: %v", core.Fault)
	}
	if u.Threads()[0].State != ThreadDead || t2.State != ThreadDead {
		t.Fatalf("threads: writer=%v reader=%v", u.Threads()[0].State, t2.State)
	}
}

func TestNewThreadValidation(t *testing.T) {
	d := newDomain(t, 1)
	u, err := d.CreateUProc("A", parkLoopProgram(d, "A"))
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust stack space: region sized DataSize+Heap+Stack(2 pages);
	// each thread takes one page. Main thread took one.
	var made int
	for {
		if _, err := d.NewThread(u, u.Image.Entry); err != nil {
			break
		}
		made++
		if made > 64 {
			t.Fatal("stack space never exhausted")
		}
	}
	d.terminate(u)
	if _, err := d.NewThread(u, u.Image.Entry); err == nil {
		t.Fatal("thread creation on terminated uProcess must fail")
	}
}

func TestThreadStateStrings(t *testing.T) {
	for _, s := range []ThreadState{ThreadRunnable, ThreadRunning, ThreadParked, ThreadDead, ThreadState(9)} {
		if s.String() == "" {
			t.Fatal("empty state string")
		}
	}
}

func TestSwitchCostIsSubMicrosecond(t *testing.T) {
	// The layer-1 basis for Table 1: cycles per park-switch round trip.
	d := newDomain(t, 1)
	ua, _ := d.CreateUProc("A", parkLoopProgram(d, "A"))
	ub, _ := d.CreateUProc("B", parkLoopProgram(d, "B"))
	d.AttachThread(0, ua.Threads()[0])
	d.AttachThread(0, ub.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(0)
	core.Run(200) // warm up
	startCycles := core.Cycles
	parks0, _ := d.CoreStats(0)
	core.Run(20000)
	parks1, _ := d.CoreStats(0)
	nSwitch := parks1 - parks0
	if nSwitch < 50 {
		t.Fatalf("too few switches: %d", nSwitch)
	}
	nsPerSwitch := d.Machine.NsFor(core.Cycles-startCycles) / float64(nSwitch)
	// The paper's Table 1: 161ns average. Allow a band around it; the
	// loop body adds a few ns.
	if nsPerSwitch < 80 || nsPerSwitch > 400 {
		t.Fatalf("park switch = %.1f ns/switch, want ~161ns", nsPerSwitch)
	}
	_ = callgate.FnPark
}
