package uproc

import (
	"testing"
)

func TestReleaseIdleCoreImmediate(t *testing.T) {
	d := newDomain(t, 2)
	moved, err := d.ReleaseCore(1, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("moved %d threads off an idle core", moved)
	}
	if !d.Offline(1) {
		t.Fatal("core not offline")
	}
	if !d.Machine.Core(1).Halted {
		t.Fatal("idle released core not halted")
	}
	// Offline cores refuse wakes and dispatch nothing from StartCore.
	if ok, err := d.Wake(1); err != nil || ok {
		t.Fatalf("Wake on offline core: ok=%v err=%v", ok, err)
	}
	if err := d.StartCore(1); err != nil {
		t.Fatal(err)
	}
	if d.Current(1) != nil {
		t.Fatal("StartCore dispatched onto an offline core")
	}
}

func TestReleaseRehomesQueuedThreads(t *testing.T) {
	d := newDomain(t, 3)
	prog := parkLoopProgram(d, "A")
	prog.StackSize = 6 * threadStackSize
	u, err := d.CreateUProc("A", prog)
	if err != nil {
		t.Fatal(err)
	}
	t1 := u.Threads()[0]
	t2, err := d.NewThread(u, u.Image.Entry)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := d.NewThread(u, u.Image.Entry)
	if err != nil {
		t.Fatal(err)
	}
	d.AttachThread(2, t1)
	d.AttachThread(2, t2)
	d.AttachThread(2, t3)
	moved, err := d.ReleaseCore(2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 3 {
		t.Fatalf("moved %d, want 3", moved)
	}
	if got := len(d.Runqueue(0)) + len(d.Runqueue(1)); got != 3 {
		t.Fatalf("survivor queues hold %d threads, want 3", got)
	}
	if len(d.Runqueue(2)) != 0 {
		t.Fatal("released core still holds threads")
	}
}

func TestReleaseRunningCoreDrainsAtGate(t *testing.T) {
	d := newDomain(t, 2)
	u, err := d.CreateUProc("A", parkLoopProgram(d, "A"))
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 (the re-home target) is started idle so a later Wake can
	// dispatch onto it.
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	d.AttachThread(1, u.Threads()[0])
	if err := d.StartCore(1); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(1)
	core.Run(50) // mid-execution: the thread is live on the core
	if d.Current(1) == nil {
		t.Fatal("setup: no running thread")
	}
	moved, err := d.ReleaseCore(1, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("release moved the running thread early: %d", moved)
	}
	// The running thread is NOT killed — it drains at its next park.
	if d.Current(1) == nil {
		t.Fatal("release killed the running thread")
	}
	for i := 0; i < 10_000 && !core.Halted; i++ {
		core.Step()
	}
	if !core.Halted {
		t.Fatal("released core never drained")
	}
	if core.Fault != nil {
		t.Fatalf("fault during drain: %v", core.Fault)
	}
	if d.Current(1) != nil || len(d.Runqueue(1)) != 0 {
		t.Fatal("released core still owns work after drain")
	}
	// The thread survived the move: it sits runnable on the target core.
	if len(d.Runqueue(0)) != 1 {
		t.Fatalf("target core holds %d threads, want 1", len(d.Runqueue(0)))
	}
	if th := d.Runqueue(0)[0]; th.State != ThreadRunnable {
		t.Fatalf("migrated thread state %v", th.State)
	}
	// And it resumes on the granted core without losing its context.
	if ok, err := d.Wake(0); err != nil || !ok {
		t.Fatalf("Wake(0) after rehome: ok=%v err=%v", ok, err)
	}
	d.Machine.Core(0).Run(500)
	if d.Machine.Core(0).Fault != nil {
		t.Fatalf("resumed thread faulted: %v", d.Machine.Core(0).Fault)
	}
	parks, _ := d.CoreStats(0)
	if parks == 0 {
		t.Fatal("resumed thread made no progress")
	}
}

func TestAdmitCoreReverses(t *testing.T) {
	d := newDomain(t, 2)
	if _, err := d.ReleaseCore(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.AdmitCore(1); err != nil {
		t.Fatal(err)
	}
	if d.Offline(1) {
		t.Fatal("core still offline after admit")
	}
	// The admitted core schedules again.
	u, err := d.CreateUProc("A", parkLoopProgram(d, "A"))
	if err != nil {
		t.Fatal(err)
	}
	d.AttachThread(1, u.Threads()[0])
	if err := d.StartCore(1); err != nil {
		t.Fatal(err)
	}
	if d.Current(1) == nil {
		t.Fatal("admitted core did not dispatch")
	}
}

func TestReleaseFenceInteraction(t *testing.T) {
	d := newDomain(t, 3)
	// A fenced core cannot be released or admitted.
	if _, _, err := d.FenceCore(2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReleaseCore(2, nil); err == nil {
		t.Fatal("released a fenced core")
	}
	if err := d.AdmitCore(2); err == nil {
		t.Fatal("admitted a fenced core")
	}
	// An offline core is not a valid re-home target for either mechanism.
	if _, err := d.ReleaseCore(1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReleaseCore(0, []int{1}); err == nil {
		t.Fatal("release targeted an offline core")
	}
	if _, _, err := d.FenceCore(0, []int{1}); err == nil {
		t.Fatal("fence targeted an offline core")
	}
	// Double release is idempotent.
	if moved, err := d.ReleaseCore(1, nil); err != nil || moved != 0 {
		t.Fatalf("double release: moved=%d err=%v", moved, err)
	}
}

func TestReleasePreemptKicksDrain(t *testing.T) {
	// The cluster-side revocation pattern: release, then Preempt to force
	// the running thread to a gate boundary promptly instead of waiting
	// for its next voluntary park.
	d := newDomain(t, 2)
	u, err := d.CreateUProc("A", spinProgram("A"))
	if err != nil {
		t.Fatal(err)
	}
	d.AttachThread(1, u.Threads()[0])
	if err := d.StartCore(1); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(1)
	core.Run(100)
	if _, err := d.ReleaseCore(1, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := d.Preempt(1, SchedCommand{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000 && !core.Halted; i++ {
		core.Step()
	}
	if !core.Halted || core.Fault != nil {
		t.Fatalf("spin thread not drained: halted=%v fault=%v", core.Halted, core.Fault)
	}
	if len(d.Runqueue(0)) != 1 {
		t.Fatalf("spin thread not re-homed: %d on target", len(d.Runqueue(0)))
	}
}
