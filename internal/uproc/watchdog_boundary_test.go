package uproc

import (
	"strconv"
	"strings"
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/smas"
	"vessel/internal/trace"
)

// bulkWorkProgram spins on a Work{n} instruction: each retirement charges n
// cycles in one lump, the worst case for budget-boundary accounting.
func bulkWorkProgram(name string, n int64) *smas.Program {
	a := cpu.NewAssembler()
	a.Label("loop")
	a.Emit(cpu.Work{N: n})
	a.JmpTo("loop")
	return &smas.Program{Name: name, Asm: a, PIE: true, DataSize: mem.PageSize, StackSize: 2 * mem.PageSize}
}

// wdRun drives one runaway under the watchdog with a fixed quantum and
// returns the burn reported at the kill, the burns observed at every
// preemption boundary before it, and the full event log.
func wdRun(t *testing.T, prog func(string) *smas.Program, hard int64, disableFast bool) (killBurn int64, boundary []int64, log string) {
	t.Helper()
	old := cpu.DisableFastPath
	cpu.DisableFastPath = disableFast
	defer func() { cpu.DisableFastPath = old }()

	d := newDomain(t, 1)
	d.Watchdog = &Watchdog{HardBudgetCycles: hard}
	d.Events = trace.NewEventLog(4096)
	u, err := d.CreateUProc("spin", prog("spin"))
	if err != nil {
		t.Fatal(err)
	}
	d.AttachThread(0, u.Threads()[0])
	if err := d.StartCore(0); err != nil {
		t.Fatal(err)
	}
	core := d.Machine.Core(0)
	for round := 0; round < 200 && u.State != UProcTerminated; round++ {
		core.Run(400)
		if err := d.Preempt(0, SchedCommand{}); err != nil {
			t.Fatal(err)
		}
		core.Run(100) // deliver the Uintr, cross the gate, land the check
		if u.State != UProcTerminated {
			boundary = append(boundary, u.Threads()[0].BurnCycles)
		}
	}
	if u.State != UProcTerminated {
		t.Fatalf("runaway survived: burn=%d", u.Threads()[0].BurnCycles)
	}
	log = d.Events.String()
	i := strings.Index(log, "burn=")
	if i < 0 {
		t.Fatalf("no burn in watchdog.kill event:\n%s", log)
	}
	f := strings.Fields(log[i+len("burn="):])[0]
	killBurn, err = strconv.ParseInt(f, 10, 64)
	if err != nil {
		t.Fatalf("burn field %q: %v", f, err)
	}
	return killBurn, boundary, log
}

// TestWatchdogKillsAtFirstBoundaryPastBudget pins the boundary semantics:
// the kill lands at the FIRST preemption boundary whose accrued burn
// exceeds the hard budget — never a boundary early (a boundary at or under
// budget must survive) and never a boundary late (overshoot is bounded by
// one quantum's charge).
func TestWatchdogKillsAtFirstBoundaryPastBudget(t *testing.T) {
	const hard = 6000
	killBurn, boundary, _ := wdRun(t, spinProgram, hard, false)
	if killBurn <= hard {
		t.Fatalf("killed at burn %d, budget %d not yet blown", killBurn, hard)
	}
	var prev int64
	for i, b := range boundary {
		if b > hard {
			t.Fatalf("boundary %d survived with burn %d > budget %d", i, b, hard)
		}
		if b < prev {
			t.Fatalf("burn not monotone across boundaries: %v", boundary)
		}
		prev = b
	}
	// Overshoot past the budget is bounded by a single quantum's charge:
	// the slice between the last surviving boundary and the kill.
	if overshoot := killBurn - hard; overshoot > killBurn-prev {
		t.Fatalf("overshoot %d exceeds one quantum's charge %d", overshoot, killBurn-prev)
	}
}

// TestWatchdogBoundaryBulkCharge repeats the boundary check with a bulk
// Work instruction charging 900 cycles per retirement — a single
// instruction can step burn straight over the budget, and the accounting
// must neither kill early nor lose the lumpy charge.
func TestWatchdogBoundaryBulkCharge(t *testing.T) {
	const hard = 6000
	killBurn, boundary, _ := wdRun(t, func(name string) *smas.Program {
		return bulkWorkProgram(name, 900)
	}, hard, false)
	if killBurn <= hard {
		t.Fatalf("killed at burn %d under budget %d", killBurn, hard)
	}
	for i, b := range boundary {
		if b > hard {
			t.Fatalf("boundary %d survived with burn %d > budget %d", i, b, hard)
		}
	}
}

// TestWatchdogBoundaryFastPathInvisible is the PR-5 regression: the
// decoded-fetch cache and bulk batching must not move the kill boundary by
// a single cycle. The entire event history — kill included — must be
// byte-identical with the fast path on and off, for both per-instruction
// and bulk-charge workloads.
func TestWatchdogBoundaryFastPathInvisible(t *testing.T) {
	if cpu.DisableFastPath {
		t.Skip("fast path globally disabled")
	}
	progs := map[string]func(string) *smas.Program{
		"spin": spinProgram,
		"bulk": func(name string) *smas.Program { return bulkWorkProgram(name, 900) },
	}
	for name, prog := range progs {
		fastBurn, fastB, fastLog := wdRun(t, prog, 6000, false)
		slowBurn, slowB, slowLog := wdRun(t, prog, 6000, true)
		if fastBurn != slowBurn {
			t.Fatalf("%s: kill burn fast=%d slow=%d", name, fastBurn, slowBurn)
		}
		if len(fastB) != len(slowB) {
			t.Fatalf("%s: boundary count fast=%d slow=%d", name, len(fastB), len(slowB))
		}
		for i := range fastB {
			if fastB[i] != slowB[i] {
				t.Fatalf("%s: boundary %d burn fast=%d slow=%d", name, i, fastB[i], slowB[i])
			}
		}
		if fastLog != slowLog {
			t.Fatalf("%s: event logs diverge with fast path:\nfast:\n%s\nslow:\n%s", name, fastLog, slowLog)
		}
	}
}
