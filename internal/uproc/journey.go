package uproc

import (
	"fmt"

	"vessel/internal/callgate"
	"vessel/internal/cpu"
	"vessel/internal/obs/journey"
	"vessel/internal/uintr"
)

// AttachJourney installs request-journey tracing across the domain's
// layer-1 crossing seams: every call-gate body invocation and every
// SENDUIPI disposition lands in the tracer's flight recorder, and each
// deferred-delivery window (a receiver descheduled or suppressed at
// SENDUIPI time, conventionally UITT index i → core i) becomes its own
// journey living in the uintr segment from the first deferred post
// until the receiver reattaches and its PIR flushes. The hooks chain
// with anything already installed (AttachObs and the fault injector use
// the same discipline). Attaching a nil tracer is a no-op.
func (d *Domain) AttachJourney(t *journey.Tracer) {
	if t == nil {
		return
	}
	d.Journey = t

	// Gate crossings: the callgate.OnInvoke seam.
	prevInvoke := d.RT.OnInvoke
	d.RT.OnInvoke = func(c *cpu.Core, fid callgate.FuncID, name string) {
		t.Event(d.coreTime(c), "gate.invoke", name)
		if prevInvoke != nil {
			prevInvoke(c, fid, name)
		}
	}

	// SENDUIPI dispositions, with one open deferred-window journey per
	// receiver; repeated deferred posts fold into it (the PIR bitmap
	// semantics AttachObs's windows share).
	windows := make(map[int]*journey.Journey)
	prevSend := d.Sched.OnSend
	d.Sched.OnSend = func(idx int, vector uint8, out uintr.Outcome) {
		var at = d.Eng.Now()
		if idx >= 0 && idx < d.Machine.NumCores() {
			at = d.coreTime(d.Machine.Core(idx))
		}
		t.Event(at, "uintr.send", fmt.Sprintf("idx=%d vec=%d out=%s", idx, vector, out))
		if (out == uintr.Deferred || out == uintr.Suppressed) &&
			idx >= 0 && idx < d.Machine.NumCores() {
			if windows[idx] == nil {
				j := t.Mint(fmt.Sprintf("uintr.core%d", idx), at)
				j.To(journey.SegUintr, at)
				windows[idx] = j
			}
		}
		if prevSend != nil {
			prevSend(idx, vector, out)
		}
	}
	for i := range d.cores {
		i := i
		r := d.cores[i].receiver
		if r == nil {
			continue
		}
		prevFlush := r.OnFlush
		r.OnFlush = func(flushed uint64) {
			at := d.coreTime(d.Machine.Core(i))
			t.Event(at, "uintr.flush", fmt.Sprintf("idx=%d vectors=%d", i, flushed))
			if j := windows[i]; j != nil {
				delete(windows, i)
				j.Finish(at)
			}
			if prevFlush != nil {
				prevFlush(flushed)
			}
		}
	}
}
