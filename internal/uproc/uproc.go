// Package uproc implements the uProcess abstraction (§4): applications that
// share one SMAS, enter a userspace privileged mode through the call gate,
// park voluntarily or are preempted by user interrupts, and are context
// switched between entirely in userspace — a core moves from one uProcess
// to another by restoring a saved stack pointer and writing a PKRU value,
// with no kernel involvement.
//
// A Domain wires together the substrates: SMAS (address space and message
// pipe), the call-gate runtime, UINTR routing, and the simulated kernel
// that hosts the kProcesses. Threads are scheduled from per-core FIFO
// queues exactly as §4.5 describes; the scheduler communicates with cores
// through per-core command queues plus a user interrupt.
package uproc

import (
	"fmt"

	"vessel/internal/callgate"
	"vessel/internal/cpu"
	"vessel/internal/kernel"
	"vessel/internal/mem"
	"vessel/internal/mpk"
	"vessel/internal/obs"
	"vessel/internal/obs/journey"
	"vessel/internal/sim"
	"vessel/internal/smas"
	"vessel/internal/trace"
	"vessel/internal/uintr"
)

// ThreadState tracks a uProcess thread through its lifecycle.
type ThreadState uint8

const (
	ThreadRunnable ThreadState = iota
	ThreadRunning
	ThreadParked
	ThreadDead
)

func (s ThreadState) String() string {
	switch s {
	case ThreadRunnable:
		return "runnable"
	case ThreadRunning:
		return "running"
	case ThreadParked:
		return "parked"
	case ThreadDead:
		return "dead"
	default:
		return fmt.Sprintf("ThreadState(%d)", uint8(s))
	}
}

// UProcState tracks a uProcess.
type UProcState uint8

const (
	UProcRunning UProcState = iota
	UProcTerminated
)

// Thread is a uProcess thread: a register context, a stack inside the
// uProcess region, and scheduling state. Thread management is entirely
// userspace (§5.2.2): the kernel never sees these.
type Thread struct {
	ID int
	U  *UProc

	savedRegs [cpu.NumRegs]cpu.Word
	savedRSP  mem.Addr
	savedUIF  bool
	State     ThreadState

	// Switches counts context switches into this thread.
	Switches uint64
	// BurnCycles accumulates cycles executed since the thread's last
	// voluntary park — the watchdog's runaway signal. Preemption does not
	// reset it: a thread that only ever loses the core involuntarily is
	// exactly the thread the watchdog exists to catch.
	BurnCycles int64
}

// UProc is one uProcess.
type UProc struct {
	ID    int
	Name  string
	Image *smas.Image
	PKRU  mpk.PKRU
	State UProcState
	KProc *kernel.KProcess

	threads     []*Thread
	stackCursor mem.Addr
	// FaultSignals counts faults the runtime intercepted for this
	// uProcess (§4.3).
	FaultSignals int
}

// Threads returns the uProcess's threads.
func (u *UProc) Threads() []*Thread { return u.threads }

// SchedCommand is a scheduler→core message in the per-core FIFO (§4.3).
type SchedCommand struct {
	// Kill, when set, terminates the named uProcess on this core.
	Kill *UProc
	// Activate, when non-nil, enqueues a thread on the core before the
	// switch decision.
	Activate *Thread
}

// coreState is the runtime's per-core bookkeeping, conceptually in the
// runtime region.
type coreState struct {
	runq    []*Thread
	cmds    []SchedCommand
	current *Thread
	// receiver is the Uintr endpoint the scheduler signals (§4.3).
	receiver *uintr.Receiver
	// Preemptions counts Uintr-driven switches on this core.
	Preemptions uint64
	// Parks counts voluntary switches.
	Parks uint64
	// dispatchCycles is the core's cycle counter when current was
	// activated, so the watchdog can charge the elapsed slice to the
	// thread at the next gate boundary.
	dispatchCycles int64
	// releaseTo holds the re-home targets of a pending ReleaseCore: when
	// the offline core reaches its next gate boundary, switchNext drains
	// any remaining work onto these cores instead of dispatching. See
	// release.go.
	releaseTo []int
}

// Watchdog is the scheduler's per-uProcess cycle-budget policy: a thread
// that keeps burning cycles without a voluntary park is first counted as
// overrunning (past SoftBudgetCycles) and then, past HardBudgetCycles, its
// whole uProcess is killed — preempt-then-kill, so a runaway or wedged
// uProcess cannot monopolize a core indefinitely. Budgets are checked at
// gate boundaries (the preemption path), which is exactly where the real
// runtime regains control of the core.
type Watchdog struct {
	SoftBudgetCycles int64
	HardBudgetCycles int64
	// Overruns counts soft-budget violations observed at preemptions;
	// Kills counts uProcesses terminated for blowing the hard budget.
	Overruns uint64
	Kills    uint64
}

// Domain is a scheduling domain: a SMAS, its runtime, and the cores it
// manages.
type Domain struct {
	S       *smas.SMAS
	RT      *callgate.Runtime
	Machine *cpu.Machine
	Kernel  *kernel.Kernel
	Eng     *sim.Engine

	GatePark    *callgate.Gate
	GateSched   *callgate.Gate
	GateExit    *callgate.Gate
	GateSyscall *callgate.Gate

	// Sys is the runtime's syscall-interposition service (§5.2.4).
	Sys *SyscallTable

	handlerAddr mem.Addr
	// Sched is the scheduler-side UINTR sender: entry i targets core i.
	Sched *uintr.Sender

	// Watchdog, when non-nil, arms the cycle-budget policy that kills
	// runaway uProcesses at gate boundaries.
	Watchdog *Watchdog
	// Events, when non-nil, receives the containment event stream
	// (injections, contained faults, watchdog kills, reclaims) — the
	// determinism witness of the chaos harness.
	Events *trace.EventLog
	// ParkFilter, when non-nil, is consulted before a voluntary park takes
	// effect; returning false suppresses the yield, modelling a runaway
	// thread that stops calling park(). Installed by the fault injector.
	ParkFilter func(u *UProc) bool
	// OnActivate, when non-nil, observes every switch-in. The chaos
	// benchmarks measure survivor scheduling latency here, because
	// application images cannot carry Go hooks (the loader's code
	// inspection rejects them).
	OnActivate func(core int, t *Thread)
	// Obs, when non-nil, is the observability layer; install it with
	// AttachObs so the layer-1 hooks (WRPKRU, gate bodies, UINTR
	// dispositions, pkey lifecycle) are wired too.
	Obs *obs.Observer
	// Journey, when non-nil, is the request-journey tracer; install it
	// with AttachJourney so the crossing seams (gate invokes, SENDUIPI
	// dispositions with deferred-delivery windows, kills) feed the
	// flight recorder and deferred-window journeys.
	Journey *journey.Tracer

	cores      []*coreState
	uprocs     []*UProc
	nextThread int
	privPKRU   mpk.PKRU
	// fenced marks cores withdrawn from placement by the self-healing
	// layer: a fenced core is never woken and never receives new threads.
	// See fence.go.
	fenced []bool
	// offline marks cores released back to the cluster by the two-level
	// scheduler: unlike fencing, release is reversible (AdmitCore) and
	// never kills the running thread — the core drains lazily at its next
	// gate boundary. See release.go.
	offline []bool
}

// event records into the containment event log, when one is attached.
func (d *Domain) event(name, detail string) {
	if d.Events != nil {
		d.Events.Record(d.Eng.Now(), name, detail)
	}
}

// NewDomain builds a domain managing all cores of the machine.
func NewDomain(eng *sim.Engine, m *cpu.Machine) (*Domain, error) {
	s, err := smas.New(m, m.NumCores())
	if err != nil {
		return nil, err
	}
	d := &Domain{
		S:        s,
		RT:       callgate.NewRuntime(s),
		Machine:  m,
		Kernel:   kernel.New(eng, m.Costs),
		Eng:      eng,
		cores:    make([]*coreState, m.NumCores()),
		privPKRU: s.RuntimePKRU(),
		fenced:   make([]bool, m.NumCores()),
		offline:  make([]bool, m.NumCores()),
	}
	for i := range d.cores {
		d.cores[i] = &coreState{}
		if err := s.SetRuntimeStack(i, s.RuntimeStackTop(i)); err != nil {
			return nil, err
		}
	}

	// Privileged runtime functions. Costs model the bookkeeping the real
	// runtime performs beyond the gate instructions themselves; they are
	// calibrated so a park-path switch lands at Table 1's ~161 ns.
	if d.GatePark, err = d.RT.Register(callgate.FnPark, "park", d.parkImpl, 120); err != nil {
		return nil, err
	}
	if d.GateSched, err = d.RT.Register(callgate.FnSchedule, "schedule", d.schedImpl, 160); err != nil {
		return nil, err
	}
	if d.GateExit, err = d.RT.Register(callgate.FnExit, "exit", d.exitImpl, 120); err != nil {
		return nil, err
	}
	if err := d.initSyscalls(); err != nil {
		return nil, err
	}

	// The Uintr handler: discard the vector, save the registers the gate
	// sequence clobbers, enter the privileged mode via the schedule gate,
	// and restore before returning to the interrupted context. The saves
	// matter when delivery lands inside another gate's tail (after its
	// stage-3 WRPKRU dropped back to the application PKRU but before its
	// ret): the interrupted sequence still needs RAX/RBX/RCX/R8/R9, and
	// the thread's context is only captured at the schedule gate's
	// boundary — by which point the prologue has overwritten them.
	h := cpu.NewAssembler()
	h.Emit(cpu.AddImm{Dst: cpu.RSP, Imm: 8}) // discard the pushed vector
	h.Emit(cpu.Push{Src: cpu.RAX})
	h.Emit(cpu.Push{Src: cpu.RBX})
	h.Emit(cpu.Push{Src: cpu.RCX})
	h.Emit(cpu.Push{Src: cpu.R8})
	h.Emit(cpu.Push{Src: cpu.R9})
	h.Emit(cpu.Call{Target: d.GateSched.Entry})
	h.Emit(cpu.Pop{Dst: cpu.R9})
	h.Emit(cpu.Pop{Dst: cpu.R8})
	h.Emit(cpu.Pop{Dst: cpu.RCX})
	h.Emit(cpu.Pop{Dst: cpu.RBX})
	h.Emit(cpu.Pop{Dst: cpu.RAX})
	h.Emit(cpu.UiRet{})
	base := s.NextTextBase()
	code, err := h.Assemble(base)
	if err != nil {
		return nil, err
	}
	if _, err := s.InstallText(code, smas.RuntimeKey); err != nil {
		return nil, err
	}
	d.handlerAddr = base

	// Wire UINTR: one receiver per core, one scheduler-side sender whose
	// UITT index i routes to core i.
	d.Sched = uintr.NewSender(m.NumCores(), m.Costs, nil)
	for i := 0; i < m.NumCores(); i++ {
		r := uintr.NewReceiver(i, d.handlerAddr)
		d.cores[i].receiver = r
		if err := d.Sched.Register(i, r, uint8(callgate.FnSchedule)); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// CreateUProc forks a hosting kProcess, attaches SMAS to it, loads the
// program, and creates the main thread (§5.1).
func (d *Domain) CreateUProc(name string, p *smas.Program) (*UProc, error) {
	kp, _ := d.Kernel.Fork(d.Machine.Phys, 1000, 0)
	if err := d.S.AttachKProcess(kp.AS); err != nil {
		return nil, err
	}
	img, err := d.S.Load(p)
	if err != nil {
		return nil, err
	}
	u := &UProc{
		ID:          len(d.uprocs),
		Name:        name,
		Image:       img,
		PKRU:        d.S.AppPKRU(img.Region.Key),
		KProc:       kp,
		stackCursor: img.Region.StackTop,
	}
	d.uprocs = append(d.uprocs, u)
	if _, err := d.NewThread(u, img.Entry); err != nil {
		return nil, err
	}
	return u, nil
}

// UProcs returns the domain's uProcesses.
func (d *Domain) UProcs() []*UProc { return d.uprocs }

// threadStackSize is each thread's stack reservation.
const threadStackSize = mem.PageSize

// NewThread creates a thread whose first activation jumps to entry
// (pthread_create in §5.2.2: stack + context allocated in userspace).
func (d *Domain) NewThread(u *UProc, entry mem.Addr) (*Thread, error) {
	if u.State == UProcTerminated {
		return nil, fmt.Errorf("uproc: %s is terminated", u.Name)
	}
	top := u.stackCursor
	if top-threadStackSize < u.Image.HeapBase {
		return nil, fmt.Errorf("uproc: %s: out of stack space", u.Name)
	}
	u.stackCursor -= threadStackSize
	// Seed the stack so the gate's final ret lands on the entry point.
	rsp := top - 8
	if f := d.S.AS.Write(rsp, 8, uint64(entry), d.S.RuntimePKRU()); f != nil {
		return nil, f
	}
	t := &Thread{
		ID:       d.nextThread,
		U:        u,
		savedRSP: rsp,
		savedUIF: true,
		State:    ThreadRunnable,
	}
	d.nextThread++
	u.threads = append(u.threads, t)
	return t, nil
}

// AttachThread queues t on core's FIFO runqueue.
func (d *Domain) AttachThread(core int, t *Thread) {
	d.cores[core].runq = append(d.cores[core].runq, t)
}

// Runqueue returns the threads queued on a core (not including current).
func (d *Domain) Runqueue(core int) []*Thread { return d.cores[core].runq }

// Migrate moves a queued thread from one core's FIFO to another's — the
// §4.5 load-balancing primitive ("the scheduler reassigns these threads to
// underloaded cores"). A thread currently running cannot be migrated; the
// scheduler preempts it first, after which it sits in a FIFO.
func (d *Domain) Migrate(t *Thread, from, to int) error {
	if from < 0 || from >= len(d.cores) || to < 0 || to >= len(d.cores) {
		return fmt.Errorf("uproc: core out of range")
	}
	if d.cores[from].current == t {
		return fmt.Errorf("uproc: thread %d is running on core %d; preempt it first", t.ID, from)
	}
	rq := d.cores[from].runq
	for i, q := range rq {
		if q == t {
			d.cores[from].runq = append(rq[:i], rq[i+1:]...)
			d.cores[to].runq = append(d.cores[to].runq, t)
			return nil
		}
	}
	return fmt.Errorf("uproc: thread %d not queued on core %d", t.ID, from)
}

// Current returns the thread running on a core.
func (d *Domain) Current(core int) *Thread { return d.cores[core].current }

// CoreStats returns (parks, preemptions) for a core.
func (d *Domain) CoreStats(core int) (uint64, uint64) {
	return d.cores[core].Parks, d.cores[core].Preemptions
}

// StartCore dispatches the first queued thread onto the core and prepares
// the core's architectural state. The core is then stepped by the caller.
func (d *Domain) StartCore(coreID int) error {
	cs := d.cores[coreID]
	c := d.Machine.Core(coreID)
	c.AS = d.S.AS
	c.PrivilegedPKRU = &d.privPKRU
	c.Hooks.OnFault = d.faultHook
	cs.receiver.Attach(c)
	if d.offline[coreID] {
		// The core is not granted to this domain: install the hooks (so a
		// later AdmitCore + Wake finds the core ready) but dispatch
		// nothing.
		c.Halted = true
		return nil
	}
	t := d.popRunnable(cs)
	if t == nil {
		// No tenant yet: park the core in its UMWAIT idle state instead
		// of failing with the architectural hooks half-installed (which
		// would leave it poised to execute from PC 0). Wake dispatches
		// the first thread once one is queued — a later launch, a clone,
		// or a supervised restart.
		c.Halted = true
		return nil
	}
	d.activate(c, cs, t)
	return d.dispatch(c)
}

// dispatch installs the architectural state for the core's current thread
// outside a gate: PC from the return address at the saved RSP, stack
// popped past it, PKRU from the task map. Used for first activations and
// idle wakeups, where no gate epilogue will perform the restore.
func (d *Domain) dispatch(c *cpu.Core) error {
	rsp, pkru, _, err := d.S.Task(c.ID)
	if err != nil {
		return err
	}
	v, f := d.S.AS.Read(rsp, 8, d.S.RuntimePKRU())
	if f != nil {
		return f
	}
	c.PC = mem.Addr(v)
	c.Regs[cpu.RSP] = uint64(rsp + 8)
	c.PKRU = pkru
	c.Halted = false
	return nil
}

// Wake brings an idle (UMWAIT-halted) core back: pending commands are
// drained and the next runnable thread dispatched. It reports whether the
// core is now running a thread.
func (d *Domain) Wake(coreID int) (bool, error) {
	cs := d.cores[coreID]
	c := d.Machine.Core(coreID)
	if c.Fault != nil {
		// A fail-stopped core (uncontained fault) stays down; waking it
		// would resume execution over corrupted runtime state.
		return false, nil
	}
	if d.fenced[coreID] {
		// A fenced core has been withdrawn from placement by the
		// self-healing layer; its work was drained elsewhere.
		return false, nil
	}
	if d.offline[coreID] {
		// An offline core belongs to another domain now (or is in the
		// cluster's free pool); its runqueue was re-homed at release.
		return false, nil
	}
	if cs.current != nil && !c.Halted {
		return true, nil
	}
	d.drainCommands(cs)
	t := d.popRunnable(cs)
	if t == nil {
		return false, nil
	}
	// Model the UMWAIT exit cost.
	c.Cycles += int64(float64(d.Machine.Costs.UmwaitWake) * d.Machine.Costs.ClockGHz)
	d.activate(c, cs, t)
	if err := d.dispatch(c); err != nil {
		return false, err
	}
	c.UIF = t.savedUIF
	return true, nil
}

// popRunnable pops the next live thread from the core FIFO, reaping
// threads of terminated uProcesses.
func (d *Domain) popRunnable(cs *coreState) *Thread {
	for len(cs.runq) > 0 {
		t := cs.runq[0]
		cs.runq = cs.runq[1:]
		if t.U.State == UProcTerminated || t.State == ThreadDead {
			t.State = ThreadDead
			continue
		}
		return t
	}
	return nil
}

// activate makes t the core's current thread: restores its register file
// and publishes its RSP/PKRU in the task map for the gate epilogue.
func (d *Domain) activate(c *cpu.Core, cs *coreState, t *Thread) {
	cs.current = t
	t.State = ThreadRunning
	t.Switches++
	cs.dispatchCycles = c.Cycles
	if d.OnActivate != nil {
		d.OnActivate(c.ID, t)
	}
	// Restore the thread's register file — except RSP: while inside the
	// runtime function the core still runs on the runtime stack, and the
	// gate epilogue reloads the task's RSP from the task map.
	rsp := c.Regs[cpu.RSP]
	c.Regs = t.savedRegs
	c.Regs[cpu.RSP] = rsp
	c.UIF = t.savedUIF
	if d.S.Virtual() {
		// Virtualized protection keys: the region's hardware slot may
		// have moved (or been evicted) since this thread last ran. Touch
		// pins the virtual key to this core, refills it if evicted, and
		// returns the slot the PKRU must grant; re-tagged pages are
		// charged to the core like the pkey_mprotect calls they model.
		slot, pages, err := d.S.TouchRegion(t.U.Image.Region, c.ID)
		if err != nil {
			panic(fmt.Sprintf("uproc: virtual key refill for %s failed: %v", t.U.Name, err))
		}
		if pages > 0 {
			c.Cycles += int64(pages) * d.Machine.Costs.PkeyRetagPage
		}
		t.U.PKRU = d.S.AppPKRU(slot)
	}
	if err := d.S.SetTask(c.ID, t.savedRSP, t.U.PKRU, uint64(t.ID)); err != nil {
		panic(fmt.Sprintf("uproc: task map update failed: %v", err))
	}
}

// saveCurrent captures the current thread's context at a gate boundary.
func (d *Domain) saveCurrent(c *cpu.Core, cs *coreState) *Thread {
	t := cs.current
	if t == nil {
		return nil
	}
	rsp, _, _, err := d.S.Task(c.ID)
	if err != nil {
		panic(fmt.Sprintf("uproc: task map read failed: %v", err))
	}
	t.savedRegs = c.Regs
	t.savedRSP = rsp
	t.savedUIF = c.UIF
	// Charge the slice just executed to the thread's watchdog budget.
	t.BurnCycles += c.Cycles - cs.dispatchCycles
	cs.dispatchCycles = c.Cycles
	return t
}

// switchNext installs the next runnable thread, or halts the core into the
// idle (UMWAIT) state when none exists. On a core released back to the
// cluster it instead drains remaining work onto the release targets and
// halts — the lazy half of ReleaseCore, landing exactly at the gate
// boundary where thread contexts are capturable.
func (d *Domain) switchNext(c *cpu.Core, cs *coreState) {
	if d.offline[c.ID] {
		d.finishRelease(c, cs)
		return
	}
	if t := d.popRunnable(cs); t != nil {
		d.activate(c, cs, t)
		return
	}
	cs.current = nil
	c.Halted = true
	// An idle core grants no application key: release its virtual-key pin
	// so the last thread's key becomes evictable.
	d.S.UnpinCore(c.ID)
}

// drainCommands applies pending scheduler commands on a core. Kill
// commands terminate uProcesses lazily, exactly as §5.1 describes: cores
// see the command the next time they are in privileged mode.
func (d *Domain) drainCommands(cs *coreState) {
	for _, cmd := range cs.cmds {
		if cmd.Kill != nil {
			d.terminate(cmd.Kill)
		}
		if cmd.Activate != nil {
			cs.runq = append(cs.runq, cmd.Activate)
		}
	}
	cs.cmds = cs.cmds[:0]
}

// terminate marks a uProcess dead. Its threads are reaped lazily: queued
// threads by popRunnable, running threads when their core next enters
// privileged mode — the §4.3/§5.1 lazy-termination protocol.
func (d *Domain) terminate(u *UProc) {
	u.State = UProcTerminated
	if d.Sys != nil {
		d.Sys.CloseAll(u)
	}
}

// parkImpl is the FnPark runtime function (§4.4): voluntary yield.
func (d *Domain) parkImpl(c *cpu.Core) *mem.Fault {
	cs := d.cores[c.ID]
	if cur := cs.current; cur != nil && d.ParkFilter != nil && !d.ParkFilter(cur.U) {
		// Fault injection: the park is suppressed, modelling a thread
		// that stops yielding. Charge the elapsed slice so the burn
		// budget keeps accruing until preemption and, eventually, the
		// watchdog reclaim the core.
		cur.BurnCycles += c.Cycles - cs.dispatchCycles
		cs.dispatchCycles = c.Cycles
		return nil
	}
	cs.Parks++
	t := cs.current
	d.requeueCurrent(c, cs)
	if t != nil {
		// A voluntary yield is cooperative behaviour: reset the
		// watchdog budget.
		t.BurnCycles = 0
	}
	d.switchNext(c, cs)
	return nil
}

// requeueCurrent drains scheduler commands, saves the current thread, and
// either requeues it or reaps it if its uProcess died.
func (d *Domain) requeueCurrent(c *cpu.Core, cs *coreState) {
	d.drainCommands(cs)
	t := d.saveCurrent(c, cs)
	if t == nil {
		return
	}
	if t.State == ThreadDead || t.U.State == UProcTerminated {
		t.State = ThreadDead
		return
	}
	t.State = ThreadRunnable
	cs.runq = append(cs.runq, t)
}

// schedImpl is the FnSchedule runtime function, reached from the Uintr
// handler (§4.3): apply the scheduler's commands and reschedule.
func (d *Domain) schedImpl(c *cpu.Core) *mem.Fault {
	cs := d.cores[c.ID]
	cs.Preemptions++
	t := cs.current
	d.requeueCurrent(c, cs)
	// Watchdog check at the preemption boundary: the budget was just
	// updated by saveCurrent inside requeueCurrent.
	if wd := d.Watchdog; wd != nil && t != nil && t.State == ThreadRunnable {
		if wd.HardBudgetCycles > 0 && t.BurnCycles > wd.HardBudgetCycles {
			wd.Kills++
			d.event("watchdog.kill", fmt.Sprintf("core=%d uproc=%s thread=%d burn=%d", c.ID, t.U.Name, t.ID, t.BurnCycles))
			d.obsKill(c, "watchdog", t.U.Name)
			d.killUProc(t.U, c.ID)
		} else if wd.SoftBudgetCycles > 0 && t.BurnCycles > wd.SoftBudgetCycles {
			wd.Overruns++
		}
	}
	d.switchNext(c, cs)
	return nil
}

// exitImpl is the FnExit runtime function: the current thread finishes.
func (d *Domain) exitImpl(c *cpu.Core) *mem.Fault {
	cs := d.cores[c.ID]
	d.drainCommands(cs)
	if t := cs.current; t != nil {
		t.State = ThreadDead
	}
	d.switchNext(c, cs)
	return nil
}

// Preempt sends the scheduler's command to a core and kicks it with a user
// interrupt — the preemption path of Figure 6, steps ① and ②. A core idling
// in UMWAIT is woken instead (UMWAIT monitors the command queue's address
// range, so the write itself is the wake signal).
func (d *Domain) Preempt(core int, cmd SchedCommand) error {
	cs := d.cores[core]
	cs.cmds = append(cs.cmds, cmd)
	c := d.Machine.Core(core)
	if cs.current == nil && c.Halted {
		_, err := d.Wake(core)
		return err
	}
	_, err := d.Sched.SendUIPI(core)
	return err
}

// killUProc is the shared containment kill path (fault attribution and the
// watchdog both land here): terminate the uProcess now on the calling core
// and push kill commands to every other core's queue so siblings die
// lazily at their next privileged entry (§4.3: "only needs to push the
// signal into FIFO queues of all related cores, instead of sending
// Uintrs").
func (d *Domain) killUProc(u *UProc, fromCore int) {
	d.terminate(u)
	for i, other := range d.cores {
		if i != fromCore {
			other.cmds = append(other.cmds, SchedCommand{Kill: u})
		}
	}
}

// DestroyUProc terminates a uProcess: kill commands are pushed to every
// core's queue (processed at their next privileged entry), and the region
// is reclaimed once no core still runs it (here: immediately after marking,
// since region reuse is guarded by key allocation).
func (d *Domain) DestroyUProc(u *UProc) error {
	for i := range d.cores {
		d.cores[i].cmds = append(d.cores[i].cmds, SchedCommand{Kill: u})
		// Kick busy cores so lazy termination converges; idle cores
		// will drain the command on their next activation.
		if d.cores[i].current != nil {
			if _, err := d.Sched.SendUIPI(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunningOn returns the ID of a core whose current thread belongs to u, or
// -1 when no core still runs the uProcess.
func (d *Domain) RunningOn(u *UProc) int {
	for i, cs := range d.cores {
		if cs.current != nil && cs.current.U == u {
			return i
		}
	}
	return -1
}

// ReclaimRegion frees a terminated uProcess's region and key. It refuses
// while any core still runs a thread of u: freeing the key then would let
// the allocator hand it to a new tenant while the old thread's PKRU still
// grants access — the stale-key reuse pitfall libmpk warns about. Lazy
// termination means the caller simply retries after the straggler core's
// next privileged entry.
func (d *Domain) ReclaimRegion(u *UProc) error {
	if u.State != UProcTerminated {
		return fmt.Errorf("uproc: %s still running", u.Name)
	}
	if core := d.RunningOn(u); core >= 0 {
		return fmt.Errorf("uproc: %s still on core %d; key %d must not be recycled under it", u.Name, core, u.Image.Region.Key)
	}
	d.event("reclaim", fmt.Sprintf("uproc=%s key=%d", u.Name, u.Image.Region.Key))
	return d.S.FreeRegion(u.Image.Region)
}

// faultHook is the kernel-initiated signal path of §4.3: a memory fault in
// uProcess code is intercepted by the runtime's pre-registered SIGSEGV
// handler, which identifies the faulty uProcess from CPUID_TO_TASK_MAP,
// broadcasts termination to all cores running it (via their command
// queues, not extra Uintrs), and reschedules this core.
func (d *Domain) faultHook(c *cpu.Core, f *mem.Fault) bool {
	cs := d.cores[c.ID]
	cur := cs.current
	if cur == nil {
		d.event("fatal.fault", fmt.Sprintf("core=%d addr=%#x kind=%d", c.ID, uint64(f.Addr), f.Kind))
		return false // fault outside any uProcess: fatal
	}
	if c.PKRU == d.privPKRU {
		d.event("fatal.runtime", fmt.Sprintf("core=%d uproc=%s addr=%#x kind=%d", c.ID, cur.U.Name, uint64(f.Addr), f.Kind))
		return false // fault in the trusted runtime: fatal by design
	}
	// Charge the kernel's signal delivery: the fault itself still traps.
	d.Kernel.SendSignal(cur.U.KProc, kernel.SIGSEGV)
	cur.U.FaultSignals++
	cur.State = ThreadDead
	d.event("contain.fault", fmt.Sprintf("core=%d uproc=%s addr=%#x kind=%d", c.ID, cur.U.Name, uint64(f.Addr), f.Kind))
	d.obsKill(c, "fault", cur.U.Name)
	d.killUProc(cur.U, c.ID)
	d.switchNext(c, cs)
	if cs.current == nil {
		// The fault was contained but nothing is left to run: the core
		// idles (UMWAIT) cleanly, with no Fault recorded, and can be
		// woken later — a crashed tenant must not look like a crashed
		// core. switchNext already halted it.
		return true
	}
	// Resume the next thread directly (the faulting instruction never
	// completes): emulate the gate's restore from the task map.
	return d.dispatch(c) == nil
}
