package uproc

import (
	"fmt"

	"vessel/internal/callgate"
	"vessel/internal/cpu"
	"vessel/internal/kernel"
	"vessel/internal/mem"
	"vessel/internal/mpk"
)

// This file implements the syscall interposition of §5.2.4: uProcesses
// never execute kernel syscalls directly — every call is intercepted and
// redirected to the trusted runtime via the call gate (FnSyscall). The
// runtime executes the syscall on the uProcess's behalf and tracks which
// uProcess owns each descriptor, closing both holes the paper describes:
//
//   - security: descriptors opened by uProcess A through a shared kProcess
//     are invisible to uProcess B — the brute-force probe finds nothing;
//   - correctness: a uProcess rescheduled into a different kProcess keeps
//     its descriptors, because the runtime (not the transient host
//     kProcess) owns the translation; the manager creates all kProcesses
//     with the same ACL so the runtime's accesses always succeed.

// Syscall operation codes, passed in RDI by the application stub.
const (
	SysOpenRead  cpu.Word = 1
	SysOpenWrite cpu.Word = 2
	SysCreat     cpu.Word = 3
	SysRead      cpu.Word = 4
	SysWrite     cpu.Word = 5
	SysClose     cpu.Word = 6
)

// SysErr is the in-band error return (−1 as a machine word).
const SysErr cpu.Word = ^cpu.Word(0)

// VFD is a virtual descriptor handed to uProcesses; the runtime maps it to
// the real kernel descriptor and its owning uProcess.
type VFD int

type vfdEntry struct {
	owner *UProc
	fd    kernel.FD
	host  *kernel.KProcess
}

// SyscallTable is the runtime's descriptor-ownership map.
type SyscallTable struct {
	d    *Domain
	next VFD
	open map[VFD]vfdEntry
	// host is the kProcess the runtime issues real syscalls through;
	// all domain kProcesses share the same ACL (§5.2.4), so any works.
	host *kernel.KProcess
	// Denied counts ownership violations, for tests and monitoring.
	Denied uint64
}

// initSyscalls wires the table and the FnSyscall gate. Called from
// NewDomain after the gates exist.
func (d *Domain) initSyscalls() error {
	d.Sys = &SyscallTable{d: d, next: 3, open: make(map[VFD]vfdEntry)}
	gate, err := d.RT.Register(callgate.FnSyscall, "syscall", d.sysImpl, 200)
	if err != nil {
		return err
	}
	d.GateSyscall = gate
	return nil
}

// hostProc lazily picks the runtime's syscall host.
func (s *SyscallTable) hostProc() (*kernel.KProcess, error) {
	if s.host != nil && s.host.Alive {
		return s.host, nil
	}
	for _, u := range s.d.uprocs {
		if u.KProc.Alive {
			s.host = u.KProc
			return s.host, nil
		}
	}
	return nil, fmt.Errorf("uproc: no live kProcess to host syscalls")
}

// Open opens a file for a uProcess and returns its virtual descriptor.
func (s *SyscallTable) Open(u *UProc, name string, write bool) (VFD, error) {
	host, err := s.hostProc()
	if err != nil {
		return -1, err
	}
	// Charge the (runtime-issued) syscall cost.
	s.d.Kernel.Syscall("open", 200)
	fd, err := host.Open(s.d.Kernel.FS(), name, write)
	if err != nil {
		return -1, err
	}
	v := s.next
	s.next++
	s.open[v] = vfdEntry{owner: u, fd: fd, host: host}
	return v, nil
}

// Creat creates a file for a uProcess.
func (s *SyscallTable) Creat(u *UProc, name string, mode uint32) (VFD, error) {
	host, err := s.hostProc()
	if err != nil {
		return -1, err
	}
	s.d.Kernel.Syscall("creat", 300)
	fd, err := host.Creat(s.d.Kernel.FS(), name, mode)
	if err != nil {
		return -1, err
	}
	v := s.next
	s.next++
	s.open[v] = vfdEntry{owner: u, fd: fd, host: host}
	return v, nil
}

// lookup enforces ownership: the §5.2.4 access-control check.
func (s *SyscallTable) lookup(u *UProc, v VFD) (vfdEntry, error) {
	e, ok := s.open[v]
	if !ok {
		return vfdEntry{}, fmt.Errorf("uproc: bad vfd %d (EBADF)", v)
	}
	if e.owner != u {
		s.Denied++
		return vfdEntry{}, fmt.Errorf("uproc: vfd %d not owned by %s (EACCES)", v, u.Name)
	}
	return e, nil
}

// Read reads up to n bytes through a uProcess's descriptor.
func (s *SyscallTable) Read(u *UProc, v VFD, n int) ([]byte, error) {
	e, err := s.lookup(u, v)
	if err != nil {
		return nil, err
	}
	s.d.Kernel.Syscall("read", 150)
	return e.host.ReadFD(e.fd, n)
}

// Write appends data through a uProcess's descriptor.
func (s *SyscallTable) Write(u *UProc, v VFD, data []byte) error {
	e, err := s.lookup(u, v)
	if err != nil {
		return err
	}
	s.d.Kernel.Syscall("write", 150)
	return e.host.WriteFD(e.fd, data)
}

// Close releases a uProcess's descriptor.
func (s *SyscallTable) Close(u *UProc, v VFD) error {
	e, err := s.lookup(u, v)
	if err != nil {
		return err
	}
	s.d.Kernel.Syscall("close", 100)
	delete(s.open, v)
	return e.host.Close(e.fd)
}

// CloseAll reaps every descriptor a terminated uProcess still holds.
func (s *SyscallTable) CloseAll(u *UProc) {
	for v, e := range s.open {
		if e.owner == u {
			e.host.Close(e.fd)
			delete(s.open, v)
		}
	}
}

// Probe reports whether v is visible to u — the brute-force check a
// malicious uProcess performs. With interposition it only sees its own.
func (s *SyscallTable) Probe(u *UProc, v VFD) bool {
	e, ok := s.open[v]
	return ok && e.owner == u
}

// --- layer-1 entry point ------------------------------------------------------

// readCString reads a NUL-terminated name (≤64 bytes) from uProcess memory
// with the *requesting uProcess's* PKRU, never the runtime's privileged
// view: a hostile or stray pointer (into the runtime region, a sibling's
// region, or an unterminated string abutting the end of the caller's own
// region) must fault exactly where the application itself would have
// faulted. Reading with the privileged view would make the runtime a
// confused deputy, leaking bytes the caller cannot reach into a file name.
func (d *Domain) readCString(addr mem.Addr, pkru mpk.PKRU) (string, *mem.Fault) {
	return d.S.AS.ReadCString(addr, 64, pkru)
}

// sysImpl is the FnSyscall runtime function: the ABI puts the operation in
// RDI, arguments in RSI and RBP (both gate-preserved), and the result in
// RDX. Buffers transfer one machine word at a time through the uProcess's
// own memory.
func (d *Domain) sysImpl(c *cpu.Core) *mem.Fault {
	cs := d.cores[c.ID]
	u := cs.current.U
	op := c.Regs[cpu.RDI]
	arg1 := c.Regs[cpu.RSI]
	arg2 := c.Regs[cpu.RBP]
	fail := func() { c.Regs[cpu.RDX] = SysErr }
	switch op {
	case SysOpenRead, SysOpenWrite, SysCreat:
		name, f := d.readCString(mem.Addr(arg1), u.PKRU)
		if f != nil {
			return f
		}
		var v VFD
		var err error
		switch op {
		case SysCreat:
			v, err = d.Sys.Creat(u, name, uint32(arg2))
		default:
			v, err = d.Sys.Open(u, name, op == SysOpenWrite)
		}
		if err != nil {
			fail()
			return nil
		}
		c.Regs[cpu.RDX] = cpu.Word(v)
	case SysRead:
		data, err := d.Sys.Read(u, VFD(arg1), 8)
		if err != nil || len(data) == 0 {
			fail()
			return nil
		}
		var word cpu.Word
		for i := 0; i < len(data) && i < 8; i++ {
			word |= cpu.Word(data[i]) << (8 * i)
		}
		// Buffer transfers use the caller's PKRU for the same
		// confused-deputy reason as readCString.
		if f := d.S.AS.Write(mem.Addr(arg2), 8, word, u.PKRU); f != nil {
			return f
		}
		c.Regs[cpu.RDX] = cpu.Word(len(data))
	case SysWrite:
		word, f := d.S.AS.Read(mem.Addr(arg2), 8, u.PKRU)
		if f != nil {
			return f
		}
		buf := make([]byte, 8)
		for i := range buf {
			buf[i] = byte(word >> (8 * i))
		}
		if err := d.Sys.Write(u, VFD(arg1), buf); err != nil {
			fail()
			return nil
		}
		c.Regs[cpu.RDX] = 8
	case SysClose:
		if err := d.Sys.Close(u, VFD(arg1)); err != nil {
			fail()
			return nil
		}
		c.Regs[cpu.RDX] = 0
	default:
		fail()
	}
	return nil
}
