package uproc

import (
	"fmt"

	"vessel/internal/mem"
	"vessel/internal/smas"
)

// This file implements the uProcess fork semantics of §5.3: a forked child
// must see the same address-space layout as its parent, but uProcesses
// share one SMAS, so a child cannot coexist with its parent in the same
// scheduling domain — its addresses would collide. Instead, uProcess
// clones into a *new* SMAS (a different domain) and synchronizes data, so
// the child owns an identical address space there.

// CloneUProc clones src (living in this domain) into dst: the same program
// is loaded into dst's SMAS, the resulting image must land at identical
// addresses (which it does when dst's allocation history mirrors this
// domain's — the manager creates fork-target domains fresh), and the
// parent's region contents are copied.
func (d *Domain) CloneUProc(src *UProc, dst *Domain, prog *smas.Program) (*UProc, error) {
	if dst == d {
		return nil, fmt.Errorf("uproc: cannot fork %s into its own domain: the child's "+
			"address space would collide with the parent's (§5.3)", src.Name)
	}
	if src.State == UProcTerminated {
		return nil, fmt.Errorf("uproc: %s is terminated", src.Name)
	}
	child, err := dst.CreateUProc(src.Name+"-child", prog)
	if err != nil {
		return nil, err
	}
	// The fork contract: identical layout. Verify rather than assume.
	if child.Image.Region.Base != src.Image.Region.Base ||
		child.Image.Region.Size != src.Image.Region.Size {
		return nil, fmt.Errorf("uproc: clone layout mismatch: parent region %#x+%#x, child %#x+%#x "+
			"(fork-target domains must have mirrored allocation histories)",
			uint64(src.Image.Region.Base), src.Image.Region.Size,
			uint64(child.Image.Region.Base), child.Image.Region.Size)
	}
	if child.Image.TextBase != src.Image.TextBase {
		return nil, fmt.Errorf("uproc: clone text mismatch: %#x vs %#x",
			uint64(src.Image.TextBase), uint64(child.Image.TextBase))
	}
	// Synchronize data: copy the parent's whole region into the child's
	// (same virtual addresses, different physical frames in the new
	// SMAS).
	rt := d.S.RuntimePKRU()
	var page [mem.PageSize]byte
	for off := uint64(0); off < src.Image.Region.Size; off += mem.PageSize {
		a := src.Image.Region.Base + mem.Addr(off)
		if f := d.S.AS.ReadBytesInto(a, page[:], rt); f != nil {
			return nil, f
		}
		if f := dst.S.AS.WriteBytes(a, page[:], dst.S.RuntimePKRU()); f != nil {
			return nil, f
		}
	}
	return child, nil
}
