package uproc

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/sim"
)

// BenchmarkPingPongSwitches measures host throughput of the layer-1
// machine executing the full park-gate context-switch path (simulated
// instructions per host second).
func BenchmarkPingPongSwitches(b *testing.B) {
	eng := sim.NewEngine()
	m := cpu.NewMachine(1, cpu.Default())
	d, err := NewDomain(eng, m)
	if err != nil {
		b.Fatal(err)
	}
	mk := func(name string) *UProc {
		u, err := d.CreateUProc(name, parkLoopProgram(d, name))
		if err != nil {
			b.Fatal(err)
		}
		return u
	}
	ua, ub := mk("a"), mk("b")
	d.AttachThread(0, ua.Threads()[0])
	d.AttachThread(0, ub.Threads()[0])
	if err := d.StartCore(0); err != nil {
		b.Fatal(err)
	}
	core := m.Core(0)
	b.ResetTimer()
	core.Run(b.N)
	if core.Fault != nil {
		b.Fatal(core.Fault)
	}
}

// BenchmarkUintrPreemption measures the preemption round trip: post, step
// through the handler and gate, resume.
func BenchmarkUintrPreemption(b *testing.B) {
	eng := sim.NewEngine()
	m := cpu.NewMachine(1, cpu.Default())
	d, err := NewDomain(eng, m)
	if err != nil {
		b.Fatal(err)
	}
	u, err := d.CreateUProc("spin", spinProgram("spin"))
	if err != nil {
		b.Fatal(err)
	}
	d.AttachThread(0, u.Threads()[0])
	if err := d.StartCore(0); err != nil {
		b.Fatal(err)
	}
	core := m.Core(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Preempt(0, SchedCommand{}); err != nil {
			b.Fatal(err)
		}
		core.Run(60)
		if core.Fault != nil {
			b.Fatal(core.Fault)
		}
	}
}
