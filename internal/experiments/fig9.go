package experiments

import (
	"fmt"

	"vessel/internal/harness"
)

// Fig9Point is one (system, load) cell of Figure 9.
type Fig9Point struct {
	System    string
	LoadFrac  float64
	TotalNorm float64
	BNorm     float64
	LTputMops float64
	P999Ns    int64
}

// Fig9 reproduces Figure 9: colocating an L-app with Linpack across load
// levels under VESSEL, Caladan (plain, DR-L, DR-H), Arachne and Linux CFS.
type Fig9 struct {
	Workload string
	Points   []Fig9Point
	// AvgDecline maps system → average (1 − total normalized
	// throughput) across its swept loads.
	AvgDecline map[string]float64
}

// fig9Systems lists the compared schedulers. Arachne and Linux are swept
// only over the low-load region, as in the paper (their latencies explode
// beyond it).
func fig9Systems() []string {
	return []string{"VESSEL", "Caladan", "Caladan-DR-L", "Caladan-DR-H", "Arachne", "Linux"}
}

// maxLoadFor caps the sweep per system the way the paper does ("we only
// increase the load to 1 Mops/s at most for Arachne and 0.3 Mops/s for
// Linux CFS" — expressed here as capacity fractions).
func maxLoadFor(name string) float64 {
	switch name {
	case "Arachne":
		return 0.15
	case "Linux":
		return 0.05
	default:
		return 1
	}
}

// Figure9Plan builds the Figure 9 sweep plan for "memcached" or "silo" —
// it is also the parallel-determinism benchmark's reference plan (it mixes
// all six schedulers, per-system load caps, and long/short cells).
func Figure9Plan(o Options, wl string) (harness.Plan, error) {
	if wl != "memcached" && wl != "silo" {
		return harness.Plan{}, fmt.Errorf("experiments: unknown workload %q", wl)
	}
	var plan harness.Plan
	for _, name := range fig9Systems() {
		cap := maxLoadFor(name)
		loads := make([]float64, 0, len(o.loadFractions()))
		for _, lf := range o.loadFractions() {
			if lf <= cap {
				loads = append(loads, lf)
			}
		}
		if len(loads) == 0 {
			// Capped systems still get their in-range point, as the
			// paper sweeps Arachne to 1 Mops and CFS to 0.3 Mops.
			loads = []float64{cap}
		}
		for _, lf := range loads {
			lapp := mcSpec(lf)
			if wl == "silo" {
				lapp = siloSpec(lf)
			}
			spec := o.spec(name, lapp, linpackSpec())
			if wl == "silo" && !o.Quick {
				spec.DurationNs = int64(150 * o.duration() / 60)
				spec.WarmupNs = int64(3 * o.warmup())
			}
			plan.Add(spec)
		}
	}
	return plan, nil
}

// Figure9 runs the sweep for "memcached" or "silo".
func Figure9(o Options, wl string) (Fig9, error) {
	plan, err := Figure9Plan(o, wl)
	if err != nil {
		return Fig9{}, err
	}
	results, err := o.exec().RunPlan(plan)
	if err != nil {
		return Fig9{}, err
	}
	out := Fig9{Workload: wl, AvgDecline: make(map[string]float64)}
	counts := make(map[string]int)
	for i, rr := range results {
		spec := plan.Specs[i]
		res := rr.Result
		la, _ := res.App(spec.Apps[0].Name)
		ba, _ := res.App("linpack")
		out.Points = append(out.Points, Fig9Point{
			System:    spec.Scheduler,
			LoadFrac:  spec.Apps[0].LoadFrac,
			TotalNorm: res.TotalNormTput(),
			BNorm:     ba.NormTput,
			LTputMops: la.Tput.PerSecond() / 1e6,
			P999Ns:    la.Latency.P999,
		})
		out.AvgDecline[spec.Scheduler] += 1 - res.TotalNormTput()
		counts[spec.Scheduler]++
	}
	for name, n := range counts {
		if n > 0 {
			out.AvgDecline[name] /= float64(n)
		}
	}
	return out, nil
}

// String renders the sweep.
func (f Fig9) String() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{
			p.System, f2(p.LoadFrac), f3(p.TotalNorm), f3(p.BNorm), f3(p.LTputMops), us(p.P999Ns),
		})
	}
	s := table(fmt.Sprintf("Figure 9 — colocating %s with Linpack", f.Workload),
		[]string{"system", "load", "total-norm", "B-norm", "L-Mops", "p999-µs"}, rows)
	for _, name := range []string{"VESSEL", "Caladan", "Caladan-DR-L", "Caladan-DR-H"} {
		if d, ok := f.AvgDecline[name]; ok {
			s += fmt.Sprintf("avg total-throughput decline %-14s %s\n", name+":", pct(d))
		}
	}
	s += "(paper: VESSEL 6.6% average decline; Caladan 16.1% average, 32.1% max)\n"
	return s
}

// SystemPoints filters the points of one system.
func (f Fig9) SystemPoints(name string) []Fig9Point {
	var out []Fig9Point
	for _, p := range f.Points {
		if p.System == name {
			out = append(out, p)
		}
	}
	return out
}
