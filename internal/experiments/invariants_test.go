package experiments

import (
	"testing"

	"vessel/internal/conformance"
	"vessel/internal/harness"
	"vessel/internal/sched"
	"vessel/internal/workload"
)

// TestSchedulerInvariants checks conservation laws that must hold for
// every scheduler under every configuration:
//
//   - completed ≤ offered for every L-app;
//   - the cycle breakdown sums to cores × measured duration;
//   - every latency quantile is ≥ the minimum service time scale and the
//     quantiles are ordered;
//   - a B-app's useful time never exceeds cores × duration;
//   - normalized throughputs are non-negative and the total never exceeds
//     1 + ε (it is a partition of machine capacity plus sampling noise).
func TestSchedulerInvariants(t *testing.T) {
	type scenario struct {
		name string
		mk   func() sched.Config
	}
	o := Options{Seed: 9, Quick: true}
	scenarios := []scenario{
		{"colo-mid", func() sched.Config {
			return o.baseConfig(o.mcApp(0.5), workload.Linpack())
		}},
		{"colo-overload", func() sched.Config {
			return o.baseConfig(o.mcApp(1.1), workload.Linpack())
		}},
		{"lapp-alone", func() sched.Config {
			return o.baseConfig(o.mcApp(0.3))
		}},
		{"bapp-alone", func() sched.Config {
			return o.baseConfig(workload.Membench())
		}},
		{"dense", func() sched.Config {
			cfg := o.baseConfig(
				workload.NewLApp("a", workload.Memcached(), 0.2e6),
				workload.NewLApp("b", workload.Memcached(), 0.2e6),
				workload.NewLApp("c", workload.Memcached(), 0.2e6),
			)
			cfg.Cores = 1
			return cfg
		}},
		{"bw-regulated", func() sched.Config {
			cfg := o.baseConfig(o.mcApp(0.4), workload.Membench())
			cfg.BWTargetFrac = 0.5
			return cfg
		}},
	}
	for _, name := range fig9Systems() {
		s, err := harness.SchedulerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range scenarios {
			cfg := sc.mk()
			// Keep Arachne/Linux within their operating envelopes the
			// way the paper does, except the invariants must hold
			// regardless — so run them anyway.
			res, err := s.Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, sc.name, err)
			}
			checkInvariants(t, name+"/"+sc.name, cfg, res)
		}
	}
}

// checkInvariants delegates to the conformance package's universal result
// checker — the conservation laws that used to live inline here, promoted
// so the differential harness and any other package can reuse them.
func checkInvariants(t *testing.T, tag string, cfg sched.Config, res sched.Result) {
	t.Helper()
	for _, v := range conformance.CheckResult(tag, cfg, res) {
		t.Errorf("%s", v)
	}
}

func TestSensitivityDirections(t *testing.T) {
	f, err := RunSensitivity(Options{Seed: 5, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	byKnob := map[string][]SensPoint{}
	for _, p := range f.Points {
		byKnob[p.Knob] = append(byKnob[p.Knob], p)
	}
	// Slower UINTR delivery must not improve VESSEL's tail.
	ud := byKnob["uintr-delivery"]
	if len(ud) != 3 || ud[2].P999Ns < ud[0].P999Ns {
		t.Fatalf("uintr sweep: %+v", ud)
	}
	// Costlier WRPKRU must not raise total throughput.
	wp := byKnob["wrpkru-cycles"]
	if len(wp) != 3 || wp[2].TotalNorm > wp[0].TotalNorm {
		t.Fatalf("wrpkru sweep: %+v", wp)
	}
	// A longer steal window burns more cycles polling: total norm falls.
	sw := byKnob["steal-window"]
	if len(sw) != 3 || sw[2].TotalNorm >= sw[0].TotalNorm {
		t.Fatalf("steal-window sweep: %+v", sw)
	}
	// A slower reallocation interval must not improve Caladan's tail.
	ri := byKnob["realloc-interval"]
	if len(ri) != 3 || ri[2].P999Ns < ri[0].P999Ns {
		t.Fatalf("realloc-interval sweep: %+v", ri)
	}
	if f.String() == "" {
		t.Fatal("render")
	}
}

func TestFigure7Exhibit(t *testing.T) {
	f, err := Figure7(Options{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.AppFrac["VESSEL"] <= f.AppFrac["Caladan"] {
		t.Fatalf("VESSEL app fraction %.3f should exceed Caladan's %.3f — \"fill the core with the applications' workloads\"",
			f.AppFrac["VESSEL"], f.AppFrac["Caladan"])
	}
	if f.VesselStrip == "" || f.CaladanStrip == "" {
		t.Fatal("strips missing")
	}
	if f.String() == "" {
		t.Fatal("render")
	}
}
