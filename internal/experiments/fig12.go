package experiments

import (
	"fmt"
	"sort"

	"vessel/internal/harness"
	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/workload"
)

// Fig12Point is one (system, cores) goodput measurement.
type Fig12Point struct {
	System      string
	Cores       int
	GoodputMops float64
}

// Fig12 reproduces CPU-core scalability (§6.3.3): goodput — the maximum
// throughput achievable within a 60 µs P999 limit — as the domain's core
// count grows. The control-plane saturation model (a single scheduler /
// IOKernel server) produces the same shape the paper measures: VESSEL
// scales to ~42 cores per domain, Caladan to ~34.
type Fig12 struct {
	Points []Fig12Point
	// Peak maps system → (cores, goodput) at its maximum.
	PeakCores map[string]int
}

// p999Limit is the goodput constraint.
const p999Limit = 60_000 // ns

// goodput binary-searches the max load meeting the P999 limit. The search
// is adaptive — each probe's spec depends on the previous probe's result —
// so the cell runs its probes sequentially through e.RunOne; with a cache
// attached, each probe is content-addressed, so re-running the figure
// replays the whole search from cache.
func goodput(system string, o Options, e *harness.Executor, cores int) (float64, error) {
	mk := func(frac float64) harness.RunSpec {
		spec := o.spec(system, mcSpec(frac), linpackSpec())
		spec.Cores = cores
		if o.Quick {
			spec.DurationNs = int64(8 * sim.Millisecond)
			spec.WarmupNs = int64(2 * sim.Millisecond)
		} else {
			spec.DurationNs = int64(25 * sim.Millisecond)
			spec.WarmupNs = int64(5 * sim.Millisecond)
		}
		return spec
	}
	capacity := sched.IdealLCapacity(cores, workload.Memcached())
	meets := func(frac float64) (bool, float64, error) {
		rr, err := e.RunOne(mk(frac))
		if err != nil {
			return false, 0, err
		}
		a, _ := rr.Result.App("memcached")
		ok := a.Latency.P999 <= p999Limit && a.Tput.PerSecond() >= 0.93*frac*capacity
		return ok, a.Tput.PerSecond(), nil
	}
	lo, hi := 0.0, 1.1
	iters := 9
	if o.Quick {
		iters = 6
	}
	var best float64
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		ok, tput, err := meets(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			best = tput
			lo = mid
		} else {
			hi = mid
		}
	}
	return best, nil
}

// Figure12 runs the core sweep. Each (system, cores) cell is an adaptive
// binary search, so cells — not individual runs — are the parallel unit.
func Figure12(o Options) (Fig12, error) {
	coreCounts := []int{32, 34, 36, 38, 40, 42, 44}
	if o.Quick {
		coreCounts = []int{32, 38, 42, 44}
	}
	systems := []string{"VESSEL", "Caladan-DR-L"}
	type cell struct {
		system string
		cores  int
	}
	var cells []cell
	for _, name := range systems {
		for _, n := range coreCounts {
			cells = append(cells, cell{system: name, cores: n})
		}
	}
	e := o.exec()
	goodputs := make([]float64, len(cells))
	err := e.Map(len(cells), func(i int) error {
		g, err := goodput(cells[i].system, o, e, cells[i].cores)
		if err != nil {
			return err
		}
		goodputs[i] = g
		return nil
	})
	if err != nil {
		return Fig12{}, err
	}
	out := Fig12{PeakCores: make(map[string]int)}
	bestGoodput := make(map[string]float64)
	for i, c := range cells {
		g := goodputs[i]
		out.Points = append(out.Points, Fig12Point{System: c.system, Cores: c.cores, GoodputMops: g / 1e6})
		if g > bestGoodput[c.system] {
			bestGoodput[c.system] = g
			out.PeakCores[c.system] = c.cores
		}
	}
	return out, nil
}

// String renders the figure.
func (f Fig12) String() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{p.System, fmt.Sprintf("%d", p.Cores), f3(p.GoodputMops)})
	}
	s := table("Figure 12 — goodput (P999 ≤ 60µs) vs domain core count",
		[]string{"system", "cores", "goodput-Mops"}, rows)
	names := make([]string, 0, len(f.PeakCores))
	for name := range f.PeakCores {
		names = append(names, name)
	}
	sort.Strings(names) // map order must not leak into rendered bytes
	for _, name := range names {
		s += fmt.Sprintf("%s peaks at %d cores\n", name, f.PeakCores[name])
	}
	s += "(paper: VESSEL scales to 42 cores (+25.4%% from 32), dips at 44; Caladan peaks at 34)\n"
	return s
}

// SystemPoints filters one system's points.
func (f Fig12) SystemPoints(name string) []Fig12Point {
	var out []Fig12Point
	for _, p := range f.Points {
		if p.System == name {
			out = append(out, p)
		}
	}
	return out
}
