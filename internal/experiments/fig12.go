package experiments

import (
	"fmt"

	"vessel/internal/sched"
	"vessel/internal/sched/caladan"
	"vessel/internal/sim"
	"vessel/internal/vessel"
	"vessel/internal/workload"
)

// Fig12Point is one (system, cores) goodput measurement.
type Fig12Point struct {
	System      string
	Cores       int
	GoodputMops float64
}

// Fig12 reproduces CPU-core scalability (§6.3.3): goodput — the maximum
// throughput achievable within a 60 µs P999 limit — as the domain's core
// count grows. The control-plane saturation model (a single scheduler /
// IOKernel server) produces the same shape the paper measures: VESSEL
// scales to ~42 cores per domain, Caladan to ~34.
type Fig12 struct {
	Points []Fig12Point
	// Peak maps system → (cores, goodput) at its maximum.
	PeakCores map[string]int
}

// p999Limit is the goodput constraint.
const p999Limit = 60_000 // ns

// goodput binary-searches the max load meeting the P999 limit.
func goodput(s sched.Scheduler, o Options, cores int) (float64, error) {
	mk := func(rate float64) sched.Config {
		app := workload.NewLApp("memcached", workload.Memcached(), rate)
		cfg := o.baseConfig(app, workload.Linpack())
		cfg.Cores = cores
		if o.Quick {
			cfg.Duration = 8 * sim.Millisecond
			cfg.Warmup = 2 * sim.Millisecond
		} else {
			cfg.Duration = 25 * sim.Millisecond
			cfg.Warmup = 5 * sim.Millisecond
		}
		return cfg
	}
	meets := func(rate float64) (bool, float64, error) {
		res, err := s.Run(mk(rate))
		if err != nil {
			return false, 0, err
		}
		a, _ := res.App("memcached")
		ok := a.Latency.P999 <= p999Limit && a.Tput.PerSecond() >= 0.93*rate
		return ok, a.Tput.PerSecond(), nil
	}
	lo, hi := 0.0, 1.1*sched.IdealLCapacity(cores, workload.Memcached())
	iters := 9
	if o.Quick {
		iters = 6
	}
	var best float64
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		ok, tput, err := meets(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			best = tput
			lo = mid
		} else {
			hi = mid
		}
	}
	return best, nil
}

// Figure12 runs the core sweep.
func Figure12(o Options) (Fig12, error) {
	coreCounts := []int{32, 34, 36, 38, 40, 42, 44}
	if o.Quick {
		coreCounts = []int{32, 38, 42, 44}
	}
	systems := []sched.Scheduler{
		vessel.Simulator{},
		caladan.Simulator{Variant: caladan.DRLow},
	}
	out := Fig12{PeakCores: make(map[string]int)}
	bestGoodput := make(map[string]float64)
	for _, s := range systems {
		for _, n := range coreCounts {
			g, err := goodput(s, o, n)
			if err != nil {
				return Fig12{}, err
			}
			out.Points = append(out.Points, Fig12Point{System: s.Name(), Cores: n, GoodputMops: g / 1e6})
			if g > bestGoodput[s.Name()] {
				bestGoodput[s.Name()] = g
				out.PeakCores[s.Name()] = n
			}
		}
	}
	return out, nil
}

// String renders the figure.
func (f Fig12) String() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{p.System, fmt.Sprintf("%d", p.Cores), f3(p.GoodputMops)})
	}
	s := table("Figure 12 — goodput (P999 ≤ 60µs) vs domain core count",
		[]string{"system", "cores", "goodput-Mops"}, rows)
	for name, cores := range f.PeakCores {
		s += fmt.Sprintf("%s peaks at %d cores\n", name, cores)
	}
	s += "(paper: VESSEL scales to 42 cores (+25.4%% from 32), dips at 44; Caladan peaks at 34)\n"
	return s
}

// SystemPoints filters one system's points.
func (f Fig12) SystemPoints(name string) []Fig12Point {
	var out []Fig12Point
	for _, p := range f.Points {
		if p.System == name {
			out = append(out, p)
		}
	}
	return out
}
