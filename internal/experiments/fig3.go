package experiments

import (
	"fmt"

	"vessel/internal/cpu"
	"vessel/internal/sim"
)

// Fig3Phase is one phase of Caladan's core-reallocation timeline.
type Fig3Phase struct {
	Name     string
	Duration sim.Duration
}

// Fig3 reproduces Figure 3: the timeline of a Caladan core reallocation —
// the kernel-mediated path whose total the paper measures at 5.3 µs, versus
// VESSEL's pure-userspace switch.
type Fig3 struct {
	Phases []Fig3Phase
	Total  sim.Duration
	// VesselPreempt is the corresponding uProcess path (Uintr → gate →
	// switch) for contrast.
	VesselPreempt sim.Duration
}

// Figure3 derives the timeline from the cost model (each phase is charged
// by the simulated kernel on every Caladan preemption; see
// kernel.IoctlIPI/PreemptSwitch).
func Figure3() Fig3 {
	cm := cpu.Default()
	phases := []Fig3Phase{
		{"scheduler: ioctl syscall", cm.CaladanIoctl},
		{"IPI delivery to victim core", cm.CaladanIPI},
		{"victim: kernel trap + SIGUSR to runtime", cm.CaladanTrapSig},
		{"runtime: save current task state", cm.CaladanUserSave},
		{"kernel: switch structures + page table", cm.CaladanKernSwap},
		{"restore to new application task", cm.CaladanRestore},
	}
	var total sim.Duration
	for _, p := range phases {
		total += p.Duration
	}
	return Fig3{
		Phases:        phases,
		Total:         total,
		VesselPreempt: cm.UintrDeliver + cm.VesselPreemptSwitch,
	}
}

// String renders the timeline.
func (f Fig3) String() string {
	rows := make([][]string, 0, len(f.Phases))
	var cum sim.Duration
	for _, p := range f.Phases {
		start := cum
		cum += p.Duration
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%v", p.Duration),
			fmt.Sprintf("%v → %v", start, cum),
		})
	}
	s := table("Figure 3 — Caladan core-reallocation timeline", []string{"phase", "cost", "interval"}, rows)
	s += fmt.Sprintf("total: %v (paper: 5.3µs average)\n", f.Total)
	s += fmt.Sprintf("VESSEL preemption path for contrast: %v (Uintr delivery + gate switch)\n", f.VesselPreempt)
	return s
}
