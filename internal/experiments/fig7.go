package experiments

import (
	"fmt"

	"vessel/internal/sched"
	"vessel/internal/sched/caladan"
	"vessel/internal/sim"
	"vessel/internal/trace"
	"vessel/internal/vessel"
	"vessel/internal/workload"
)

// Fig7 reproduces the execution-timeline comparison at the bottom of
// Figure 7: the same colocated workload under Caladan's two-level policy
// and VESSEL's one-level policy, rendered as per-core occupancy strips.
// Caladan's cores show steal-window polling (r) and kernel reallocation
// blocks (K) between application bursts; VESSEL's cores are filled with
// application work separated by sub-µs switches (s).
type Fig7 struct {
	VesselStrip  string
	CaladanStrip string
	// AppFrac maps system → fraction of the rendered window spent on
	// application work.
	AppFrac map[string]float64
}

// Figure7 runs both schedulers on the same workload with tracing and
// renders a 100 µs window. Tracing needs a live per-run trace.Recorder, so
// the two runs go directly through sched.Run — the executor contributes
// only its worker pool (one run per system, uncached).
func Figure7(o Options) (Fig7, error) {
	out := Fig7{AppFrac: make(map[string]float64)}
	window := 100 * sim.Microsecond
	systems := []sched.Scheduler{vessel.Simulator{}, caladan.Simulator{Variant: caladan.Plain}}
	type fig7Out struct {
		name  string
		strip string
		frac  float64
	}
	outs := make([]fig7Out, len(systems))
	err := o.exec().Map(len(systems), func(i int) error {
		s := systems[i]
		rec := trace.NewRecorder(1 << 20)
		const cores = 4
		mc := workload.NewLApp("memcached", workload.Memcached(),
			0.5*sched.IdealLCapacity(cores, workload.Memcached()))
		cfg := o.baseConfig(mc, workload.Linpack())
		cfg.Cores = cores
		cfg.Duration = 5 * sim.Millisecond
		cfg.Warmup = 1 * sim.Millisecond
		cfg.Trace = rec
		if _, err := sched.Run(s, cfg); err != nil {
			return err
		}
		from := sim.Time(cfg.Warmup)
		to := from.Add(window)
		strip := rec.Render(cfg.Cores, from, to, 100)
		var app, total sim.Duration
		for _, seg := range rec.Segments() {
			lo, hi := seg.Start, seg.End
			if lo < from {
				lo = from
			}
			if hi > to {
				hi = to
			}
			if hi <= lo {
				continue
			}
			d := hi.Sub(lo)
			total += d
			if seg.Kind == trace.App {
				app += d
			}
		}
		frac := 0.0
		if total > 0 {
			frac = float64(app) / float64(total)
		}
		outs[i] = fig7Out{name: s.Name(), strip: strip, frac: frac}
		return nil
	})
	if err != nil {
		return Fig7{}, err
	}
	for _, r := range outs {
		out.AppFrac[r.name] = r.frac
		if r.name == "VESSEL" {
			out.VesselStrip = r.strip
		} else {
			out.CaladanStrip = r.strip
		}
	}
	return out, nil
}

// String renders the exhibit.
func (f Fig7) String() string {
	s := "Figure 7 — execution timelines under the two policies (memcached + Linpack, 4 cores)\n\n"
	s += "Caladan (two-level, conservative):\n" + f.CaladanStrip + "\n"
	s += "VESSEL (one-level, uProcess switches):\n" + f.VesselStrip + "\n"
	s += fmt.Sprintf("application-work fraction of the window: VESSEL %s, Caladan %s\n",
		pct(f.AppFrac["VESSEL"]), pct(f.AppFrac["Caladan"]))
	s += "(the paper's Figure 7: \"the uProcess's scheduler can fill the core with the applications' workloads\")\n"
	return s
}
