package experiments

import (
	"sort"

	"vessel/internal/harness"
	"vessel/internal/memband"
	"vessel/internal/sim"
)

// Fig13aPoint is one (system, load) cell of the bandwidth-contended
// colocation experiment.
type Fig13aPoint struct {
	System     string
	LoadFrac   float64
	BudgetFrac float64 // highest bandwidth budget meeting the P999 limit
	TotalNorm  float64
	P999Ns     int64
}

// fig13aP999Limit is the tail-latency constraint under which the total
// normalized throughput is reported ("measure their total normalized
// throughput under the tail latency constraints", §6.3.4).
const fig13aP999Limit = 25_000 // ns

// Fig13a reproduces Figure 13a: memcached colocated with the
// memory-intensive membench, both schedulers using memory bandwidth as a
// core-scheduling metric. For each system and load, the harness finds the
// highest bandwidth budget that still meets the L-app's tail-latency
// constraint and reports the total normalized throughput there. VESSEL's
// µs-scale regulation keeps latency flat even at generous budgets, so it
// can give membench more of the machine; Caladan's 10 µs control loop and
// 5.3 µs reallocations force a more conservative budget.
type Fig13a struct {
	Points []Fig13aPoint
	// Advantage is VESSEL's average total-norm advantage over Caladan
	// across the sweep (paper: up to 43% higher).
	Advantage float64
}

// Figure13a runs the sweep. The budget search is not adaptive — every
// (system, load, budget) cell is declared up front — so the whole grid is
// one plan and the best-budget pick happens in the fold.
func Figure13a(o Options) (Fig13a, error) {
	budgets := []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2}
	if o.Quick {
		budgets = []float64{1.0, 0.8, 0.6, 0.4, 0.2}
	}
	systems := []string{"VESSEL", "Caladan-DR-L"}
	loads := o.loadFractions()
	var plan harness.Plan
	for _, name := range systems {
		for _, lf := range loads {
			for _, b := range budgets {
				spec := o.spec(name, mcSpec(lf), membenchSpec())
				// A 100% budget is no regulation at all; Validate rejects
				// BWTargetFrac ≥ 1, and 0 is its explicit "off" encoding.
				if b < 1 {
					spec.BWTargetFrac = b
				}
				plan.Add(spec)
			}
		}
	}
	results, err := o.exec().RunPlan(plan)
	if err != nil {
		return Fig13a{}, err
	}
	var out Fig13a
	sums := map[string]float64{}
	counts := map[string]int{}
	i := 0
	for _, name := range systems {
		for _, lf := range loads {
			best := Fig13aPoint{System: name, LoadFrac: lf}
			for _, b := range budgets {
				res := results[i].Result
				i++
				la, _ := res.App("memcached")
				if la.Latency.P999 > fig13aP999Limit {
					continue
				}
				if res.TotalNormTput() > best.TotalNorm {
					best.BudgetFrac = b
					best.TotalNorm = res.TotalNormTput()
					best.P999Ns = la.Latency.P999
				}
			}
			out.Points = append(out.Points, best)
			sums[name] += best.TotalNorm
			counts[name]++
		}
	}
	v := sums["VESSEL"] / float64(counts["VESSEL"])
	c := sums["Caladan-DR-L"] / float64(counts["Caladan-DR-L"])
	if c > 0 {
		out.Advantage = v/c - 1
	}
	return out, nil
}

// String renders the figure.
func (f Fig13a) String() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{p.System, f2(p.LoadFrac), pct(p.BudgetFrac), f3(p.TotalNorm), us(p.P999Ns)})
	}
	s := table("Figure 13a — memcached + membench, best bandwidth budget within P999 ≤ 25µs",
		[]string{"system", "load", "budget", "total-norm", "p999-µs"}, rows)
	s += "VESSEL total-throughput advantage over Caladan: " + pct(f.Advantage) +
		" average (paper: up to 43%)\n"
	return s
}

// Fig13bPoint is one (regulator, target) accuracy measurement.
type Fig13bPoint struct {
	Regulator string
	Target    float64 // fraction of natural consumption
	TargetGBs float64
	ActualGBs float64
	ErrorFrac float64
}

// Fig13b reproduces Figure 13b: the accuracy of memory-bandwidth
// regulation across throttling targets for VESSEL's duty-cycling, Intel
// MBA's delay throttle, and Linux CFS shares.
type Fig13b struct {
	Points []Fig13bPoint
	// AvgError maps regulator → mean |actual−target|/target.
	AvgError map[string]float64
}

// fig13bKey is the cache key of one regulation cell.
type fig13bKey struct {
	Regulator string         `json:"regulator"`
	Target    float64        `json:"target"`
	Config    memband.Config `json:"config"`
}

// fig13bEpoch versions the memband regulators' cached cells.
const fig13bEpoch = 1

// Figure13b runs the sweep. Regulation cells are not sched runs, so they
// go through the executor's Map + CachedJSON instead of a RunSpec plan.
func Figure13b(o Options) (Fig13b, error) {
	cfg := memband.Config{
		Duration:  50 * sim.Millisecond,
		Seed:      o.seed(),
		DemandGBs: 12,
		MemFrac:   0.7,
	}
	if o.Quick {
		cfg.Duration = 10 * sim.Millisecond
	}
	regs := []memband.Regulator{memband.Vessel{}, memband.MBA{}, memband.CgroupCFS{}}
	targets := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if o.Quick {
		targets = []float64{0.1, 0.3, 0.5, 0.8, 1.0}
	}
	e := o.exec()
	measurements := make([]memband.Measurement, len(regs)*len(targets))
	err := e.Map(len(measurements), func(i int) error {
		r, tgt := regs[i/len(targets)], targets[i%len(targets)]
		m, _, err := harness.CachedJSON(e, "memband", fig13bEpoch,
			fig13bKey{Regulator: r.Name(), Target: tgt, Config: cfg},
			func() (memband.Measurement, error) { return r.Regulate(tgt, cfg) })
		if err != nil {
			return err
		}
		measurements[i] = m
		return nil
	})
	if err != nil {
		return Fig13b{}, err
	}
	out := Fig13b{AvgError: make(map[string]float64)}
	for i, m := range measurements {
		r := regs[i/len(targets)]
		out.Points = append(out.Points, Fig13bPoint{
			Regulator: r.Name(),
			Target:    targets[i%len(targets)],
			TargetGBs: m.TargetGBs,
			ActualGBs: m.ActualGBs,
			ErrorFrac: m.ErrorFrac(),
		})
		out.AvgError[r.Name()] += m.ErrorFrac() / float64(len(targets))
	}
	return out, nil
}

// String renders the figure.
func (f Fig13b) String() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{
			p.Regulator, pct(p.Target), f2(p.TargetGBs), f2(p.ActualGBs), pct(p.ErrorFrac),
		})
	}
	s := table("Figure 13b — accuracy of memory-bandwidth regulation",
		[]string{"regulator", "target", "target-GB/s", "actual-GB/s", "error"}, rows)
	names := make([]string, 0, len(f.AvgError))
	for name := range f.AvgError {
		names = append(names, name)
	}
	sort.Strings(names) // map order must not leak into rendered bytes
	for _, name := range names {
		s += "avg error " + name + ": " + pct(f.AvgError[name]) + "\n"
	}
	s += "(paper: MBA and Linux CFS use far more bandwidth than desired; VESSEL tracks targets)\n"
	return s
}
