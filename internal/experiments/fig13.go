package experiments

import (
	"vessel/internal/memband"
	"vessel/internal/sched"
	"vessel/internal/sched/caladan"
	"vessel/internal/sim"
	"vessel/internal/vessel"
	"vessel/internal/workload"
)

// Fig13aPoint is one (system, load) cell of the bandwidth-contended
// colocation experiment.
type Fig13aPoint struct {
	System     string
	LoadFrac   float64
	BudgetFrac float64 // highest bandwidth budget meeting the P999 limit
	TotalNorm  float64
	P999Ns     int64
}

// fig13aP999Limit is the tail-latency constraint under which the total
// normalized throughput is reported ("measure their total normalized
// throughput under the tail latency constraints", §6.3.4).
const fig13aP999Limit = 25_000 // ns

// Fig13a reproduces Figure 13a: memcached colocated with the
// memory-intensive membench, both schedulers using memory bandwidth as a
// core-scheduling metric. For each system and load, the harness finds the
// highest bandwidth budget that still meets the L-app's tail-latency
// constraint and reports the total normalized throughput there. VESSEL's
// µs-scale regulation keeps latency flat even at generous budgets, so it
// can give membench more of the machine; Caladan's 10 µs control loop and
// 5.3 µs reallocations force a more conservative budget.
type Fig13a struct {
	Points []Fig13aPoint
	// Advantage is VESSEL's average total-norm advantage over Caladan
	// across the sweep (paper: up to 43% higher).
	Advantage float64
}

// fig13aBest finds the best budget for one (system, load).
func fig13aBest(o Options, s sched.Scheduler, lf float64) (Fig13aPoint, error) {
	budgets := []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2}
	if o.Quick {
		budgets = []float64{1.0, 0.8, 0.6, 0.4, 0.2}
	}
	best := Fig13aPoint{System: s.Name(), LoadFrac: lf}
	for _, b := range budgets {
		cfg := o.baseConfig(o.mcApp(lf), workload.Membench())
		// A 100% budget is no regulation at all; Validate rejects
		// BWTargetFrac ≥ 1, and 0 is its explicit "off" encoding.
		if b < 1 {
			cfg.BWTargetFrac = b
		}
		res, err := s.Run(cfg)
		if err != nil {
			return Fig13aPoint{}, err
		}
		la, _ := res.App("memcached")
		if la.Latency.P999 > fig13aP999Limit {
			continue
		}
		if res.TotalNormTput() > best.TotalNorm {
			best.BudgetFrac = b
			best.TotalNorm = res.TotalNormTput()
			best.P999Ns = la.Latency.P999
		}
	}
	return best, nil
}

// Figure13a runs the sweep.
func Figure13a(o Options) (Fig13a, error) {
	systems := []sched.Scheduler{
		vessel.Simulator{},
		caladan.Simulator{Variant: caladan.DRLow},
	}
	var out Fig13a
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, s := range systems {
		for _, lf := range o.loadFractions() {
			p, err := fig13aBest(o, s, lf)
			if err != nil {
				return Fig13a{}, err
			}
			out.Points = append(out.Points, p)
			sums[s.Name()] += p.TotalNorm
			counts[s.Name()]++
		}
	}
	v := sums["VESSEL"] / float64(counts["VESSEL"])
	c := sums["Caladan-DR-L"] / float64(counts["Caladan-DR-L"])
	if c > 0 {
		out.Advantage = v/c - 1
	}
	return out, nil
}

// String renders the figure.
func (f Fig13a) String() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{p.System, f2(p.LoadFrac), pct(p.BudgetFrac), f3(p.TotalNorm), us(p.P999Ns)})
	}
	s := table("Figure 13a — memcached + membench, best bandwidth budget within P999 ≤ 25µs",
		[]string{"system", "load", "budget", "total-norm", "p999-µs"}, rows)
	s += "VESSEL total-throughput advantage over Caladan: " + pct(f.Advantage) +
		" average (paper: up to 43%)\n"
	return s
}

// Fig13bPoint is one (regulator, target) accuracy measurement.
type Fig13bPoint struct {
	Regulator string
	Target    float64 // fraction of natural consumption
	TargetGBs float64
	ActualGBs float64
	ErrorFrac float64
}

// Fig13b reproduces Figure 13b: the accuracy of memory-bandwidth
// regulation across throttling targets for VESSEL's duty-cycling, Intel
// MBA's delay throttle, and Linux CFS shares.
type Fig13b struct {
	Points []Fig13bPoint
	// AvgError maps regulator → mean |actual−target|/target.
	AvgError map[string]float64
}

// Figure13b runs the sweep.
func Figure13b(o Options) (Fig13b, error) {
	cfg := memband.Config{
		Duration:  50 * sim.Millisecond,
		Seed:      o.seed(),
		DemandGBs: 12,
		MemFrac:   0.7,
	}
	if o.Quick {
		cfg.Duration = 10 * sim.Millisecond
	}
	regs := []memband.Regulator{memband.Vessel{}, memband.MBA{}, memband.CgroupCFS{}}
	targets := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if o.Quick {
		targets = []float64{0.1, 0.3, 0.5, 0.8, 1.0}
	}
	out := Fig13b{AvgError: make(map[string]float64)}
	for _, r := range regs {
		var errSum float64
		for _, tgt := range targets {
			m, err := r.Regulate(tgt, cfg)
			if err != nil {
				return Fig13b{}, err
			}
			out.Points = append(out.Points, Fig13bPoint{
				Regulator: r.Name(),
				Target:    tgt,
				TargetGBs: m.TargetGBs,
				ActualGBs: m.ActualGBs,
				ErrorFrac: m.ErrorFrac(),
			})
			errSum += m.ErrorFrac()
		}
		out.AvgError[r.Name()] = errSum / float64(len(targets))
	}
	return out, nil
}

// String renders the figure.
func (f Fig13b) String() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{
			p.Regulator, pct(p.Target), f2(p.TargetGBs), f2(p.ActualGBs), pct(p.ErrorFrac),
		})
	}
	s := table("Figure 13b — accuracy of memory-bandwidth regulation",
		[]string{"regulator", "target", "target-GB/s", "actual-GB/s", "error"}, rows)
	for name, e := range f.AvgError {
		s += "avg error " + name + ": " + pct(e) + "\n"
	}
	s += "(paper: MBA and Linux CFS use far more bandwidth than desired; VESSEL tracks targets)\n"
	return s
}
