package experiments

import (
	"bytes"
	"testing"

	"vessel/internal/harness"
)

// TestFig9ParallelGolden is the golden parallel-determinism check for the
// experiment drivers: the quick Figure 9 plan — all six schedulers, mixed
// per-system load caps — must produce byte-identical canonical results and
// byte-identical rendered output at -parallel 1 and -parallel 8. Run under
// -race in CI, this doubles as the executor's data-race probe on a real
// sweep.
func TestFig9ParallelGolden(t *testing.T) {
	o := Options{Seed: 42, Quick: true}
	plan, err := Figure9Plan(o, "memcached")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := harness.Sequential().RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&harness.Executor{Parallel: 8}).RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if !bytes.Equal(seq[i].Result.Canonical(), par[i].Result.Canonical()) {
			t.Errorf("cell %d (%s @ %.2f): canonical result bytes diverge",
				i, plan.Specs[i].Scheduler, plan.Specs[i].Apps[0].LoadFrac)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// The rendered figure must match too — plan-order folding is part of
	// the contract, not just per-cell determinism.
	fSeq, err := Figure9(o, "memcached")
	if err != nil {
		t.Fatal(err)
	}
	oPar := o
	oPar.Exec = &harness.Executor{Parallel: 8}
	fPar, err := Figure9(oPar, "memcached")
	if err != nil {
		t.Fatal(err)
	}
	if fSeq.String() != fPar.String() {
		t.Fatalf("rendered Figure 9 diverges between -parallel 1 and -parallel 8:\n--- seq ---\n%s\n--- par ---\n%s",
			fSeq.String(), fPar.String())
	}
}
