package experiments

import (
	"testing"

	"vessel/internal/sched"
	"vessel/internal/sched/caladan"
	"vessel/internal/stats"
	"vessel/internal/vessel"
	"vessel/internal/workload"
)

// TestConclusionsAreSeedRobust re-runs the headline comparison across
// several independent seeds and checks that the paper's qualitative
// conclusions hold for every seed, not just the committed one:
//
//   - VESSEL's total normalized throughput beats Caladan's;
//   - VESSEL's P999 beats Caladan's;
//   - the run-to-run spread of VESSEL's throughput is small (the
//     simulation is well-converged at the configured duration).
func TestConclusionsAreSeedRobust(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed robustness skipped in -short mode")
	}
	seeds := []uint64{11, 23, 57, 101, 997}
	var vNorm, cNorm stats.MeanVar
	for _, seed := range seeds {
		run := func(s sched.Scheduler) sched.Result {
			o := Options{Seed: seed, Quick: true}
			cfg := o.baseConfig(o.mcApp(0.5), workload.Linpack())
			res, err := s.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		v := run(vessel.Simulator{})
		c := run(caladan.Simulator{Variant: caladan.Plain})
		if v.TotalNormTput() <= c.TotalNormTput() {
			t.Errorf("seed %d: VESSEL norm %.3f ≤ Caladan %.3f",
				seed, v.TotalNormTput(), c.TotalNormTput())
		}
		if v.LAppP999() >= c.LAppP999() {
			t.Errorf("seed %d: VESSEL p999 %d ≥ Caladan %d",
				seed, v.LAppP999(), c.LAppP999())
		}
		vNorm.Add(v.TotalNormTput())
		cNorm.Add(c.TotalNormTput())
	}
	// Convergence: the coefficient of variation across seeds stays tiny.
	if cv := vNorm.StdDev() / vNorm.Mean(); cv > 0.02 {
		t.Errorf("VESSEL norm CV across seeds = %.4f, poorly converged", cv)
	}
	if cv := cNorm.StdDev() / cNorm.Mean(); cv > 0.05 {
		t.Errorf("Caladan norm CV across seeds = %.4f, poorly converged", cv)
	}
}
