package experiments

import (
	"fmt"

	"vessel/internal/harness"
)

// Fig1Point is one load level of Figure 1.
type Fig1Point struct {
	LoadFrac float64
	// TotalNorm is the colocated pair's total normalized throughput
	// (Figure 1a; ideal = 1).
	TotalNorm float64
	// OverheadFrac is the fraction of CPU cycles not spent on
	// application logic (Figure 1b's kernel + runtime share).
	OverheadFrac float64
	KernelFrac   float64
	RuntimeFrac  float64
	// LCores/BCores/OverheadCores are Figure 1b's per-application core
	// consumption: how many cores each application (and the kernel +
	// runtime) actually occupied on average.
	LCores        float64
	BCores        float64
	OverheadCores float64
}

// Fig1 reproduces Figure 1: the cost of application colocation under
// Caladan (memcached + Linpack).
type Fig1 struct {
	Points []Fig1Point
	// MaxDecline is 1 − min(TotalNorm): the paper reports up to 18%.
	MaxDecline float64
	// MaxOverhead is the peak overhead fraction: the paper reports up
	// to 17%.
	MaxOverhead float64
}

// Figure1 runs the experiment.
func Figure1(o Options) (Fig1, error) {
	var out Fig1
	plan := harness.Axes{
		Loads: o.loadFractions(),
		Build: func(_ string, lf float64, _ uint64) (harness.RunSpec, bool) {
			return o.spec("Caladan", mcSpec(lf), linpackSpec()), true
		},
	}.Plan()
	results, err := o.exec().RunPlan(plan)
	if err != nil {
		return Fig1{}, err
	}
	for i, rr := range results {
		lf := o.loadFractions()[i]
		res := rr.Result
		bd := res.Cycles
		total := float64(bd.Total())
		la, _ := res.App("memcached")
		ba, _ := res.App("linpack")
		durF := float64(rr.Spec.DurationNs)
		p := Fig1Point{
			LoadFrac:      lf,
			TotalNorm:     res.TotalNormTput(),
			OverheadFrac:  bd.OverheadFrac(),
			KernelFrac:    float64(bd.KernelNs) / total,
			RuntimeFrac:   float64(bd.RuntimeNs) / total,
			LCores:        float64(la.LBusyNs) / durF,
			BCores:        float64(ba.BWallNs) / durF,
			OverheadCores: float64(bd.KernelNs+bd.RuntimeNs+bd.SwitchNs) / durF,
		}
		out.Points = append(out.Points, p)
		if d := 1 - p.TotalNorm; d > out.MaxDecline {
			out.MaxDecline = d
		}
		if p.OverheadFrac > out.MaxOverhead {
			out.MaxOverhead = p.OverheadFrac
		}
	}
	return out, nil
}

// String renders the figure as a table.
func (f Fig1) String() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{
			f2(p.LoadFrac), f3(p.TotalNorm), pct(p.OverheadFrac), pct(p.KernelFrac), pct(p.RuntimeFrac),
			f2(p.LCores), f2(p.BCores), f2(p.OverheadCores),
		})
	}
	s := table("Figure 1 — cost of colocation under Caladan (memcached + Linpack)",
		[]string{"load", "total-norm-tput", "overhead", "kernel", "runtime",
			"L-cores", "B-cores", "ovh-cores"}, rows)
	s += fmt.Sprintf("max total-throughput decline: %s (paper: up to 18%%)\n", pct(f.MaxDecline))
	s += fmt.Sprintf("max non-application cycles:   %s (paper: up to 17%%)\n", pct(f.MaxOverhead))
	return s
}

// Fig2Point is one app count of Figure 2.
type Fig2Point struct {
	Apps         int
	AggTputMops  float64
	KernelFrac   float64
	OverheadFrac float64
}

// Fig2 reproduces Figure 2: dense colocation of memcached instances on a
// single core under Caladan — CPU cycles spent in the kernel grow with the
// number of colocated applications.
type Fig2 struct {
	Points []Fig2Point
}

// denseMcSpecs declares n memcached instances splitting an aggregate load
// fraction evenly — the dense-colocation workload of Figures 2 and 10.
func denseMcSpecs(n int, aggFrac float64, burst *harness.BurstSpec) []harness.AppSpec {
	apps := make([]harness.AppSpec, n)
	for i := range apps {
		apps[i] = harness.AppSpec{
			Name: fmt.Sprintf("mc-%d", i), Kind: "L", Dist: "memcached",
			LoadFrac: aggFrac / float64(n), Burst: burst,
		}
	}
	return apps
}

// Figure2 runs the experiment.
func Figure2(o Options) (Fig2, error) {
	counts := []int{1, 2, 4, 6, 8, 10}
	if o.Quick {
		counts = []int{1, 4, 10}
	}
	const aggFrac = 0.6 // aggregate load, fraction of a single core's capacity
	var plan harness.Plan
	for _, n := range counts {
		spec := o.spec("Caladan-DR-L", denseMcSpecs(n, aggFrac, nil)...)
		spec.Cores = 1
		plan.Add(spec)
	}
	results, err := o.exec().RunPlan(plan)
	if err != nil {
		return Fig2{}, err
	}
	var out Fig2
	for i, rr := range results {
		res := rr.Result
		var tput float64
		for _, a := range res.Apps {
			tput += a.Tput.PerSecond()
		}
		bd := res.Cycles
		out.Points = append(out.Points, Fig2Point{
			Apps:         counts[i],
			AggTputMops:  tput / 1e6,
			KernelFrac:   float64(bd.KernelNs) / float64(bd.Total()),
			OverheadFrac: bd.OverheadFrac(),
		})
	}
	return out, nil
}

// String renders the figure as a table.
func (f Fig2) String() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Apps), f3(p.AggTputMops), pct(p.KernelFrac), pct(p.OverheadFrac),
		})
	}
	return table("Figure 2 — dense colocation on one core under Caladan (kernel cycles grow with apps)",
		[]string{"apps", "agg-tput-Mops", "kernel", "overhead"}, rows)
}
