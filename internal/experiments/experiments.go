// Package experiments regenerates every table and figure in the paper's
// evaluation (§6) on the simulated substrate. Each Figure*/Table* function
// runs the corresponding workloads under the relevant schedulers and
// returns a structured result whose String method renders a paper-style
// text table; cmd/experiments prints them and the root bench_test.go wraps
// each in a testing.B benchmark.
//
// Absolute numbers are simulated (2 GHz virtual clock, 40 GB/s memory);
// EXPERIMENTS.md records how each reproduced shape compares with the
// paper's published numbers.
package experiments

import (
	"fmt"
	"strings"

	"vessel/internal/cpu"
	"vessel/internal/harness"
	"vessel/internal/obs"
	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/workload"
)

// Options configures experiment scale.
type Options struct {
	Seed uint64
	// Quick shrinks durations and sweep density for unit tests; the full
	// runs are used by cmd/experiments and the benchmarks.
	Quick bool
	// Cores is the worker-core count for the colocation experiments
	// (default 8 quick / 16 full — normalized metrics are
	// core-count-invariant in shape).
	Cores int
	// Obs, when non-nil, threads the observability layer into every run
	// the experiment performs (span timelines, cycle attribution, and the
	// metrics registry accumulate across the experiment's runs).
	Obs *obs.Observer
	// Exec runs the figure's sweep plan: nil means sequential and
	// uncached. A parallel executor runs independent cells concurrently;
	// results are always folded in plan order, so the rendered figure is
	// byte-identical at any parallelism.
	Exec *harness.Executor
}

// exec resolves the executor. A shared Observer accumulates spans across
// runs, so observability forces a sequential, cache-bypassing executor
// regardless of what Exec asks for.
func (o Options) exec() *harness.Executor {
	if o.Obs != nil {
		return &harness.Executor{Parallel: 1, Observer: o.Obs}
	}
	if o.Exec != nil {
		return o.Exec
	}
	return harness.Sequential()
}

// spec assembles a RunSpec with the experiment-wide defaults, mirroring
// baseConfig on the declarative side.
func (o Options) spec(scheduler string, apps ...harness.AppSpec) harness.RunSpec {
	return harness.RunSpec{
		Scheduler:  scheduler,
		Seed:       o.seed(),
		Cores:      o.cores(),
		DurationNs: int64(o.duration()),
		WarmupNs:   int64(o.warmup()),
		Apps:       apps,
		Obs:        o.Obs != nil,
	}
}

// mcSpec declares a memcached app at a fraction of ideal capacity.
func mcSpec(loadFrac float64) harness.AppSpec {
	return harness.AppSpec{Name: "memcached", Kind: "L", Dist: "memcached", LoadFrac: loadFrac}
}

// siloSpec declares a Silo app at a fraction of ideal capacity.
func siloSpec(loadFrac float64) harness.AppSpec {
	return harness.AppSpec{Name: "silo", Kind: "L", Dist: "silo", LoadFrac: loadFrac}
}

// linpackSpec declares the compute-bound best-effort app
// (workload.Linpack's parameters).
func linpackSpec() harness.AppSpec {
	return harness.AppSpec{Name: "linpack", Kind: "B", BWDemand: 0.5, MemFrac: 0.05}
}

// membenchSpec declares the memory-intensive best-effort app
// (workload.Membench's parameters).
func membenchSpec() harness.AppSpec {
	return harness.AppSpec{Name: "membench", Kind: "B", BWDemand: 12.0, MemFrac: 0.7}
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

func (o Options) cores() int {
	if o.Cores > 0 {
		return o.Cores
	}
	if o.Quick {
		return 8
	}
	return 16
}

func (o Options) duration() sim.Duration {
	if o.Quick {
		return 20 * sim.Millisecond
	}
	return 60 * sim.Millisecond
}

func (o Options) warmup() sim.Duration {
	if o.Quick {
		return 4 * sim.Millisecond
	}
	return 10 * sim.Millisecond
}

// loadFractions returns the sweep grid.
func (o Options) loadFractions() []float64 {
	if o.Quick {
		return []float64{0.2, 0.5, 0.8}
	}
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
}

// baseConfig assembles a sched.Config for the given apps.
func (o Options) baseConfig(apps ...*workload.App) sched.Config {
	return sched.Config{
		Seed:     o.seed(),
		Cores:    o.cores(),
		Duration: o.duration(),
		Warmup:   o.warmup(),
		Apps:     apps,
		Costs:    cpu.Default(),
		Obs:      o.Obs,
	}
}

// mcApp builds a fresh memcached app at a fraction of ideal capacity.
func (o Options) mcApp(loadFrac float64) *workload.App {
	rate := loadFrac * sched.IdealLCapacity(o.cores(), workload.Memcached())
	return workload.NewLApp("memcached", workload.Memcached(), rate)
}

// siloApp builds a fresh Silo app at a fraction of ideal capacity.
func (o Options) siloApp(loadFrac float64) *workload.App {
	rate := loadFrac * sched.IdealLCapacity(o.cores(), workload.Silo())
	return workload.NewLApp("silo", workload.Silo(), rate)
}

// ---- rendering helpers ------------------------------------------------------

// table renders rows of columns with a header, padded.
func table(title string, header []string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func us(ns int64) string  { return fmt.Sprintf("%.1f", float64(ns)/1000) }
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}
