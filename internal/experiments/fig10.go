package experiments

import (
	"fmt"

	"vessel/internal/sched"
	"vessel/internal/sched/caladan"
	"vessel/internal/vessel"
	"vessel/internal/workload"
)

// Fig10Point is one (system, instances, load) cell.
type Fig10Point struct {
	System      string
	Instances   int
	LoadFrac    float64
	AggTputMops float64
	MaxP999Ns   int64
}

// Fig10 reproduces Figure 10: a varying number of memcached instances
// densely colocated on a single core, under bursty arrivals, comparing
// VESSEL with Caladan-DR-L (the only baseline within range, as in the
// paper).
type Fig10 struct {
	Points []Fig10Point
}

// Figure10 runs the dense-colocation sweep.
func Figure10(o Options) (Fig10, error) {
	systems := []sched.Scheduler{
		vessel.Simulator{},
		caladan.Simulator{Variant: caladan.DRLow},
	}
	instances := []int{1, 10}
	loads := o.loadFractions()
	var out Fig10
	for _, s := range systems {
		for _, n := range instances {
			for _, lf := range loads {
				agg := lf * sched.IdealLCapacity(1, workload.Memcached())
				apps := make([]*workload.App, n)
				for i := range apps {
					apps[i] = workload.NewLApp(fmt.Sprintf("mc-%d", i), workload.Memcached(), agg/float64(n))
					// Bursty arrivals, as §6.2.2 specifies.
					apps[i].Burst = &workload.Burst{
						OnMean:  200 * 1000, // 200µs
						OffMean: 200 * 1000,
						Factor:  2,
					}
				}
				cfg := o.baseConfig(apps...)
				cfg.Cores = 1
				res, err := s.Run(cfg)
				if err != nil {
					return Fig10{}, err
				}
				var tput float64
				var p999 int64
				for _, a := range res.Apps {
					tput += a.Tput.PerSecond()
					if a.Latency.P999 > p999 {
						p999 = a.Latency.P999
					}
				}
				out.Points = append(out.Points, Fig10Point{
					System:      s.Name(),
					Instances:   n,
					LoadFrac:    lf,
					AggTputMops: tput / 1e6,
					MaxP999Ns:   p999,
				})
			}
		}
	}
	return out, nil
}

// String renders the figure.
func (f Fig10) String() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{
			p.System, fmt.Sprintf("%d", p.Instances), f2(p.LoadFrac), f3(p.AggTputMops), us(p.MaxP999Ns),
		})
	}
	s := table("Figure 10 — dense colocation of memcached instances on one core (bursty load)",
		[]string{"system", "instances", "load", "agg-Mops", "p999-µs"}, rows)
	s += "(paper: with 10 instances Caladan loses ~25% peak throughput and +20% P999;\n" +
		" VESSEL is almost unchanged)\n"
	return s
}

// At returns the point for (system, instances, closest load ≥ lf).
func (f Fig10) At(system string, instances int, lf float64) (Fig10Point, bool) {
	for _, p := range f.Points {
		if p.System == system && p.Instances == instances && p.LoadFrac >= lf-1e-9 && p.LoadFrac <= lf+1e-9 {
			return p, true
		}
	}
	return Fig10Point{}, false
}
