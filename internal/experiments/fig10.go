package experiments

import (
	"fmt"

	"vessel/internal/harness"
)

// Fig10Point is one (system, instances, load) cell.
type Fig10Point struct {
	System      string
	Instances   int
	LoadFrac    float64
	AggTputMops float64
	MaxP999Ns   int64
}

// Fig10 reproduces Figure 10: a varying number of memcached instances
// densely colocated on a single core, under bursty arrivals, comparing
// VESSEL with Caladan-DR-L (the only baseline within range, as in the
// paper).
type Fig10 struct {
	Points []Fig10Point
}

// fig10Cell identifies one plan cell for the fold.
type fig10Cell struct {
	system    string
	instances int
	loadFrac  float64
}

// Figure10 runs the dense-colocation sweep.
func Figure10(o Options) (Fig10, error) {
	systems := []string{"VESSEL", "Caladan-DR-L"}
	instances := []int{1, 10}
	loads := o.loadFractions()
	var plan harness.Plan
	var cells []fig10Cell
	for _, name := range systems {
		for _, n := range instances {
			for _, lf := range loads {
				// Bursty arrivals, as §6.2.2 specifies.
				burst := &harness.BurstSpec{OnUs: 200, OffUs: 200, Factor: 2}
				spec := o.spec(name, denseMcSpecs(n, lf, burst)...)
				spec.Cores = 1
				plan.Add(spec)
				cells = append(cells, fig10Cell{system: name, instances: n, loadFrac: lf})
			}
		}
	}
	results, err := o.exec().RunPlan(plan)
	if err != nil {
		return Fig10{}, err
	}
	var out Fig10
	for i, rr := range results {
		var tput float64
		var p999 int64
		for _, a := range rr.Result.Apps {
			tput += a.Tput.PerSecond()
			if a.Latency.P999 > p999 {
				p999 = a.Latency.P999
			}
		}
		out.Points = append(out.Points, Fig10Point{
			System:      cells[i].system,
			Instances:   cells[i].instances,
			LoadFrac:    cells[i].loadFrac,
			AggTputMops: tput / 1e6,
			MaxP999Ns:   p999,
		})
	}
	return out, nil
}

// String renders the figure.
func (f Fig10) String() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{
			p.System, fmt.Sprintf("%d", p.Instances), f2(p.LoadFrac), f3(p.AggTputMops), us(p.MaxP999Ns),
		})
	}
	s := table("Figure 10 — dense colocation of memcached instances on one core (bursty load)",
		[]string{"system", "instances", "load", "agg-Mops", "p999-µs"}, rows)
	s += "(paper: with 10 instances Caladan loses ~25% peak throughput and +20% P999;\n" +
		" VESSEL is almost unchanged)\n"
	return s
}

// At returns the point for (system, instances, closest load ≥ lf).
func (f Fig10) At(system string, instances int, lf float64) (Fig10Point, bool) {
	for _, p := range f.Points {
		if p.System == system && p.Instances == instances && p.LoadFrac >= lf-1e-9 && p.LoadFrac <= lf+1e-9 {
			return p, true
		}
	}
	return Fig10Point{}, false
}
