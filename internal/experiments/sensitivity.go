package experiments

import (
	"fmt"

	"vessel/internal/cpu"
	"vessel/internal/harness"
	"vessel/internal/sim"
)

// SensPoint is one (knob, value) measurement of the standard colocation.
type SensPoint struct {
	Knob      string
	Value     string
	System    string
	TotalNorm float64
	P999Ns    int64
}

// Sensitivity sweeps the design-choice constants DESIGN.md §6 calls out —
// the UINTR delivery latency, the WRPKRU cost, Caladan's steal window and
// reallocation interval — and reports how the standard colocation responds.
// It quantifies which of the paper's bets each result rests on.
type Sensitivity struct {
	Points []SensPoint
}

// RunSensitivity executes the sweep: every (knob, value) cell is the
// standard 50%-load colocation with one cost-model constant overridden.
// The override rides the RunSpec's Costs field, so each ablation hashes —
// and caches — as its own cell.
func RunSensitivity(o Options) (Sensitivity, error) {
	var plan harness.Plan
	var labels []struct{ knob, value string }
	add := func(knob, value, system string, cm *cpu.CostModel) {
		spec := o.spec(system, mcSpec(0.5), linpackSpec())
		spec.Costs = cm
		plan.Add(spec)
		labels = append(labels, struct{ knob, value string }{knob, value})
	}

	// 1. UINTR delivery latency: the paper's 15× claim (§2.2) swept from
	// hardware-fast to kernel-IPI-slow, inside VESSEL.
	for _, mult := range []int{1, 5, 15} {
		cm := cpu.Default()
		cm.UintrDeliver *= sim.Duration(mult)
		cm.VesselPreemptSwitch += cm.UintrDeliver - cpu.Default().UintrDeliver
		add("uintr-delivery", fmt.Sprintf("%v", cm.UintrDeliver), "VESSEL", cm)
	}
	// 2. WRPKRU cost across the §2.3 range (two per gate crossing).
	for _, cycles := range []int64{11, 28, 260} {
		cm := cpu.Default()
		delta := cm.CyclesToNs(2 * (cycles - cm.WrPkruCycles))
		cm.WrPkruCycles = cycles
		cm.VesselParkSwitch += delta
		cm.VesselPreemptSwitch += delta
		add("wrpkru-cycles", fmt.Sprintf("%d", cycles), "VESSEL", cm)
	}
	// 3. Caladan's steal window (§4.5): the conservative-policy dial.
	for _, win := range []sim.Duration{500, 2000, 8000} {
		cm := cpu.Default()
		cm.CaladanStealWin = win
		add("steal-window", fmt.Sprintf("%v", win), "Caladan", cm)
	}
	// 4. Caladan's core-reallocation interval (§4.5).
	for _, iv := range []sim.Duration{5000, 10000, 20000} {
		cm := cpu.Default()
		cm.CaladanReallocMs = iv
		add("realloc-interval", fmt.Sprintf("%v", iv), "Caladan", cm)
	}

	results, err := o.exec().RunPlan(plan)
	if err != nil {
		return Sensitivity{}, err
	}
	var out Sensitivity
	for i, rr := range results {
		la, _ := rr.Result.App("memcached")
		out.Points = append(out.Points, SensPoint{
			Knob:      labels[i].knob,
			Value:     labels[i].value,
			System:    plan.Specs[i].Scheduler,
			TotalNorm: rr.Result.TotalNormTput(),
			P999Ns:    la.Latency.P999,
		})
	}
	return out, nil
}

// String renders the sweep.
func (s Sensitivity) String() string {
	rows := make([][]string, 0, len(s.Points))
	for _, p := range s.Points {
		rows = append(rows, []string{p.Knob, p.Value, p.System, f3(p.TotalNorm), us(p.P999Ns)})
	}
	out := table("Sensitivity — design-choice constants vs the standard colocation (50% load)",
		[]string{"knob", "value", "system", "total-norm", "p999-µs"}, rows)
	out += "(rows isolate one constant each; DESIGN.md §6 lists the corresponding design choices)\n"
	return out
}
