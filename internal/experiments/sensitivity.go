package experiments

import (
	"fmt"

	"vessel/internal/cpu"
	"vessel/internal/sched"
	"vessel/internal/sched/caladan"
	"vessel/internal/sim"
	"vessel/internal/vessel"
	"vessel/internal/workload"
)

// SensPoint is one (knob, value) measurement of the standard colocation.
type SensPoint struct {
	Knob      string
	Value     string
	System    string
	TotalNorm float64
	P999Ns    int64
}

// Sensitivity sweeps the design-choice constants DESIGN.md §6 calls out —
// the UINTR delivery latency, the WRPKRU cost, Caladan's steal window and
// reallocation interval — and reports how the standard colocation responds.
// It quantifies which of the paper's bets each result rests on.
type Sensitivity struct {
	Points []SensPoint
}

// sensRun runs the standard memcached+Linpack colocation at 50% load.
func sensRun(o Options, s sched.Scheduler, cm *cpu.CostModel) (SensPoint, error) {
	cfg := o.baseConfig(o.mcApp(0.5), workload.Linpack())
	cfg.Costs = cm
	res, err := s.Run(cfg)
	if err != nil {
		return SensPoint{}, err
	}
	la, _ := res.App("memcached")
	return SensPoint{
		System:    s.Name(),
		TotalNorm: res.TotalNormTput(),
		P999Ns:    la.Latency.P999,
	}, nil
}

// RunSensitivity executes the sweep.
func RunSensitivity(o Options) (Sensitivity, error) {
	var out Sensitivity
	add := func(knob, value string, s sched.Scheduler, cm *cpu.CostModel) error {
		p, err := sensRun(o, s, cm)
		if err != nil {
			return err
		}
		p.Knob = knob
		p.Value = value
		out.Points = append(out.Points, p)
		return nil
	}

	// 1. UINTR delivery latency: the paper's 15× claim (§2.2) swept from
	// hardware-fast to kernel-IPI-slow, inside VESSEL.
	for _, mult := range []int{1, 5, 15} {
		cm := cpu.Default()
		cm.UintrDeliver *= sim.Duration(mult)
		cm.VesselPreemptSwitch += cm.UintrDeliver - cpu.Default().UintrDeliver
		if err := add("uintr-delivery", fmt.Sprintf("%v", cm.UintrDeliver), vessel.Simulator{}, cm); err != nil {
			return out, err
		}
	}
	// 2. WRPKRU cost across the §2.3 range (two per gate crossing).
	for _, cycles := range []int64{11, 28, 260} {
		cm := cpu.Default()
		delta := cm.CyclesToNs(2 * (cycles - cm.WrPkruCycles))
		cm.WrPkruCycles = cycles
		cm.VesselParkSwitch += delta
		cm.VesselPreemptSwitch += delta
		if err := add("wrpkru-cycles", fmt.Sprintf("%d", cycles), vessel.Simulator{}, cm); err != nil {
			return out, err
		}
	}
	// 3. Caladan's steal window (§4.5): the conservative-policy dial.
	for _, win := range []sim.Duration{500, 2000, 8000} {
		cm := cpu.Default()
		cm.CaladanStealWin = win
		if err := add("steal-window", fmt.Sprintf("%v", win), caladan.Simulator{Variant: caladan.Plain}, cm); err != nil {
			return out, err
		}
	}
	// 4. Caladan's core-reallocation interval (§4.5).
	for _, iv := range []sim.Duration{5000, 10000, 20000} {
		cm := cpu.Default()
		cm.CaladanReallocMs = iv
		if err := add("realloc-interval", fmt.Sprintf("%v", iv), caladan.Simulator{Variant: caladan.Plain}, cm); err != nil {
			return out, err
		}
	}
	return out, nil
}

// String renders the sweep.
func (s Sensitivity) String() string {
	rows := make([][]string, 0, len(s.Points))
	for _, p := range s.Points {
		rows = append(rows, []string{p.Knob, p.Value, p.System, f3(p.TotalNorm), us(p.P999Ns)})
	}
	out := table("Sensitivity — design-choice constants vs the standard colocation (50% load)",
		[]string{"knob", "value", "system", "total-norm", "p999-µs"}, rows)
	out += "(rows isolate one constant each; DESIGN.md §6 lists the corresponding design choices)\n"
	return out
}
