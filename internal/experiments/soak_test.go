package experiments

import (
	"testing"

	"vessel/internal/harness"
	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/workload"
)

// TestSoakLongDeterministicRuns exercises every scheduler for a long
// (100 ms virtual) run under bursty load, re-checking the conservation
// invariants and byte-for-byte determinism. Skipped under -short.
func TestSoakLongDeterministicRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	o := Options{Seed: 21, Quick: true}
	build := func() sched.Config {
		mc := workload.NewLApp("memcached", workload.Memcached(), 0.4*8e6)
		mc.Burst = &workload.Burst{
			OnMean:  500 * sim.Microsecond,
			OffMean: 500 * sim.Microsecond,
			Factor:  2,
		}
		cfg := o.baseConfig(mc, workload.Linpack())
		cfg.Cores = 8
		cfg.Duration = 100 * sim.Millisecond
		cfg.Warmup = 10 * sim.Millisecond
		return cfg
	}
	for _, name := range fig9Systems() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := harness.SchedulerByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg1 := build()
			res1, err := s.Run(cfg1)
			if err != nil {
				t.Fatal(err)
			}
			checkInvariants(t, "soak/"+name, cfg1, res1)
			// Determinism across an identical rebuild.
			cfg2 := build()
			res2, err := s.Run(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			a1, _ := res1.App("memcached")
			a2, _ := res2.App("memcached")
			if a1.Completed != a2.Completed || a1.Latency.P999 != a2.Latency.P999 {
				t.Fatalf("soak nondeterminism: %d/%d vs %d/%d",
					a1.Completed, a1.Latency.P999, a2.Completed, a2.Latency.P999)
			}
		})
	}
}
