package experiments

import (
	"strings"
	"testing"

	"vessel/internal/sim"
)

var quick = Options{Seed: 42, Quick: true}

func TestFigure1Shape(t *testing.T) {
	f, err := Figure1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) == 0 {
		t.Fatal("no points")
	}
	// Paper: total normalized throughput declines up to ~18%; cycles
	// not on application logic reach double digits.
	if f.MaxDecline < 0.05 || f.MaxDecline > 0.45 {
		t.Fatalf("max decline %.3f out of plausible band", f.MaxDecline)
	}
	if f.MaxOverhead < 0.04 || f.MaxOverhead > 0.40 {
		t.Fatalf("max overhead %.3f out of plausible band", f.MaxOverhead)
	}
	if !strings.Contains(f.String(), "Figure 1") {
		t.Fatal("render")
	}
}

func TestFigure2Shape(t *testing.T) {
	f, err := Figure2(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) < 3 {
		t.Fatal("points")
	}
	first, last := f.Points[0], f.Points[len(f.Points)-1]
	if first.Apps != 1 || last.Apps != 10 {
		t.Fatal("sweep order")
	}
	// Kernel cycles grow with colocation density.
	if last.KernelFrac <= first.KernelFrac {
		t.Fatalf("kernel frac must grow: 1-app %.3f vs 10-app %.3f",
			first.KernelFrac, last.KernelFrac)
	}
	if !strings.Contains(f.String(), "Figure 2") {
		t.Fatal("render")
	}
}

func TestFigure3Timeline(t *testing.T) {
	f := Figure3()
	if len(f.Phases) != 6 {
		t.Fatalf("phases = %d", len(f.Phases))
	}
	if f.Total != 5300*sim.Nanosecond {
		t.Fatalf("total = %v, want 5.3µs", f.Total)
	}
	if f.VesselPreempt >= f.Total/5 {
		t.Fatalf("VESSEL preempt %v should be far below Caladan %v", f.VesselPreempt, f.Total)
	}
	if !strings.Contains(f.String(), "5.3µs") {
		t.Fatal("render")
	}
}

func TestFigure9MemcachedShape(t *testing.T) {
	f, err := Figure9(quick, "memcached")
	if err != nil {
		t.Fatal(err)
	}
	// Claim 1: VESSEL's average decline below Caladan's.
	if f.AvgDecline["VESSEL"] >= f.AvgDecline["Caladan"] {
		t.Fatalf("VESSEL decline %.3f should beat Caladan %.3f",
			f.AvgDecline["VESSEL"], f.AvgDecline["Caladan"])
	}
	// Claim 2: DR tradeoff — DR-H more efficient than DR-L, but with
	// higher tails at high load.
	drl := f.SystemPoints("Caladan-DR-L")
	drh := f.SystemPoints("Caladan-DR-H")
	if len(drl) == 0 || len(drh) == 0 {
		t.Fatal("missing DR points")
	}
	lastL, lastH := drl[len(drl)-1], drh[len(drh)-1]
	if lastH.P999Ns <= lastL.P999Ns {
		t.Fatalf("DR-H p999 %d should exceed DR-L %d", lastH.P999Ns, lastL.P999Ns)
	}
	// Claim 3: VESSEL's P999 at the highest load beats plain Caladan's.
	ves := f.SystemPoints("VESSEL")
	cal := f.SystemPoints("Caladan")
	if ves[len(ves)-1].P999Ns >= cal[len(cal)-1].P999Ns {
		t.Fatalf("VESSEL p999 %d should beat Caladan %d at high load",
			ves[len(ves)-1].P999Ns, cal[len(cal)-1].P999Ns)
	}
	// Claim 4: Linux CFS appears only at low load, with far higher tails.
	lx := f.SystemPoints("Linux")
	if len(lx) == 0 {
		t.Fatal("Linux missing")
	}
	if lx[0].P999Ns < 10*ves[0].P999Ns {
		t.Fatalf("Linux p999 %d should dwarf VESSEL %d", lx[0].P999Ns, ves[0].P999Ns)
	}
	if !strings.Contains(f.String(), "Figure 9") {
		t.Fatal("render")
	}
}

func TestFigure9SiloShape(t *testing.T) {
	f, err := Figure9(quick, "silo")
	if err != nil {
		t.Fatal(err)
	}
	// With 20–280µs services, reallocation overhead amortises: both
	// VESSEL and Caladan approach the ideal.
	for _, name := range []string{"VESSEL", "Caladan"} {
		if d := f.AvgDecline[name]; d > 0.15 {
			t.Fatalf("%s decline %.3f too high for Silo", name, d)
		}
	}
	if _, err := Figure9(quick, "nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestFigure10Shape(t *testing.T) {
	f, err := Figure10(quick)
	if err != nil {
		t.Fatal(err)
	}
	const lf = 0.5
	c1, ok1 := f.At("Caladan-DR-L", 1, lf)
	c10, ok10 := f.At("Caladan-DR-L", 10, lf)
	v10, okv := f.At("VESSEL", 10, lf)
	v1, okv1 := f.At("VESSEL", 1, lf)
	if !ok1 || !ok10 || !okv || !okv1 {
		t.Fatal("missing points")
	}
	// Caladan's tail inflates sharply with 10 instances; VESSEL's stays
	// within a small factor.
	if c10.MaxP999Ns < 3*c1.MaxP999Ns {
		t.Fatalf("Caladan dense p999 %d vs single %d: insufficient degradation",
			c10.MaxP999Ns, c1.MaxP999Ns)
	}
	if v10.MaxP999Ns > 3*v1.MaxP999Ns {
		t.Fatalf("VESSEL dense p999 %d vs single %d: should be almost unchanged",
			v10.MaxP999Ns, v1.MaxP999Ns)
	}
	if v10.AggTputMops < 0.9*c10.AggTputMops {
		t.Fatalf("VESSEL dense tput %.3f should not trail Caladan %.3f",
			v10.AggTputMops, c10.AggTputMops)
	}
	if !strings.Contains(f.String(), "Figure 10") {
		t.Fatal("render")
	}
}

func TestTable1Shape(t *testing.T) {
	tb, err := RunTable1(quick, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatal("rows")
	}
	v, c := tb.Rows[0].Summary, tb.Rows[1].Summary
	// VESSEL: sub-µs average (paper 161ns), sub-µs-ish P999 (706ns).
	if v.Avg < 100 || v.Avg > 300 {
		t.Fatalf("VESSEL avg %.1f ns, want ~161", v.Avg)
	}
	if v.P999 < 300 || v.P999 > 1500 {
		t.Fatalf("VESSEL p999 %d ns, want ~706", v.P999)
	}
	// Caladan: ~2.1µs average, ~5.5µs P999.
	if c.Avg < 1800 || c.Avg > 2600 {
		t.Fatalf("Caladan avg %.1f ns, want ~2103", c.Avg)
	}
	if c.P999 < 4000 || c.P999 > 7000 {
		t.Fatalf("Caladan p999 %d ns, want ~5461", c.P999)
	}
	// The ratio is the paper's headline: >10x cheaper switches.
	if c.Avg < 10*v.Avg {
		t.Fatalf("ratio %.1f should exceed 10x", c.Avg/v.Avg)
	}
	if tb.MeasuredVesselBaseNs <= 0 {
		t.Fatal("layer-1 base not measured")
	}
	if !strings.Contains(tb.String(), "Table 1") {
		t.Fatal("render")
	}
}

func TestFigure11Shape(t *testing.T) {
	f, err := Figure11(quick)
	if err != nil {
		t.Fatal(err)
	}
	if f.Colored.MissRate > f.Interleaved.MissRate/20 {
		t.Fatalf("colored miss %.5f not ≪ interleaved %.4f",
			f.Colored.MissRate, f.Interleaved.MissRate)
	}
	if f.TimeReduction < 0.04 || f.TimeReduction > 0.40 {
		t.Fatalf("time reduction %.3f outside the paper's 6–24%% band (with slack)", f.TimeReduction)
	}
	if !strings.Contains(f.String(), "Figure 11") {
		t.Fatal("render")
	}
}

func TestFigure12Shape(t *testing.T) {
	f, err := Figure12(quick)
	if err != nil {
		t.Fatal(err)
	}
	ves := f.SystemPoints("VESSEL")
	cal := f.SystemPoints("Caladan-DR-L")
	if len(ves) == 0 || len(cal) == 0 {
		t.Fatal("points missing")
	}
	// VESSEL keeps scaling past the point Caladan flattens: compare
	// goodput growth from 32 cores to 42.
	growth := func(pts []Fig12Point) float64 {
		var at32, at42 float64
		for _, p := range pts {
			if p.Cores == 32 {
				at32 = p.GoodputMops
			}
			if p.Cores == 42 {
				at42 = p.GoodputMops
			}
		}
		if at32 == 0 {
			return 0
		}
		return at42/at32 - 1
	}
	gv, gc := growth(ves), growth(cal)
	if gv < 0.10 {
		t.Fatalf("VESSEL 32→42 growth %.3f, want ≥ 10%% (paper 25.4%%)", gv)
	}
	if gc > gv/2 {
		t.Fatalf("Caladan growth %.3f should be well below VESSEL's %.3f", gc, gv)
	}
	// And VESSEL's absolute goodput dominates.
	if ves[len(ves)-1].GoodputMops < cal[len(cal)-1].GoodputMops {
		t.Fatal("VESSEL goodput should dominate at high core counts")
	}
	if !strings.Contains(f.String(), "Figure 12") {
		t.Fatal("render")
	}
}

func TestFigure13aShape(t *testing.T) {
	f, err := Figure13a(quick)
	if err != nil {
		t.Fatal(err)
	}
	if f.Advantage <= 0 {
		t.Fatalf("VESSEL advantage %.3f should be positive (paper: up to 43%%)", f.Advantage)
	}
	if !strings.Contains(f.String(), "Figure 13a") {
		t.Fatal("render")
	}
}

func TestFigure13bShape(t *testing.T) {
	f, err := Figure13b(quick)
	if err != nil {
		t.Fatal(err)
	}
	v := f.AvgError["VESSEL"]
	m := f.AvgError["Intel-MBA"]
	g := f.AvgError["Linux-CFS"]
	if v > 0.10 {
		t.Fatalf("VESSEL avg error %.3f, want accurate", v)
	}
	if m < 3*v || g < 3*v {
		t.Fatalf("comparators should be far less accurate: VESSEL %.3f MBA %.3f CFS %.3f", v, m, g)
	}
	if !strings.Contains(f.String(), "Figure 13b") {
		t.Fatal("render")
	}
}
