package experiments

import (
	"fmt"

	"vessel/internal/cpu"
	"vessel/internal/harness"
	"vessel/internal/mem"
	"vessel/internal/sim"
	"vessel/internal/smas"
	"vessel/internal/stats"
	"vessel/internal/uproc"
)

// Table1Row is one system's context-switch latency distribution.
type Table1Row struct {
	System  string
	Summary stats.Summary
}

// Table1 reproduces the core-reallocation latency table (§6.3.1): two
// single-threaded applications bound to one core park() repeatedly; the
// context-switch latency is (T2−T1)/2 around the park call.
//
// The VESSEL base cost is *measured* on the layer-1 machine: the two
// uProcesses really execute their park loops through the call gate,
// instruction by instruction, and the per-switch cycle count comes from the
// simulated core's cycle counter. The Caladan base is the simulated
// kernel's voluntary-switch path. On top of each base, a calibrated noise
// model adds the microarchitectural jitter a real machine shows (cache/TLB
// misses on the hot path, and rare interference spikes — timer interrupts,
// LLC contention) that produce the P999 tail.
type Table1 struct {
	Rows []Table1Row
	// MeasuredVesselBaseNs is the deterministic layer-1 gate round-trip
	// cost before jitter, for the record.
	MeasuredVesselBaseNs float64
}

// measureVesselSwitch runs the real ping-pong on the layer-1 machine and
// returns ns per switch.
func measureVesselSwitch() (float64, error) {
	eng := sim.NewEngine()
	m := cpu.NewMachine(1, cpu.Default())
	d, err := uproc.NewDomain(eng, m)
	if err != nil {
		return 0, err
	}
	mkApp := func(name string) (*uproc.UProc, error) {
		a := cpu.NewAssembler()
		a.Label("loop")
		a.Emit(cpu.Call{Target: d.GatePark.Entry})
		a.JmpTo("loop")
		return d.CreateUProc(name, &smas.Program{
			Name: name, Asm: a, PIE: true,
			DataSize: mem.PageSize, StackSize: 2 * mem.PageSize,
		})
	}
	ua, err := mkApp("A")
	if err != nil {
		return 0, err
	}
	ub, err := mkApp("B")
	if err != nil {
		return 0, err
	}
	d.AttachThread(0, ua.Threads()[0])
	d.AttachThread(0, ub.Threads()[0])
	if err := d.StartCore(0); err != nil {
		return 0, err
	}
	core := m.Core(0)
	// Warm up, then measure cycles across many switches.
	core.Run(2000)
	parks0, _ := d.CoreStats(0)
	c0 := core.Cycles
	core.Run(60000)
	parks1, _ := d.CoreStats(0)
	if core.Fault != nil {
		return 0, fmt.Errorf("table1: fault during ping-pong: %v", core.Fault)
	}
	n := parks1 - parks0
	if n == 0 {
		return 0, fmt.Errorf("table1: no switches measured")
	}
	return m.NsFor(core.Cycles-c0) / float64(n), nil
}

// jitter adds the calibrated microarchitectural noise: a small always-on
// component (cache effects on the gate's map lines), an occasional medium
// bump (TLB refill), and a rare large spike (timer interrupt / LLC
// interference) that sets the P999.
func jitter(rng *sim.RNG, base float64, medP, medMean, spikeP, spikeBase, spikeMean float64) float64 {
	v := base + float64(rng.Exp(sim.Duration(2)))
	if rng.Bernoulli(medP) {
		v += float64(rng.Exp(sim.Duration(medMean)))
	}
	if rng.Bernoulli(spikeP) {
		v += spikeBase + float64(rng.Exp(sim.Duration(spikeMean)))
	}
	return v
}

// table1Key caches the whole computation — the layer-1 measurement plus
// both jitter-sampled histograms — as one cell: the two sample loops share
// one RNG sequence, so they cannot be split into independent runs.
type table1Key struct {
	Seed     uint64 `json:"seed"`
	NSamples int    `json:"n_samples"`
}

// table1Epoch versions Table 1's cached cells (bump when the measurement
// or the jitter model changes).
const table1Epoch = 1

// RunTable1 produces the table with nSamples per system.
func RunTable1(o Options, nSamples int) (Table1, error) {
	if nSamples <= 0 {
		nSamples = 200_000
	}
	t, _, err := harness.CachedJSON(o.exec(), "table1", table1Epoch,
		table1Key{Seed: o.seed(), NSamples: nSamples},
		func() (Table1, error) { return runTable1(o.seed(), nSamples) })
	return t, err
}

func runTable1(seed uint64, nSamples int) (Table1, error) {
	base, err := measureVesselSwitch()
	if err != nil {
		return Table1{}, err
	}
	rng := sim.NewRNG(seed)
	vh := stats.NewHistogram()
	for i := 0; i < nSamples; i++ {
		vh.Record(int64(jitter(rng, base, 0.01, 12, 0.0013, 450, 120)))
	}
	cm := cpu.Default()
	calBase := float64(cm.CaladanParkPath) - 40
	ch := stats.NewHistogram()
	for i := 0; i < nSamples; i++ {
		ch.Record(int64(jitter(rng, calBase, 0.02, 150, 0.0013, 2600, 500)))
	}
	return Table1{
		Rows: []Table1Row{
			{System: "VESSEL", Summary: vh.Summarize()},
			{System: "Caladan", Summary: ch.Summarize()},
		},
		MeasuredVesselBaseNs: base,
	}, nil
}

// String renders the table in the paper's format (µs).
func (t Table1) String() string {
	rows := make([][]string, 0, len(t.Rows))
	q := func(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1000) }
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.System,
			fmt.Sprintf("%.3f", r.Summary.Avg/1000),
			q(r.Summary.P50), q(r.Summary.P90), q(r.Summary.P99), q(r.Summary.P999),
		})
	}
	s := table("Table 1 — latency of core reallocation (µs)",
		[]string{"system", "avg", "p50", "p90", "p99", "p999"}, rows)
	s += fmt.Sprintf("layer-1 measured VESSEL gate round trip: %.1f ns/switch\n", t.MeasuredVesselBaseNs)
	s += "(paper: VESSEL 0.161 avg / 0.706 p999; Caladan 2.103 avg / 5.461 p999)\n"
	return s
}
