package experiments

import (
	"fmt"

	"vessel/internal/cache"
	"vessel/internal/cpu"
	"vessel/internal/sim"
)

// Fig11 reproduces the cache-friendliness experiment (§6.3.2): two
// single-threaded L-apps on one core, each running an object copy over a
// uniformly random working set, under the two memory layouts.
type Fig11 struct {
	Interleaved cache.Result // separate address spaces (Caladan)
	Colored     cache.Result // SMAS + page colouring (VESSEL)
	// TimeReduction is 1 − colored/interleaved completion time.
	TimeReduction float64
}

// Figure11 runs both layouts on identical workloads.
func Figure11(o Options) (Fig11, error) {
	w := cache.DefaultWorkload()
	if o.Quick {
		w.Quanta = 600
	}
	cm := cpu.Default()
	dram := float64(cm.DRAMAccess)
	hit := float64(cm.CyclesToNs(cm.MemCycles))
	ci, err := cache.DefaultCache()
	if err != nil {
		return Fig11{}, err
	}
	inter := cache.Run(ci, w, cache.LayoutInterleaved, dram, hit,
		float64(cm.CaladanParkPath), sim.NewRNG(o.seed()))
	cc, err := cache.DefaultCache()
	if err != nil {
		return Fig11{}, err
	}
	colored := cache.Run(cc, w, cache.LayoutColored, dram, hit,
		float64(cm.VesselParkSwitch), sim.NewRNG(o.seed()))
	return Fig11{
		Interleaved:   inter,
		Colored:       colored,
		TimeReduction: 1 - float64(colored.CompletionTime)/float64(inter.CompletionTime),
	}, nil
}

// String renders the figure.
func (f Fig11) String() string {
	rows := [][]string{
		{"Caladan (separate AS)", pct(f.Interleaved.MissRate), fmt.Sprintf("%v", f.Interleaved.CompletionTime)},
		{"VESSEL (SMAS colored)", pct(f.Colored.MissRate), fmt.Sprintf("%v", f.Colored.CompletionTime)},
	}
	s := table("Figure 11 — cache friendliness (two L-apps object-copy on one core)",
		[]string{"layout", "miss-rate", "completion"}, rows)
	s += fmt.Sprintf("completion-time reduction: %s (paper: 6–24%%; miss rate 4.6%% → 0.0415%%)\n",
		pct(f.TimeReduction))
	return s
}
