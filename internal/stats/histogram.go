// Package stats provides the measurement primitives used by every
// experiment: a log-linear latency histogram (HDR-style), streaming
// mean/variance, and small helpers for reporting distributions the way the
// paper does (Avg, P50, P90, P99, P999).
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// subBucketBits controls histogram resolution: each power-of-two bucket is
// split into 2^subBucketBits linear sub-buckets, giving a worst-case
// quantisation error under 1.6%.
const subBucketBits = 6

const subBuckets = 1 << subBucketBits

// Histogram records int64 values (typically durations in nanoseconds) in
// log-linear buckets. The zero value is not usable; call NewHistogram.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram able to record values in
// [0, 2^62].
func NewHistogram() *Histogram {
	// 63 possible bucket magnitudes × subBuckets each.
	return &Histogram{
		counts: make([]uint64, 64*subBuckets),
		min:    math.MaxInt64,
		max:    math.MinInt64,
	}
}

// index maps a value to its bucket index.
func index(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// magnitude of the leading bit beyond the sub-bucket range
	mag := 63 - bits.LeadingZeros64(uint64(v)) // floor(log2 v) >= subBucketBits
	shift := mag - subBucketBits
	sub := int(v>>uint(shift)) & (subBuckets - 1)
	return (shift+1)*subBuckets + sub
}

// valueAt returns a representative (midpoint) value for bucket i.
func valueAt(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	shift := i/subBuckets - 1
	sub := i % subBuckets
	base := (int64(subBuckets) + int64(sub)) << uint(shift)
	mid := base + (int64(1)<<uint(shift))/2
	return mid
}

// Record adds a value to the histogram. Negative values are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[index(v)]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordN adds a value n times.
func (h *Histogram) RecordN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[index(v)] += n
	h.total += n
	h.sum += float64(v) * float64(n)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the arithmetic mean of recorded values, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest recorded value, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, or 0 if empty.
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the value at quantile q in [0,1]. Quantiles are computed
// from bucket midpoints; the exact recorded min and max are returned for
// q=0 and q=1.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := valueAt(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.Max()
}

// Merge adds all recordings from other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = math.MinInt64
}

// Summary is the five-number report the paper uses in Table 1.
type Summary struct {
	Count uint64
	Avg   float64
	P50   int64
	P90   int64
	P99   int64
	P999  int64
	Max   int64
}

// Summarize computes the standard report.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.total,
		Avg:   h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// String formats the summary with microsecond units, matching the paper's
// Table 1 presentation.
func (s Summary) String() string {
	us := func(v int64) string { return fmt.Sprintf("%.3f", float64(v)/1000) }
	var b strings.Builder
	fmt.Fprintf(&b, "avg=%.3fµs p50=%sµs p90=%sµs p99=%sµs p999=%sµs (n=%d)",
		s.Avg/1000, us(s.P50), us(s.P90), us(s.P99), us(s.P999), s.Count)
	return b.String()
}
