package stats

import "testing"

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i%100000) + 1)
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewHistogram()
	for i := int64(0); i < 1_000_000; i++ {
		h.Record(i % 500000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.999)
	}
}

func BenchmarkHistogramMerge(b *testing.B) {
	a, c := NewHistogram(), NewHistogram()
	for i := int64(0); i < 100000; i++ {
		c.Record(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Merge(c)
	}
}

func BenchmarkMeanVarAdd(b *testing.B) {
	var w MeanVar
	for i := 0; i < b.N; i++ {
		w.Add(float64(i))
	}
}
