package stats

import (
	"reflect"
	"testing"
)

// TestHistogramMergeCommutes: merging a set of histograms must be
// commutative and equal to recording every sample into one histogram —
// the property the parallel sweep drivers rely on when they fold
// per-seed distributions in seed order.
func TestHistogramMergeCommutes(t *testing.T) {
	samples := [][]int64{
		{1, 2, 3, 1000, 12345},
		{7, 7, 7, 7},
		{},
		{999999, 1, 42},
	}
	record := func(vals []int64) *Histogram {
		h := NewHistogram()
		for _, v := range vals {
			h.Record(v)
		}
		return h
	}

	direct := NewHistogram()
	for _, vals := range samples {
		for _, v := range vals {
			direct.Record(v)
		}
	}

	forward := NewHistogram()
	for _, vals := range samples {
		forward.Merge(record(vals))
	}
	backward := NewHistogram()
	for i := len(samples) - 1; i >= 0; i-- {
		backward.Merge(record(samples[i]))
	}

	want := direct.Summarize()
	if got := forward.Summarize(); got != want {
		t.Fatalf("forward merge diverged: %v vs %v", got, want)
	}
	if got := backward.Summarize(); got != want {
		t.Fatalf("merge is not commutative: %v vs %v", got, want)
	}
	if forward.Count() != direct.Count() || backward.Count() != direct.Count() {
		t.Fatalf("counts: direct=%d forward=%d backward=%d",
			direct.Count(), forward.Count(), backward.Count())
	}

	// Merging nil or an empty histogram is a no-op.
	before := forward.Summarize()
	forward.Merge(nil)
	forward.Merge(NewHistogram())
	if got := forward.Summarize(); got != before {
		t.Fatalf("no-op merges changed the histogram: %v vs %v", got, before)
	}
}

// TestCountersMergeCommutes: merged totals must be independent of merge
// order, and merging the same ordered sequence of counter sets must be
// fully deterministic (values and insertion order both).
func TestCountersMergeCommutes(t *testing.T) {
	mk := func(kvs ...KV) *Counters {
		c := NewCounters()
		for _, kv := range kvs {
			c.Add(kv.Name, kv.Value)
		}
		return c
	}
	a := mk(KV{"x", 1}, KV{"y", 2})
	b := mk(KV{"y", 10}, KV{"z", 5})

	ab := NewCounters()
	ab.Merge(a)
	ab.Merge(b)
	ba := NewCounters()
	ba.Merge(b)
	ba.Merge(a)

	for _, name := range []string{"x", "y", "z"} {
		if ab.Get(name) != ba.Get(name) {
			t.Fatalf("%s: %d vs %d", name, ab.Get(name), ba.Get(name))
		}
	}
	if ab.Get("x") != 1 || ab.Get("y") != 12 || ab.Get("z") != 5 {
		t.Fatalf("totals wrong: %s", ab)
	}

	// Same merge order twice → identical snapshot, including insertion
	// order (the rendering determinism the sweep drivers print under).
	ab2 := NewCounters()
	ab2.Merge(a)
	ab2.Merge(b)
	if !reflect.DeepEqual(ab.Snapshot(), ab2.Snapshot()) {
		t.Fatalf("replayed merge diverged:\n%s\nvs\n%s", ab, ab2)
	}

	// Self-merge and nil-merge are no-ops.
	before := ab.Snapshot()
	ab.Merge(ab)
	ab.Merge(nil)
	if !reflect.DeepEqual(ab.Snapshot(), before) {
		t.Fatalf("no-op merges changed counters: %s", ab)
	}
}
