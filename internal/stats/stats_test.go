package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	if p := h.Quantile(0.5); p < 48 || p > 53 {
		t.Fatalf("p50 = %d, want ~50", p)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Against exact quantiles on a big random sample: log-linear buckets
	// promise <2% relative error.
	r := rand.New(rand.NewPCG(1, 2))
	h := NewHistogram()
	vals := make([]int64, 0, 100000)
	for i := 0; i < 100000; i++ {
		v := int64(math.Exp(r.NormFloat64()*1.5 + 10)) // lognormal, ~22k median
		h.Record(v)
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))-1]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got-exact)) / float64(exact)
		if relErr > 0.02 {
			t.Errorf("q=%v: got %d, exact %d, relErr %.4f", q, got, exact, relErr)
		}
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatalf("negative values should clamp to 0, min=%d", h.Min())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(0); i < 1000; i++ {
		a.Record(i)
		b.Record(i + 1000)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Max() != 1999 || a.Min() != 0 {
		t.Fatalf("min/max after merge = %d/%d", a.Min(), a.Max())
	}
	if p := a.Quantile(0.5); p < 970 || p > 1030 {
		t.Fatalf("p50 after merge = %d", p)
	}
	a.Merge(nil) // no-op
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(42)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("reset did not clear")
	}
	h.Record(7)
	if h.Min() != 7 || h.Max() != 7 {
		t.Fatal("record after reset broken")
	}
}

func TestHistogramRecordN(t *testing.T) {
	h := NewHistogram()
	h.RecordN(100, 50)
	h.RecordN(200, 50)
	h.RecordN(300, 0)
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); math.Abs(m-150) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		h := NewHistogram()
		for _, v := range raw {
			h.Record(int64(v))
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileBoundsProperty(t *testing.T) {
	// Quantiles must always lie within [min, max].
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Record(int64(v))
		}
		for _, q := range []float64{0.01, 0.5, 0.999} {
			v := h.Quantile(q)
			if v < h.Min() || v > h.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Record(161) // ns, the paper's VESSEL average
	}
	s := h.Summarize()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	str := s.String()
	if str == "" {
		t.Fatal("empty summary string")
	}
}

func TestMeanVar(t *testing.T) {
	var w MeanVar
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if math.Abs(w.Mean()-5) > 1e-9 {
		t.Fatalf("mean = %v", w.Mean())
	}
	if math.Abs(w.Variance()-32.0/7.0) > 1e-9 {
		t.Fatalf("variance = %v", w.Variance())
	}
}

func TestMeanVarMerge(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	var all, a, b MeanVar
	for i := 0; i < 10000; i++ {
		x := r.NormFloat64()*3 + 10
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v != %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-6 {
		t.Fatalf("merged variance %v != %v", a.Variance(), all.Variance())
	}
	var empty MeanVar
	empty.Merge(a)
	if empty.N() != a.N() {
		t.Fatal("merge into empty failed")
	}
}

func TestRate(t *testing.T) {
	r := Rate{Count: 16_000_000, Elapsed: 1e9}
	if got := r.MopsPerSec(); math.Abs(got-16) > 1e-9 {
		t.Fatalf("Mops = %v", got)
	}
	zero := Rate{Count: 5, Elapsed: 0}
	if zero.PerSecond() != 0 {
		t.Fatal("zero elapsed should give zero rate")
	}
}
