package stats

import (
	"fmt"
	"strings"
)

// Counters is a named-counter set with deterministic iteration order
// (insertion order, not map order) — so rendering a counter set is a pure
// function of the sequence of Inc/Add calls and can be compared across
// runs, like the event log.
type Counters struct {
	names  []string
	values map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{values: make(map[string]uint64)}
}

// Inc adds one to the named counter.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Add adds n to the named counter, creating it on first use.
func (c *Counters) Add(name string, n uint64) {
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] += n
}

// Get returns the named counter's value (zero when never touched).
func (c *Counters) Get(name string) uint64 { return c.values[name] }

// Names returns the counter names in insertion order.
func (c *Counters) Names() []string { return c.names }

// String renders "name=value" lines in insertion order.
func (c *Counters) String() string {
	var b strings.Builder
	for _, n := range c.names {
		fmt.Fprintf(&b, "%s=%d\n", n, c.values[n])
	}
	return b.String()
}
