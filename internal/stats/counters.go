package stats

import (
	"fmt"
	"strings"
	"sync"
)

// Counters is a named-counter set with deterministic iteration order
// (insertion order, not map order) — so rendering a counter set is a pure
// function of the sequence of Inc/Add calls and can be compared across
// runs, like the event log. Counters are safe for concurrent use; as with
// the event log, insertion *order* under concurrent first-touches depends
// on goroutine interleaving, so cross-run fingerprints should come from
// single-threaded recording.
type Counters struct {
	mu     sync.Mutex
	names  []string
	values map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{values: make(map[string]uint64)}
}

// Inc adds one to the named counter.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Add adds n to the named counter, creating it on first use. Values wrap
// around on uint64 overflow.
func (c *Counters) Add(name string, n uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] += n
}

// Get returns the named counter's value (zero when never touched).
func (c *Counters) Get(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.values[name]
}

// Names returns a copy of the counter names in insertion order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// KV is one counter's name and value, as captured by Snapshot.
type KV struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// Snapshot returns every counter as name/value pairs in insertion order,
// captured under a single lock acquisition — the consistent-read form for
// callers that would otherwise pair Names() with one Get() per name (one
// lock round-trip each, and values that can shear between reads).
func (c *Counters) Snapshot() []KV {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]KV, len(c.names))
	for i, n := range c.names {
		out[i] = KV{Name: n, Value: c.values[n]}
	}
	return out
}

// Merge folds other's counters into c: every counter of other is added
// to c's counter of the same name, creating it (at c's insertion tail)
// on first touch. Merging goes through other.Snapshot() so the two locks
// are never held together — c.Merge(other) and other.Merge(c) running
// concurrently cannot deadlock. Merge order affects only the insertion
// order of names new to c, never the values: merging the same multiset
// of counter sets yields the same totals.
func (c *Counters) Merge(other *Counters) {
	if other == nil || other == c {
		return
	}
	for _, kv := range other.Snapshot() {
		c.Add(kv.Name, kv.Value)
	}
}

// String renders "name=value" lines in insertion order.
func (c *Counters) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	for _, n := range c.names {
		fmt.Fprintf(&b, "%s=%d\n", n, c.values[n])
	}
	return b.String()
}
