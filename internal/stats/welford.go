package stats

import "math"

// MeanVar accumulates a streaming mean and variance using Welford's
// algorithm. The zero value is ready to use.
type MeanVar struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *MeanVar) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *MeanVar) N() uint64 { return w.n }

// Mean returns the running mean (0 if empty).
func (w *MeanVar) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 if fewer than two
// observations).
func (w *MeanVar) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *MeanVar) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge combines two accumulators (parallel Welford).
func (w *MeanVar) Merge(o MeanVar) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// Rate tracks a count over a window of virtual time and reports it as an
// operations-per-second rate.
type Rate struct {
	Count   uint64
	Elapsed int64 // nanoseconds
}

// PerSecond returns the rate in operations/second.
func (r Rate) PerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Count) / (float64(r.Elapsed) / 1e9)
}

// MopsPerSec returns the rate in millions of operations per second, the
// unit the paper plots.
func (r Rate) MopsPerSec() float64 { return r.PerSecond() / 1e6 }
