package stats

import "testing"

// FuzzHistogram checks the histogram's invariants on arbitrary input
// streams: count conservation, min ≤ every quantile ≤ max, monotone
// quantiles, and mean within [min, max].
func FuzzHistogram(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{255, 1, 128, 7})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 {
			return
		}
		h := NewHistogram()
		var n uint64
		for i, b := range raw {
			// Spread values over many orders of magnitude.
			v := int64(b) << (uint(i%7) * 8)
			h.Record(v)
			n++
		}
		if h.Count() != n {
			t.Fatalf("count %d != %d", h.Count(), n)
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
			v := h.Quantile(q)
			if v < h.Min() || v > h.Max() {
				t.Fatalf("q%v=%d outside [%d,%d]", q, v, h.Min(), h.Max())
			}
			if v < prev {
				t.Fatalf("quantiles not monotone at %v", q)
			}
			prev = v
		}
		if m := h.Mean(); m < float64(h.Min()) || m > float64(h.Max()) {
			t.Fatalf("mean %f outside [%d,%d]", m, h.Min(), h.Max())
		}
	})
}
