package stats

import (
	"sync"
	"testing"
)

func TestCountersSnapshotOrderAndValues(t *testing.T) {
	c := NewCounters()
	c.Inc("z")
	c.Add("a", 10)
	c.Inc("z")
	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	if snap[0] != (KV{Name: "z", Value: 2}) || snap[1] != (KV{Name: "a", Value: 10}) {
		t.Fatalf("snapshot = %+v (insertion order required)", snap)
	}
	// The snapshot is a copy: later mutation must not leak in.
	c.Inc("z")
	if snap[0].Value != 2 {
		t.Fatal("snapshot aliased live state")
	}
}

func TestCountersSnapshotConcurrent(t *testing.T) {
	c := NewCounters()
	c.Inc("seed")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc("seed")
				c.Inc("other")
			}
		}
	}()
	for i := 0; i < 100; i++ {
		for _, kv := range c.Snapshot() {
			if kv.Name == "" {
				t.Error("empty name in snapshot")
			}
		}
	}
	close(stop)
	wg.Wait()
}
