package stats

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestCountersConcurrentWriters increments a shared counter set from many
// goroutines under the race detector and checks no increment is lost.
func TestCountersConcurrentWriters(t *testing.T) {
	const (
		writers = 8
		each    = 5000
	)
	c := NewCounters()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := fmt.Sprintf("w%d", w)
			for i := 0; i < each; i++ {
				c.Inc("shared")
				c.Inc(mine)
				if i%128 == 0 {
					_ = c.Get("shared")
					_ = c.Names()
					_ = c.String()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Get("shared"); got != writers*each {
		t.Fatalf("shared = %d, want %d", got, writers*each)
	}
	for w := 0; w < writers; w++ {
		if got := c.Get(fmt.Sprintf("w%d", w)); got != each {
			t.Fatalf("w%d = %d, want %d", w, got, each)
		}
	}
	// shared + w0..w7; order of the per-writer names is interleaving-
	// dependent, but the set must be exactly writers+1 distinct names.
	if got := len(c.Names()); got != writers+1 {
		t.Fatalf("names = %d, want %d", got, writers+1)
	}
}

// TestCountersOverflowWraps pins the uint64 wraparound edge: Add past
// MaxUint64 wraps rather than saturating or panicking.
func TestCountersOverflowWraps(t *testing.T) {
	c := NewCounters()
	c.Add("x", math.MaxUint64)
	if got := c.Get("x"); got != math.MaxUint64 {
		t.Fatalf("x = %d", got)
	}
	c.Add("x", 3)
	if got := c.Get("x"); got != 2 {
		t.Fatalf("x after wrap = %d, want 2", got)
	}
	// Names returns a copy, not internal storage.
	names := c.Names()
	names[0] = "mutated"
	if c.Names()[0] != "x" {
		t.Fatal("Names returned internal storage")
	}
}
