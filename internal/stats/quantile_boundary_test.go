package stats

import "testing"

// TestQuantileEmptyHistogram pins the empty-histogram boundary: with no
// recordings, Quantile returns 0 for every q — including the q<=0 and q>=1
// branches that normally return the exact min and max — rather than the
// sentinel min/max initialisers. SLO and critical-path reports divide by
// and print these values, so the empty case must be a clean zero.
func TestQuantileEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{-1, 0, 0.5, 0.99, 0.999, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if h.Count() != 0 {
		t.Fatalf("empty Count = %d", h.Count())
	}

	h.Record(42)
	if got := h.Quantile(0.5); got != 42 {
		t.Fatalf("Quantile(0.5) after one recording = %d, want 42", got)
	}
	h.Reset()
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("post-Reset Quantile(%v) = %d, want 0", q, got)
		}
	}
}
