package kernel

import "vessel/internal/sim"

// CPUQuota models the cgroup-v2 cpu.max controller used as a Figure 13b
// comparator: a task group may run for at most Quota out of every Period of
// wall time; once the budget is exhausted the group is throttled until the
// period refills. Enforcement granularity is the period (100ms by default)
// — four to five orders of magnitude coarser than VESSEL's core scheduling,
// which is exactly why it regulates memory bandwidth poorly.
type CPUQuota struct {
	Period sim.Duration
	Quota  sim.Duration

	windowStart sim.Time
	used        sim.Duration
	// ThrottledNs accumulates time spent throttled, for reporting.
	ThrottledNs sim.Duration
}

// NewCPUQuota returns a controller granting quota out of every period.
func NewCPUQuota(period, quota sim.Duration) *CPUQuota {
	return &CPUQuota{Period: period, Quota: quota}
}

// refill advances the window to contain now.
func (q *CPUQuota) refill(now sim.Time) {
	for now >= q.windowStart.Add(q.Period) {
		q.windowStart = q.windowStart.Add(q.Period)
		q.used = 0
	}
}

// Grant asks to run for want starting at now. It returns the duration the
// group may actually run before throttling, and the time at which the next
// budget becomes available if the returned grant is zero.
func (q *CPUQuota) Grant(now sim.Time, want sim.Duration) (run sim.Duration, nextRefill sim.Time) {
	q.refill(now)
	remaining := q.Quota - q.used
	if remaining <= 0 {
		return 0, q.windowStart.Add(q.Period)
	}
	if want > remaining {
		want = remaining
	}
	return want, 0
}

// Charge records that the group ran for d starting at now.
func (q *CPUQuota) Charge(now sim.Time, d sim.Duration) {
	q.refill(now)
	q.used += d
}

// Throttled records throttled time (for reporting).
func (q *CPUQuota) Throttled(d sim.Duration) { q.ThrottledNs += d }

// Fraction returns the configured CPU fraction quota/period.
func (q *CPUQuota) Fraction() float64 {
	if q.Period <= 0 {
		return 1
	}
	return float64(q.Quota) / float64(q.Period)
}
