package kernel

import (
	"fmt"
	"sort"
)

// This file implements the minimal in-memory file system and per-process
// descriptor tables needed to reproduce the §5.2.4 scenarios:
//
//   - Security: two uProcesses scheduled into the same kProcess share its
//     fd table, so without interposition uProcess B can brute-force
//     descriptors opened by uProcess A.
//   - Correctness: a uProcess rescheduled into a different kProcess loses
//     descriptors (and may lack ACL permission to reopen files) unless the
//     runtime proxies syscalls and the manager aligns kProcess ACLs.

// File is an in-memory file with a simple owner/mode ACL.
type File struct {
	Name  string
	Owner int // uid
	Mode  uint32
	Data  []byte
}

// FS is a flat in-memory namespace.
type FS struct {
	files map[string]*File
}

// NewFS returns an empty file system.
func NewFS() *FS { return &FS{files: make(map[string]*File)} }

// Create makes a file owned by uid with the given mode. Creating an
// existing name truncates it (like O_CREAT|O_TRUNC) if uid may write.
func (fs *FS) Create(name string, uid int, mode uint32) (*File, error) {
	if f, ok := fs.files[name]; ok {
		if !f.mayWrite(uid) {
			return nil, fmt.Errorf("fs: %s: permission denied", name)
		}
		f.Data = nil
		return f, nil
	}
	f := &File{Name: name, Owner: uid, Mode: mode}
	fs.files[name] = f
	return f, nil
}

// Lookup finds a file.
func (fs *FS) Lookup(name string) (*File, bool) {
	f, ok := fs.files[name]
	return f, ok
}

// Names lists all file names, sorted (for deterministic tests).
func (fs *FS) Names() []string {
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (f *File) mayRead(uid int) bool {
	if uid == f.Owner {
		return f.Mode&0o400 != 0
	}
	return f.Mode&0o004 != 0
}

func (f *File) mayWrite(uid int) bool {
	if uid == f.Owner {
		return f.Mode&0o200 != 0
	}
	return f.Mode&0o002 != 0
}

// FD is a file descriptor number.
type FD int

// openFile is a descriptor-table entry.
type openFile struct {
	file   *File
	offset int
	write  bool
}

// FDTable is a per-kProcess descriptor table. Descriptors are allocated
// lowest-first, as POSIX requires — which is exactly what makes them
// brute-forceable by a colocated uProcess (§5.2.4).
type FDTable struct {
	next FD
	open map[FD]*openFile
}

// NewFDTable returns an empty table starting at fd 3 (0–2 reserved).
func NewFDTable() *FDTable {
	return &FDTable{next: 3, open: make(map[FD]*openFile)}
}

// Open opens name in fs for uid, enforcing the ACL, and returns a new fd.
func (p *KProcess) Open(fs *FS, name string, write bool) (FD, error) {
	f, ok := fs.Lookup(name)
	if !ok {
		return -1, fmt.Errorf("fs: %s: no such file", name)
	}
	if write && !f.mayWrite(p.UID) {
		return -1, fmt.Errorf("fs: %s: permission denied (uid %d)", name, p.UID)
	}
	if !write && !f.mayRead(p.UID) {
		return -1, fmt.Errorf("fs: %s: permission denied (uid %d)", name, p.UID)
	}
	fd := p.fds.next
	p.fds.next++
	p.fds.open[fd] = &openFile{file: f, write: write}
	return fd, nil
}

// Creat creates a file and opens it for writing.
func (p *KProcess) Creat(fs *FS, name string, mode uint32) (FD, error) {
	f, err := fs.Create(name, p.UID, mode)
	if err != nil {
		return -1, err
	}
	fd := p.fds.next
	p.fds.next++
	p.fds.open[fd] = &openFile{file: f, write: true}
	return fd, nil
}

// ReadFD reads up to n bytes from fd.
func (p *KProcess) ReadFD(fd FD, n int) ([]byte, error) {
	of, ok := p.fds.open[fd]
	if !ok {
		return nil, fmt.Errorf("fs: bad fd %d (EBADF)", fd)
	}
	if of.offset >= len(of.file.Data) {
		return nil, nil
	}
	end := of.offset + n
	if end > len(of.file.Data) {
		end = len(of.file.Data)
	}
	out := of.file.Data[of.offset:end]
	of.offset = end
	return out, nil
}

// WriteFD appends data through fd.
func (p *KProcess) WriteFD(fd FD, data []byte) error {
	of, ok := p.fds.open[fd]
	if !ok {
		return fmt.Errorf("fs: bad fd %d (EBADF)", fd)
	}
	if !of.write {
		return fmt.Errorf("fs: fd %d not open for writing", fd)
	}
	of.file.Data = append(of.file.Data, data...)
	return nil
}

// Close closes fd.
func (p *KProcess) Close(fd FD) error {
	if _, ok := p.fds.open[fd]; !ok {
		return fmt.Errorf("fs: bad fd %d (EBADF)", fd)
	}
	delete(p.fds.open, fd)
	return nil
}

// FDValid reports whether fd is open — the brute-force probe a malicious
// colocated uProcess would use.
func (p *KProcess) FDValid(fd FD) bool {
	_, ok := p.fds.open[fd]
	return ok
}

// OpenFDs returns the open descriptor numbers, sorted.
func (p *KProcess) OpenFDs() []FD {
	out := make([]FD, 0, len(p.fds.open))
	for fd := range p.fds.open {
		out = append(out, fd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
