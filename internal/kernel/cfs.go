package kernel

import (
	"container/heap"

	"vessel/internal/sim"
)

// This file implements the Completely Fair Scheduler runqueue used by the
// Linux baseline (§6.1 configures the L-app at nice −19 and the B-app at
// nice 20). It reproduces the mechanics that produce the paper's observed
// behaviour: weight-proportional vruntime advancement, ms-scale effective
// timeslices, and wakeup placement that bounds how far a sleeper can get
// ahead.

// prioToWeight is the kernel's sched_prio_to_weight table, indexed by
// nice+20.
var prioToWeight = [40]int64{
	88761, 71755, 56483, 46273, 36291,
	29154, 23254, 18705, 14949, 11916,
	9548, 7620, 6100, 4904, 3906,
	3121, 2501, 1991, 1586, 1277,
	1024, 820, 655, 526, 423,
	335, 272, 215, 172, 137,
	110, 87, 70, 56, 45,
	36, 29, 23, 18, 15,
}

// WeightForNice returns the CFS load weight for a nice value (clamped).
func WeightForNice(nice int) int64 {
	if nice < -20 {
		nice = -20
	}
	if nice > 19 {
		nice = 19
	}
	return prioToWeight[nice+20]
}

const niceZeroWeight = 1024

// Entity is a schedulable CFS entity.
type Entity struct {
	ID       int
	Weight   int64
	Vruntime sim.Duration // weighted virtual runtime
	OnRQ     bool
	index    int // heap position, -1 when not queued
	// UserData lets callers attach their thread object.
	UserData any
}

// NewEntity returns an entity with the weight for the given nice value.
func NewEntity(id, nice int) *Entity {
	return &Entity{ID: id, Weight: WeightForNice(nice), index: -1}
}

// Runqueue is a per-core CFS runqueue ordered by vruntime.
type Runqueue struct {
	queue   entityHeap
	current *Entity
	minVrun sim.Duration
	// Tunables, defaulting to the kernel's.
	Latency        sim.Duration // sched_latency_ns
	MinGranularity sim.Duration // sched_min_granularity_ns
	WakeupGran     sim.Duration // sched_wakeup_granularity_ns
}

// NewRunqueue returns a runqueue with the kernel's default CFS tunables.
func NewRunqueue() *Runqueue {
	return &Runqueue{
		Latency:        6 * sim.Millisecond,
		MinGranularity: 750 * sim.Microsecond,
		WakeupGran:     1 * sim.Millisecond,
	}
}

// Len returns the number of queued (not current) entities.
func (rq *Runqueue) Len() int { return len(rq.queue) }

// NrRunning counts queued plus current.
func (rq *Runqueue) NrRunning() int {
	n := len(rq.queue)
	if rq.current != nil {
		n++
	}
	return n
}

// Current returns the running entity, if any.
func (rq *Runqueue) Current() *Entity { return rq.current }

// MinVruntime returns the runqueue's monotonically advancing floor.
func (rq *Runqueue) MinVruntime() sim.Duration { return rq.minVrun }

// Enqueue makes e runnable. If wakeup is true the entity is placed at
// min_vruntime − latency/2 (clamped up to its own vruntime), the kernel's
// sleeper-fairness placement: a waking sleeper gets a modest boost, not an
// unbounded one.
func (rq *Runqueue) Enqueue(e *Entity, wakeup bool) {
	if e.OnRQ {
		return
	}
	if wakeup {
		floor := rq.minVrun - sim.Duration(int64(rq.Latency)/2)
		if e.Vruntime < floor {
			e.Vruntime = floor
		}
	} else if e.Vruntime < rq.minVrun {
		e.Vruntime = rq.minVrun
	}
	e.OnRQ = true
	heap.Push(&rq.queue, e)
}

// Dequeue removes a queued entity (e.g. it went to sleep while preempted).
func (rq *Runqueue) Dequeue(e *Entity) {
	if !e.OnRQ || e.index < 0 {
		e.OnRQ = false
		return
	}
	heap.Remove(&rq.queue, e.index)
	e.OnRQ = false
	e.index = -1
}

// PickNext selects the leftmost entity as current, returning nil when the
// queue is empty. Any previous current must have been put back or retired
// by the caller first.
func (rq *Runqueue) PickNext() *Entity {
	if len(rq.queue) == 0 {
		rq.current = nil
		return nil
	}
	e := heap.Pop(&rq.queue).(*Entity)
	e.OnRQ = false
	e.index = -1
	rq.current = e
	if e.Vruntime > rq.minVrun {
		rq.minVrun = e.Vruntime
	}
	return e
}

// PutPrev returns the current entity to the queue (it remains runnable).
func (rq *Runqueue) PutPrev() {
	if rq.current == nil {
		return
	}
	e := rq.current
	rq.current = nil
	e.OnRQ = true
	heap.Push(&rq.queue, e)
}

// Retire removes the current entity without requeueing (it blocked).
func (rq *Runqueue) Retire() {
	rq.current = nil
}

// Account charges wall-time ran to the current entity's vruntime,
// weight-scaled: vruntime += ran * (1024 / weight).
func (rq *Runqueue) Account(ran sim.Duration) {
	if rq.current == nil {
		return
	}
	e := rq.current
	e.Vruntime += sim.Duration(int64(ran) * niceZeroWeight / e.Weight)
}

// Timeslice returns the current entity's ideal slice:
// latency * weight / total_weight, floored at min granularity.
func (rq *Runqueue) Timeslice() sim.Duration {
	if rq.current == nil {
		return rq.Latency
	}
	var total int64
	for _, e := range rq.queue {
		total += e.Weight
	}
	total += rq.current.Weight
	slice := sim.Duration(int64(rq.Latency) * rq.current.Weight / total)
	if slice < rq.MinGranularity {
		slice = rq.MinGranularity
	}
	return slice
}

// ShouldPreempt implements check_preempt_wakeup: a waking entity preempts
// the current one only if current's vruntime exceeds the waker's by more
// than the wakeup granularity (weight-scaled on the waker).
func (rq *Runqueue) ShouldPreempt(waker *Entity) bool {
	if rq.current == nil {
		return true
	}
	gran := sim.Duration(int64(rq.WakeupGran) * niceZeroWeight / waker.Weight)
	return rq.current.Vruntime-waker.Vruntime > gran
}

// entityHeap orders by vruntime (ties by ID for determinism).
type entityHeap []*Entity

func (h entityHeap) Len() int { return len(h) }
func (h entityHeap) Less(i, j int) bool {
	if h[i].Vruntime != h[j].Vruntime {
		return h[i].Vruntime < h[j].Vruntime
	}
	return h[i].ID < h[j].ID
}
func (h entityHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *entityHeap) Push(x any) {
	e := x.(*Entity)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *entityHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	e.index = -1
	return e
}
