package kernel

import (
	"testing"
	"testing/quick"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/sim"
)

func newKernel() (*Kernel, *mem.Physical) {
	return New(sim.NewEngine(), cpu.Default()), mem.NewPhysical()
}

func TestForkAndLookup(t *testing.T) {
	k, phys := newKernel()
	p1, d := k.Fork(phys, 1000, 0)
	if d <= 0 {
		t.Fatal("fork must cost time")
	}
	p2, _ := k.Fork(phys, 1000, -19)
	if p1.PID == p2.PID {
		t.Fatal("duplicate pids")
	}
	got, ok := k.Process(p1.PID)
	if !ok || got != p1 {
		t.Fatal("lookup failed")
	}
	if !p1.Alive {
		t.Fatal("fresh process must be alive")
	}
}

func TestSignalDefaultDispositions(t *testing.T) {
	k, phys := newKernel()
	p, _ := k.Fork(phys, 0, 0)
	k.SendSignal(p, SIGSEGV)
	if p.Alive || p.ExitSignal != SIGSEGV {
		t.Fatalf("SIGSEGV default should kill: alive=%v exit=%v", p.Alive, p.ExitSignal)
	}
	// Signals to a dead process are no-ops.
	k.SendSignal(p, SIGTERM)
	if p.ExitSignal != SIGSEGV {
		t.Fatal("dead process disposition changed")
	}
}

func TestSignalHandlerIntercepts(t *testing.T) {
	k, phys := newKernel()
	p, _ := k.Fork(phys, 0, 0)
	caught := 0
	k.RegisterHandler(p, SIGSEGV, func(pr *KProcess, s Signal) { caught++ })
	k.SendSignal(p, SIGSEGV)
	if caught != 1 || !p.Alive {
		t.Fatalf("handler not run: caught=%d alive=%v", caught, p.Alive)
	}
	// SIGKILL cannot be caught.
	k.RegisterHandler(p, SIGKILL, func(pr *KProcess, s Signal) { caught += 100 })
	k.SendSignal(p, SIGKILL)
	if p.Alive || caught != 1 {
		t.Fatalf("SIGKILL must be uncatchable: alive=%v caught=%d", p.Alive, caught)
	}
}

func TestKernelAccounting(t *testing.T) {
	k, phys := newKernel()
	p, _ := k.Fork(phys, 0, 0)
	k.SendSignal(p, SIGUSR1) // no handler, no termination for USR1 default here
	k.IoctlIPI()
	k.PreemptSwitch()
	k.ContextSwitch()
	k.Wakeup()
	k.Syscall("read", 100)
	if k.TotalKernelNs() <= 0 {
		t.Fatal("no kernel time charged")
	}
	cm := cpu.Default()
	want := cm.CaladanIoctl + cm.CaladanIPI
	if k.KernelNs["ioctl-ipi"] != want {
		t.Fatalf("ioctl-ipi = %v, want %v", k.KernelNs["ioctl-ipi"], want)
	}
	// Figure 3 total: ioctl+IPI+preempt switch = 5.3µs.
	total := k.KernelNs["ioctl-ipi"] + k.KernelNs["preempt-switch"]
	if total != 5300 {
		t.Fatalf("Caladan reallocation total = %v, want 5.3µs", total)
	}
}

func TestFDBruteForceScenario(t *testing.T) {
	// §5.2.4 security scenario: uProcess A and B run inside the same
	// kProcess; A creates a file; B can discover the descriptor by
	// brute force because the fd table is shared kernel state.
	k, phys := newKernel()
	host, _ := k.Fork(phys, 1000, 0)
	fd, err := host.Creat(k.FS(), "/secret", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if err := host.WriteFD(fd, []byte("key material")); err != nil {
		t.Fatal(err)
	}
	// "uProcess B" probing descriptors in the same kProcess.
	var found []FD
	for probe := FD(0); probe < 64; probe++ {
		if host.FDValid(probe) {
			found = append(found, probe)
		}
	}
	if len(found) != 1 || found[0] != fd {
		t.Fatalf("brute force found %v, want [%d]", found, fd)
	}
}

func TestFDCorrectnessScenario(t *testing.T) {
	// §5.2.4 correctness scenario: a uProcess that created a file via
	// kProcess A cannot see the descriptor after being rescheduled into
	// kProcess B — and may lack ACL permission to reopen it when the
	// manager does NOT align kProcess credentials.
	k, phys := newKernel()
	procA, _ := k.Fork(phys, 1000, 0)
	procB, _ := k.Fork(phys, 2000, 0) // different uid: misconfigured manager
	fd, err := procA.Creat(k.FS(), "/data", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if procB.FDValid(fd) {
		t.Fatal("descriptor leaked across kProcesses")
	}
	if _, err := procB.Open(k.FS(), "/data", false); err == nil {
		t.Fatal("uid 2000 must not reopen a 0600 file owned by 1000")
	}
	// The manager's fix: create kProcesses with the same credentials.
	procB2, _ := k.Fork(phys, 1000, 0)
	if _, err := procB2.Open(k.FS(), "/data", true); err != nil {
		t.Fatalf("same-ACL kProcess must reopen: %v", err)
	}
}

func TestFSBasics(t *testing.T) {
	k, phys := newKernel()
	p, _ := k.Fork(phys, 1, 0)
	fd, err := p.Creat(k.FS(), "/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteFD(fd, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(fd); err == nil {
		t.Fatal("double close must EBADF")
	}
	rfd, err := p.Open(k.FS(), "/f", false)
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.ReadFD(rfd, 100)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read %q, %v", data, err)
	}
	if more, _ := p.ReadFD(rfd, 10); more != nil {
		t.Fatal("EOF read should return nil")
	}
	if err := p.WriteFD(rfd, []byte("x")); err == nil {
		t.Fatal("write to read-only fd must fail")
	}
	if _, err := p.Open(k.FS(), "/missing", false); err == nil {
		t.Fatal("open missing must fail")
	}
	if _, err := p.ReadFD(999, 1); err == nil {
		t.Fatal("read bad fd must fail")
	}
	// Other-uid read allowed by 0644.
	q, _ := k.Fork(phys, 2, 0)
	if _, err := q.Open(k.FS(), "/f", false); err != nil {
		t.Fatalf("world-readable open failed: %v", err)
	}
	if _, err := q.Open(k.FS(), "/f", true); err == nil {
		t.Fatal("world write must fail on 0644")
	}
	if len(k.FS().Names()) != 1 {
		t.Fatal("names")
	}
	if len(p.OpenFDs()) != 1 {
		t.Fatalf("open fds = %v", p.OpenFDs())
	}
}

func TestCreatTruncateRespectsACL(t *testing.T) {
	k, phys := newKernel()
	owner, _ := k.Fork(phys, 1, 0)
	if _, err := owner.Creat(k.FS(), "/t", 0o600); err != nil {
		t.Fatal(err)
	}
	other, _ := k.Fork(phys, 2, 0)
	if _, err := other.Creat(k.FS(), "/t", 0o600); err == nil {
		t.Fatal("non-owner truncate must fail")
	}
}

func TestWeightForNice(t *testing.T) {
	if WeightForNice(0) != 1024 {
		t.Fatalf("nice 0 weight = %d", WeightForNice(0))
	}
	if WeightForNice(-20) != 88761 || WeightForNice(19) != 15 {
		t.Fatal("extreme weights wrong")
	}
	if WeightForNice(-100) != WeightForNice(-20) || WeightForNice(100) != WeightForNice(19) {
		t.Fatal("clamping broken")
	}
	// The paper's configuration: L-app at −19, B-app at 20(→19).
	ratio := float64(WeightForNice(-19)) / float64(WeightForNice(19))
	if ratio < 4000 {
		t.Fatalf("−19 vs 19 weight ratio = %.0f, want enormous", ratio)
	}
}

func TestCFSRunqueueOrdering(t *testing.T) {
	rq := NewRunqueue()
	a := NewEntity(1, 0)
	b := NewEntity(2, 0)
	a.Vruntime = 100
	b.Vruntime = 50
	rq.Enqueue(a, false)
	rq.Enqueue(b, false)
	if got := rq.PickNext(); got != b {
		t.Fatal("lowest vruntime must run first")
	}
	rq.Account(2 * sim.Millisecond)
	rq.PutPrev()
	if got := rq.PickNext(); got != a {
		t.Fatal("after accounting, a should lead")
	}
}

func TestCFSWeightedAccounting(t *testing.T) {
	rq := NewRunqueue()
	heavy := NewEntity(1, -19) // weight 71755
	light := NewEntity(2, 19)  // weight 15
	rq.Enqueue(heavy, false)
	rq.Enqueue(light, false)
	// Run each for the same wall time; the heavy entity's vruntime must
	// advance ~4800x slower.
	e := rq.PickNext()
	rq.Account(1 * sim.Millisecond)
	v1 := e.Vruntime
	rq.Retire()
	e2 := rq.PickNext()
	rq.Account(1 * sim.Millisecond)
	v2 := e2.Vruntime
	hv, lv := v1, v2
	if e.ID == 2 {
		hv, lv = v2, v1
	}
	if lv < hv*1000 {
		t.Fatalf("weighting wrong: heavy=%v light=%v", hv, lv)
	}
}

func TestCFSWakeupPlacement(t *testing.T) {
	rq := NewRunqueue()
	runner := NewEntity(1, 0)
	rq.Enqueue(runner, false)
	rq.PickNext()
	rq.Account(100 * sim.Millisecond)
	rq.PutPrev()
	rq.PickNext() // advances minVruntime
	sleeper := NewEntity(2, 0)
	sleeper.Vruntime = 0 // slept for ages
	rq.Enqueue(sleeper, true)
	// Sleeper must be placed near minVruntime, not at 0: bounded boost.
	if sleeper.Vruntime < rq.MinVruntime()-rq.Latency {
		t.Fatalf("unbounded sleeper boost: v=%v min=%v", sleeper.Vruntime, rq.MinVruntime())
	}
}

func TestCFSTimesliceAndPreempt(t *testing.T) {
	rq := NewRunqueue()
	for i := 0; i < 8; i++ {
		rq.Enqueue(NewEntity(i, 0), false)
	}
	rq.PickNext()
	slice := rq.Timeslice()
	if slice < rq.MinGranularity {
		t.Fatalf("slice %v under min granularity", slice)
	}
	// With 8 equal entities, slice = latency/8 < min gran → floored.
	if slice != rq.MinGranularity {
		t.Fatalf("slice = %v, want floor %v", slice, rq.MinGranularity)
	}
	// ShouldPreempt: a waker far behind current preempts.
	waker := NewEntity(99, 0)
	waker.Vruntime = 0
	rq.Current().Vruntime = 10 * sim.Millisecond
	if !rq.ShouldPreempt(waker) {
		t.Fatal("far-behind waker should preempt")
	}
	waker.Vruntime = rq.Current().Vruntime
	if rq.ShouldPreempt(waker) {
		t.Fatal("equal vruntime should not preempt")
	}
}

func TestCFSDequeue(t *testing.T) {
	rq := NewRunqueue()
	a, b, c := NewEntity(1, 0), NewEntity(2, 0), NewEntity(3, 0)
	rq.Enqueue(a, false)
	rq.Enqueue(b, false)
	rq.Enqueue(c, false)
	rq.Dequeue(b)
	if rq.Len() != 2 {
		t.Fatalf("len = %d", rq.Len())
	}
	seen := map[int]bool{}
	for rq.Len() > 0 {
		seen[rq.PickNext().ID] = true
		rq.Retire()
	}
	if seen[2] {
		t.Fatal("dequeued entity still picked")
	}
	rq.Dequeue(b) // double dequeue is a no-op
	rq.Enqueue(a, false)
	rq.Enqueue(a, false) // double enqueue is a no-op
	if rq.Len() != 1 {
		t.Fatalf("double enqueue duplicated: len=%d", rq.Len())
	}
}

func TestCFSVruntimeMonotoneProperty(t *testing.T) {
	// Property: picking always yields the minimum vruntime among queued
	// entities, and min_vruntime never decreases.
	f := func(vruntimes []uint32) bool {
		rq := NewRunqueue()
		for i, v := range vruntimes {
			e := NewEntity(i, 0)
			e.Vruntime = sim.Duration(v)
			rq.Enqueue(e, false)
		}
		prevMin := sim.Duration(-1)
		prevPick := sim.Duration(-1)
		for rq.Len() > 0 {
			e := rq.PickNext()
			if e.Vruntime < prevPick {
				return false
			}
			prevPick = e.Vruntime
			if rq.MinVruntime() < prevMin {
				return false
			}
			prevMin = rq.MinVruntime()
			rq.Retire()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCPUQuota(t *testing.T) {
	q := NewCPUQuota(100*sim.Millisecond, 10*sim.Millisecond)
	if q.Fraction() != 0.1 {
		t.Fatalf("fraction = %v", q.Fraction())
	}
	now := sim.Time(0)
	run, _ := q.Grant(now, 50*sim.Millisecond)
	if run != 10*sim.Millisecond {
		t.Fatalf("grant = %v, want 10ms", run)
	}
	q.Charge(now, run)
	run2, refill := q.Grant(now.Add(sim.Duration(run)), 1*sim.Millisecond)
	if run2 != 0 {
		t.Fatalf("over-quota grant = %v", run2)
	}
	if refill != sim.Time(100*sim.Millisecond) {
		t.Fatalf("refill at %v", refill)
	}
	// After the period refills, budget is back.
	run3, _ := q.Grant(sim.Time(150*sim.Millisecond), 5*sim.Millisecond)
	if run3 != 5*sim.Millisecond {
		t.Fatalf("post-refill grant = %v", run3)
	}
	q.Throttled(3 * sim.Millisecond)
	if q.ThrottledNs != 3*sim.Millisecond {
		t.Fatal("throttle accounting")
	}
	free := NewCPUQuota(0, 0)
	if free.Fraction() != 1 {
		t.Fatal("zero period should mean unlimited fraction")
	}
}

func TestSignalStrings(t *testing.T) {
	for _, s := range []Signal{SIGUSR1, SIGSEGV, SIGKILL, SIGTERM, Signal(77)} {
		if s.String() == "" {
			t.Fatal("empty signal name")
		}
	}
}
