// Package kernel models the slice of Linux that the paper's systems
// interact with: kernel processes (kProcesses), user↔kernel crossings,
// POSIX-style signals, an in-memory file system with per-process descriptor
// tables and access control (for the §5.2.4 syscall-interposition
// scenarios), the CFS runqueue used by the Linux baseline, and a cgroup CPU
// quota controller (Figure 13b comparator).
//
// The kernel's role in the reproduction is to charge the costs that
// kernel-mediated scheduling pays and uProcess avoids: every operation
// returns the virtual time it consumes, derived from the cost model.
package kernel

import (
	"fmt"

	"vessel/internal/cpu"
	"vessel/internal/mem"
	"vessel/internal/sim"
)

// PID identifies a kProcess.
type PID int

// Signal numbers (the subset the reproduction uses).
type Signal int

// Signals used by the paper's mechanisms: SIGUSR1 drives Caladan's
// preemption path; SIGSEGV is the fault uProcess's runtime intercepts to
// shrink the blast radius (§4.3); SIGKILL/SIGTERM terminate uProcesses.
const (
	SIGUSR1 Signal = 10
	SIGSEGV Signal = 11
	SIGKILL Signal = 9
	SIGTERM Signal = 15
)

func (s Signal) String() string {
	switch s {
	case SIGUSR1:
		return "SIGUSR1"
	case SIGSEGV:
		return "SIGSEGV"
	case SIGKILL:
		return "SIGKILL"
	case SIGTERM:
		return "SIGTERM"
	default:
		return fmt.Sprintf("signal(%d)", int(s))
	}
}

// SignalHandler is a registered userspace handler.
type SignalHandler func(p *KProcess, sig Signal)

// KProcess is a kernel process: address space, descriptor table, scheduling
// attributes, and signal dispositions. uProcesses are hosted by kProcesses
// created by the VESSEL manager (§5.1).
type KProcess struct {
	PID      PID
	AS       *mem.AddressSpace
	Nice     int // -20..19
	UID      int
	handlers map[Signal]SignalHandler
	fds      *FDTable
	Alive    bool
	// ExitSignal records what killed the process, if anything.
	ExitSignal Signal
}

// Kernel is the simulated kernel instance.
type Kernel struct {
	Costs   *cpu.CostModel
	Eng     *sim.Engine
	nextPID PID
	procs   map[PID]*KProcess
	fs      *FS

	// Accounting of time spent inside the kernel, by reason. The dense
	// colocation experiment (Figure 2) reads these.
	KernelNs map[string]sim.Duration
}

// New creates a kernel over the given engine and cost model.
func New(eng *sim.Engine, costs *cpu.CostModel) *Kernel {
	if costs == nil {
		costs = cpu.Default()
	}
	return &Kernel{
		Costs:    costs,
		Eng:      eng,
		nextPID:  1,
		procs:    make(map[PID]*KProcess),
		fs:       NewFS(),
		KernelNs: make(map[string]sim.Duration),
	}
}

// FS returns the kernel's file system.
func (k *Kernel) FS() *FS { return k.fs }

// charge records kernel time under a reason label and returns it.
func (k *Kernel) charge(reason string, d sim.Duration) sim.Duration {
	k.KernelNs[reason] += d
	return d
}

// Fork creates a kProcess with a fresh address space over the given
// physical memory (the booting-program step of uProcess creation, §5.1).
// The returned duration is the syscall cost.
func (k *Kernel) Fork(phys *mem.Physical, uid, nice int) (*KProcess, sim.Duration) {
	p := &KProcess{
		PID:      k.nextPID,
		AS:       mem.NewAddressSpace(phys),
		Nice:     nice,
		UID:      uid,
		handlers: make(map[Signal]SignalHandler),
		fds:      NewFDTable(),
		Alive:    true,
	}
	k.nextPID++
	k.procs[p.PID] = p
	// fork() is two crossings plus substantial kernel work; the constant
	// is coarse because process creation is off the hot paths measured.
	d := 2*k.Costs.UserKernelCross + 50*sim.Microsecond
	return p, k.charge("fork", d)
}

// Process looks up a kProcess by pid.
func (k *Kernel) Process(pid PID) (*KProcess, bool) {
	p, ok := k.procs[pid]
	return p, ok
}

// RegisterHandler installs a userspace signal handler (sigaction).
func (k *Kernel) RegisterHandler(p *KProcess, sig Signal, h SignalHandler) sim.Duration {
	p.handlers[sig] = h
	return k.charge("sigaction", 2*k.Costs.UserKernelCross)
}

// SendSignal delivers sig to p. The default disposition for SIGSEGV,
// SIGKILL and SIGTERM is termination; a registered handler (other than for
// SIGKILL, which cannot be caught) runs instead. The returned duration is
// the full kernel delivery cost — trap in, frame setup, handler dispatch.
func (k *Kernel) SendSignal(p *KProcess, sig Signal) sim.Duration {
	d := 2*k.Costs.UserKernelCross + k.Costs.SignalDeliver
	k.charge("signal:"+sig.String(), d)
	if !p.Alive {
		return d
	}
	if h, ok := p.handlers[sig]; ok && sig != SIGKILL {
		h(p, sig)
		return d
	}
	switch sig {
	case SIGSEGV, SIGKILL, SIGTERM:
		p.Alive = false
		p.ExitSignal = sig
	}
	return d
}

// IoctlIPI models the Caladan scheduler's path for kicking a victim core:
// an ioctl syscall on the sender side plus an inter-processor interrupt to
// the victim, which then traps into the kernel (Figure 3, steps 1–2).
func (k *Kernel) IoctlIPI() sim.Duration {
	return k.charge("ioctl-ipi", k.Costs.CaladanIoctl+k.Costs.CaladanIPI)
}

// PreemptSwitch models the remainder of Caladan's kernel-mediated core
// reallocation once the IPI lands: trap + SIGUSR to the runtime, userspace
// state save, kernel data-structure and page-table switch, and restore to
// the new task (Figure 3, steps 3–6).
func (k *Kernel) PreemptSwitch() sim.Duration {
	c := k.Costs
	return k.charge("preempt-switch",
		c.CaladanTrapSig+c.CaladanUserSave+c.CaladanKernSwap+c.CaladanRestore)
}

// ContextSwitch models a plain kernel context switch between threads of
// (possibly) different processes, as CFS performs at tick boundaries.
func (k *Kernel) ContextSwitch() sim.Duration {
	return k.charge("context-switch", k.Costs.CFSSwitchCost)
}

// Wakeup models the enqueue-and-preempt path when a sleeping thread is made
// runnable (futex/epoll wake in memcached's request loop).
func (k *Kernel) Wakeup() sim.Duration {
	return k.charge("wakeup", k.Costs.CFSWakeupCost)
}

// Syscall charges a generic syscall round trip plus the given service time.
func (k *Kernel) Syscall(name string, service sim.Duration) sim.Duration {
	return k.charge("sys:"+name, 2*k.Costs.UserKernelCross+service)
}

// Kill terminates a process.
func (k *Kernel) Kill(p *KProcess, sig Signal) sim.Duration {
	return k.SendSignal(p, sig)
}

// TotalKernelNs sums all charged kernel time.
func (k *Kernel) TotalKernelNs() sim.Duration {
	var total sim.Duration
	for _, d := range k.KernelNs {
		total += d
	}
	return total
}
