package caladan

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/vessel"
	"vessel/internal/workload"
)

func runC(t *testing.T, v Variant, cfg sched.Config) sched.Result {
	t.Helper()
	res, err := Simulator{Variant: v}.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func baseCfg(apps ...*workload.App) sched.Config {
	return sched.Config{
		Seed:     1,
		Cores:    8,
		Duration: 40 * sim.Millisecond,
		Warmup:   5 * sim.Millisecond,
		Apps:     apps,
		Costs:    cpu.Default(),
	}
}

func TestNames(t *testing.T) {
	if (Simulator{Plain}).Name() != "Caladan" ||
		(Simulator{DRLow}).Name() != "Caladan-DR-L" ||
		(Simulator{DRHigh}).Name() != "Caladan-DR-H" {
		t.Fatal("names wrong")
	}
}

func TestLAppAloneWorks(t *testing.T) {
	mc := workload.NewLApp("memcached", workload.Memcached(), 2e6)
	res := runC(t, DRLow, baseCfg(mc))
	a, _ := res.App("memcached")
	got := a.Tput.PerSecond()
	if got < 1.9e6 || got > 2.1e6 {
		t.Fatalf("throughput = %.2f Mops", got/1e6)
	}
	if a.Latency.P999 > 150_000 {
		t.Fatalf("p999 = %dns alone at 25%% load", a.Latency.P999)
	}
}

func TestColocationLosesThroughputVsVessel(t *testing.T) {
	// The paper's core claim (Fig. 1a/9): Caladan's total normalized
	// throughput declines measurably under colocation while VESSEL's
	// stays near 1.
	load := 0.5 * 8e6
	mkApps := func() []*workload.App {
		return []*workload.App{
			workload.NewLApp("memcached", workload.Memcached(), load),
			workload.Linpack(),
		}
	}
	cal := runC(t, Plain, baseCfg(mkApps()...))
	ves, err := vessel.Simulator{}.Run(baseCfg(mkApps()...))
	if err != nil {
		t.Fatal(err)
	}
	if cal.TotalNormTput() >= ves.TotalNormTput() {
		t.Fatalf("Caladan total %.3f should trail VESSEL %.3f",
			cal.TotalNormTput(), ves.TotalNormTput())
	}
	if cal.TotalNormTput() > 0.95 {
		t.Fatalf("Caladan colocation too efficient: %.3f", cal.TotalNormTput())
	}
	if cal.TotalNormTput() < 0.55 {
		t.Fatalf("Caladan colocation unreasonably bad: %.3f", cal.TotalNormTput())
	}
}

func TestOverheadCyclesVisible(t *testing.T) {
	// Figure 1b: a meaningful share of cycles goes to kernel + runtime.
	mc := workload.NewLApp("memcached", workload.Memcached(), 0.5*8e6)
	res := runC(t, Plain, baseCfg(mc, workload.Linpack()))
	f := res.Cycles.OverheadFrac()
	if f < 0.03 || f > 0.35 {
		t.Fatalf("overhead fraction = %.3f, want 5–30%%", f)
	}
	if res.Cycles.KernelNs == 0 || res.Cycles.RuntimeNs == 0 {
		t.Fatal("kernel and runtime time must both appear")
	}
}

func TestDelayRangeTradeoff(t *testing.T) {
	// DR-H must be more CPU-efficient but higher latency than DR-L
	// (Fig. 9's explicit tradeoff).
	load := 0.6 * 8e6
	mk := func() []*workload.App {
		return []*workload.App{
			workload.NewLApp("memcached", workload.Memcached(), load),
			workload.Linpack(),
		}
	}
	lo := runC(t, DRLow, baseCfg(mk()...))
	hi := runC(t, DRHigh, baseCfg(mk()...))
	loApp, _ := lo.App("memcached")
	hiApp, _ := hi.App("memcached")
	if hiApp.Latency.P999 <= loApp.Latency.P999 {
		t.Fatalf("DR-H p999 %d must exceed DR-L %d", hiApp.Latency.P999, loApp.Latency.P999)
	}
	if hi.TotalNormTput() < lo.TotalNormTput()-0.02 {
		t.Fatalf("DR-H total %.3f should be >= DR-L %.3f (efficiency side of the tradeoff)",
			hi.TotalNormTput(), lo.TotalNormTput())
	}
}

func TestReallocationCostsKernelTime(t *testing.T) {
	mc := workload.NewLApp("memcached", workload.Memcached(), 0.4*8e6)
	res := runC(t, Plain, baseCfg(mc, workload.Linpack()))
	if res.Reallocations == 0 {
		t.Fatal("no core reallocations at 40% load with a B-app")
	}
	if res.Cycles.KernelNs == 0 {
		t.Fatal("reallocations must charge kernel time")
	}
}

func TestDenseColocationDegrades(t *testing.T) {
	// Fig. 10: 10 L-apps on one core degrade Caladan's aggregate
	// throughput and tail while VESSEL stays put.
	mk := func(n int, aggregate float64) []*workload.App {
		apps := make([]*workload.App, n)
		for i := range apps {
			apps[i] = workload.NewLApp(string(rune('a'+i)), workload.Memcached(), aggregate/float64(n))
		}
		return apps
	}
	maxP999 := func(res sched.Result) int64 {
		var p int64
		for _, a := range res.Apps {
			if a.Latency.P999 > p {
				p = a.Latency.P999
			}
		}
		return p
	}
	agg := func(res sched.Result) float64 {
		var tput float64
		for _, a := range res.Apps {
			tput += a.Tput.PerSecond()
		}
		return tput
	}
	const load = 0.8e6
	cfg1 := baseCfg(mk(1, load)...)
	cfg1.Cores = 1
	one := runC(t, DRLow, cfg1)
	cfg10 := baseCfg(mk(10, load)...)
	cfg10.Cores = 1
	ten := runC(t, DRLow, cfg10)
	// Throughput keeps up below saturation, but the tail explodes:
	// the paper's P999 inflation under dense colocation.
	if maxP999(ten) < 4*maxP999(one) {
		t.Fatalf("dense Caladan p999 %dns should be several times single-app %dns",
			maxP999(ten), maxP999(one))
	}
	// VESSEL on the identical dense workload keeps throughput AND a far
	// lower tail (paper: "almost unchanged").
	vcfg := baseCfg(mk(10, load)...)
	vcfg.Cores = 1
	vres, err := vessel.Simulator{}.Run(vcfg)
	if err != nil {
		t.Fatal(err)
	}
	if agg(vres) < 0.95*load {
		t.Fatalf("VESSEL dense aggregate %.2f Mops, want ~%.2f", agg(vres)/1e6, load/1e6)
	}
	if maxP999(vres) > maxP999(ten)/3 {
		t.Fatalf("VESSEL dense p999 %dns should be well below Caladan's %dns",
			maxP999(vres), maxP999(ten))
	}
}

func TestBandwidthRegulationCoarser(t *testing.T) {
	// Both systems support bandwidth thresholds; Caladan enforces at
	// 10 µs with expensive reallocations.
	mb := workload.Membench()
	cfg := baseCfg(mb)
	cfg.BWTargetFrac = 0.3
	res := runC(t, Plain, cfg)
	b, _ := res.App("membench")
	target := 0.3 * cfg.Costs.MemBWTotal
	if b.AvgBWGBs > target*1.6 {
		t.Fatalf("Caladan bw %.1f wildly above target %.1f", b.AvgBWGBs, target)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() sched.Config {
		return baseCfg(workload.NewLApp("memcached", workload.Memcached(), 3e6), workload.Linpack())
	}
	a := runC(t, DRLow, mk())
	b := runC(t, DRLow, mk())
	if a.Switches != b.Switches || a.Reallocations != b.Reallocations {
		t.Fatal("non-deterministic")
	}
}

func TestValidation(t *testing.T) {
	if _, err := (Simulator{}).Run(sched.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
