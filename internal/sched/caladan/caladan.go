// Package caladan reimplements Caladan's two-level scheduling policy
// (Fried et al., OSDI '20) with the Delay Range refinement (McClure et al.,
// NSDI '22) on the shared simulated machine, as the paper's primary
// comparator (§2.1, §6).
//
// The policy, as the paper characterises it:
//
//   - cores are *owned* by one application at a time; the IOKernel grants
//     and revokes them at a 10 µs decision interval (§4.5);
//   - an idle core first busy-polls/steals within its application for at
//     least 2 µs before parking (§4.5);
//   - parking and handing a core to another application crosses the kernel:
//     2.1 µs on the voluntary path (Table 1), 5.3 µs when a running task
//     must be preempted (Figure 3);
//   - Delay Range trades CPU efficiency against tail latency by requiring
//     an application's queueing delay to exceed a threshold before the
//     IOKernel reallocates a core: DR-L ≈ 0.5–1 µs, DR-H ≈ 1–4 µs (Fig. 9).
package caladan

import (
	"vessel/internal/obs/journey"
	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/stats"
	"vessel/internal/workload"
)

// Variant selects the Delay Range configuration.
type Variant int

// The paper's three Caladan configurations.
const (
	Plain  Variant = iota // grant on any queued work
	DRLow                 // Delay Range 0.5–1 µs
	DRHigh                // Delay Range 1–4 µs
)

// Simulator implements sched.Scheduler with Caladan's policy.
type Simulator struct {
	Variant Variant
}

// Name identifies the variant.
func (s Simulator) Name() string {
	switch s.Variant {
	case DRLow:
		return "Caladan-DR-L"
	case DRHigh:
		return "Caladan-DR-H"
	default:
		return "Caladan"
	}
}

// grantThreshold returns the queueing delay above which the IOKernel
// reallocates a core to the app.
func (s Simulator) grantThreshold() sim.Duration {
	switch s.Variant {
	case DRLow:
		return 750 // mid of 0.5–1 µs
	case DRHigh:
		return 2500 // mid of 1–4 µs
	default:
		return 1
	}
}

type coreMode uint8

const (
	modeFree coreMode = iota // owned by the IOKernel, idle
	modeServeL
	modePollL // in the steal window, burning runtime cycles
	modeRunB
	modeTransition
)

type core struct {
	id    int
	mode  coreMode
	owner *workload.App // L or B app owning the core
	act   sched.Activity
	lastT sim.Time
	// grantedAt lets the victim-selection prefer the longest holder.
	grantedAt sim.Time
	pollEnd   sim.Event
	bStart    sim.Time
	// grantD remembers the kernel cost of the grant that just handed
	// this core over, so the first request served afterwards can
	// attribute that crossing to its journey's gate segment.
	grantD sim.Duration
}

type run struct {
	cfg   sched.Config
	v     Simulator
	eng   *sim.Engine
	rng   *sim.RNG
	acct  sched.Accountant
	bw    *sched.BW
	cores []*core
	lApps []*workload.App
	bApps []*workload.App
	endAt sim.Time

	funnel map[*workload.App]sim.Duration
	bWall  map[*workload.App]sim.Duration
	lWork  map[*workload.App]sim.Duration // per-L-app service time delivered
	bwCap  float64
	// bwSampled is the IOKernel's view of bandwidth demand, refreshed
	// only at its 10 µs decision ticks. Grant decisions between ticks
	// act on this stale sample — the control-loop coarseness that makes
	// Caladan's regulation overshoot (§6.3.4).
	bwSampled float64

	switches, preempts, reallocs uint64
}

// Run executes the workload under Caladan's policy.
func (s Simulator) Run(cfg sched.Config) (sched.Result, error) {
	if err := cfg.Validate(); err != nil {
		return sched.Result{}, err
	}
	r := &run{
		cfg:    cfg,
		v:      s,
		eng:    sim.NewEngine(),
		rng:    sim.NewRNG(cfg.Seed),
		bw:     sched.NewBW(cfg.Costs.MemBWTotal),
		funnel: make(map[*workload.App]sim.Duration),
		bWall:  make(map[*workload.App]sim.Duration),
		lWork:  make(map[*workload.App]sim.Duration),
	}
	r.endAt = sim.Time(cfg.Warmup + cfg.Duration)
	r.acct = sched.Accountant{From: sim.Time(cfg.Warmup), To: r.endAt, Trace: cfg.Trace, Obs: cfg.Obs, Journey: cfg.Journey}
	if cfg.BWTargetFrac > 0 {
		r.bwCap = cfg.BWTargetFrac * cfg.Costs.MemBWTotal
	}
	for _, a := range cfg.Apps {
		if a.Kind == workload.LatencyCritical {
			r.lApps = append(r.lApps, a)
		} else {
			r.bApps = append(r.bApps, a)
		}
	}
	for i := 0; i < cfg.Cores; i++ {
		r.cores = append(r.cores, &core{id: i, mode: modeFree, act: sched.ActIdle})
	}
	// Every packet traverses the IOKernel before it reaches an
	// application queue — the single-server control plane whose
	// saturation caps Caladan at ~34 cores (Figure 12).
	ctrl := cfg.Costs.CaladanCtrlFor(cfg.Cores)
	var ctrlFree sim.Time
	for _, a := range r.lApps {
		app := a
		if err := app.GenerateArrivals(r.eng, r.rng.Fork(uint64(len(app.Name))+13), r.endAt, func(req *workload.Request) {
			req.J = cfg.Journey.Mint(app.Name, req.Arrive)
			if ctrl <= 0 {
				r.onArrival(app)
				return
			}
			stolen := app.StealNewest()
			now := r.eng.Now()
			// The packet is inside the IOKernel until the control-plane
			// server forwards it: dataplane time on the journey.
			req.J.To(journey.SegData, now)
			start := now
			if ctrlFree > start {
				start = ctrlFree
			}
			done := start.Add(ctrl)
			ctrlFree = done
			r.eng.At(done, func() {
				if stolen != nil {
					app.Requeue(stolen)
				}
				req.J.To(journey.SegQueue, r.eng.Now())
				r.onArrival(app)
			})
		}); err != nil {
			return sched.Result{}, err
		}
	}
	// IOKernel decision loop.
	var tick func()
	tick = func() {
		r.iokernel()
		if r.eng.Now() < r.endAt {
			r.eng.After(r.cfg.Costs.CaladanReallocMs, tick)
		}
	}
	r.eng.At(0, tick)
	r.eng.At(sim.Time(cfg.Warmup), func() { r.bw.ResetAvg(r.eng.Now()) })
	r.eng.Run(r.endAt)
	return r.collect()
}

func (r *run) setAct(c *core, act sched.Activity) {
	now := r.eng.Now()
	label := ""
	if c.owner != nil {
		label = c.owner.Name
	}
	r.acct.AccrueCore(c.id, c.act, c.lastT, now, label)
	c.act = act
	c.lastT = now
}

// onArrival: a polling core of the same app picks the request up
// immediately; otherwise the request waits for a completion or for the
// IOKernel's next decision tick.
func (r *run) onArrival(app *workload.App) {
	for _, c := range r.cores {
		if c.mode == modePollL && c.owner == app {
			r.eng.Cancel(c.pollEnd)
			c.pollEnd = sim.Event{}
			r.serveL(c, app)
			return
		}
	}
}

// serveL runs requests run-to-completion on an L-owned core.
func (r *run) serveL(c *core, app *workload.App) {
	req := app.Dequeue()
	if req == nil {
		c.grantD = 0
		r.startPolling(c, app)
		return
	}
	now := r.eng.Now()
	req.Start = now
	if c.grantD > 0 {
		// The kernel crossing that granted this core gated the request's
		// dispatch: attribute it retroactively (the clamp keeps the
		// identity exact if the request arrived mid-grant).
		req.J.To(journey.SegGate, now.Add(-c.grantD))
		c.grantD = 0
	}
	req.J.To(journey.SegRun, now)
	c.mode = modeServeL
	r.setAct(c, sched.ActApp)
	dur := sim.Duration(float64(req.Service)*r.bw.Inflation()) + r.bw.StallNoise(r.rng)
	r.eng.After(dur, func() {
		req.Done = r.eng.Now()
		req.J.Finish(req.Done)
		app.Complete(req, sim.Time(r.cfg.Warmup))
		r.lWork[app] += r.acct.Clip(now, r.eng.Now())
		if r.eng.Now() >= r.endAt {
			return
		}
		r.serveL(c, app)
	})
}

// startPolling begins the 2 µs steal window: the core spins inside its app
// looking for work before giving the core back (§4.5).
func (r *run) startPolling(c *core, app *workload.App) {
	c.mode = modePollL
	r.setAct(c, sched.ActRuntime)
	c.pollEnd = r.eng.After(r.cfg.Costs.CaladanStealWin, func() {
		c.pollEnd = sim.Event{}
		r.parkCore(c)
	})
}

// parkCore executes the voluntary yield: a kernel crossing, after which the
// core belongs to the IOKernel and is immediately handed to a B-app if one
// wants it.
func (r *run) parkCore(c *core) {
	c.mode = modeTransition
	c.owner = nil
	r.setAct(c, sched.ActKernel)
	r.switches++
	r.eng.After(r.cfg.Costs.CaladanParkPath, func() {
		c.mode = modeFree
		r.setAct(c, sched.ActIdle)
		r.grantFreeCore(c)
	})
}

// grantFreeCore reacts to a core becoming free: the IOKernel notices free
// cores within its polling loop (only *reallocation of busy cores* is
// limited to the 10 µs interval), so an L-app past its Delay Range
// threshold gets it immediately; otherwise a B-app harvests it.
func (r *run) grantFreeCore(c *core) {
	if c.mode != modeFree || r.eng.Now() >= r.endAt {
		return
	}
	thr := r.v.grantThreshold()
	now := r.eng.Now()
	var best *workload.App
	var bestDelay sim.Duration
	for _, app := range r.lApps {
		if d := app.QueueDelay(now); d >= thr && d > bestDelay {
			best = app
			bestDelay = d
		}
	}
	if best != nil {
		r.transition(c, best, r.cfg.Costs.CaladanParkPath)
		return
	}
	r.grantFreeCoreToB(c)
}

// grantFreeCoreToB hands a free core to a best-effort app (respecting the
// bandwidth budget).
func (r *run) grantFreeCoreToB(c *core) {
	if c.mode != modeFree || r.eng.Now() >= r.endAt {
		return
	}
	for _, b := range r.bApps {
		if r.bwCap > 0 && r.bwSampled+b.AvgBW() > r.bwCap {
			continue
		}
		c.mode = modeRunB
		c.owner = b
		c.grantedAt = r.eng.Now()
		c.bStart = r.eng.Now()
		r.bw.Add(r.eng.Now(), b.AvgBW())
		r.setAct(c, sched.ActApp)
		return
	}
}

// stopB accrues and removes the B occupancy of a core.
func (r *run) stopB(c *core) {
	b := c.owner
	now := r.eng.Now()
	useful := r.acct.Clip(c.bStart, now)
	if useful > 0 {
		r.funnel[b] += sim.Duration(float64(useful) / r.bw.Inflation())
		r.bWall[b] += useful
	}
	r.bw.Remove(now, b.AvgBW())
	c.owner = nil
}

// iokernel is the 10 µs decision loop: grant cores to L-apps whose queueing
// delay exceeds the Delay Range threshold, preferring free cores, then
// B-cores (preemption), then — for dense L-on-L colocation — cores of
// L-apps holding more than their share.
func (r *run) iokernel() {
	now := r.eng.Now()
	if now >= r.endAt {
		return
	}
	// Refresh the bandwidth sample the inter-tick grant path uses.
	r.bwSampled = r.bw.Demand()
	thr := r.v.grantThreshold()
	for _, app := range r.lApps {
		if app.QueueDelay(now) < thr {
			continue
		}
		// Skip if the app already has a polling core about to pick the
		// work up (it will, at the poll boundary).
		polling := false
		for _, c := range r.cores {
			if c.owner == app && c.mode == modePollL {
				polling = true
				break
			}
		}
		if polling {
			continue
		}
		r.grantCore(app)
	}
	// Hand remaining free cores to best-effort apps.
	for _, c := range r.cores {
		if c.mode == modeFree {
			r.grantFreeCoreToB(c)
		}
	}
	// Bandwidth regulation at IOKernel granularity: revoke B cores while
	// over budget.
	if r.bwCap > 0 {
		for r.bw.Demand() > r.bwCap {
			victim := r.pickBVictim()
			if victim == nil {
				break
			}
			r.preemptToFree(victim)
		}
	}
}

// grantCore moves one core to app, preferring free > B > over-provisioned L.
func (r *run) grantCore(app *workload.App) {
	// Free core: wake + kernel switch into the app's kProcess.
	for _, c := range r.cores {
		if c.mode == modeFree {
			r.transition(c, app, r.cfg.Costs.CaladanParkPath)
			return
		}
	}
	// Preempt a best-effort core: the full Figure 3 path.
	if victim := r.pickBVictim(); victim != nil {
		r.stopB(victim)
		r.transition(victim, app, r.cfg.Costs.CaladanReallocTotal())
		r.preempts++
		return
	}
	// Dense colocation: preempt another L-app's core. Choose the app
	// holding the most cores; prefer a polling core, else a serving one.
	var victim *core
	bestCount := 0
	counts := make(map[*workload.App]int)
	for _, c := range r.cores {
		if c.owner != nil && c.owner.Kind == workload.LatencyCritical {
			counts[c.owner]++
		}
	}
	for _, c := range r.cores {
		if c.owner == nil || c.owner == app || c.owner.Kind != workload.LatencyCritical {
			continue
		}
		if c.mode != modePollL && c.mode != modeServeL {
			continue
		}
		n := counts[c.owner]
		better := n > bestCount || (n == bestCount && victim != nil && victim.mode == modeServeL && c.mode == modePollL)
		if victim == nil || better {
			victim = c
			bestCount = n
		}
	}
	if victim == nil {
		return
	}
	r.eng.Cancel(victim.pollEnd)
	victim.pollEnd = sim.Event{}
	if victim.mode == modeServeL {
		// The in-flight request finishes on the new owner's dime in
		// real Caladan (the preempted thread is rescheduled); model the
		// preemption as taking effect after the current request, which
		// the completion handler does naturally — so just mark: here we
		// only preempt polling cores to keep request execution simple.
		return
	}
	r.transition(victim, app, r.cfg.Costs.CaladanReallocTotal())
	r.preempts++
}

// pickBVictim returns a B-owned core, preferring the longest holder.
func (r *run) pickBVictim() *core {
	var victim *core
	for _, c := range r.cores {
		if c.mode == modeRunB {
			if victim == nil || c.grantedAt < victim.grantedAt {
				victim = c
			}
		}
	}
	return victim
}

// preemptToFree revokes a B core without granting it (bandwidth policy).
func (r *run) preemptToFree(c *core) {
	r.stopB(c)
	c.mode = modeTransition
	r.setAct(c, sched.ActKernel)
	r.preempts++
	r.switches++
	r.eng.After(r.cfg.Costs.CaladanParkPath, func() {
		c.mode = modeFree
		r.setAct(c, sched.ActIdle)
	})
}

// transition moves a core to an L-app with the given kernel cost.
func (r *run) transition(c *core, app *workload.App, cost sim.Duration) {
	c.mode = modeTransition
	c.owner = app
	c.grantedAt = r.eng.Now()
	r.setAct(c, sched.ActKernel)
	r.switches++
	r.reallocs++
	r.eng.After(cost, func() {
		if r.eng.Now() >= r.endAt {
			return
		}
		c.grantD = cost
		r.serveL(c, app)
	})
}

// collect finalises accounting.
func (r *run) collect() (sched.Result, error) {
	for _, c := range r.cores {
		// Close the span through setAct (before stopB clears the owner) so
		// it keeps its occupant label and reaches the obs layer.
		r.setAct(c, c.act)
		if c.mode == modeRunB {
			r.stopB(c)
		}
	}
	if o := r.cfg.Obs; o != nil {
		o.Reg().Add("caladan.switches", r.switches)
		o.Reg().Add("caladan.preempts", r.preempts)
		o.Reg().Add("caladan.reallocs", r.reallocs)
	}
	res := sched.Result{
		Scheduler:     r.v.Name(),
		Cores:         r.cfg.Cores,
		Measured:      r.cfg.Duration,
		Cycles:        r.acct.Breakdown,
		Switches:      r.switches,
		Preemptions:   r.preempts,
		Reallocations: r.reallocs,
	}
	for _, a := range r.cfg.Apps {
		ar := sched.AppResult{Name: a.Name, Kind: a.Kind, Offered: a.Offered, Completed: a.Completed}
		if a.Kind == workload.LatencyCritical {
			ar.Latency = a.Lat.Summarize()
			ar.Tput = stats.Rate{Count: a.Lat.Count(), Elapsed: int64(r.cfg.Duration)}
			ar.LBusyNs = r.lWork[a]
		} else {
			ar.BUsefulNs = r.funnel[a]
			ar.BWallNs = r.bWall[a]
			ar.Tput = stats.Rate{Count: uint64(ar.BUsefulNs), Elapsed: int64(r.cfg.Duration)}
			ar.AvgBWGBs = a.AvgBW() * float64(r.bWall[a]) / float64(r.cfg.Duration)
		}
		res.Apps = append(res.Apps, ar)
	}
	sched.Normalize(&res, r.cfg)
	return res, nil
}
