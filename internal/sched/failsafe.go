package sched

// Failsafe at the model-level scheduler boundary: the same policy-fallback
// idea internal/selfheal applies to per-quantum decisions, applied to whole
// scheduler runs. A comparison scheduler that panics mid-run (a policy bug,
// a bad parameterisation) is caught and the configured fallback re-runs the
// workload, so a sweep over many schedulers and configs reports a fallback
// result instead of taking the whole harness down.

import "fmt"

// Failsafe wraps a primary scheduler with a fallback that re-runs the
// config if the primary panics. The wrapper is transparent when the
// primary behaves: same result, same error.
type Failsafe struct {
	Primary  Scheduler
	Fallback Scheduler
	// Swapped and Reason record a takeover after the fact.
	Swapped bool
	Reason  string
}

// NewFailsafe wraps primary with fallback.
func NewFailsafe(primary, fallback Scheduler) *Failsafe {
	return &Failsafe{Primary: primary, Fallback: fallback}
}

// Name implements Scheduler.
func (f *Failsafe) Name() string {
	if f.Swapped {
		return fmt.Sprintf("failsafe[%s]", f.Fallback.Name())
	}
	return fmt.Sprintf("failsafe(%s)", f.Primary.Name())
}

// Run implements Scheduler: the primary runs under panic recovery; on a
// panic the fallback re-runs the identical config and the takeover is
// recorded. Errors are not failover triggers — an error is a scheduler
// explicitly declining a config, and masking it with a different
// scheduler's numbers would corrupt a comparison sweep.
func (f *Failsafe) Run(cfg Config) (Result, error) {
	res, err, panicked := f.tryPrimary(cfg)
	if !panicked {
		return res, err
	}
	f.Swapped = true
	if f.Fallback == nil {
		return Result{}, fmt.Errorf("sched: primary %s panicked (%s) with no fallback", f.Primary.Name(), f.Reason)
	}
	return f.Fallback.Run(cfg)
}

func (f *Failsafe) tryPrimary(cfg Config) (res Result, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			f.Reason = fmt.Sprint(r)
		}
	}()
	res, err = f.Primary.Run(cfg)
	return res, err, false
}
