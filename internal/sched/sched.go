// Package sched defines the common contract every core scheduler in the
// reproduction implements — VESSEL's one-level scheduler and the Caladan,
// Linux CFS and Arachne baselines — plus the shared accounting types the
// experiments consume: per-app throughput and latency, and the machine-wide
// cycle breakdown (application vs runtime vs kernel vs switching vs idle)
// that Figures 1b and 2 plot.
package sched

import (
	"bytes"
	"fmt"
	"math"
	"strconv"

	"vessel/internal/cpu"
	"vessel/internal/obs"
	"vessel/internal/obs/journey"
	"vessel/internal/sim"
	"vessel/internal/stats"
	"vessel/internal/trace"
	"vessel/internal/workload"
)

// Config parameterises one simulated run.
type Config struct {
	Seed  uint64
	Cores int // worker cores managed by the scheduler
	// Duration is the measured interval; Warmup precedes it.
	Duration sim.Duration
	Warmup   sim.Duration
	Apps     []*workload.App
	Costs    *cpu.CostModel
	// BWTargetFrac, when in (0,1), asks the scheduler to regulate the
	// B-apps' memory bandwidth consumption to that fraction of machine
	// bandwidth (Figure 13).
	BWTargetFrac float64
	// Trace, when non-nil, records per-core execution segments for
	// Figure 7-style timeline rendering.
	Trace *trace.Recorder
	// Obs, when non-nil, enables the deterministic observability layer:
	// span timelines, cycle-attribution profiling, and the metrics
	// registry (internal/obs). Nil means fully disabled.
	Obs *obs.Observer
	// Journey, when non-nil, enables request-journey tracing
	// (internal/obs/journey): every request is minted a trace context
	// whose critical-path segments sum exactly to its sojourn. Nil means
	// fully disabled; canonical run bytes are identical either way.
	Journey *journey.Tracer
}

// Validate checks a config and fills defaults.
func (c *Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("sched: cores must be positive")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("sched: duration must be positive")
	}
	if c.Warmup < 0 {
		return fmt.Errorf("sched: warmup must be non-negative")
	}
	if len(c.Apps) == 0 {
		return fmt.Errorf("sched: no apps")
	}
	if math.IsNaN(c.BWTargetFrac) {
		return fmt.Errorf("sched: BWTargetFrac is NaN")
	}
	if c.BWTargetFrac < 0 {
		return fmt.Errorf("sched: BWTargetFrac %v is negative", c.BWTargetFrac)
	}
	if c.BWTargetFrac >= 1 {
		return fmt.Errorf("sched: BWTargetFrac %v must be below 1 (0 disables regulation)", c.BWTargetFrac)
	}
	if c.Costs == nil {
		c.Costs = cpu.Default()
	}
	return nil
}

// CycleBreakdown partitions machine time over the measured interval.
type CycleBreakdown struct {
	AppNs     sim.Duration // executing application logic
	RuntimeNs sim.Duration // scheduler/runtime work (polling, stealing, gates)
	KernelNs  sim.Duration // inside the kernel (traps, signals, switches)
	SwitchNs  sim.Duration // userspace switch cost (VESSEL gate path)
	IdleNs    sim.Duration // idle / UMWAIT
}

// Total returns the sum of all categories.
func (c CycleBreakdown) Total() sim.Duration {
	return c.AppNs + c.RuntimeNs + c.KernelNs + c.SwitchNs + c.IdleNs
}

// OverheadFrac returns the fraction of non-idle time not spent on
// application logic — the "CPU cycles not spent executing application
// logic" of Figure 1b.
func (c CycleBreakdown) OverheadFrac() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	return float64(c.RuntimeNs+c.KernelNs+c.SwitchNs) / float64(total)
}

// Add accumulates another breakdown.
func (c *CycleBreakdown) Add(o CycleBreakdown) {
	c.AppNs += o.AppNs
	c.RuntimeNs += o.RuntimeNs
	c.KernelNs += o.KernelNs
	c.SwitchNs += o.SwitchNs
	c.IdleNs += o.IdleNs
}

// AppResult is one app's outcome.
type AppResult struct {
	Name      string
	Kind      workload.Kind
	Offered   uint64
	Completed uint64
	// Tput is completed requests over the measured interval (L-apps) or
	// useful CPU time as a rate proxy (B-apps: Count = BUsefulNs).
	Tput stats.Rate
	// Latency summarises request sojourn times (L-apps only).
	Latency stats.Summary
	// BUsefulNs is the CPU time a B-app actually received, deflated by
	// memory contention; BWallNs is the raw wall time it held cores.
	BUsefulNs sim.Duration
	BWallNs   sim.Duration
	// LBusyNs is the core time an L-app spent executing requests —
	// Figure 1b's per-application core consumption.
	LBusyNs sim.Duration
	// NormTput is the app's normalized throughput: L-apps against the
	// machine's ideal capacity, B-apps against owning every core.
	NormTput float64
	// AvgBWGBs is the app's measured memory-bandwidth use (GB/s).
	AvgBWGBs float64
}

// Result is one run's outcome.
type Result struct {
	Scheduler string
	Cores     int
	Measured  sim.Duration
	Apps      []AppResult
	Cycles    CycleBreakdown
	// Switches counts context switches of any kind; Preemptions the
	// involuntary subset; Reallocations cross-app core movements.
	Switches      uint64
	Preemptions   uint64
	Reallocations uint64
}

// TotalNormTput returns Σ normalized throughput — Figure 1a/9's headline
// metric (1.0 = ideal).
func (r Result) TotalNormTput() float64 {
	var sum float64
	for _, a := range r.Apps {
		sum += a.NormTput
	}
	return sum
}

// App returns the named app's result.
func (r Result) App(name string) (AppResult, bool) {
	for _, a := range r.Apps {
		if a.Name == name {
			return a, true
		}
	}
	return AppResult{}, false
}

// LAppP999 returns the first L-app's P999 latency in ns.
func (r Result) LAppP999() int64 {
	for _, a := range r.Apps {
		if a.Kind == workload.LatencyCritical {
			return a.Latency.P999
		}
	}
	return 0
}

// Canonical renders the result as a stable byte string: every field in a
// fixed order, floats in shortest round-trip form. Two runs of a
// deterministic scheduler with the same config and seed must produce
// byte-identical canonical encodings — the determinism oracle of the
// conformance harness compares exactly these bytes.
func (r Result) Canonical() []byte {
	var b bytes.Buffer
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fmt.Fprintf(&b, "scheduler=%s cores=%d measured=%d switches=%d preemptions=%d reallocations=%d\n",
		r.Scheduler, r.Cores, int64(r.Measured), r.Switches, r.Preemptions, r.Reallocations)
	fmt.Fprintf(&b, "cycles app=%d runtime=%d kernel=%d switch=%d idle=%d\n",
		int64(r.Cycles.AppNs), int64(r.Cycles.RuntimeNs), int64(r.Cycles.KernelNs),
		int64(r.Cycles.SwitchNs), int64(r.Cycles.IdleNs))
	for _, a := range r.Apps {
		fmt.Fprintf(&b, "app name=%s kind=%d offered=%d completed=%d tput=%d/%d norm=%s bw=%s\n",
			a.Name, a.Kind, a.Offered, a.Completed, a.Tput.Count, a.Tput.Elapsed,
			g(a.NormTput), g(a.AvgBWGBs))
		fmt.Fprintf(&b, "  lat n=%d avg=%s p50=%d p90=%d p99=%d p999=%d max=%d\n",
			a.Latency.Count, g(a.Latency.Avg), a.Latency.P50, a.Latency.P90,
			a.Latency.P99, a.Latency.P999, a.Latency.Max)
		fmt.Fprintf(&b, "  b useful=%d wall=%d lbusy=%d\n",
			int64(a.BUsefulNs), int64(a.BWallNs), int64(a.LBusyNs))
	}
	return b.Bytes()
}

// Scheduler runs a configured workload and reports the outcome.
type Scheduler interface {
	Name() string
	Run(cfg Config) (Result, error)
}

// postRunHooks observe — and, in tests, may deliberately tamper with —
// every result produced through Run. They are the oracle hook point of the
// conformance harness: planting a violation here proves the oracles and the
// shrinker can catch and minimise one.
var postRunHooks []func(Config, *Result)

// RegisterPostRunHook installs f and returns a function that removes it.
// Hook registration is not safe for concurrent use; register hooks in test
// or driver setup, before runs start.
func RegisterPostRunHook(f func(Config, *Result)) (remove func()) {
	postRunHooks = append(postRunHooks, f)
	i := len(postRunHooks) - 1
	return func() { postRunHooks[i] = nil }
}

// Run executes s on cfg and passes the result through the registered
// post-run hooks. Conformance tooling routes every scheduler run through
// this wrapper so oracles observe exactly what callers would see.
func Run(s Scheduler, cfg Config) (Result, error) {
	res, err := s.Run(cfg)
	if err != nil {
		return res, err
	}
	for _, f := range postRunHooks {
		if f != nil {
			f(cfg, &res)
		}
	}
	return res, nil
}

// IdealLCapacity returns the machine's ideal L-app service capacity in
// requests/second: cores divided by mean service time, with zero overhead.
// Normalized L throughput is measured against this.
func IdealLCapacity(cores int, dist workload.ServiceDist) float64 {
	mean := dist.Mean()
	if mean <= 0 {
		return 0
	}
	return float64(cores) / mean.Seconds()
}

// Normalize fills the NormTput fields of a result: each L-app against the
// ideal capacity (scaled by the number of L-apps sharing it is NOT applied
// — the paper normalizes each app against running alone on all cores), and
// each B-app against owning all cores for the whole interval.
func Normalize(res *Result, cfg Config) {
	for i := range res.Apps {
		a := &res.Apps[i]
		switch a.Kind {
		case workload.LatencyCritical:
			var dist workload.ServiceDist
			for _, app := range cfg.Apps {
				if app.Name == a.Name {
					dist = app.Dist
				}
			}
			if dist == nil {
				continue
			}
			cap := IdealLCapacity(cfg.Cores, dist)
			if cap > 0 {
				a.NormTput = a.Tput.PerSecond() / cap
			}
		case workload.BestEffort:
			total := sim.Duration(res.Cores) * res.Measured
			if total > 0 {
				a.NormTput = float64(a.BUsefulNs) / float64(total)
			}
		}
	}
}
