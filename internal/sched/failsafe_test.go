package sched

import (
	"errors"
	"strings"
	"testing"

	"vessel/internal/workload"
)

type panicScheduler struct{ calls int }

func (p *panicScheduler) Name() string { return "boom" }
func (p *panicScheduler) Run(cfg Config) (Result, error) {
	p.calls++
	panic("scheduler bug")
}

type errScheduler struct{}

func (errScheduler) Name() string { return "err" }
func (errScheduler) Run(cfg Config) (Result, error) {
	return Result{}, errors.New("declined")
}

func TestFailsafeTransparentWhenPrimaryHealthy(t *testing.T) {
	f := NewFailsafe(fakeScheduler{}, fakeScheduler{})
	cfg := Config{Cores: 2, Duration: 5, Apps: []*workload.App{workload.Linpack()}}
	res, err := f.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != "fake" || res.Cores != 2 || res.Measured != 5 {
		t.Fatalf("primary result not passed through: %+v", res)
	}
	if f.Swapped {
		t.Fatal("healthy primary marked swapped")
	}
	if f.Name() != "failsafe(fake)" {
		t.Fatalf("name = %q", f.Name())
	}
}

func TestFailsafePanicFallsBack(t *testing.T) {
	prim := &panicScheduler{}
	f := NewFailsafe(prim, fakeScheduler{})
	cfg := Config{Cores: 3, Duration: 7, Apps: []*workload.App{workload.Linpack()}}
	res, err := f.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != "fake" || res.Cores != 3 {
		t.Fatalf("fallback did not re-run the config: %+v", res)
	}
	if !f.Swapped {
		t.Fatal("swap not recorded")
	}
	if !strings.Contains(f.Reason, "scheduler bug") {
		t.Fatalf("reason = %q", f.Reason)
	}
	if prim.calls != 1 {
		t.Fatalf("primary ran %d times", prim.calls)
	}
	if f.Name() != "failsafe[fake]" {
		t.Fatalf("name after swap = %q", f.Name())
	}
}

func TestFailsafePanicWithoutFallbackErrors(t *testing.T) {
	f := NewFailsafe(&panicScheduler{}, nil)
	_, err := f.Run(Config{Cores: 1, Duration: 1})
	if err == nil {
		t.Fatal("expected error with no fallback")
	}
	if !strings.Contains(err.Error(), "scheduler bug") {
		t.Fatalf("error lacks panic reason: %v", err)
	}
	if !f.Swapped {
		t.Fatal("swap not recorded")
	}
}

func TestFailsafeDoesNotMaskErrors(t *testing.T) {
	f := NewFailsafe(errScheduler{}, fakeScheduler{})
	_, err := f.Run(Config{Cores: 1, Duration: 1})
	if err == nil || err.Error() != "declined" {
		t.Fatalf("primary error not passed through: %v", err)
	}
	if f.Swapped {
		t.Fatal("error treated as failover trigger")
	}
}
