package sched

import (
	"math"
	"strings"
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/sim"
	"vessel/internal/stats"
	"vessel/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	apps := []*workload.App{workload.Linpack()}
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring of the error, "" = must validate
	}{
		{"good", Config{Cores: 4, Duration: sim.Millisecond, Apps: apps}, ""},
		{"good-bw", Config{Cores: 4, Duration: sim.Millisecond, Apps: apps, BWTargetFrac: 0.5}, ""},
		{"good-warmup", Config{Cores: 4, Duration: sim.Millisecond, Warmup: sim.Millisecond, Apps: apps}, ""},
		{"zero-cores", Config{Cores: 0, Duration: 1, Apps: apps}, "cores"},
		{"negative-cores", Config{Cores: -3, Duration: 1, Apps: apps}, "cores"},
		{"zero-duration", Config{Cores: 1, Duration: 0, Apps: apps}, "duration"},
		{"negative-duration", Config{Cores: 1, Duration: -1, Apps: apps}, "duration"},
		{"negative-warmup", Config{Cores: 1, Duration: 1, Warmup: -1, Apps: apps}, "warmup"},
		{"no-apps", Config{Cores: 1, Duration: 1}, "no apps"},
		{"bw-nan", Config{Cores: 1, Duration: 1, Apps: apps, BWTargetFrac: math.NaN()}, "NaN"},
		{"bw-negative", Config{Cores: 1, Duration: 1, Apps: apps, BWTargetFrac: -0.1}, "negative"},
		{"bw-one", Config{Cores: 1, Duration: 1, Apps: apps, BWTargetFrac: 1.0}, "below 1"},
		{"bw-above-one", Config{Cores: 1, Duration: 1, Apps: apps, BWTargetFrac: 1.5}, "below 1"},
		{"bw-inf", Config{Cores: 1, Duration: 1, Apps: apps, BWTargetFrac: math.Inf(1)}, "below 1"},
		{"bw-neg-inf", Config{Cores: 1, Duration: 1, Apps: apps, BWTargetFrac: math.Inf(-1)}, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatal(err)
				}
				if tc.cfg.Costs == nil {
					t.Fatal("Validate must fill default costs")
				}
				return
			}
			if err == nil {
				t.Fatalf("bad config accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestResultCanonicalStability(t *testing.T) {
	res := Result{
		Scheduler: "X",
		Cores:     4,
		Measured:  sim.Millisecond,
		Cycles:    CycleBreakdown{AppNs: 1, RuntimeNs: 2, KernelNs: 3, SwitchNs: 4, IdleNs: 5},
		Switches:  7,
		Apps: []AppResult{
			{Name: "a", Kind: workload.LatencyCritical, Offered: 10, Completed: 9,
				Latency:  stats.Summary{Count: 9, Avg: 1.5, P50: 1, P90: 2, P99: 3, P999: 4, Max: 5},
				NormTput: 0.25},
			{Name: "b", Kind: workload.BestEffort, BUsefulNs: 100, BWallNs: 120, AvgBWGBs: 8.4},
		},
	}
	c1, c2 := res.Canonical(), res.Canonical()
	if string(c1) != string(c2) {
		t.Fatal("canonical encoding unstable")
	}
	res.Apps[1].BUsefulNs++
	if string(res.Canonical()) == string(c1) {
		t.Fatal("canonical encoding ignores field changes")
	}
}

func TestRunAppliesPostRunHooks(t *testing.T) {
	remove := RegisterPostRunHook(func(cfg Config, r *Result) { r.Scheduler = "tampered" })
	defer remove()
	s := fakeScheduler{}
	res, err := Run(s, Config{Cores: 1, Duration: 1, Apps: []*workload.App{workload.Linpack()}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != "tampered" {
		t.Fatalf("hook not applied: %q", res.Scheduler)
	}
	remove()
	res, err = Run(s, Config{Cores: 1, Duration: 1, Apps: []*workload.App{workload.Linpack()}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != "fake" {
		t.Fatalf("removed hook still applied: %q", res.Scheduler)
	}
}

type fakeScheduler struct{}

func (fakeScheduler) Name() string { return "fake" }
func (fakeScheduler) Run(cfg Config) (Result, error) {
	return Result{Scheduler: "fake", Cores: cfg.Cores, Measured: cfg.Duration}, nil
}

func TestCycleBreakdown(t *testing.T) {
	c := CycleBreakdown{AppNs: 700, RuntimeNs: 100, KernelNs: 100, SwitchNs: 50, IdleNs: 50}
	if c.Total() != 1000 {
		t.Fatalf("total = %v", c.Total())
	}
	if math.Abs(c.OverheadFrac()-0.25) > 1e-9 {
		t.Fatalf("overhead = %v", c.OverheadFrac())
	}
	var zero CycleBreakdown
	if zero.OverheadFrac() != 0 {
		t.Fatal("zero breakdown overhead")
	}
	zero.Add(c)
	if zero.Total() != 1000 {
		t.Fatal("Add broken")
	}
}

func TestAccountantClipping(t *testing.T) {
	a := Accountant{From: 100, To: 200}
	a.Accrue(ActApp, 0, 50) // entirely before window
	if a.Breakdown.AppNs != 0 {
		t.Fatal("pre-window time accrued")
	}
	a.Accrue(ActApp, 50, 150) // straddles start
	if a.Breakdown.AppNs != 50 {
		t.Fatalf("app = %v", a.Breakdown.AppNs)
	}
	a.Accrue(ActKernel, 150, 300) // straddles end
	if a.Breakdown.KernelNs != 50 {
		t.Fatalf("kernel = %v", a.Breakdown.KernelNs)
	}
	a.Accrue(ActIdle, 250, 400) // entirely after
	if a.Breakdown.IdleNs != 0 {
		t.Fatal("post-window time accrued")
	}
	a.Accrue(ActSwitch, 120, 120)  // empty span
	a.Accrue(ActRuntime, 130, 120) // inverted span
	if a.Breakdown.SwitchNs != 0 || a.Breakdown.RuntimeNs != 0 {
		t.Fatal("degenerate spans accrued")
	}
	if a.Clip(90, 110) != 10 {
		t.Fatalf("clip = %v", a.Clip(90, 110))
	}
}

func TestBWInflationAndAverage(t *testing.T) {
	b := NewBW(40)
	if b.Inflation() != 1 {
		t.Fatal("empty inflation")
	}
	b.Add(0, 30)
	if b.Inflation() != 1 {
		t.Fatal("under capacity should not inflate")
	}
	b.Add(0, 30) // 60 total over 40 capacity
	if math.Abs(b.Inflation()-1.5) > 1e-9 {
		t.Fatalf("inflation = %v", b.Inflation())
	}
	b.Remove(1000, 30)
	if b.Demand() != 30 {
		t.Fatalf("demand = %v", b.Demand())
	}
	// Average: 40 (capped) for 1µs then 30 for 1µs = 35.
	if avg := b.AvgGBs(0, 2000); math.Abs(avg-35) > 1e-6 {
		t.Fatalf("avg = %v", avg)
	}
	b.ResetAvg(2000)
	b.Remove(3000, 30)
	if avg := b.AvgGBs(2000, 4000); math.Abs(avg-15) > 1e-6 {
		t.Fatalf("avg after reset = %v", avg)
	}
	// Unlimited capacity never inflates.
	free := NewBW(0)
	free.Add(0, 1000)
	if free.Inflation() != 1 {
		t.Fatal("zero-capacity BW should not inflate")
	}
}

func TestIdealCapacityAndNormalize(t *testing.T) {
	capacity := IdealLCapacity(8, workload.Memcached())
	if math.Abs(capacity-8e6) > 1 {
		t.Fatalf("capacity = %v", capacity)
	}
	if IdealLCapacity(8, workload.FixedDist{D: 0}) != 0 {
		t.Fatal("zero service time capacity")
	}
	mc := workload.NewLApp("mc", workload.Memcached(), 4e6)
	lp := workload.Linpack()
	cfg := Config{Cores: 8, Duration: 10 * sim.Millisecond, Apps: []*workload.App{mc, lp}, Costs: cpu.Default()}
	res := Result{
		Cores:    8,
		Measured: 10 * sim.Millisecond,
		Apps: []AppResult{
			{Name: "mc", Kind: workload.LatencyCritical, Tput: stats.Rate{Count: 40000, Elapsed: int64(10 * sim.Millisecond)}},
			{Name: "lp", Kind: workload.BestEffort, BUsefulNs: sim.Duration(4) * 10 * sim.Millisecond},
		},
	}
	Normalize(&res, cfg)
	if math.Abs(res.Apps[0].NormTput-0.5) > 1e-9 {
		t.Fatalf("L norm = %v", res.Apps[0].NormTput)
	}
	if math.Abs(res.Apps[1].NormTput-0.5) > 1e-9 {
		t.Fatalf("B norm = %v", res.Apps[1].NormTput)
	}
	if math.Abs(res.TotalNormTput()-1.0) > 1e-9 {
		t.Fatalf("total = %v", res.TotalNormTput())
	}
	if _, ok := res.App("mc"); !ok {
		t.Fatal("App lookup")
	}
	if _, ok := res.App("nope"); ok {
		t.Fatal("phantom app")
	}
	res.Apps[0].Latency.P999 = 42
	if res.LAppP999() != 42 {
		t.Fatal("LAppP999")
	}
}
