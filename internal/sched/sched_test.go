package sched

import (
	"math"
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/sim"
	"vessel/internal/stats"
	"vessel/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	good := Config{
		Cores:    4,
		Duration: sim.Millisecond,
		Apps:     []*workload.App{workload.Linpack()},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Costs == nil {
		t.Fatal("Validate must fill default costs")
	}
	bad := []Config{
		{Cores: 0, Duration: 1, Apps: good.Apps},
		{Cores: 1, Duration: 0, Apps: good.Apps},
		{Cores: 1, Duration: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestCycleBreakdown(t *testing.T) {
	c := CycleBreakdown{AppNs: 700, RuntimeNs: 100, KernelNs: 100, SwitchNs: 50, IdleNs: 50}
	if c.Total() != 1000 {
		t.Fatalf("total = %v", c.Total())
	}
	if math.Abs(c.OverheadFrac()-0.25) > 1e-9 {
		t.Fatalf("overhead = %v", c.OverheadFrac())
	}
	var zero CycleBreakdown
	if zero.OverheadFrac() != 0 {
		t.Fatal("zero breakdown overhead")
	}
	zero.Add(c)
	if zero.Total() != 1000 {
		t.Fatal("Add broken")
	}
}

func TestAccountantClipping(t *testing.T) {
	a := Accountant{From: 100, To: 200}
	a.Accrue(ActApp, 0, 50) // entirely before window
	if a.Breakdown.AppNs != 0 {
		t.Fatal("pre-window time accrued")
	}
	a.Accrue(ActApp, 50, 150) // straddles start
	if a.Breakdown.AppNs != 50 {
		t.Fatalf("app = %v", a.Breakdown.AppNs)
	}
	a.Accrue(ActKernel, 150, 300) // straddles end
	if a.Breakdown.KernelNs != 50 {
		t.Fatalf("kernel = %v", a.Breakdown.KernelNs)
	}
	a.Accrue(ActIdle, 250, 400) // entirely after
	if a.Breakdown.IdleNs != 0 {
		t.Fatal("post-window time accrued")
	}
	a.Accrue(ActSwitch, 120, 120)  // empty span
	a.Accrue(ActRuntime, 130, 120) // inverted span
	if a.Breakdown.SwitchNs != 0 || a.Breakdown.RuntimeNs != 0 {
		t.Fatal("degenerate spans accrued")
	}
	if a.Clip(90, 110) != 10 {
		t.Fatalf("clip = %v", a.Clip(90, 110))
	}
}

func TestBWInflationAndAverage(t *testing.T) {
	b := NewBW(40)
	if b.Inflation() != 1 {
		t.Fatal("empty inflation")
	}
	b.Add(0, 30)
	if b.Inflation() != 1 {
		t.Fatal("under capacity should not inflate")
	}
	b.Add(0, 30) // 60 total over 40 capacity
	if math.Abs(b.Inflation()-1.5) > 1e-9 {
		t.Fatalf("inflation = %v", b.Inflation())
	}
	b.Remove(1000, 30)
	if b.Demand() != 30 {
		t.Fatalf("demand = %v", b.Demand())
	}
	// Average: 40 (capped) for 1µs then 30 for 1µs = 35.
	if avg := b.AvgGBs(0, 2000); math.Abs(avg-35) > 1e-6 {
		t.Fatalf("avg = %v", avg)
	}
	b.ResetAvg(2000)
	b.Remove(3000, 30)
	if avg := b.AvgGBs(2000, 4000); math.Abs(avg-15) > 1e-6 {
		t.Fatalf("avg after reset = %v", avg)
	}
	// Unlimited capacity never inflates.
	free := NewBW(0)
	free.Add(0, 1000)
	if free.Inflation() != 1 {
		t.Fatal("zero-capacity BW should not inflate")
	}
}

func TestIdealCapacityAndNormalize(t *testing.T) {
	capacity := IdealLCapacity(8, workload.Memcached())
	if math.Abs(capacity-8e6) > 1 {
		t.Fatalf("capacity = %v", capacity)
	}
	if IdealLCapacity(8, workload.FixedDist{D: 0}) != 0 {
		t.Fatal("zero service time capacity")
	}
	mc := workload.NewLApp("mc", workload.Memcached(), 4e6)
	lp := workload.Linpack()
	cfg := Config{Cores: 8, Duration: 10 * sim.Millisecond, Apps: []*workload.App{mc, lp}, Costs: cpu.Default()}
	res := Result{
		Cores:    8,
		Measured: 10 * sim.Millisecond,
		Apps: []AppResult{
			{Name: "mc", Kind: workload.LatencyCritical, Tput: stats.Rate{Count: 40000, Elapsed: int64(10 * sim.Millisecond)}},
			{Name: "lp", Kind: workload.BestEffort, BUsefulNs: sim.Duration(4) * 10 * sim.Millisecond},
		},
	}
	Normalize(&res, cfg)
	if math.Abs(res.Apps[0].NormTput-0.5) > 1e-9 {
		t.Fatalf("L norm = %v", res.Apps[0].NormTput)
	}
	if math.Abs(res.Apps[1].NormTput-0.5) > 1e-9 {
		t.Fatalf("B norm = %v", res.Apps[1].NormTput)
	}
	if math.Abs(res.TotalNormTput()-1.0) > 1e-9 {
		t.Fatalf("total = %v", res.TotalNormTput())
	}
	if _, ok := res.App("mc"); !ok {
		t.Fatal("App lookup")
	}
	if _, ok := res.App("nope"); ok {
		t.Fatal("phantom app")
	}
	res.Apps[0].Latency.P999 = 42
	if res.LAppP999() != 42 {
		t.Fatal("LAppP999")
	}
}
