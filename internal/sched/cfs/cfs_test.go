package cfs

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/vessel"
	"vessel/internal/workload"
)

func runL(t *testing.T, cfg sched.Config) sched.Result {
	t.Helper()
	res, err := Simulator{}.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func baseCfg(apps ...*workload.App) sched.Config {
	return sched.Config{
		Seed:     1,
		Cores:    8,
		Duration: 80 * sim.Millisecond,
		Warmup:   10 * sim.Millisecond,
		Apps:     apps,
		Costs:    cpu.Default(),
	}
}

func TestThroughputSustainedAtLowLoad(t *testing.T) {
	// Paper: "Linux CFS shows good total throughput given our provided
	// load (0 to 0.3 Mops/s)". Scaled to 8 cores: 0.075 Mops.
	mc := workload.NewLApp("memcached", workload.Memcached(), 75_000)
	res := runL(t, baseCfg(mc, workload.Linpack()))
	a, _ := res.App("memcached")
	got := a.Tput.PerSecond()
	if got < 0.9*75_000 {
		t.Fatalf("throughput %.0f below offered 75k", got)
	}
	b, _ := res.App("linpack")
	if b.NormTput < 0.85 {
		t.Fatalf("B-app should harvest nearly everything at tiny L load: %.3f", b.NormTput)
	}
}

func TestTailLatencyOrdersOfMagnitudeWorse(t *testing.T) {
	// The paper's headline CFS result: extremely high L-app latencies
	// under colocation (>10ms P999) while VESSEL stays in the tens of µs.
	mk := func() []*workload.App {
		return []*workload.App{
			workload.NewLApp("memcached", workload.Memcached(), 75_000),
			workload.Linpack(),
		}
	}
	linux := runL(t, baseCfg(mk()...))
	ves, err := vessel.Simulator{}.Run(baseCfg(mk()...))
	if err != nil {
		t.Fatal(err)
	}
	lx, _ := linux.App("memcached")
	vs, _ := ves.App("memcached")
	if lx.Latency.P999 < 2_000_000 {
		t.Fatalf("CFS P999 = %.2fms, want multi-ms", float64(lx.Latency.P999)/1e6)
	}
	if lx.Latency.P999 < 100*vs.Latency.P999 {
		t.Fatalf("CFS P999 %dns should be ≫ VESSEL's %dns", lx.Latency.P999, vs.Latency.P999)
	}
}

func TestAloneNoSoftirqStarvation(t *testing.T) {
	// Without a B-app occupying the receive cores, the softirq deferral
	// never triggers and CFS latency is only the wakeup/switch path.
	mc := workload.NewLApp("memcached", workload.Memcached(), 75_000)
	res := runL(t, baseCfg(mc))
	a, _ := res.App("memcached")
	if a.Latency.P999 > 2_000_000 {
		t.Fatalf("alone P999 = %.2fms, should not see B-induced starvation", float64(a.Latency.P999)/1e6)
	}
	if a.Latency.P50 < 5_000 {
		t.Fatalf("P50 %dns should still include wakeup+switch costs", a.Latency.P50)
	}
}

func TestKernelTimeCharged(t *testing.T) {
	mc := workload.NewLApp("memcached", workload.Memcached(), 200_000)
	res := runL(t, baseCfg(mc, workload.Linpack()))
	if res.Cycles.KernelNs == 0 {
		t.Fatal("CFS must charge kernel switch time")
	}
	if res.Switches == 0 || res.Preemptions == 0 {
		t.Fatalf("switches=%d preempts=%d", res.Switches, res.Preemptions)
	}
}

func TestBreakdownCoversAllTime(t *testing.T) {
	mc := workload.NewLApp("memcached", workload.Memcached(), 100_000)
	res := runL(t, baseCfg(mc, workload.Linpack()))
	total := res.Cycles.Total()
	want := sim.Duration(8) * 80 * sim.Millisecond
	if total < want*98/100 || total > want*102/100 {
		t.Fatalf("breakdown %v, want %v", total, want)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() sched.Config {
		return baseCfg(workload.NewLApp("memcached", workload.Memcached(), 100_000), workload.Linpack())
	}
	a, b := runL(t, mk()), runL(t, mk())
	aa, _ := a.App("memcached")
	bb, _ := b.App("memcached")
	if aa.Latency.P999 != bb.Latency.P999 || a.Switches != b.Switches {
		t.Fatal("non-deterministic")
	}
}

func TestValidation(t *testing.T) {
	if _, err := (Simulator{}).Run(sched.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
