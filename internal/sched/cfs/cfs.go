// Package cfs implements the Linux baseline of §6.1: every worker thread is
// a CFS entity on a per-core runqueue, the L-app runs at nice −19 and
// B-apps at nice 20 (clamped to 19, the kernel's maximum), and all
// scheduling crosses the kernel.
//
// The model reproduces the mechanics behind the paper's observation that
// CFS sustains throughput at low load but with latencies orders of
// magnitude above the userspace schedulers:
//
//   - every request wakes a sleeping worker through the kernel wakeup path
//     (§2.1: memcached workers "suspend CPU cores frequently");
//   - wakeup preemption of a best-effort thread pays a resched-IPI plus a
//     full kernel context switch;
//   - network receive processing shares cores with the B-app: when the
//     designated receive core is running best-effort work, softirq
//     processing is deferred (NAPI/ksoftirqd competing under load), a
//     heavy-tailed delay calibrated to the paper's >10 ms P999.
package cfs

import (
	"vessel/internal/kernel"
	"vessel/internal/obs/journey"
	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/stats"
	"vessel/internal/workload"
)

// Simulator implements sched.Scheduler with the CFS model.
type Simulator struct {
	// LNice and BNice override the paper's −19/+20 if non-nil tests
	// need to.
	LNice int
	BNice int
}

// Name returns "Linux".
func (Simulator) Name() string { return "Linux" }

// softirqMean is the mean of the exponential deferral a request suffers
// when its receive core is occupied by best-effort work.
const softirqMean = 1500 * sim.Microsecond

// reschedLatency is resched-IPI plus interrupt-return before a preemption
// takes effect.
const reschedLatency = 2 * sim.Microsecond

type thread struct {
	ent      *kernel.Entity
	app      *workload.App
	kind     workload.Kind
	core     int
	sleeping bool
	// in-flight request state (L threads).
	req       *workload.Request
	remaining sim.Duration
}

type core struct {
	id       int
	rq       *kernel.Runqueue
	cur      *thread
	curSince sim.Time
	ev       sim.Event
	act      sched.Activity
	lastT    sim.Time
	// pendingRx is the core's receive ring: requests whose softirq
	// processing has not run yet; rxFlush is the pending softirq event.
	pendingRx []*workload.Request
	rxFlush   sim.Event
	// viaSwitch marks a dispatch reached through the kernel context
	// switch, so the switched-in request's journey can attribute the
	// crossing to its gate segment.
	viaSwitch bool
}

type run struct {
	cfg   sched.Config
	eng   *sim.Engine
	rng   *sim.RNG
	acct  sched.Accountant
	bw    *sched.BW
	k     *kernel.Kernel
	cores []*core
	// workers[app] lists the app's threads across cores.
	workers map[*workload.App][]*thread
	endAt   sim.Time
	homeRR  int

	funnel map[*workload.App]sim.Duration
	bWall  map[*workload.App]sim.Duration
	lWork  map[*workload.App]sim.Duration

	switches, preempts uint64
	entID              int
}

// Run executes the workload under the CFS model.
func (s Simulator) Run(cfg sched.Config) (sched.Result, error) {
	if err := cfg.Validate(); err != nil {
		return sched.Result{}, err
	}
	lNice, bNice := -19, 19
	if s.LNice != 0 {
		lNice = s.LNice
	}
	if s.BNice != 0 {
		bNice = s.BNice
	}
	r := &run{
		cfg:     cfg,
		eng:     sim.NewEngine(),
		rng:     sim.NewRNG(cfg.Seed),
		bw:      sched.NewBW(cfg.Costs.MemBWTotal),
		workers: make(map[*workload.App][]*thread),
		funnel:  make(map[*workload.App]sim.Duration),
		bWall:   make(map[*workload.App]sim.Duration),
		lWork:   make(map[*workload.App]sim.Duration),
	}
	r.k = kernel.New(r.eng, cfg.Costs)
	r.endAt = sim.Time(cfg.Warmup + cfg.Duration)
	r.acct = sched.Accountant{From: sim.Time(cfg.Warmup), To: r.endAt, Trace: cfg.Trace, Obs: cfg.Obs, Journey: cfg.Journey}
	for i := 0; i < cfg.Cores; i++ {
		r.cores = append(r.cores, &core{id: i, rq: kernel.NewRunqueue(), act: sched.ActIdle})
	}
	for _, a := range cfg.Apps {
		nice := bNice
		if a.Kind == workload.LatencyCritical {
			nice = lNice
		}
		for i := 0; i < cfg.Cores; i++ {
			th := &thread{
				ent:  kernel.NewEntity(r.entID, nice),
				app:  a,
				kind: a.Kind,
				core: i,
			}
			r.entID++
			th.ent.UserData = th
			r.workers[a] = append(r.workers[a], th)
			if a.Kind == workload.LatencyCritical {
				th.sleeping = true // wakes on demand
			} else {
				r.cores[i].rq.Enqueue(th.ent, false)
			}
		}
	}
	for _, a := range cfg.Apps {
		if a.Kind != workload.LatencyCritical {
			continue
		}
		app := a
		if err := app.GenerateArrivals(r.eng, r.rng.Fork(uint64(len(app.Name))+29), r.endAt, func(req *workload.Request) {
			req.J = cfg.Journey.Mint(app.Name, req.Arrive)
			r.onArrival(app)
		}); err != nil {
			return sched.Result{}, err
		}
	}
	r.eng.At(0, func() {
		for _, c := range r.cores {
			r.schedule(c)
		}
	})
	r.eng.At(sim.Time(cfg.Warmup), func() { r.bw.ResetAvg(r.eng.Now()) })
	r.eng.Run(r.endAt)
	return r.collect()
}

func (r *run) setAct(c *core, act sched.Activity) {
	now := r.eng.Now()
	label := ""
	if c.cur != nil {
		label = c.cur.app.Name
	}
	r.acct.AccrueCore(c.id, c.act, c.lastT, now, label)
	c.act = act
	c.lastT = now
}

// onArrival models the receive path: RSS steers the packet to a
// round-robin receive core, where it sits in that core's receive ring until
// the core's softirq processing runs. A core running best-effort work
// defers softirq processing heavy-tailed (NAPI budget exhaustion pushes
// work to ksoftirqd, which competes with the B-app); a core that is idle or
// running the L-app processes it promptly. Each core's ring is flushed as a
// batch — packets on one core cannot be rescued by another core's softirq.
func (r *run) onArrival(app *workload.App) {
	home := r.cores[r.homeRR%len(r.cores)]
	r.homeRR++
	req := app.StealNewest()
	if req == nil {
		return
	}
	// The packet sits in the receive ring until softirq processing runs:
	// dataplane time on the journey.
	req.J.To(journey.SegData, r.eng.Now())
	home.pendingRx = append(home.pendingRx, req)
	if home.rxFlush.Pending() {
		return // this core's softirq is already scheduled; batch behind it
	}
	var deferral sim.Duration
	if home.cur != nil && home.cur.kind == workload.BestEffort {
		deferral = r.rng.Exp(softirqMean)
		if deferral > 20*sim.Millisecond {
			deferral = 20 * sim.Millisecond
		}
	}
	home.rxFlush = r.eng.After(deferral+r.cfg.Costs.CFSWakeupCost, func() { r.flushRx(home) })
}

// flushRx is the core's softirq bottom half: release every buffered
// request to its app queue and wake workers.
func (r *run) flushRx(c *core) {
	c.rxFlush = sim.Event{}
	apps := make([]*workload.App, 0, 2)
	for _, req := range c.pendingRx {
		req.J.To(journey.SegQueue, r.eng.Now())
		req.App.Requeue(req)
		seen := false
		for _, a := range apps {
			if a == req.App {
				seen = true
				break
			}
		}
		if !seen {
			apps = append(apps, req.App)
		}
	}
	c.pendingRx = c.pendingRx[:0]
	for _, a := range apps {
		r.wake(a)
	}
}

// wake makes one sleeping worker of app runnable and applies wakeup
// preemption against a best-effort current.
func (r *run) wake(app *workload.App) {
	if r.eng.Now() >= r.endAt {
		return
	}
	var w *thread
	for _, th := range r.workers[app] {
		if th.sleeping {
			w = th
			break
		}
	}
	if w == nil {
		return // all workers awake; the queue drains through them
	}
	w.sleeping = false
	c := r.cores[w.core]
	c.rq.Enqueue(w.ent, true)
	if c.cur == nil {
		r.schedule(c)
		return
	}
	if c.cur.kind == workload.BestEffort && c.rq.ShouldPreempt(w.ent) {
		r.preempt(c)
	}
}

// preempt interrupts the current thread after the resched latency.
func (r *run) preempt(c *core) {
	cur := c.cur
	r.preempts++
	r.eng.After(reschedLatency, func() {
		if c.cur != cur || c.cur == nil {
			return // already switched
		}
		r.stopCurrent(c, false)
		r.schedule(c)
	})
}

// stopCurrent accounts the current thread's run and returns it to the
// runqueue (or leaves it off if blocked).
func (r *run) stopCurrent(c *core, blocked bool) {
	cur := c.cur
	if cur == nil {
		return
	}
	now := r.eng.Now()
	r.eng.Cancel(c.ev)
	c.ev = sim.Event{}
	ran := now.Sub(c.curSince)
	c.rq.Account(ran)
	if cur.kind == workload.BestEffort {
		useful := r.acct.Clip(c.curSince, now)
		if useful > 0 {
			r.funnel[cur.app] += sim.Duration(float64(useful) / r.bw.Inflation())
			r.bWall[cur.app] += useful
		}
		r.bw.Remove(now, cur.app.AvgBW())
	} else if cur.req != nil {
		// Partial service: remember the remainder.
		done := sim.Duration(float64(ran) / r.bw.Inflation())
		if done > cur.remaining {
			done = cur.remaining
		}
		cur.remaining -= done
		// The preempted request waits on the runqueue with its thread.
		cur.req.J.To(journey.SegQueue, now)
	}
	if blocked {
		c.rq.Retire()
		cur.sleeping = true
	} else {
		c.rq.PutPrev()
	}
	c.cur = nil
}

// schedule picks the next entity on a core and runs it.
func (r *run) schedule(c *core) {
	now := r.eng.Now()
	if now >= r.endAt {
		r.setAct(c, sched.ActIdle)
		return
	}
	ent := c.rq.PickNext()
	if ent == nil {
		c.cur = nil
		r.setAct(c, sched.ActIdle)
		return
	}
	th := ent.UserData.(*thread)
	// Kernel context switch cost.
	r.switches++
	r.setAct(c, sched.ActKernel)
	c.cur = th
	r.eng.After(r.cfg.Costs.CFSSwitchCost, func() {
		c.viaSwitch = true
		r.dispatch(c, th)
	})
}

// dispatch starts the picked thread's run.
func (r *run) dispatch(c *core, th *thread) {
	now := r.eng.Now()
	viaSwitch := c.viaSwitch
	c.viaSwitch = false
	if c.cur != th {
		return
	}
	c.curSince = now
	if th.kind == workload.BestEffort {
		r.bw.Add(now, th.app.AvgBW())
		r.setAct(c, sched.ActApp)
		slice := c.rq.Timeslice()
		c.ev = r.eng.After(slice, func() {
			c.ev = sim.Event{}
			r.stopCurrent(c, false)
			r.schedule(c)
		})
		return
	}
	// L worker: continue an in-flight request or take the next one.
	if th.req == nil {
		req := th.app.Dequeue()
		if req == nil {
			// Nothing to do: block.
			c.rq.Account(now.Sub(c.curSince))
			c.rq.Retire()
			th.sleeping = true
			c.cur = nil
			r.schedule(c)
			return
		}
		req.Start = now
		th.req = req
		th.remaining = req.Service
	}
	if viaSwitch {
		// The kernel context switch gated this request's (re)dispatch:
		// attribute it retroactively (clamped if the request arrived or
		// was queued mid-switch).
		th.req.J.To(journey.SegGate, now.Add(-r.cfg.Costs.CFSSwitchCost))
	}
	th.req.J.To(journey.SegRun, now)
	r.setAct(c, sched.ActApp)
	dur := sim.Duration(float64(th.remaining)*r.bw.Inflation()) + r.bw.StallNoise(r.rng)
	slice := c.rq.Timeslice()
	if dur <= slice {
		c.ev = r.eng.After(dur, func() {
			c.ev = sim.Event{}
			r.completeRequest(c, th)
		})
	} else {
		c.ev = r.eng.After(slice, func() {
			c.ev = sim.Event{}
			r.stopCurrent(c, false)
			r.schedule(c)
		})
	}
}

// completeRequest finishes th's request and continues with the app queue.
func (r *run) completeRequest(c *core, th *thread) {
	now := r.eng.Now()
	req := th.req
	req.Done = now
	req.J.Finish(now)
	th.app.Complete(req, sim.Time(r.cfg.Warmup))
	r.lWork[th.app] += r.acct.Clip(c.curSince, now)
	th.req = nil
	th.remaining = 0
	c.rq.Account(now.Sub(c.curSince))
	c.curSince = now
	if now >= r.endAt {
		return
	}
	// Serve the queue run-to-completion while we still hold the core.
	r.dispatch(c, th)
}

// collect finalises accounting.
func (r *run) collect() (sched.Result, error) {
	now := r.eng.Now()
	for _, c := range r.cores {
		if c.cur != nil && c.cur.kind == workload.BestEffort {
			useful := r.acct.Clip(c.curSince, now)
			if useful > 0 {
				r.funnel[c.cur.app] += sim.Duration(float64(useful) / r.bw.Inflation())
				r.bWall[c.cur.app] += useful
			}
		}
		// Close the span through setAct so it keeps its occupant label
		// (and reaches the obs timeline/profiler like every other accrual).
		r.setAct(c, c.act)
	}
	if o := r.cfg.Obs; o != nil {
		o.Reg().Add("cfs.switches", r.switches)
		o.Reg().Add("cfs.preempts", r.preempts)
	}
	res := sched.Result{
		Scheduler:   "Linux",
		Cores:       r.cfg.Cores,
		Measured:    r.cfg.Duration,
		Cycles:      r.acct.Breakdown,
		Switches:    r.switches,
		Preemptions: r.preempts,
	}
	for _, a := range r.cfg.Apps {
		ar := sched.AppResult{Name: a.Name, Kind: a.Kind, Offered: a.Offered, Completed: a.Completed}
		if a.Kind == workload.LatencyCritical {
			ar.Latency = a.Lat.Summarize()
			ar.Tput = stats.Rate{Count: a.Lat.Count(), Elapsed: int64(r.cfg.Duration)}
			ar.LBusyNs = r.lWork[a]
		} else {
			ar.BUsefulNs = r.funnel[a]
			ar.BWallNs = r.bWall[a]
			ar.Tput = stats.Rate{Count: uint64(ar.BUsefulNs), Elapsed: int64(r.cfg.Duration)}
			ar.AvgBWGBs = a.AvgBW() * float64(r.bWall[a]) / float64(r.cfg.Duration)
		}
		res.Apps = append(res.Apps, ar)
	}
	sched.Normalize(&res, r.cfg)
	return res, nil
}
