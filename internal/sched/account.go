package sched

import (
	"vessel/internal/obs"
	"vessel/internal/obs/journey"
	"vessel/internal/sim"
	"vessel/internal/trace"
)

// Activity classifies what a core is doing, for the cycle breakdown.
type Activity uint8

const (
	ActIdle Activity = iota
	ActApp
	ActRuntime
	ActKernel
	ActSwitch
)

// kindOf maps an Activity to its trace segment kind.
func kindOf(act Activity) trace.Kind {
	switch act {
	case ActApp:
		return trace.App
	case ActRuntime:
		return trace.Runtime
	case ActKernel:
		return trace.Kernel
	case ActSwitch:
		return trace.Switch
	default:
		return trace.Idle
	}
}

// CatOf maps an Activity to its obs category. The two enums share ordering
// by construction — obs.CatIdle..obs.CatSwitch mirror ActIdle..ActSwitch —
// so the conversion is a cast, asserted here rather than assumed.
func CatOf(act Activity) obs.Category {
	return obs.Category(act)
}

// Compile-time alignment assertions: the array index must be the constant 0,
// so any drift between the enums breaks the build.
var (
	_ = [1]struct{}{}[uint8(obs.CatIdle)-uint8(ActIdle)]
	_ = [1]struct{}{}[uint8(obs.CatApp)-uint8(ActApp)]
	_ = [1]struct{}{}[uint8(obs.CatRuntime)-uint8(ActRuntime)]
	_ = [1]struct{}{}[uint8(obs.CatKernel)-uint8(ActKernel)]
	_ = [1]struct{}{}[uint8(obs.CatSwitch)-uint8(ActSwitch)]
)

// Accountant accrues per-activity core time clipped to the measurement
// window [From, To]. When Trace is set, every accrued span is also
// recorded as a timeline segment; when Obs is set, it is also recorded as
// an observability span (unclipped, for the timeline) and charged to the
// cycle-attribution profiler (clipped, so the profile's activity buckets
// exactly partition the measured interval — the conservation oracle in
// internal/conformance depends on every breakdown accrual passing through
// AccrueCore).
type Accountant struct {
	From, To  sim.Time
	Breakdown CycleBreakdown
	Trace     *trace.Recorder
	Obs       *obs.Observer
	// Journey, when set, receives every switch accrual as a flight-
	// recorder event — the scheduler wakeup→run edges of the causal
	// chain, visible in black-box postmortems.
	Journey *journey.Tracer
}

// AccrueCore is Accrue plus timeline recording for the given core.
func (a *Accountant) AccrueCore(core int, act Activity, t0, t1 sim.Time, label string) {
	a.Accrue(act, t0, t1)
	if t1 <= t0 {
		return
	}
	if a.Trace != nil {
		a.Trace.Add(core, t0, t1, kindOf(act), label)
	}
	if a.Obs != nil {
		cat := CatOf(act)
		a.Obs.Span(core, t0, t1, cat, label)
		a.Obs.Charge(core, label, cat, a.Clip(t0, t1))
	}
	if a.Journey != nil && act == ActSwitch {
		a.Journey.Event(t0, "sched.switch", label)
	}
}

// Accrue charges the span [t0, t1) to the given activity, clipped to the
// measurement window.
func (a *Accountant) Accrue(act Activity, t0, t1 sim.Time) {
	if t1 <= t0 {
		return
	}
	if t0 < a.From {
		t0 = a.From
	}
	if t1 > a.To {
		t1 = a.To
	}
	if t1 <= t0 {
		return
	}
	d := t1.Sub(t0)
	switch act {
	case ActIdle:
		a.Breakdown.IdleNs += d
	case ActApp:
		a.Breakdown.AppNs += d
	case ActRuntime:
		a.Breakdown.RuntimeNs += d
	case ActKernel:
		a.Breakdown.KernelNs += d
	case ActSwitch:
		a.Breakdown.SwitchNs += d
	}
}

// Clip returns the portion of [t0, t1) inside the measurement window.
func (a *Accountant) Clip(t0, t1 sim.Time) sim.Duration {
	if t0 < a.From {
		t0 = a.From
	}
	if t1 > a.To {
		t1 = a.To
	}
	if t1 <= t0 {
		return 0
	}
	return t1.Sub(t0)
}

// BW tracks aggregate memory-bandwidth demand from the apps currently
// running on cores and converts oversubscription into a service-time
// inflation factor (the simple linear contention model of DESIGN.md §3).
type BW struct {
	// CapacityGBs is the machine's memory bandwidth in GB/s (bytes/ns).
	CapacityGBs float64
	demand      float64
	// integral accumulates demand·time for average-consumption reporting.
	integral   float64
	lastChange sim.Time
}

// NewBW returns a tracker with the given capacity.
func NewBW(capacityGBs float64) *BW {
	return &BW{CapacityGBs: capacityGBs}
}

// advance integrates demand up to now.
func (b *BW) advance(now sim.Time) {
	if now > b.lastChange {
		b.integral += b.effective() * float64(now-b.lastChange)
		b.lastChange = now
	}
}

// effective returns delivered bandwidth: demand capped at capacity.
func (b *BW) effective() float64 {
	if b.CapacityGBs > 0 && b.demand > b.CapacityGBs {
		return b.CapacityGBs
	}
	return b.demand
}

// Add registers demand (GB/s) starting at now.
func (b *BW) Add(now sim.Time, gbs float64) {
	b.advance(now)
	b.demand += gbs
}

// Remove deregisters demand at now.
func (b *BW) Remove(now sim.Time, gbs float64) {
	b.advance(now)
	b.demand -= gbs
	if b.demand < 1e-9 {
		b.demand = 0
	}
}

// Demand returns the current aggregate demand in GB/s.
func (b *BW) Demand() float64 { return b.demand }

// Inflation returns the current service-time inflation factor ≥ 1.
func (b *BW) Inflation() float64 {
	if b.CapacityGBs <= 0 || b.demand <= b.CapacityGBs {
		return 1
	}
	return b.demand / b.CapacityGBs
}

// ResetAvg restarts average-consumption integration at the given time
// (typically the end of warmup).
func (b *BW) ResetAvg(at sim.Time) {
	b.advance(at)
	b.integral = 0
	b.lastChange = at
}

// AvgGBs reports average delivered bandwidth over [from, now]. Call
// ResetAvg(from) at the start of the measured interval first.
func (b *BW) AvgGBs(from, now sim.Time) float64 {
	b.advance(now)
	if now <= from {
		return 0
	}
	return b.integral / float64(now-from)
}

// stallPerOversubscription scales DRAM-queueing stalls: mean extra stall
// per request per unit of oversubscription.
const stallPerOversubscription = 2000 // ns

// StallNoise samples the DRAM-queueing stall a request suffers when the
// memory system is oversubscribed: beyond capacity, request latency does
// not just scale by the linear Inflation factor — queueing in the memory
// controller adds heavy-tailed stalls proportional to the oversubscription.
// This is the §6.3.4 motivation for regulating B-app bandwidth at all:
// unregulated membench wrecks the L-app's *tail*, not just its mean.
func (b *BW) StallNoise(rng *sim.RNG) sim.Duration {
	if b.CapacityGBs <= 0 || b.demand <= b.CapacityGBs {
		return 0
	}
	over := b.demand/b.CapacityGBs - 1
	return rng.Exp(sim.Duration(over * stallPerOversubscription))
}
