// Package arachne implements the Arachne baseline (Qin et al., OSDI '18):
// core-aware two-level scheduling with a slow core arbiter and a
// dispatcher-centric runtime.
//
// The behaviours that matter for the paper's comparison (§6.2.1):
//
//   - a user-level core arbiter re-estimates each application's core need
//     on a coarse interval (~50 ms) and moves cores through the kernel
//     (~29 µs per move) — far too slow to track µs-scale bursts;
//   - each application funnels requests through a dispatcher thread that
//     creates a user thread per request (~1 µs), capping per-app
//     throughput around 1 Mops regardless of core count — the "sharp
//     decline (40% on average)" the paper reports;
//   - granted cores busy-spin when idle rather than being returned,
//     wasting cycles the B-app could use.
package arachne

import (
	"math"

	"vessel/internal/obs/journey"
	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/stats"
	"vessel/internal/workload"
)

// Simulator implements sched.Scheduler with the Arachne model.
type Simulator struct{}

// Name returns "Arachne".
func (Simulator) Name() string { return "Arachne" }

// dispatchCost is the dispatcher's per-request user-thread creation cost.
const dispatchCost = 1 * sim.Microsecond

// workerPickup is a granted worker core's dequeue cost.
const workerPickup = 300 * sim.Nanosecond

// targetUtil is the arbiter's per-core utilisation target when sizing.
const targetUtil = 0.8

type lState struct {
	app *workload.App
	// dispatchQ → dispatcher (serial, 1 µs each) → readyQ → workers.
	dispatchBusy bool
	readyQ       []*workload.Request
	workers      int // granted worker cores (dispatcher core excluded)
	busyNs       sim.Duration
	windowStart  sim.Time
}

type core struct {
	id    int
	owner *workload.App // nil = unassigned
	l     *lState       // when owned by an L-app as a worker
	busy  bool
	act   sched.Activity
	lastT sim.Time
	bFrom sim.Time
}

type run struct {
	cfg   sched.Config
	eng   *sim.Engine
	rng   *sim.RNG
	acct  sched.Accountant
	bw    *sched.BW
	cores []*core
	ls    []*lState
	bApps []*workload.App
	endAt sim.Time

	funnel map[*workload.App]sim.Duration
	bWall  map[*workload.App]sim.Duration
	lWork  map[*workload.App]sim.Duration

	switches, reallocs uint64
}

// Run executes the workload under the Arachne model.
func (s Simulator) Run(cfg sched.Config) (sched.Result, error) {
	if err := cfg.Validate(); err != nil {
		return sched.Result{}, err
	}
	r := &run{
		cfg:    cfg,
		eng:    sim.NewEngine(),
		rng:    sim.NewRNG(cfg.Seed),
		bw:     sched.NewBW(cfg.Costs.MemBWTotal),
		funnel: make(map[*workload.App]sim.Duration),
		bWall:  make(map[*workload.App]sim.Duration),
		lWork:  make(map[*workload.App]sim.Duration),
	}
	r.endAt = sim.Time(cfg.Warmup + cfg.Duration)
	r.acct = sched.Accountant{From: sim.Time(cfg.Warmup), To: r.endAt, Trace: cfg.Trace, Obs: cfg.Obs, Journey: cfg.Journey}
	for i := 0; i < cfg.Cores; i++ {
		r.cores = append(r.cores, &core{id: i, act: sched.ActIdle})
	}
	for _, a := range cfg.Apps {
		if a.Kind == workload.LatencyCritical {
			r.ls = append(r.ls, &lState{app: a, workers: 1})
		} else {
			r.bApps = append(r.bApps, a)
		}
	}
	for _, l := range r.ls {
		ls := l
		if err := ls.app.GenerateArrivals(r.eng, r.rng.Fork(uint64(len(ls.app.Name))+41), r.endAt, func(req *workload.Request) {
			req.J = cfg.Journey.Mint(ls.app.Name, req.Arrive)
			r.pumpDispatcher(ls)
		}); err != nil {
			return sched.Result{}, err
		}
	}
	r.eng.At(0, func() { r.rebalance() })
	var arbiter func()
	arbiter = func() {
		r.rebalance()
		if r.eng.Now() < r.endAt {
			r.eng.After(r.cfg.Costs.ArachneInterval, arbiter)
		}
	}
	r.eng.After(r.cfg.Costs.ArachneInterval, arbiter)
	r.eng.At(sim.Time(cfg.Warmup), func() { r.bw.ResetAvg(r.eng.Now()) })
	r.eng.Run(r.endAt)
	return r.collect()
}

func (r *run) setAct(c *core, act sched.Activity) {
	now := r.eng.Now()
	label := ""
	if c.owner != nil {
		label = c.owner.Name
	}
	r.acct.AccrueCore(c.id, c.act, c.lastT, now, label)
	c.act = act
	c.lastT = now
}

// pumpDispatcher runs the app's serial dispatcher: one request at a time,
// 1 µs of user-thread creation each, then hand-off to the ready queue.
func (r *run) pumpDispatcher(l *lState) {
	if l.dispatchBusy || len(l.app.Queue) == 0 || r.eng.Now() >= r.endAt {
		return
	}
	l.dispatchBusy = true
	req := l.app.Dequeue()
	// The serial dispatcher's user-thread creation gates the request.
	req.J.To(journey.SegGate, r.eng.Now())
	r.eng.After(dispatchCost, func() {
		l.dispatchBusy = false
		// Dispatched: the request now waits in the ready queue for a
		// granted worker core.
		req.J.To(journey.SegQueue, r.eng.Now())
		l.readyQ = append(l.readyQ, req)
		r.feedWorkers(l)
		r.pumpDispatcher(l)
	})
}

// feedWorkers hands ready requests to idle granted worker cores.
func (r *run) feedWorkers(l *lState) {
	for _, c := range r.cores {
		if len(l.readyQ) == 0 {
			return
		}
		if c.l == l && !c.busy {
			req := l.readyQ[0]
			l.readyQ = l.readyQ[1:]
			r.serve(c, l, req)
		}
	}
}

// serve runs one request on a granted worker core.
func (r *run) serve(c *core, l *lState, req *workload.Request) {
	now := r.eng.Now()
	req.Start = now
	req.J.To(journey.SegRun, now)
	c.busy = true
	r.setAct(c, sched.ActApp)
	dur := workerPickup + sim.Duration(float64(req.Service)*r.bw.Inflation())
	l.busyNs += dur
	r.eng.After(dur, func() {
		req.Done = r.eng.Now()
		req.J.Finish(req.Done)
		l.app.Complete(req, sim.Time(r.cfg.Warmup))
		r.lWork[l.app] += r.acct.Clip(now, r.eng.Now())
		c.busy = false
		if r.eng.Now() >= r.endAt {
			return
		}
		if c.l != l {
			// The arbiter moved this core mid-request; follow its new
			// assignment.
			switch {
			case c.l != nil:
				r.setAct(c, sched.ActRuntime)
				r.feedWorkers(c.l)
			case c.owner != nil:
				r.startB(c)
			default:
				r.setAct(c, sched.ActIdle)
			}
			return
		}
		if len(l.readyQ) > 0 {
			next := l.readyQ[0]
			l.readyQ = l.readyQ[1:]
			r.serve(c, l, next)
			return
		}
		// Granted cores spin while idle — Arachne does not return them
		// until the arbiter revokes.
		r.setAct(c, sched.ActRuntime)
	})
}

// rebalance is the arbiter: size each L-app's worker pool to its observed
// utilisation, give the rest to B-apps.
func (r *run) rebalance() {
	now := r.eng.Now()
	if now >= r.endAt {
		return
	}
	avail := len(r.cores)
	want := make(map[*lState]int)
	for _, l := range r.ls {
		window := now.Sub(l.windowStart)
		need := 1
		if window > 0 && l.busyNs > 0 {
			util := float64(l.busyNs) / float64(window)
			need = int(math.Ceil(util/targetUtil)) + 1
		}
		if need < 1 {
			need = 1
		}
		// +1 dispatcher core per app.
		if need+1 > avail {
			need = avail - 1
		}
		want[l] = need
		avail -= need + 1
		l.busyNs = 0
		l.windowStart = now
	}
	if avail < 0 {
		avail = 0
	}
	// Tear down everything and reassign (charging reallocation cost on
	// cores that change owner).
	idx := 0
	assign := func(owner *workload.App, l *lState, n int) {
		for i := 0; i < n && idx < len(r.cores); i++ {
			c := r.cores[idx]
			idx++
			changed := c.owner != owner
			if changed {
				r.reallocs++
				if c.l == nil && c.owner != nil {
					// leaving a B-app
					r.stopB(c)
				}
				c.owner = owner
				c.l = l
				if !c.busy {
					// Charge the kernel move.
					r.setAct(c, sched.ActKernel)
					cc := c
					r.eng.After(r.cfg.Costs.ArachneReallocCost, func() {
						if cc.l != nil {
							r.setAct(cc, sched.ActRuntime)
							if cc.l != nil {
								r.feedWorkers(cc.l)
							}
						} else if cc.owner != nil {
							r.startB(cc)
						} else {
							r.setAct(cc, sched.ActIdle)
						}
					})
				}
			}
		}
	}
	for _, l := range r.ls {
		l.workers = want[l]
		assign(l.app, l, want[l]+1) // workers + dispatcher core
	}
	// Remaining cores to B-apps round-robin (first B gets them all when
	// single).
	rem := len(r.cores) - idx
	if len(r.bApps) > 0 && rem > 0 {
		per := rem / len(r.bApps)
		extra := rem % len(r.bApps)
		for i, b := range r.bApps {
			n := per
			if i < extra {
				n++
			}
			assign(b, nil, n)
		}
	} else {
		for ; idx < len(r.cores); idx++ {
			c := r.cores[idx]
			if c.owner != nil && c.l == nil {
				r.stopB(c)
			}
			c.owner = nil
			c.l = nil
			r.setAct(c, sched.ActIdle)
		}
	}
}

// startB begins best-effort occupancy on a core.
func (r *run) startB(c *core) {
	if c.owner == nil || c.l != nil {
		return
	}
	c.bFrom = r.eng.Now()
	r.bw.Add(r.eng.Now(), c.owner.AvgBW())
	r.setAct(c, sched.ActApp)
}

// stopB ends best-effort occupancy, accruing useful time.
func (r *run) stopB(c *core) {
	if c.owner == nil || c.l != nil {
		return
	}
	now := r.eng.Now()
	useful := r.acct.Clip(c.bFrom, now)
	if useful > 0 {
		r.funnel[c.owner] += sim.Duration(float64(useful) / r.bw.Inflation())
		r.bWall[c.owner] += useful
	}
	r.bw.Remove(now, c.owner.AvgBW())
}

// collect finalises accounting.
func (r *run) collect() (sched.Result, error) {
	for _, c := range r.cores {
		if c.owner != nil && c.l == nil {
			r.stopB(c)
		}
		// Close the span through setAct so it keeps its occupant label
		// (and reaches the obs timeline/profiler like every other accrual).
		r.setAct(c, c.act)
	}
	if o := r.cfg.Obs; o != nil {
		o.Reg().Add("arachne.switches", r.switches)
		o.Reg().Add("arachne.reallocs", r.reallocs)
	}
	res := sched.Result{
		Scheduler:     "Arachne",
		Cores:         r.cfg.Cores,
		Measured:      r.cfg.Duration,
		Cycles:        r.acct.Breakdown,
		Switches:      r.switches,
		Reallocations: r.reallocs,
	}
	for _, a := range r.cfg.Apps {
		ar := sched.AppResult{Name: a.Name, Kind: a.Kind, Offered: a.Offered, Completed: a.Completed}
		if a.Kind == workload.LatencyCritical {
			ar.Latency = a.Lat.Summarize()
			ar.Tput = stats.Rate{Count: a.Lat.Count(), Elapsed: int64(r.cfg.Duration)}
			ar.LBusyNs = r.lWork[a]
		} else {
			ar.BUsefulNs = r.funnel[a]
			ar.BWallNs = r.bWall[a]
			ar.Tput = stats.Rate{Count: uint64(ar.BUsefulNs), Elapsed: int64(r.cfg.Duration)}
			ar.AvgBWGBs = a.AvgBW() * float64(r.bWall[a]) / float64(r.cfg.Duration)
		}
		res.Apps = append(res.Apps, ar)
	}
	sched.Normalize(&res, r.cfg)
	return res, nil
}
