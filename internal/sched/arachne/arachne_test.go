package arachne

import (
	"testing"

	"vessel/internal/cpu"
	"vessel/internal/sched"
	"vessel/internal/sim"
	"vessel/internal/workload"
)

func runA(t *testing.T, cfg sched.Config) sched.Result {
	t.Helper()
	res, err := Simulator{}.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func baseCfg(apps ...*workload.App) sched.Config {
	return sched.Config{
		Seed:     1,
		Cores:    8,
		Duration: 300 * sim.Millisecond,
		Warmup:   100 * sim.Millisecond, // past the first arbiter rounds
		Apps:     apps,
		Costs:    cpu.Default(),
	}
}

func TestLowLoadWorks(t *testing.T) {
	mc := workload.NewLApp("memcached", workload.Memcached(), 200_000)
	res := runA(t, baseCfg(mc, workload.Linpack()))
	a, _ := res.App("memcached")
	if got := a.Tput.PerSecond(); got < 0.9*200_000 {
		t.Fatalf("throughput %.0f below offered 200k", got)
	}
	if a.Latency.P50 > 100_000 {
		t.Fatalf("p50 = %dns at low load", a.Latency.P50)
	}
}

func TestDispatcherBottleneckCapsThroughput(t *testing.T) {
	// Arachne's per-request dispatch (~1µs) caps the app near 1 Mops no
	// matter how many cores — the paper's "sharp decline" beyond 1 Mops.
	mc := workload.NewLApp("memcached", workload.Memcached(), 2_000_000)
	res := runA(t, baseCfg(mc, workload.Linpack()))
	a, _ := res.App("memcached")
	got := a.Tput.PerSecond()
	if got > 1.15e6 {
		t.Fatalf("throughput %.2f Mops should be capped near 1 Mops", got/1e6)
	}
	if a.Latency.P999 < 5_000_000 {
		t.Fatalf("p999 = %.2fms; overload beyond the dispatcher cap should explode", float64(a.Latency.P999)/1e6)
	}
}

func TestSlowArbiterWastesCores(t *testing.T) {
	// Granted cores spin between arbiter rounds instead of being
	// returned: runtime waste visible in the breakdown.
	mc := workload.NewLApp("memcached", workload.Memcached(), 500_000)
	res := runA(t, baseCfg(mc, workload.Linpack()))
	if res.Cycles.RuntimeNs == 0 {
		t.Fatal("no runtime (spin) waste recorded")
	}
	frac := float64(res.Cycles.RuntimeNs) / float64(res.Cycles.Total())
	if frac < 0.01 {
		t.Fatalf("spin waste fraction %.4f suspiciously low", frac)
	}
	if res.Reallocations == 0 {
		t.Fatal("arbiter never moved cores")
	}
}

func TestBAppGetsRemainingCores(t *testing.T) {
	mc := workload.NewLApp("memcached", workload.Memcached(), 200_000)
	res := runA(t, baseCfg(mc, workload.Linpack()))
	b, _ := res.App("linpack")
	// L needs ~2-3 of 8 cores (dispatcher+workers); B gets most of the
	// rest.
	if b.NormTput < 0.4 {
		t.Fatalf("B norm tput = %.3f, want substantial share", b.NormTput)
	}
	if b.NormTput > 0.9 {
		t.Fatalf("B norm tput = %.3f — L must be holding some cores", b.NormTput)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() sched.Config {
		return baseCfg(workload.NewLApp("memcached", workload.Memcached(), 400_000), workload.Linpack())
	}
	a, b := runA(t, mk()), runA(t, mk())
	aa, _ := a.App("memcached")
	bb, _ := b.App("memcached")
	if aa.Completed != bb.Completed || a.Reallocations != b.Reallocations {
		t.Fatal("non-deterministic")
	}
}

func TestValidation(t *testing.T) {
	if _, err := (Simulator{}).Run(sched.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
