package mpk

import "testing"

// TestAllocatableKeyBoundary pins down exactly which keys a fresh
// allocator hands out: keys 1..15, in ascending order, with key 0
// reserved — 15 allocatable keys out of the NumKeys (16) the hardware
// numbers. The Alloc doc comment and this test must stay in agreement.
func TestAllocatableKeyBoundary(t *testing.T) {
	a := NewAllocator()
	if NumKeys != 16 {
		t.Fatalf("NumKeys = %d, want 16", NumKeys)
	}
	for want := PKey(1); want <= 15; want++ {
		k, err := a.Alloc()
		if err != nil {
			t.Fatalf("Alloc #%d failed: %v", want, err)
		}
		if k != want {
			t.Fatalf("Alloc #%d = key %d, want %d (lowest-free order)", want, k, want)
		}
	}
	// The 16th allocation must fail: key 0 is never handed out.
	if k, err := a.Alloc(); err == nil {
		t.Fatalf("16th Alloc succeeded with key %d; key 0 must stay reserved", k)
	}
	if a.Available() != 0 {
		t.Fatalf("Available = %d after exhausting, want 0", a.Available())
	}

	// Boundary errors: key 0, out-of-range keys, double free.
	if err := a.Free(0); err == nil {
		t.Fatal("Free(0) succeeded; key 0 is reserved")
	}
	if err := a.Free(NumKeys); err == nil {
		t.Fatalf("Free(%d) succeeded; keys stop at %d", NumKeys, NumKeys-1)
	}
	if err := a.Free(7); err != nil {
		t.Fatalf("Free(7): %v", err)
	}
	if err := a.Free(7); err == nil {
		t.Fatal("double Free(7) succeeded")
	}
	if !a.InUse(8) || a.InUse(7) {
		t.Fatal("InUse disagrees with the free just performed")
	}
	// The freed key is re-issued first: lowest-free order is stable.
	if k, err := a.Alloc(); err != nil || k != 7 {
		t.Fatalf("re-Alloc = (%d, %v), want key 7", k, err)
	}
}
